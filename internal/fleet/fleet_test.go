package fleet

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dhtm/internal/crashtest"
	"dhtm/internal/obs"
	"dhtm/internal/resultstore"
	"dhtm/internal/runner"
	"dhtm/internal/scenario"
	"dhtm/internal/txn"
	"dhtm/internal/workloads"
)

// testFleet is a coordinator with a memory-only store behind an httptest
// listener, plus helpers to attach workers.
type testFleet struct {
	t     *testing.T
	coord *Coordinator
	srv   *httptest.Server
}

// fastTimings makes liveness events (lease expiry, dead-worker detection)
// fire within milliseconds so tests do not wait on production TTLs.
func fastTimings(cfg *CoordinatorConfig) {
	if cfg.LeaseTTL == 0 {
		cfg.LeaseTTL = 200 * time.Millisecond
	}
	if cfg.Heartbeat == 0 {
		cfg.Heartbeat = 25 * time.Millisecond
	}
}

func newTestFleet(t *testing.T, cfg CoordinatorConfig) *testFleet {
	t.Helper()
	if cfg.Store == nil {
		s, err := resultstore.Open("", resultstore.Options{})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Store = s
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	fastTimings(&cfg)
	coord, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	t.Cleanup(func() {
		srv.Close()
		coord.Close()
	})
	return &testFleet{t: t, coord: coord, srv: srv}
}

// startWorker runs a worker against the fleet until the test ends (or the
// returned cancel is called). Stopping is synchronous: cancel returns after
// the worker has drained and deregistered.
func (f *testFleet) startWorker(cfg WorkerConfig) (*Worker, func()) {
	f.t.Helper()
	cfg.Coordinator = f.srv.URL
	if cfg.Poll == 0 {
		cfg.Poll = 5 * time.Millisecond
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	w, err := NewWorker(cfg)
	if err != nil {
		f.t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := w.Run(ctx); err != nil {
			f.t.Errorf("worker run: %v", err)
		}
	}()
	stop := func() {
		cancel()
		<-done
	}
	f.t.Cleanup(stop)
	return w, stop
}

// stubResult derives a deterministic fake simulation outcome from a cell, so
// fleet-merged and locally-run tables can be compared byte for byte without
// paying for real simulations.
func stubResult(c runner.Cell) workloads.RunResult {
	return workloads.RunResult{
		Design:    c.Design,
		Workload:  c.Workload,
		Committed: uint64(c.Cores*c.TxPerCore) + uint64(len(c.Workload)),
		Cycles:    uint64(c.Seed%9973) + 100,
	}
}

// countingExec is a stub ExecFunc counting executions per cell identity.
type countingExec struct {
	mu     sync.Mutex
	counts map[string]int
	block  chan struct{} // when non-nil, executions wait on it
}

func (e *countingExec) exec(c runner.Cell) (workloads.RunResult, error) {
	e.mu.Lock()
	if e.counts == nil {
		e.counts = make(map[string]int)
	}
	e.counts[fmt.Sprintf("%s#%d", c.Key(), c.Seed)]++
	block := e.block
	e.mu.Unlock()
	if block != nil {
		<-block
	}
	return stubResult(c), nil
}

func (e *countingExec) total() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := 0
	for _, c := range e.counts {
		n += c
	}
	return n
}

func (e *countingExec) max() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	m := 0
	for _, c := range e.counts {
		if c > m {
			m = c
		}
	}
	return m
}

// testPlan builds a grid of distinct cells.
func testPlan(n int) runner.Plan {
	p := runner.Plan{Name: "fleet-test"}
	for i := 0; i < n; i++ {
		p.Add(runner.Cell{
			ID:        fmt.Sprintf("cell-%02d", i),
			Design:    "DHTM",
			Workload:  "hash",
			Cores:     2 + i%3,
			TxPerCore: 1 + i%4,
		})
	}
	return p
}

// renderTable renders a result set exactly as serve's /tables and the CLIs
// do — the byte-identity surface the fleet must preserve.
func renderTable(rs *runner.ResultSet) []byte {
	var buf bytes.Buffer
	scenario.SweepTable(rs.Plan.Name, scenario.SweepOutcomes(rs)).Render(&buf)
	return buf.Bytes()
}

// TestFleetMatchesSingleNode is the core merge invariant: the same plan run
// through a two-worker fleet and through the local runner renders
// byte-identical sweep tables.
func TestFleetMatchesSingleNode(t *testing.T) {
	plan := testPlan(10)

	// Single-node reference, cold store.
	localStore, err := resultstore.Open("", resultstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	localPlan := plan
	localPlan.Store = localStore
	exec := &countingExec{}
	localRS, err := runner.Run(context.Background(), localPlan, exec.exec, runner.Options{Parallel: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	want := renderTable(localRS)

	// Fleet run of the identical plan, two workers, batches of 3.
	f := newTestFleet(t, CoordinatorConfig{BatchSize: 3})
	fexec := &countingExec{}
	f.startWorker(WorkerConfig{Name: "w1", Parallel: 2, Exec: fexec.exec})
	f.startWorker(WorkerConfig{Name: "w2", Parallel: 2, Exec: fexec.exec})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	fleetRS, err := f.coord.RunPlan(ctx, plan, runner.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	got := renderTable(fleetRS)
	if !bytes.Equal(got, want) {
		t.Fatalf("fleet table differs from single-node:\n--- fleet ---\n%s--- local ---\n%s", got, want)
	}
	if n := fexec.max(); n != 1 {
		t.Fatalf("a cell was simulated %d times across the fleet", n)
	}
	if n := fexec.total(); n != len(plan.Cells) {
		t.Fatalf("fleet simulated %d cells, want %d", n, len(plan.Cells))
	}

	// Re-running the campaign answers wholly from the coordinator's store.
	rerunRS, err := f.coord.RunPlan(ctx, plan, runner.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rerunRS.Results {
		if !r.Cached {
			t.Fatalf("warm rerun simulated cell %s", r.Cell.ID)
		}
	}
	if n := fexec.total(); n != len(plan.Cells) {
		t.Fatalf("warm rerun re-simulated: %d executions total", n)
	}
}

// TestConcurrentCampaignsSimulateEachCellOnce submits the same plan from
// many goroutines at once: fleet-wide dedupe must collapse them onto one
// task per cell, asserted from the actual compute count.
func TestConcurrentCampaignsSimulateEachCellOnce(t *testing.T) {
	f := newTestFleet(t, CoordinatorConfig{BatchSize: 4})
	exec := &countingExec{}
	w, _ := f.startWorker(WorkerConfig{Name: "w1", Parallel: 2, Exec: exec.exec})

	plan := testPlan(8)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	sets := make([]*runner.ResultSet, 4)
	errs := make([]error, 4)
	for i := range sets {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sets[i], errs[i] = f.coord.RunPlan(ctx, plan, runner.Options{Seed: 11})
		}(i)
	}
	wg.Wait()
	want := renderTable(sets[0])
	for i := range sets {
		if errs[i] != nil {
			t.Fatalf("campaign %d: %v", i, errs[i])
		}
		if err := sets[i].Err(); err != nil {
			t.Fatalf("campaign %d cells: %v", i, err)
		}
	}
	if n := exec.max(); n != 1 {
		t.Fatalf("concurrent campaigns simulated a cell %d times", n)
	}
	if n := exec.total(); n != len(plan.Cells) {
		t.Fatalf("concurrent campaigns simulated %d cells, want %d", n, len(plan.Cells))
	}
	// The worker's own compute counter agrees — the fleet-wide at-most-once
	// number /metrics reports.
	if m := w.Store().Metrics(); m.Computes != uint64(len(plan.Cells)) {
		t.Fatalf("worker store computed %d, want %d", m.Computes, len(plan.Cells))
	}
	// All campaigns merged identical tables (ignoring cached flags, which
	// depend on arrival order, compare the first two raw) — cells were
	// dispatched once, every campaign saw the same stored results.
	for i := 1; i < len(sets); i++ {
		got := renderTable(sets[i])
		if !bytes.Equal(stripCached(got), stripCached(want)) {
			t.Fatalf("campaign %d table differs:\n%s\nvs\n%s", i, got, want)
		}
	}
}

// stripCached blanks the "cached" column (campaigns racing the same cells
// legitimately disagree on who hit the store).
func stripCached(table []byte) []byte {
	return bytes.ReplaceAll(table, []byte("yes"), []byte("   "))
}

// TestDeadWorkerBatchRedispatched is the fault-injection case: a rogue
// worker leases a batch and vanishes without ever completing or
// heartbeating. The coordinator must declare it dead, steal the batch, and
// the surviving worker must finish the campaign with results byte-identical
// to a single-node run.
func TestDeadWorkerBatchRedispatched(t *testing.T) {
	plan := testPlan(6)

	// Single-node reference.
	localStore, err := resultstore.Open("", resultstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	localPlan := plan
	localPlan.Store = localStore
	refExec := &countingExec{}
	localRS, err := runner.Run(context.Background(), localPlan, refExec.exec, runner.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := renderTable(localRS)

	f := newTestFleet(t, CoordinatorConfig{BatchSize: 3, LeaseTTL: 10 * time.Second})
	// The rogue: registers and leases through the coordinator's own API,
	// then is hard-killed (no complete, no heartbeat, no deregister). The
	// long lease TTL above ensures recovery comes from dead-worker
	// detection, not lease expiry.
	campaign := make(chan struct{})
	var rogueBatch *Batch
	go func() {
		defer close(campaign)
		reg := f.coord.register(RegisterRequest{Name: "rogue"})
		deadline := time.Now().Add(10 * time.Second)
		for {
			b, ok := f.coord.leaseBatch(reg.WorkerID)
			if !ok {
				t.Error("rogue worker unknown to its own coordinator")
				return
			}
			if b != nil {
				rogueBatch = b
				return
			}
			if time.Now().After(deadline) {
				t.Error("rogue never got a batch")
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	resc := make(chan *runner.ResultSet, 1)
	errc := make(chan error, 1)
	go func() {
		rs, err := f.coord.RunPlan(ctx, plan, runner.Options{Seed: 3})
		resc <- rs
		errc <- err
	}()

	// Wait for the rogue to swallow a batch, then bring up the survivor.
	<-campaign
	if t.Failed() {
		t.FailNow()
	}
	exec := &countingExec{}
	f.startWorker(WorkerConfig{Name: "survivor", Parallel: 2, Exec: exec.exec})

	rs := <-resc
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if err := rs.Err(); err != nil {
		t.Fatalf("campaign cells failed: %v", err)
	}
	got := renderTable(rs)
	if !bytes.Equal(got, want) {
		t.Fatalf("post-steal table differs from single-node:\n--- fleet ---\n%s--- local ---\n%s", got, want)
	}
	// The rogue executed nothing, so at-most-once still holds exactly.
	if n := exec.max(); n != 1 {
		t.Fatalf("a stolen cell was simulated %d times", n)
	}
	st := f.coord.Status()
	if st.Requeues == 0 {
		t.Fatalf("no requeues recorded after a dead worker: %+v", st)
	}
	if len(rogueBatch.Tasks) == 0 {
		t.Fatal("rogue batch was empty")
	}
}

// TestWorkerGracefulShutdownReturnsWork cancels a worker mid-batch: the
// in-flight cell finishes and reports done, never-started cells go back as
// returned, and a second worker completes the campaign without ever
// re-simulating the finished cell.
func TestWorkerGracefulShutdownReturnsWork(t *testing.T) {
	// One batch holding the whole plan, serial execution, first cell blocks.
	f := newTestFleet(t, CoordinatorConfig{BatchSize: 8, LeaseTTL: 10 * time.Second})
	plan := testPlan(4)

	block := make(chan struct{})
	exec1 := &countingExec{block: block}
	_, stop1 := f.startWorker(WorkerConfig{Name: "leaver", Parallel: 1, Exec: exec1.exec})

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	resc := make(chan *runner.ResultSet, 1)
	errc := make(chan error, 1)
	go func() {
		rs, err := f.coord.RunPlan(ctx, plan, runner.Options{Seed: 5})
		resc <- rs
		errc <- err
	}()

	// Wait until the first cell is actually executing.
	deadline := time.Now().Add(10 * time.Second)
	for exec1.total() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never started a cell")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// SIGTERM equivalent: cancel the worker while its first cell runs, then
	// let the cell finish. stop1 returns only after the worker completed the
	// batch hand-back and deregistered.
	go func() {
		time.Sleep(20 * time.Millisecond)
		close(block)
	}()
	stop1()
	if n := exec1.total(); n != 1 {
		t.Fatalf("leaving worker executed %d cells, want exactly the in-flight 1", n)
	}

	// The second worker picks up the returned remainder.
	exec2 := &countingExec{}
	f.startWorker(WorkerConfig{Name: "finisher", Parallel: 2, Exec: exec2.exec})
	rs := <-resc
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if err := rs.Err(); err != nil {
		t.Fatalf("campaign failed after graceful handoff: %v", err)
	}
	if n := exec2.total(); n != len(plan.Cells)-1 {
		t.Fatalf("second worker executed %d cells, want %d (the returned remainder)", n, len(plan.Cells)-1)
	}
	if n := exec1.max() + exec2.max(); exec1.max() != 1 || exec2.max() != 1 {
		t.Fatalf("some cell ran twice (max counts %d)", n)
	}
	st := f.coord.Status()
	if st.Requeues == 0 {
		t.Fatal("returned work recorded no requeues")
	}
}

// TestFleetMetricsExposition checks the dhtm_fleet_* families land in the
// coordinator's registry with the promised names and labels.
func TestFleetMetricsExposition(t *testing.T) {
	reg := obs.NewRegistry()
	f := newTestFleet(t, CoordinatorConfig{Registry: reg, BatchSize: 2})
	exec := &countingExec{}
	f.startWorker(WorkerConfig{Name: "metrics-worker", Parallel: 1, Exec: exec.exec})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := f.coord.RunPlan(ctx, testPlan(4), runner.Options{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"dhtm_fleet_workers 1",
		"dhtm_fleet_batches_dispatched_total 2",
		`dhtm_fleet_tasks_total{status="done"} 4`,
		`dhtm_fleet_worker_cells_total{worker="metrics-worker"} 4`,
		"dhtm_fleet_queue_depth 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n%s", want, text)
		}
	}
}

// TestCrashtestThroughFleet dispatches a tiny real exploration to a real
// worker and checks the report matches a local run of the same config.
func TestCrashtestThroughFleet(t *testing.T) {
	cfg := crashtest.Config{Design: "DHTM", Workload: "queue", Cores: 2, TxPerCore: 1, OpsPerTx: 4}
	local, err := crashtest.Explore(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	f := newTestFleet(t, CoordinatorConfig{})
	f.startWorker(WorkerConfig{Name: "xw", Parallel: 2}) // real harness.Execute path unused; crashtest runs its own engine
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	rep, err := f.coord.Explore(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Explored != local.Explored || rep.TotalPoints != local.TotalPoints || rep.Failed != local.Failed {
		t.Fatalf("fleet report %+v diverges from local %+v", rep, local)
	}
	if rep.RunSeed != local.RunSeed {
		t.Fatalf("fleet run seed %d != local %d", rep.RunSeed, local.RunSeed)
	}
}

// TestFactoryConfigRejected: configs carrying a Factory cannot serialize.
func TestFactoryConfigRejected(t *testing.T) {
	f := newTestFleet(t, CoordinatorConfig{})
	_, err := f.coord.Explore(context.Background(), crashtest.Config{
		Design: "DHTM", Workload: "queue",
		Factory: func(*txn.Env) (txn.Runtime, error) { return nil, nil },
	})
	if err == nil || !strings.Contains(err.Error(), "Factory") {
		t.Fatalf("Factory config accepted: %v", err)
	}
}

// TestCampaignCancellation: cancelling a campaign releases it with
// ErrCancelled cells and withdraws unclaimed work from the queue.
func TestCampaignCancellation(t *testing.T) {
	f := newTestFleet(t, CoordinatorConfig{}) // no workers: nothing will run
	ctx, cancel := context.WithCancel(context.Background())
	plan := testPlan(3)
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	rs, err := f.coord.RunPlan(ctx, plan, runner.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs.Results {
		if r.Err == nil || !strings.Contains(r.Err.Error(), "cancelled") {
			t.Fatalf("cell %s: err = %v, want cancelled", r.Cell.ID, r.Err)
		}
	}
	// The withdrawn tasks must leave the queue so no worker ever runs them.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := f.coord.Status(); st.QueueDepth == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cancelled campaign left work queued: %+v", f.coord.Status())
		}
		time.Sleep(2 * time.Millisecond)
	}
}
