// Package fleet shards one campaign across many dhtm-serve processes. A
// coordinator splits compiled campaigns — a runner.Plan of sweep cells, or a
// crashtest.Config grid — into batches; workers register, heartbeat, pull
// batches, execute them through the ordinary local runner, and write every
// cell result through the coordinator's content-addressed result store
// (resultstore.HTTPBackend). The distribution invariants were already in
// place before this package existed: cells are pure functions of
// (cell identity, seed), seeds derive from cell content rather than
// schedule, and results are content-addressed versioned records. The fleet
// only adds dispatch, liveness and merge on top, which is why a fleet-merged
// table is byte-identical to a single-node run of the same scenario + seed.
//
// Protocol (all under /api/v1/fleet, JSON bodies):
//
//	POST /register    {name, parallel}            -> {worker_id, intervals}
//	POST /heartbeat   {worker_id}                 -> 204
//	POST /lease       {worker_id}                 -> {batch} | {idle:true}
//	POST /complete    {worker_id, batch_id, ...}  -> 204
//	POST /deregister  {worker_id}                 -> 204
//	GET  /status                                  -> Status
//	GET  /records?cell=&seed=                     -> result record | 404
//	PUT  /records?cell=&seed=                     <- result record -> 204
//
// Delivery semantics: a batch is leased with a deadline; a lease that
// expires, a worker whose heartbeats stop, and work a draining worker hands
// back all requeue at the front of the queue (work stealing), so stragglers
// and crashes delay a campaign by at most one lease TTL. Retried work
// re-reads the shared store before simulating, and the first completion of a
// task wins, so each cell is simulated at most once fleet-wide except in the
// narrow straggler race where a live worker is still mid-cell when its lease
// is stolen.
package fleet

import (
	"dhtm/internal/crashtest"
	"dhtm/internal/runner"
)

// APIBase is the path prefix every fleet endpoint lives under, on both the
// coordinator's standalone handler and the serve API that mounts it.
const APIBase = "/api/v1/fleet"

// Endpoint paths under APIBase.
const (
	PathRegister   = APIBase + "/register"
	PathHeartbeat  = APIBase + "/heartbeat"
	PathLease      = APIBase + "/lease"
	PathComplete   = APIBase + "/complete"
	PathDeregister = APIBase + "/deregister"
	PathStatus     = APIBase + "/status"
	// PathRecords is the resultstore record protocol (resultstore.Handler):
	// the remote tier every worker's store reads and writes through.
	PathRecords = APIBase + "/records"
)

// Task kinds.
const (
	// TaskCell is one sweep cell; the worker runs it through its store, so
	// the result lands in the coordinator's store before "done" is reported.
	TaskCell = "cell"
	// TaskCrashtest is one crash-point exploration config; the report rides
	// back in the completion payload (explorations have no store records).
	TaskCrashtest = "crashtest"
)

// Task statuses a worker reports in a CompleteRequest.
const (
	// StatusDone: executed (or answered from the store); for cells the
	// result is in the shared store, for crashtests the report is attached.
	StatusDone = "done"
	// StatusFailed: the simulation itself failed; Error carries the message.
	// Failures are deterministic (same cell, same seed, same error), so they
	// are delivered to the campaign rather than retried.
	StatusFailed = "failed"
	// StatusReturned: not executed — the worker is shutting down or was
	// cancelled mid-batch. The coordinator requeues the task.
	StatusReturned = "returned"
)

// RegisterRequest announces a worker to the coordinator.
type RegisterRequest struct {
	// Name labels the worker in status output and per-worker metrics.
	// Empty means "use the assigned worker ID".
	Name string `json:"name,omitempty"`
	// Parallel is the worker's cell pool size, for capacity accounting.
	Parallel int `json:"parallel,omitempty"`
}

// RegisterResponse assigns the worker its identity and cadence.
type RegisterResponse struct {
	WorkerID string `json:"worker_id"`
	// HeartbeatSeconds is how often the worker must heartbeat; after three
	// missed beats the coordinator declares it dead and steals its batches.
	HeartbeatSeconds float64 `json:"heartbeat_seconds"`
	// LeaseSeconds is the batch deadline: a batch not completed within it is
	// requeued for another worker.
	LeaseSeconds float64 `json:"lease_seconds"`
}

// HeartbeatRequest keeps a worker's registration alive.
type HeartbeatRequest struct {
	WorkerID string `json:"worker_id"`
}

// LeaseRequest asks for the next batch of work.
type LeaseRequest struct {
	WorkerID string `json:"worker_id"`
}

// Task is one unit of work inside a batch: exactly one of Cell or Crashtest
// is set, per Kind. The ID is the coordinator's dedupe key; workers echo it
// in TaskStatus and use it as the transport plan's cell ID.
type Task struct {
	ID        string            `json:"id"`
	Kind      string            `json:"kind"`
	Cell      *runner.Cell      `json:"cell,omitempty"`
	Crashtest *crashtest.Config `json:"crashtest,omitempty"`
}

// Batch is a leased slice of a campaign. All tasks in a batch share a kind.
type Batch struct {
	ID    string `json:"id"`
	Tasks []Task `json:"tasks"`
	// LeaseSeconds echoes the deadline the coordinator will enforce.
	LeaseSeconds float64 `json:"lease_seconds"`
}

// LeaseResponse carries a batch, or Idle when the queue is momentarily
// empty (the worker polls again after its poll interval).
type LeaseResponse struct {
	Batch *Batch `json:"batch,omitempty"`
	Idle  bool   `json:"idle,omitempty"`
}

// TaskStatus reports one task's outcome within a completed batch.
type TaskStatus struct {
	ID     string `json:"id"`
	Status string `json:"status"`
	// Error carries the failure message for StatusFailed.
	Error string `json:"error,omitempty"`
	// Report carries the exploration report for a done TaskCrashtest.
	Report *crashtest.Report `json:"report,omitempty"`
}

// CompleteRequest settles a leased batch. Leased tasks missing from Tasks
// are treated as returned.
type CompleteRequest struct {
	WorkerID string       `json:"worker_id"`
	BatchID  string       `json:"batch_id"`
	Tasks    []TaskStatus `json:"tasks"`
}

// DeregisterRequest removes a worker cleanly; its remaining leases requeue
// immediately instead of waiting for the heartbeat timeout.
type DeregisterRequest struct {
	WorkerID string `json:"worker_id"`
}

// WorkerStatus is one worker's row in Status.
type WorkerStatus struct {
	ID       string `json:"id"`
	Name     string `json:"name"`
	Parallel int    `json:"parallel"`
	// Cells counts the sweep cells this worker has completed.
	Cells uint64 `json:"cells"`
	// Batches is the worker's currently leased batch count.
	Batches int `json:"batches"`
	// LastSeenMS is milliseconds since the worker's last heartbeat or API
	// call.
	LastSeenMS int64 `json:"last_seen_ms"`
}

// Status is the coordinator snapshot served at GET /status and shown on the
// dashboard's fleet panel.
type Status struct {
	Workers []WorkerStatus `json:"workers"`
	// QueueDepth is tasks waiting for a lease; Leases is batches out with
	// workers right now.
	QueueDepth int `json:"queue_depth"`
	Leases     int `json:"leases"`
	// TasksDone / TasksFailed / Requeues are lifetime totals.
	TasksDone   uint64 `json:"tasks_done"`
	TasksFailed uint64 `json:"tasks_failed"`
	Requeues    uint64 `json:"requeues"`
}
