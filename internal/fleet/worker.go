package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"strings"
	"time"

	"dhtm/internal/crashtest"
	"dhtm/internal/harness"
	"dhtm/internal/obs"
	"dhtm/internal/resultstore"
	"dhtm/internal/runner"
)

// WorkerConfig assembles a worker.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL (e.g. http://host:8080);
	// the fleet API is reached under its /api/v1/fleet. Required.
	Coordinator string
	// Name labels the worker in the coordinator's status and metrics.
	Name string
	// Parallel is the cell pool size within a batch (<= 0 means GOMAXPROCS).
	Parallel int
	// Exec runs one cell (nil means harness.Execute). Tests substitute
	// stubs; every production worker runs the real simulator.
	Exec runner.ExecFunc
	// Client is the HTTP client for all coordinator traffic. Nil gets a
	// 30-second-timeout default.
	Client *http.Client
	// Poll is how long to idle between leases when the queue is empty
	// (<= 0 means 500ms).
	Poll time.Duration
	// MemEntries caps the worker store's LRU front (0 = store default).
	MemEntries int
	// Registry receives the worker store's tier="remote" metric families.
	// Nil means obs.Default.
	Registry *obs.Registry
	// Logger receives lifecycle logs. Nil disables logging.
	Logger *slog.Logger
}

// Worker pulls batches from a coordinator and executes them through the
// ordinary local runner, reading and writing every cell result through the
// coordinator's store (an LRU + singleflight front over the remote record
// tier). Create with NewWorker, then Run until the context cancels.
type Worker struct {
	cfg    WorkerConfig
	client *http.Client
	store  *resultstore.Store
	log    *slog.Logger

	id        string
	heartbeat time.Duration
}

// NewWorker returns a worker ready to Run.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Coordinator == "" {
		return nil, fmt.Errorf("fleet: WorkerConfig.Coordinator is required")
	}
	cfg.Coordinator = strings.TrimRight(cfg.Coordinator, "/")
	if cfg.Exec == nil {
		cfg.Exec = harness.Execute
	}
	if cfg.Parallel <= 0 {
		cfg.Parallel = runtime.GOMAXPROCS(0)
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 500 * time.Millisecond
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.Default
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.DiscardHandler)
	}
	store, err := resultstore.OpenWith(
		resultstore.NewHTTPBackend(cfg.Coordinator+PathRecords, cfg.Client),
		resultstore.Options{MemEntries: cfg.MemEntries, Registry: cfg.Registry},
	)
	if err != nil {
		return nil, err
	}
	return &Worker{cfg: cfg, client: cfg.Client, store: store, log: cfg.Logger}, nil
}

// Store exposes the worker's read-through store (its metrics carry the
// tier="remote" series).
func (w *Worker) Store() *resultstore.Store { return w.store }

// Run is the worker's life: register, heartbeat, lease-execute-complete
// until ctx cancels. Cancellation is the graceful SIGTERM path: cells
// already simulating finish and report done, never-started work goes back as
// returned, and the worker deregisters — all on a background context, so
// none of it is cut short by the very signal that triggered it. Run returns
// nil on a graceful shutdown and an error only when the worker could never
// join the fleet.
func (w *Worker) Run(ctx context.Context) error {
	if err := w.register(ctx); err != nil {
		return err
	}
	w.log.Info("fleet worker joined", "worker", w.id, "coordinator", w.cfg.Coordinator)

	hbStop := make(chan struct{})
	hbDone := make(chan struct{})
	go w.heartbeatLoop(hbStop, hbDone)
	defer func() {
		close(hbStop)
		<-hbDone
		w.deregister()
		w.log.Info("fleet worker left", "worker", w.id)
	}()

	for {
		if ctx.Err() != nil {
			return nil
		}
		batch, err := w.lease(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			if e := w.reregisterIfUnknown(ctx, err); e != nil {
				// Coordinator unreachable or refusing us: back off and retry
				// for as long as the context lives.
				w.log.Info("fleet lease failed", "worker", w.id, "err", err)
			}
			if !sleep(ctx, w.cfg.Poll) {
				return nil
			}
			continue
		}
		if batch == nil {
			if !sleep(ctx, w.cfg.Poll) {
				return nil
			}
			continue
		}
		statuses := w.execute(ctx, batch)
		if err := w.complete(batch.ID, statuses); err != nil {
			// The lease will expire and the work requeue; nothing to unwind.
			w.log.Info("fleet complete failed", "worker", w.id, "batch", batch.ID, "err", err)
		}
	}
}

// execute runs one batch. Cell batches go through the ordinary runner with
// the worker's read-through store — a retried batch's already-computed cells
// answer from the coordinator without simulating. Cancellation mid-batch
// maps runner semantics onto fleet statuses: finished cells report done,
// never-started ones report returned.
func (w *Worker) execute(ctx context.Context, b *Batch) []TaskStatus {
	if len(b.Tasks) > 0 && b.Tasks[0].Kind == TaskCrashtest {
		return w.executeCrashtests(ctx, b)
	}
	plan := runner.Plan{Name: b.ID, Store: w.store}
	for _, t := range b.Tasks {
		if t.Cell == nil {
			continue
		}
		plan.Cells = append(plan.Cells, *t.Cell)
	}
	rs, err := runner.Run(ctx, plan, w.cfg.Exec, runner.Options{Parallel: w.cfg.Parallel})
	if err != nil {
		// Plan-level failure (malformed batch): nothing ran.
		statuses := make([]TaskStatus, len(b.Tasks))
		for i, t := range b.Tasks {
			statuses[i] = TaskStatus{ID: t.ID, Status: StatusFailed, Error: err.Error()}
		}
		return statuses
	}
	statuses := make([]TaskStatus, 0, len(rs.Results))
	for _, r := range rs.Results {
		switch {
		case r.Err == nil:
			statuses = append(statuses, TaskStatus{ID: r.Cell.ID, Status: StatusDone})
		case errorIsCancelled(r.Err):
			statuses = append(statuses, TaskStatus{ID: r.Cell.ID, Status: StatusReturned})
		default:
			statuses = append(statuses, TaskStatus{ID: r.Cell.ID, Status: StatusFailed, Error: r.Err.Error()})
		}
	}
	return statuses
}

// executeCrashtests runs a batch of exploration configs sequentially (each
// config fans its crash points out across the worker's own cell pool).
func (w *Worker) executeCrashtests(ctx context.Context, b *Batch) []TaskStatus {
	statuses := make([]TaskStatus, 0, len(b.Tasks))
	for _, t := range b.Tasks {
		if t.Crashtest == nil {
			statuses = append(statuses, TaskStatus{ID: t.ID, Status: StatusFailed, Error: "crashtest task without a config"})
			continue
		}
		if ctx.Err() != nil {
			statuses = append(statuses, TaskStatus{ID: t.ID, Status: StatusReturned})
			continue
		}
		cfg := *t.Crashtest
		cfg.Parallel = w.cfg.Parallel
		rep, err := crashtest.Explore(ctx, cfg)
		switch {
		case err == nil:
			statuses = append(statuses, TaskStatus{ID: t.ID, Status: StatusDone, Report: rep})
		case errorIsCancelled(err):
			statuses = append(statuses, TaskStatus{ID: t.ID, Status: StatusReturned})
		default:
			statuses = append(statuses, TaskStatus{ID: t.ID, Status: StatusFailed, Error: err.Error()})
		}
	}
	return statuses
}

// errorIsCancelled matches both runner.ErrCancelled (which wraps
// context.Canceled) and a raw context error from crashtest.Explore.
func errorIsCancelled(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// register joins the fleet, retrying for as long as ctx lives so workers can
// start before their coordinator.
func (w *Worker) register(ctx context.Context) error {
	for {
		var resp RegisterResponse
		err := w.post(ctx, PathRegister, RegisterRequest{Name: w.cfg.Name, Parallel: w.cfg.Parallel}, &resp)
		if err == nil {
			w.id = resp.WorkerID
			w.heartbeat = time.Duration(resp.HeartbeatSeconds * float64(time.Second))
			if w.heartbeat <= 0 {
				w.heartbeat = 5 * time.Second
			}
			return nil
		}
		w.log.Info("fleet register failed; retrying", "coordinator", w.cfg.Coordinator, "err", err)
		if !sleep(ctx, w.cfg.Poll) {
			return fmt.Errorf("fleet: registering with %s: %w", w.cfg.Coordinator, err)
		}
	}
}

// reregisterIfUnknown re-joins after the coordinator forgot us (it restarted
// or declared us dead while we ran a long batch). Returns nil when it
// handled the error.
func (w *Worker) reregisterIfUnknown(ctx context.Context, err error) error {
	if !strings.Contains(err.Error(), "unknown worker") {
		return err
	}
	w.log.Info("fleet worker unknown to coordinator; re-registering", "worker", w.id)
	return w.register(ctx)
}

// heartbeatLoop beats until stopped. Beats ride a short background-context
// timeout so a mid-shutdown beat still lands.
func (w *Worker) heartbeatLoop(stop, done chan struct{}) {
	defer close(done)
	t := time.NewTicker(w.heartbeat)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			ctx, cancel := context.WithTimeout(context.Background(), w.heartbeat)
			err := w.post(ctx, PathHeartbeat, HeartbeatRequest{WorkerID: w.id}, nil)
			cancel()
			if err != nil {
				w.log.Info("fleet heartbeat failed", "worker", w.id, "err", err)
			}
		}
	}
}

// lease asks for the next batch; nil means idle.
func (w *Worker) lease(ctx context.Context) (*Batch, error) {
	var resp LeaseResponse
	if err := w.post(ctx, PathLease, LeaseRequest{WorkerID: w.id}, &resp); err != nil {
		return nil, err
	}
	return resp.Batch, nil
}

// complete settles a batch on a background context: it is the handing-back
// of work during graceful shutdown, so it must survive the cancelled run
// context.
func (w *Worker) complete(batchID string, statuses []TaskStatus) error {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	return w.post(ctx, PathComplete, CompleteRequest{WorkerID: w.id, BatchID: batchID, Tasks: statuses}, nil)
}

// deregister leaves the fleet on a background context (the shutdown path).
func (w *Worker) deregister() {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := w.post(ctx, PathDeregister, DeregisterRequest{WorkerID: w.id}, nil); err != nil {
		w.log.Info("fleet deregister failed", "worker", w.id, "err", err)
	}
}

// post sends one JSON request to a fleet endpoint and decodes the reply
// into out (nil out discards the body).
func (w *Worker) post(ctx context.Context, path string, in, out any) error {
	raw, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.cfg.Coordinator+path, bytes.NewReader(raw))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode/100 != 2 {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("fleet: %s: %s: %s", path, resp.Status, strings.TrimSpace(string(body)))
	}
	if out != nil {
		return json.NewDecoder(io.LimitReader(resp.Body, 16<<20)).Decode(out)
	}
	return nil
}

// sleep waits d or until ctx cancels; reports false on cancellation.
func sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
