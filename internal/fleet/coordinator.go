package fleet

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"dhtm/internal/crashtest"
	"dhtm/internal/obs"
	"dhtm/internal/resultstore"
	"dhtm/internal/runner"
	"dhtm/internal/workloads"
)

// CoordinatorConfig assembles a coordinator.
type CoordinatorConfig struct {
	// Store is the fleet's shared result store: campaigns pre-answer from it,
	// workers write through it (over PathRecords), and completions are read
	// back out of it. Required.
	Store *resultstore.Store
	// BatchSize caps cells per leased batch (<= 0 means 8). Crashtest tasks
	// always lease one per batch — each config is itself a parallel
	// exploration.
	BatchSize int
	// LeaseTTL is the batch deadline; an incomplete batch requeues after it
	// (<= 0 means 60s).
	LeaseTTL time.Duration
	// Heartbeat is the interval workers are told to beat at; a worker silent
	// for three intervals is declared dead and its batches are stolen
	// (<= 0 means 5s).
	Heartbeat time.Duration
	// MaxRetries bounds how many times one task may be requeued before it is
	// failed outright (<= 0 means 8).
	MaxRetries int
	// Registry receives the dhtm_fleet_* metric families. Nil means
	// obs.Default.
	Registry *obs.Registry
	// Logger receives dispatch lifecycle logs. Nil disables logging.
	Logger *slog.Logger
}

// fleetMetrics bundles the coordinator's registry handles.
type fleetMetrics struct {
	reg        *obs.Registry
	workers    *obs.Gauge
	queueDepth *obs.Gauge
	leases     *obs.Gauge
	batches    *obs.Counter
	tasksDone  *obs.Counter
	tasksFail  *obs.Counter
}

func newFleetMetrics(reg *obs.Registry) *fleetMetrics {
	return &fleetMetrics{
		reg: reg,
		workers: reg.Gauge("dhtm_fleet_workers",
			"Workers currently registered with the coordinator."),
		queueDepth: reg.Gauge("dhtm_fleet_queue_depth",
			"Tasks waiting to be leased to a worker."),
		leases: reg.Gauge("dhtm_fleet_leases",
			"Batches currently leased out to workers."),
		batches: reg.Counter("dhtm_fleet_batches_dispatched_total",
			"Batches leased to workers, including re-dispatches of stolen work."),
		tasksDone: reg.Counter("dhtm_fleet_tasks_total",
			"Fleet tasks settled, by outcome.", obs.L("status", "done")),
		tasksFail: reg.Counter("dhtm_fleet_tasks_total",
			"Fleet tasks settled, by outcome.", obs.L("status", "failed")),
	}
}

// requeues labels the steal/retry counter by why the work came back.
// Registration is idempotent, so looking the series up per event is cheap.
func (m *fleetMetrics) requeues(reason string) *obs.Counter {
	return m.reg.Counter("dhtm_fleet_requeues_total",
		"Tasks put back on the queue, by reason (lease_expired and worker_dead are steals).",
		obs.L("reason", reason))
}

// workerCells is the per-worker throughput counter.
func (m *fleetMetrics) workerCells(name string) *obs.Counter {
	return m.reg.Counter("dhtm_fleet_worker_cells_total",
		"Sweep cells completed, by worker.", obs.L("worker", name))
}

// task is one dedupe unit of fleet work. Tasks are keyed by content — the
// store key for cells, the config document for crashtests — so concurrent
// campaigns naming the same work share one task, and a retried batch never
// creates a second copy. All fields are guarded by the coordinator's mu.
type task struct {
	id    string
	kind  string
	cell  runner.Cell // transport cell: ID == task ID, seed filled
	crash *crashtest.Config
	key   resultstore.Key // cell tasks: the store key completions read

	queued  bool   // on the dispatch queue
	batch   string // leased batch ID, "" when not leased
	retries int
	waiters int // campaigns holding a subscription

	done   bool
	run    workloads.RunResult
	report *crashtest.Report
	err    error
	notify []chan struct{} // cap-1 campaign wakeups, poked on completion
}

// lease is one outstanding batch.
type lease struct {
	id      string
	worker  string
	tasks   []*task
	expires time.Time
}

// workerState is the coordinator's view of one registered worker.
type workerState struct {
	id       string
	name     string
	parallel int
	lastSeen time.Time
	cells    uint64
	batches  int
}

// Coordinator owns the fleet: worker registry, task queue, leases, and the
// shared result store. Create with NewCoordinator, expose with Handler,
// dispatch with RunPlan / Explore, and Close on shutdown.
type Coordinator struct {
	cfg     CoordinatorConfig
	log     *slog.Logger
	metrics *fleetMetrics

	mu          sync.Mutex
	workers     map[string]*workerState
	tasks       map[string]*task
	queue       []*task // front = next to lease
	leases      map[string]*lease
	nextWorker  int
	nextBatch   int
	tasksDone   uint64
	tasksFailed uint64
	requeued    uint64

	stopOnce sync.Once
	stop     chan struct{}
	stopped  chan struct{}
}

// NewCoordinator returns a running coordinator (its liveness reaper starts
// immediately). Call Close to stop it.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("fleet: CoordinatorConfig.Store is required")
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 8
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 60 * time.Second
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 5 * time.Second
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 8
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.Default
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.DiscardHandler)
	}
	c := &Coordinator{
		cfg:     cfg,
		log:     cfg.Logger,
		metrics: newFleetMetrics(cfg.Registry),
		workers: make(map[string]*workerState),
		tasks:   make(map[string]*task),
		leases:  make(map[string]*lease),
		stop:    make(chan struct{}),
		stopped: make(chan struct{}),
	}
	go c.reap()
	return c, nil
}

// Close stops the reaper. Campaigns blocked in RunPlan/Explore are not
// interrupted — cancel their contexts to release them.
func (c *Coordinator) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	<-c.stopped
}

// Store exposes the fleet's shared result store.
func (c *Coordinator) Store() *resultstore.Store { return c.cfg.Store }

// reapInterval picks the liveness sweep cadence: fine enough to notice an
// expired lease or dead worker promptly at test-scale TTLs, coarse enough to
// stay silent at production ones.
func (c *Coordinator) reapInterval() time.Duration {
	d := c.cfg.LeaseTTL
	if hb := 3 * c.cfg.Heartbeat; hb < d {
		d = hb
	}
	d /= 4
	if d < 10*time.Millisecond {
		d = 10 * time.Millisecond
	}
	if d > 5*time.Second {
		d = 5 * time.Second
	}
	return d
}

// reap is the liveness loop: it requeues batches whose lease expired and
// steals everything leased to workers whose heartbeats stopped.
func (c *Coordinator) reap() {
	defer close(c.stopped)
	t := time.NewTicker(c.reapInterval())
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case now := <-t.C:
			c.mu.Lock()
			for id, l := range c.leases {
				if now.After(l.expires) {
					c.log.Info("fleet lease expired", "batch", id, "worker", l.worker)
					c.dropLeaseLocked(l, "lease_expired")
				}
			}
			deadAfter := 3 * c.cfg.Heartbeat
			for id, w := range c.workers {
				if now.Sub(w.lastSeen) > deadAfter {
					c.log.Info("fleet worker dead", "worker", id, "name", w.name)
					c.removeWorkerLocked(w, "worker_dead")
				}
			}
			c.mu.Unlock()
		}
	}
}

// dropLeaseLocked dissolves a lease and requeues its unfinished tasks.
func (c *Coordinator) dropLeaseLocked(l *lease, reason string) {
	delete(c.leases, l.id)
	c.metrics.leases.Dec()
	if w := c.workers[l.worker]; w != nil {
		w.batches--
	}
	for _, t := range l.tasks {
		if !t.done && t.batch == l.id {
			c.requeueLocked(t, reason)
		}
	}
}

// removeWorkerLocked unregisters a worker and requeues everything it held.
func (c *Coordinator) removeWorkerLocked(w *workerState, reason string) {
	delete(c.workers, w.id)
	c.metrics.workers.Dec()
	for _, l := range c.leases {
		if l.worker == w.id {
			c.dropLeaseLocked(l, reason)
		}
	}
}

// requeueLocked puts a not-done task back at the front of the queue (stolen
// work jumps the line — its campaign has been waiting longest), failing it
// outright once it has exhausted its retries.
func (c *Coordinator) requeueLocked(t *task, reason string) {
	if t.done {
		return
	}
	t.batch = ""
	c.metrics.requeues(reason).Inc()
	c.requeued++
	t.retries++
	if t.retries > c.cfg.MaxRetries {
		c.finishLocked(t, workloads.RunResult{}, nil,
			fmt.Errorf("fleet: task %s requeued %d times without completing (last reason: %s)", t.id, t.retries, reason))
		return
	}
	if !t.queued {
		t.queued = true
		c.queue = append([]*task{t}, c.queue...)
		c.metrics.queueDepth.Inc()
	}
}

// finishLocked settles a task — first completion wins — and wakes every
// campaign waiting on it.
func (c *Coordinator) finishLocked(t *task, run workloads.RunResult, rep *crashtest.Report, err error) {
	if t.done {
		return
	}
	t.done = true
	t.run, t.report, t.err = run, rep, err
	t.batch = ""
	if t.queued {
		t.queued = false
		c.metrics.queueDepth.Dec()
		for i, q := range c.queue {
			if q == t {
				c.queue = append(c.queue[:i], c.queue[i+1:]...)
				break
			}
		}
	}
	if err != nil {
		c.metrics.tasksFail.Inc()
		c.tasksFailed++
	} else {
		c.metrics.tasksDone.Inc()
		c.tasksDone++
	}
	for _, ch := range t.notify {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
	if t.waiters == 0 {
		delete(c.tasks, t.id)
	}
}

// enroll registers a campaign's interest in a unit of work, creating and
// queueing the task on first use and joining the existing one otherwise —
// the fleet-wide dedupe point.
func (c *Coordinator) enroll(id, kind string, cell runner.Cell, key resultstore.Key, crash *crashtest.Config, notify chan struct{}) *task {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.tasks[id]
	if t == nil {
		cell.ID = id // transport ID: unique within any batch by construction
		t = &task{id: id, kind: kind, cell: cell, key: key, crash: crash}
		c.tasks[id] = t
		t.queued = true
		c.queue = append(c.queue, t)
		c.metrics.queueDepth.Inc()
	}
	t.waiters++
	t.notify = append(t.notify, notify)
	return t
}

// release drops a campaign's subscriptions. Tasks nobody is waiting for are
// pruned: queued ones leave the queue immediately; leased ones settle when
// their batch completes and are pruned then.
func (c *Coordinator) release(tasks []*task, notify chan struct{}) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, t := range tasks {
		t.waiters--
		for i, ch := range t.notify {
			if ch == notify {
				t.notify = append(t.notify[:i], t.notify[i+1:]...)
				break
			}
		}
		if t.waiters > 0 {
			continue
		}
		if t.done {
			delete(c.tasks, t.id)
			continue
		}
		if t.queued && t.batch == "" {
			t.queued = false
			c.metrics.queueDepth.Dec()
			for i, q := range c.queue {
				if q == t {
					c.queue = append(c.queue[:i], c.queue[i+1:]...)
					break
				}
			}
			delete(c.tasks, t.id)
		}
	}
}

// snapshot reads a task's settled outcome, if any.
func (c *Coordinator) snapshot(t *task) (run workloads.RunResult, rep *crashtest.Report, err error, done bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return t.run, t.report, t.err, t.done
}

// RunPlan shards a plan across the fleet and merges the results back into a
// plan-ordered ResultSet, exactly as runner.Run would have produced locally:
// cells already in the store answer immediately (Cached), the rest dispatch
// as batches, and identical cells — within the plan's own grid or across
// concurrent campaigns — share one task. opts.Parallel is ignored (the
// fleet's parallelism is its workers); opts.Seed and opts.Progress behave as
// in runner.Run. Cancelling ctx abandons the wait: unfinished cells report
// ErrCancelled and their tasks are withdrawn unless another campaign still
// wants them.
func (c *Coordinator) RunPlan(ctx context.Context, plan runner.Plan, opts runner.Options) (*runner.ResultSet, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	results := make([]runner.Result, len(plan.Cells))
	total := len(plan.Cells)
	done := 0
	report := func(i int, res runner.Result) {
		results[i] = res
		done++
		if opts.Progress != nil {
			opts.Progress(runner.ProgressEvent{Done: done, Total: total, Result: res})
		}
	}

	notify := make(chan struct{}, 1)
	type slot struct {
		idx  int
		cell runner.Cell // the campaign's cell: original ID, seed filled
		t    *task
	}
	var pending []slot
	var enrolled []*task
	for i, cell := range plan.Cells {
		cell = runner.Seeded(cell, opts.Seed)
		key := resultstore.Key{Cell: cell.Key(), Seed: cell.Seed}
		if run, ok := c.cfg.Store.Get(key); ok {
			report(i, runner.Result{Cell: cell, Run: run, Cached: true})
			continue
		}
		t := c.enroll("c:"+key.Cell+"#"+fmt.Sprint(key.Seed), TaskCell, cell, key, nil, notify)
		pending = append(pending, slot{idx: i, cell: cell, t: t})
		enrolled = append(enrolled, t)
	}
	defer c.release(enrolled, notify)

	for len(pending) > 0 {
		var still []slot
		for _, s := range pending {
			run, _, err, settled := c.snapshot(s.t)
			if !settled {
				still = append(still, s)
				continue
			}
			report(s.idx, runner.Result{Cell: s.cell, Run: run, Err: err})
		}
		pending = still
		if len(pending) == 0 {
			break
		}
		select {
		case <-notify:
		case <-ctx.Done():
			// Mirror runner.Run's cancellation: unfinished cells carry
			// ErrCancelled, the set still returns whole.
			for _, s := range pending {
				report(s.idx, runner.Result{Cell: s.cell, Err: runner.ErrCancelled})
			}
			pending = nil
		}
	}
	return runner.NewResultSet(plan, results)
}

// Explore dispatches one crash-point exploration to the fleet and returns
// its report. Identical configs — concurrent or retried — share one task.
// Configs carrying a Factory cannot cross the wire and are rejected.
func (c *Coordinator) Explore(ctx context.Context, cfg crashtest.Config) (*crashtest.Report, error) {
	if cfg.Factory != nil {
		return nil, fmt.Errorf("fleet: a crashtest Config with a Factory cannot be dispatched")
	}
	cfg.Parallel = 0
	cfg.Progress = nil
	raw, err := json.Marshal(cfg)
	if err != nil {
		return nil, fmt.Errorf("fleet: encoding crashtest config: %w", err)
	}
	sum := sha256.Sum256(raw)
	id := "x:" + hex.EncodeToString(sum[:])

	notify := make(chan struct{}, 1)
	t := c.enroll(id, TaskCrashtest, runner.Cell{}, resultstore.Key{}, &cfg, notify)
	defer c.release([]*task{t}, notify)
	for {
		_, rep, err, settled := c.snapshot(t)
		if settled {
			return rep, err
		}
		select {
		case <-notify:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// register admits a worker.
func (c *Coordinator) register(req RegisterRequest) RegisterResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextWorker++
	id := fmt.Sprintf("w-%06d", c.nextWorker)
	name := req.Name
	if name == "" {
		name = id
	}
	c.workers[id] = &workerState{id: id, name: name, parallel: req.Parallel, lastSeen: time.Now()}
	c.metrics.workers.Inc()
	c.log.Info("fleet worker registered", "worker", id, "name", name, "parallel", req.Parallel)
	return RegisterResponse{
		WorkerID:         id,
		HeartbeatSeconds: c.cfg.Heartbeat.Seconds(),
		LeaseSeconds:     c.cfg.LeaseTTL.Seconds(),
	}
}

// touch refreshes a worker's liveness; reports false for unknown workers
// (they must re-register).
func (c *Coordinator) touch(workerID string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.workers[workerID]
	if w == nil {
		return false
	}
	w.lastSeen = time.Now()
	return true
}

// leaseBatch hands the worker the next batch: up to BatchSize queued tasks
// of one kind (crashtest tasks go one per batch). Reports ok=false for an
// unknown worker.
func (c *Coordinator) leaseBatch(workerID string) (*Batch, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.workers[workerID]
	if w == nil {
		return nil, false
	}
	w.lastSeen = time.Now()
	if len(c.queue) == 0 {
		return nil, true
	}
	n := 1
	if c.queue[0].kind == TaskCell {
		for n < len(c.queue) && n < c.cfg.BatchSize && c.queue[n].kind == TaskCell {
			n++
		}
	}
	tasks := append([]*task(nil), c.queue[:n]...)
	c.queue = c.queue[n:]
	c.nextBatch++
	l := &lease{
		id:      fmt.Sprintf("batch-%06d", c.nextBatch),
		worker:  workerID,
		tasks:   tasks,
		expires: time.Now().Add(c.cfg.LeaseTTL),
	}
	c.leases[l.id] = l
	w.batches++
	c.metrics.leases.Inc()
	c.metrics.batches.Inc()
	b := &Batch{ID: l.id, LeaseSeconds: c.cfg.LeaseTTL.Seconds()}
	for _, t := range tasks {
		t.queued = false
		c.metrics.queueDepth.Dec()
		t.batch = l.id
		wt := Task{ID: t.id, Kind: t.kind}
		switch t.kind {
		case TaskCell:
			cell := t.cell
			wt.Cell = &cell
		case TaskCrashtest:
			wt.Crashtest = t.crash
		}
		b.Tasks = append(b.Tasks, wt)
	}
	c.log.Info("fleet batch leased", "batch", l.id, "worker", workerID, "tasks", len(tasks), "kind", tasks[0].kind)
	return b, true
}

// complete settles a batch's task statuses. First completion wins: statuses
// for tasks already settled (a stolen batch's original worker reporting
// late) are ignored. Leased tasks the worker did not mention are requeued.
func (c *Coordinator) complete(req CompleteRequest) {
	// Phase 1, under mu: classify statuses and collect the done cell tasks
	// whose results must be read back from the store.
	type pendingRead struct {
		t   *task
		key resultstore.Key
	}
	var reads []pendingRead
	cellsDone := 0

	c.mu.Lock()
	w := c.workers[req.WorkerID]
	if w != nil {
		w.lastSeen = time.Now()
	}
	if l := c.leases[req.BatchID]; l != nil {
		delete(c.leases, req.BatchID)
		c.metrics.leases.Dec()
		if w != nil {
			w.batches--
		}
		reported := make(map[string]bool, len(req.Tasks))
		for _, s := range req.Tasks {
			reported[s.ID] = true
		}
		for _, t := range l.tasks {
			if !t.done && t.batch == l.id && !reported[t.id] {
				c.requeueLocked(t, "returned")
			}
		}
	}
	for _, s := range req.Tasks {
		t := c.tasks[s.ID]
		if t == nil || t.done {
			continue
		}
		switch s.Status {
		case StatusDone:
			if t.kind == TaskCrashtest {
				if s.Report == nil {
					c.finishLocked(t, workloads.RunResult{}, nil,
						fmt.Errorf("fleet: worker %s reported %s done without a report", req.WorkerID, t.id))
					continue
				}
				c.finishLocked(t, workloads.RunResult{}, s.Report, nil)
				continue
			}
			reads = append(reads, pendingRead{t: t, key: t.key})
		case StatusFailed:
			c.finishLocked(t, workloads.RunResult{}, nil, fmt.Errorf("%s", s.Error))
		case StatusReturned:
			c.requeueLocked(t, "returned")
		}
	}
	c.mu.Unlock()

	// Phase 2, store reads off the lock: a worker only reports a cell done
	// after its write-through PUT landed, so a miss here means the record was
	// lost in flight — requeue rather than trust it.
	type readResult struct {
		t   *task
		run workloads.RunResult
		ok  bool
	}
	results := make([]readResult, 0, len(reads))
	for _, r := range reads {
		run, ok := c.cfg.Store.Get(r.key)
		results = append(results, readResult{t: r.t, run: run, ok: ok})
	}

	c.mu.Lock()
	for _, r := range results {
		if r.t.done {
			continue
		}
		if !r.ok {
			c.log.Info("fleet task done but record missing; requeueing", "task", r.t.id)
			c.requeueLocked(r.t, "record_lost")
			continue
		}
		c.finishLocked(r.t, r.run, nil, nil)
		cellsDone++
	}
	var name string
	if w != nil {
		w.cells += uint64(cellsDone)
		name = w.name
	}
	c.mu.Unlock()
	if cellsDone > 0 && name != "" {
		c.metrics.workerCells(name).Add(uint64(cellsDone))
	}
}

// deregister removes a worker cleanly, requeueing anything it still held.
func (c *Coordinator) deregister(workerID string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if w := c.workers[workerID]; w != nil {
		c.log.Info("fleet worker deregistered", "worker", workerID, "name", w.name)
		c.removeWorkerLocked(w, "deregistered")
	}
}

// Status snapshots the fleet for GET /status and the dashboard.
func (c *Coordinator) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	st := Status{
		QueueDepth:  len(c.queue),
		Leases:      len(c.leases),
		TasksDone:   c.tasksDone,
		TasksFailed: c.tasksFailed,
		Requeues:    c.requeued,
	}
	for _, w := range c.workers {
		st.Workers = append(st.Workers, WorkerStatus{
			ID:         w.id,
			Name:       w.name,
			Parallel:   w.parallel,
			Cells:      w.cells,
			Batches:    w.batches,
			LastSeenMS: now.Sub(w.lastSeen).Milliseconds(),
		})
	}
	sortWorkers(st.Workers)
	return st
}

// sortWorkers orders status rows by worker ID (registration order).
func sortWorkers(ws []WorkerStatus) {
	for i := 1; i < len(ws); i++ {
		for j := i; j > 0 && ws[j].ID < ws[j-1].ID; j-- {
			ws[j], ws[j-1] = ws[j-1], ws[j]
		}
	}
}

// Handler serves the fleet protocol. Routes carry the full APIBase prefix,
// so the handler mounts unchanged on a bare mux (tests, a headless
// coordinator) or under serve's API.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+PathRegister, func(w http.ResponseWriter, r *http.Request) {
		var req RegisterRequest
		if !readJSON(w, r, &req) {
			return
		}
		writeJSON(w, http.StatusOK, c.register(req))
	})
	mux.HandleFunc("POST "+PathHeartbeat, func(w http.ResponseWriter, r *http.Request) {
		var req HeartbeatRequest
		if !readJSON(w, r, &req) {
			return
		}
		if !c.touch(req.WorkerID) {
			http.Error(w, "unknown worker", http.StatusNotFound)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("POST "+PathLease, func(w http.ResponseWriter, r *http.Request) {
		var req LeaseRequest
		if !readJSON(w, r, &req) {
			return
		}
		b, ok := c.leaseBatch(req.WorkerID)
		if !ok {
			http.Error(w, "unknown worker", http.StatusNotFound)
			return
		}
		writeJSON(w, http.StatusOK, LeaseResponse{Batch: b, Idle: b == nil})
	})
	mux.HandleFunc("POST "+PathComplete, func(w http.ResponseWriter, r *http.Request) {
		var req CompleteRequest
		if !readJSON(w, r, &req) {
			return
		}
		c.complete(req)
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("POST "+PathDeregister, func(w http.ResponseWriter, r *http.Request) {
		var req DeregisterRequest
		if !readJSON(w, r, &req) {
			return
		}
		c.deregister(req.WorkerID)
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET "+PathStatus, func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, c.Status())
	})
	mux.Handle(PathRecords, resultstore.Handler(c.cfg.Store))
	return mux
}

// readJSON decodes a bounded JSON request body, answering the 400 itself.
func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	body := http.MaxBytesReader(w, r.Body, 16<<20)
	if err := json.NewDecoder(body).Decode(v); err != nil {
		http.Error(w, fmt.Sprintf("decoding request: %v", err), http.StatusBadRequest)
		return false
	}
	return true
}

// writeJSON writes v with status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
