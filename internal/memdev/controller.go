package memdev

import (
	"dhtm/internal/config"
	"dhtm/internal/stats"
)

// TrafficClass labels NVM traffic for accounting purposes.
type TrafficClass int

const (
	// TrafficData is in-place data movement (line fills and write-backs).
	TrafficData TrafficClass = iota
	// TrafficLog is durable-log traffic (redo/undo records, commit markers,
	// overflow-list entries, software log flushes).
	TrafficLog
)

// Controller is the persistent-memory controller. It performs the functional
// access against the backing Store and charges device latency plus channel
// occupancy, so that heavy logging from one core delays everybody else's
// memory traffic — the effect behind Figure 6 and Table VII of the paper.
//
// The controller is used from the single core that currently holds the
// scheduling token, so it needs no locking.
type Controller struct {
	cfg   config.Config
	store *Store
	st    *stats.Stats

	// channelFreeAt is the cycle at which the memory channel next becomes
	// idle. Requests issued earlier queue behind it.
	channelFreeAt uint64
}

// NewController wires a controller to a backing store.
func NewController(cfg config.Config, store *Store, st *stats.Stats) *Controller {
	return &Controller{cfg: cfg, store: store, st: st}
}

// Store exposes the durable backing store (recovery and verification read it
// directly; timed accesses should go through the controller).
func (c *Controller) Store() *Store { return c.store }

// Config returns the controller's configuration.
func (c *Controller) Config() config.Config { return c.cfg }

// occupy reserves channel time for n bytes starting no earlier than at and
// returns the cycle at which the transfer begins.
func (c *Controller) occupy(n int, at uint64) uint64 {
	start := at
	if c.channelFreeAt > start {
		start = c.channelFreeAt
	}
	c.channelFreeAt = start + c.cfg.TransferCycles(n)
	return start
}

// ChannelFreeAt reports when the memory channel next becomes idle.
func (c *Controller) ChannelFreeAt() uint64 { return c.channelFreeAt }

// ReadLine fetches the line containing addr. The returned cycle is when the
// data is available at the LLC.
func (c *Controller) ReadLine(addr uint64, at uint64) (Line, uint64) {
	start := c.occupy(LineBytes, at)
	if c.st != nil {
		c.st.DataReadBytes += LineBytes
	}
	return c.store.ReadLine(addr), start + c.cfg.NVMReadLatency
}

// WriteLine writes a full line in place. The returned cycle is when the write
// is durable.
func (c *Controller) WriteLine(addr uint64, data Line, at uint64, class TrafficClass) uint64 {
	start := c.occupy(LineBytes, at)
	c.store.WriteLine(addr, data)
	c.account(LineBytes, class)
	return start + c.cfg.NVMWriteLatency
}

// WriteWord writes a single 8-byte word, charging bandwidth for it. It is
// the allocation-free primitive behind per-append metadata persists (log head
// pointers, overflow-list counts).
func (c *Controller) WriteWord(addr uint64, word uint64, at uint64, class TrafficClass) uint64 {
	start := c.occupy(8, at)
	c.store.WriteWord(addr, word)
	c.account(8, class)
	return start + c.cfg.NVMWriteLatency
}

// WriteWords writes a sequence of 8-byte words starting at addr (8-byte
// aligned), charging bandwidth for the actual byte count. It is the primitive
// used for durable log appends and overflow-list entries, which the paper's
// hardware streams past the LLC straight to memory.
func (c *Controller) WriteWords(addr uint64, words []uint64, at uint64, class TrafficClass) uint64 {
	n := len(words) * 8
	if n == 0 {
		return at
	}
	start := c.occupy(n, at)
	for i, w := range words {
		c.store.WriteWord(addr+uint64(i*8), w)
	}
	c.account(n, class)
	return start + c.cfg.NVMWriteLatency
}

// ReserveWrite reserves channel occupancy and device write latency for n
// bytes without performing a functional write. DHTM's commit uses it to
// account for the completion phase's in-place write-backs at the moment the
// hardware issues them, while the functional effect is applied when the
// completion phase finishes (keeping the crash model honest: the data is not
// in the durable image until completion).
func (c *Controller) ReserveWrite(n int, at uint64, class TrafficClass) uint64 {
	if n <= 0 {
		return at
	}
	start := c.occupy(n, at)
	c.account(n, class)
	return start + c.cfg.NVMWriteLatency
}

// ReadWords reads count words starting at addr, charging bandwidth.
func (c *Controller) ReadWords(addr uint64, count int, at uint64) ([]uint64, uint64) {
	if count <= 0 {
		return nil, at
	}
	start := c.occupy(count*8, at)
	out := make([]uint64, count)
	for i := range out {
		out[i] = c.store.ReadWord(addr + uint64(i*8))
	}
	if c.st != nil {
		c.st.DataReadBytes += uint64(count * 8)
	}
	return out, start + c.cfg.NVMReadLatency
}

// account records write traffic in the global statistics.
func (c *Controller) account(n int, class TrafficClass) {
	if c.st == nil {
		return
	}
	switch class {
	case TrafficLog:
		c.st.LogBytes += uint64(n)
	default:
		c.st.DataWriteBytes += uint64(n)
	}
}
