package memdev

import (
	"dhtm/internal/config"
	"dhtm/internal/stats"
)

// TrafficClass labels NVM traffic for accounting purposes and, at finer
// granularity, classifies each durable write for the persist observer: the
// crash-point explorer uses the class to tell a redo append from a commit
// marker from an in-place write-back when numbering crash points.
type TrafficClass int

const (
	// TrafficData is in-place data movement (line fills and write-backs).
	TrafficData TrafficClass = iota
	// TrafficLog is generic durable-log traffic (software log flushes and
	// other log writes that carry no record-type information).
	TrafficLog
	// TrafficLogRedo through TrafficLogSentinel are durable log-record
	// appends, classified by the record type they carry.
	TrafficLogRedo
	TrafficLogUndo
	TrafficLogCommit
	TrafficLogComplete
	TrafficLogAbort
	TrafficLogSentinel
	// TrafficLogOverflow is an overflow-list entry (an overflowed write-set
	// line address).
	TrafficLogOverflow
	// TrafficLogMeta is durable log metadata: head/tail pointers, overflow
	// counts and registry entries — including the truncation writes that
	// release log space.
	TrafficLogMeta
)

// IsLog reports whether the class is accounted as durable-log traffic.
func (c TrafficClass) IsLog() bool { return c != TrafficData }

// String implements fmt.Stringer (the crash-point report keys on it).
func (c TrafficClass) String() string {
	switch c {
	case TrafficData:
		return "data"
	case TrafficLog:
		return "log"
	case TrafficLogRedo:
		return "log-redo"
	case TrafficLogUndo:
		return "log-undo"
	case TrafficLogCommit:
		return "log-commit"
	case TrafficLogComplete:
		return "log-complete"
	case TrafficLogAbort:
		return "log-abort"
	case TrafficLogSentinel:
		return "log-sentinel"
	case TrafficLogOverflow:
		return "log-overflow"
	case TrafficLogMeta:
		return "log-meta"
	default:
		return "unknown"
	}
}

// PersistEvent describes one durable write about to reach the persistent
// image. Data aliases a controller-internal buffer and is valid only for the
// duration of the PersistWrite call; observers that keep it must copy.
type PersistEvent struct {
	// Class labels what the write is (record append, metadata, in-place data).
	Class TrafficClass
	// Addr is the first byte address written; words land at Addr, Addr+8, ...
	Addr uint64
	// Data holds the 8-byte words being written.
	Data []uint64
	// Charged reports whether the write went through the bandwidth model
	// (false for functional completions whose timing was reserved earlier and
	// for metadata the hardware persists off the critical path).
	Charged bool
}

// PersistObserver sees every durable write in program order, numbered by seq
// from zero. It is invoked *before* the write reaches the backing store, so an
// observer that snapshots the store when seq == k captures exactly the image
// in which writes 0..k-1 are durable and write k is not — the crash model the
// torture-testing subsystem explores.
type PersistObserver interface {
	PersistWrite(seq uint64, ev PersistEvent)
}

// Controller is the persistent-memory controller. It performs the functional
// access against the backing Store and charges device latency plus channel
// occupancy, so that heavy logging from one core delays everybody else's
// memory traffic — the effect behind Figure 6 and Table VII of the paper.
//
// The controller is used from the single core that currently holds the
// scheduling token, so it needs no locking.
type Controller struct {
	cfg   config.Config
	store *Store
	st    *stats.Stats

	// channelFreeAt is the cycle at which the memory channel next becomes
	// idle. Requests issued earlier queue behind it.
	channelFreeAt uint64

	// obs, when non-nil, observes every durable write; obsSeq numbers them.
	// obsScratch stages single-word and line payloads so notifying never
	// allocates.
	obs        PersistObserver
	obsSeq     uint64
	obsScratch Line
}

// NewController wires a controller to a backing store.
func NewController(cfg config.Config, store *Store, st *stats.Stats) *Controller {
	return &Controller{cfg: cfg, store: store, st: st}
}

// Store exposes the durable backing store (recovery and verification read it
// directly; timed accesses should go through the controller).
func (c *Controller) Store() *Store { return c.store }

// Config returns the controller's configuration.
func (c *Controller) Config() config.Config { return c.cfg }

// SetPersistObserver installs (or, with nil, removes) the observer notified of
// every durable write from now on. The event sequence restarts at zero.
func (c *Controller) SetPersistObserver(o PersistObserver) {
	c.obs = o
	c.obsSeq = 0
}

// PersistSeq returns the number of durable writes observed since the observer
// was installed.
func (c *Controller) PersistSeq() uint64 { return c.obsSeq }

// notify delivers one pre-apply persist event to the observer.
func (c *Controller) notify(class TrafficClass, addr uint64, data []uint64, charged bool) {
	c.obs.PersistWrite(c.obsSeq, PersistEvent{Class: class, Addr: addr, Data: data, Charged: charged})
	c.obsSeq++
}

// occupy reserves channel time for n bytes starting no earlier than at and
// returns the cycle at which the transfer begins.
func (c *Controller) occupy(n int, at uint64) uint64 {
	start := at
	if c.channelFreeAt > start {
		start = c.channelFreeAt
	}
	c.channelFreeAt = start + c.cfg.TransferCycles(n)
	return start
}

// ChannelFreeAt reports when the memory channel next becomes idle.
func (c *Controller) ChannelFreeAt() uint64 { return c.channelFreeAt }

// ReadLine fetches the line containing addr. The returned cycle is when the
// data is available at the LLC.
func (c *Controller) ReadLine(addr uint64, at uint64) (Line, uint64) {
	start := c.occupy(LineBytes, at)
	if c.st != nil {
		c.st.DataReadBytes += LineBytes
	}
	return c.store.ReadLine(addr), start + c.cfg.NVMReadLatency
}

// WriteLine writes a full line in place. The returned cycle is when the write
// is durable.
func (c *Controller) WriteLine(addr uint64, data Line, at uint64, class TrafficClass) uint64 {
	start := c.occupy(LineBytes, at)
	if c.obs != nil {
		c.obsScratch = data
		c.notify(class, addr, c.obsScratch[:], true)
	}
	c.store.WriteLine(addr, data)
	c.account(LineBytes, class)
	return start + c.cfg.NVMWriteLatency
}

// WriteWord writes a single 8-byte word, charging bandwidth for it. It is
// the allocation-free primitive behind per-append metadata persists (log head
// pointers, overflow-list counts).
func (c *Controller) WriteWord(addr uint64, word uint64, at uint64, class TrafficClass) uint64 {
	start := c.occupy(8, at)
	if c.obs != nil {
		c.obsScratch[0] = word
		c.notify(class, addr, c.obsScratch[:1], true)
	}
	c.store.WriteWord(addr, word)
	c.account(8, class)
	return start + c.cfg.NVMWriteLatency
}

// WriteWords writes a sequence of 8-byte words starting at addr (8-byte
// aligned), charging bandwidth for the actual byte count. It is the primitive
// used for durable log appends and overflow-list entries, which the paper's
// hardware streams past the LLC straight to memory.
func (c *Controller) WriteWords(addr uint64, words []uint64, at uint64, class TrafficClass) uint64 {
	n := len(words) * 8
	if n == 0 {
		return at
	}
	start := c.occupy(n, at)
	if c.obs != nil {
		c.notify(class, addr, words, true)
	}
	for i, w := range words {
		c.store.WriteWord(addr+uint64(i*8), w)
	}
	c.account(n, class)
	return start + c.cfg.NVMWriteLatency
}

// PersistLine applies a functional line write to the durable image without
// charging channel occupancy — its timing was reserved earlier (DHTM's
// completion write-backs) or it models state the hardware persists off the
// critical path. Functionally it is a durable write, so it fires the persist
// observer like any charged write.
func (c *Controller) PersistLine(addr uint64, data Line, class TrafficClass) {
	if c.obs != nil {
		c.obsScratch = data
		c.notify(class, addr, c.obsScratch[:], false)
	}
	c.store.WriteLine(addr, data)
}

// PersistWord is PersistLine's single-word counterpart (log head/tail
// pointers, overflow counts, registry entries).
func (c *Controller) PersistWord(addr uint64, word uint64, class TrafficClass) {
	if c.obs != nil {
		c.obsScratch[0] = word
		c.notify(class, addr, c.obsScratch[:1], false)
	}
	c.store.WriteWord(addr, word)
}

// ReserveWrite reserves channel occupancy and device write latency for n
// bytes without performing a functional write. DHTM's commit uses it to
// account for the completion phase's in-place write-backs at the moment the
// hardware issues them, while the functional effect is applied when the
// completion phase finishes (keeping the crash model honest: the data is not
// in the durable image until completion).
func (c *Controller) ReserveWrite(n int, at uint64, class TrafficClass) uint64 {
	if n <= 0 {
		return at
	}
	start := c.occupy(n, at)
	c.account(n, class)
	return start + c.cfg.NVMWriteLatency
}

// ReadWords reads count words starting at addr, charging bandwidth.
func (c *Controller) ReadWords(addr uint64, count int, at uint64) ([]uint64, uint64) {
	if count <= 0 {
		return nil, at
	}
	start := c.occupy(count*8, at)
	out := make([]uint64, count)
	for i := range out {
		out[i] = c.store.ReadWord(addr + uint64(i*8))
	}
	if c.st != nil {
		c.st.DataReadBytes += uint64(count * 8)
	}
	return out, start + c.cfg.NVMReadLatency
}

// account records write traffic in the global statistics.
func (c *Controller) account(n int, class TrafficClass) {
	if c.st == nil {
		return
	}
	if class.IsLog() {
		c.st.LogBytes += uint64(n)
	} else {
		c.st.DataWriteBytes += uint64(n)
	}
}
