// Package memdev models the byte-addressable persistent memory device: a
// sparse, line-granular backing store holding the durable contents of memory,
// and a memory controller that charges read/write latency and channel
// bandwidth occupancy for every access that reaches the device.
//
// The Store is the only state that survives a simulated crash; caches and any
// in-flight buffers are volatile and are discarded by the hierarchy.
package memdev

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"sort"
)

// WordsPerLine is the number of 8-byte words in a 64-byte cache line. The
// simulator uses 64-byte lines throughout, matching the paper's configuration.
const WordsPerLine = 8

// LineBytes is the size of a cache line in bytes.
const LineBytes = WordsPerLine * 8

// Line is the data payload of one cache line.
type Line [WordsPerLine]uint64

// Store is the durable backing store: a sparse map from line-aligned
// addresses to line contents. Reads of never-written memory return zeroes,
// like freshly allocated persistent memory.
type Store struct {
	lines map[uint64]*Line
}

// NewStore returns an empty persistent-memory image.
func NewStore() *Store {
	return &Store{lines: make(map[uint64]*Line)}
}

// lineAddr masks addr down to its containing line address.
func lineAddr(addr uint64) uint64 { return addr &^ uint64(LineBytes-1) }

// wordIndex returns the word offset of addr within its line.
func wordIndex(addr uint64) int { return int(addr%LineBytes) / 8 }

// ReadWord returns the 8-byte word at addr (addr must be 8-byte aligned).
func (s *Store) ReadWord(addr uint64) uint64 {
	l, ok := s.lines[lineAddr(addr)]
	if !ok {
		return 0
	}
	return l[wordIndex(addr)]
}

// WriteWord stores an 8-byte word at addr (addr must be 8-byte aligned).
func (s *Store) WriteWord(addr uint64, val uint64) {
	la := lineAddr(addr)
	l, ok := s.lines[la]
	if !ok {
		l = new(Line)
		s.lines[la] = l
	}
	l[wordIndex(addr)] = val
}

// ReadLine returns a copy of the line containing addr.
func (s *Store) ReadLine(addr uint64) Line {
	if l, ok := s.lines[lineAddr(addr)]; ok {
		return *l
	}
	return Line{}
}

// WriteLine replaces the entire line containing addr.
func (s *Store) WriteLine(addr uint64, data Line) {
	la := lineAddr(addr)
	l, ok := s.lines[la]
	if !ok {
		l = new(Line)
		s.lines[la] = l
	}
	*l = data
}

// LineCount reports how many distinct lines have ever been written.
func (s *Store) LineCount() int { return len(s.lines) }

// ForEachLine visits every populated line in ascending address order.
// The callback receives a copy of the line data.
func (s *Store) ForEachLine(f func(addr uint64, data Line)) {
	addrs := make([]uint64, 0, len(s.lines))
	for a := range s.lines {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		f(a, *s.lines[a])
	}
}

// Clone returns a deep copy of the store, useful for before/after comparisons
// in crash-recovery tests.
func (s *Store) Clone() *Store {
	c := NewStore()
	for a, l := range s.lines {
		cp := *l
		c.lines[a] = &cp
	}
	return c
}

// snapshot is the gob wire format for a Store image.
type snapshot struct {
	Addrs []uint64
	Data  []Line
}

// Save serialises the persistent-memory image to w (used by cmd/dhtm-sim to
// produce crash images that cmd/dhtm-recover replays).
func (s *Store) Save(w io.Writer) error {
	var snap snapshot
	s.ForEachLine(func(addr uint64, data Line) {
		snap.Addrs = append(snap.Addrs, addr)
		snap.Data = append(snap.Data, data)
	})
	if err := gob.NewEncoder(w).Encode(&snap); err != nil {
		return fmt.Errorf("memdev: encoding store image: %w", err)
	}
	return nil
}

// Load replaces the store contents with an image previously written by Save.
func (s *Store) Load(r io.Reader) error {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("memdev: decoding store image: %w", err)
	}
	if len(snap.Addrs) != len(snap.Data) {
		return fmt.Errorf("memdev: corrupt store image: %d addresses, %d lines", len(snap.Addrs), len(snap.Data))
	}
	s.lines = make(map[uint64]*Line, len(snap.Addrs))
	for i, a := range snap.Addrs {
		l := snap.Data[i]
		s.lines[a] = &l
	}
	return nil
}

// Equal reports whether two images hold identical contents (zero-filled lines
// are treated as absent).
func (s *Store) Equal(o *Store) bool {
	var za Line
	check := func(a, b *Store) bool {
		for addr, l := range a.lines {
			ol, ok := b.lines[addr]
			if !ok {
				if *l != za {
					return false
				}
				continue
			}
			if *l != *ol {
				return false
			}
		}
		return true
	}
	return check(s, o) && check(o, s)
}

// Dump writes a human-readable hex listing of the populated lines, primarily
// for debugging and the dhtm-recover inspection mode.
func (s *Store) Dump(w io.Writer) {
	s.ForEachLine(func(addr uint64, data Line) {
		var b bytes.Buffer
		fmt.Fprintf(&b, "%#016x:", addr)
		for _, wd := range data {
			fmt.Fprintf(&b, " %016x", wd)
		}
		fmt.Fprintln(w, b.String())
	})
}
