// Package memdev models the byte-addressable persistent memory device: a
// sparse, line-granular backing store holding the durable contents of memory,
// and a memory controller that charges read/write latency and channel
// bandwidth occupancy for every access that reaches the device.
//
// The Store is the only state that survives a simulated crash; caches and any
// in-flight buffers are volatile and are discarded by the hierarchy.
package memdev

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"math/bits"
	"sort"
)

// WordsPerLine is the number of 8-byte words in a 64-byte cache line. The
// simulator uses 64-byte lines throughout, matching the paper's configuration.
const WordsPerLine = 8

// LineBytes is the size of a cache line in bytes.
const LineBytes = WordsPerLine * 8

// Line is the data payload of one cache line.
type Line [WordsPerLine]uint64

// Page geometry of the store's two-level page table. Each page is one
// contiguous slab of 512 lines (32 KB of data), allocated on first touch.
const (
	pageLineShift = 9 // 512 lines per page
	pageLines     = 1 << pageLineShift
	pageLineMask  = pageLines - 1
	pageByteShift = pageLineShift + 6 // line shift (64 B) + page shift
	// rootPages bounds the directly indexed root table: pages below it live
	// in a grow-on-demand slice (pure array indexing on the hot path), pages
	// at or above it — addresses past 2 GB, which no simulated component
	// uses — fall back to a sparse map so arbitrary addresses stay legal.
	rootPages = 1 << 16
)

// page is one slab of contiguous lines plus a bitmap of the lines that have
// ever been written. The bitmap preserves the semantics of the previous
// map-based store: a line written with all-zero data is "populated" and
// distinguishable from a never-touched (zero-filled) line, so LineCount,
// ForEachLine and the gob image format are unchanged.
type page struct {
	lines   [pageLines]Line
	written [pageLines / 64]uint64
}

// Store is the durable backing store: a sparse, two-level page table mapping
// line-aligned addresses to line slabs. Reads of never-written memory return
// zeroes, like freshly allocated persistent memory.
//
// Stores support copy-on-write cloning: Clone shares the root page slabs
// between the two images and the first write to a shared page — on either
// side — copies just that 32 KB slab. A store can additionally be frozen into
// an immutable snapshot image (Freeze), after which writes panic and Clone is
// safe to call from multiple goroutines concurrently.
type Store struct {
	root []*page          // indexed by page number, grown on demand
	far  map[uint64]*page // pages at or above rootPages (cold fallback)
	// populated counts lines whose written bit is set, i.e. distinct lines
	// ever written.
	populated int

	// owned is a bitmap over root page numbers marking slabs this store may
	// mutate in place. A page without its bit set is shared with another
	// image (or inherited from a snapshot) and is copied on first write.
	// Never-cloned stores own every page they allocate, so the write fast
	// path stays a bitmap test. Far pages are deep-copied at Clone and are
	// always owned.
	owned []uint64
	// frozen marks an immutable snapshot image: writes panic. A frozen store
	// owns nothing (owned is nil), so Clone performs no writes to it and may
	// run concurrently.
	frozen bool
}

// NewStore returns an empty persistent-memory image.
func NewStore() *Store {
	return &Store{}
}

// lineAddr masks addr down to its containing line address.
func lineAddr(addr uint64) uint64 { return addr &^ uint64(LineBytes-1) }

// wordIndex returns the word offset of addr within its line.
func wordIndex(addr uint64) int { return int(addr%LineBytes) / 8 }

// pageOf returns the page containing addr, or nil if it was never written.
func (s *Store) pageOf(addr uint64) *page {
	pn := addr >> pageByteShift
	if pn < uint64(len(s.root)) {
		return s.root[pn]
	}
	if pn < rootPages {
		return nil
	}
	return s.far[pn]
}

// ownedPage reports whether this store may mutate the root page pn in place.
func (s *Store) ownedPage(pn uint64) bool {
	w := pn >> 6
	return w < uint64(len(s.owned)) && s.owned[w]&(1<<(pn&63)) != 0
}

// setOwned marks root page pn as exclusively this store's.
func (s *Store) setOwned(pn uint64) {
	w := pn >> 6
	for uint64(len(s.owned)) <= w {
		s.owned = append(s.owned, 0)
	}
	s.owned[w] |= 1 << (pn & 63)
}

// writable returns the page containing addr with this store holding exclusive
// ownership of its slab, so the caller may mutate it. The fast path — an
// already-owned allocated root page — is two array indexes and a mask.
func (s *Store) writable(addr uint64) *page {
	pn := addr >> pageByteShift
	if pn < uint64(len(s.root)) {
		if p := s.root[pn]; p != nil && s.ownedPage(pn) {
			return p
		}
	}
	return s.writableSlow(addr)
}

// writableSlow handles the cold write cases: frozen images (panic), shared
// pages (copy the slab), and first-touch allocation.
func (s *Store) writableSlow(addr uint64) *page {
	if s.frozen {
		panic(fmt.Sprintf("memdev: write at %#x to frozen store image", addr))
	}
	pn := addr >> pageByteShift
	if pn < uint64(len(s.root)) {
		if p := s.root[pn]; p != nil {
			// Shared with another image: copy the 32 KB slab before writing.
			cp := new(page)
			*cp = *p
			s.root[pn] = cp
			s.setOwned(pn)
			return cp
		}
	}
	return s.ensurePage(addr)
}

// ensurePage returns the page containing addr, allocating its slab on first
// touch. A newly allocated page is exclusively this store's.
func (s *Store) ensurePage(addr uint64) *page {
	pn := addr >> pageByteShift
	if pn < rootPages {
		if pn >= uint64(len(s.root)) {
			// Grow with doubled capacity so ascending first touches cost
			// amortized O(1) root-table copies, not one copy per page.
			newLen := pn + 1
			if d := uint64(2 * len(s.root)); newLen < d {
				newLen = d
			}
			if newLen > rootPages {
				newLen = rootPages
			}
			grown := make([]*page, newLen)
			copy(grown, s.root)
			s.root = grown
		}
		p := s.root[pn]
		if p == nil {
			p = new(page)
			s.root[pn] = p
			s.setOwned(pn)
		}
		return p
	}
	if s.far == nil {
		s.far = make(map[uint64]*page)
	}
	p := s.far[pn]
	if p == nil {
		p = new(page)
		s.far[pn] = p
	}
	return p
}

// markWritten sets the written bit for the line slot, maintaining the
// populated-line count.
func (s *Store) markWritten(p *page, slot int) {
	w, b := slot>>6, uint64(1)<<(uint(slot)&63)
	if p.written[w]&b == 0 {
		p.written[w] |= b
		s.populated++
	}
}

// ReadWord returns the 8-byte word at addr (addr must be 8-byte aligned).
func (s *Store) ReadWord(addr uint64) uint64 {
	p := s.pageOf(addr)
	if p == nil {
		return 0
	}
	return p.lines[(addr>>6)&pageLineMask][wordIndex(addr)]
}

// WriteWord stores an 8-byte word at addr (addr must be 8-byte aligned).
func (s *Store) WriteWord(addr uint64, val uint64) {
	p := s.writable(addr)
	slot := int((addr >> 6) & pageLineMask)
	s.markWritten(p, slot)
	p.lines[slot][wordIndex(addr)] = val
}

// ReadLine returns a copy of the line containing addr.
func (s *Store) ReadLine(addr uint64) Line {
	p := s.pageOf(addr)
	if p == nil {
		return Line{}
	}
	return p.lines[(addr>>6)&pageLineMask]
}

// WriteLine replaces the entire line containing addr.
func (s *Store) WriteLine(addr uint64, data Line) {
	p := s.writable(addr)
	slot := int((addr >> 6) & pageLineMask)
	s.markWritten(p, slot)
	p.lines[slot] = data
}

// LineCount reports how many distinct lines have ever been written.
func (s *Store) LineCount() int { return s.populated }

// forEachPage visits every allocated page in ascending page-number order.
func (s *Store) forEachPage(f func(pn uint64, p *page)) {
	for pn, p := range s.root {
		if p != nil {
			f(uint64(pn), p)
		}
	}
	if len(s.far) > 0 {
		pns := make([]uint64, 0, len(s.far))
		for pn := range s.far {
			pns = append(pns, pn)
		}
		sort.Slice(pns, func(i, j int) bool { return pns[i] < pns[j] })
		for _, pn := range pns {
			f(pn, s.far[pn])
		}
	}
}

// ForEachLine visits every populated line in ascending address order.
// The callback receives a copy of the line data.
func (s *Store) ForEachLine(f func(addr uint64, data Line)) {
	s.forEachPage(func(pn uint64, p *page) {
		base := pn << pageByteShift
		for w, word := range p.written {
			for word != 0 {
				slot := w<<6 + bits.TrailingZeros64(word)
				word &= word - 1
				f(base+uint64(slot)<<6, p.lines[slot])
			}
		}
	})
}

// Clone returns an independent image with identical contents. The copy is
// lazy: both images share the root page slabs, and the first write to a
// shared page on either side copies just that slab. Cloning a frozen store
// writes nothing to it, so concurrent Clone calls on a frozen image are safe;
// cloning a live store is single-goroutine only (it drops the source's page
// ownership so later source writes copy too). Far pages — outside the 2 GB
// simulated range — are deep-copied eagerly; they are cold and almost always
// absent.
func (s *Store) Clone() *Store {
	c := &Store{populated: s.populated}
	if len(s.root) > 0 {
		c.root = make([]*page, len(s.root))
		copy(c.root, s.root)
	}
	if len(s.far) > 0 {
		c.far = make(map[uint64]*page, len(s.far))
		for pn, p := range s.far {
			cp := *p
			c.far[pn] = &cp
		}
	}
	// Neither image owns the shared slabs any more. A frozen source has no
	// ownership to drop (and must not be written even transiently).
	if !s.frozen {
		for i := range s.owned {
			s.owned[i] = 0
		}
	}
	return c
}

// Freeze turns the store into an immutable snapshot image: any subsequent
// write panics, and Clone may be called concurrently from multiple
// goroutines. Freezing is irreversible — to mutate the contents again, work
// on a Clone.
func (s *Store) Freeze() {
	s.frozen = true
	s.owned = nil
}

// Frozen reports whether the store has been frozen into an immutable image.
func (s *Store) Frozen() bool { return s.frozen }

// snapshot is the gob wire format for a Store image.
type snapshot struct {
	Addrs []uint64
	Data  []Line
}

// Save serialises the persistent-memory image to w (used by cmd/dhtm-sim to
// produce crash images that cmd/dhtm-recover replays).
func (s *Store) Save(w io.Writer) error {
	var snap snapshot
	s.ForEachLine(func(addr uint64, data Line) {
		snap.Addrs = append(snap.Addrs, addr)
		snap.Data = append(snap.Data, data)
	})
	if err := gob.NewEncoder(w).Encode(&snap); err != nil {
		return fmt.Errorf("memdev: encoding store image: %w", err)
	}
	return nil
}

// Load replaces the store contents with an image previously written by Save.
func (s *Store) Load(r io.Reader) error {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("memdev: decoding store image: %w", err)
	}
	if len(snap.Addrs) != len(snap.Data) {
		return fmt.Errorf("memdev: corrupt store image: %d addresses, %d lines", len(snap.Addrs), len(snap.Data))
	}
	if s.frozen {
		panic("memdev: Load into frozen store image")
	}
	*s = Store{}
	for i, a := range snap.Addrs {
		s.WriteLine(a, snap.Data[i])
	}
	return nil
}

// Equal reports whether two images hold identical contents (zero-filled lines
// are treated as absent).
func (s *Store) Equal(o *Store) bool {
	var za Line
	check := func(a, b *Store) bool {
		eq := true
		a.ForEachLine(func(addr uint64, data Line) {
			if !eq || data == za {
				return
			}
			if b.ReadLine(addr) != data {
				eq = false
			}
		})
		return eq
	}
	return check(s, o) && check(o, s)
}

// Dump writes a human-readable hex listing of the populated lines, primarily
// for debugging and the dhtm-recover inspection mode.
func (s *Store) Dump(w io.Writer) {
	s.ForEachLine(func(addr uint64, data Line) {
		var b bytes.Buffer
		fmt.Fprintf(&b, "%#016x:", addr)
		for _, wd := range data {
			fmt.Fprintf(&b, " %016x", wd)
		}
		fmt.Fprintln(w, b.String())
	})
}
