package memdev

import "testing"

// BenchmarkStoreWriteWord measures the store's word-write hot path over a
// working set resembling a workload heap (sequential lines with re-touches),
// which must not allocate once the pages are populated.
func BenchmarkStoreWriteWord(b *testing.B) {
	b.ReportAllocs()
	s := NewStore()
	const span = 1 << 20 // 1 MB of touched address space
	for a := uint64(0); a < span; a += 8 {
		s.WriteWord(a, a)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := (uint64(i) * 64) % span
		s.WriteWord(addr, uint64(i))
	}
}

// BenchmarkStoreReadWord measures the read path against the same layout.
func BenchmarkStoreReadWord(b *testing.B) {
	b.ReportAllocs()
	s := NewStore()
	const span = 1 << 20
	for a := uint64(0); a < span; a += 8 {
		s.WriteWord(a, a)
	}
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += s.ReadWord((uint64(i) * 64) % span)
	}
	_ = sink
}
