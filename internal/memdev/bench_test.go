package memdev

import "testing"

// BenchmarkStoreWriteWord measures the store's word-write hot path over a
// working set resembling a workload heap (sequential lines with re-touches),
// which must not allocate once the pages are populated.
func BenchmarkStoreWriteWord(b *testing.B) {
	b.ReportAllocs()
	s := NewStore()
	const span = 1 << 20 // 1 MB of touched address space
	for a := uint64(0); a < span; a += 8 {
		s.WriteWord(a, a)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := (uint64(i) * 64) % span
		s.WriteWord(addr, uint64(i))
	}
}

// BenchmarkSnapshotClone measures cloning a frozen setup-sized image (16 MB
// of touched lines) and dirtying a small working set, the per-cell cost the
// setup-snapshot cache pays instead of re-running workload Setup.
func BenchmarkSnapshotClone(b *testing.B) {
	b.ReportAllocs()
	img := NewStore()
	const span = 16 << 20 // 16 MB populated image, ~512 pages
	for a := uint64(0); a < span; a += 64 {
		img.WriteWord(a, a)
	}
	img.Freeze()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := img.Clone()
		// Touch 32 scattered lines — a cell's early writes — so the bench
		// includes the copy-on-write slab copies, not just the table copy.
		for j := uint64(0); j < 32; j++ {
			c.WriteWord((j*(span/32))%span, j)
		}
	}
}

// BenchmarkStoreReadWord measures the read path against the same layout.
func BenchmarkStoreReadWord(b *testing.B) {
	b.ReportAllocs()
	s := NewStore()
	const span = 1 << 20
	for a := uint64(0); a < span; a += 8 {
		s.WriteWord(a, a)
	}
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += s.ReadWord((uint64(i) * 64) % span)
	}
	_ = sink
}
