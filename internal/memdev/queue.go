package memdev

// This file models the controller's persist queue for crash-time analysis.
// The simulator applies durable writes to the Store eagerly (the functional
// image always reflects program order), but real NVM controllers buffer
// in-flight writes and may retire them out of order within a bounded window.
// PersistQueue captures which writes may still be in flight at any crash
// point, and an Adversary chooses which subsets of that window to apply when
// building a crash image. The crash-point explorer (internal/crashtest) is
// the consumer.
//
// Ordering contract. Two rules bound the reordering:
//
//  1. Window: at most Window non-barrier writes may be in flight at once —
//     when write k issues, every write before k-Window has retired.
//  2. Drains: a write whose TrafficClass drains (Drains) is a full persist
//     barrier. It issues only after every earlier write has retired, and it
//     retires before any later write issues — so a drain-class write is never
//     itself in flight alongside anything else.
//
// The drain classes are exactly the writes the designs order their recovery
// protocols around: commit/complete/abort markers and sentinels (a commit
// marker must not overtake the log records that justify it, in-place
// write-backs must not overtake their commit marker, a complete marker must
// not overtake the write-backs it certifies), and log metadata — head/tail
// pointers and overflow counts, which the hardware publishes with a fence so
// a record never becomes visible to recovery before its payload is durable.
// Everything else — record payload words, overflow-list entries and in-place
// data — may retire out of order within the window, which is precisely the
// freedom a relaxed persistency model grants and recovery must tolerate.

// Drains reports whether a durable write of this class acts as a full persist
// barrier in the modelled queue: it is never in flight together with any
// other write. See the package's persist-queue ordering contract above.
func (c TrafficClass) Drains() bool {
	switch c {
	case TrafficLogCommit, TrafficLogComplete, TrafficLogAbort,
		TrafficLogSentinel, TrafficLogMeta:
		return true
	}
	return false
}

// PersistQueue tracks the in-flight window of the modelled persist queue over
// a numbered durable-write sequence. Feed it every event in order: for event
// seq, WindowStart(seq, class) returns the first index that may still be in
// flight when seq issues — a crash at seq leaves any subset of
// [WindowStart, seq) unretired — and Observe(seq, class) then advances the
// queue past the event. A window of 0 models a strictly ordered queue: every
// crash is an exact prefix of the write sequence.
type PersistQueue struct {
	window  int
	barrier uint64 // first event not covered by the last drain
}

// NewPersistQueue returns a queue model with the given reordering window.
func NewPersistQueue(window int) *PersistQueue {
	if window < 0 {
		window = 0
	}
	return &PersistQueue{window: window}
}

// Window returns the configured reordering window.
func (q *PersistQueue) Window() int { return q.window }

// WindowStart returns the first event index that may still be in flight when
// event seq (of the given class) issues. Drain-class events always return
// seq: the barrier retires everything earlier before the drain issues.
func (q *PersistQueue) WindowStart(seq uint64, class TrafficClass) uint64 {
	if class.Drains() {
		return seq
	}
	start := q.barrier
	if w := uint64(q.window); seq > w && seq-w > start {
		start = seq - w
	}
	return start
}

// Observe advances the queue state past event seq.
func (q *PersistQueue) Observe(seq uint64, class TrafficClass) {
	if class.Drains() {
		q.barrier = seq + 1
	}
}

// Adversary chooses, for each crash point, which subsets of the in-flight
// window to apply to the crash image. Bit i of a mask corresponds to the i-th
// in-flight write (window start + i); a set bit means that write retired
// before power was lost. Implementations must be deterministic — the explorer
// records masks in its report and replays them from repro commands.
type Adversary interface {
	// Masks returns the subsets to explore for a crash at the given point
	// with n writes in flight. n is at most the queue window (and the
	// explorer bounds it at MaxAdversaryWindow, so masks fit one word).
	Masks(point uint64, n int) []uint64
}

// MaxAdversaryWindow bounds the reordering window so every in-flight subset
// is expressible as one 64-bit mask with headroom; practical windows are far
// smaller (exhaustive enumeration is 2^n masks per point).
const MaxAdversaryWindow = 16

// ExhaustiveAdversary enumerates every subset of the in-flight window: 2^n
// masks per crash point, in ascending mask order.
type ExhaustiveAdversary struct{}

// Masks implements Adversary.
func (ExhaustiveAdversary) Masks(_ uint64, n int) []uint64 {
	out := make([]uint64, 1<<n)
	for i := range out {
		out[i] = uint64(i)
	}
	return out
}

// SampledAdversary explores a deterministic, seed-derived sample of the
// in-flight subsets: the empty and full subsets always (they bound the
// window's effect), then distinct masks drawn from a splitmix64 stream keyed
// by (Seed, point). When the whole space fits the budget it degenerates to
// exhaustive enumeration.
type SampledAdversary struct {
	Seed    uint64
	Samples int
}

// Masks implements Adversary.
func (a SampledAdversary) Masks(point uint64, n int) []uint64 {
	total := uint64(1) << n
	samples := a.Samples
	if samples <= 0 {
		samples = 1
	}
	if uint64(samples) >= total {
		return ExhaustiveAdversary{}.Masks(point, n)
	}
	out := make([]uint64, 0, samples)
	seen := make(map[uint64]bool, samples)
	add := func(m uint64) {
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	add(total - 1) // full subset: the exact-prefix crash
	if len(out) < samples {
		add(0) // empty subset: the whole window lost
	}
	state := a.Seed ^ point*0x9e3779b97f4a7c15
	for len(out) < samples {
		state = mix64(state + 0x9e3779b97f4a7c15)
		add(state & (total - 1))
	}
	return out
}

// mix64 is the splitmix64 finalizer (a local copy: memdev sits below the
// runner package that exports the canonical one).
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
