package memdev

import (
	"bytes"
	"sync"
	"testing"
)

// TestCloneCopyOnWriteIsolation checks that writes after a Clone never leak
// in either direction, across word and line granularity and across multiple
// pages.
func TestCloneCopyOnWriteIsolation(t *testing.T) {
	s := NewStore()
	for pg := uint64(0); pg < 4; pg++ {
		base := pg << pageByteShift
		s.WriteWord(base+8, 100+pg)
		s.WriteLine(base+0x400, Line{pg, pg, pg})
	}
	c := s.Clone()

	// Mutate the clone: the original must not move.
	c.WriteWord(8, 999)
	c.WriteLine(0x400, Line{9, 9, 9})
	c.WriteWord(5<<pageByteShift, 1) // page the original never touched
	if got := s.ReadWord(8); got != 100 {
		t.Fatalf("original word moved after clone write: %d", got)
	}
	if got := s.ReadLine(0x400); got != (Line{0, 0, 0}) {
		t.Fatalf("original line moved after clone write: %v", got)
	}
	if s.ReadWord(5<<pageByteShift) != 0 {
		t.Fatalf("clone's fresh page leaked into the original")
	}

	// Mutate the original: the clone must not move either (ownership is
	// dropped on both sides).
	s.WriteWord(1<<pageByteShift+8, 555)
	if got := c.ReadWord(1<<pageByteShift + 8); got != 101 {
		t.Fatalf("original write leaked into the clone: %d", got)
	}

	// Untouched pages still read identically on both sides.
	for pg := uint64(2); pg < 4; pg++ {
		base := pg << pageByteShift
		if s.ReadWord(base+8) != c.ReadWord(base+8) {
			t.Fatalf("untouched page %d diverged", pg)
		}
	}
}

// TestCloneSharesUntouchedSlabs checks the clone is actually lazy: slabs are
// shared until written, and a write copies only the touched slab.
func TestCloneSharesUntouchedSlabs(t *testing.T) {
	s := NewStore()
	s.WriteWord(0, 1)
	s.WriteWord(1<<pageByteShift, 2)
	c := s.Clone()
	if c.root[0] != s.root[0] || c.root[1] != s.root[1] {
		t.Fatalf("clone deep-copied slabs eagerly")
	}
	c.WriteWord(0, 3)
	if c.root[0] == s.root[0] {
		t.Fatalf("written slab still shared")
	}
	if c.root[1] != s.root[1] {
		t.Fatalf("untouched slab copied on unrelated write")
	}
}

// TestCloneChainAndCounts checks clone-of-clone isolation and that
// LineCount/Equal stay correct across copy-on-write copies.
func TestCloneChainAndCounts(t *testing.T) {
	s := NewStore()
	for i := uint64(0); i < 100; i++ {
		s.WriteWord(i*64, i)
	}
	a := s.Clone()
	b := a.Clone()
	if !s.Equal(a) || !s.Equal(b) {
		t.Fatalf("clones not equal to source")
	}
	if a.LineCount() != s.LineCount() || b.LineCount() != s.LineCount() {
		t.Fatalf("clone line counts diverge: %d %d %d", s.LineCount(), a.LineCount(), b.LineCount())
	}
	b.WriteWord(100*64, 1) // new line only in b
	if b.LineCount() != s.LineCount()+1 || a.LineCount() != s.LineCount() {
		t.Fatalf("copy-on-write write miscounted lines")
	}
	if s.Equal(b) || !s.Equal(a) {
		t.Fatalf("clone chain isolation broken")
	}
}

// TestFrozenStorePanicsOnWrite checks Freeze makes every mutation path panic
// while reads and Save keep working.
func TestFrozenStorePanicsOnWrite(t *testing.T) {
	s := NewStore()
	s.WriteWord(0x1000, 7)
	s.Freeze()
	if !s.Frozen() {
		t.Fatalf("Frozen() false after Freeze")
	}
	if s.ReadWord(0x1000) != 7 {
		t.Fatalf("read broken after Freeze")
	}
	for name, write := range map[string]func(){
		"WriteWord": func() { s.WriteWord(0x1000, 8) },
		"WriteLine": func() { s.WriteLine(0x2000, Line{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s on frozen store did not panic", name)
				}
			}()
			write()
		}()
	}
	if s.ReadWord(0x1000) != 7 {
		t.Fatalf("frozen contents moved")
	}
}

// TestFrozenCloneConcurrent clones a frozen image from many goroutines at
// once — the pattern the setup-snapshot cache relies on — and checks every
// clone is independent and correct. Run under -race this proves Clone
// performs no writes to the shared image.
func TestFrozenCloneConcurrent(t *testing.T) {
	img := NewStore()
	for i := uint64(0); i < 1000; i++ {
		img.WriteWord(i*64, i^0xbeef)
	}
	img.Freeze()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				c := img.Clone()
				// Overwrite a goroutine-specific slice of lines.
				for i := uint64(0); i < 50; i++ {
					c.WriteWord((uint64(g)*50+i)*64, uint64(g))
				}
				for i := uint64(0); i < 1000; i++ {
					want := i ^ 0xbeef
					if i >= uint64(g)*50 && i < uint64(g)*50+50 {
						want = uint64(g)
					}
					if got := c.ReadWord(i * 64); got != want {
						t.Errorf("g%d rep%d: word %d = %d, want %d", g, rep, i, got, want)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()

	// The image itself never moved.
	for i := uint64(0); i < 1000; i++ {
		if img.ReadWord(i*64) != i^0xbeef {
			t.Fatalf("frozen image mutated by concurrent clones")
		}
	}
}

// TestCloneSaveLoadRoundtrip checks gob serialisation still round-trips
// through copy-on-write clones.
func TestCloneSaveLoadRoundtrip(t *testing.T) {
	s := NewStore()
	for i := uint64(0); i < 64; i++ {
		s.WriteWord(0x8000+i*8, i*3)
	}
	c := s.Clone()
	c.WriteWord(0x8000, 42)
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	restored := NewStore()
	if err := restored.Load(&buf); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !restored.Equal(c) || restored.Equal(s) {
		t.Fatalf("clone image round-trip mismatch")
	}
}
