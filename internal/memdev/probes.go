package memdev

import "dhtm/internal/probe"

// RegisterProbes contributes the memory-controller signals to a cell
// recorder: the persist-queue backlog (how many cycles past the sample
// stamp the single channel is already booked — the time-resolved form of
// the paper's bandwidth sensitivity) and the cumulative traffic split by
// cause, log bytes versus in-place data writes versus line fills.
func (c *Controller) RegisterProbes(rec *probe.Recorder) {
	rec.Gauge("mem/persist_queue_depth", "cycles", "internal/memdev", func(cycle uint64) float64 {
		if c.channelFreeAt > cycle {
			return float64(c.channelFreeAt - cycle)
		}
		return 0
	})
	if c.st == nil {
		return
	}
	rec.Counter("mem/log_bytes", "bytes", "internal/memdev", func(uint64) float64 {
		return float64(c.st.LogBytes)
	})
	rec.Counter("mem/data_write_bytes", "bytes", "internal/memdev", func(uint64) float64 {
		return float64(c.st.DataWriteBytes)
	})
	rec.Counter("mem/data_read_bytes", "bytes", "internal/memdev", func(uint64) float64 {
		return float64(c.st.DataReadBytes)
	})
}
