package memdev

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"dhtm/internal/config"
	"dhtm/internal/stats"
)

// TestStoreWordLineRoundtrip checks the word/line views are consistent.
func TestStoreWordLineRoundtrip(t *testing.T) {
	s := NewStore()
	s.WriteWord(0x1008, 42)
	s.WriteWord(0x1038, 7)
	line := s.ReadLine(0x1000)
	if line[1] != 42 || line[7] != 7 {
		t.Fatalf("line view %v does not reflect word writes", line)
	}
	s.WriteLine(0x2000, Line{1, 2, 3, 4, 5, 6, 7, 8})
	if got := s.ReadWord(0x2018); got != 4 {
		t.Fatalf("word view = %d, want 4", got)
	}
	if s.ReadWord(0x9999999000) != 0 {
		t.Fatalf("unwritten memory is not zero")
	}
}

// TestStoreSaveLoad checks image serialisation round-trips.
func TestStoreSaveLoad(t *testing.T) {
	s := NewStore()
	for i := uint64(0); i < 100; i++ {
		s.WriteWord(0x4000+i*8, i*i)
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	restored := NewStore()
	if err := restored.Load(&buf); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !s.Equal(restored) {
		t.Fatalf("restored image differs from the original")
	}
}

// TestPropertyStoreReadsWhatWasWritten is the basic memory property over
// random word writes (last write wins).
func TestPropertyStoreReadsWhatWasWritten(t *testing.T) {
	f := func(ops []struct {
		Addr uint16
		Val  uint64
	}) bool {
		s := NewStore()
		model := make(map[uint64]uint64)
		for _, op := range ops {
			addr := uint64(op.Addr) &^ 7
			s.WriteWord(addr, op.Val)
			model[addr] = op.Val
		}
		for addr, want := range model {
			if s.ReadWord(addr) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Fatal(err)
	}
}

// TestControllerLatencyAndBandwidth checks that reads/writes include the
// device latency and that back-to-back transfers queue on the channel.
func TestControllerLatencyAndBandwidth(t *testing.T) {
	cfg := config.Default()
	st := stats.New(1)
	ctl := NewController(cfg, NewStore(), st)

	_, readyAt := ctl.ReadLine(0x1000, 100)
	if readyAt < 100+cfg.NVMReadLatency {
		t.Fatalf("read ready at %d, want at least %d", readyAt, 100+cfg.NVMReadLatency)
	}
	first := ctl.WriteLine(0x2000, Line{}, 1000, TrafficData)
	second := ctl.WriteLine(0x2040, Line{}, 1000, TrafficData)
	if second <= first {
		t.Fatalf("second write (%d) did not queue behind the first (%d)", second, first)
	}
	if second-first < cfg.LineTransferCycles() {
		t.Fatalf("channel occupancy between writes is %d cycles, want at least %d",
			second-first, cfg.LineTransferCycles())
	}
	if st.DataWriteBytes != 2*LineBytes {
		t.Fatalf("accounted %d data bytes, want %d", st.DataWriteBytes, 2*LineBytes)
	}
}

// TestControllerLogAccounting checks traffic classification.
func TestControllerLogAccounting(t *testing.T) {
	cfg := config.Default()
	st := stats.New(1)
	ctl := NewController(cfg, NewStore(), st)
	ctl.WriteWords(0x100, []uint64{1, 2, 3}, 0, TrafficLog)
	if st.LogBytes != 24 {
		t.Fatalf("log bytes = %d, want 24", st.LogBytes)
	}
	if got := ctl.Store().ReadWord(0x108); got != 2 {
		t.Fatalf("functional log write missing: %d", got)
	}
	done := ctl.ReserveWrite(64, 0, TrafficData)
	if done < cfg.NVMWriteLatency {
		t.Fatalf("ReserveWrite returned %d, want at least the write latency", done)
	}
}

// TestBandwidthScaling checks Table VII's knob: scaling bandwidth shrinks the
// per-line channel occupancy.
func TestBandwidthScaling(t *testing.T) {
	base := config.Default()
	scaled := config.Default()
	scaled.BandwidthScale = 10
	if scaled.LineTransferCycles() >= base.LineTransferCycles() {
		t.Fatalf("10x bandwidth does not reduce transfer cycles (%d vs %d)",
			scaled.LineTransferCycles(), base.LineTransferCycles())
	}
}
