package memdev

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"dhtm/internal/config"
	"dhtm/internal/stats"
)

// TestStoreWordLineRoundtrip checks the word/line views are consistent.
func TestStoreWordLineRoundtrip(t *testing.T) {
	s := NewStore()
	s.WriteWord(0x1008, 42)
	s.WriteWord(0x1038, 7)
	line := s.ReadLine(0x1000)
	if line[1] != 42 || line[7] != 7 {
		t.Fatalf("line view %v does not reflect word writes", line)
	}
	s.WriteLine(0x2000, Line{1, 2, 3, 4, 5, 6, 7, 8})
	if got := s.ReadWord(0x2018); got != 4 {
		t.Fatalf("word view = %d, want 4", got)
	}
	if s.ReadWord(0x9999999000) != 0 {
		t.Fatalf("unwritten memory is not zero")
	}
}

// TestStoreSaveLoad checks image serialisation round-trips.
func TestStoreSaveLoad(t *testing.T) {
	s := NewStore()
	for i := uint64(0); i < 100; i++ {
		s.WriteWord(0x4000+i*8, i*i)
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	restored := NewStore()
	if err := restored.Load(&buf); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !s.Equal(restored) {
		t.Fatalf("restored image differs from the original")
	}
}

// TestPropertyStoreReadsWhatWasWritten is the basic memory property over
// random word writes (last write wins).
func TestPropertyStoreReadsWhatWasWritten(t *testing.T) {
	f := func(ops []struct {
		Addr uint16
		Val  uint64
	}) bool {
		s := NewStore()
		model := make(map[uint64]uint64)
		for _, op := range ops {
			addr := uint64(op.Addr) &^ 7
			s.WriteWord(addr, op.Val)
			model[addr] = op.Val
		}
		for addr, want := range model {
			if s.ReadWord(addr) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Fatal(err)
	}
}

// TestControllerLatencyAndBandwidth checks that reads/writes include the
// device latency and that back-to-back transfers queue on the channel.
func TestControllerLatencyAndBandwidth(t *testing.T) {
	cfg := config.Default()
	st := stats.New(1)
	ctl := NewController(cfg, NewStore(), st)

	_, readyAt := ctl.ReadLine(0x1000, 100)
	if readyAt < 100+cfg.NVMReadLatency {
		t.Fatalf("read ready at %d, want at least %d", readyAt, 100+cfg.NVMReadLatency)
	}
	first := ctl.WriteLine(0x2000, Line{}, 1000, TrafficData)
	second := ctl.WriteLine(0x2040, Line{}, 1000, TrafficData)
	if second <= first {
		t.Fatalf("second write (%d) did not queue behind the first (%d)", second, first)
	}
	if second-first < cfg.LineTransferCycles() {
		t.Fatalf("channel occupancy between writes is %d cycles, want at least %d",
			second-first, cfg.LineTransferCycles())
	}
	if st.DataWriteBytes != 2*LineBytes {
		t.Fatalf("accounted %d data bytes, want %d", st.DataWriteBytes, 2*LineBytes)
	}
}

// TestControllerLogAccounting checks traffic classification.
func TestControllerLogAccounting(t *testing.T) {
	cfg := config.Default()
	st := stats.New(1)
	ctl := NewController(cfg, NewStore(), st)
	ctl.WriteWords(0x100, []uint64{1, 2, 3}, 0, TrafficLog)
	if st.LogBytes != 24 {
		t.Fatalf("log bytes = %d, want 24", st.LogBytes)
	}
	if got := ctl.Store().ReadWord(0x108); got != 2 {
		t.Fatalf("functional log write missing: %d", got)
	}
	done := ctl.ReserveWrite(64, 0, TrafficData)
	if done < cfg.NVMWriteLatency {
		t.Fatalf("ReserveWrite returned %d, want at least the write latency", done)
	}
}

// obsEvent is a copied persist event (PersistEvent.Data aliases controller
// scratch and must not be retained).
type obsEvent struct {
	seq      uint64
	class    TrafficClass
	addr     uint64
	data     []uint64
	charged  bool
	preWords []uint64 // store contents of the written words at notify time
}

// recordingObserver captures every persist event plus the store's pre-image
// of the written words, proving the pre-apply contract.
type recordingObserver struct {
	store  *Store
	events []obsEvent
}

func (r *recordingObserver) PersistWrite(seq uint64, ev PersistEvent) {
	pre := make([]uint64, len(ev.Data))
	for i := range pre {
		pre[i] = r.store.ReadWord(ev.Addr + uint64(i*8))
	}
	r.events = append(r.events, obsEvent{
		seq: seq, class: ev.Class, addr: ev.Addr,
		data: append([]uint64(nil), ev.Data...), charged: ev.Charged, preWords: pre,
	})
}

// TestPersistObserver checks the crash-point hook: every charged durable
// write (WriteLine, WriteWord, WriteWords) and every functional persist
// (PersistLine, PersistWord) fires exactly one observer event carrying the
// right class, address and payload; ReserveWrite — which writes nothing —
// fires none; events are invoked before the write reaches the store; and the
// sequence numbers are dense from zero.
func TestPersistObserver(t *testing.T) {
	cfg := config.Default()
	store := NewStore()
	ctl := NewController(cfg, store, stats.New(1))
	store.WriteWord(0x1000, 77) // pre-existing durable value
	obs := &recordingObserver{store: store}
	ctl.SetPersistObserver(obs)

	ctl.WriteLine(0x1000, Line{1, 2, 3, 4, 5, 6, 7, 8}, 0, TrafficData)
	ctl.WriteWord(0x2000, 42, 0, TrafficLogMeta)
	ctl.WriteWords(0x3000, []uint64{9, 8, 7}, 0, TrafficLogRedo)
	ctl.ReserveWrite(64, 0, TrafficData) // no functional write, no event
	ctl.PersistLine(0x4000, Line{11}, TrafficData)
	ctl.PersistWord(0x5000, 13, TrafficLogCommit)

	want := []struct {
		class   TrafficClass
		addr    uint64
		words   int
		charged bool
	}{
		{TrafficData, 0x1000, 8, true},
		{TrafficLogMeta, 0x2000, 1, true},
		{TrafficLogRedo, 0x3000, 3, true},
		{TrafficData, 0x4000, 8, false},
		{TrafficLogCommit, 0x5000, 1, false},
	}
	if len(obs.events) != len(want) {
		t.Fatalf("observed %d events, want %d: %+v", len(obs.events), len(want), obs.events)
	}
	for i, w := range want {
		ev := obs.events[i]
		if ev.seq != uint64(i) {
			t.Errorf("event %d: seq %d, want dense numbering", i, ev.seq)
		}
		if ev.class != w.class || ev.addr != w.addr || len(ev.data) != w.words || ev.charged != w.charged {
			t.Errorf("event %d = {class %v addr %#x words %d charged %v}, want {%v %#x %d %v}",
				i, ev.class, ev.addr, len(ev.data), ev.charged, w.class, w.addr, w.words, w.charged)
		}
	}
	// Pre-apply contract: the first event saw the old value 77 still in the
	// store while carrying the new payload.
	if obs.events[0].preWords[0] != 77 || obs.events[0].data[0] != 1 {
		t.Errorf("observer did not run pre-apply: pre=%d payload=%d", obs.events[0].preWords[0], obs.events[0].data[0])
	}
	// The writes still landed functionally.
	if store.ReadWord(0x1000) != 1 || store.ReadWord(0x3008) != 8 || store.ReadWord(0x5000) != 13 {
		t.Errorf("functional writes missing after observed persists")
	}
	if got := ctl.PersistSeq(); got != uint64(len(want)) {
		t.Errorf("PersistSeq = %d, want %d", got, len(want))
	}
	// Removing the observer restarts the sequence and stops delivery.
	ctl.SetPersistObserver(nil)
	ctl.WriteWord(0x6000, 1, 0, TrafficData)
	if len(obs.events) != len(want) {
		t.Errorf("events delivered after observer removal")
	}
}

// TestTrafficClassAccounting checks every log-flavoured class accounts as log
// traffic, so the finer crash-point classes cannot skew the paper's
// byte counters.
func TestTrafficClassAccounting(t *testing.T) {
	st := stats.New(1)
	ctl := NewController(config.Default(), NewStore(), st)
	logClasses := []TrafficClass{TrafficLog, TrafficLogRedo, TrafficLogUndo, TrafficLogCommit,
		TrafficLogComplete, TrafficLogAbort, TrafficLogSentinel, TrafficLogOverflow, TrafficLogMeta}
	for _, c := range logClasses {
		if !c.IsLog() {
			t.Errorf("%v not accounted as log traffic", c)
		}
		ctl.WriteWord(0x100, 1, 0, c)
	}
	if TrafficData.IsLog() {
		t.Errorf("data traffic accounted as log")
	}
	if st.LogBytes != uint64(8*len(logClasses)) || st.DataWriteBytes != 0 {
		t.Errorf("accounting: log=%d data=%d, want %d/0", st.LogBytes, st.DataWriteBytes, 8*len(logClasses))
	}
}

// TestBandwidthScaling checks Table VII's knob: scaling bandwidth shrinks the
// per-line channel occupancy.
func TestBandwidthScaling(t *testing.T) {
	base := config.Default()
	scaled := config.Default()
	scaled.BandwidthScale = 10
	if scaled.LineTransferCycles() >= base.LineTransferCycles() {
		t.Fatalf("10x bandwidth does not reduce transfer cycles (%d vs %d)",
			scaled.LineTransferCycles(), base.LineTransferCycles())
	}
}
