package memdev

import (
	"reflect"
	"testing"
)

// windowsOf runs a class sequence through a PersistQueue and returns each
// event's in-flight window start.
func windowsOf(classes []TrafficClass, window int) []uint64 {
	q := NewPersistQueue(window)
	out := make([]uint64, len(classes))
	for i, cl := range classes {
		out[i] = q.WindowStart(uint64(i), cl)
		q.Observe(uint64(i), cl)
	}
	return out
}

func TestPersistQueueZeroWindowIsPrefix(t *testing.T) {
	classes := []TrafficClass{
		TrafficData, TrafficLogUndo, TrafficLogMeta, TrafficData,
		TrafficData, TrafficLogCommit, TrafficData, TrafficLogComplete,
	}
	for i, start := range windowsOf(classes, 0) {
		if start != uint64(i) {
			t.Fatalf("window 0: event %d has window start %d, want %d (exact prefix)", i, start, i)
		}
	}
}

func TestPersistQueueWindowsRespectDrains(t *testing.T) {
	classes := []TrafficClass{
		TrafficData,        // 0: window []
		TrafficData,        // 1: window [0]
		TrafficData,        // 2: window [0,1] (W=2)
		TrafficData,        // 3: window [1,2]
		TrafficLogCommit,   // 4: drain -> window []
		TrafficData,        // 5: window [] (barrier at 5)
		TrafficData,        // 6: window [5]
		TrafficLogUndo,     // 7: window [5,6]
		TrafficLogMeta,     // 8: drain -> window []
		TrafficData,        // 9: window []
		TrafficLogOverflow, // 10: window [9]
	}
	want := []uint64{0, 0, 0, 1, 4, 5, 5, 5, 8, 9, 9}
	got := windowsOf(classes, 2)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("window starts = %v, want %v", got, want)
	}
	// Invariant: a window never contains a drain-class event.
	for i, start := range got {
		for j := start; j < uint64(i); j++ {
			if classes[j].Drains() {
				t.Fatalf("event %d's window [%d,%d) contains drain-class event %d (%s)",
					i, start, i, j, classes[j])
			}
		}
	}
}

func TestPersistQueueWindowCap(t *testing.T) {
	classes := make([]TrafficClass, 40)
	for i := range classes {
		classes[i] = TrafficData
	}
	for i, start := range windowsOf(classes, 5) {
		wantStart := 0
		if i > 5 {
			wantStart = i - 5
		}
		if start != uint64(wantStart) {
			t.Fatalf("event %d: window start %d, want %d", i, start, wantStart)
		}
	}
}

func TestDrainClasses(t *testing.T) {
	drains := map[TrafficClass]bool{
		TrafficLogCommit: true, TrafficLogComplete: true, TrafficLogAbort: true,
		TrafficLogSentinel: true, TrafficLogMeta: true,
	}
	all := []TrafficClass{
		TrafficData, TrafficLog, TrafficLogRedo, TrafficLogUndo,
		TrafficLogCommit, TrafficLogComplete, TrafficLogAbort,
		TrafficLogSentinel, TrafficLogOverflow, TrafficLogMeta,
	}
	for _, c := range all {
		if c.Drains() != drains[c] {
			t.Fatalf("%s.Drains() = %v, want %v", c, c.Drains(), drains[c])
		}
	}
}

func TestExhaustiveAdversaryEnumeratesAllSubsets(t *testing.T) {
	for n := 0; n <= 6; n++ {
		masks := ExhaustiveAdversary{}.Masks(7, n)
		if len(masks) != 1<<n {
			t.Fatalf("n=%d: %d masks, want %d", n, len(masks), 1<<n)
		}
		for i, m := range masks {
			if m != uint64(i) {
				t.Fatalf("n=%d: mask[%d] = %d, want %d", n, i, m, i)
			}
		}
	}
}

func TestSampledAdversaryDeterministicAndBounded(t *testing.T) {
	a := SampledAdversary{Seed: 0xfeed, Samples: 8}
	m1 := a.Masks(42, 12)
	m2 := a.Masks(42, 12)
	if !reflect.DeepEqual(m1, m2) {
		t.Fatalf("sampled masks not deterministic: %v vs %v", m1, m2)
	}
	if len(m1) != 8 {
		t.Fatalf("got %d masks, want 8", len(m1))
	}
	if m1[0] != 1<<12-1 || m1[1] != 0 {
		t.Fatalf("first two masks must be full and empty subsets, got %#x %#x", m1[0], m1[1])
	}
	seen := map[uint64]bool{}
	for _, m := range m1 {
		if m >= 1<<12 {
			t.Fatalf("mask %#x outside the %d-bit window", m, 12)
		}
		if seen[m] {
			t.Fatalf("duplicate mask %#x", m)
		}
		seen[m] = true
	}
	// Different points and seeds draw different streams.
	if reflect.DeepEqual(m1, a.Masks(43, 12)) {
		t.Fatal("distinct points drew identical mask samples")
	}
	if reflect.DeepEqual(m1, SampledAdversary{Seed: 0xbeef, Samples: 8}.Masks(42, 12)) {
		t.Fatal("distinct seeds drew identical mask samples")
	}
	// A budget that covers the space degenerates to exhaustive enumeration.
	small := SampledAdversary{Seed: 1, Samples: 64}.Masks(9, 3)
	if !reflect.DeepEqual(small, ExhaustiveAdversary{}.Masks(9, 3)) {
		t.Fatalf("small window should enumerate exhaustively, got %v", small)
	}
}
