// Package logbuf implements DHTM's log buffer: a small, fully associative
// structure attached to the L1 cache that tracks the addresses of cache lines
// with pending redo-log writes. Keeping a line in the buffer while it is
// still being written coalesces multiple stores into a single log record; an
// entry's eviction is the hardware's conservative prediction of the last
// store to that line, at which point the record is emitted (§III-A).
package logbuf

// Buffer is the fully associative log buffer. Entries are line addresses
// ordered from least to most recently used.
type Buffer struct {
	capacity int
	entries  []uint64 // LRU order: entries[0] is the eviction candidate
}

// New builds a buffer with the given number of entries (64 in the paper's
// default configuration).
func New(capacity int) *Buffer {
	if capacity <= 0 {
		capacity = 1
	}
	return &Buffer{capacity: capacity, entries: make([]uint64, 0, capacity)}
}

// Cap returns the buffer capacity in entries.
func (b *Buffer) Cap() int { return b.capacity }

// Len returns the number of tracked lines.
func (b *Buffer) Len() int { return len(b.entries) }

// Contains reports whether lineAddr is currently tracked.
func (b *Buffer) Contains(lineAddr uint64) bool {
	return b.indexOf(lineAddr) >= 0
}

func (b *Buffer) indexOf(lineAddr uint64) int {
	for i, a := range b.entries {
		if a == lineAddr {
			return i
		}
	}
	return -1
}

// Touch records a store to lineAddr. If the line is already tracked it is
// moved to most-recently-used and nothing is evicted. If the buffer is full,
// the least-recently-used entry is evicted and returned — the caller must
// emit a redo-log record for it. Entries shift within the buffer's fixed
// backing array, so Touch never allocates.
func (b *Buffer) Touch(lineAddr uint64) (evicted uint64, hasEvict bool) {
	if i := b.indexOf(lineAddr); i >= 0 {
		copy(b.entries[i:], b.entries[i+1:])
		b.entries[len(b.entries)-1] = lineAddr
		return 0, false
	}
	if len(b.entries) == b.capacity {
		evicted, hasEvict = b.entries[0], true
		copy(b.entries, b.entries[1:])
		b.entries[len(b.entries)-1] = lineAddr
		return evicted, hasEvict
	}
	b.entries = append(b.entries, lineAddr)
	return evicted, hasEvict
}

// Remove drops lineAddr from the buffer if present, reporting whether it was
// tracked. The L1 cache controller calls this when the corresponding cache
// line is replaced: the record must be emitted before the data leaves the L1.
func (b *Buffer) Remove(lineAddr uint64) bool {
	i := b.indexOf(lineAddr)
	if i < 0 {
		return false
	}
	copy(b.entries[i:], b.entries[i+1:])
	b.entries = b.entries[:len(b.entries)-1]
	return true
}

// Drain returns every tracked line (oldest first) and empties the buffer;
// called at the end of the transaction, when all remaining lines are logged.
// The returned slice aliases the buffer's backing array and is valid only
// until the next Touch.
func (b *Buffer) Drain() []uint64 {
	out := b.entries
	b.entries = b.entries[:0]
	return out
}

// Clear empties the buffer without returning entries (abort path).
func (b *Buffer) Clear() { b.entries = b.entries[:0] }

// Entries returns a copy of the tracked lines, oldest first (for tests).
func (b *Buffer) Entries() []uint64 {
	out := make([]uint64, len(b.entries))
	copy(out, b.entries)
	return out
}
