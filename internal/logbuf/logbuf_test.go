package logbuf

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestTouchCoalesces checks that repeated stores to the same line never evict.
func TestTouchCoalesces(t *testing.T) {
	b := New(4)
	for i := 0; i < 100; i++ {
		if _, evicted := b.Touch(0x1000); evicted {
			t.Fatalf("touching the same line evicted an entry")
		}
	}
	if b.Len() != 1 {
		t.Fatalf("buffer tracks %d entries, want 1", b.Len())
	}
}

// TestEvictionIsLRU checks that the least recently touched line is evicted.
func TestEvictionIsLRU(t *testing.T) {
	b := New(2)
	b.Touch(0x40)
	b.Touch(0x80)
	b.Touch(0x40) // 0x80 is now least recently used
	evicted, has := b.Touch(0xc0)
	if !has || evicted != 0x80 {
		t.Fatalf("evicted %#x (has=%v), want 0x80", evicted, has)
	}
}

// TestRemoveOnL1Eviction checks the forced-eviction path used when an L1 line
// leaves the cache while still tracked.
func TestRemoveOnL1Eviction(t *testing.T) {
	b := New(4)
	b.Touch(0x40)
	b.Touch(0x80)
	if !b.Remove(0x40) {
		t.Fatalf("Remove(0x40) reported the line untracked")
	}
	if b.Remove(0x40) {
		t.Fatalf("Remove(0x40) twice reported the line tracked")
	}
	if b.Contains(0x40) || !b.Contains(0x80) {
		t.Fatalf("buffer contents wrong after Remove: %v", b.Entries())
	}
}

// TestDrainReturnsAllOldestFirst checks the commit-time drain.
func TestDrainReturnsAllOldestFirst(t *testing.T) {
	b := New(8)
	for _, a := range []uint64{0x40, 0x80, 0xc0} {
		b.Touch(a)
	}
	got := b.Drain()
	want := []uint64{0x40, 0x80, 0xc0}
	if len(got) != len(want) {
		t.Fatalf("Drain returned %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Drain[%d] = %#x, want %#x", i, got[i], want[i])
		}
	}
	if b.Len() != 0 {
		t.Fatalf("buffer not empty after Drain")
	}
}

// TestPropertyNeverExceedsCapacityAndNeverLosesLines is the core correctness
// property: after any sequence of stores, every line stored since the last
// drain was either evicted (logged) or is still tracked — nothing is lost —
// and occupancy never exceeds the capacity.
func TestPropertyNeverExceedsCapacityAndNeverLosesLines(t *testing.T) {
	f := func(capRaw uint8, ops []uint16) bool {
		capacity := int(capRaw%63) + 1
		b := New(capacity)
		logged := make(map[uint64]bool)
		touched := make(map[uint64]bool)
		for _, op := range ops {
			line := uint64(op%256) * 64
			touched[line] = true
			if evicted, has := b.Touch(line); has {
				logged[evicted] = true
			}
			if b.Len() > capacity {
				return false
			}
		}
		for _, line := range b.Drain() {
			logged[line] = true
		}
		for line := range touched {
			if !logged[line] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Fatal(err)
	}
}
