package config

import "testing"

// TestDefaultIsValid checks the paper's configuration validates.
func TestDefaultIsValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default configuration invalid: %v", err)
	}
}

// TestValidateRejectsBadGeometry checks a few representative invalid configs.
func TestValidateRejectsBadGeometry(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.NumCores = 0 },
		func(c *Config) { c.LineSize = 60 },
		func(c *Config) { c.L1Size = 1000 },
		func(c *Config) { c.MemBandwidthGBs = 0 },
		func(c *Config) { c.ReadSignatureBits = 1000 }, // not a power of two
		func(c *Config) { c.BandwidthScale = 0 },
		func(c *Config) { c.ConflictPolicy = ConflictPolicy(9) },
	}
	for i, mutate := range cases {
		cfg := Default()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid configuration accepted", i)
		}
	}
}

// TestGeometryDerivations checks the derived cache geometry and the bandwidth
// to cycle conversion against hand-computed values for Table III.
func TestGeometryDerivations(t *testing.T) {
	cfg := Default()
	if got := cfg.L1Sets(); got != 128 {
		t.Errorf("L1Sets = %d, want 128 (32 KB / 64 B / 4 ways)", got)
	}
	if got := cfg.L1Lines(); got != 512 {
		t.Errorf("L1Lines = %d, want 512", got)
	}
	if got := cfg.LLCSets(); got != 8192 {
		t.Errorf("LLCSets = %d, want 8192 (8 MB / 64 B / 16 ways)", got)
	}
	// 64 B at 5.3 GB/s and 2 GHz is ~24 cycles.
	if got := cfg.LineTransferCycles(); got < 20 || got > 28 {
		t.Errorf("LineTransferCycles = %d, want ~24", got)
	}
	if got := cfg.LineAddr(0x12345); got != 0x12340 {
		t.Errorf("LineAddr = %#x, want 0x12340", got)
	}
	if cfg.WordsPerLine() != 8 {
		t.Errorf("WordsPerLine = %d, want 8", cfg.WordsPerLine())
	}
}
