// Package config holds the architectural parameters of the simulated system
// (Table III of the DHTM paper) together with the knobs that the evaluation
// sweeps: conflict-resolution policy, log-buffer size and memory bandwidth.
package config

import "fmt"

// ConflictPolicy selects which transaction aborts when a conflict is detected.
type ConflictPolicy int

const (
	// FirstWriterWins keeps the transaction that currently owns the line and
	// aborts the requester (IBM POWER8 behaviour, the paper's default).
	FirstWriterWins ConflictPolicy = iota
	// RequesterWins aborts the current owner and lets the requester proceed
	// (Intel RTM behaviour).
	RequesterWins
)

// String implements fmt.Stringer.
func (p ConflictPolicy) String() string {
	switch p {
	case FirstWriterWins:
		return "first-writer-wins"
	case RequesterWins:
		return "requester-wins"
	default:
		return fmt.Sprintf("ConflictPolicy(%d)", int(p))
	}
}

// Config captures every architectural parameter of the simulated machine.
// The zero value is not usable; start from Default and override fields.
type Config struct {
	// Cores and clock.
	NumCores   int     // number of in-order cores (8 in the paper)
	CPUFreqGHz float64 // core frequency used to convert bandwidth to cycles

	// Cache geometry (sizes in bytes).
	LineSize   int
	L1Size     int
	L1Ways     int
	L1Latency  uint64 // cycles for an L1 hit
	LLCSize    int    // aggregate LLC capacity across all tiles
	LLCWays    int
	LLCLatency uint64 // cycles for an LLC hit (includes interconnect)

	// Persistent memory timing.
	NVMReadLatency  uint64  // cycles until read data is available
	NVMWriteLatency uint64  // cycles until a write is durable
	MemBandwidthGBs float64 // peak memory bandwidth in GB/s
	// BandwidthScale multiplies MemBandwidthGBs; Table VII sweeps 1x/2x/10x.
	BandwidthScale float64

	// DHTM specific hardware.
	LogBufferEntries  int // fully associative log-buffer entries (64 default)
	ReadSignatureBits int // read-set overflow Bloom signature size in bits

	// Per-thread durable log sizing.
	LogBytesPerThread        int
	OverflowEntriesPerThread int

	// Transactional execution policy.
	ConflictPolicy ConflictPolicy
	MaxRetries     int    // retries before falling back to the software path
	AbortPenalty   uint64 // fixed pipeline-flush cost charged on an abort
	BackoffBase    uint64 // exponential backoff unit between retries

	// Software persistence costs (used by the SO and sdTM baselines).
	FlushIssueLatency   uint64 // cycles to issue a clwb/ntstore from the core
	FenceLatency        uint64 // cycles charged for an sfence besides draining
	LockAccessLatency   uint64 // extra cycles for a lock acquire/release round trip
	SoftLogStoreLatency uint64 // per-store cost of composing a software log entry
}

// Default returns the configuration used throughout the paper's evaluation
// (Table III): 8 in-order cores at 2 GHz, 32 KB 4-way L1s, an 8 MB 16-way LLC,
// 240/360-cycle NVM read/write latencies and 5.3 GB/s of memory bandwidth.
func Default() Config {
	return Config{
		NumCores:   8,
		CPUFreqGHz: 2.0,

		LineSize:   64,
		L1Size:     32 * 1024,
		L1Ways:     4,
		L1Latency:  3,
		LLCSize:    8 * 1024 * 1024,
		LLCWays:    16,
		LLCLatency: 30,

		NVMReadLatency:  240,
		NVMWriteLatency: 360,
		MemBandwidthGBs: 5.3,
		BandwidthScale:  1.0,

		LogBufferEntries:  64,
		ReadSignatureBits: 2048,

		LogBytesPerThread:        4 * 1024 * 1024,
		OverflowEntriesPerThread: 64 * 1024,

		ConflictPolicy: FirstWriterWins,
		MaxRetries:     32,
		AbortPenalty:   80,
		BackoffBase:    120,

		FlushIssueLatency:   40,
		FenceLatency:        20,
		LockAccessLatency:   20,
		SoftLogStoreLatency: 12,
	}
}

// Validate checks internal consistency of the configuration.
func (c Config) Validate() error {
	switch {
	case c.NumCores <= 0:
		return fmt.Errorf("config: NumCores must be positive, got %d", c.NumCores)
	case c.CPUFreqGHz <= 0:
		return fmt.Errorf("config: CPUFreqGHz must be positive, got %g", c.CPUFreqGHz)
	case c.LineSize <= 0 || c.LineSize%8 != 0:
		return fmt.Errorf("config: LineSize must be a positive multiple of 8, got %d", c.LineSize)
	case c.L1Size <= 0 || c.L1Ways <= 0:
		return fmt.Errorf("config: invalid L1 geometry %d bytes / %d ways", c.L1Size, c.L1Ways)
	case c.L1Size%(c.LineSize*c.L1Ways) != 0:
		return fmt.Errorf("config: L1Size %d not divisible by LineSize*Ways", c.L1Size)
	case c.LLCSize <= 0 || c.LLCWays <= 0:
		return fmt.Errorf("config: invalid LLC geometry %d bytes / %d ways", c.LLCSize, c.LLCWays)
	case c.LLCSize%(c.LineSize*c.LLCWays) != 0:
		return fmt.Errorf("config: LLCSize %d not divisible by LineSize*Ways", c.LLCSize)
	case c.MemBandwidthGBs <= 0:
		return fmt.Errorf("config: MemBandwidthGBs must be positive, got %g", c.MemBandwidthGBs)
	case c.BandwidthScale <= 0:
		return fmt.Errorf("config: BandwidthScale must be positive, got %g", c.BandwidthScale)
	case c.LogBufferEntries <= 0:
		return fmt.Errorf("config: LogBufferEntries must be positive, got %d", c.LogBufferEntries)
	case c.ReadSignatureBits <= 0 || c.ReadSignatureBits&(c.ReadSignatureBits-1) != 0:
		return fmt.Errorf("config: ReadSignatureBits must be a positive power of two, got %d", c.ReadSignatureBits)
	case c.LogBytesPerThread <= 0:
		return fmt.Errorf("config: LogBytesPerThread must be positive, got %d", c.LogBytesPerThread)
	case c.OverflowEntriesPerThread <= 0:
		return fmt.Errorf("config: OverflowEntriesPerThread must be positive, got %d", c.OverflowEntriesPerThread)
	case c.MaxRetries <= 0:
		return fmt.Errorf("config: MaxRetries must be positive, got %d", c.MaxRetries)
	}
	if c.ConflictPolicy != FirstWriterWins && c.ConflictPolicy != RequesterWins {
		return fmt.Errorf("config: unknown conflict policy %d", int(c.ConflictPolicy))
	}
	return nil
}

// WordsPerLine returns the number of 8-byte words per cache line.
func (c Config) WordsPerLine() int { return c.LineSize / 8 }

// LineTransferCycles returns the memory-channel occupancy, in core cycles, of
// transferring one cache line at the configured (scaled) bandwidth.
func (c Config) LineTransferCycles() uint64 {
	return c.TransferCycles(c.LineSize)
}

// TransferCycles returns the channel occupancy in cycles for n bytes.
func (c Config) TransferCycles(n int) uint64 {
	bw := c.MemBandwidthGBs * c.BandwidthScale // GB/s == bytes/ns
	seconds := float64(n) / (bw * 1e9)
	cycles := seconds * c.CPUFreqGHz * 1e9
	u := uint64(cycles)
	if u == 0 && n > 0 {
		u = 1
	}
	return u
}

// L1Sets returns the number of sets in each private L1.
func (c Config) L1Sets() int { return c.L1Size / (c.LineSize * c.L1Ways) }

// LLCSets returns the number of sets in the shared LLC.
func (c Config) LLCSets() int { return c.LLCSize / (c.LineSize * c.LLCWays) }

// L1Lines returns the number of lines each L1 can hold.
func (c Config) L1Lines() int { return c.L1Size / c.LineSize }

// LineAddr returns the line-aligned address containing addr.
func (c Config) LineAddr(addr uint64) uint64 {
	return addr &^ uint64(c.LineSize-1)
}
