package baselines

import (
	"dhtm/internal/htm"
	"dhtm/internal/txn"
	"dhtm/internal/wal"
)

// SO is the software-only baseline: locks provide atomic visibility and a
// Mnemosyne-style software redo log provides atomic durability. Log entries
// are created by the program for every modified line and flushed
// synchronously as soon as their values are finalised (here: as soon as the
// transaction moves on to writing a different cache line), so execution pays
// a per-entry construction-and-flush cost and commit pays a drain (fence)
// plus the durable commit record.
type SO struct {
	*lockBase
}

// NewSO builds the SO runtime (the hierarchy keeps its NopArbiter).
func NewSO(env *txn.Env) *SO {
	return &SO{lockBase: newLockBase(env)}
}

// Name implements txn.Runtime.
func (s *SO) Name() string { return "SO" }

// Run implements txn.Runtime.
func (s *SO) Run(core int, c txn.Clock, t *txn.Transaction) txn.ExecResult {
	res := txn.ExecResult{Start: c.Now()}
	log := s.env.Registry.Log(core)
	txid := log.BeginTx()

	held := s.acquire(core, c, t)

	var persistAt uint64
	pending := uint64(0)
	havePending := false
	emit := func(la uint64) {
		rec := &wal.Record{Type: wal.RecRedo, TxID: txid, LineAddr: la, Data: s.h.LineSnapshot(core, la)}
		if done, err := log.Append(rec, c.Now()); err == nil {
			s.env.Stats.LogRecords++
			if done > persistAt {
				persistAt = done
			}
		}
		// Constructing and issuing the flush for the entry is program work.
		c.Advance(s.cfg.FlushIssueLatency)
	}

	ltx := &lockedTx{b: s.lockBase, core: core, clock: c,
		dirty: htm.NewLineSet(32), read: htm.NewLineSet(32)}
	ltx.onWrite = func(la uint64, first bool, _, _ uint64) {
		// Composing the word-granular log entry (address + value into the
		// write-combining buffer) is program work on every store.
		c.Advance(s.cfg.SoftLogStoreLatency)
		// Software log coalescing: keep buffering entries for the line being
		// written; once the program writes a different line, the previous
		// line's entry is final and is flushed to the log.
		if havePending && pending != la {
			emit(pending)
		}
		pending = la
		havePending = true
	}

	// Lock-based designs cannot abort: the body runs exactly once. An
	// explicit error simply means the transaction made no semantic change.
	_, _, _ = txn.Attempt(t.Body, ltx)

	// Commit: flush the last pending entry, drain all log writes (sfence),
	// persist the commit record, then publish by releasing the locks.
	if havePending {
		emit(pending)
	}
	c.AdvanceTo(persistAt)
	c.Advance(s.cfg.FenceLatency)
	if done, err := log.Append(&wal.Record{Type: wal.RecCommit, TxID: txid}, c.Now()); err == nil {
		c.AdvanceTo(done)
	}
	s.release(core, c, held)
	// In-place data reaches persistent memory lazily (deferred, amortised log
	// truncation); the log regions are sized so truncation pressure never
	// appears inside the measured window.
	log.EndTx(txid)

	s.finish(core, c, &res, ltx.dirty.Len(), ltx.read.Len())
	return res
}

// Finish implements txn.Runtime.
func (s *SO) Finish(core int, c txn.Clock) {
	s.env.Stats.Core(core).FinalCycle = c.Now()
}
