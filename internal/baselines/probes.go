package baselines

import "dhtm/internal/probe"

// RegisterProbes contributes the shared HTM-baseline signal to a cell
// recorder: write-set lines currently overflowed to the LLC (only
// LogTM-ATOM ever spills; for the RTM-like baselines the series pins at
// zero, which is itself the interesting comparison). Designs embedding
// htmBase — NP, sdTM, LogTM-ATOM — inherit this and thereby implement
// probe.Registrar.
func (b *htmBase) RegisterProbes(rec *probe.Recorder) {
	rec.Gauge("htm/overflowed_lines", "lines", "internal/baselines", func(uint64) float64 {
		t := 0
		for _, s := range b.overflowed {
			if s != nil {
				t += s.Len()
			}
		}
		return float64(t)
	})
}
