package baselines

import (
	"dhtm/internal/htm"
	"dhtm/internal/stats"
	"dhtm/internal/txn"
	"dhtm/internal/wal"
)

// LogTMATOM combines a LogTM-like HTM (eager version management, write-set
// overflow from the L1 permitted via sticky directory state) with ATOM's
// hardware undo logging for atomic durability. The paper introduces this
// combination as a previously unstudied design point. Its defining cost is
// that, with undo logging, the whole write set must be persisted in place in
// the commit critical path before the transaction can complete; its aborts
// also pay for walking the undo log.
type LogTMATOM struct {
	*htmBase
	// undoPersistAt tracks, per core, when the last undo record becomes
	// durable (commit must wait for it before writing data in place).
	undoPersistAt []uint64
	undoRecords   []int
	txids         []uint64
}

// NewLogTMATOM builds the runtime and installs its arbiter.
func NewLogTMATOM(env *txn.Env) *LogTMATOM {
	l := &LogTMATOM{htmBase: newHTMBase(env, true)}
	l.undoPersistAt = make([]uint64, env.Cfg.NumCores)
	l.undoRecords = make([]int, env.Cfg.NumCores)
	l.txids = make([]uint64, env.Cfg.NumCores)
	l.onAbort = l.abortUndo
	env.Hier.SetArbiter(l.htmBase)
	return l
}

// Name implements txn.Runtime.
func (l *LogTMATOM) Name() string { return "LogTM-ATOM" }

// ltTx issues transactional accesses and, on the first store to each line,
// writes a hardware undo record carrying the pre-transaction value.
type ltTx struct {
	l     *LogTMATOM
	core  int
	clock txn.Clock
}

// Read implements txn.Tx.
func (t ltTx) Read(addr uint64) uint64 { return t.l.read(t.core, t.clock, addr) }

// Write implements txn.Tx.
func (t ltTx) Write(addr uint64, val uint64) {
	l, core := t.l, t.core
	la := l.h.Align(addr)
	ctx := l.ctxs[core]
	if !ctx.WriteLines.Contains(la) {
		// Hardware undo logging composes the record from the coherence data
		// response — a copy the core has permission to hold. Reading the line
		// transactionally first models that: it resolves any remote owner's
		// conflict (aborting this transaction cleanly if it loses, before
		// anything is logged) and leaves a coherent pre-store image in the L1
		// to log. Capturing the snapshot without coherence could log a stale
		// pre-image that, after a crash between the undo append and the abort
		// marker, recovery would roll back over newer committed data — a bug
		// the crash-point explorer caught.
		l.read(core, t.clock, addr)
		rec := &wal.Record{Type: wal.RecUndo, TxID: l.txids[core], LineAddr: la, Data: l.h.LineSnapshot(core, la)}
		if done, err := l.env.Registry.Log(core).Append(rec, t.clock.Now()); err == nil {
			l.env.Stats.LogRecords++
			l.undoRecords[core]++
			if done > l.undoPersistAt[core] {
				l.undoPersistAt[core] = done
			}
		} else {
			l.abort(core, stats.AbortLogOverflow, t.clock.Now())
			txn.AbortNow(stats.AbortLogOverflow)
		}
	}
	l.write(core, t.clock, addr, val)
}

// Run implements txn.Runtime.
func (l *LogTMATOM) Run(core int, c txn.Clock, t *txn.Transaction) txn.ExecResult {
	ctx := l.ctxs[core]
	res := txn.ExecResult{Start: c.Now()}
	for attempt := 0; ; attempt++ {
		if attempt >= l.cfg.MaxRetries {
			l.runFallback(core, c, t, true, l.env.Registry.Log(core))
			l.env.Stats.Core(core).Fallbacks++
			l.env.Stats.Core(core).AbortsByReason[stats.AbortFallback]++
			l.env.Stats.Core(core).Commits++
			res.Committed = true
			res.End = c.Now()
			return res
		}
		l.begin(core, c)
		l.txids[core] = l.env.Registry.Log(core).BeginTx()
		l.undoPersistAt[core] = 0
		l.undoRecords[core] = 0
		err, ok, reason := txn.Attempt(t.Body, ltTx{l: l, core: core, clock: c})
		if ok && err == nil && !ctx.Doomed && ctx.State == htm.Active {
			l.commitInPlace(core, c)
			l.finishTx(core, c, &res)
			return res
		}
		switch {
		case ok && err != nil:
			reason = stats.AbortExplicit
		case ok:
			reason = ctx.Reason
		}
		l.abort(core, reason, c.Now())
		res.Aborts++
		l.recordAbort(core, c, reason, attempt)
	}
}

// commitInPlace waits for the undo log to be durable, makes the write set
// visible, then persists every write-set line in place — from the L1 and from
// overflowed LLC lines — before the commit record is written. This in-place
// persistence is on the critical path, which is exactly the overhead DHTM's
// redo logging removes.
func (l *LogTMATOM) commitInPlace(core int, c txn.Clock) {
	ctx := l.ctxs[core]
	log := l.env.Registry.Log(core)
	c.AdvanceTo(l.undoPersistAt[core])

	// With undo logging the write set may not become visible until it is
	// durable in place (another thread could otherwise consume and commit a
	// value that a crash would roll back). The flush therefore happens while
	// the transaction still holds its write set — conflicting requesters keep
	// aborting during this window, which is the cost DHTM's redo commit
	// removes — and visibility is granted afterwards.
	done := c.Now()
	for _, la := range ctx.WriteLines.Keys() {
		var d uint64
		if ln := l.h.L1(core).Peek(la); ln != nil && ln.Valid() {
			d, _ = l.h.WriteBackL1Line(core, la, c.Now())
		} else if ll := l.h.LLC().Peek(la); ll != nil && ll.Valid() {
			d, _ = l.h.WriteBackLLCLine(la, c.Now())
		} else {
			d = l.h.PersistLineInPlace(la, l.h.LineSnapshot(core, la), c.Now())
		}
		if d > done {
			done = d
		}
	}
	c.AdvanceTo(done)
	l.commitVisibility(core)
	if d, err := log.Append(&wal.Record{Type: wal.RecCommit, TxID: l.txids[core]}, c.Now()); err == nil {
		c.AdvanceTo(d)
	}
	if d, err := log.Append(&wal.Record{Type: wal.RecComplete, TxID: l.txids[core]}, c.Now()); err == nil {
		c.AdvanceTo(d)
	}
	log.EndTx(l.txids[core])
	// Reset the undo bookkeeping so an abort during the *next* attempt's
	// begin (before it allocates a txid) cannot charge this transaction's
	// walk cost again or log a spurious abort marker for it.
	l.undoRecords[core] = 0
	l.undoPersistAt[core] = 0
}

// abortUndo is the design-specific abort work: the undo log must be walked
// and applied before conflicting transactions can observe the line again
// (LogTM stalls them with NACKs; the cost is charged to this core's
// completion time), and the log is logically cleared with an abort record.
func (l *LogTMATOM) abortUndo(core int, at uint64) {
	log := l.env.Registry.Log(core)
	if l.undoRecords[core] > 0 {
		n := uint64(l.undoRecords[core])
		// Reading the undo records back and restoring the old values costs a
		// line transfer each way per record.
		cost := n * (2*l.cfg.LineTransferCycles() + l.cfg.NVMWriteLatency/4)
		if at+cost > l.ctxs[core].CompletionAt {
			l.ctxs[core].CompletionAt = at + cost
		}
		if _, err := log.Append(&wal.Record{Type: wal.RecAbort, TxID: l.txids[core]}, at); err == nil {
			l.env.Stats.LogRecords++
		}
	}
	// Release the attempt's log reservation even when it logged nothing: an
	// attempt that aborted before its first write still holds a live-list
	// entry, and leaking it pins the tail forever — the log fills, abort
	// markers stop fitting, and a crash would then roll an aborted
	// transaction's live undo records back over later committed values
	// (stale pre-images). Found by the crash-point explorer.
	log.EndTx(l.txids[core])
	l.undoRecords[core] = 0
	l.undoPersistAt[core] = 0
}

// Finish implements txn.Runtime.
func (l *LogTMATOM) Finish(core int, c txn.Clock) {
	c.AdvanceTo(l.ctxs[core].CompletionAt)
	l.env.Stats.Core(core).FinalCycle = c.Now()
}
