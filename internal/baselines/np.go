package baselines

import (
	"dhtm/internal/htm"
	"dhtm/internal/stats"
	"dhtm/internal/txn"
)

// NP is the non-persistent baseline: a volatile, RTM-like best-effort HTM
// with no logging and no durability (§VI.D uses it to quantify the cost of
// atomic durability).
type NP struct {
	*htmBase
}

// NewNP builds the NP runtime and installs its arbiter.
func NewNP(env *txn.Env) *NP {
	n := &NP{htmBase: newHTMBase(env, false)}
	env.Hier.SetArbiter(n.htmBase)
	return n
}

// Name implements txn.Runtime.
func (n *NP) Name() string { return "NP" }

// npTx adapts the base HTM accesses to txn.Tx.
type npTx struct {
	b     *htmBase
	core  int
	clock txn.Clock
}

// Read implements txn.Tx.
func (t npTx) Read(addr uint64) uint64 { return t.b.read(t.core, t.clock, addr) }

// Write implements txn.Tx.
func (t npTx) Write(addr uint64, val uint64) { t.b.write(t.core, t.clock, addr, val) }

// Run implements txn.Runtime.
func (n *NP) Run(core int, c txn.Clock, t *txn.Transaction) txn.ExecResult {
	ctx := n.ctxs[core]
	res := txn.ExecResult{Start: c.Now()}
	for attempt := 0; ; attempt++ {
		if attempt >= n.cfg.MaxRetries {
			n.runFallback(core, c, t, false, nil)
			n.env.Stats.Core(core).Fallbacks++
			n.env.Stats.Core(core).AbortsByReason[stats.AbortFallback]++
			n.env.Stats.Core(core).Commits++
			res.Committed = true
			res.End = c.Now()
			return res
		}
		n.begin(core, c)
		err, ok, reason := txn.Attempt(t.Body, npTx{b: n.htmBase, core: core, clock: c})
		if ok && err == nil && !ctx.Doomed && ctx.State == htm.Active {
			// Volatile commit: flash-clear the tracking bits; nothing to
			// persist.
			n.commitVisibility(core)
			c.Advance(n.cfg.L1Latency)
			n.finishTx(core, c, &res)
			return res
		}
		switch {
		case ok && err != nil:
			reason = stats.AbortExplicit
		case ok:
			reason = ctx.Reason
		}
		n.abort(core, reason, c.Now())
		res.Aborts++
		n.recordAbort(core, c, reason, attempt)
	}
}

// Finish implements txn.Runtime.
func (n *NP) Finish(core int, c txn.Clock) {
	n.env.Stats.Core(core).FinalCycle = c.Now()
}
