package baselines

import (
	"dhtm/internal/htm"
	"dhtm/internal/memdev"
	"dhtm/internal/txn"
	"dhtm/internal/wal"
)

// StaleUndoATOM is a deliberately broken ATOM variant used as a test fixture
// for the crashtest differential oracle. It is NOT registered in the design
// registry — internal/crashtest reaches it through Config.Factory.
//
// The bug it seeds is the class the undo baselines are most exposed to (and
// the class a real LogTM-ATOM write-snapshot bug in this repo once fell
// into): a stale pre-image in the undo record. Here the cache controller
// "optimizes" undo logging by caching the pre-image it captured the first
// time it logged a line and reusing it in later transactions instead of
// re-snapshotting coherent memory. The cached image is stale the moment any
// transaction — including the caching core's own — commits to the line, so
// a crash that rolls the later transaction back restores the pre-image from
// *before the earlier committed transaction*, silently erasing its durable
// update.
//
// Crucially, every per-point oracle short of the differential one is blind
// to this: the recovered image is a structurally valid former state, so the
// workload's Verify passes; the prefix oracle rolls back with the same
// poisoned undo records recovery reads, so it agrees with recovery; and a
// second recovery is still a no-op. Only serial re-execution of the
// committed transactions — ground truth no undo record can poison — sees
// the committed write missing.
type StaleUndoATOM struct {
	*lockBase
	prev []map[uint64]memdev.Line // per-core cached undo pre-images
}

// NewStaleUndoATOM builds the broken-fixture runtime.
func NewStaleUndoATOM(env *txn.Env) *StaleUndoATOM {
	prev := make([]map[uint64]memdev.Line, env.Cfg.NumCores)
	for i := range prev {
		prev[i] = make(map[uint64]memdev.Line)
	}
	return &StaleUndoATOM{lockBase: newLockBase(env), prev: prev}
}

// Name implements txn.Runtime.
func (a *StaleUndoATOM) Name() string { return "StaleUndoATOM" }

// Run implements txn.Runtime. It is ATOM's commit protocol verbatim except
// for the poisoned undo pre-image source and the post-commit cache refresh.
func (a *StaleUndoATOM) Run(core int, c txn.Clock, t *txn.Transaction) txn.ExecResult {
	res := txn.ExecResult{Start: c.Now()}
	log := a.env.Registry.Log(core)
	txid := log.BeginTx()

	held := a.acquire(core, c, t)

	var undoPersistAt uint64
	ltx := &lockedTx{b: a.lockBase, core: core, clock: c,
		dirty: htm.NewLineSet(32), read: htm.NewLineSet(32)}
	ltx.onWrite = func(la uint64, first bool, _, _ uint64) {
		if !first {
			return
		}
		// BUG (seeded): reuse the pre-image cached when this core first
		// logged la instead of re-snapshotting coherent memory. Stale as
		// soon as any transaction has committed to la since.
		img, ok := a.prev[core][la]
		if !ok {
			img = a.h.LineSnapshot(core, la)
			a.prev[core][la] = img
		}
		rec := &wal.Record{Type: wal.RecUndo, TxID: txid, LineAddr: la, Data: img}
		if done, err := log.Append(rec, c.Now()); err == nil {
			a.env.Stats.LogRecords++
			if done > undoPersistAt {
				undoPersistAt = done
			}
		}
	}

	_, _, _ = txn.Attempt(t.Body, ltx)

	c.AdvanceTo(undoPersistAt)
	done := c.Now()
	for _, la := range ltx.dirty.Keys() {
		if d := a.h.FlushLine(core, la, c.Now()); d > done {
			done = d
		}
	}
	c.AdvanceTo(done)
	if d, err := log.Append(&wal.Record{Type: wal.RecCommit, TxID: txid}, c.Now()); err == nil {
		c.AdvanceTo(d)
	}
	if d, err := log.Append(&wal.Record{Type: wal.RecComplete, TxID: txid}, c.Now()); err == nil {
		c.AdvanceTo(d)
	}
	a.release(core, c, held)
	log.EndTx(txid)

	a.finish(core, c, &res, ltx.dirty.Len(), ltx.read.Len())
	return res
}

// Finish implements txn.Runtime.
func (a *StaleUndoATOM) Finish(core int, c txn.Clock) {
	a.env.Stats.Core(core).FinalCycle = c.Now()
}
