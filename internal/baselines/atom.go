package baselines

import (
	"dhtm/internal/htm"
	"dhtm/internal/txn"
	"dhtm/internal/wal"
)

// ATOM is the state-of-the-art hardware-durability baseline the paper
// compares against [20]: locks provide atomic visibility (same concurrency
// control as SO) while atomic durability comes from hardware undo logging —
// the cache controller writes an undo record with the pre-transaction value
// of every line the transaction modifies, off the critical path. The price of
// undo logging is paid at commit: every dirty line must be persisted in place
// (after the undo records are durable) before the locks can be released.
type ATOM struct {
	*lockBase
}

// NewATOM builds the ATOM runtime (the hierarchy keeps its NopArbiter).
func NewATOM(env *txn.Env) *ATOM {
	return &ATOM{lockBase: newLockBase(env)}
}

// Name implements txn.Runtime.
func (a *ATOM) Name() string { return "ATOM" }

// Run implements txn.Runtime.
func (a *ATOM) Run(core int, c txn.Clock, t *txn.Transaction) txn.ExecResult {
	res := txn.ExecResult{Start: c.Now()}
	log := a.env.Registry.Log(core)
	txid := log.BeginTx()

	held := a.acquire(core, c, t)

	var undoPersistAt uint64
	ltx := &lockedTx{b: a.lockBase, core: core, clock: c,
		dirty: htm.NewLineSet(32), read: htm.NewLineSet(32)}
	ltx.onWrite = func(la uint64, first bool, _, _ uint64) {
		if !first {
			return
		}
		// Hardware undo logging: the old value is captured and streamed to
		// the durable log by the cache controller; only bandwidth is
		// consumed, the core does not stall.
		rec := &wal.Record{Type: wal.RecUndo, TxID: txid, LineAddr: la, Data: a.h.LineSnapshot(core, la)}
		if done, err := log.Append(rec, c.Now()); err == nil {
			a.env.Stats.LogRecords++
			if done > undoPersistAt {
				undoPersistAt = done
			}
		}
	}

	_, _, _ = txn.Attempt(t.Body, ltx)

	// Commit: the undo log must be durable, then every modified line is
	// persisted in place; only after that can the commit record be written
	// and the locks released (write-ahead ordering for undo logging).
	c.AdvanceTo(undoPersistAt)
	done := c.Now()
	for _, la := range ltx.dirty.Keys() {
		if d := a.h.FlushLine(core, la, c.Now()); d > done {
			done = d
		}
	}
	c.AdvanceTo(done)
	if d, err := log.Append(&wal.Record{Type: wal.RecCommit, TxID: txid}, c.Now()); err == nil {
		c.AdvanceTo(d)
	}
	if d, err := log.Append(&wal.Record{Type: wal.RecComplete, TxID: txid}, c.Now()); err == nil {
		c.AdvanceTo(d)
	}
	a.release(core, c, held)
	log.EndTx(txid)

	a.finish(core, c, &res, ltx.dirty.Len(), ltx.read.Len())
	return res
}

// Finish implements txn.Runtime.
func (a *ATOM) Finish(core int, c txn.Clock) {
	a.env.Stats.Core(core).FinalCycle = c.Now()
}
