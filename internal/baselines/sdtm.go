package baselines

import (
	"dhtm/internal/htm"
	"dhtm/internal/stats"
	"dhtm/internal/txn"
	"dhtm/internal/wal"
)

// SdTM is the "software durability + hardware transactional memory" baseline
// (PHyTM-style): an RTM-like HTM provides atomic visibility and a
// Mnemosyne-style software redo log provides atomic durability. The log
// entries are ordinary stores issued inside the hardware transaction, so they
// join the write set and roughly double its footprint (Figure 1b), which in
// turn drives up the abort rate (Table V). The log is flushed and the commit
// record made durable on the critical path after the HTM commit, before the
// thread may proceed.
type SdTM struct {
	*htmBase
	// softCursor is the per-core cursor into the in-cache software log area;
	// entries are 16 bytes so every fourth entry starts a new cache line that
	// becomes part of the transaction's write set.
	softCursor []uint64
	// txLogLines counts, per core, the software-log entries of the current
	// transaction (used to reset the cursor on abort).
	txEntries []int
}

// NewSdTM builds the sdTM runtime and installs its arbiter.
func NewSdTM(env *txn.Env) *SdTM {
	s := &SdTM{htmBase: newHTMBase(env, false)}
	for i := 0; i < env.Cfg.NumCores; i++ {
		s.softCursor = append(s.softCursor, softLogBase+uint64(i)*softLogBytesPerCore)
		s.txEntries = append(s.txEntries, 0)
	}
	env.Hier.SetArbiter(s.htmBase)
	return s
}

// Name implements txn.Runtime.
func (s *SdTM) Name() string { return "sdTM" }

// sdTx issues the data store plus the software log-entry store inside the
// hardware transaction.
type sdTx struct {
	s     *SdTM
	core  int
	clock txn.Clock
}

// Read implements txn.Tx.
func (t sdTx) Read(addr uint64) uint64 { return t.s.read(t.core, t.clock, addr) }

// Write implements txn.Tx.
func (t sdTx) Write(addr uint64, val uint64) {
	s, core := t.s, t.core
	s.write(core, t.clock, addr, val)
	// Software redo-log entry: (address, value), 16 bytes, written inside the
	// transaction. Writing the first word of the entry is enough to bring the
	// log line into the write set.
	entry := s.nextEntryAddr(core)
	s.write(core, t.clock, entry, addr)
	s.write(core, t.clock, entry+8, val)
}

// nextEntryAddr returns the address of the next 16-byte software log entry
// for core, wrapping within the per-core region.
func (s *SdTM) nextEntryAddr(core int) uint64 {
	base := softLogBase + uint64(core)*softLogBytesPerCore
	off := s.softCursor[core]
	entry := off
	next := off + 16
	if next >= base+softLogBytesPerCore {
		next = base
	}
	s.softCursor[core] = next
	s.txEntries[core]++
	return entry
}

// Run implements txn.Runtime.
func (s *SdTM) Run(core int, c txn.Clock, t *txn.Transaction) txn.ExecResult {
	ctx := s.ctxs[core]
	res := txn.ExecResult{Start: c.Now()}
	for attempt := 0; ; attempt++ {
		if attempt >= s.cfg.MaxRetries {
			s.runFallback(core, c, t, true, s.env.Registry.Log(core))
			s.env.Stats.Core(core).Fallbacks++
			s.env.Stats.Core(core).AbortsByReason[stats.AbortFallback]++
			s.env.Stats.Core(core).Commits++
			res.Committed = true
			res.End = c.Now()
			return res
		}
		s.begin(core, c)
		s.txEntries[core] = 0
		err, ok, reason := txn.Attempt(t.Body, sdTx{s: s, core: core, clock: c})
		if ok && err == nil && !ctx.Doomed && ctx.State == htm.Active {
			s.commitDurable(core, c)
			s.finishTx(core, c, &res)
			return res
		}
		switch {
		case ok && err != nil:
			reason = stats.AbortExplicit
		case ok:
			reason = ctx.Reason
		}
		s.abort(core, reason, c.Now())
		res.Aborts++
		s.recordAbort(core, c, reason, attempt)
	}
}

// commitDurable performs the HTM commit for visibility and then, on the
// critical path, makes the transaction durable: the software log entries are
// flushed (modelled as durable-log appends of the dirty lines), a fence
// drains them, and the commit record is persisted. Only then may the core
// move on.
func (s *SdTM) commitDurable(core int, c txn.Clock) {
	ctx := s.ctxs[core]
	log := s.env.Registry.Log(core)
	s.commitVisibility(core)

	txid := log.BeginTx()
	persist := c.Now()
	for _, la := range ctx.WriteLines.Keys() {
		if s.isSoftLogLine(la) {
			continue
		}
		rec := &wal.Record{Type: wal.RecRedo, TxID: txid, LineAddr: la, Data: s.h.LineSnapshot(core, la)}
		if done, err := log.Append(rec, c.Now()); err == nil {
			s.env.Stats.LogRecords++
			if done > persist {
				persist = done
			}
		}
		c.Advance(s.cfg.FlushIssueLatency)
	}
	c.AdvanceTo(persist)
	c.Advance(s.cfg.FenceLatency)
	if done, err := log.Append(&wal.Record{Type: wal.RecCommit, TxID: txid}, c.Now()); err == nil {
		c.AdvanceTo(done)
	}
	// In-place data persists lazily via evictions (Mnemosyne defers log
	// truncation); the measured window treats the log space as ample.
	log.EndTx(txid)
}

// isSoftLogLine reports whether a line belongs to the in-cache software log
// region (those lines inflate the write set but are not data to log).
func (s *SdTM) isSoftLogLine(la uint64) bool {
	return la >= softLogBase && la < softLogBase+uint64(s.cfg.NumCores)*softLogBytesPerCore
}

// Finish implements txn.Runtime.
func (s *SdTM) Finish(core int, c txn.Clock) {
	s.env.Stats.Core(core).FinalCycle = c.Now()
}
