package baselines

import (
	"dhtm/internal/config"
	"dhtm/internal/hier"
	"dhtm/internal/htm"
	"dhtm/internal/locks"
	"dhtm/internal/txn"
)

// lockBase is the shared machinery of the lock-based designs (SO and ATOM):
// a lock table in persistent memory and two-phase locking with sorted
// acquisition over each transaction's pre-declared lock set. Visibility is
// entirely lock-based, so these designs use the hierarchy's NopArbiter.
type lockBase struct {
	env   *txn.Env
	cfg   config.Config
	h     *hier.Hierarchy
	table *locks.Table
}

func newLockBase(env *txn.Env) *lockBase {
	return &lockBase{
		env:   env,
		cfg:   env.Cfg,
		h:     env.Hier,
		table: locks.NewTable(env.Cfg, lockTableBase, lockTableSlots),
	}
}

// acquire takes every lock in the transaction's lock set (sorted and
// deduplicated) and returns the resolved addresses for release.
func (b *lockBase) acquire(core int, c txn.Clock, t *txn.Transaction) []uint64 {
	addrs := b.table.SortedAddrs(t.LockIDs)
	b.table.AcquireAll(b.h, core, c, addrs)
	return addrs
}

// release drops the locks in reverse order.
func (b *lockBase) release(core int, c txn.Clock, addrs []uint64) {
	b.table.ReleaseAll(b.h, core, c, addrs)
}

// lockedTx performs plain (non-speculative) timed accesses for a lock-based
// design and tracks the dirty-line set for logging and statistics.
type lockedTx struct {
	b     *lockBase
	core  int
	clock txn.Clock
	dirty *htm.LineSet
	read  *htm.LineSet
	// onWrite, when non-nil, runs before each store with the line address and
	// whether this is the first store to that line in the transaction; the
	// designs hook their logging here.
	onWrite func(lineAddr uint64, first bool, addr, val uint64)
}

// Read implements txn.Tx.
func (t *lockedTx) Read(addr uint64) uint64 {
	v, r := t.b.h.Load(t.core, addr, t.clock.Now(), false)
	t.clock.AdvanceTo(r.Done)
	t.read.Add(t.b.h.Align(addr))
	return v
}

// Write implements txn.Tx.
func (t *lockedTx) Write(addr uint64, val uint64) {
	la := t.b.h.Align(addr)
	seen := t.dirty.Contains(la)
	if t.onWrite != nil {
		t.onWrite(la, !seen, addr, val)
	}
	r := t.b.h.Store(t.core, addr, val, t.clock.Now(), false)
	t.clock.AdvanceTo(r.Done)
	t.dirty.Add(la)
}

// finish records per-transaction statistics common to the lock-based designs.
func (b *lockBase) finish(core int, c txn.Clock, res *txn.ExecResult, dirty, read int) {
	cst := b.env.Stats.Core(core)
	cst.Commits++
	cst.WriteSetLines += uint64(dirty)
	cst.ReadSetLines += uint64(read)
	cst.TxCycles += c.Now() - res.Start
	res.End = c.Now()
	res.Committed = true
}
