// Package baselines implements the designs DHTM is evaluated against in the
// paper (§V "Evaluated Designs"):
//
//   - SO: locks for atomic visibility, Mnemosyne-style software redo logging
//     for atomic durability.
//   - sdTM: an RTM-like HTM for visibility (PHyTM-style), software logging
//     for durability — the log writes join the transaction's write set.
//   - ATOM: locks for visibility, hardware undo logging for durability; data
//     is persisted in place in the commit critical path.
//   - LogTM-ATOM: a LogTM-like HTM (write-set overflow allowed) combined with
//     ATOM's hardware undo logging.
//   - NP: a non-persistent, volatile RTM-like HTM used to measure the cost of
//     durability.
//
// All of them implement txn.Runtime and run on exactly the same simulated
// hardware as DHTM.
package baselines

import (
	"dhtm/internal/cache"
	"dhtm/internal/config"
	"dhtm/internal/hier"
	"dhtm/internal/htm"
	"dhtm/internal/stats"
	"dhtm/internal/txn"
	"dhtm/internal/wal"
)

// Scratch region (below the workload heap, above the durable log region)
// used by the baseline designs for lock tables and software log buffers.
const (
	scratchBase         uint64 = 0x0800_0000
	lockTableBase              = scratchBase
	lockTableSlots             = 4096
	softLogBase                = scratchBase + 0x0040_0000
	softLogBytesPerCore        = 256 * 1024
	// fallbackLockAddr mirrors the DHTM fallback lock location; baselines use
	// their own word so tests can run designs side by side on fresh envs.
	fallbackLockAddr = wal.RegistryTableAddr + 0x900
)

// htmBase holds the per-core transactional state and implements hier.Arbiter
// for the HTM-based baselines (NP, sdTM, LogTM-ATOM). DHTM has its own
// arbiter because of its committed-but-incomplete conflict window.
type htmBase struct {
	env *txn.Env
	cfg config.Config
	h   *hier.Hierarchy

	ctxs       []*htm.Ctx
	overflowed []*htm.LineSet

	// allowOverflow lets write-set lines spill to the LLC (LogTM-ATOM); when
	// false an L1 write-set eviction aborts the transaction (RTM behaviour,
	// used by NP and sdTM).
	allowOverflow bool

	// onAbort, when non-nil, performs design-specific abort work (e.g. undo
	// log handling) after the common speculative-state cleanup.
	onAbort func(core int, at uint64)
}

func newHTMBase(env *txn.Env, allowOverflow bool) *htmBase {
	b := &htmBase{env: env, cfg: env.Cfg, h: env.Hier, allowOverflow: allowOverflow}
	for i := 0; i < env.Cfg.NumCores; i++ {
		b.ctxs = append(b.ctxs, htm.NewCtx(env.Cfg))
		b.overflowed = append(b.overflowed, htm.NewLineSet(32))
	}
	return b
}

// InTx implements hier.Arbiter.
func (b *htmBase) InTx(core int) bool { return b.ctxs[core].State == htm.Active }

// SignatureContains implements hier.Arbiter.
func (b *htmBase) SignatureContains(core int, addr uint64) bool {
	c := b.ctxs[core]
	return c.State == htm.Active && c.Sig.Contains(b.h.Align(addr))
}

// OnConflict implements hier.Arbiter with the configured resolution policy.
func (b *htmBase) OnConflict(requester, owner int, addr uint64, write, requesterTx bool, at uint64) bool {
	if b.ctxs[owner].State != htm.Active {
		return true
	}
	if htm.OwnerShouldAbort(b.cfg.ConflictPolicy, requesterTx) {
		b.abort(owner, stats.AbortConflict, at)
		return true
	}
	return false
}

// OnWriteSetEviction implements hier.Arbiter: abort (RTM) or overflow
// (LogTM-style sticky state).
func (b *htmBase) OnWriteSetEviction(core int, addr uint64, at uint64) bool {
	if b.ctxs[core].State != htm.Active {
		return true
	}
	if !b.allowOverflow {
		b.abort(core, stats.AbortWriteCapacity, at)
		return false
	}
	b.overflowed[core].Add(b.h.Align(addr))
	return true
}

// OnReadSetEviction implements hier.Arbiter.
func (b *htmBase) OnReadSetEviction(core int, addr uint64, _ uint64) {
	c := b.ctxs[core]
	if c.State == htm.Active {
		c.Sig.Add(b.h.Align(addr))
	}
}

// OnLLCTxEviction implements hier.Arbiter: losing LLC state aborts.
func (b *htmBase) OnLLCTxEviction(core int, addr uint64, at uint64) {
	if b.ctxs[core].State == htm.Active {
		b.abort(core, stats.AbortLLCCapacity, at)
	}
}

// OnOwnerReread implements hier.Arbiter.
func (b *htmBase) OnOwnerReread(core int, addr uint64, line *cache.Line, _ uint64) {
	if b.ctxs[core].State != htm.Active {
		return
	}
	if b.overflowed[core].Contains(b.h.Align(addr)) {
		line.W = true
	}
}

// abort dooms and cleans up core's active transaction: speculative L1 lines
// are invalidated, overflowed LLC lines are invalidated, tracking state is
// cleared and any design-specific abort work runs.
func (b *htmBase) abort(core int, reason stats.AbortReason, at uint64) {
	c := b.ctxs[core]
	if c.State != htm.Active {
		return
	}
	c.Doom(reason)
	c.State = htm.Aborted
	b.h.L1(core).ForEach(func(l *cache.Line) {
		if l.W {
			addr := l.Addr
			l.Reset()
			b.h.ReleaseOwnership(core, addr)
			return
		}
		l.R = false
	})
	for _, la := range b.overflowed[core].Keys() {
		b.h.InvalidateLLCLine(la)
	}
	b.overflowed[core].Clear()
	c.Sig.Clear()
	if b.onAbort != nil {
		b.onAbort(core, at)
	}
}

// begin resets per-core state and subscribes to the fallback lock so a
// software-fallback acquisition aborts the hardware transaction.
func (b *htmBase) begin(core int, c txn.Clock) {
	ctx := b.ctxs[core]
	for {
		c.AdvanceTo(ctx.CompletionAt)
		ctx.BeginReset()
		b.overflowed[core].Clear()
		v, r := b.h.Load(core, fallbackLockAddr, c.Now(), true)
		c.AdvanceTo(r.Done)
		if r.Aborted || ctx.Doomed {
			b.abort(core, stats.AbortConflict, c.Now())
			ctx.State = htm.Idle
			c.Advance(b.cfg.BackoffBase)
			continue
		}
		if v != 0 {
			b.abort(core, stats.AbortConflict, c.Now())
			ctx.State = htm.Idle
			c.Advance(txn.Backoff(b.cfg, 2))
			continue
		}
		return
	}
}

// read performs a transactional load, aborting on a lost conflict.
func (b *htmBase) read(core int, c txn.Clock, addr uint64) uint64 {
	ctx := b.ctxs[core]
	if ctx.Doomed || ctx.State != htm.Active {
		txn.AbortNow(ctx.Reason)
	}
	v, r := b.h.Load(core, addr, c.Now(), true)
	c.AdvanceTo(r.Done)
	if r.Aborted {
		b.abort(core, stats.AbortConflict, c.Now())
		txn.AbortNow(stats.AbortConflict)
	}
	if ctx.Doomed || ctx.State != htm.Active {
		txn.AbortNow(ctx.Reason)
	}
	ctx.ReadLines.Add(b.h.Align(addr))
	return v
}

// write performs a transactional store, aborting on a lost conflict.
func (b *htmBase) write(core int, c txn.Clock, addr uint64, val uint64) {
	ctx := b.ctxs[core]
	if ctx.Doomed || ctx.State != htm.Active {
		txn.AbortNow(ctx.Reason)
	}
	r := b.h.Store(core, addr, val, c.Now(), true)
	c.AdvanceTo(r.Done)
	if r.Aborted {
		b.abort(core, stats.AbortConflict, c.Now())
		txn.AbortNow(stats.AbortConflict)
	}
	if ctx.Doomed || ctx.State != htm.Active {
		txn.AbortNow(ctx.Reason)
	}
	ctx.WriteLines.Add(b.h.Align(addr))
}

// commitVisibility performs the HTM commit point for visibility: read bits,
// the signature and write bits are flash-cleared so the write set becomes
// non-speculative, and any sticky LLC state is released.
func (b *htmBase) commitVisibility(core int) {
	ctx := b.ctxs[core]
	b.h.L1(core).ForEach(func(l *cache.Line) {
		l.R = false
		l.W = false
	})
	for _, la := range b.overflowed[core].Keys() {
		if ll := b.h.LLC().Peek(la); ll != nil {
			ll.Sticky = false
		}
	}
	ctx.Sig.Clear()
	ctx.State = htm.Committed
}

// finishTx moves the context back to Idle and records per-transaction stats.
func (b *htmBase) finishTx(core int, c txn.Clock, res *txn.ExecResult) {
	ctx := b.ctxs[core]
	cst := b.env.Stats.Core(core)
	cst.Commits++
	cst.WriteSetLines += uint64(ctx.WriteLines.Len())
	cst.ReadSetLines += uint64(ctx.ReadLines.Len())
	cst.TxCycles += c.Now() - res.Start
	b.overflowed[core].Clear()
	ctx.State = htm.Idle
	res.End = c.Now()
	res.Committed = true
}

// recordAbort updates abort statistics and applies the abort penalty/backoff.
func (b *htmBase) recordAbort(core int, c txn.Clock, reason stats.AbortReason, attempt int) {
	cst := b.env.Stats.Core(core)
	cst.Aborts++
	cst.AbortsByReason[reason]++
	c.Advance(b.cfg.AbortPenalty + txn.Backoff(b.cfg, attempt))
	c.AdvanceTo(b.ctxs[core].CompletionAt)
}

// runFallback executes t under the single global lock. durable selects
// whether the fallback also performs software logging and in-place flushing
// (persistent designs) or only visibility (NP).
func (b *htmBase) runFallback(core int, c txn.Clock, t *txn.Transaction, durable bool, log *wal.ThreadLog) {
	for {
		v, r := b.h.Load(core, fallbackLockAddr, c.Now(), false)
		if v == 0 {
			sr := b.h.Store(core, fallbackLockAddr, 1, r.Done, false)
			c.AdvanceTo(sr.Done)
			break
		}
		c.AdvanceTo(r.Done + txn.Backoff(b.cfg, 1))
	}
	dirty := htm.NewLineSet(16)
	ftx := &plainTx{b: b, core: core, clock: c, dirty: dirty, perWriteCost: b.cfg.FlushIssueLatency}
	_, _, _ = txn.Attempt(t.Body, ftx)
	if durable && log != nil {
		txid := log.BeginTx()
		persist := c.Now()
		for _, la := range dirty.Keys() {
			rec := &wal.Record{Type: wal.RecRedo, TxID: txid, LineAddr: la, Data: b.h.LineSnapshot(core, la)}
			if done, err := log.Append(rec, c.Now()); err == nil && done > persist {
				persist = done
			}
			c.Advance(b.cfg.FlushIssueLatency)
		}
		c.AdvanceTo(persist)
		c.Advance(b.cfg.FenceLatency)
		if done, err := log.Append(&wal.Record{Type: wal.RecCommit, TxID: txid}, c.Now()); err == nil {
			c.AdvanceTo(done)
		}
		flushed := c.Now()
		for _, la := range dirty.Keys() {
			if done := b.h.FlushLine(core, la, c.Now()); done > flushed {
				flushed = done
			}
		}
		c.AdvanceTo(flushed)
		if done, err := log.Append(&wal.Record{Type: wal.RecComplete, TxID: txid}, c.Now()); err == nil {
			c.AdvanceTo(done)
		}
		log.EndTx(txid)
	}
	sr := b.h.Store(core, fallbackLockAddr, 0, c.Now(), false)
	c.AdvanceTo(sr.Done)
	b.env.Stats.Core(core).WriteSetLines += uint64(dirty.Len())
}

// plainTx performs non-transactional, timed accesses (fallback paths and the
// lock-based designs build on it).
type plainTx struct {
	b            *htmBase
	core         int
	clock        txn.Clock
	dirty        *htm.LineSet
	perWriteCost uint64
}

// Read implements txn.Tx.
func (t *plainTx) Read(addr uint64) uint64 {
	v, r := t.b.h.Load(t.core, addr, t.clock.Now(), false)
	t.clock.AdvanceTo(r.Done)
	return v
}

// Write implements txn.Tx.
func (t *plainTx) Write(addr uint64, val uint64) {
	r := t.b.h.Store(t.core, addr, val, t.clock.Now(), false)
	t.clock.AdvanceTo(r.Done)
	if t.dirty != nil {
		t.dirty.Add(t.b.h.Align(addr))
	}
	if t.perWriteCost > 0 {
		t.clock.Advance(t.perWriteCost)
	}
}
