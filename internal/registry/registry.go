// Package registry is the single source of truth for the catalog of
// evaluated designs (§V of the paper) and benchmark workloads (Table IV).
// Every entry is self-describing — name, one-line description, tags and a
// factory — and every layer of the repo resolves names against this one
// table: the public dhtm package (NewSystem), the harness (NewRuntime and
// the experiment grids), the scenario compiler, the CLIs' flag validation
// and error listings, and dhtm-serve's /api/v1/catalog. Adding a design or
// workload here is the only step required to make it runnable, listable and
// validatable everywhere at once; nothing else in the tree enumerates the
// sets by hand.
package registry

import (
	"fmt"
	"strings"

	"dhtm/internal/baselines"
	"dhtm/internal/core"
	"dhtm/internal/txn"
	"dhtm/internal/workloads"
)

// Canonical design names (§V). The public dhtm package and the harness both
// re-export these; the registry owns them.
const (
	DesignSO          = "SO"
	DesignSdTM        = "sdTM"
	DesignATOM        = "ATOM"
	DesignLogTMATOM   = "LogTM-ATOM"
	DesignNP          = "NP"
	DesignDHTM        = "DHTM"
	DesignDHTMInstant = "DHTM-instant"
	DesignDHTML1      = "DHTM-L1"
	DesignDHTMNoBuf   = "DHTM-nobuf"
)

// Design tags. A design carries one visibility tag (how atomic visibility is
// provided), one durability tag, and optional role tags.
const (
	// TagHTM marks hardware-transactional-memory concurrency control;
	// TagLock marks lock-based concurrency control.
	TagHTM  = "htm"
	TagLock = "lock"
	// TagHWPersist marks hardware logging (cache-controller WAL records);
	// TagSWPersist marks Mnemosyne-style software logging; TagVolatile marks
	// no durability at all.
	TagHWPersist = "hw-persist"
	TagSWPersist = "sw-persist"
	TagVolatile  = "volatile"
	// TagBaseline marks the paper's comparison designs; TagAblation marks
	// DHTM variants that exist to isolate one design choice.
	TagBaseline = "baseline"
	TagAblation = "ablation"
)

// Workload tags.
const (
	// TagMicro marks the six persistent-data-structure micro-benchmarks;
	// TagOLTP marks the two online-transaction-processing workloads.
	TagMicro = "micro"
	TagOLTP  = "oltp"
)

// Design is one registered transactional-memory design: everything a caller
// needs to instantiate it, list it, or decide whether a subsystem supports
// it. The JSON shape is what /api/v1/catalog serves.
type Design struct {
	// Name is the identifier accepted everywhere a design is named (flags,
	// cells, scenario documents, the public dhtm.Config).
	Name string `json:"name"`
	// Description is a one-line summary of the design point.
	Description string `json:"description"`
	// Tags classify the design (visibility, durability, role).
	Tags []string `json:"tags"`
	// CrashSafe marks designs whose durability protocol recovery.Recover
	// replays at arbitrary crash points — the set the crash-point explorer
	// accepts. The others are excluded by construction: SO and sdTM defer
	// in-place persistence past the simulated window, NP is volatile, and
	// DHTM-nobuf emits word-granular records whose line-aligned case recovery
	// cannot yet distinguish from full lines.
	CrashSafe bool `json:"crash_safe"`
	// New instantiates the design's runtime over a fresh environment.
	New func(env *txn.Env) txn.Runtime `json:"-"`
}

// Workload is one registered benchmark.
type Workload struct {
	// Name is the identifier accepted everywhere a workload is named.
	Name string `json:"name"`
	// Description is a one-line summary of what the workload exercises.
	Description string `json:"description"`
	// Tags classify the workload (micro or oltp, plus structure hints).
	Tags []string `json:"tags"`
	// OLTP reports whether the workload uses the OLTP transaction budget
	// (larger transactions, fewer of them per core).
	OLTP bool `json:"oltp"`
	// New builds a fresh instance of the workload.
	New func() workloads.Workload `json:"-"`
}

// designs lists every runnable design in the order of the paper (§V). This
// table is the design catalog; there is deliberately no other enumeration of
// the set anywhere in the tree.
var designs = []Design{
	{
		Name:        DesignSO,
		Description: "Software-only baseline: locks for visibility, Mnemosyne-style software redo log flushed synchronously for durability.",
		Tags:        []string{TagLock, TagSWPersist, TagBaseline},
		New:         func(env *txn.Env) txn.Runtime { return baselines.NewSO(env) },
	},
	{
		Name:        DesignSdTM,
		Description: "Software durability + HTM (PHyTM-style): RTM-like HTM with a software redo log written inside the transaction, doubling its write set.",
		Tags:        []string{TagHTM, TagSWPersist, TagBaseline},
		New:         func(env *txn.Env) txn.Runtime { return baselines.NewSdTM(env) },
	},
	{
		Name:        DesignATOM,
		Description: "State-of-the-art hardware durability: locks for visibility, hardware undo logging off the critical path, in-place persists at commit.",
		Tags:        []string{TagLock, TagHWPersist, TagBaseline},
		CrashSafe:   true,
		New:         func(env *txn.Env) txn.Runtime { return baselines.NewATOM(env) },
	},
	{
		Name:        DesignLogTMATOM,
		Description: "LogTM-like HTM (eager versioning, L1 overflow) combined with ATOM's hardware undo logging; persists the write set in the commit path.",
		Tags:        []string{TagHTM, TagHWPersist, TagBaseline},
		CrashSafe:   true,
		New:         func(env *txn.Env) txn.Runtime { return baselines.NewLogTMATOM(env) },
	},
	{
		Name:        DesignNP,
		Description: "Non-persistent baseline: volatile RTM-like HTM with no logging, used to bound the cost of atomic durability (§VI.D).",
		Tags:        []string{TagHTM, TagVolatile, TagBaseline},
		New:         func(env *txn.Env) txn.Runtime { return baselines.NewNP(env) },
	},
	{
		Name:        DesignDHTM,
		Description: "The paper's contribution: RTM-like HTM with hardware redo logging streamed through a coalescing log buffer, LLC overflow supported.",
		Tags:        []string{TagHTM, TagHWPersist},
		CrashSafe:   true,
		New:         func(env *txn.Env) txn.Runtime { return core.New(env, core.Options{}) },
	},
	{
		Name:        DesignDHTMInstant,
		Description: "Idealised DHTM whose log and data writes take zero time (the §VI.D durability-cost ablation).",
		Tags:        []string{TagHTM, TagHWPersist, TagAblation},
		New:         func(env *txn.Env) txn.Runtime { return core.New(env, core.Options{InstantPersist: true}) },
	},
	{
		Name:        DesignDHTML1,
		Description: "DHTM without the LLC-overflow extension: write-set eviction from the L1 aborts the transaction (the PTM-like configuration).",
		Tags:        []string{TagHTM, TagHWPersist, TagAblation},
		CrashSafe:   true,
		New:         func(env *txn.Env) txn.Runtime { return core.New(env, core.Options{DisableOverflow: true}) },
	},
	{
		Name:        DesignDHTMNoBuf,
		Description: "DHTM without the coalescing log buffer: one word-granular redo record per store (Figure 2b's strawman).",
		Tags:        []string{TagHTM, TagHWPersist, TagAblation},
		New:         func(env *txn.Env) txn.Runtime { return core.New(env, core.Options{DisableLogBuffer: true}) },
	},
}

// workloadTable lists every benchmark in Table IV order (OLTP first, then
// the micro-benchmarks in the order the paper plots them).
var workloadTable = []Workload{
	{
		Name:        "tpcc",
		Description: "TPC-C new-order transactions; the largest write sets of the evaluation (~590 lines, exceeding the L1).",
		Tags:        []string{TagOLTP},
		OLTP:        true,
		New:         func() workloads.Workload { return workloads.NewTPCC() },
	},
	{
		Name:        "tatp",
		Description: "TATP update transactions over a subscriber database (~167-line write sets).",
		Tags:        []string{TagOLTP},
		OLTP:        true,
		New:         func() workloads.Workload { return workloads.NewTATP() },
	},
	{
		Name:        "queue",
		Description: "Concurrent persistent queue; enqueue/dequeue contention makes it the abort-rate worst case.",
		Tags:        []string{TagMicro},
		New:         func() workloads.Workload { return workloads.NewQueue() },
	},
	{
		Name:        "hash",
		Description: "Persistent open-addressing hash table with batched inserts and deletes.",
		Tags:        []string{TagMicro},
		New:         func() workloads.Workload { return workloads.NewHash() },
	},
	{
		Name:        "sdg",
		Description: "Scalable-data-generation graph updates (adjacency inserts).",
		Tags:        []string{TagMicro},
		New:         func() workloads.Workload { return workloads.NewSDG() },
	},
	{
		Name:        "sps",
		Description: "Random swaps over a persistent array (scattered single-line writes).",
		Tags:        []string{TagMicro},
		New:         func() workloads.Workload { return workloads.NewSPS() },
	},
	{
		Name:        "btree",
		Description: "Persistent B-tree inserts with node splits.",
		Tags:        []string{TagMicro},
		New:         func() workloads.Workload { return workloads.NewBTree() },
	},
	{
		Name:        "rbtree",
		Description: "Persistent red-black tree inserts with rebalancing rotations.",
		Tags:        []string{TagMicro},
		New:         func() workloads.Workload { return workloads.NewRBTree() },
	},
}

// init rejects a malformed catalog at startup rather than at first lookup —
// a duplicate or empty name would make every downstream validation lie.
func init() {
	seenD := make(map[string]bool, len(designs))
	for _, d := range designs {
		if d.Name == "" || seenD[d.Name] || d.New == nil {
			panic(fmt.Sprintf("registry: invalid design entry %q", d.Name))
		}
		seenD[d.Name] = true
	}
	seenW := make(map[string]bool, len(workloadTable))
	for _, w := range workloadTable {
		if w.Name == "" || seenW[w.Name] || w.New == nil {
			panic(fmt.Sprintf("registry: invalid workload entry %q", w.Name))
		}
		seenW[w.Name] = true
	}
}

// Designs returns the design catalog in paper order. The slice is a copy;
// callers may reorder it freely.
func Designs() []Design {
	return append([]Design(nil), designs...)
}

// DesignNames lists every runnable design name in paper order.
func DesignNames() []string {
	names := make([]string, len(designs))
	for i, d := range designs {
		names[i] = d.Name
	}
	return names
}

// LookupDesign finds a design by name.
func LookupDesign(name string) (Design, bool) {
	for _, d := range designs {
		if d.Name == name {
			return d, true
		}
	}
	return Design{}, false
}

// CheckDesign returns a descriptive error when name is not a registered
// design (the error every flag-validation and API path reports).
func CheckDesign(name string) error {
	if _, ok := LookupDesign(name); !ok {
		return fmt.Errorf("registry: unknown design %q (valid: %s)", name, strings.Join(DesignNames(), ", "))
	}
	return nil
}

// NewRuntime instantiates the named design over a fresh environment.
func NewRuntime(env *txn.Env, name string) (txn.Runtime, error) {
	d, ok := LookupDesign(name)
	if !ok {
		return nil, CheckDesign(name)
	}
	return d.New(env), nil
}

// CrashSafeDesignNames lists the designs the crash-point explorer accepts,
// in paper order.
func CrashSafeDesignNames() []string {
	var names []string
	for _, d := range designs {
		if d.CrashSafe {
			names = append(names, d.Name)
		}
	}
	return names
}

// DesignNamesByTag lists the designs carrying the tag, in paper order.
func DesignNamesByTag(tag string) []string {
	var names []string
	for _, d := range designs {
		if hasTag(d.Tags, tag) {
			names = append(names, d.Name)
		}
	}
	return names
}

// Workloads returns the workload catalog in Table IV order. The slice is a
// copy; callers may reorder it freely.
func Workloads() []Workload {
	return append([]Workload(nil), workloadTable...)
}

// WorkloadNames lists every workload name in Table IV order.
func WorkloadNames() []string {
	names := make([]string, len(workloadTable))
	for i, w := range workloadTable {
		names[i] = w.Name
	}
	return names
}

// LookupWorkload finds a workload by name.
func LookupWorkload(name string) (Workload, bool) {
	for _, w := range workloadTable {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}

// CheckWorkload returns a descriptive error when name is not a registered
// workload.
func CheckWorkload(name string) error {
	if _, ok := LookupWorkload(name); !ok {
		return fmt.Errorf("registry: unknown workload %q (valid: %s)", name, strings.Join(WorkloadNames(), ", "))
	}
	return nil
}

// NewWorkload builds a fresh instance of the named workload.
func NewWorkload(name string) (workloads.Workload, error) {
	w, ok := LookupWorkload(name)
	if !ok {
		return nil, CheckWorkload(name)
	}
	return w.New(), nil
}

// WorkloadNamesByTag lists the workloads carrying the tag, in Table IV
// order.
func WorkloadNamesByTag(tag string) []string {
	var names []string
	for _, w := range workloadTable {
		if hasTag(w.Tags, tag) {
			names = append(names, w.Name)
		}
	}
	return names
}

// MicroWorkloadNames lists the six micro-benchmarks in the order the paper
// plots them.
func MicroWorkloadNames() []string { return WorkloadNamesByTag(TagMicro) }

// hasTag reports whether tags contains tag.
func hasTag(tags []string, tag string) bool {
	for _, t := range tags {
		if t == tag {
			return true
		}
	}
	return false
}
