package registry_test

import (
	"strings"
	"testing"

	"dhtm/internal/config"
	"dhtm/internal/recovery"
	"dhtm/internal/registry"
	"dhtm/internal/txn"
	"dhtm/internal/workloads"
)

// TestCatalogSanity checks the registry's structural invariants: unique,
// described entries; lookups that agree with the listings; and errors that
// name every valid value.
func TestCatalogSanity(t *testing.T) {
	seen := map[string]bool{}
	for _, d := range registry.Designs() {
		if d.Name == "" || seen[d.Name] {
			t.Fatalf("design %q: empty or duplicate name", d.Name)
		}
		seen[d.Name] = true
		if d.Description == "" || len(d.Tags) == 0 {
			t.Errorf("design %q: missing description or tags", d.Name)
		}
		got, ok := registry.LookupDesign(d.Name)
		if !ok || got.Name != d.Name {
			t.Errorf("LookupDesign(%q) failed", d.Name)
		}
		if err := registry.CheckDesign(d.Name); err != nil {
			t.Errorf("CheckDesign(%q): %v", d.Name, err)
		}
	}
	seen = map[string]bool{}
	for _, w := range registry.Workloads() {
		if w.Name == "" || seen[w.Name] {
			t.Fatalf("workload %q: empty or duplicate name", w.Name)
		}
		seen[w.Name] = true
		if w.Description == "" || len(w.Tags) == 0 {
			t.Errorf("workload %q: missing description or tags", w.Name)
		}
		if err := registry.CheckWorkload(w.Name); err != nil {
			t.Errorf("CheckWorkload(%q): %v", w.Name, err)
		}
	}

	if err := registry.CheckDesign("nope"); err == nil {
		t.Fatal("CheckDesign accepted an unknown design")
	} else {
		for _, name := range registry.DesignNames() {
			if !strings.Contains(err.Error(), name) {
				t.Errorf("unknown-design error does not list %q: %v", name, err)
			}
		}
	}
	if err := registry.CheckWorkload("nope"); err == nil {
		t.Fatal("CheckWorkload accepted an unknown workload")
	} else {
		for _, name := range registry.WorkloadNames() {
			if !strings.Contains(err.Error(), name) {
				t.Errorf("unknown-workload error does not list %q: %v", name, err)
			}
		}
	}
	if _, err := registry.NewRuntime(nil, "nope"); err == nil {
		t.Fatal("NewRuntime accepted an unknown design")
	}
	if _, err := registry.NewWorkload("nope"); err == nil {
		t.Fatal("NewWorkload accepted an unknown workload")
	}
}

// TestTagSelections checks the tag-derived subsets the scenario compiler and
// the crash-point explorer rely on.
func TestTagSelections(t *testing.T) {
	micro := registry.MicroWorkloadNames()
	if len(micro) != 6 {
		t.Fatalf("micro workloads = %v, want the six micro-benchmarks", micro)
	}
	for _, name := range micro {
		w, _ := registry.LookupWorkload(name)
		if w.OLTP {
			t.Errorf("micro workload %q is marked OLTP", name)
		}
	}
	oltp := registry.WorkloadNamesByTag(registry.TagOLTP)
	if len(oltp) != 2 {
		t.Fatalf("oltp workloads = %v, want tpcc and tatp", oltp)
	}
	if len(micro)+len(oltp) != len(registry.WorkloadNames()) {
		t.Fatalf("micro (%d) + oltp (%d) do not partition the %d workloads",
			len(micro), len(oltp), len(registry.WorkloadNames()))
	}
	crash := registry.CrashSafeDesignNames()
	if len(crash) == 0 {
		t.Fatal("no crash-safe designs registered")
	}
	for _, name := range crash {
		d, _ := registry.LookupDesign(name)
		if !d.CrashSafe {
			t.Errorf("CrashSafeDesignNames returned %q, which is not crash-safe", name)
		}
	}
	if names := registry.DesignNamesByTag("no-such-tag"); len(names) != 0 {
		t.Fatalf("unknown tag matched %v", names)
	}
}

// TestEveryDesignRunsCrashRecover is the registry smoke test: every
// registered design drives one micro-workload, then survives a crash plus
// recovery. Crash-safe designs crash at the commit point of their last
// transactions (the committed-but-incomplete window) and must come back
// with the workload invariants intact; the others finish cleanly, drain,
// and recovery over their image must be a harmless no-op.
func TestEveryDesignRunsCrashRecover(t *testing.T) {
	for _, d := range registry.Designs() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			t.Parallel()
			cfg := config.Default()
			cfg.NumCores = 2
			env, err := txn.NewEnv(cfg)
			if err != nil {
				t.Fatalf("NewEnv: %v", err)
			}
			rt, err := registry.NewRuntime(env, d.Name)
			if err != nil {
				t.Fatalf("NewRuntime: %v", err)
			}
			w, err := registry.NewWorkload("hash")
			if err != nil {
				t.Fatalf("NewWorkload: %v", err)
			}
			finish := !d.CrashSafe
			res, err := workloads.Run(env, rt, w, workloads.Params{Cores: cfg.NumCores, Seed: 7}, 3, finish)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if res.Committed == 0 {
				t.Fatal("no transactions committed")
			}
			if finish {
				env.Hier.DrainClean()
			} else {
				env.Hier.Crash()
			}
			if _, err := recovery.Recover(env.Store()); err != nil {
				t.Fatalf("recovery: %v", err)
			}
			if d.CrashSafe {
				if err := w.Verify(env.Store()); err != nil {
					t.Fatalf("workload invariants violated after crash recovery: %v", err)
				}
			}
		})
	}
}
