package harness

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"dhtm/internal/probe"
	"dhtm/internal/runner"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// tracedCell is the fixed-seed cell the trace goldens pin. Small enough to
// keep the golden files readable, long enough that the sampler records more
// than the boundary rows.
func tracedCell() (runner.Cell, probe.Config) {
	cell := runner.Cell{
		ID: "DHTM/hash", Design: DesignDHTM, Workload: "hash",
		Cores: 2, TxPerCore: 4, Seed: 7,
	}
	return cell, probe.Config{Interval: 8192}
}

// runTraced executes the pinned cell once and returns its timeline JSON and
// Chrome trace-event bytes.
func runTraced(t *testing.T) (timeline, chrome []byte) {
	t.Helper()
	cell, tc := tracedCell()
	res, err := ExecuteWith(tc)(cell)
	if err != nil {
		t.Fatalf("ExecuteWith: %v", err)
	}
	if res.Timeline == nil {
		t.Fatal("traced run produced no timeline")
	}
	timeline, err = json.MarshalIndent(res.Timeline, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	timeline = append(timeline, '\n')
	var buf bytes.Buffer
	if err := probe.WriteChromeTrace(&buf, []*probe.Timeline{res.Timeline}); err != nil {
		t.Fatal(err)
	}
	return timeline, buf.Bytes()
}

// checkGolden compares got against testdata/name, rewriting it under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with `go test -run TraceGolden -update ./internal/harness`)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from golden; if the trace format or probe catalog changed deliberately, regenerate with -update.\ngot:\n%s", name, got)
	}
}

// TestTraceGolden pins the exported trace of a fixed-seed cell byte for byte
// — both the compact timeline JSON and the Chrome trace-event document — so
// any drift in the probe catalog, signal order, sampling grid or export
// format is a visible diff. It also asserts the paper-relevant signals are
// present: WAL occupancy, persist-queue depth, abort rate and bandwidth
// bytes.
func TestTraceGolden(t *testing.T) {
	timeline, chrome := runTraced(t)

	var tl probe.Timeline
	if err := json.Unmarshal(timeline, &tl); err != nil {
		t.Fatalf("timeline does not round-trip: %v", err)
	}
	want := map[string]bool{
		"wal/occupancy_max": false, "mem/persist_queue_depth": false,
		"htm/abort_rate": false, "mem/log_bytes": false,
		"mem/data_write_bytes": false,
	}
	for _, sig := range tl.Signals {
		if _, ok := want[sig.Name]; ok {
			want[sig.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("timeline missing signal %s", name)
		}
	}
	if len(tl.Cycles) < 2 {
		t.Fatalf("timeline too short to be interesting: %d rows", len(tl.Cycles))
	}

	checkGolden(t, "trace_timeline.golden.json", timeline)
	checkGolden(t, "trace_chrome.golden.json", chrome)
}

// TestTraceDeterminism is the reproducibility contract: two traced runs of
// the same cell emit byte-identical timelines and Chrome traces, because the
// sampler stamps rows on the simulated-cycle grid, never on host state.
func TestTraceDeterminism(t *testing.T) {
	tl1, ch1 := runTraced(t)
	tl2, ch2 := runTraced(t)
	if !bytes.Equal(tl1, tl2) {
		t.Fatal("two traced runs produced different timeline bytes")
	}
	if !bytes.Equal(ch1, ch2) {
		t.Fatal("two traced runs produced different Chrome trace bytes")
	}
}
