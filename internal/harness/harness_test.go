package harness

import (
	"context"
	"strings"
	"testing"

	"dhtm/internal/config"
	"dhtm/internal/runner"
	"dhtm/internal/txn"
)

// TestNewRuntimeKnowsEveryDesign checks the design factory.
func TestNewRuntimeKnowsEveryDesign(t *testing.T) {
	for _, d := range Designs() {
		cfg := config.Default()
		cfg.NumCores = 2
		env, err := txn.NewEnv(cfg)
		if err != nil {
			t.Fatalf("env: %v", err)
		}
		rt, err := NewRuntime(env, d)
		if err != nil {
			t.Fatalf("NewRuntime(%s): %v", d, err)
		}
		if rt.Name() == "" {
			t.Errorf("design %s has an empty name", d)
		}
	}
	if _, err := NewRuntime(nil, "nonsense"); err == nil {
		t.Errorf("unknown design accepted")
	}
}

// TestExecuteSmallRun checks the Execute plumbing end to end on a tiny run.
func TestExecuteSmallRun(t *testing.T) {
	res, err := Execute(runner.Cell{Design: DesignDHTM, Workload: "sps", Cores: 2, TxPerCore: 2})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if res.Committed != 4 {
		t.Fatalf("committed %d transactions, want 4", res.Committed)
	}
	if res.Throughput() <= 0 {
		t.Fatalf("non-positive throughput")
	}
}

// TestExperimentsRegistered checks every experiment is findable and that the
// quickest one renders a well-formed table.
func TestExperimentsRegistered(t *testing.T) {
	ids := []string{"table4", "fig5", "table5", "fig6", "table6", "table7", "durability", "ablation"}
	for _, id := range ids {
		if _, ok := Find(id); !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if _, ok := Find("nope"); ok {
		t.Errorf("bogus experiment found")
	}
}

// TestParallelSweepIsDeterministic is the contract the runner refactor must
// keep: a parallel sweep renders byte-identical tables to a serial one,
// because every cell simulates an isolated system with a content-derived
// seed and reducers assemble results by cell ID, not completion order.
func TestParallelSweepIsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full fig5 quick grid twice")
	}
	e, ok := Find("fig5")
	if !ok {
		t.Fatal("fig5 not registered")
	}
	render := func(parallel int) string {
		tbl, err := e.Run(context.Background(), Options{Quick: true, Parallel: parallel, Seed: 7})
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		var sb strings.Builder
		tbl.Render(&sb)
		return sb.String()
	}
	serial := render(1)
	parallel := render(8)
	if serial != parallel {
		t.Fatalf("parallel output diverged from serial:\n--- parallel=1 ---\n%s--- parallel=8 ---\n%s", serial, parallel)
	}
}

// TestExperimentPlansAreValid checks every experiment's grid has unique,
// addressable cell IDs at both scales.
func TestExperimentPlansAreValid(t *testing.T) {
	for _, e := range Experiments() {
		for _, o := range []Options{{Quick: true}, {}} {
			p := e.Plan(o)
			if err := p.Validate(); err != nil {
				t.Errorf("%s: %v", e.ID, err)
			}
			if len(p.Cells) == 0 {
				t.Errorf("%s: empty plan", e.ID)
			}
		}
	}
}

// TestTableCSV checks the machine-readable CSV rendering.
func TestTableCSV(t *testing.T) {
	tbl := &Table{ID: "X", Title: "demo", Columns: []string{"a", "bb"},
		Rows: [][]string{{"1", "2"}}}
	var sb strings.Builder
	if err := tbl.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "experiment,a,bb\nX,1,2\n"
	if sb.String() != want {
		t.Fatalf("CSV = %q, want %q", sb.String(), want)
	}
}

// TestTableRender checks table formatting.
func TestTableRender(t *testing.T) {
	tbl := &Table{ID: "X", Title: "demo", Columns: []string{"a", "bb"},
		Rows: [][]string{{"1", "2"}}, Notes: []string{"n"}}
	var sb strings.Builder
	tbl.Render(&sb)
	out := sb.String()
	for _, want := range []string{"X — demo", "a", "bb", "note: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}
