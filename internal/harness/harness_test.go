package harness

import (
	"strings"
	"testing"

	"dhtm/internal/config"
	"dhtm/internal/txn"
)

// TestNewRuntimeKnowsEveryDesign checks the design factory.
func TestNewRuntimeKnowsEveryDesign(t *testing.T) {
	for _, d := range Designs() {
		cfg := config.Default()
		cfg.NumCores = 2
		env, err := txn.NewEnv(cfg)
		if err != nil {
			t.Fatalf("env: %v", err)
		}
		rt, err := NewRuntime(env, d)
		if err != nil {
			t.Fatalf("NewRuntime(%s): %v", d, err)
		}
		if rt.Name() == "" {
			t.Errorf("design %s has an empty name", d)
		}
	}
	if _, err := NewRuntime(nil, "nonsense"); err == nil {
		t.Errorf("unknown design accepted")
	}
}

// TestExecuteSmallRun checks the Execute plumbing end to end on a tiny run.
func TestExecuteSmallRun(t *testing.T) {
	cfg := config.Default()
	cfg.NumCores = 2
	res, err := Execute(RunSpec{Design: DesignDHTM, Workload: "sps", Cfg: cfg, TxPerCore: 2})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if res.Committed != 4 {
		t.Fatalf("committed %d transactions, want 4", res.Committed)
	}
	if res.Throughput() <= 0 {
		t.Fatalf("non-positive throughput")
	}
}

// TestExperimentsRegistered checks every experiment is findable and that the
// quickest one renders a well-formed table.
func TestExperimentsRegistered(t *testing.T) {
	ids := []string{"table4", "fig5", "table5", "fig6", "table6", "table7", "durability", "ablation"}
	for _, id := range ids {
		if _, ok := Find(id); !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if _, ok := Find("nope"); ok {
		t.Errorf("bogus experiment found")
	}
}

// TestTableRender checks table formatting.
func TestTableRender(t *testing.T) {
	tbl := &Table{ID: "X", Title: "demo", Columns: []string{"a", "bb"},
		Rows: [][]string{{"1", "2"}}, Notes: []string{"n"}}
	var sb strings.Builder
	tbl.Render(&sb)
	out := sb.String()
	for _, want := range []string{"X — demo", "a", "bb", "note: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}
