package harness

import (
	"testing"

	"dhtm/internal/runner"
)

// TestFig5CellGolden runs one quick fig5 cell (DHTM on hash, the paper's
// headline configuration) and compares its statistics against golden values
// recorded before the zero-allocation hot-path rewrite. Any change to the
// engine's scheduling order, the store's contents, the WAL's timing model or
// the designs' set bookkeeping shows up here as a cycle or traffic drift —
// this is the regression guard for the byte-identical-output invariant.
func TestFig5CellGolden(t *testing.T) {
	cell := runner.Cell{ID: "DHTM/hash", Design: DesignDHTM, Workload: "hash", TxPerCore: 8}
	cell.Seed = runner.DeriveSeed(0, cell)
	if cell.Seed != 878558520214723900 {
		t.Fatalf("derived seed = %d, want 878558520214723900 (seed derivation changed; golden values below are stale)", cell.Seed)
	}
	res, err := Execute(cell)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats.Snapshot()

	check := func(name string, got, want uint64) {
		if got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	check("TotalCommits", s.TotalCommits(), 64)
	check("TotalAborts", s.TotalAborts(), 27)
	check("TotalCycles", s.TotalCycles(), 317305)
	check("LogBytes", s.LogBytes, 158488)
	check("DataWriteBytes", s.DataWriteBytes, 113088)
	check("DataReadBytes", s.DataReadBytes, 185088)
	check("LogRecords", s.LogRecords, 1866)
	check("SentinelRecords", s.SentinelRecords, 16)

	wantFinal := []uint64{291513, 308025, 293856, 298557, 317305, 300865, 284625, 312784}
	if len(s.Cores) != len(wantFinal) {
		t.Fatalf("run used %d cores, want %d", len(s.Cores), len(wantFinal))
	}
	for i, want := range wantFinal {
		if got := s.Cores[i].FinalCycle; got != want {
			t.Errorf("core %d FinalCycle = %d, want %d", i, got, want)
		}
	}
}
