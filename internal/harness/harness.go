// Package harness defines the experiments of the paper's evaluation section
// (§VI): each table and figure has a corresponding experiment that builds
// fresh simulated machines, runs the relevant (design, workload) pairs and
// renders the same rows or series the paper reports. cmd/dhtm-bench and the
// benchmarks in bench_test.go are thin wrappers around this package.
package harness

import (
	"fmt"
	"io"
	"strings"

	"dhtm/internal/baselines"
	"dhtm/internal/config"
	"dhtm/internal/core"
	"dhtm/internal/txn"
	"dhtm/internal/workloads"
)

// Design names accepted by NewRuntime.
const (
	DesignSO          = "SO"
	DesignSdTM        = "sdTM"
	DesignATOM        = "ATOM"
	DesignLogTMATOM   = "LogTM-ATOM"
	DesignNP          = "NP"
	DesignDHTM        = "DHTM"
	DesignDHTMInstant = "DHTM-instant"
	DesignDHTML1      = "DHTM-L1"
	DesignDHTMNoBuf   = "DHTM-nobuf"
)

// Designs lists every runnable design name.
func Designs() []string {
	return []string{DesignSO, DesignSdTM, DesignATOM, DesignLogTMATOM, DesignNP,
		DesignDHTM, DesignDHTMInstant, DesignDHTML1, DesignDHTMNoBuf}
}

// NewRuntime constructs the named design over a fresh environment.
func NewRuntime(env *txn.Env, design string) (txn.Runtime, error) {
	switch design {
	case DesignSO:
		return baselines.NewSO(env), nil
	case DesignSdTM:
		return baselines.NewSdTM(env), nil
	case DesignATOM:
		return baselines.NewATOM(env), nil
	case DesignLogTMATOM:
		return baselines.NewLogTMATOM(env), nil
	case DesignNP:
		return baselines.NewNP(env), nil
	case DesignDHTM:
		return core.New(env, core.Options{}), nil
	case DesignDHTMInstant:
		return core.New(env, core.Options{InstantPersist: true}), nil
	case DesignDHTML1:
		return core.New(env, core.Options{DisableOverflow: true}), nil
	case DesignDHTMNoBuf:
		return core.New(env, core.Options{DisableLogBuffer: true}), nil
	default:
		return nil, fmt.Errorf("harness: unknown design %q (known: %v)", design, Designs())
	}
}

// RunSpec describes one simulation run.
type RunSpec struct {
	Design    string
	Workload  string
	Cfg       config.Config
	Params    workloads.Params
	TxPerCore int
	// LogBufferEntries overrides the DHTM log-buffer size when > 0 (Figure 6).
	LogBufferEntries int
}

// Execute builds a fresh machine for the spec and runs it to completion.
func Execute(spec RunSpec) (workloads.RunResult, error) {
	cfg := spec.Cfg
	if cfg.NumCores == 0 {
		cfg = config.Default()
	}
	if spec.LogBufferEntries > 0 {
		cfg.LogBufferEntries = spec.LogBufferEntries
	}
	env, err := txn.NewEnv(cfg)
	if err != nil {
		return workloads.RunResult{}, err
	}
	rt, err := NewRuntime(env, spec.Design)
	if err != nil {
		return workloads.RunResult{}, err
	}
	w, err := workloads.New(spec.Workload)
	if err != nil {
		return workloads.RunResult{}, err
	}
	p := spec.Params
	p.Cores = cfg.NumCores
	txPerCore := spec.TxPerCore
	if txPerCore <= 0 {
		txPerCore = 16
	}
	return workloads.Run(env, rt, w, p, txPerCore, true)
}

// Options scales the experiments (Quick shrinks transaction counts so the
// whole suite finishes in seconds; the defaults give more stable numbers).
type Options struct {
	Cores     int
	TxPerCore int
	Quick     bool
	Out       io.Writer
}

// txCount picks the per-core transaction count for a workload class.
func (o Options) txCount(oltp bool) int {
	if o.TxPerCore > 0 {
		return o.TxPerCore
	}
	switch {
	case o.Quick && oltp:
		return 3
	case o.Quick:
		return 8
	case oltp:
		return 8
	default:
		return 24
	}
}

// baseConfig returns the Table III configuration, optionally overriding the
// core count.
func (o Options) baseConfig() config.Config {
	cfg := config.Default()
	if o.Cores > 0 {
		cfg.NumCores = o.Cores
	}
	return cfg
}

// Table is a rendered experiment result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Render writes the table in an aligned plain-text format.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Experiment is one reproducible table or figure from the paper.
type Experiment struct {
	ID    string
	Title string
	Run   func(o Options) (*Table, error)
}

// Experiments returns every experiment in the order of the paper.
func Experiments() []Experiment {
	return []Experiment{
		{ID: "table4", Title: "Workload write-set sizes (Table IV)", Run: Table4WriteSets},
		{ID: "fig5", Title: "Micro-benchmark throughput normalized to SO (Figure 5)", Run: Figure5Throughput},
		{ID: "table5", Title: "Abort rates for sdTM and DHTM (Table V)", Run: Table5AbortRates},
		{ID: "fig6", Title: "DHTM sensitivity to log-buffer size, hash (Figure 6)", Run: Figure6LogBuffer},
		{ID: "table6", Title: "TPC-C and TATP throughput normalized to SO (Table VI)", Run: Table6OLTP},
		{ID: "table7", Title: "NP and DHTM vs memory bandwidth, hash (Table VII)", Run: Table7Bandwidth},
		{ID: "durability", Title: "The cost of atomic durability (Section VI.D)", Run: DurabilityCost},
		{ID: "ablation", Title: "DHTM design ablations (overflow, log buffer, conflict policy)", Run: Ablations},
	}
}

// Find looks an experiment up by ID.
func Find(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// fmtRatio renders a throughput ratio the way the paper reports it.
func fmtRatio(v float64) string { return fmt.Sprintf("%.2f", v) }

// fmtPercent renders a rate as a whole percentage.
func fmtPercent(v float64) string { return fmt.Sprintf("%.0f%%", v*100) }
