// Package harness defines the experiments of the paper's evaluation section
// (§VI): each table and figure is a declarative grid of independent
// simulation cells (a runner.Plan) plus a reducer that renders the same rows
// or series the paper reports from the grid's results. The runner package
// fans the cells out across a worker pool; because every cell builds a fresh
// simulated machine and seeds derive from cell content, parallel and serial
// sweeps render byte-identical tables. cmd/dhtm-bench and the benchmarks in
// bench_test.go are thin wrappers around this package.
package harness

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"strings"
	"time"

	"dhtm/internal/config"
	"dhtm/internal/obs"
	"dhtm/internal/probe"
	"dhtm/internal/registry"
	"dhtm/internal/resultstore"
	"dhtm/internal/runner"
	"dhtm/internal/snapshot"
	"dhtm/internal/txn"
	"dhtm/internal/workloads"
)

// Design names accepted by NewRuntime, re-exported from the registry (the
// single source of truth for the design catalog).
const (
	DesignSO          = registry.DesignSO
	DesignSdTM        = registry.DesignSdTM
	DesignATOM        = registry.DesignATOM
	DesignLogTMATOM   = registry.DesignLogTMATOM
	DesignNP          = registry.DesignNP
	DesignDHTM        = registry.DesignDHTM
	DesignDHTMInstant = registry.DesignDHTMInstant
	DesignDHTML1      = registry.DesignDHTML1
	DesignDHTMNoBuf   = registry.DesignDHTMNoBuf
)

// Designs lists every runnable design name, straight from the registry.
func Designs() []string { return registry.DesignNames() }

// NewRuntime constructs the named design over a fresh environment by
// resolving it through the registry.
func NewRuntime(env *txn.Env, design string) (txn.Runtime, error) {
	return registry.NewRuntime(env, design)
}

// Execute is the cell-runner callback: it builds a fully isolated machine
// for the cell (Table III configuration plus the cell's core count and
// overrides) and runs it to completion. The setup phase is amortized through
// the process-wide snapshot cache — the cell's store is a copy-on-write
// clone of the post-Setup image for its (config, workload, params) key — and
// the cache arrays are drawn from and returned to the hierarchy pools. It is
// safe to call from many goroutines at once: snapshot images are frozen, and
// everything mutable is per-invocation.
func Execute(cell runner.Cell) (workloads.RunResult, error) {
	return execute(cell, probe.Config{})
}

// execute is Execute with an explicit trace config; ExecuteWith builds the
// traced variant on top of it.
func execute(cell runner.Cell, tc probe.Config) (workloads.RunResult, error) {
	trace := &obs.CellTrace{}
	cfg := config.Default()
	if cell.Cores > 0 {
		cfg.NumCores = cell.Cores
	}
	cfg = cell.Overrides.Apply(cfg)
	p := workloads.Params{Cores: cfg.NumCores, Seed: cell.Seed, OpsPerTx: cell.OpsPerTx}
	start := time.Now()
	prep, err := snapshot.Default.Prepare(cfg, cell.Workload, p)
	trace.Add(obs.PhaseSetup, time.Since(start))
	if err != nil {
		return workloads.RunResult{}, err
	}
	start = time.Now()
	env, err := txn.NewEnvOn(cfg, prep.NewStore())
	if err != nil {
		return workloads.RunResult{}, err
	}
	defer env.Release()
	rt, err := NewRuntime(env, cell.Design)
	trace.Add(obs.PhaseClone, time.Since(start))
	if err != nil {
		return workloads.RunResult{}, err
	}
	if tc.Enabled() {
		env.Probe = TraceRecorder(tc, env, rt, cell)
	}
	txPerCore := cell.TxPerCore
	if txPerCore <= 0 {
		txPerCore = 16
	}
	start = time.Now()
	res, err := workloads.RunPrepared(env, rt, prep.Workload, p, txPerCore, true, nil, nil)
	trace.Add(obs.PhaseRun, time.Since(start))
	res.Phases = trace
	return res, err
}

// Options scales the experiments (Quick shrinks transaction counts so the
// whole suite finishes in seconds; the defaults give more stable numbers)
// and configures how their cell grids execute.
type Options struct {
	Cores     int
	TxPerCore int
	Quick     bool
	Out       io.Writer
	// Parallel is the sweep worker-pool size; <= 0 means GOMAXPROCS.
	Parallel int
	// Seed is the base seed per-cell seeds derive from (0 = runner default).
	Seed int64
	// Progress, when non-nil, receives one event per completed cell.
	Progress func(runner.ProgressEvent)
	// Store, when non-nil, is attached to every experiment plan so cells
	// read through the content-addressed result store instead of
	// re-simulating (see runner.Plan.Store).
	Store *resultstore.Store
	// Trace enables cycle-domain probing for every cell of the grid (see
	// probe.Config); computed cells carry their Timeline in the result set,
	// cache hits never do. The zero value keeps tracing off.
	Trace probe.Config
	// Dispatch, when non-nil, replaces the local cell runner: the grid's
	// plan is handed to it whole instead of runner.Run. The fleet
	// coordinator plugs in here to shard experiment grids across workers;
	// Store and Trace are then the dispatcher's concern and ignored locally.
	Dispatch func(ctx context.Context, plan runner.Plan, opts runner.Options) (*runner.ResultSet, error)
}

// runnerOptions translates experiment options into sweep options.
func (o Options) runnerOptions() runner.Options {
	return runner.Options{Parallel: o.Parallel, Seed: o.Seed, Progress: o.Progress}
}

// txCount picks the per-core transaction count for a workload class.
func (o Options) txCount(oltp bool) int {
	if o.TxPerCore > 0 {
		return o.TxPerCore
	}
	switch {
	case o.Quick && oltp:
		return 3
	case o.Quick:
		return 8
	case oltp:
		return 8
	default:
		return 24
	}
}

// cell builds a grid cell with the options' core count applied, identified
// by the "/"-joined parts.
func (o Options) cell(design, workload string, oltp bool, ov runner.Overrides, idParts ...string) runner.Cell {
	id := design + "/" + workload
	if len(idParts) > 0 {
		id += "/" + strings.Join(idParts, "/")
	}
	return runner.Cell{
		ID:        id,
		Design:    design,
		Workload:  workload,
		Cores:     o.Cores,
		TxPerCore: o.txCount(oltp),
		Overrides: ov,
	}
}

// Table is a rendered experiment result.
type Table struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
}

// Render writes the table in an aligned plain-text format.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// RenderFailure writes the one-line rendering of a failed experiment.
// dhtm-bench's scenario mode and serve's /tables endpoint both use it, so
// the two surfaces stay byte-identical even for failing campaigns.
func RenderFailure(w io.Writer, id, errMsg string) {
	fmt.Fprintf(w, "%s — FAILED: %s\n\n", id, errMsg)
}

// WriteCSV writes the table as one CSV block: a header row of column names
// prefixed by the experiment ID, then the data rows.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(append([]string{"experiment"}, t.Columns...)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(append([]string{t.ID}, row...)); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Experiment is one reproducible table or figure from the paper, expressed
// as a declarative cell grid plus a reducer over the grid's results.
type Experiment struct {
	ID    string
	Title string
	// Plan lays out the experiment's independent simulation cells.
	Plan func(o Options) runner.Plan
	// Reduce renders the paper's table from the completed grid. Reducers look
	// results up by cell ID, never by completion order, so they are
	// insensitive to parallel scheduling.
	Reduce func(o Options, rs *runner.ResultSet) (*Table, error)
}

// Run executes the experiment's grid (in parallel per o.Parallel) and
// reduces it to a table. Cell failures surface as one joined error after
// every cell has had its chance to run. Cancelling ctx surfaces as
// ErrCancelled cell failures.
func (e Experiment) Run(ctx context.Context, o Options) (*Table, error) {
	rs, err := e.RunGrid(ctx, o)
	if err != nil {
		return nil, err
	}
	if err := rs.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", e.ID, err)
	}
	return e.Reduce(o, rs)
}

// RunGrid executes the experiment's cells and returns the raw result set
// (for callers that want machine-readable per-cell results alongside the
// rendered table). Individual cell failures do not discard the set — they
// stay in their Results entries and in rs.Err(), so callers can still report
// the successful cells and the derived seeds of the failed ones. The
// returned error covers plan-level problems only.
func (e Experiment) RunGrid(ctx context.Context, o Options) (*runner.ResultSet, error) {
	plan := e.Plan(o)
	var (
		rs  *runner.ResultSet
		err error
	)
	if o.Dispatch != nil {
		rs, err = o.Dispatch(ctx, plan, o.runnerOptions())
	} else {
		plan.Store = o.Store
		rs, err = runner.Run(ctx, plan, ExecuteWith(o.Trace), o.runnerOptions())
	}
	if err != nil {
		return nil, fmt.Errorf("%s: %w", e.ID, err)
	}
	return rs, nil
}

// Experiments returns every experiment in the order of the paper.
func Experiments() []Experiment {
	return []Experiment{
		{ID: "table4", Title: "Workload write-set sizes (Table IV)", Plan: planTable4, Reduce: reduceTable4},
		{ID: "fig5", Title: "Micro-benchmark throughput normalized to SO (Figure 5)", Plan: planFigure5, Reduce: reduceFigure5},
		{ID: "table5", Title: "Abort rates for sdTM and DHTM (Table V)", Plan: planTable5, Reduce: reduceTable5},
		{ID: "fig6", Title: "DHTM sensitivity to log-buffer size, hash (Figure 6)", Plan: planFigure6, Reduce: reduceFigure6},
		{ID: "table6", Title: "TPC-C and TATP throughput normalized to SO (Table VI)", Plan: planTable6, Reduce: reduceTable6},
		{ID: "table7", Title: "NP and DHTM vs memory bandwidth, hash (Table VII)", Plan: planTable7, Reduce: reduceTable7},
		{ID: "durability", Title: "The cost of atomic durability (Section VI.D)", Plan: planDurability, Reduce: reduceDurability},
		{ID: "ablation", Title: "DHTM design ablations (overflow, log buffer, conflict policy)", Plan: planAblations, Reduce: reduceAblations},
	}
}

// ExperimentIDs lists every experiment ID in paper order (the valid values
// of dhtm-bench -exp and the serve API's experiment selection).
func ExperimentIDs() []string {
	exps := Experiments()
	ids := make([]string, len(exps))
	for i, e := range exps {
		ids[i] = e.ID
	}
	return ids
}

// Find looks an experiment up by ID.
func Find(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// fmtRatio renders a throughput ratio the way the paper reports it.
func fmtRatio(v float64) string { return fmt.Sprintf("%.2f", v) }

// fmtPercent renders a rate as a whole percentage.
func fmtPercent(v float64) string { return fmt.Sprintf("%.0f%%", v*100) }
