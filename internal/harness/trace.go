package harness

import (
	"dhtm/internal/probe"
	"dhtm/internal/runner"
	"dhtm/internal/txn"
	"dhtm/internal/workloads"
)

// TraceRecorder builds a cell's cycle-domain recorder with the full probe
// catalog wired in: transaction outcomes (stats), WAL occupancy (wal),
// persist-queue depth and traffic classes (memdev), cache counters (hier),
// and whatever design-specific signals the runtime contributes through
// probe.Registrar (DHTM's log buffer, the baselines' overflow sets).
//
// The registration order here is fixed — it determines the signal order of
// the exported timeline, which the golden tests pin.
func TraceRecorder(tc probe.Config, env *txn.Env, rt txn.Runtime, cell runner.Cell) *probe.Recorder {
	rec := probe.NewRecorder(tc)
	rec.SetMeta(cell.ID, rt.Name(), cell.Workload, cell.Seed)
	env.Stats.RegisterProbes(rec)
	env.Registry.RegisterProbes(rec)
	env.Ctl.RegisterProbes(rec)
	env.Hier.RegisterProbes(rec)
	if reg, ok := rt.(probe.Registrar); ok {
		reg.RegisterProbes(rec)
	}
	return rec
}

// ExecuteWith returns a cell-runner callback like Execute but with per-cell
// tracing at the given config. A disabled config returns Execute itself, so
// grids without tracing run the exact code path they always did.
func ExecuteWith(tc probe.Config) runner.ExecFunc {
	if !tc.Enabled() {
		return Execute
	}
	return func(cell runner.Cell) (workloads.RunResult, error) {
		return execute(cell, tc)
	}
}
