package harness

import (
	"fmt"
	"math"

	"dhtm/internal/config"
	"dhtm/internal/stats"
	"dhtm/internal/workloads"
)

// Table4WriteSets reproduces Table IV: the mean write-set size, in cache
// lines, of every workload (measured on the volatile NP design so logging
// does not perturb the footprint).
func Table4WriteSets(o Options) (*Table, error) {
	t := &Table{
		ID:      "Table IV",
		Title:   "Workloads and their write-set sizes (# cache lines)",
		Columns: []string{"workload", "write-set lines", "read-set lines", "paper"},
		Notes: []string{
			"paper values: TPC-C 590, TATP 167, queue 52, hash 58, sdg 56, sps 63, btree 61, rbtree 53",
			"the shape to preserve is OLTP >> micro-benchmarks, with TPC-C exceeding the 32 KB L1",
		},
	}
	paper := map[string]string{
		"tpcc": "590", "tatp": "167", "queue": "52", "hash": "58",
		"sdg": "56", "sps": "63", "btree": "61", "rbtree": "53",
	}
	names := append([]string{"tpcc", "tatp"}, workloads.MicroNames()...)
	for _, name := range names {
		oltp := name == "tpcc" || name == "tatp"
		res, err := Execute(RunSpec{
			Design:    DesignNP,
			Workload:  name,
			Cfg:       o.baseConfig(),
			TxPerCore: o.txCount(oltp),
		})
		if err != nil {
			return nil, fmt.Errorf("table4: %s: %w", name, err)
		}
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%.0f", res.Stats.MeanWriteSetLines()),
			fmt.Sprintf("%.0f", res.Stats.MeanReadSetLines()),
			paper[name],
		})
	}
	return t, nil
}

// microThroughput runs one design across all micro-benchmarks and returns
// throughput (tx per million cycles) per workload plus the resulting stats.
func microThroughput(o Options, design string) (map[string]float64, map[string]*stats.Stats, error) {
	th := make(map[string]float64)
	st := make(map[string]*stats.Stats)
	for _, name := range workloads.MicroNames() {
		res, err := Execute(RunSpec{
			Design:    design,
			Workload:  name,
			Cfg:       o.baseConfig(),
			TxPerCore: o.txCount(false),
		})
		if err != nil {
			return nil, nil, fmt.Errorf("%s/%s: %w", design, name, err)
		}
		th[name] = res.Throughput()
		st[name] = res.Stats
	}
	return th, st, nil
}

// Figure5Throughput reproduces Figure 5: the transaction throughput of sdTM,
// ATOM, LogTM-ATOM and DHTM on the micro-benchmarks, normalized to SO.
func Figure5Throughput(o Options) (*Table, error) {
	designs := []string{DesignSO, DesignSdTM, DesignATOM, DesignLogTMATOM, DesignDHTM}
	perDesign := make(map[string]map[string]float64)
	for _, d := range designs {
		th, _, err := microThroughput(o, d)
		if err != nil {
			return nil, err
		}
		perDesign[d] = th
	}
	t := &Table{
		ID:      "Figure 5",
		Title:   "Transaction throughput normalized to SO",
		Columns: append([]string{"design"}, append(workloads.MicroNames(), "geo-mean")...),
		Notes: []string{
			"paper averages: sdTM 1.20, ATOM 1.35, LogTM-ATOM 1.44, DHTM 1.61",
			"expected ordering: SO < sdTM < ATOM < LogTM-ATOM < DHTM",
		},
	}
	for _, d := range designs {
		row := []string{d}
		prod, n := 1.0, 0
		for _, w := range workloads.MicroNames() {
			ratio := ratioTo(perDesign[d][w], perDesign[DesignSO][w])
			row = append(row, fmtRatio(ratio))
			prod *= ratio
			n++
		}
		row = append(row, fmtRatio(geoMean(prod, n)))
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Table5AbortRates reproduces Table V: abort rates of sdTM and DHTM on the
// micro-benchmarks.
func Table5AbortRates(o Options) (*Table, error) {
	t := &Table{
		ID:      "Table V",
		Title:   "Abort rates (%) for sdTM and DHTM",
		Columns: append([]string{"design"}, append(workloads.MicroNames(), "mean")...),
		Notes: []string{
			"paper: sdTM 68/19/23/27/37/46 (avg 37), DHTM 46/5/13/16/18/26 (avg 21)",
			"expected shape: DHTM aborts less than sdTM on every workload; queue is the worst case",
		},
	}
	for _, d := range []string{DesignSdTM, DesignDHTM} {
		_, st, err := microThroughput(o, d)
		if err != nil {
			return nil, err
		}
		row := []string{d}
		var sum float64
		for _, w := range workloads.MicroNames() {
			rate := st[w].AbortRate()
			row = append(row, fmtPercent(rate))
			sum += rate
		}
		row = append(row, fmtPercent(sum/float64(len(workloads.MicroNames()))))
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Figure6LogBuffer reproduces Figure 6: DHTM throughput on hash as a function
// of the log-buffer size, normalized to SO.
func Figure6LogBuffer(o Options) (*Table, error) {
	soRes, err := Execute(RunSpec{
		Design: DesignSO, Workload: "hash", Cfg: o.baseConfig(), TxPerCore: o.txCount(false),
	})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "Figure 6",
		Title:   "DHTM throughput on hash vs log-buffer size (normalized to SO)",
		Columns: []string{"log-buffer entries", "normalized throughput", "log bytes / tx"},
		Notes: []string{
			"paper: throughput rises with buffer size, saturates at 64 entries, dips slightly at 128",
			"small buffers waste bandwidth on un-coalesced records; very large buffers push log writes into the commit path",
		},
	}
	for _, size := range []int{4, 8, 16, 32, 64, 128} {
		res, err := Execute(RunSpec{
			Design: DesignDHTM, Workload: "hash", Cfg: o.baseConfig(),
			TxPerCore: o.txCount(false), LogBufferEntries: size,
		})
		if err != nil {
			return nil, err
		}
		logPerTx := float64(res.Stats.LogBytes) / float64(res.Committed)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", size),
			fmtRatio(ratioTo(res.Throughput(), soRes.Throughput())),
			fmt.Sprintf("%.0f", logPerTx),
		})
	}
	return t, nil
}

// Table6OLTP reproduces Table VI: TPC-C and TATP throughput of ATOM and DHTM
// normalized to SO.
func Table6OLTP(o Options) (*Table, error) {
	t := &Table{
		ID:      "Table VI",
		Title:   "OLTP transaction throughput normalized to SO",
		Columns: []string{"workload", "SO", "ATOM", "DHTM"},
		Notes: []string{
			"paper: TPC-C — ATOM 1.67, DHTM 1.88; TATP — ATOM 1.27, DHTM 1.53",
			"expected ordering on both workloads: SO < ATOM < DHTM",
		},
	}
	for _, w := range []string{"tpcc", "tatp"} {
		ths := make(map[string]float64)
		for _, d := range []string{DesignSO, DesignATOM, DesignDHTM} {
			res, err := Execute(RunSpec{
				Design: d, Workload: w, Cfg: o.baseConfig(), TxPerCore: o.txCount(true),
			})
			if err != nil {
				return nil, fmt.Errorf("table6: %s/%s: %w", d, w, err)
			}
			ths[d] = res.Throughput()
		}
		t.Rows = append(t.Rows, []string{
			w,
			fmtRatio(1.0),
			fmtRatio(ratioTo(ths[DesignATOM], ths[DesignSO])),
			fmtRatio(ratioTo(ths[DesignDHTM], ths[DesignSO])),
		})
	}
	return t, nil
}

// Table7Bandwidth reproduces Table VII: NP and DHTM throughput on hash,
// normalized to SO, while the memory bandwidth is scaled 1x / 2x / 10x.
func Table7Bandwidth(o Options) (*Table, error) {
	t := &Table{
		ID:      "Table VII",
		Title:   "Throughput normalized to SO on hash with varying memory bandwidth",
		Columns: []string{"bandwidth", "NP", "DHTM", "gap"},
		Notes: []string{
			"paper: NP 2.9/3.0/3.3 and DHTM 1.9/2.4/3.0 at 1x/2x/10x",
			"expected shape: the NP-DHTM gap narrows as bandwidth grows (durability is bandwidth-bound)",
		},
	}
	for _, scale := range []float64{1, 2, 10} {
		cfg := o.baseConfig()
		cfg.BandwidthScale = scale
		ths := make(map[string]float64)
		for _, d := range []string{DesignSO, DesignNP, DesignDHTM} {
			res, err := Execute(RunSpec{
				Design: d, Workload: "hash", Cfg: cfg, TxPerCore: o.txCount(false),
			})
			if err != nil {
				return nil, fmt.Errorf("table7: %s@%gx: %w", d, scale, err)
			}
			ths[d] = res.Throughput()
		}
		np := ratioTo(ths[DesignNP], ths[DesignSO])
		dh := ratioTo(ths[DesignDHTM], ths[DesignSO])
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%gx", scale),
			fmtRatio(np),
			fmtRatio(dh),
			fmtRatio(ratioTo(np, dh)),
		})
	}
	return t, nil
}

// DurabilityCost reproduces the §VI.D analysis: the throughput of NP and of
// an idealised DHTM whose log/data writes are instantaneous, relative to SO
// and DHTM, averaged over the micro-benchmarks.
func DurabilityCost(o Options) (*Table, error) {
	designs := []string{DesignSO, DesignDHTM, DesignDHTMInstant, DesignNP}
	per := make(map[string]map[string]float64)
	for _, d := range designs {
		th, _, err := microThroughput(o, d)
		if err != nil {
			return nil, err
		}
		per[d] = th
	}
	t := &Table{
		ID:      "Section VI.D",
		Title:   "The cost of atomic durability (micro-benchmark geo-means, normalized to SO)",
		Columns: []string{"design", "normalized throughput"},
		Notes: []string{
			"paper: NP is about 2.2x SO (≈59% above DHTM); instantaneous log/data writes gain DHTM ≈16%",
			"expected ordering: DHTM < DHTM-instant < NP",
		},
	}
	for _, d := range designs {
		prod, n := 1.0, 0
		for _, w := range workloads.MicroNames() {
			prod *= ratioTo(per[d][w], per[DesignSO][w])
			n++
		}
		t.Rows = append(t.Rows, []string{d, fmtRatio(geoMean(prod, n))})
	}
	return t, nil
}

// Ablations quantifies DHTM's individual design choices on the hash and tpcc
// workloads: disabling L1-to-LLC overflow (PTM-like, L1-limited), disabling
// the coalescing log buffer (word-granular logging), and switching the
// conflict-resolution policy to requester-wins.
func Ablations(o Options) (*Table, error) {
	t := &Table{
		ID:      "Ablations",
		Title:   "DHTM design ablations (throughput normalized to full DHTM)",
		Columns: []string{"variant", "hash", "tpcc"},
		Notes: []string{
			"DHTM-L1 shows what the LLC-overflow extension buys (largest on OLTP)",
			"DHTM-nobuf shows what log coalescing buys (bandwidth-bound workloads)",
		},
	}
	workloadsUnder := []string{"hash", "tpcc"}
	base := make(map[string]float64)
	for _, w := range workloadsUnder {
		res, err := Execute(RunSpec{
			Design: DesignDHTM, Workload: w, Cfg: o.baseConfig(),
			TxPerCore: o.txCount(w == "tpcc"),
		})
		if err != nil {
			return nil, err
		}
		base[w] = res.Throughput()
	}
	variants := []struct {
		name   string
		design string
		policy config.ConflictPolicy
	}{
		{"DHTM (baseline)", DesignDHTM, config.FirstWriterWins},
		{"DHTM-L1 (no overflow)", DesignDHTML1, config.FirstWriterWins},
		{"DHTM-nobuf (no coalescing)", DesignDHTMNoBuf, config.FirstWriterWins},
		{"DHTM requester-wins", DesignDHTM, config.RequesterWins},
	}
	for _, v := range variants {
		row := []string{v.name}
		for _, w := range workloadsUnder {
			cfg := o.baseConfig()
			cfg.ConflictPolicy = v.policy
			res, err := Execute(RunSpec{
				Design: v.design, Workload: w, Cfg: cfg,
				TxPerCore: o.txCount(w == "tpcc"),
			})
			if err != nil {
				return nil, err
			}
			row = append(row, fmtRatio(ratioTo(res.Throughput(), base[w])))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// ratioTo guards against division by zero when normalising throughputs.
func ratioTo(v, base float64) float64 {
	if base == 0 {
		return 0
	}
	return v / base
}

// geoMean finishes a running product of n ratios.
func geoMean(prod float64, n int) float64 {
	if n == 0 || prod <= 0 {
		return 0
	}
	return math.Pow(prod, 1/float64(n))
}
