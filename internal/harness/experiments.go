package harness

import (
	"fmt"
	"math"

	"dhtm/internal/config"
	"dhtm/internal/registry"
	"dhtm/internal/runner"
)

// Every experiment below is a (plan, reduce) pair. The plan lays out the
// experiment's grid of independent simulation cells; the reducer renders the
// paper's table by looking cells up by ID. Reducers therefore never depend
// on execution order, which is what lets the runner fan the grid out across
// a worker pool while keeping the rendered table byte-identical to a serial
// run.

// isOLTP reports whether a workload uses the OLTP transaction budget.
func isOLTP(name string) bool {
	w, ok := registry.LookupWorkload(name)
	return ok && w.OLTP
}

// microNames lists the six micro-benchmarks in paper plot order.
func microNames() []string { return registry.MicroWorkloadNames() }

// table4Names lists Table IV's workloads in paper order.
func table4Names() []string {
	return append(registry.WorkloadNamesByTag(registry.TagOLTP), microNames()...)
}

// planTable4 lays out Table IV: every workload once, on the volatile NP
// design so logging does not perturb the footprint.
func planTable4(o Options) runner.Plan {
	p := runner.Plan{Name: "table4"}
	for _, name := range table4Names() {
		p.Add(o.cell(DesignNP, name, isOLTP(name), runner.Overrides{}))
	}
	return p
}

// reduceTable4 renders the mean write-set size, in cache lines, of every
// workload.
func reduceTable4(o Options, rs *runner.ResultSet) (*Table, error) {
	t := &Table{
		ID:      "Table IV",
		Title:   "Workloads and their write-set sizes (# cache lines)",
		Columns: []string{"workload", "write-set lines", "read-set lines", "paper"},
		Notes: []string{
			"paper values: TPC-C 590, TATP 167, queue 52, hash 58, sdg 56, sps 63, btree 61, rbtree 53",
			"the shape to preserve is OLTP >> micro-benchmarks, with TPC-C exceeding the 32 KB L1",
		},
	}
	paper := map[string]string{
		"tpcc": "590", "tatp": "167", "queue": "52", "hash": "58",
		"sdg": "56", "sps": "63", "btree": "61", "rbtree": "53",
	}
	for _, name := range table4Names() {
		res, err := rs.Run(DesignNP + "/" + name)
		if err != nil {
			return nil, fmt.Errorf("table4: %s: %w", name, err)
		}
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%.0f", res.Stats.MeanWriteSetLines()),
			fmt.Sprintf("%.0f", res.Stats.MeanReadSetLines()),
			paper[name],
		})
	}
	return t, nil
}

// addMicroGrid adds one cell per (design, micro-benchmark) pair.
func addMicroGrid(p *runner.Plan, o Options, designs []string) {
	for _, d := range designs {
		for _, w := range microNames() {
			p.Add(o.cell(d, w, false, runner.Overrides{}))
		}
	}
}

// microThroughput reads the throughput of every micro-benchmark for a design
// out of a completed grid.
func microThroughput(rs *runner.ResultSet, design string) (map[string]float64, error) {
	th := make(map[string]float64)
	for _, w := range microNames() {
		res, err := rs.Run(design + "/" + w)
		if err != nil {
			return nil, err
		}
		th[w] = res.Throughput()
	}
	return th, nil
}

// fig5Designs lists Figure 5's designs in paper order.
func fig5Designs() []string {
	return []string{DesignSO, DesignSdTM, DesignATOM, DesignLogTMATOM, DesignDHTM}
}

// planFigure5 lays out Figure 5: every evaluated design on every
// micro-benchmark.
func planFigure5(o Options) runner.Plan {
	p := runner.Plan{Name: "fig5"}
	addMicroGrid(&p, o, fig5Designs())
	return p
}

// reduceFigure5 renders the transaction throughput of sdTM, ATOM, LogTM-ATOM
// and DHTM on the micro-benchmarks, normalized to SO.
func reduceFigure5(o Options, rs *runner.ResultSet) (*Table, error) {
	so, err := microThroughput(rs, DesignSO)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "Figure 5",
		Title:   "Transaction throughput normalized to SO",
		Columns: append([]string{"design"}, append(microNames(), "geo-mean")...),
		Notes: []string{
			"paper averages: sdTM 1.20, ATOM 1.35, LogTM-ATOM 1.44, DHTM 1.61",
			"expected ordering: SO < sdTM < ATOM < LogTM-ATOM < DHTM",
		},
	}
	for _, d := range fig5Designs() {
		th, err := microThroughput(rs, d)
		if err != nil {
			return nil, err
		}
		row := []string{d}
		prod, n := 1.0, 0
		for _, w := range microNames() {
			ratio := ratioTo(th[w], so[w])
			row = append(row, fmtRatio(ratio))
			prod *= ratio
			n++
		}
		row = append(row, fmtRatio(geoMean(prod, n)))
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// planTable5 lays out Table V: sdTM and DHTM on every micro-benchmark.
func planTable5(o Options) runner.Plan {
	p := runner.Plan{Name: "table5"}
	addMicroGrid(&p, o, []string{DesignSdTM, DesignDHTM})
	return p
}

// reduceTable5 renders the abort rates of sdTM and DHTM.
func reduceTable5(o Options, rs *runner.ResultSet) (*Table, error) {
	t := &Table{
		ID:      "Table V",
		Title:   "Abort rates (%) for sdTM and DHTM",
		Columns: append([]string{"design"}, append(microNames(), "mean")...),
		Notes: []string{
			"paper: sdTM 68/19/23/27/37/46 (avg 37), DHTM 46/5/13/16/18/26 (avg 21)",
			"expected shape: DHTM aborts less than sdTM on every workload; queue is the worst case",
		},
	}
	for _, d := range []string{DesignSdTM, DesignDHTM} {
		row := []string{d}
		var sum float64
		for _, w := range microNames() {
			res, err := rs.Run(d + "/" + w)
			if err != nil {
				return nil, err
			}
			rate := res.Stats.AbortRate()
			row = append(row, fmtPercent(rate))
			sum += rate
		}
		row = append(row, fmtPercent(sum/float64(len(microNames()))))
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// fig6BufferSizes lists the log-buffer sweep points of Figure 6.
func fig6BufferSizes() []int { return []int{4, 8, 16, 32, 64, 128} }

// planFigure6 lays out Figure 6: the SO baseline on hash plus DHTM on hash
// at each log-buffer size.
func planFigure6(o Options) runner.Plan {
	p := runner.Plan{Name: "fig6"}
	p.Add(o.cell(DesignSO, "hash", false, runner.Overrides{}))
	for _, size := range fig6BufferSizes() {
		p.Add(o.cell(DesignDHTM, "hash", false,
			runner.Overrides{LogBufferEntries: size},
			fmt.Sprintf("logbuf=%d", size)))
	}
	return p
}

// reduceFigure6 renders DHTM throughput on hash as a function of the
// log-buffer size, normalized to SO.
func reduceFigure6(o Options, rs *runner.ResultSet) (*Table, error) {
	soRes, err := rs.Run(DesignSO + "/hash")
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "Figure 6",
		Title:   "DHTM throughput on hash vs log-buffer size (normalized to SO)",
		Columns: []string{"log-buffer entries", "normalized throughput", "log bytes / tx"},
		Notes: []string{
			"paper: throughput rises with buffer size, saturates at 64 entries, dips slightly at 128",
			"small buffers waste bandwidth on un-coalesced records; very large buffers push log writes into the commit path",
		},
	}
	for _, size := range fig6BufferSizes() {
		res, err := rs.Run(fmt.Sprintf("%s/hash/logbuf=%d", DesignDHTM, size))
		if err != nil {
			return nil, err
		}
		logPerTx := float64(res.Stats.LogBytes) / float64(res.Committed)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", size),
			fmtRatio(ratioTo(res.Throughput(), soRes.Throughput())),
			fmt.Sprintf("%.0f", logPerTx),
		})
	}
	return t, nil
}

// planTable6 lays out Table VI: SO, ATOM and DHTM on both OLTP workloads.
func planTable6(o Options) runner.Plan {
	p := runner.Plan{Name: "table6"}
	for _, w := range []string{"tpcc", "tatp"} {
		for _, d := range []string{DesignSO, DesignATOM, DesignDHTM} {
			p.Add(o.cell(d, w, true, runner.Overrides{}))
		}
	}
	return p
}

// reduceTable6 renders TPC-C and TATP throughput of ATOM and DHTM normalized
// to SO.
func reduceTable6(o Options, rs *runner.ResultSet) (*Table, error) {
	t := &Table{
		ID:      "Table VI",
		Title:   "OLTP transaction throughput normalized to SO",
		Columns: []string{"workload", "SO", "ATOM", "DHTM"},
		Notes: []string{
			"paper: TPC-C — ATOM 1.67, DHTM 1.88; TATP — ATOM 1.27, DHTM 1.53",
			"expected ordering on both workloads: SO < ATOM < DHTM",
		},
	}
	for _, w := range []string{"tpcc", "tatp"} {
		ths := make(map[string]float64)
		for _, d := range []string{DesignSO, DesignATOM, DesignDHTM} {
			res, err := rs.Run(d + "/" + w)
			if err != nil {
				return nil, fmt.Errorf("table6: %s/%s: %w", d, w, err)
			}
			ths[d] = res.Throughput()
		}
		t.Rows = append(t.Rows, []string{
			w,
			fmtRatio(1.0),
			fmtRatio(ratioTo(ths[DesignATOM], ths[DesignSO])),
			fmtRatio(ratioTo(ths[DesignDHTM], ths[DesignSO])),
		})
	}
	return t, nil
}

// table7Scales lists the bandwidth sweep points of Table VII.
func table7Scales() []float64 { return []float64{1, 2, 10} }

// planTable7 lays out Table VII: SO, NP and DHTM on hash at each memory
// bandwidth scale.
func planTable7(o Options) runner.Plan {
	p := runner.Plan{Name: "table7"}
	for _, scale := range table7Scales() {
		for _, d := range []string{DesignSO, DesignNP, DesignDHTM} {
			p.Add(o.cell(d, "hash", false,
				runner.Overrides{BandwidthScale: scale},
				fmt.Sprintf("bw=%gx", scale)))
		}
	}
	return p
}

// reduceTable7 renders NP and DHTM throughput on hash, normalized to SO,
// as the memory bandwidth is scaled.
func reduceTable7(o Options, rs *runner.ResultSet) (*Table, error) {
	t := &Table{
		ID:      "Table VII",
		Title:   "Throughput normalized to SO on hash with varying memory bandwidth",
		Columns: []string{"bandwidth", "NP", "DHTM", "gap"},
		Notes: []string{
			"paper: NP 2.9/3.0/3.3 and DHTM 1.9/2.4/3.0 at 1x/2x/10x",
			"expected shape: the NP-DHTM gap narrows as bandwidth grows (durability is bandwidth-bound)",
		},
	}
	for _, scale := range table7Scales() {
		ths := make(map[string]float64)
		for _, d := range []string{DesignSO, DesignNP, DesignDHTM} {
			res, err := rs.Run(fmt.Sprintf("%s/hash/bw=%gx", d, scale))
			if err != nil {
				return nil, fmt.Errorf("table7: %s@%gx: %w", d, scale, err)
			}
			ths[d] = res.Throughput()
		}
		np := ratioTo(ths[DesignNP], ths[DesignSO])
		dh := ratioTo(ths[DesignDHTM], ths[DesignSO])
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%gx", scale),
			fmtRatio(np),
			fmtRatio(dh),
			fmtRatio(ratioTo(np, dh)),
		})
	}
	return t, nil
}

// durabilityDesigns lists the §VI.D comparison designs in report order.
func durabilityDesigns() []string {
	return []string{DesignSO, DesignDHTM, DesignDHTMInstant, DesignNP}
}

// planDurability lays out the §VI.D grid: SO, DHTM, idealised DHTM and NP on
// every micro-benchmark.
func planDurability(o Options) runner.Plan {
	p := runner.Plan{Name: "durability"}
	addMicroGrid(&p, o, durabilityDesigns())
	return p
}

// reduceDurability renders the throughput of NP and of an idealised DHTM
// whose log/data writes are instantaneous, relative to SO and DHTM, averaged
// over the micro-benchmarks.
func reduceDurability(o Options, rs *runner.ResultSet) (*Table, error) {
	so, err := microThroughput(rs, DesignSO)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "Section VI.D",
		Title:   "The cost of atomic durability (micro-benchmark geo-means, normalized to SO)",
		Columns: []string{"design", "normalized throughput"},
		Notes: []string{
			"paper: NP is about 2.2x SO (≈59% above DHTM); instantaneous log/data writes gain DHTM ≈16%",
			"expected ordering: DHTM < DHTM-instant < NP",
		},
	}
	for _, d := range durabilityDesigns() {
		th, err := microThroughput(rs, d)
		if err != nil {
			return nil, err
		}
		prod, n := 1.0, 0
		for _, w := range microNames() {
			prod *= ratioTo(th[w], so[w])
			n++
		}
		t.Rows = append(t.Rows, []string{d, fmtRatio(geoMean(prod, n))})
	}
	return t, nil
}

// ablationWorkloads lists the workloads the ablations are measured on.
func ablationWorkloads() []string { return []string{"hash", "tpcc"} }

// ablationVariants lists the DHTM design-choice variants. The baseline row
// reuses the full-DHTM cells, so its ratio renders as exactly 1.00.
func ablationVariants() []struct {
	name    string
	design  string
	ov      runner.Overrides
	idParts []string
} {
	rw := runner.Overrides{ConflictPolicy: config.RequesterWins, SetConflictPolicy: true}
	return []struct {
		name    string
		design  string
		ov      runner.Overrides
		idParts []string
	}{
		{"DHTM (baseline)", DesignDHTM, runner.Overrides{}, nil},
		{"DHTM-L1 (no overflow)", DesignDHTML1, runner.Overrides{}, nil},
		{"DHTM-nobuf (no coalescing)", DesignDHTMNoBuf, runner.Overrides{}, nil},
		{"DHTM requester-wins", DesignDHTM, rw, []string{"policy=requester-wins"}},
	}
}

// planAblations lays out the ablation grid: each variant on hash and tpcc.
// The baseline variant's cells double as the normalization denominators.
func planAblations(o Options) runner.Plan {
	p := runner.Plan{Name: "ablation"}
	for _, v := range ablationVariants() {
		for _, w := range ablationWorkloads() {
			p.Add(o.cell(v.design, w, w == "tpcc", v.ov, v.idParts...))
		}
	}
	return p
}

// reduceAblations renders each variant's throughput normalized to full DHTM.
func reduceAblations(o Options, rs *runner.ResultSet) (*Table, error) {
	t := &Table{
		ID:      "Ablations",
		Title:   "DHTM design ablations (throughput normalized to full DHTM)",
		Columns: []string{"variant", "hash", "tpcc"},
		Notes: []string{
			"DHTM-L1 shows what the LLC-overflow extension buys (largest on OLTP)",
			"DHTM-nobuf shows what log coalescing buys (bandwidth-bound workloads)",
		},
	}
	base := make(map[string]float64)
	for _, w := range ablationWorkloads() {
		res, err := rs.Run(DesignDHTM + "/" + w)
		if err != nil {
			return nil, err
		}
		base[w] = res.Throughput()
	}
	for _, v := range ablationVariants() {
		row := []string{v.name}
		for _, w := range ablationWorkloads() {
			id := v.design + "/" + w
			if len(v.idParts) > 0 {
				id += "/" + v.idParts[0]
			}
			res, err := rs.Run(id)
			if err != nil {
				return nil, err
			}
			row = append(row, fmtRatio(ratioTo(res.Throughput(), base[w])))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// ratioTo guards against division by zero when normalising throughputs.
func ratioTo(v, base float64) float64 {
	if base == 0 {
		return 0
	}
	return v / base
}

// geoMean finishes a running product of n ratios.
func geoMean(prod float64, n int) float64 {
	if n == 0 || prod <= 0 {
		return 0
	}
	return math.Pow(prod, 1/float64(n))
}
