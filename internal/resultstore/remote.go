// Remote tier: the HTTP record protocol a fleet coordinator serves and its
// workers read and write through. One endpoint, two methods, records on the
// wire in exactly the on-disk document format:
//
//	GET  {endpoint}?cell={cell key}&seed={seed}  -> 200 record | 404
//	PUT  {endpoint}?cell={cell key}&seed={seed}  <- record body -> 204
//
// The client side (HTTPBackend) keeps the full corruption-tolerance contract
// of the disk tier: a missing record, an unreachable coordinator, a garbage
// body, a version-skewed or key-mismatched record are all misses — never
// errors — so a worker survives a flaky network exactly the way a local
// store survives a flaky disk.
package resultstore

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"dhtm/internal/workloads"
)

// maxRecordBytes bounds one record document on the wire. Records are cell
// results (a few KB of stats JSON); the cap only guards against a confused
// peer streaming garbage.
const maxRecordBytes = 64 << 20

// HTTPBackend is the remote durable tier: records live in a store served
// over HTTP by a fleet coordinator (see Handler). Safe for concurrent use.
type HTTPBackend struct {
	endpoint string
	client   *http.Client
}

// NewHTTPBackend returns a backend talking to the record endpoint at the
// given URL (e.g. http://coordinator:8080/api/v1/fleet/records). A nil
// client gets a 30-second-timeout default.
func NewHTTPBackend(endpoint string, client *http.Client) *HTTPBackend {
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	return &HTTPBackend{endpoint: strings.TrimRight(endpoint, "/"), client: client}
}

// Tier implements Backend.
func (b *HTTPBackend) Tier() string { return "remote" }

// Location implements Backend.
func (b *HTTPBackend) Location() string { return b.endpoint }

// keyURL addresses one record: the cell key and seed ride as query
// parameters so any HTTP client (curl included) can fetch a record.
func (b *HTTPBackend) keyURL(k Key) string {
	q := url.Values{}
	q.Set("cell", k.Cell)
	q.Set("seed", strconv.FormatInt(k.Seed, 10))
	return b.endpoint + "?" + q.Encode()
}

// Get implements Backend. A 404 is a clean miss; every other failure —
// network error, non-200 status, bad body, version skew, key mismatch — is
// OutcomeCorrupt, which callers treat as a miss.
func (b *HTTPBackend) Get(k Key) (res workloads.RunResult, out Outcome) {
	resp, err := b.client.Get(b.keyURL(k))
	if err != nil {
		return res, OutcomeCorrupt
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		return res, OutcomeMiss
	default:
		return res, OutcomeCorrupt
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxRecordBytes))
	if err != nil {
		return res, OutcomeCorrupt
	}
	return decodeRecord(raw, k)
}

// Put implements Backend: the record is PUT to the coordinator, which
// persists it through its own store. Unlike reads, a failed write is a real
// error — the store's write-error accounting needs to see it.
func (b *HTTPBackend) Put(k Key, res workloads.RunResult) error {
	raw, err := encodeRecord(k, res)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPut, b.keyURL(k), bytes.NewReader(raw))
	if err != nil {
		return fmt.Errorf("resultstore: remote put: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := b.client.Do(req)
	if err != nil {
		return fmt.Errorf("resultstore: remote put: %w", err)
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode/100 != 2 {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("resultstore: remote put: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	return nil
}

// Handler serves the record protocol over a store — the coordinator side of
// HTTPBackend. Reads answer from the store (LRU included); writes validate
// the record's version and key before persisting, so a confused or
// version-skewed worker cannot plant records under wrong addresses.
func Handler(s *Store) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		k, err := keyFromQuery(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		switch r.Method {
		case http.MethodGet:
			res, ok := s.Get(k)
			if !ok {
				http.Error(w, "no record", http.StatusNotFound)
				return
			}
			raw, err := encodeRecord(k, res)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.Write(raw)
		case http.MethodPut:
			raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRecordBytes))
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			res, out := decodeRecord(raw, k)
			if out != OutcomeHit {
				http.Error(w, "record rejected: bad document, version skew, or key mismatch", http.StatusBadRequest)
				return
			}
			if err := s.Put(k, res); err != nil {
				// The record is in the coordinator's memory tier regardless
				// (Put caches before persisting), so the worker's result is
				// not lost — but tell the worker the durable write failed.
				http.Error(w, err.Error(), http.StatusInsufficientStorage)
				return
			}
			w.WriteHeader(http.StatusNoContent)
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
}

// keyFromQuery parses the record address from ?cell=&seed=.
func keyFromQuery(r *http.Request) (Key, error) {
	cell := r.URL.Query().Get("cell")
	if cell == "" {
		return Key{}, fmt.Errorf("missing cell parameter")
	}
	seed, err := strconv.ParseInt(r.URL.Query().Get("seed"), 10, 64)
	if err != nil {
		return Key{}, fmt.Errorf("bad seed parameter: %v", err)
	}
	return Key{Cell: cell, Seed: seed}, nil
}
