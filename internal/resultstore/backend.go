package resultstore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"dhtm/internal/workloads"
)

// Outcome classifies one backend lookup. Corrupt is also a miss — a backend
// never surfaces a bad record as an error, it recomputes over it — but the
// store counts the two apart so a tampered or version-skewed tier is visible
// in the metrics.
type Outcome int

const (
	// OutcomeMiss: no record under the key.
	OutcomeMiss Outcome = iota
	// OutcomeHit: a valid record was read.
	OutcomeHit
	// OutcomeCorrupt: a record existed but was rejected (unreadable,
	// unparsable, version-skewed, key-mismatched, or — for remote tiers —
	// unreachable). Treated exactly like a miss by callers.
	OutcomeCorrupt
)

// Backend is the durable tier under a Store's in-memory LRU front. The Store
// layers the LRU, the singleflight table and the metrics on top, so every
// backend gets the same semantics the original disk tier had: reads are
// corruption-tolerant (an Outcome, never an error), writes are atomic from
// the reader's point of view, and records are self-describing versioned
// documents addressed by (cell key, seed, FormatVersion).
//
// Two implementations ship: DirBackend (the original sharded directory
// tree, on-disk bytes unchanged) and HTTPBackend (a remote store served by
// a fleet coordinator — see Handler).
type Backend interface {
	// Tier labels the backend's metric series ("disk", "remote").
	Tier() string
	// Location describes where records live — a directory, a URL.
	Location() string
	// Get returns the record stored for k. Every failure mode is an Outcome,
	// never an error.
	Get(k Key) (workloads.RunResult, Outcome)
	// Put durably persists the result for k.
	Put(k Key, res workloads.RunResult) error
}

// encodeRecord renders the versioned record document for k — the exact bytes
// DirBackend writes to disk and Handler serves over the wire.
func encodeRecord(k Key, res workloads.RunResult) ([]byte, error) {
	raw, err := json.MarshalIndent(record{Version: FormatVersion, Key: k, Result: res}, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("resultstore: encoding record: %w", err)
	}
	return append(raw, '\n'), nil
}

// decodeRecord parses and validates a record document against the key it was
// requested under. Bad JSON, version skew and key mismatch all report
// OutcomeCorrupt — the shared "reads as a miss, never an error" contract of
// every backend.
func decodeRecord(raw []byte, k Key) (workloads.RunResult, Outcome) {
	var rec record
	if err := json.Unmarshal(raw, &rec); err != nil {
		return workloads.RunResult{}, OutcomeCorrupt
	}
	if rec.Version != FormatVersion || rec.Key != k {
		return workloads.RunResult{}, OutcomeCorrupt
	}
	return rec.Result, OutcomeHit
}

// DirBackend is the local-directory tier: sharded versioned JSON records
// written via temp-file + atomic rename. It carries the exact on-disk format
// the store has always used, so existing result trees keep serving.
type DirBackend struct {
	dir string
}

// NewDirBackend roots a directory backend at dir, creating the version
// directory eagerly so permission problems surface at startup, not
// mid-campaign.
func NewDirBackend(dir string) (*DirBackend, error) {
	if dir == "" {
		return nil, fmt.Errorf("resultstore: directory backend needs a directory")
	}
	if err := os.MkdirAll(filepath.Join(dir, versionDir()), 0o755); err != nil {
		return nil, fmt.Errorf("resultstore: opening %s: %w", dir, err)
	}
	return &DirBackend{dir: dir}, nil
}

// Tier implements Backend.
func (b *DirBackend) Tier() string { return "disk" }

// Location implements Backend.
func (b *DirBackend) Location() string { return b.dir }

func versionDir() string { return fmt.Sprintf("v%d", FormatVersion) }

// path shards records two hex digits deep, keeping directories small even
// for millions of records.
func (b *DirBackend) path(hash string) string {
	return filepath.Join(b.dir, versionDir(), hash[:2], hash+".json")
}

// Get implements Backend. Every failure mode — missing file, unreadable
// file, bad JSON, version skew, key mismatch — is a miss; only a missing
// file is a silent one.
func (b *DirBackend) Get(k Key) (workloads.RunResult, Outcome) {
	raw, err := os.ReadFile(b.path(k.hash()))
	if err != nil {
		if os.IsNotExist(err) {
			return workloads.RunResult{}, OutcomeMiss
		}
		return workloads.RunResult{}, OutcomeCorrupt
	}
	return decodeRecord(raw, k)
}

// Put implements Backend: the record is written under a temporary name in
// its final directory and renamed into place, so readers only ever observe
// complete records.
func (b *DirBackend) Put(k Key, res workloads.RunResult) error {
	path := b.path(k.hash())
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	raw, err := encodeRecord(k, res)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	if _, err := tmp.Write(raw); err == nil {
		err = tmp.Close()
	} else {
		tmp.Close()
	}
	if err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("resultstore: writing record: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("resultstore: %w", err)
	}
	return nil
}
