// Package resultstore is a content-addressed, on-disk store of simulation
// results. A cell's outcome is a pure function of its semantic identity
// (runner.Cell.Key()) and its workload seed, so the pair addresses the result
// forever: computed once, a result can be served to any number of later
// sweeps, processes, or HTTP clients without re-simulating.
//
// The store has three layers:
//
//   - an in-memory LRU front that answers repeated lookups within a process
//     without touching the durable tier;
//   - a pluggable durable Backend — by default a sharded directory tree of
//     versioned JSON records, written via temp-file + atomic rename so a
//     crashed writer can never leave a half-record under a live name, and
//     read corruption-tolerantly: an unparsable, version-skewed or
//     key-mismatched record is a miss, never an error. An HTTPBackend
//     substitutes a remote store served by a fleet coordinator with exactly
//     the same semantics (see backend.go and remote.go);
//   - an in-flight table (singleflight) so concurrent requests for the same
//     key compute it exactly once and share the result.
//
// A Store with an empty directory (and no backend) is memory-only: the LRU
// and singleflight still work, nothing persists.
package resultstore

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"dhtm/internal/obs"
	"dhtm/internal/workloads"
)

// FormatVersion identifies the on-disk record format. It participates in the
// content address (a version bump orphans old records rather than
// misreading them) and is checked again inside each record. Bump it whenever
// the JSON encoding of workloads.RunResult or stats.Stats changes shape —
// the golden test in internal/workloads pins the current encoding.
const FormatVersion = 1

// Key addresses one simulation result.
type Key struct {
	// Cell is the cell's semantic identity string (runner.Cell.Key()).
	Cell string `json:"cell"`
	// Seed is the workload generation seed the cell ran with.
	Seed int64 `json:"seed"`
}

// hash returns the content address: a hex SHA-256 over the format version
// and both key components, unambiguously delimited.
func (k Key) hash() string {
	h := sha256.New()
	fmt.Fprintf(h, "v%d|seed=%d|%s", FormatVersion, k.Seed, k.Cell)
	return hex.EncodeToString(h.Sum(nil))
}

// record is the on-disk document. The embedded key lets reads verify that
// the record under a hash actually answers the requested key (guarding
// against tampered or misplaced files), and keeps records self-describing
// for humans poking at the tree.
type record struct {
	Version int                 `json:"version"`
	Key     Key                 `json:"key"`
	Result  workloads.RunResult `json:"result"`
}

// Metrics are the store's monotone counters. All counters are totals since
// Open; Lookups = MemHits + DiskHits + Misses.
type Metrics struct {
	// MemHits answered from the LRU; DiskHits from a valid record of the
	// durable backend (the JSON field name predates the pluggable backend —
	// for a remote-backed store these are remote hits).
	MemHits  uint64 `json:"mem_hits"`
	DiskHits uint64 `json:"disk_hits"`
	// Misses found nothing usable (first-time keys and corrupt records).
	Misses uint64 `json:"misses"`
	// Corrupt counts records that existed but were rejected (unreadable,
	// unparsable, version-skewed, or addressed by a different key). Each is
	// also a miss.
	Corrupt uint64 `json:"corrupt"`
	// Computes counts executions of a GetOrCompute compute function — the
	// simulations that actually ran. Shared counts callers that waited on
	// another goroutine's in-flight compute instead of starting their own.
	Computes uint64 `json:"computes"`
	Shared   uint64 `json:"shared"`
	// Writes counts records durably persisted (atomic renames); WriteErrors
	// counts records that computed fine but failed to persist (disk full,
	// permissions) — the result is still served and cached in memory, so a
	// campaign survives a sick disk, but Writes < Computes flags that the
	// store is not actually accumulating.
	Writes      uint64 `json:"writes"`
	WriteErrors uint64 `json:"write_errors"`
}

// Hits returns all lookups answered without computing.
func (m Metrics) Hits() uint64 { return m.MemHits + m.DiskHits }

// Options tunes a store.
type Options struct {
	// MemEntries caps the in-memory LRU front (0 = DefaultMemEntries,
	// negative = disable the LRU entirely).
	MemEntries int
	// Registry receives the store's dhtm_resultstore_* metric families. Nil
	// gives the store a private registry, so independent stores (and tests
	// asserting exact counts) never share counters; processes that expose one
	// telemetry plane pass obs.Default.
	Registry *obs.Registry
}

// DefaultMemEntries is the LRU capacity when Options.MemEntries is zero.
// A full eight-experiment campaign is a few hundred cells; 4096 keeps many
// campaigns resident while bounding memory to a few MB of snapshots.
const DefaultMemEntries = 4096

// Store is safe for concurrent use by any number of goroutines.
type Store struct {
	backend Backend // nil for memory-only stores

	mu     sync.Mutex
	lru    *lruCache
	flight map[string]*call

	// Counters live in an obs registry (private unless Options.Registry was
	// set); Metrics() and the JSON store endpoint read the same handles the
	// hot path increments, so there is exactly one set of numbers. The
	// backend-facing series (hits, misses, read/write latency) carry a
	// tier label naming the backend — "disk" or "remote" — so a process
	// fronting a remote store is distinguishable on /metrics.
	memHits      *obs.Counter
	backendHits  *obs.Counter
	misses       *obs.Counter
	corrupt      *obs.Counter
	computes     *obs.Counter
	shared       *obs.Counter
	writes       *obs.Counter
	writeErrs    *obs.Counter
	readSeconds  *obs.Histogram
	writeSeconds *obs.Histogram
}

// call is one in-flight computation; waiters block on done and then read
// res/err exactly once each.
type call struct {
	done chan struct{}
	res  workloads.RunResult
	err  error
}

// Open returns a store rooted at dir, creating the version directory
// eagerly so permission problems surface at startup, not mid-campaign. An
// empty dir opens a memory-only store.
func Open(dir string, opts Options) (*Store, error) {
	if dir == "" {
		return OpenWith(nil, opts)
	}
	b, err := NewDirBackend(dir)
	if err != nil {
		return nil, err
	}
	return OpenWith(b, opts)
}

// OpenWith returns a store layered over an explicit durable backend — a
// DirBackend, an HTTPBackend fronting a fleet coordinator, or nil for a
// memory-only store. The LRU front, the singleflight table and the metrics
// behave identically for every backend.
func OpenWith(backend Backend, opts Options) (*Store, error) {
	s := &Store{backend: backend, flight: make(map[string]*call)}
	reg := opts.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	// The durable-tier label: "disk" / "remote" from the backend, "mem" for
	// memory-only stores (every miss of those stops at the LRU).
	tier := "mem"
	if backend != nil {
		tier = backend.Tier()
	}
	s.memHits = reg.Counter("dhtm_resultstore_hits_total",
		"Result-store lookups answered without computing, by cache tier.", obs.L("tier", "mem"))
	backendTier := tier
	if backend == nil {
		// Keep the historical "disk" series alive for memory-only stores so
		// Metrics() and dashboards read zeros rather than a missing family.
		backendTier = "disk"
	}
	s.backendHits = reg.Counter("dhtm_resultstore_hits_total",
		"Result-store lookups answered without computing, by cache tier.", obs.L("tier", backendTier))
	s.misses = reg.Counter("dhtm_resultstore_misses_total",
		"Result-store lookups that found nothing usable, by the deepest tier consulted.", obs.L("tier", tier))
	s.corrupt = reg.Counter("dhtm_resultstore_corrupt_total",
		"Backend records rejected as unreadable, unparsable, version-skewed or key-mismatched (each is also a miss).")
	s.computes = reg.Counter("dhtm_resultstore_computes_total",
		"GetOrCompute compute functions executed — simulations that actually ran.")
	s.shared = reg.Counter("dhtm_resultstore_shared_total",
		"Callers that waited on another goroutine's in-flight compute.")
	s.writes = reg.Counter("dhtm_resultstore_writes_total",
		"Result records durably persisted.")
	s.writeErrs = reg.Counter("dhtm_resultstore_write_errors_total",
		"Result records that computed fine but failed to persist.")
	if backend != nil {
		s.readSeconds = reg.Histogram("dhtm_resultstore_read_seconds",
			"Latency of reading and validating one backend result record, by tier.", obs.IOBuckets, obs.L("tier", tier))
		s.writeSeconds = reg.Histogram("dhtm_resultstore_write_seconds",
			"Latency of persisting one result record, by tier.", obs.IOBuckets, obs.L("tier", tier))
	}
	switch {
	case opts.MemEntries == 0:
		s.lru = newLRU(DefaultMemEntries)
	case opts.MemEntries > 0:
		s.lru = newLRU(opts.MemEntries)
	}
	return s, nil
}

// Dir returns the durable backend's location — the root directory of a
// directory-backed store, the coordinator URL of a remote-backed one, "" for
// memory-only stores.
func (s *Store) Dir() string {
	if s.backend == nil {
		return ""
	}
	return s.backend.Location()
}

// Metrics returns a snapshot of the counters. The values are read from the
// same registry series the hot path increments.
func (s *Store) Metrics() Metrics {
	return Metrics{
		MemHits:     s.memHits.Value(),
		DiskHits:    s.backendHits.Value(),
		Misses:      s.misses.Value(),
		Corrupt:     s.corrupt.Value(),
		Computes:    s.computes.Value(),
		Shared:      s.shared.Value(),
		Writes:      s.writes.Value(),
		WriteErrors: s.writeErrs.Value(),
	}
}

// Get returns the stored result for k, reporting whether one was found. A
// corrupt or mismatched record is a miss. The returned result shares no
// mutable state with the store's copy.
func (s *Store) Get(k Key) (workloads.RunResult, bool) {
	h := k.hash()
	if res, ok := s.memGet(h); ok {
		s.memHits.Add(1)
		return res, true
	}
	if res, ok := s.backendGet(k); ok {
		s.backendHits.Add(1)
		s.memPut(h, res)
		return detach(res), true
	}
	s.misses.Add(1)
	return workloads.RunResult{}, false
}

// Put persists the result for k: into the LRU immediately, and — when the
// store has a durable backend — as a backend record.
func (s *Store) Put(k Key, res workloads.RunResult) error {
	res = detach(res)
	h := k.hash()
	s.memPut(h, res)
	if s.backend == nil {
		return nil
	}
	return s.backendPut(k, res)
}

// GetOrCompute returns the result for k, computing and persisting it on a
// miss. The returned bool reports whether this caller's compute was avoided
// — a memory or disk hit, or an in-flight compute shared with a concurrent
// caller; only the caller that actually ran compute gets false. Concurrent
// calls for the same key share a single compute: the first caller runs it
// and every other caller blocks until it finishes, then receives the same
// outcome (errors included; errors are never cached, so a later retry
// recomputes).
func (s *Store) GetOrCompute(k Key, compute func() (workloads.RunResult, error)) (workloads.RunResult, bool, error) {
	h := k.hash()

	// Fast path: answered from memory without joining the flight table.
	if res, ok := s.memGet(h); ok {
		s.memHits.Add(1)
		return res, true, nil
	}

	s.mu.Lock()
	if c, inflight := s.flight[h]; inflight {
		s.mu.Unlock()
		s.shared.Add(1)
		<-c.done
		if c.err != nil {
			return workloads.RunResult{}, false, c.err
		}
		shared := detach(c.res)
		// The leader's phase trace and probe timeline describe its execution,
		// not this caller's.
		shared.Phases = nil
		shared.Timeline = nil
		return shared, true, nil
	}
	c := &call{done: make(chan struct{})}
	s.flight[h] = c
	s.mu.Unlock()

	res, hit, err := s.fill(h, k, compute)
	c.res, c.err = res, err

	s.mu.Lock()
	delete(s.flight, h)
	s.mu.Unlock()
	close(c.done)

	if err != nil {
		return workloads.RunResult{}, false, err
	}
	return detach(res), hit, nil
}

// fill resolves a flight-leader's lookup: re-check memory (a Put may have
// raced ahead of the flight entry), then the backend, then compute and
// persist.
func (s *Store) fill(h string, k Key, compute func() (workloads.RunResult, error)) (workloads.RunResult, bool, error) {
	if res, ok := s.memGet(h); ok {
		s.memHits.Add(1)
		return res, true, nil
	}
	if res, ok := s.backendGet(k); ok {
		s.backendHits.Add(1)
		s.memPut(h, res)
		return res, true, nil
	}
	s.misses.Add(1)
	s.computes.Add(1)
	res, err := compute()
	if err != nil {
		return workloads.RunResult{}, false, err
	}
	res = detach(res)
	s.memPut(h, res)
	if s.backend != nil {
		// A persist failure (disk full, coordinator unreachable mid-campaign)
		// must not discard a simulation that succeeded: serve the result, keep
		// it in memory, and surface the sick tier through WriteErrors.
		wstart := time.Now()
		s.backendPut(k, res)
		res.Phases.Add(obs.PhaseStoreWrite, time.Since(wstart))
	}
	return res, false, nil
}

// backendGet reads through the durable backend, folding its outcome into the
// store's tiered metrics. A corrupt record counts as a miss, never an error.
func (s *Store) backendGet(k Key) (workloads.RunResult, bool) {
	if s.backend == nil {
		return workloads.RunResult{}, false
	}
	start := time.Now()
	res, out := s.backend.Get(k)
	switch out {
	case OutcomeHit:
		s.readSeconds.ObserveSince(start)
		return res, true
	case OutcomeCorrupt:
		// Rejected records are observed too — a tier serving garbage slowly is
		// two problems, and both should show. Clean misses are not record
		// reads; don't let cold-sweep lookups dominate the latency histogram.
		s.readSeconds.ObserveSince(start)
		s.corrupt.Add(1)
	}
	return workloads.RunResult{}, false
}

// backendPut persists one record through the backend, keeping the write
// counters and latency histogram in the store so every backend is accounted
// identically.
func (s *Store) backendPut(k Key, res workloads.RunResult) error {
	start := time.Now()
	if err := s.backend.Put(k, res); err != nil {
		s.writeErrs.Add(1)
		return err
	}
	s.writes.Add(1)
	s.writeSeconds.ObserveSince(start)
	return nil
}

// memGet returns a detached copy from the LRU.
func (s *Store) memGet(h string) (workloads.RunResult, bool) {
	if s.lru == nil {
		return workloads.RunResult{}, false
	}
	s.mu.Lock()
	res, ok := s.lru.get(h)
	s.mu.Unlock()
	if !ok {
		return workloads.RunResult{}, false
	}
	return detach(res), true
}

func (s *Store) memPut(h string, res workloads.RunResult) {
	if s.lru == nil {
		return
	}
	// Phase traces and probe timelines describe one concrete execution; a
	// cached copy answers later lookups that did no such work, so it must
	// not carry either.
	res.Phases = nil
	res.Timeline = nil
	s.mu.Lock()
	s.lru.put(h, res)
	s.mu.Unlock()
}

// detach deep-copies the result's mutable parts so store-resident values,
// concurrent readers and callers never alias each other's Stats.
func detach(res workloads.RunResult) workloads.RunResult {
	if res.Stats != nil {
		res.Stats = res.Stats.Snapshot()
	}
	return res
}

// lruCache is a plain capacity-bounded LRU (map + intrusive list). Callers
// hold Store.mu around every method.
type lruCache struct {
	cap int
	ll  *list.List
	m   map[string]*list.Element
}

type lruEntry struct {
	key string
	res workloads.RunResult
}

func newLRU(capacity int) *lruCache {
	return &lruCache{cap: capacity, ll: list.New(), m: make(map[string]*list.Element, capacity)}
}

func (c *lruCache) get(key string) (workloads.RunResult, bool) {
	el, ok := c.m[key]
	if !ok {
		return workloads.RunResult{}, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).res, true
}

func (c *lruCache) put(key string, res workloads.RunResult) {
	if el, ok := c.m[key]; ok {
		el.Value.(*lruEntry).res = res
		c.ll.MoveToFront(el)
		return
	}
	c.m[key] = c.ll.PushFront(&lruEntry{key: key, res: res})
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.m, last.Value.(*lruEntry).key)
	}
}
