// Package resultstore is a content-addressed, on-disk store of simulation
// results. A cell's outcome is a pure function of its semantic identity
// (runner.Cell.Key()) and its workload seed, so the pair addresses the result
// forever: computed once, a result can be served to any number of later
// sweeps, processes, or HTTP clients without re-simulating.
//
// The store has three layers:
//
//   - an in-memory LRU front that answers repeated lookups within a process
//     without touching disk;
//   - a sharded directory tree of versioned JSON records, written via
//     temp-file + atomic rename so a crashed writer can never leave a
//     half-record under a live name, and read corruption-tolerantly — an
//     unparsable, version-skewed or key-mismatched record is a miss, never an
//     error;
//   - an in-flight table (singleflight) so concurrent requests for the same
//     key compute it exactly once and share the result.
//
// A Store with an empty directory is memory-only: the LRU and singleflight
// still work, nothing persists.
package resultstore

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"dhtm/internal/obs"
	"dhtm/internal/workloads"
)

// FormatVersion identifies the on-disk record format. It participates in the
// content address (a version bump orphans old records rather than
// misreading them) and is checked again inside each record. Bump it whenever
// the JSON encoding of workloads.RunResult or stats.Stats changes shape —
// the golden test in internal/workloads pins the current encoding.
const FormatVersion = 1

// Key addresses one simulation result.
type Key struct {
	// Cell is the cell's semantic identity string (runner.Cell.Key()).
	Cell string `json:"cell"`
	// Seed is the workload generation seed the cell ran with.
	Seed int64 `json:"seed"`
}

// hash returns the content address: a hex SHA-256 over the format version
// and both key components, unambiguously delimited.
func (k Key) hash() string {
	h := sha256.New()
	fmt.Fprintf(h, "v%d|seed=%d|%s", FormatVersion, k.Seed, k.Cell)
	return hex.EncodeToString(h.Sum(nil))
}

// record is the on-disk document. The embedded key lets reads verify that
// the record under a hash actually answers the requested key (guarding
// against tampered or misplaced files), and keeps records self-describing
// for humans poking at the tree.
type record struct {
	Version int                 `json:"version"`
	Key     Key                 `json:"key"`
	Result  workloads.RunResult `json:"result"`
}

// Metrics are the store's monotone counters. All counters are totals since
// Open; Lookups = MemHits + DiskHits + Misses.
type Metrics struct {
	// MemHits answered from the LRU; DiskHits from a valid on-disk record.
	MemHits  uint64 `json:"mem_hits"`
	DiskHits uint64 `json:"disk_hits"`
	// Misses found nothing usable (first-time keys and corrupt records).
	Misses uint64 `json:"misses"`
	// Corrupt counts records that existed but were rejected (unreadable,
	// unparsable, version-skewed, or addressed by a different key). Each is
	// also a miss.
	Corrupt uint64 `json:"corrupt"`
	// Computes counts executions of a GetOrCompute compute function — the
	// simulations that actually ran. Shared counts callers that waited on
	// another goroutine's in-flight compute instead of starting their own.
	Computes uint64 `json:"computes"`
	Shared   uint64 `json:"shared"`
	// Writes counts records durably persisted (atomic renames); WriteErrors
	// counts records that computed fine but failed to persist (disk full,
	// permissions) — the result is still served and cached in memory, so a
	// campaign survives a sick disk, but Writes < Computes flags that the
	// store is not actually accumulating.
	Writes      uint64 `json:"writes"`
	WriteErrors uint64 `json:"write_errors"`
}

// Hits returns all lookups answered without computing.
func (m Metrics) Hits() uint64 { return m.MemHits + m.DiskHits }

// Options tunes a store.
type Options struct {
	// MemEntries caps the in-memory LRU front (0 = DefaultMemEntries,
	// negative = disable the LRU entirely).
	MemEntries int
	// Registry receives the store's dhtm_resultstore_* metric families. Nil
	// gives the store a private registry, so independent stores (and tests
	// asserting exact counts) never share counters; processes that expose one
	// telemetry plane pass obs.Default.
	Registry *obs.Registry
}

// DefaultMemEntries is the LRU capacity when Options.MemEntries is zero.
// A full eight-experiment campaign is a few hundred cells; 4096 keeps many
// campaigns resident while bounding memory to a few MB of snapshots.
const DefaultMemEntries = 4096

// Store is safe for concurrent use by any number of goroutines.
type Store struct {
	dir string

	mu     sync.Mutex
	lru    *lruCache
	flight map[string]*call

	// Counters live in an obs registry (private unless Options.Registry was
	// set); Metrics() and the JSON store endpoint read the same handles the
	// hot path increments, so there is exactly one set of numbers.
	memHits      *obs.Counter
	diskHits     *obs.Counter
	misses       *obs.Counter
	corrupt      *obs.Counter
	computes     *obs.Counter
	shared       *obs.Counter
	writes       *obs.Counter
	writeErrs    *obs.Counter
	readSeconds  *obs.Histogram
	writeSeconds *obs.Histogram
}

// call is one in-flight computation; waiters block on done and then read
// res/err exactly once each.
type call struct {
	done chan struct{}
	res  workloads.RunResult
	err  error
}

// Open returns a store rooted at dir, creating the version directory
// eagerly so permission problems surface at startup, not mid-campaign. An
// empty dir opens a memory-only store.
func Open(dir string, opts Options) (*Store, error) {
	s := &Store{dir: dir, flight: make(map[string]*call)}
	reg := opts.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s.memHits = reg.Counter("dhtm_resultstore_hits_total",
		"Result-store lookups answered without computing, by cache tier.", obs.L("tier", "mem"))
	s.diskHits = reg.Counter("dhtm_resultstore_hits_total",
		"Result-store lookups answered without computing, by cache tier.", obs.L("tier", "disk"))
	s.misses = reg.Counter("dhtm_resultstore_misses_total",
		"Result-store lookups that found nothing usable.")
	s.corrupt = reg.Counter("dhtm_resultstore_corrupt_total",
		"On-disk records rejected as unreadable, unparsable, version-skewed or key-mismatched (each is also a miss).")
	s.computes = reg.Counter("dhtm_resultstore_computes_total",
		"GetOrCompute compute functions executed — simulations that actually ran.")
	s.shared = reg.Counter("dhtm_resultstore_shared_total",
		"Callers that waited on another goroutine's in-flight compute.")
	s.writes = reg.Counter("dhtm_resultstore_writes_total",
		"Result records durably persisted (atomic renames).")
	s.writeErrs = reg.Counter("dhtm_resultstore_write_errors_total",
		"Result records that computed fine but failed to persist.")
	s.readSeconds = reg.Histogram("dhtm_resultstore_read_seconds",
		"Latency of reading and validating one on-disk result record.", obs.IOBuckets)
	s.writeSeconds = reg.Histogram("dhtm_resultstore_write_seconds",
		"Latency of persisting one result record (encode, write, rename).", obs.IOBuckets)
	switch {
	case opts.MemEntries == 0:
		s.lru = newLRU(DefaultMemEntries)
	case opts.MemEntries > 0:
		s.lru = newLRU(opts.MemEntries)
	}
	if dir != "" {
		if err := os.MkdirAll(filepath.Join(dir, s.versionDir()), 0o755); err != nil {
			return nil, fmt.Errorf("resultstore: opening %s: %w", dir, err)
		}
	}
	return s, nil
}

// Dir returns the store's root directory ("" for memory-only stores).
func (s *Store) Dir() string { return s.dir }

func (s *Store) versionDir() string { return fmt.Sprintf("v%d", FormatVersion) }

// path shards records two hex digits deep, keeping directories small even
// for millions of records.
func (s *Store) path(hash string) string {
	return filepath.Join(s.dir, s.versionDir(), hash[:2], hash+".json")
}

// Metrics returns a snapshot of the counters. The values are read from the
// same registry series the hot path increments.
func (s *Store) Metrics() Metrics {
	return Metrics{
		MemHits:     s.memHits.Value(),
		DiskHits:    s.diskHits.Value(),
		Misses:      s.misses.Value(),
		Corrupt:     s.corrupt.Value(),
		Computes:    s.computes.Value(),
		Shared:      s.shared.Value(),
		Writes:      s.writes.Value(),
		WriteErrors: s.writeErrs.Value(),
	}
}

// Get returns the stored result for k, reporting whether one was found. A
// corrupt or mismatched record is a miss. The returned result shares no
// mutable state with the store's copy.
func (s *Store) Get(k Key) (workloads.RunResult, bool) {
	h := k.hash()
	if res, ok := s.memGet(h); ok {
		s.memHits.Add(1)
		return res, true
	}
	if res, ok := s.diskGet(h, k); ok {
		s.diskHits.Add(1)
		s.memPut(h, res)
		return detach(res), true
	}
	s.misses.Add(1)
	return workloads.RunResult{}, false
}

// Put persists the result for k: into the LRU immediately, and — when the
// store is disk-backed — as an atomically renamed record.
func (s *Store) Put(k Key, res workloads.RunResult) error {
	res = detach(res)
	h := k.hash()
	s.memPut(h, res)
	if s.dir == "" {
		return nil
	}
	return s.diskPut(h, k, res)
}

// GetOrCompute returns the result for k, computing and persisting it on a
// miss. The returned bool reports whether this caller's compute was avoided
// — a memory or disk hit, or an in-flight compute shared with a concurrent
// caller; only the caller that actually ran compute gets false. Concurrent
// calls for the same key share a single compute: the first caller runs it
// and every other caller blocks until it finishes, then receives the same
// outcome (errors included; errors are never cached, so a later retry
// recomputes).
func (s *Store) GetOrCompute(k Key, compute func() (workloads.RunResult, error)) (workloads.RunResult, bool, error) {
	h := k.hash()

	// Fast path: answered from memory without joining the flight table.
	if res, ok := s.memGet(h); ok {
		s.memHits.Add(1)
		return res, true, nil
	}

	s.mu.Lock()
	if c, inflight := s.flight[h]; inflight {
		s.mu.Unlock()
		s.shared.Add(1)
		<-c.done
		if c.err != nil {
			return workloads.RunResult{}, false, c.err
		}
		shared := detach(c.res)
		// The leader's phase trace and probe timeline describe its execution,
		// not this caller's.
		shared.Phases = nil
		shared.Timeline = nil
		return shared, true, nil
	}
	c := &call{done: make(chan struct{})}
	s.flight[h] = c
	s.mu.Unlock()

	res, hit, err := s.fill(h, k, compute)
	c.res, c.err = res, err

	s.mu.Lock()
	delete(s.flight, h)
	s.mu.Unlock()
	close(c.done)

	if err != nil {
		return workloads.RunResult{}, false, err
	}
	return detach(res), hit, nil
}

// fill resolves a flight-leader's lookup: re-check memory (a Put may have
// raced ahead of the flight entry), then disk, then compute and persist.
func (s *Store) fill(h string, k Key, compute func() (workloads.RunResult, error)) (workloads.RunResult, bool, error) {
	if res, ok := s.memGet(h); ok {
		s.memHits.Add(1)
		return res, true, nil
	}
	if res, ok := s.diskGet(h, k); ok {
		s.diskHits.Add(1)
		s.memPut(h, res)
		return res, true, nil
	}
	s.misses.Add(1)
	s.computes.Add(1)
	res, err := compute()
	if err != nil {
		return workloads.RunResult{}, false, err
	}
	res = detach(res)
	s.memPut(h, res)
	if s.dir != "" {
		// A persist failure (disk full, permissions yanked mid-campaign) must
		// not discard a simulation that succeeded: serve the result, keep it
		// in memory, and surface the sick disk through WriteErrors.
		wstart := time.Now()
		if err := s.diskPut(h, k, res); err != nil {
			s.writeErrs.Add(1)
		}
		res.Phases.Add(obs.PhaseStoreWrite, time.Since(wstart))
	}
	return res, false, nil
}

// diskGet reads and validates the record for hash h. Every failure mode —
// missing file, unreadable file, bad JSON, version skew, key mismatch — is
// a miss; only a missing file is a silent one.
func (s *Store) diskGet(h string, k Key) (workloads.RunResult, bool) {
	if s.dir == "" {
		return workloads.RunResult{}, false
	}
	start := time.Now()
	raw, err := os.ReadFile(s.path(h))
	if err != nil {
		if !os.IsNotExist(err) {
			s.corrupt.Add(1)
		}
		// A missing file is not a record read; don't let cold-sweep stat
		// failures dominate the read-latency histogram.
		return workloads.RunResult{}, false
	}
	defer s.readSeconds.ObserveSince(start)
	var rec record
	if err := json.Unmarshal(raw, &rec); err != nil {
		s.corrupt.Add(1)
		return workloads.RunResult{}, false
	}
	if rec.Version != FormatVersion || rec.Key != k {
		s.corrupt.Add(1)
		return workloads.RunResult{}, false
	}
	return rec.Result, true
}

// diskPut writes the record under a temporary name in its final directory
// and renames it into place, so readers only ever observe complete records.
func (s *Store) diskPut(h string, k Key, res workloads.RunResult) error {
	start := time.Now()
	path := s.path(h)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	raw, err := json.MarshalIndent(record{Version: FormatVersion, Key: k, Result: res}, "", "  ")
	if err != nil {
		return fmt.Errorf("resultstore: encoding record: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	if _, err := tmp.Write(append(raw, '\n')); err == nil {
		err = tmp.Close()
	} else {
		tmp.Close()
	}
	if err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("resultstore: writing record: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("resultstore: %w", err)
	}
	s.writes.Add(1)
	s.writeSeconds.ObserveSince(start)
	return nil
}

// memGet returns a detached copy from the LRU.
func (s *Store) memGet(h string) (workloads.RunResult, bool) {
	if s.lru == nil {
		return workloads.RunResult{}, false
	}
	s.mu.Lock()
	res, ok := s.lru.get(h)
	s.mu.Unlock()
	if !ok {
		return workloads.RunResult{}, false
	}
	return detach(res), true
}

func (s *Store) memPut(h string, res workloads.RunResult) {
	if s.lru == nil {
		return
	}
	// Phase traces and probe timelines describe one concrete execution; a
	// cached copy answers later lookups that did no such work, so it must
	// not carry either.
	res.Phases = nil
	res.Timeline = nil
	s.mu.Lock()
	s.lru.put(h, res)
	s.mu.Unlock()
}

// detach deep-copies the result's mutable parts so store-resident values,
// concurrent readers and callers never alias each other's Stats.
func detach(res workloads.RunResult) workloads.RunResult {
	if res.Stats != nil {
		res.Stats = res.Stats.Snapshot()
	}
	return res
}

// lruCache is a plain capacity-bounded LRU (map + intrusive list). Callers
// hold Store.mu around every method.
type lruCache struct {
	cap int
	ll  *list.List
	m   map[string]*list.Element
}

type lruEntry struct {
	key string
	res workloads.RunResult
}

func newLRU(capacity int) *lruCache {
	return &lruCache{cap: capacity, ll: list.New(), m: make(map[string]*list.Element, capacity)}
}

func (c *lruCache) get(key string) (workloads.RunResult, bool) {
	el, ok := c.m[key]
	if !ok {
		return workloads.RunResult{}, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).res, true
}

func (c *lruCache) put(key string, res workloads.RunResult) {
	if el, ok := c.m[key]; ok {
		el.Value.(*lruEntry).res = res
		c.ll.MoveToFront(el)
		return
	}
	c.m[key] = c.ll.PushFront(&lruEntry{key: key, res: res})
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.m, last.Value.(*lruEntry).key)
	}
}
