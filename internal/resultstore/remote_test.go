package resultstore

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"dhtm/internal/obs"
	"dhtm/internal/workloads"
)

// remotePair stands up a coordinator-side store serving the record protocol
// and returns a worker-side store reading and writing through it.
func remotePair(t *testing.T, workerOpts Options) (coord, worker *Store) {
	t.Helper()
	coord = open(t, t.TempDir(), Options{})
	srv := httptest.NewServer(Handler(coord))
	t.Cleanup(srv.Close)
	worker, err := OpenWith(NewHTTPBackend(srv.URL, srv.Client()), workerOpts)
	if err != nil {
		t.Fatal(err)
	}
	return coord, worker
}

// TestRemoteRoundTrip drives a record through the full fleet path: worker
// Put -> HTTP -> coordinator disk -> HTTP -> a second cold worker's Get.
func TestRemoteRoundTrip(t *testing.T) {
	coord, w1 := remotePair(t, Options{})
	k := Key{Cell: "DHTM|hash|cores=8|tx=16", Seed: 42}
	want := result(100)
	if err := w1.Put(k, want); err != nil {
		t.Fatal(err)
	}

	// The coordinator's own store must now serve the record locally.
	if got, ok := coord.Get(k); !ok || !reflect.DeepEqual(got, want) {
		t.Fatalf("coordinator store: ok=%v got=%+v", ok, got)
	}

	// A second worker with a cold LRU must hit through the remote tier.
	w2, err := OpenWith(NewHTTPBackend(w1.Dir(), nil), Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := w2.Get(k)
	if !ok {
		t.Fatalf("cold worker missed a fleet-persisted key")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n%+v\nvs\n%+v", got, want)
	}
	if w2.Metrics().DiskHits != 1 {
		t.Fatalf("metrics = %+v, want one backend hit", w2.Metrics())
	}
}

// TestRemoteTierMetricLabels checks the remote tier reports under
// tier="remote" on the hit/miss/latency families, as the fleet dashboard
// expects.
func TestRemoteTierMetricLabels(t *testing.T) {
	reg := obs.NewRegistry()
	_, w := remotePair(t, Options{Registry: reg})
	k := Key{Cell: "cell", Seed: 1}

	if _, ok := w.Get(k); ok { // miss
		t.Fatal("unexpected hit on empty store")
	}
	if err := w.Put(k, result(7)); err != nil {
		t.Fatal(err)
	}
	w2, err := OpenWith(NewHTTPBackend(w.Dir(), nil), Options{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := w2.Get(k); !ok { // remote hit
		t.Fatal("expected remote hit")
	}

	var buf strings.Builder
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`dhtm_resultstore_hits_total{tier="remote"} 1`,
		`dhtm_resultstore_misses_total{tier="remote"} 1`,
		`dhtm_resultstore_read_seconds_count{tier="remote"}`,
		`dhtm_resultstore_write_seconds_count{tier="remote"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n%s", want, text)
		}
	}
}

// TestRemoteCorruptionReadsAsMiss is the fleet half of the store's central
// robustness contract: every way a remote record can be bad — garbage body,
// version skew, key mismatch, server error, dead coordinator — reads as a
// miss, never an error, and GetOrCompute recomputes over it.
func TestRemoteCorruptionReadsAsMiss(t *testing.T) {
	k := Key{Cell: "cell", Seed: 9}
	skewed, _ := json.Marshal(record{Version: FormatVersion + 1, Key: k, Result: result(1)})
	mismatched, _ := json.Marshal(record{Version: FormatVersion, Key: Key{Cell: "other", Seed: 9}, Result: result(1)})

	cases := []struct {
		name    string
		handler http.HandlerFunc
	}{
		{"garbage body", func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprint(w, "{ not json")
		}},
		{"version skew", func(w http.ResponseWriter, r *http.Request) {
			w.Write(skewed)
		}},
		{"key mismatch", func(w http.ResponseWriter, r *http.Request) {
			w.Write(mismatched)
		}},
		{"server error", func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, "boom", http.StatusInternalServerError)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv := httptest.NewServer(tc.handler)
			defer srv.Close()
			s, err := OpenWith(NewHTTPBackend(srv.URL, srv.Client()), Options{})
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := s.Get(k); ok {
				t.Fatalf("%s read as a hit", tc.name)
			}
			res, cached, err := s.GetOrCompute(k, func() (workloads.RunResult, error) {
				return result(33), nil
			})
			if err != nil {
				t.Fatalf("GetOrCompute surfaced an error over a bad remote record: %v", err)
			}
			if cached {
				t.Fatalf("%s served as cached", tc.name)
			}
			if res.Committed != 33 {
				t.Fatalf("recompute returned %+v", res)
			}
			if m := s.Metrics(); m.Corrupt == 0 {
				t.Fatalf("corruption not counted: %+v", m)
			}
		})
	}

	t.Run("dead coordinator", func(t *testing.T) {
		srv := httptest.NewServer(http.NotFoundHandler())
		url := srv.URL
		srv.Close()
		s, err := OpenWith(NewHTTPBackend(url, nil), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := s.Get(k); ok {
			t.Fatal("hit against a dead coordinator")
		}
		res, _, err := s.GetOrCompute(k, func() (workloads.RunResult, error) {
			return result(44), nil
		})
		if err != nil {
			t.Fatalf("GetOrCompute surfaced an error with the coordinator down: %v", err)
		}
		if res.Committed != 44 {
			t.Fatalf("recompute returned %+v", res)
		}
	})
}

// TestHandlerRejectsBadRecords: the coordinator validates incoming PUTs, so
// a version-skewed or misaddressed worker cannot plant records.
func TestHandlerRejectsBadRecords(t *testing.T) {
	coord := open(t, t.TempDir(), Options{})
	srv := httptest.NewServer(Handler(coord))
	defer srv.Close()

	k := Key{Cell: "cell", Seed: 5}
	put := func(url string, body []byte) int {
		req, err := http.NewRequest(http.MethodPut, url, strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := srv.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	good, _ := encodeRecord(k, result(1))
	skewed, _ := json.Marshal(record{Version: FormatVersion + 1, Key: k, Result: result(1)})

	addr := srv.URL + "?cell=cell&seed=5"
	if code := put(addr, []byte("garbage")); code != http.StatusBadRequest {
		t.Fatalf("garbage PUT -> %d, want 400", code)
	}
	if code := put(addr, skewed); code != http.StatusBadRequest {
		t.Fatalf("version-skewed PUT -> %d, want 400", code)
	}
	if code := put(srv.URL+"?cell=other&seed=5", good); code != http.StatusBadRequest {
		t.Fatalf("key-mismatched PUT -> %d, want 400", code)
	}
	if code := put(srv.URL+"?seed=5", good); code != http.StatusBadRequest {
		t.Fatalf("missing-cell PUT -> %d, want 400", code)
	}
	if _, ok := coord.Get(k); ok {
		t.Fatal("a rejected PUT landed in the store")
	}
	if code := put(addr, good); code != http.StatusNoContent {
		t.Fatalf("valid PUT -> %d, want 204", code)
	}
	if _, ok := coord.Get(k); !ok {
		t.Fatal("valid PUT did not land in the store")
	}
}
