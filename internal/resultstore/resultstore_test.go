package resultstore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"dhtm/internal/stats"
	"dhtm/internal/workloads"
)

// result builds a distinctive RunResult for key identification in tests.
func result(commits uint64) workloads.RunResult {
	st := stats.New(1)
	st.Core(0).Commits = commits
	st.Core(0).FinalCycle = commits * 10
	st.LogBytes = commits * 64
	return workloads.RunResult{
		Design: "DHTM", Workload: "hash", Stats: st,
		Committed: commits, Cycles: commits * 10,
	}
}

func open(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestPutGetRoundTrip checks disk persistence across store instances — the
// "resumable campaign" property — and that Get is a deep, detached copy.
func TestPutGetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	k := Key{Cell: "DHTM|hash|cores=8|tx=16", Seed: 42}

	s1 := open(t, dir, Options{})
	want := result(100)
	if err := s1.Put(k, want); err != nil {
		t.Fatal(err)
	}

	// A fresh store over the same directory (cold LRU) must serve the record.
	s2 := open(t, dir, Options{})
	got, ok := s2.Get(k)
	if !ok {
		t.Fatalf("fresh store missed a persisted key")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n%+v\nvs\n%+v", got, want)
	}
	if s2.Metrics().DiskHits != 1 {
		t.Fatalf("metrics = %+v, want one disk hit", s2.Metrics())
	}

	// Mutating the returned result must not poison the cache.
	got.Stats.Core(0).Commits = 999
	again, _ := s2.Get(k)
	if again.Stats.Core(0).Commits != 100 {
		t.Fatalf("caller mutation leaked into the cached result")
	}
	if m := s2.Metrics(); m.MemHits != 1 {
		t.Fatalf("second lookup should hit the LRU: %+v", m)
	}
}

// TestMissOnUnknownKey checks the trivial miss path and its accounting.
func TestMissOnUnknownKey(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	if _, ok := s.Get(Key{Cell: "nope", Seed: 1}); ok {
		t.Fatalf("hit on an empty store")
	}
	if m := s.Metrics(); m.Misses != 1 || m.Corrupt != 0 {
		t.Fatalf("metrics = %+v, want one clean miss", m)
	}
}

// TestCorruptRecordIsAMiss proves every corruption mode is treated as a
// miss — never an error, never a crash — and recomputed over.
func TestCorruptRecordIsAMiss(t *testing.T) {
	k := Key{Cell: "DHTM|hash|cores=8|tx=16", Seed: 42}
	h := k.hash()

	corruptions := map[string]func(t *testing.T, path string){
		"truncated": func(t *testing.T, path string) {
			raw, _ := os.ReadFile(path)
			if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"garbage": func(t *testing.T, path string) {
			if err := os.WriteFile(path, []byte("\x00\xffnot json"), 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"empty": func(t *testing.T, path string) {
			if err := os.WriteFile(path, nil, 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"version-skew": func(t *testing.T, path string) {
			if err := os.WriteFile(path, []byte(fmt.Sprintf(
				`{"version":%d,"key":{"cell":%q,"seed":42},"result":{"design":"DHTM"}}`,
				FormatVersion+1, k.Cell)), 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"key-mismatch": func(t *testing.T, path string) {
			if err := os.WriteFile(path, []byte(fmt.Sprintf(
				`{"version":%d,"key":{"cell":"other","seed":7},"result":{"design":"DHTM"}}`,
				FormatVersion)), 0o644); err != nil {
				t.Fatal(err)
			}
		},
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			s := open(t, dir, Options{MemEntries: -1}) // no LRU: force disk reads
			if err := s.Put(k, result(5)); err != nil {
				t.Fatal(err)
			}
			corrupt(t, filepath.Join(dir, "v1", h[:2], h+".json"))

			if _, ok := s.Get(k); ok {
				t.Fatalf("corrupt record served as a hit")
			}
			if m := s.Metrics(); m.Corrupt != 1 || m.Misses != 1 {
				t.Fatalf("metrics = %+v, want corrupt=1 misses=1", m)
			}

			// GetOrCompute must recompute and heal the record in place.
			var calls atomic.Int64
			res, hit, err := s.GetOrCompute(k, func() (workloads.RunResult, error) {
				calls.Add(1)
				return result(7), nil
			})
			if err != nil || hit || calls.Load() != 1 {
				t.Fatalf("recompute: hit=%v err=%v calls=%d", hit, err, calls.Load())
			}
			if res.Committed != 7 {
				t.Fatalf("recompute returned %d commits, want 7", res.Committed)
			}
			if got, ok := s.Get(k); !ok || got.Committed != 7 {
				t.Fatalf("healed record not served: ok=%v %+v", ok, got)
			}
		})
	}
}

// TestGetOrComputeSingleflight proves n concurrent requests for one key run
// the compute exactly once and all observe its result.
func TestGetOrComputeSingleflight(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	k := Key{Cell: "DHTM|queue|cores=4|tx=8", Seed: 7}

	const n = 32
	var calls atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]workloads.RunResult, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], _, errs[i] = s.GetOrCompute(k, func() (workloads.RunResult, error) {
				close(started) // only one compute may run: a second close panics
				calls.Add(1)
				<-release // hold the flight open until every goroutine has piled in
				return result(11), nil
			})
		}(i)
	}
	<-started
	close(release)
	wg.Wait()

	if calls.Load() != 1 {
		t.Fatalf("compute ran %d times, want exactly once", calls.Load())
	}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if results[i].Committed != 11 {
			t.Fatalf("caller %d got %d commits, want 11", i, results[i].Committed)
		}
	}
	if m := s.Metrics(); m.Computes != 1 || m.Writes != 1 {
		t.Fatalf("metrics = %+v, want computes=1 writes=1", m)
	}
}

// TestComputeErrorsAreNotCached checks that a failed compute propagates to
// all waiters but leaves nothing behind, so a retry runs again.
func TestComputeErrorsAreNotCached(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	k := Key{Cell: "DHTM|hash|cores=2|tx=4", Seed: 3}
	boom := errors.New("boom")

	if _, _, err := s.GetOrCompute(k, func() (workloads.RunResult, error) {
		return workloads.RunResult{}, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
	if _, ok := s.Get(k); ok {
		t.Fatalf("failed compute left a cached result")
	}
	res, hit, err := s.GetOrCompute(k, func() (workloads.RunResult, error) {
		return result(4), nil
	})
	if err != nil || hit || res.Committed != 4 {
		t.Fatalf("retry after error: hit=%v err=%v res=%+v", hit, err, res)
	}
}

// TestMemoryOnlyStore checks that an empty dir disables persistence but
// keeps the LRU and singleflight behaviour.
func TestMemoryOnlyStore(t *testing.T) {
	s := open(t, "", Options{})
	k := Key{Cell: "c", Seed: 1}
	if err := s.Put(k, result(9)); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get(k); !ok || got.Committed != 9 {
		t.Fatalf("memory-only store missed its own Put")
	}
	if m := s.Metrics(); m.Writes != 0 {
		t.Fatalf("memory-only store claims disk writes: %+v", m)
	}
}

// TestLRUEviction checks the LRU front is capacity-bounded and recency-
// ordered; on a disk-backed store evicted entries still hit via disk.
func TestLRUEviction(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{MemEntries: 2})
	keys := []Key{{Cell: "a", Seed: 1}, {Cell: "b", Seed: 1}, {Cell: "c", Seed: 1}}
	for i, k := range keys {
		if err := s.Put(k, result(uint64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	// "a" was evicted by "c"; it must come back via disk, not memory.
	if _, ok := s.Get(keys[0]); !ok {
		t.Fatalf("evicted key lost entirely")
	}
	m := s.Metrics()
	if m.DiskHits != 1 || m.MemHits != 0 {
		t.Fatalf("metrics = %+v, want the evicted key answered from disk", m)
	}

	// Memory-only with the same capacity: eviction is a hard miss.
	mem := open(t, "", Options{MemEntries: 2})
	for i, k := range keys {
		if err := mem.Put(k, result(uint64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := mem.Get(keys[0]); ok {
		t.Fatalf("memory-only store resurrected an evicted key")
	}
	if _, ok := mem.Get(keys[1]); !ok {
		t.Fatalf("recent key evicted out of order")
	}
}

// TestDistinctKeysDoNotCollide checks seeds and cell keys both separate
// addresses.
func TestDistinctKeysDoNotCollide(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	a := Key{Cell: "DHTM|hash|cores=8|tx=16", Seed: 1}
	b := Key{Cell: "DHTM|hash|cores=8|tx=16", Seed: 2}
	c := Key{Cell: "ATOM|hash|cores=8|tx=16", Seed: 1}
	for i, k := range []Key{a, b, c} {
		if err := s.Put(k, result(uint64(100+i))); err != nil {
			t.Fatal(err)
		}
	}
	for i, k := range []Key{a, b, c} {
		got, ok := s.Get(k)
		if !ok || got.Committed != uint64(100+i) {
			t.Fatalf("key %d: ok=%v commits=%d, want %d", i, ok, got.Committed, 100+i)
		}
	}
}

// TestPersistFailureStillServesResult checks that a compute whose record
// cannot reach disk is not discarded: the caller gets the result, the LRU
// serves it afterwards, and WriteErrors records the sick disk.
func TestPersistFailureStillServesResult(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	k := Key{Cell: "DHTM|hash|cores=8|tx=16", Seed: 42}
	// Occupy the shard directory's name with a file so MkdirAll fails.
	shard := filepath.Join(dir, "v1", k.hash()[:2])
	if err := os.WriteFile(shard, []byte("in the way"), 0o644); err != nil {
		t.Fatal(err)
	}

	res, hit, err := s.GetOrCompute(k, func() (workloads.RunResult, error) {
		return result(13), nil
	})
	if err != nil || hit || res.Committed != 13 {
		t.Fatalf("persist failure discarded the computed result: hit=%v err=%v res=%+v", hit, err, res)
	}
	if m := s.Metrics(); m.WriteErrors != 1 || m.Writes != 0 {
		t.Fatalf("metrics = %+v, want write_errors=1 writes=0", m)
	}
	// The in-memory copy still answers.
	if got, ok := s.Get(k); !ok || got.Committed != 13 {
		t.Fatalf("unpersisted result lost from memory: ok=%v %+v", ok, got)
	}
}
