package probe

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestSampleSchedule(t *testing.T) {
	r := NewRecorder(Config{Interval: 100, MaxSamples: 16})
	var level float64
	r.Gauge("q/depth", "entries", "test", func(uint64) float64 { return level })
	r.Start()
	if got := r.NextDue(); got != 100 {
		t.Fatalf("NextDue after Start = %d, want 100", got)
	}
	level = 3
	if next := r.Sample(100); next != 200 {
		t.Fatalf("Sample(100) scheduled next %d, want 200", next)
	}
	level = 7
	if next := r.Sample(200); next != 300 {
		t.Fatalf("Sample(200) scheduled next %d, want 300", next)
	}
	r.Finish(250)
	tl := r.Timeline()
	wantCycles := []uint64{0, 100, 200, 250}
	if len(tl.Cycles) != len(wantCycles) {
		t.Fatalf("cycles = %v, want %v", tl.Cycles, wantCycles)
	}
	for i, c := range wantCycles {
		if tl.Cycles[i] != c {
			t.Fatalf("cycles = %v, want %v", tl.Cycles, wantCycles)
		}
	}
	wantVals := []float64{0, 3, 7, 7}
	for i, v := range wantVals {
		if tl.Signals[0].Values[i] != v {
			t.Fatalf("values = %v, want %v", tl.Signals[0].Values, wantVals)
		}
	}
}

func TestFinishAtStampIsNoop(t *testing.T) {
	r := NewRecorder(Config{Interval: 50, MaxSamples: 8})
	r.Gauge("g", "u", "test", func(uint64) float64 { return 1 })
	r.Start()
	r.Sample(50)
	r.Finish(50)
	if r.Rows() != 2 {
		t.Fatalf("rows = %d, want 2 (Finish at the last stamp must not add a row)", r.Rows())
	}
}

func TestDecimation(t *testing.T) {
	r := NewRecorder(Config{Interval: 10, MaxSamples: 4})
	r.Counter("c", "ops", "test", func(cycle uint64) float64 { return float64(cycle) })
	r.Start()
	next := r.NextDue()
	for next <= 100 {
		next = r.Sample(next)
	}
	if r.Rows() > 4 {
		t.Fatalf("rows = %d, want <= cap 4", r.Rows())
	}
	tl := r.Timeline()
	if tl.Stride <= tl.Interval {
		t.Fatalf("stride %d did not grow beyond interval %d after decimation", tl.Stride, tl.Interval)
	}
	if tl.Cycles[0] != 0 {
		t.Fatalf("decimation dropped the cycle-0 row: %v", tl.Cycles)
	}
	for i := 1; i < len(tl.Cycles); i++ {
		if tl.Cycles[i] <= tl.Cycles[i-1] {
			t.Fatalf("cycle stamps not increasing after decimation: %v", tl.Cycles)
		}
	}
	// Counter columns stay aligned with their stamps through decimation.
	for i, c := range tl.Cycles {
		if tl.Signals[0].Values[i] != float64(c) {
			t.Fatalf("row %d: value %v does not match stamp %d", i, tl.Signals[0].Values[i], c)
		}
	}
}

func TestSampleDoesNotAllocate(t *testing.T) {
	r := NewRecorder(Config{Interval: 8, MaxSamples: 64})
	for i := 0; i < 8; i++ {
		r.Gauge("g", "u", "test", func(cycle uint64) float64 { return float64(cycle) })
	}
	r.Start()
	next := r.NextDue()
	allocs := testing.AllocsPerRun(1000, func() {
		next = r.Sample(next)
	})
	if allocs != 0 {
		t.Fatalf("Sample allocated %v allocs/op, want 0 (includes in-place decimation)", allocs)
	}
}

func TestChromeTrace(t *testing.T) {
	r := NewRecorder(Config{Interval: 100, MaxSamples: 16})
	r.SetMeta("DHTM/hash", "DHTM", "hash", 42)
	total := 0.0
	r.Counter("mem/log_bytes", "bytes", "internal/memdev", func(uint64) float64 { return total })
	r.Start()
	total = 64
	r.Sample(100)
	total = 96
	r.Sample(200)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, []*Timeline{r.Timeline(), nil}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   uint64         `json:"ts"`
			PID  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("got %d events, want 4 (1 metadata + 3 counter rows)", len(doc.TraceEvents))
	}
	meta := doc.TraceEvents[0]
	if meta.Ph != "M" || meta.Name != "process_name" || meta.Args["name"] != "DHTM/hash" {
		t.Fatalf("bad metadata event: %+v", meta)
	}
	// Counters export per-row deltas: 0, 64, 32.
	wantDeltas := []float64{0, 64, 32}
	wantTS := []uint64{0, 100, 200}
	for i, ev := range doc.TraceEvents[1:] {
		if ev.Ph != "C" || ev.Name != "mem/log_bytes" {
			t.Fatalf("event %d: %+v", i, ev)
		}
		if ev.TS != wantTS[i] || ev.Args["value"] != wantDeltas[i] {
			t.Fatalf("event %d: ts=%d value=%v, want ts=%d value=%v",
				i, ev.TS, ev.Args["value"], wantTS[i], wantDeltas[i])
		}
	}
}

func TestTimelineDeterminism(t *testing.T) {
	build := func() []byte {
		r := NewRecorder(Config{Interval: 10, MaxSamples: 8})
		r.SetMeta("c", "d", "w", 1)
		r.Gauge("g", "u", "test", func(cycle uint64) float64 { return float64(cycle % 7) })
		r.Start()
		next := r.NextDue()
		for next <= 200 {
			next = r.Sample(next)
		}
		r.Finish(205)
		var buf bytes.Buffer
		if err := WriteChromeTrace(&buf, []*Timeline{r.Timeline()}); err != nil {
			t.Fatal(err)
		}
		tj, err := json.Marshal(r.Timeline())
		if err != nil {
			t.Fatal(err)
		}
		return append(tj, buf.Bytes()...)
	}
	a, b := build(), build()
	if !bytes.Equal(a, b) {
		t.Fatal("two identical recordings exported different bytes")
	}
}

// BenchmarkProbeSample pins the recording hot path at 0 allocs/op: one row
// across a realistic signal count, including the amortized in-place
// decimation.
func BenchmarkProbeSample(b *testing.B) {
	r := NewRecorder(Config{Interval: 1, MaxSamples: 4096})
	for i := 0; i < 16; i++ {
		r.Gauge("g", "u", "bench", func(cycle uint64) float64 { return float64(cycle) })
	}
	r.Start()
	next := r.NextDue()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		next = r.Sample(next)
	}
}
