// Package probe is the cycle-domain observability plane of the simulated
// machine: a time-series sampler that the engine's discrete-event loop
// drives at a fixed simulated-cycle interval, recording per-core and
// per-system signals (WAL occupancy, persist-queue backlog, abort rates,
// bandwidth-class bytes, cache miss counters) into preallocated columns.
//
// Where internal/obs measures the *service* in wall-clock time, probe
// measures the *simulated hardware* in simulated cycles; together they make
// a cell inspectable both as a waveform (this package) and as aggregate
// counters (stats.Stats).
//
// The design constraints mirror internal/obs: the package imports nothing
// else in the repo (every instrumented layer imports probe, never the other
// way round), recording a sample row is 0 allocs/op once the recorder is
// built, and a machine without a recorder pays exactly one scalar compare
// per engine Advance — see engine.SetSampler.
//
// Sample rows are stamped at the *scheduled* cycle (multiples of the
// interval), not at the event-granular cycle the engine happened to reach,
// so stamps are monotonically nondecreasing, land on the same grid for
// every design, and are bit-identical across runs of the same seed. When a
// run outlives the preallocated capacity the recorder decimates in place —
// it keeps every second row and doubles the sampling stride — so memory
// stays bounded and the surviving stamps still lie on a uniform grid.
package probe

// Default sampling parameters: one row every DefaultInterval simulated
// cycles, decimating once DefaultMaxSamples rows have accumulated.
const (
	DefaultInterval   = 256
	DefaultMaxSamples = 4096
)

// Config selects per-cell tracing. The zero value means disabled — cells
// run exactly as before, with no recorder attached.
type Config struct {
	// Interval is the sampling period in simulated cycles (0 = disabled,
	// negative values are impossible by type).
	Interval uint64 `json:"interval,omitempty"`
	// MaxSamples caps the number of rows kept per cell; when reached the
	// recorder halves the resolution in place (0 = DefaultMaxSamples).
	MaxSamples int `json:"max_samples,omitempty"`
}

// Enabled reports whether the config asks for tracing at all.
func (c Config) Enabled() bool { return c.Interval > 0 }

// withDefaults fills unset fields of an enabled config.
func (c Config) withDefaults() Config {
	if c.MaxSamples <= 1 {
		c.MaxSamples = DefaultMaxSamples
	}
	return c
}

// Kind distinguishes signals whose samples are instantaneous levels from
// signals whose samples are cumulative totals.
type Kind uint8

const (
	// Gauge samples are instantaneous levels (queue depth, occupancy).
	Gauge Kind = iota
	// Counter samples are cumulative, nondecreasing totals (bytes, commits);
	// exporters may derive per-interval rates from them.
	Counter
)

// String returns the kind's wire name.
func (k Kind) String() string {
	if k == Counter {
		return "counter"
	}
	return "gauge"
}

// SampleFunc reads one signal's current value. The scheduled sample cycle is
// passed in because some gauges are defined relative to simulated time (the
// memory channel backlog is "how far past now is the channel booked").
// Implementations must not allocate and must not mutate simulator state.
type SampleFunc func(cycle uint64) float64

// Registrar is implemented by design runtimes (and any other layer resolved
// dynamically) that have signals to contribute to a cell's recorder.
type Registrar interface {
	RegisterProbes(*Recorder)
}

// signal is one registered time series; values shares its row index with the
// recorder's cycles column.
type signal struct {
	name   string
	unit   string
	source string
	kind   Kind
	fn     SampleFunc
	values []float64
}

// Recorder collects one cell's timeline. Build it with NewRecorder, register
// every signal before the run starts, then let the engine drive Sample; none
// of the methods are safe for concurrent use (the engine is single-threaded
// by construction).
type Recorder struct {
	interval uint64 // current stride (doubles on decimation)
	max      int
	next     uint64 // next scheduled sample cycle

	cycles []uint64 // shared stamp column, one entry per row
	sigs   []signal

	cfg      Config
	label    string
	design   string
	workload string
	seed     int64
}

// NewRecorder builds a recorder for one cell. cfg is defaulted; a disabled
// config yields a recorder that still works (at DefaultInterval) so callers
// gate on Config.Enabled, not on nil-ness of what this returns.
func NewRecorder(cfg Config) *Recorder {
	cfg = cfg.withDefaults()
	interval := cfg.Interval
	if interval == 0 {
		interval = DefaultInterval
	}
	return &Recorder{
		interval: interval,
		max:      cfg.MaxSamples,
		cycles:   make([]uint64, 0, cfg.MaxSamples),
		cfg:      cfg,
	}
}

// SetMeta attaches the cell identity exported with the timeline: the cell
// label ("DHTM/hash/..."), the design and workload names, and the derived
// seed the cell ran with.
func (r *Recorder) SetMeta(label, design, workload string, seed int64) {
	r.label, r.design, r.workload, r.seed = label, design, workload, seed
}

// Register adds a signal. All registration must happen before Start; the
// column is preallocated to the recorder's row capacity so sampling never
// allocates.
func (r *Recorder) Register(name, unit, source string, kind Kind, fn SampleFunc) {
	if len(r.cycles) > 0 {
		panic("probe: Register after sampling started")
	}
	r.sigs = append(r.sigs, signal{
		name: name, unit: unit, source: source, kind: kind, fn: fn,
		values: make([]float64, 0, r.max),
	})
}

// Gauge registers an instantaneous-level signal.
func (r *Recorder) Gauge(name, unit, source string, fn SampleFunc) {
	r.Register(name, unit, source, Gauge, fn)
}

// Counter registers a cumulative-total signal.
func (r *Recorder) Counter(name, unit, source string, fn SampleFunc) {
	r.Register(name, unit, source, Counter, fn)
}

// Start records the cycle-0 row (the state of the freshly prepared machine)
// and arms the schedule. Call it once, after registration and before the
// engine runs.
func (r *Recorder) Start() {
	if len(r.cycles) == 0 {
		r.record(0)
	}
}

// NextDue returns the next scheduled sample cycle, i.e. the first-due cycle
// to hand to engine.SetSampler.
func (r *Recorder) NextDue() uint64 { return r.next }

// Sample is the engine callback: it records a row stamped with the scheduled
// cycle and returns the next due cycle (always > cycle, so the engine's
// catch-up loop terminates). 0 allocs/op within capacity; a decimation step
// moves values in place and allocates nothing either.
func (r *Recorder) Sample(cycle uint64) uint64 {
	r.record(cycle)
	return r.next
}

// Finish records a final row stamped at the run's makespan if the schedule
// had not reached it, so every timeline ends with the terminal state of the
// machine (drained queues, final totals).
func (r *Recorder) Finish(makespan uint64) {
	if n := len(r.cycles); n == 0 || r.cycles[n-1] < makespan {
		r.record(makespan)
	}
}

// record appends one row, decimating first when at capacity.
func (r *Recorder) record(cycle uint64) {
	if len(r.cycles) >= r.max {
		r.decimate()
	}
	r.cycles = append(r.cycles, cycle)
	for i := range r.sigs {
		s := &r.sigs[i]
		s.values = append(s.values, s.fn(cycle))
	}
	r.next = cycle + r.interval
}

// decimate halves the resolution in place: keep the even-index rows (row 0
// survives every decimation) and double the stride for future samples.
func (r *Recorder) decimate() {
	n := len(r.cycles)
	keep := 0
	for i := 0; i < n; i += 2 {
		r.cycles[keep] = r.cycles[i]
		keep++
	}
	r.cycles = r.cycles[:keep]
	for j := range r.sigs {
		v := r.sigs[j].values
		k := 0
		for i := 0; i < n; i += 2 {
			v[k] = v[i]
			k++
		}
		r.sigs[j].values = v[:k]
	}
	r.interval *= 2
}

// Rows returns the number of recorded sample rows.
func (r *Recorder) Rows() int { return len(r.cycles) }
