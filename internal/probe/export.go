package probe

import (
	"encoding/json"
	"fmt"
	"io"
)

// FormatVersion is the version stamp of the compact timeline JSON. Bump it
// whenever the field layout changes and regenerate the harness golden files.
const FormatVersion = 1

// Signal is one exported time series; Values is row-aligned with the parent
// timeline's Cycles column.
type Signal struct {
	Name   string    `json:"name"`
	Unit   string    `json:"unit"`
	Source string    `json:"source"`
	Kind   string    `json:"kind"`
	Values []float64 `json:"values"`
}

// Timeline is the compact versioned export of one cell's recording: a shared
// cycle-stamp column plus one value column per signal.
type Timeline struct {
	FormatVersion int    `json:"format_version"`
	Cell          string `json:"cell,omitempty"`
	Design        string `json:"design"`
	Workload      string `json:"workload"`
	Seed          int64  `json:"seed"`
	// Interval is the configured sampling period; Stride is the effective
	// period after any in-place decimations (Stride == Interval when the run
	// fit in the row budget).
	Interval uint64   `json:"interval"`
	Stride   uint64   `json:"stride"`
	Cycles   []uint64 `json:"cycles"`
	Signals  []Signal `json:"signals"`
}

// Timeline snapshots the recording into its export form. The returned value
// copies every column, so it stays valid independent of the recorder.
func (r *Recorder) Timeline() *Timeline {
	interval := r.cfg.Interval
	if interval == 0 {
		interval = DefaultInterval
	}
	tl := &Timeline{
		FormatVersion: FormatVersion,
		Cell:          r.label,
		Design:        r.design,
		Workload:      r.workload,
		Seed:          r.seed,
		Interval:      interval,
		Stride:        r.interval,
		Cycles:        append([]uint64(nil), r.cycles...),
		Signals:       make([]Signal, len(r.sigs)),
	}
	for i := range r.sigs {
		s := &r.sigs[i]
		tl.Signals[i] = Signal{
			Name:   s.name,
			Unit:   s.unit,
			Source: s.source,
			Kind:   s.kind.String(),
			Values: append([]float64(nil), s.values...),
		}
	}
	return tl
}

// chromeEvent is one entry of the Chrome trace-event format. Only the
// fields the counter ("C") and metadata ("M") phases use are present;
// encoding/json emits struct fields in declaration order, so the output is
// deterministic byte-for-byte.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   uint64         `json:"ts"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeDoc is the trace-event JSON object form (preferred over the bare
// array because it carries the time-unit hint and survives truncation
// detection in viewers).
type chromeDoc struct {
	TraceEvents     []chromeEvent     `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData"`
}

// WriteChromeTrace writes the timelines as one Chrome trace-event /
// Perfetto-compatible JSON document. Each timeline becomes a "process"
// (named by its cell label) whose signals are counter tracks; one simulated
// cycle is mapped to one trace microsecond. Counter-kind signals are emitted
// as per-row deltas so the track shows activity per interval rather than an
// ever-growing total; gauges are emitted as-is.
func WriteChromeTrace(w io.Writer, timelines []*Timeline) error {
	events := make([]chromeEvent, 0, 64)
	for pid, tl := range timelines {
		if tl == nil {
			continue
		}
		name := tl.Cell
		if name == "" {
			name = fmt.Sprintf("%s/%s", tl.Design, tl.Workload)
		}
		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", PID: pid,
			Args: map[string]any{"name": name},
		})
		for _, sig := range tl.Signals {
			prev := 0.0
			for row, cycle := range tl.Cycles {
				v := sig.Values[row]
				if sig.Kind == Counter.String() {
					v, prev = v-prev, v
				}
				events = append(events, chromeEvent{
					Name: sig.Name, Ph: "C", TS: cycle, PID: pid,
					Args: map[string]any{"value": v},
				})
			}
		}
	}
	doc := chromeDoc{
		TraceEvents:     events,
		DisplayTimeUnit: "ms",
		OtherData: map[string]string{
			"clock": "simulated cycles (1 cycle rendered as 1us)",
		},
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
