package crashtest

import (
	"fmt"
	"sort"

	"dhtm/internal/memdev"
	"dhtm/internal/wal"
)

// txKey identifies a transaction across threads in the decoded trace.
type txKey struct {
	thread int
	txid   uint64
}

// txState accumulates what the trace reveals about one transaction.
type txState struct {
	committed bool
	aborted   bool
	undo      []wal.Record // append order
}

// redoEntry is one redo record in global persist order.
type redoEntry struct {
	key txKey
	rec wal.Record
}

// traceTxs is the transaction-level decoding of a persist-trace prefix: what
// recovery could legitimately know about each transaction if power failed
// right after the prefix, plus the committed sequence in activation order
// (the serialization order the differential oracle replays).
type traceTxs struct {
	txs  map[txKey]*txState
	redo []redoEntry
	// commits lists every commit-marker activation in global persist order.
	// Per thread the txids are ascending — a core's transactions commit in
	// issue order — which is what lets the differential oracle map the j-th
	// committed txid of a thread back to the j-th generated transaction.
	commits []txKey
}

// parseTrace decodes the log-record persist events of a trace prefix back
// into records (the trace never loses records to truncation, torn writes or
// head-pointer races) and classifies them per transaction.
//
// Reassembly works because a record append issues one or (on log wrap-around)
// two consecutive record-class events followed by the head pointer's log-meta
// persist, and no other events interleave — the token-holding core writes all
// of them synchronously — so record-class events concatenate into a stream of
// whole records. A decoded record is only *pending* until that head persist:
// the recovery manager's scan covers [tail, head), so a record whose words
// are durable but whose head write the crash swallowed was never appended.
// Trailing pending records at the end of the prefix are therefore dropped.
//
// Under the reordering adversary the same parse stays sound for a crash at
// point k with in-flight window [wStart, k): log-meta persists are drain
// class, so none sits inside the window — every activation the image can
// contain happened before wStart, and a window record's activating meta is
// at or beyond k. Masked-in record words are inert bytes beyond the durable
// head that neither recovery nor this parse can observe.
func parseTrace(prefix []traceEvent) (*traceTxs, error) {
	info := &traceTxs{txs: make(map[txKey]*txState)}
	var buf []uint64
	var pending []wal.Record
	activate := func() {
		for _, rec := range pending {
			k := txKey{thread: rec.Thread, txid: rec.TxID}
			st := info.txs[k]
			if st == nil {
				st = &txState{}
				info.txs[k] = st
			}
			switch rec.Type {
			case wal.RecRedo:
				info.redo = append(info.redo, redoEntry{key: k, rec: rec})
			case wal.RecUndo:
				st.undo = append(st.undo, rec)
			case wal.RecCommit:
				st.committed = true
				info.commits = append(info.commits, k)
			case wal.RecAbort:
				st.aborted = true
			}
		}
		pending = pending[:0]
	}
	for _, ev := range prefix {
		switch {
		case wal.IsRecordClass(ev.class):
			buf = append(buf, ev.words...)
			for len(buf) > 0 {
				t, _, _ := wal.HeaderInfo(buf[0])
				need := (&wal.Record{Type: t}).SizeWords()
				if len(buf) < need {
					break
				}
				rec, n, err := wal.DecodeRecord(buf, 0)
				if err != nil {
					return nil, fmt.Errorf("decoding trace record: %w", err)
				}
				buf = buf[:copy(buf, buf[n:])]
				pending = append(pending, rec)
			}
		case ev.class == memdev.TrafficLogMeta:
			activate()
		}
	}
	return info, nil
}

// expectedImage computes the reference durable image for a crash whose
// masked pre-recovery image is pre, independently of the durable logs the
// recovery manager reads: it applies the same semantics recovery promises to
// the parsed trace — uncommitted undo-logged transactions are rolled back
// (newest record first) and the redo records of every transaction whose
// commit marker persisted inside the prefix are replayed in global persist
// order, which for any line shared across transactions is exactly sentinel
// dependency order, because a dependent transaction can only log a line
// after its dependency's commit persisted.
func expectedImage(pre *memdev.Store, info *traceTxs) *memdev.Store {
	txs, redo := info.txs, info.redo
	exp := pre.Clone()

	// Roll back uncommitted, unaborted undo-logged transactions, newest
	// record first. Lock-based undo designs hold their locks until after the
	// commit record, so concurrent uncommitted transactions touch disjoint
	// lines and the cross-transaction order is immaterial; it is fixed
	// (thread, then txid) for determinism.
	var rollback []txKey
	for k, st := range txs {
		if !st.committed && !st.aborted && len(st.undo) > 0 {
			rollback = append(rollback, k)
		}
	}
	sort.Slice(rollback, func(i, j int) bool {
		if rollback[i].thread != rollback[j].thread {
			return rollback[i].thread < rollback[j].thread
		}
		return rollback[i].txid < rollback[j].txid
	})
	for _, k := range rollback {
		undo := txs[k].undo
		for i := len(undo) - 1; i >= 0; i-- {
			applyRec(exp, undo[i])
		}
	}

	// Replay every committed transaction's redo records in global persist
	// order. Transactions that already completed in place replay
	// idempotently; committed-but-incomplete ones are restored exactly as
	// recovery must restore them.
	for _, e := range redo {
		if txs[e.key].committed {
			applyRec(exp, e.rec)
		}
	}
	return exp
}

// applyRec writes a record's payload in place: line-granular records carry a
// full line, word-granular ones (unaligned addresses) a single word — the
// same dispatch recovery's replay uses.
func applyRec(st *memdev.Store, rec wal.Record) {
	if rec.LineAddr%memdev.LineBytes == 0 {
		st.WriteLine(rec.LineAddr, rec.Data)
	} else {
		st.WriteWord(rec.LineAddr, rec.Data[0])
	}
}

// diffHeap compares the workload-heap region of two images and describes the
// first mismatching word ("" when identical). Addresses below wal.HeapBase —
// logs, registry, lock tables, software scratch — are intentionally outside
// the oracle: recovery truncates logs and ignores lock state, and the
// reference image does neither.
func diffHeap(got, want *memdev.Store) string {
	var msg string
	scan := func(a, b *memdev.Store, flipped bool) {
		a.ForEachLine(func(addr uint64, data memdev.Line) {
			if msg != "" || addr < wal.HeapBase {
				return
			}
			other := b.ReadLine(addr)
			if other == data {
				return
			}
			for i := range data {
				if data[i] != other[i] {
					g, w := data[i], other[i]
					if flipped {
						g, w = w, g
					}
					msg = fmt.Sprintf("heap word %#x: recovered %#x, reference %#x", addr+uint64(i*8), g, w)
					return
				}
			}
		})
	}
	scan(got, want, false)
	if msg == "" {
		scan(want, got, true)
	}
	return msg
}
