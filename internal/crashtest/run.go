package crashtest

import (
	"fmt"
	"runtime/debug"
	"time"

	"dhtm/internal/config"
	"dhtm/internal/memdev"
	"dhtm/internal/obs"
	"dhtm/internal/recovery"
	"dhtm/internal/registry"
	"dhtm/internal/runner"
	"dhtm/internal/snapshot"
	"dhtm/internal/txn"
	"dhtm/internal/workloads"
)

// traceEvent is one recorded durable write of the counting pass.
type traceEvent struct {
	class memdev.TrafficClass
	addr  uint64
	words []uint64
}

// recorder captures the counting pass's persist-event trace.
type recorder struct {
	events []traceEvent
}

// PersistWrite implements memdev.PersistObserver.
func (r *recorder) PersistWrite(_ uint64, ev memdev.PersistEvent) {
	r.events = append(r.events, traceEvent{
		class: ev.Class,
		addr:  ev.Addr,
		words: append([]uint64(nil), ev.Data...),
	})
}

// injector crashes a re-run at one crash point: when the first durable write
// that may still be in flight at the crash (start, the persist-queue window's
// lower bound; start == target when the queue is strictly ordered) is about
// to apply, it clones the store — writes 0..start-1 are in the clone, every
// later write is not, and all volatile state is absent by construction. The
// driver then builds the crash image by applying the adversary's mask of
// window writes (and the torn prefix of write target) from the recorded
// trace, whose payloads are cross-checked here against the live run up to
// and including target, so any determinism violation surfaces instead of
// silently exploring the wrong image.
type injector struct {
	trace  []traceEvent
	start  uint64 // first write that may be in flight at the crash
	target uint64 // the crash point itself
	store  *memdev.Store

	snapshot *memdev.Store
	reached  bool
	mismatch error
}

// PersistWrite implements memdev.PersistObserver.
func (in *injector) PersistWrite(seq uint64, ev memdev.PersistEvent) {
	if seq <= in.target && in.mismatch == nil {
		te := in.trace[seq]
		if te.class != ev.Class || te.addr != ev.Addr || !wordsEqual(te.words, ev.Data) {
			in.mismatch = fmt.Errorf("event %d diverged from the counting pass: got %s@%#x/%dw, recorded %s@%#x/%dw",
				seq, ev.Class, ev.Addr, len(ev.Data), te.class, te.addr, len(te.words))
		}
	}
	if seq == in.start && in.snapshot == nil {
		in.snapshot = in.store.Clone()
	}
	if seq == in.target {
		in.reached = true
	}
}

// wordsEqual compares an event payload against its recorded counterpart —
// payload values are part of the determinism contract, not just shape, since
// the reference image is built from the counting pass's values.
func wordsEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// done reports whether the crash point has been reached; the driver stops
// issuing new transactions once it has (the snapshot and the trace segment
// the crash image is built from are fixed from then on, so the remaining
// work cannot change the outcome).
func (in *injector) done() bool { return in.reached }

// runOnce builds one fully isolated simulated machine and drives TxPerCore
// transactions per core through workloads.RunPrepared — the same drive loop
// every plain run uses, so identical seeds yield identical persist-event
// sequences. The machine's store is a fresh copy-on-write clone of the
// cached post-setup snapshot for (config, workload, seed): the counting pass
// and every crash-point re-run start from byte-identical images, and the
// writes of one re-run land in its private clone, never in the shared
// snapshot. The observer returned by arm is installed after the clone is
// built, so only the measured run's durable writes are numbered.
func (c Config) runOnce(seed int64, arm func(*txn.Env) (memdev.PersistObserver, func() bool)) (*txn.Env, workloads.Workload, error) {
	hw := config.Default()
	hw.NumCores = c.Cores
	p := workloads.Params{Cores: c.Cores, OpsPerTx: c.OpsPerTx, Seed: seed}
	prep, err := snapshot.Default.Prepare(hw, c.Workload, p)
	if err != nil {
		return nil, nil, err
	}
	env, err := txn.NewEnvOn(hw, prep.NewStore())
	if err != nil {
		return nil, nil, err
	}
	var rt txn.Runtime
	if c.Factory != nil {
		rt, err = c.Factory(env)
	} else {
		rt, err = registry.NewRuntime(env, c.Design)
	}
	if err != nil {
		return nil, nil, err
	}
	var stop func() bool
	_, err = workloads.RunPrepared(env, rt, prep.Workload, p, c.TxPerCore, true,
		func() {
			obs, s := arm(env)
			env.Ctl.SetPersistObserver(obs)
			stop = s
		},
		func() bool { return stop != nil && stop() })
	if err != nil {
		return nil, nil, fmt.Errorf("crashtest: %w", err)
	}
	return env, prep.Workload, nil
}

// countPass measures the persist-event space: one uncrashed run with a
// recording observer. It also sanity-checks the baseline — the final durable
// image must recover as a no-op and satisfy the workload's invariants —
// because a workload that is inconsistent without any crash would fail every
// point for the wrong reason.
func (c Config) countPass(seed int64) ([]traceEvent, error) {
	rec := &recorder{}
	env, w, err := c.runOnce(seed, func(*txn.Env) (memdev.PersistObserver, func() bool) {
		return rec, nil
	})
	if err != nil {
		return nil, err
	}
	final := env.Store().Clone()
	env.Release()
	if _, err := recovery.Recover(final); err != nil {
		return nil, fmt.Errorf("crashtest: baseline recovery of the uncrashed image failed: %w", err)
	}
	if err := w.Verify(final); err != nil {
		return nil, fmt.Errorf("crashtest: baseline image violates workload invariants without any crash: %w", err)
	}
	return rec.events, nil
}

// explorePoint re-runs the workload, crashes it at the task's point, builds
// the crash image the task's adversary mask describes and judges the
// recovered image against the oracles. A panic anywhere in the re-run,
// recovery or an oracle (e.g. recovery walking a log the adversary corrupted)
// is recovered and reported as the point's failure: one pathological crash
// image must not kill the sweep, and the re-run's store is a private clone so
// nothing leaks into the shared snapshot.
func (c Config) explorePoint(seed int64, trace []traceEvent, tk task, dc *diffCtx) (res PointResult) {
	k := tk.point
	res = PointResult{Point: k, Class: trace[k].class.String()}
	n := k - int(tk.wStart)
	if n > 0 {
		res.Window = n
		res.Mask = fmt.Sprintf("%#x", tk.mask)
	}
	defer func() {
		if r := recover(); r != nil {
			stack := debug.Stack()
			if len(stack) > 4096 {
				stack = stack[:4096]
			}
			res.Err = fmt.Sprintf("panic: %v\n%s", r, stack)
		}
	}()
	if c.Torn && len(trace[k].words) >= 2 {
		// A deterministic, seed-derived proper prefix of the in-flight words.
		res.TornWords = 1 + int(runner.Mix64(uint64(seed)^uint64(k))%uint64(len(trace[k].words)-1))
	}
	inj := &injector{trace: trace, start: tk.wStart, target: uint64(k)}
	env, w, err := c.runOnce(seed, func(env *txn.Env) (memdev.PersistObserver, func() bool) {
		inj.store = env.Store()
		return inj, inj.done
	})
	if err != nil {
		res.Err = err.Error()
		return res
	}
	env.Release()
	if inj.mismatch != nil {
		res.Err = "determinism: " + inj.mismatch.Error()
		return res
	}
	if !inj.reached {
		res.Err = fmt.Sprintf("crash point %d was never reached (re-run produced fewer events)", k)
		return res
	}

	// Build the crash image: the clone holds writes [0, wStart); the mask
	// retires its subset of the in-flight window [wStart, k) — in issue
	// order, since the queue keeps same-address writes coherent — and the
	// interrupted write k itself contributes at most a torn prefix. Payloads
	// come from the cross-checked trace, identical to the live run's.
	pre := inj.snapshot
	for i := 0; i < n; i++ {
		if tk.mask>>uint(i)&1 == 1 {
			applyEvent(pre, trace[int(tk.wStart)+i])
		}
	}
	for i := 0; i < res.TornWords && i < len(trace[k].words); i++ {
		pre.WriteWord(trace[k].addr+uint64(i*8), trace[k].words[i])
	}

	img := pre.Clone()
	report, err := recovery.Recover(img)
	if err != nil {
		res.Err = "recovery: " + err.Error()
		return res
	}
	res.Replayed = len(report.Replayed)
	res.RolledBack = len(report.RolledBack)

	// Oracle 1: the workload's own structural invariants.
	vstart := time.Now()
	err = w.Verify(img)
	metricPhases.Observe(obs.PhaseVerify, time.Since(vstart))
	if err != nil {
		res.Err = "invariant oracle: " + err.Error()
		return res
	}

	// Oracle 2: prefix consistency against the trace-derived reference image.
	// The reference is mask-independent — log-meta persists drain the queue,
	// so no window write can change which records recovery sees activated —
	// but the pre-image it corrects is the masked one.
	info, err := parseTrace(trace[:k])
	if err != nil {
		res.Err = "reference image: " + err.Error()
		return res
	}
	if diff := diffHeap(img, expectedImage(pre, info)); diff != "" {
		res.Err = "prefix oracle: " + diff
		return res
	}

	// Oracle 3: recovery idempotency.
	img2 := img.Clone()
	second, err := recovery.Recover(img2)
	if err != nil {
		res.Err = "idempotency oracle: second recovery failed: " + err.Error()
		return res
	}
	if len(second.Replayed) != 0 || len(second.RolledBack) != 0 {
		res.Err = fmt.Sprintf("idempotency oracle: second recovery replayed %d and rolled back %d transactions",
			len(second.Replayed), len(second.RolledBack))
		return res
	}
	if !img2.Equal(img) {
		res.Err = "idempotency oracle: second recovery changed the image"
		return res
	}

	// Oracle 4 (differential mode): the recovered image must match a serial
	// re-execution of exactly the committed transaction sequence, on a store
	// that never saw this design's machinery — the cross-design ground truth.
	if dc != nil {
		replay, err := dc.replay(info.commits)
		if err != nil {
			res.Err = "differential oracle: " + err.Error()
			return res
		}
		if diff := diffHeap(img, replay); diff != "" {
			res.Err = "differential oracle: recovered image diverges from serial re-execution of the committed sequence: " + diff
			return res
		}
		res.commitKey = commitKey(info.commits)
		res.digest = heapDigest(img)
	}
	return res
}

// applyEvent retires one recorded durable write into a crash image.
func applyEvent(st *memdev.Store, ev traceEvent) {
	for i, w := range ev.words {
		st.WriteWord(ev.addr+uint64(i*8), w)
	}
}
