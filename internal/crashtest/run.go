package crashtest

import (
	"fmt"

	"dhtm/internal/config"
	"dhtm/internal/memdev"
	"dhtm/internal/recovery"
	"dhtm/internal/registry"
	"dhtm/internal/runner"
	"dhtm/internal/snapshot"
	"dhtm/internal/txn"
	"dhtm/internal/workloads"
)

// traceEvent is one recorded durable write of the counting pass.
type traceEvent struct {
	class memdev.TrafficClass
	addr  uint64
	words []uint64
}

// recorder captures the counting pass's persist-event trace.
type recorder struct {
	events []traceEvent
}

// PersistWrite implements memdev.PersistObserver.
func (r *recorder) PersistWrite(_ uint64, ev memdev.PersistEvent) {
	r.events = append(r.events, traceEvent{
		class: ev.Class,
		addr:  ev.Addr,
		words: append([]uint64(nil), ev.Data...),
	})
}

// injector crashes a re-run at one crash point: when durable write target is
// about to apply it clones the store — writes 0..target-1 are in the clone,
// write target and everything later are not, and all volatile state is absent
// by construction — then optionally applies a torn prefix of the in-flight
// write to the clone. Earlier events are cross-checked against the counting
// pass's trace, so any determinism violation surfaces instead of silently
// exploring the wrong point.
type injector struct {
	trace     []traceEvent
	target    uint64
	tornWords int
	store     *memdev.Store

	snapshot *memdev.Store
	mismatch error
}

// PersistWrite implements memdev.PersistObserver.
func (in *injector) PersistWrite(seq uint64, ev memdev.PersistEvent) {
	if seq < in.target {
		if in.mismatch == nil {
			te := in.trace[seq]
			if te.class != ev.Class || te.addr != ev.Addr || !wordsEqual(te.words, ev.Data) {
				in.mismatch = fmt.Errorf("event %d diverged from the counting pass: got %s@%#x/%dw, recorded %s@%#x/%dw",
					seq, ev.Class, ev.Addr, len(ev.Data), te.class, te.addr, len(te.words))
			}
		}
		return
	}
	if seq > in.target || in.snapshot != nil {
		return
	}
	in.snapshot = in.store.Clone()
	for i := 0; i < in.tornWords && i < len(ev.Data); i++ {
		in.snapshot.WriteWord(ev.Addr+uint64(i*8), ev.Data[i])
	}
}

// wordsEqual compares an event payload against its recorded counterpart —
// payload values are part of the determinism contract, not just shape, since
// the reference image is built from the counting pass's values.
func wordsEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// done reports whether the crash point has been captured; the driver stops
// issuing new transactions once it has (the snapshot is immutable from then
// on, so the remaining work cannot change the outcome).
func (in *injector) done() bool { return in.snapshot != nil }

// runOnce builds one fully isolated simulated machine and drives TxPerCore
// transactions per core through workloads.RunPrepared — the same drive loop
// every plain run uses, so identical seeds yield identical persist-event
// sequences. The machine's store is a fresh copy-on-write clone of the
// cached post-setup snapshot for (config, workload, seed): the counting pass
// and every crash-point re-run start from byte-identical images, and the
// writes of one re-run land in its private clone, never in the shared
// snapshot. The observer returned by arm is installed after the clone is
// built, so only the measured run's durable writes are numbered.
func (c Config) runOnce(seed int64, arm func(*txn.Env) (memdev.PersistObserver, func() bool)) (*txn.Env, workloads.Workload, error) {
	hw := config.Default()
	hw.NumCores = c.Cores
	p := workloads.Params{Cores: c.Cores, OpsPerTx: c.OpsPerTx, Seed: seed}
	prep, err := snapshot.Default.Prepare(hw, c.Workload, p)
	if err != nil {
		return nil, nil, err
	}
	env, err := txn.NewEnvOn(hw, prep.NewStore())
	if err != nil {
		return nil, nil, err
	}
	rt, err := registry.NewRuntime(env, c.Design)
	if err != nil {
		return nil, nil, err
	}
	var stop func() bool
	_, err = workloads.RunPrepared(env, rt, prep.Workload, p, c.TxPerCore, true,
		func() {
			obs, s := arm(env)
			env.Ctl.SetPersistObserver(obs)
			stop = s
		},
		func() bool { return stop != nil && stop() })
	if err != nil {
		return nil, nil, fmt.Errorf("crashtest: %w", err)
	}
	return env, prep.Workload, nil
}

// countPass measures the persist-event space: one uncrashed run with a
// recording observer. It also sanity-checks the baseline — the final durable
// image must recover as a no-op and satisfy the workload's invariants —
// because a workload that is inconsistent without any crash would fail every
// point for the wrong reason.
func (c Config) countPass(seed int64) ([]traceEvent, error) {
	rec := &recorder{}
	env, w, err := c.runOnce(seed, func(*txn.Env) (memdev.PersistObserver, func() bool) {
		return rec, nil
	})
	if err != nil {
		return nil, err
	}
	final := env.Store().Clone()
	env.Release()
	if _, err := recovery.Recover(final); err != nil {
		return nil, fmt.Errorf("crashtest: baseline recovery of the uncrashed image failed: %w", err)
	}
	if err := w.Verify(final); err != nil {
		return nil, fmt.Errorf("crashtest: baseline image violates workload invariants without any crash: %w", err)
	}
	return rec.events, nil
}

// explorePoint re-runs the workload, crashes it at point k and judges the
// recovered image against the three oracles.
func (c Config) explorePoint(seed int64, trace []traceEvent, k int) PointResult {
	res := PointResult{Point: k, Class: trace[k].class.String()}
	if c.Torn && len(trace[k].words) >= 2 {
		// A deterministic, seed-derived proper prefix of the in-flight words.
		res.TornWords = 1 + int(runner.Mix64(uint64(seed)^uint64(k))%uint64(len(trace[k].words)-1))
	}
	inj := &injector{trace: trace, target: uint64(k), tornWords: res.TornWords}
	env, w, err := c.runOnce(seed, func(env *txn.Env) (memdev.PersistObserver, func() bool) {
		inj.store = env.Store()
		return inj, inj.done
	})
	if err != nil {
		res.Err = err.Error()
		return res
	}
	env.Release()
	if inj.mismatch != nil {
		res.Err = "determinism: " + inj.mismatch.Error()
		return res
	}
	if inj.snapshot == nil {
		res.Err = fmt.Sprintf("crash point %d was never reached (re-run produced fewer events)", k)
		return res
	}

	pre := inj.snapshot
	img := pre.Clone()
	report, err := recovery.Recover(img)
	if err != nil {
		res.Err = "recovery: " + err.Error()
		return res
	}
	res.Replayed = len(report.Replayed)
	res.RolledBack = len(report.RolledBack)

	// Oracle 1: the workload's own structural invariants.
	if err := w.Verify(img); err != nil {
		res.Err = "invariant oracle: " + err.Error()
		return res
	}

	// Oracle 2: prefix consistency against the trace-derived reference image.
	want, err := expectedImage(pre, trace[:k])
	if err != nil {
		res.Err = "reference image: " + err.Error()
		return res
	}
	if diff := diffHeap(img, want); diff != "" {
		res.Err = "prefix oracle: " + diff
		return res
	}

	// Oracle 3: recovery idempotency.
	img2 := img.Clone()
	second, err := recovery.Recover(img2)
	if err != nil {
		res.Err = "idempotency oracle: second recovery failed: " + err.Error()
		return res
	}
	if len(second.Replayed) != 0 || len(second.RolledBack) != 0 {
		res.Err = fmt.Sprintf("idempotency oracle: second recovery replayed %d and rolled back %d transactions",
			len(second.Replayed), len(second.RolledBack))
		return res
	}
	if !img2.Equal(img) {
		res.Err = "idempotency oracle: second recovery changed the image"
		return res
	}
	return res
}
