package crashtest

import (
	"fmt"
	"math/rand"
	"strings"

	"dhtm/internal/config"
	"dhtm/internal/memdev"
	"dhtm/internal/runner"
	"dhtm/internal/snapshot"
	"dhtm/internal/txn"
	"dhtm/internal/wal"
	"dhtm/internal/workloads"
)

// The differential oracle. Every crash-safe design promises the same thing:
// after recovery, NVM holds exactly the effects of the transactions whose
// commit markers persisted, in their serialization order, and nothing else.
// That promise has a design-independent ground truth — re-execute exactly
// those transactions, serially, on a store that never saw any transactional
// machinery — and the oracle holds each recovered image to it. Two design
// properties make the replay well-defined:
//
//   - The commit-marker activation order of the persist trace *is* a valid
//     serialization order: every design appends the commit record while still
//     holding its conflict-detection claim on the write set (locks for the
//     undo baselines, read/write bits for DHTM), so a dependent transaction
//     cannot commit-persist before its dependency.
//   - Transaction bodies are deterministic functions of (core, rank): the
//     drive loop generates each core's stream from a seed-derived RNG, so the
//     j-th committed txid of a thread (txids ascend per thread) is the j-th
//     generated transaction, re-generable without running any design.
//
// Disagreement with the replay is a durability bug even when the workload's
// own Verify passes — Verify checks structural invariants, which stale but
// self-consistent data satisfies. Reports additionally carry a digest of the
// recovered heap per committed sequence, so CrossCheck can compare designs
// against each other directly: differential runs derive their seed without
// the design name, giving every design the identical transaction stream.

// diffCtx is the per-exploration state of the differential oracle: the
// prepared workload snapshot and the re-generated transaction streams.
type diffCtx struct {
	prep *snapshot.Prepared
	gen  [][]*txn.Transaction // [core][rank]
}

// newDiffCtx regenerates the workload's transaction streams and checks the
// full trace satisfies the oracle's preconditions: every generated
// transaction committed, per thread in ascending txid order. A design or
// workload that aborts transactions for good would need a rank mapping the
// trace alone cannot provide.
func (c Config) newDiffCtx(runSeed int64, trace []traceEvent) (*diffCtx, error) {
	hw := config.Default()
	hw.NumCores = c.Cores
	p := workloads.Params{Cores: c.Cores, OpsPerTx: c.OpsPerTx, Seed: runSeed}
	prep, err := snapshot.Default.Prepare(hw, c.Workload, p)
	if err != nil {
		return nil, err
	}
	pd := p.Defaults()
	dc := &diffCtx{prep: prep, gen: make([][]*txn.Transaction, c.Cores)}
	for core := 0; core < c.Cores; core++ {
		rng := rand.New(rand.NewSource(pd.Seed + int64(core)*7919))
		for i := 0; i < c.TxPerCore; i++ {
			dc.gen[core] = append(dc.gen[core], prep.Workload.Next(core, rng))
		}
	}
	info, err := parseTrace(trace)
	if err != nil {
		return nil, fmt.Errorf("crashtest: differential oracle: %w", err)
	}
	counts := make(map[int]int)
	for _, k := range info.commits {
		counts[k.thread]++
	}
	for core := 0; core < c.Cores; core++ {
		if counts[core] != c.TxPerCore {
			return nil, fmt.Errorf("crashtest: differential oracle: thread %d committed %d of %d transactions — the oracle requires every transaction to commit",
				core, counts[core], c.TxPerCore)
		}
	}
	if _, err := dc.replay(info.commits); err != nil {
		return nil, fmt.Errorf("crashtest: differential oracle: full trace fails preconditions: %w", err)
	}
	return dc, nil
}

// replay serially re-executes the committed sequence on a fresh copy of the
// post-setup store and returns the resulting image.
func (d *diffCtx) replay(commits []txKey) (*memdev.Store, error) {
	next := make(map[int]int)
	last := make(map[int]uint64)
	st := d.prep.NewStore()
	dtx := txn.DirectTx{Store: st}
	for _, k := range commits {
		if id, ok := last[k.thread]; ok && k.txid <= id {
			return nil, fmt.Errorf("thread %d commit activations out of txid order (%d after %d)", k.thread, k.txid, id)
		}
		last[k.thread] = k.txid
		r := next[k.thread]
		next[k.thread]++
		if k.thread < 0 || k.thread >= len(d.gen) || r >= len(d.gen[k.thread]) {
			return nil, fmt.Errorf("thread %d committed more transactions than the drive loop generates", k.thread)
		}
		if err := d.gen[k.thread][r].Body(dtx); err != nil {
			return nil, fmt.Errorf("serial re-execution of thread %d rank %d failed: %w", k.thread, r, err)
		}
	}
	return st, nil
}

// commitKey canonicalizes a committed sequence for the report's digest table:
// "thread:txid" pairs in commit-marker activation order. Distinct designs are
// only comparable where these keys coincide — the same transactions committed
// in the same serialization order.
func commitKey(commits []txKey) string {
	if len(commits) == 0 {
		return "-"
	}
	var b strings.Builder
	for i, k := range commits {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d:%d", k.thread, k.txid)
	}
	return b.String()
}

// heapDigest summarizes the workload-visible heap (lines at or above
// wal.HeapBase) order-independently: XOR of per-line mixes, so map-ordered
// page iteration and all-zero lines that only one design ever touched cannot
// perturb it.
func heapDigest(st *memdev.Store) uint64 {
	var d uint64
	st.ForEachLine(func(addr uint64, data memdev.Line) {
		if addr < wal.HeapBase {
			return
		}
		zero := true
		for _, w := range data {
			if w != 0 {
				zero = false
				break
			}
		}
		if zero {
			return
		}
		h := runner.Mix64(addr)
		for _, w := range data {
			h = runner.Mix64(h ^ w)
		}
		d ^= h
	})
	return d
}

// CrossCheck compares differential reports across designs: runs that share a
// workload shape and run seed must produce the same recovered heap digest for
// every committed sequence they both observed. It is the fleet-level half of
// the differential oracle — the per-point replay check catches a design
// diverging from ground truth; this catches two designs diverging from each
// other even if both sweeps were sampled at different points.
func CrossCheck(reports []*Report) error {
	type origin struct {
		design string
		digest string
	}
	groups := make(map[string]map[string]origin)
	for _, r := range reports {
		if r == nil || !r.Differential || len(r.CommitDigests) == 0 {
			continue
		}
		gk := fmt.Sprintf("%s|%d|%d|%d|%d", r.Workload, r.Cores, r.TxPerCore, r.OpsPerTx, r.RunSeed)
		m := groups[gk]
		if m == nil {
			m = make(map[string]origin)
			groups[gk] = m
		}
		for ck, dg := range r.CommitDigests {
			prev, ok := m[ck]
			if !ok {
				m[ck] = origin{design: r.Design, digest: dg}
				continue
			}
			if prev.digest != dg {
				return fmt.Errorf("crashtest: differential oracle: designs %s and %s disagree on the recovered heap for committed sequence [%s] (%s workload: digests %s vs %s)",
					prev.design, r.Design, ck, r.Workload, prev.digest, dg)
			}
		}
	}
	return nil
}
