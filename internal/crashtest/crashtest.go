// Package crashtest is the crash-point exploration subsystem: exhaustive
// durability torture testing for the simulated machine.
//
// The repo's original crash tests prove crash consistency at one hand-picked
// instant (after each core's last committed-but-incomplete transaction). This
// package proves it at *every* instant: a counting pass runs the workload once
// with a PersistObserver installed on the memory controller, numbering every
// durable write (redo/undo appends, commit markers, sentinels, in-place
// write-backs, log truncations) as a crash point; the explorer then re-runs
// the identical workload once per selected point k, snapshots the persistent
// image just before durable write k applies — exactly the image a power
// failure at that instant leaves behind, with all volatile state and
// not-yet-persisted writes dropped — optionally tears the in-flight write by
// applying a prefix of its words, runs recovery.Recover on the snapshot, and
// checks three oracles:
//
//  1. invariants — the workload's own Verify holds on the recovered image;
//  2. prefix consistency — the recovered image equals a reference image
//     computed *independently of the durable logs*, from the full persist
//     trace: every transaction whose commit record persisted before k has its
//     redo effects applied (in global persist order), every uncommitted
//     undo-logged transaction is rolled back, and nothing else changed;
//  3. idempotency — running recovery a second time replays and rolls back
//     nothing and leaves the image bit-identical.
//
// Exploration fans the points out across the internal/runner worker pool;
// seeds derive from the configuration content exactly as experiment cells do,
// so any reported point is reproducible from its index alone (the
// dhtm-crashtest command's -point flag).
package crashtest

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"dhtm/internal/memdev"
	"dhtm/internal/obs"
	"dhtm/internal/registry"
	"dhtm/internal/runner"
	"dhtm/internal/txn"
)

// Exploration metrics land in obs.Default, the process-wide telemetry plane.
var (
	metricPoints = obs.Default.Counter("dhtm_crashtest_points_total",
		"Crash points selected for exploration.")
	metricImages = obs.Default.Counter("dhtm_crashtest_crash_images_total",
		"Crash images explored (points × adversary masks).")
	metricMasksPerPoint = obs.Default.Histogram("dhtm_crashtest_masks_per_point",
		"Adversary masks fanned out per crash point.", obs.ExpBuckets(1, 2, 12))
	metricPanics = obs.Default.Counter("dhtm_crashtest_panic_recoveries_total",
		"Panics recovered inside point exploration (each is also an oracle failure).")
	metricPhases = obs.CellPhaseHistograms(obs.Default)

	// metricOracleFailures has one fixed series per failure class; the label
	// value is the prefix explorePoint stamps on PointResult.Err.
	metricOracleFailures = func() map[string]*obs.Counter {
		m := make(map[string]*obs.Counter)
		for _, o := range []string{"invariant", "prefix", "idempotency", "differential", "recovery", "determinism", "panic", "other"} {
			m[o] = obs.Default.Counter("dhtm_crashtest_oracle_failures_total",
				"Crash images that violated an oracle, by failure class.", obs.L("oracle", o))
		}
		return m
	}()
)

// oracleLabel maps a PointResult.Err to its metric label: the text before the
// first colon, with the " oracle" suffix dropped.
func oracleLabel(errStr string) string {
	head, _, ok := strings.Cut(errStr, ":")
	if !ok {
		return "other"
	}
	head = strings.TrimSuffix(head, " oracle")
	if _, known := metricOracleFailures[head]; !known {
		return "other"
	}
	return head
}

// Selection chooses which crash points of the persist-event space to explore.
type Selection struct {
	// Mode is "all" (exhaustive, the default), "stride" (every Stride-th
	// point), "random" (Samples points drawn from a seed-derived stream) or
	// "point" (the single point Point, the repro mode).
	Mode string `json:"mode"`
	// Stride is the step between explored points in stride mode; when 0,
	// Samples picks the stride so roughly Samples points are explored.
	Stride int `json:"stride,omitempty"`
	// Samples is the target point count for random mode (and for stride mode
	// when Stride is 0).
	Samples int `json:"samples,omitempty"`
	// Point is the single crash point explored in point mode.
	Point int `json:"point,omitempty"`
	// Mask, in point mode with a reordering window, replays exactly one
	// adversary mask (hex or decimal, e.g. "0x2a") instead of the adversary's
	// own enumeration — the repro mode for reordered crash images. Bit i of
	// the mask retires the i-th in-flight write of the point's window.
	Mask string `json:"mask,omitempty"`
}

// AdversaryConfig parameterises the persist-queue reordering adversary. The
// zero value models a strictly ordered queue: every crash image is an exact
// prefix of the persist-event sequence, bit-for-bit the pre-adversary
// behavior.
type AdversaryConfig struct {
	// Window is the reordering window W of the modelled persist queue: at a
	// crash, any subset of the last W non-drain writes may have failed to
	// retire. 0 disables reordering.
	Window int `json:"reorder_window,omitempty"`
	// Mode selects the subset enumeration per crash point: "exhaustive"
	// (every subset, 2^n per point), "sample" (Samples seed-derived subsets)
	// or "auto"/"" (exhaustive for windows up to 6, sampled beyond).
	Mode string `json:"mode,omitempty"`
	// Samples bounds the subsets per point in sample mode (0 = 16).
	Samples int `json:"samples,omitempty"`
}

// Validate rejects adversary configurations the explorer cannot honour.
func (a AdversaryConfig) Validate() error {
	if a.Window < 0 || a.Window > memdev.MaxAdversaryWindow {
		return fmt.Errorf("crashtest: reorder window %d outside [0,%d]", a.Window, memdev.MaxAdversaryWindow)
	}
	switch a.Mode {
	case "", "auto", "exhaustive", "sample":
	default:
		return fmt.Errorf("crashtest: unknown adversary mode %q (valid: auto, exhaustive, sample)", a.Mode)
	}
	if a.Mode == "exhaustive" && a.Window > 12 {
		return fmt.Errorf("crashtest: exhaustive enumeration of a %d-write window is intractable (max 12)", a.Window)
	}
	if a.Samples < 0 {
		return fmt.Errorf("crashtest: adversary samples must be >= 0")
	}
	return nil
}

// Config parameterises one exploration.
type Config struct {
	// Design is the transactional design to torture. Only designs whose
	// durability protocol recovery.Recover understands are accepted — see
	// Supported.
	Design string `json:"design"`
	// Workload names the benchmark driven during the run.
	Workload string `json:"workload"`
	// Cores is the simulated core count (0 = 4).
	Cores int `json:"cores"`
	// TxPerCore is the number of transactions each core issues (0 = 4).
	TxPerCore int `json:"tx_per_core"`
	// OpsPerTx overrides the workload's per-transaction operation count when
	// > 0; smaller transactions shrink the persist-event space, which keeps
	// exhaustive sweeps fast.
	OpsPerTx int `json:"ops_per_tx,omitempty"`
	// Seed is the base seed; the run seed derives from it and the
	// configuration content exactly as runner cells derive theirs (0 = the
	// runner default).
	Seed int64 `json:"seed"`
	// Torn additionally tears the in-flight write at each crash point: a
	// seed-derived prefix of its words reaches memory, modelling a line torn
	// mid-transfer. Single-word writes are 8-byte atomic and stay untorn.
	Torn bool `json:"torn"`
	// Adversary configures persist-queue reordering: with a window > 0 each
	// crash point fans out into one crash image per adversary mask.
	Adversary AdversaryConfig `json:"adversary,omitzero"`
	// Differential enables the cross-design oracle: each recovered image must
	// match a serial re-execution of the committed transaction sequence, and
	// the report carries per-commit-sequence heap digests so CrossCheck can
	// compare designs. The run seed then derives without the design name, so
	// every design drives the identical transaction stream.
	Differential bool `json:"differential,omitempty"`
	// Points selects the crash points to explore.
	Points Selection `json:"points"`
	// Factory, when non-nil, builds the runtime instead of the design
	// registry — the hook test fixtures use to torture deliberately broken
	// designs that the registry refuses to expose. Design then only labels
	// the report (and, unless Differential, still salts the run seed).
	Factory func(*txn.Env) (txn.Runtime, error) `json:"-"`
	// Parallel is the worker-pool size (<= 0 = GOMAXPROCS).
	Parallel int `json:"-"`
	// Progress, when non-nil, is called after each explored point.
	Progress func(done, total int) `json:"-"`
}

// Supported lists the designs the explorer accepts: those the registry
// marks crash-safe, i.e. whose durability goes through the hardware
// write-ahead logs that recovery.Recover replays. SO and sdTM model
// Mnemosyne-style software logging whose in-place persistence is deferred
// past the simulated window (their logs truncate before data reaches
// memory), so arbitrary-point recovery is undefined for them by
// construction; NP is volatile; DHTM-nobuf emits word-granular records
// whose line-aligned case recovery cannot yet distinguish from full lines.
func Supported() []string {
	return registry.CrashSafeDesignNames()
}

// Validate rejects selections that could never resolve against any
// persist-event space — the pre-run subset of pickPoints' checks, so
// submit-time validation (scenario compilation, serve job specs) can fail
// fast instead of queueing an exploration that dies after its counting
// pass.
func (s Selection) Validate() error {
	switch s.Mode {
	case "", "all":
	case "stride":
		if s.Stride <= 0 && s.Samples <= 0 {
			return fmt.Errorf("crashtest: stride selection needs Stride or Samples")
		}
	case "random":
		if s.Samples <= 0 {
			return fmt.Errorf("crashtest: random selection needs Samples > 0")
		}
	case "point":
		if s.Point < 0 {
			return fmt.Errorf("crashtest: point selection needs Point >= 0")
		}
	default:
		return fmt.Errorf("crashtest: unknown selection mode %q (valid: all, stride, random, point)", s.Mode)
	}
	if s.Mask != "" {
		if s.Mode != "point" {
			return fmt.Errorf("crashtest: a mask replay requires point mode, not %q", s.Mode)
		}
		if _, err := parseMask(s.Mask); err != nil {
			return err
		}
	}
	return nil
}

// parseMask parses an adversary mask (hex with 0x prefix, or decimal).
func parseMask(s string) (uint64, error) {
	m, err := strconv.ParseUint(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("crashtest: invalid adversary mask %q: %w", s, err)
	}
	return m, nil
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Cores <= 0 {
		c.Cores = 4
	}
	if c.TxPerCore <= 0 {
		c.TxPerCore = 4
	}
	if c.Seed == 0 {
		c.Seed = runner.DefaultSeed
	}
	if c.Points.Mode == "" {
		c.Points.Mode = "all"
	}
	return c
}

// validate rejects configurations the explorer cannot torture meaningfully.
func (c Config) validate() error {
	if err := c.Points.Validate(); err != nil {
		return err
	}
	if err := c.Adversary.Validate(); err != nil {
		return err
	}
	if c.Factory != nil {
		// A fixture bypasses the registry, so supportedness is the caller's
		// responsibility.
		return nil
	}
	for _, d := range Supported() {
		if c.Design == d {
			return nil
		}
	}
	return fmt.Errorf("crashtest: design %q is not supported (supported: %v)", c.Design, Supported())
}

// RunSeed returns the content-derived seed the exploration's runs use, the
// same derivation experiment cells use, so a point's workload can also be
// replayed standalone under dhtm-sim.
func (c Config) RunSeed() int64 {
	c = c.withDefaults()
	cell := runner.Cell{
		Design: c.Design, Workload: c.Workload, Cores: c.Cores, TxPerCore: c.TxPerCore,
	}
	if c.Differential {
		// The differential oracle compares designs on the same transaction
		// stream, so the seed must not depend on the design name.
		cell.Design = ""
	}
	return runner.DeriveSeed(c.Seed, cell)
}

// adversary resolves the configured adversary for this run.
func (c Config) adversary(runSeed int64) memdev.Adversary {
	samples := c.Adversary.Samples
	if samples <= 0 {
		samples = 16
	}
	switch c.Adversary.Mode {
	case "exhaustive":
		return memdev.ExhaustiveAdversary{}
	case "sample":
		return memdev.SampledAdversary{Seed: uint64(runSeed), Samples: samples}
	default: // "", "auto"
		if c.Adversary.Window <= 6 {
			return memdev.ExhaustiveAdversary{}
		}
		return memdev.SampledAdversary{Seed: uint64(runSeed), Samples: samples}
	}
}

// PointResult is the outcome of exploring one crash point.
type PointResult struct {
	// Point is the crash point's index in the persist-event space.
	Point int `json:"point"`
	// Class is the traffic class of the interrupted durable write.
	Class string `json:"class"`
	// TornWords is how many words of the in-flight write reached memory
	// (torn mode only; 0 means the write was lost entirely).
	TornWords int `json:"torn_words,omitempty"`
	// Window is the number of in-flight writes at this point (reordering
	// adversary only) and Mask the hex subset of them that retired — bit i
	// covers the i-th in-flight write. Both are omitted for strictly ordered
	// (window-0) crash images.
	Window int    `json:"window,omitempty"`
	Mask   string `json:"mask,omitempty"`
	// Replayed and RolledBack echo the recovery report at this point.
	Replayed   int `json:"replayed"`
	RolledBack int `json:"rolled_back"`
	// Err names the violated oracle; empty when every oracle passed.
	Err string `json:"error,omitempty"`

	// commitKey and digest feed the report's differential digest table.
	commitKey string
	digest    uint64
}

// Report aggregates one exploration.
type Report struct {
	Design    string `json:"design"`
	Workload  string `json:"workload"`
	Cores     int    `json:"cores"`
	TxPerCore int    `json:"tx_per_core"`
	OpsPerTx  int    `json:"ops_per_tx,omitempty"`
	BaseSeed  int64  `json:"base_seed"`
	RunSeed   int64  `json:"run_seed"`
	Torn      bool   `json:"torn"`
	// Adversary echoes the reordering configuration; Differential whether
	// the cross-design oracle ran. Both are omitted in the default
	// strictly-ordered, single-design mode, keeping window-0 reports
	// byte-identical to pre-adversary ones.
	Adversary    AdversaryConfig `json:"adversary,omitzero"`
	Differential bool            `json:"differential,omitempty"`

	// TotalPoints is the size of the run's persist-event space; Explored is
	// how many of those points were crashed and recovered. With a reordering
	// window each point fans out into one crash image per adversary mask;
	// Tasks counts those images (omitted at window 0, where it equals
	// Explored). Failed counts failing images, and the histograms cover the
	// passing ones, so ReplayHist sums to Tasks - Failed.
	TotalPoints int `json:"total_points"`
	Explored    int `json:"explored"`
	Tasks       int `json:"tasks,omitempty"`
	Failed      int `json:"failed"`

	// EventsByClass counts the full event space by traffic class.
	EventsByClass map[string]int `json:"events_by_class"`
	// ReplayHist[r] counts explored points whose recovery replayed r
	// committed-but-incomplete transactions; RollbackHist likewise for
	// rollbacks.
	ReplayHist   map[int]int `json:"replay_hist"`
	RollbackHist map[int]int `json:"rollback_hist"`

	// Failures lists every failing point in ascending point order;
	// FirstFailure duplicates the first for quick access and Repro is the
	// exact command that re-explores it (including the adversary window and
	// mask when reordering was in play).
	Failures     []PointResult `json:"failures,omitempty"`
	FirstFailure *PointResult  `json:"first_failure,omitempty"`
	Repro        string        `json:"repro,omitempty"`

	// CommitDigests, in differential mode, maps each observed committed
	// transaction sequence (canonical "thread:txid,..." activation order) to
	// the recovered heap digest all of its crash images produced — the table
	// CrossCheck compares across designs.
	CommitDigests map[string]string `json:"commit_digests,omitempty"`

	ElapsedNS int64 `json:"elapsed_ns"`
}

// Explore measures the configuration's persist-event space and crash-tests
// the selected points, returning the aggregated report. Oracle violations are
// recorded per point, not returned as an error; use Torture to fail on them.
// Cancelling ctx stops the exploration after the in-flight points finish and
// returns the context's error instead of a partial (and therefore
// misleading) report.
func Explore(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	runSeed := cfg.RunSeed()
	start := time.Now()

	trace, err := cfg.countPass(runSeed)
	if err != nil {
		return nil, err
	}
	points, err := pickPoints(len(trace), cfg.Points, runSeed)
	if err != nil {
		return nil, err
	}
	tasks, err := cfg.buildTasks(trace, points, runSeed)
	if err != nil {
		return nil, err
	}
	var dc *diffCtx
	if cfg.Differential {
		if dc, err = cfg.newDiffCtx(runSeed, trace); err != nil {
			return nil, err
		}
	}

	results := make([]PointResult, len(tasks))
	var mu sync.Mutex
	done := 0
	runner.ForEach(ctx, len(tasks), cfg.Parallel, func(i int) {
		results[i] = cfg.explorePoint(runSeed, trace, tasks[i], dc)
		if cfg.Progress != nil {
			mu.Lock()
			done++
			cfg.Progress(done, len(tasks))
			mu.Unlock()
		}
	})
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("crashtest: exploration cancelled: %w", err)
	}
	metricPoints.Add(uint64(len(points)))
	metricImages.Add(uint64(len(tasks)))

	rep := &Report{
		Design: cfg.Design, Workload: cfg.Workload, Cores: cfg.Cores,
		TxPerCore: cfg.TxPerCore, OpsPerTx: cfg.OpsPerTx,
		BaseSeed: cfg.Seed, RunSeed: runSeed, Torn: cfg.Torn,
		Adversary:     cfg.Adversary,
		Differential:  cfg.Differential,
		TotalPoints:   len(trace),
		Explored:      len(points),
		EventsByClass: make(map[string]int),
		ReplayHist:    make(map[int]int),
		RollbackHist:  make(map[int]int),
	}
	if cfg.Adversary.Window > 0 {
		rep.Tasks = len(tasks)
	}
	if cfg.Differential {
		rep.CommitDigests = make(map[string]string)
	}
	for _, ev := range trace {
		rep.EventsByClass[ev.class.String()]++
	}
	for _, r := range results {
		if r.Err != "" {
			rep.Failed++
			rep.Failures = append(rep.Failures, r)
			o := oracleLabel(r.Err)
			metricOracleFailures[o].Inc()
			if o == "panic" {
				metricPanics.Inc()
			}
			continue
		}
		rep.ReplayHist[r.Replayed]++
		rep.RollbackHist[r.RolledBack]++
		if rep.CommitDigests != nil && r.commitKey != "" {
			rep.CommitDigests[r.commitKey] = fmt.Sprintf("%016x", r.digest)
		}
	}
	if len(rep.Failures) > 0 {
		first := rep.Failures[0]
		rep.FirstFailure = &first
		rep.Repro = cfg.reproCommand(first)
	}
	rep.ElapsedNS = time.Since(start).Nanoseconds()
	return rep, nil
}

// task is one crash image to explore: a crash point plus the adversary's
// choice of which in-flight writes of its window [wStart, point) retired.
type task struct {
	point  int
	wStart uint64
	mask   uint64
}

// buildTasks fans the selected crash points out into crash images. Window
// starts come from replaying the recorded trace's traffic classes through
// the persist-queue model; at window 0 every window is empty and each point
// yields exactly its historical prefix image.
func (c Config) buildTasks(trace []traceEvent, points []int, runSeed int64) ([]task, error) {
	wStarts := make([]uint64, len(trace))
	q := memdev.NewPersistQueue(c.Adversary.Window)
	for i, ev := range trace {
		wStarts[i] = q.WindowStart(uint64(i), ev.class)
		q.Observe(uint64(i), ev.class)
	}
	if c.Points.Mask != "" {
		// Replay mode: the single selected point with exactly this mask.
		m, err := parseMask(c.Points.Mask)
		if err != nil {
			return nil, err
		}
		p := points[0]
		n := p - int(wStarts[p])
		if n < 64 && m >= 1<<n {
			return nil, fmt.Errorf("crashtest: mask %s has bits outside the %d-write in-flight window at point %d", c.Points.Mask, n, p)
		}
		return []task{{point: p, wStart: wStarts[p], mask: m}}, nil
	}
	adv := c.adversary(runSeed)
	var tasks []task
	for _, p := range points {
		n := p - int(wStarts[p])
		masks := adv.Masks(uint64(p), n)
		metricMasksPerPoint.Observe(float64(len(masks)))
		for _, m := range masks {
			tasks = append(tasks, task{point: p, wStart: wStarts[p], mask: m})
		}
	}
	return tasks, nil
}

// Torture is the sweep-test entry point: it explores the configured space and
// returns an error (alongside the report) if any point violated an oracle.
func Torture(ctx context.Context, cfg Config) (*Report, error) {
	rep, err := Explore(ctx, cfg)
	if err != nil {
		return nil, err
	}
	if rep.Failed > 0 {
		f := rep.FirstFailure
		return rep, fmt.Errorf("crashtest: %s/%s: %d of %d crash points failed; first at point %d (%s): %s — reproduce: %s",
			rep.Design, rep.Workload, rep.Failed, rep.Explored, f.Point, f.Class, f.Err, rep.Repro)
	}
	return rep, nil
}

// reproCommand renders the exact dhtm-crashtest invocation that re-explores a
// single failing crash image of this configuration: the point, and — when the
// reordering adversary was in play — the window and the exact mask.
func (c Config) reproCommand(p PointResult) string {
	cmd := fmt.Sprintf("dhtm-crashtest -design %s -workload %s -cores %d -tx %d",
		c.Design, c.Workload, c.Cores, c.TxPerCore)
	if c.OpsPerTx > 0 {
		cmd += fmt.Sprintf(" -ops %d", c.OpsPerTx)
	}
	cmd += fmt.Sprintf(" -seed %d", c.Seed)
	if c.Torn {
		cmd += " -torn"
	}
	if c.Differential {
		cmd += " -differential"
	}
	cmd += fmt.Sprintf(" -point %d", p.Point)
	if c.Adversary.Window > 0 {
		cmd += fmt.Sprintf(" -window %d", c.Adversary.Window)
		mask := p.Mask
		if mask == "" {
			mask = "0x0"
		}
		cmd += " -mask " + mask
	}
	return cmd
}

// pickPoints resolves a Selection against a persist-event space of n points
// into a sorted, deduplicated index list.
func pickPoints(n int, sel Selection, runSeed int64) ([]int, error) {
	if n == 0 {
		return nil, fmt.Errorf("crashtest: the run produced no persist events")
	}
	switch sel.Mode {
	case "", "all":
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out, nil
	case "stride":
		stride := sel.Stride
		if stride <= 0 {
			if sel.Samples <= 0 {
				return nil, fmt.Errorf("crashtest: stride selection needs Stride or Samples")
			}
			stride = (n + sel.Samples - 1) / sel.Samples
			if stride < 1 {
				stride = 1
			}
		}
		var out []int
		for i := 0; i < n; i += stride {
			out = append(out, i)
		}
		return out, nil
	case "random":
		if sel.Samples <= 0 {
			return nil, fmt.Errorf("crashtest: random selection needs Samples > 0")
		}
		if sel.Samples >= n {
			return pickPoints(n, Selection{Mode: "all"}, runSeed)
		}
		seen := make(map[int]bool, sel.Samples)
		var out []int
		state := uint64(runSeed)
		for len(out) < sel.Samples {
			state = runner.Mix64(state + 0x9e3779b97f4a7c15)
			p := int(state % uint64(n))
			if !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
		sort.Ints(out)
		return out, nil
	case "point":
		if sel.Point < 0 || sel.Point >= n {
			return nil, fmt.Errorf("crashtest: point %d outside the persist-event space [0,%d)", sel.Point, n)
		}
		return []int{sel.Point}, nil
	default:
		return nil, fmt.Errorf("crashtest: unknown selection mode %q (all, stride, random, point)", sel.Mode)
	}
}
