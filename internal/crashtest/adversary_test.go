package crashtest

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"

	"dhtm/internal/baselines"
	"dhtm/internal/txn"
)

// TestAdversaryConfigValidate covers the adversary knob validation.
func TestAdversaryConfigValidate(t *testing.T) {
	for _, ok := range []AdversaryConfig{
		{}, {Window: 4}, {Window: 16, Mode: "sample", Samples: 32},
		{Window: 6, Mode: "exhaustive"}, {Window: 2, Mode: "auto"},
	} {
		if err := ok.Validate(); err != nil {
			t.Errorf("%+v rejected: %v", ok, err)
		}
	}
	for _, bad := range []AdversaryConfig{
		{Window: -1}, {Window: 17}, {Mode: "chaos"},
		{Window: 13, Mode: "exhaustive"}, {Samples: -1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("%+v accepted", bad)
		}
	}
	if err := (Selection{Mode: "all", Mask: "0x3"}).Validate(); err == nil {
		t.Error("mask accepted outside point mode")
	}
	if err := (Selection{Mode: "point", Point: 1, Mask: "xyz"}).Validate(); err == nil {
		t.Error("unparseable mask accepted")
	}
	if err := (Selection{Mode: "point", Point: 1, Mask: "0x1f"}).Validate(); err != nil {
		t.Errorf("valid mask rejected: %v", err)
	}
}

// TestWindowZeroReportCompat pins the window-0 report schema to the
// pre-adversary one: a plain sweep must not grow any adversary-era JSON keys,
// so stored reports and their digests stay byte-compatible.
func TestWindowZeroReportCompat(t *testing.T) {
	rep, err := Explore(context.Background(), Config{
		Design: "DHTM", Workload: "queue", Cores: 2, TxPerCore: 1, OpsPerTx: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"adversary", "differential", "tasks", "commit_digests"} {
		if _, ok := m[key]; ok {
			t.Errorf("window-0 report leaks new key %q", key)
		}
	}
}

// TestReorderedSweepAndMaskReplay runs a small exhaustive window-2 sweep,
// checks every crash image recovers cleanly, then replays one reordered
// image through the point+mask repro path and checks it resolves to exactly
// one task.
func TestReorderedSweepAndMaskReplay(t *testing.T) {
	cfg := Config{
		Design: "DHTM", Workload: "queue", Cores: 2, TxPerCore: 1, OpsPerTx: 4,
		Adversary: AdversaryConfig{Window: 2, Mode: "exhaustive"},
	}
	rep, err := Explore(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 {
		t.Fatalf("window-2 sweep failed %d images; first: %+v\nrepro: %s", rep.Failed, rep.FirstFailure, rep.Repro)
	}
	if rep.Tasks <= rep.Explored {
		t.Fatalf("window-2 sweep fanned %d points into only %d tasks — the adversary never engaged", rep.Explored, rep.Tasks)
	}

	// Find a point with a non-empty window and replay one proper-subset mask.
	c := cfg.withDefaults()
	runSeed := c.RunSeed()
	trace, err := c.countPass(runSeed)
	if err != nil {
		t.Fatal(err)
	}
	points, err := pickPoints(len(trace), c.Points, runSeed)
	if err != nil {
		t.Fatal(err)
	}
	tasks, err := c.buildTasks(trace, points, runSeed)
	if err != nil {
		t.Fatal(err)
	}
	var pick *task
	for i := range tasks {
		if n := tasks[i].point - int(tasks[i].wStart); n > 0 && tasks[i].mask != 0 && tasks[i].mask != 1<<n-1 {
			pick = &tasks[i]
			break
		}
	}
	if pick == nil {
		t.Fatal("no proper-subset task in the sweep")
	}
	replayCfg := cfg
	replayCfg.Points = Selection{Mode: "point", Point: pick.point, Mask: fmt.Sprintf("%#x", pick.mask)}
	rrep, err := Explore(context.Background(), replayCfg)
	if err != nil {
		t.Fatal(err)
	}
	if rrep.Explored != 1 || rrep.Tasks != 1 || rrep.Failed != 0 {
		t.Fatalf("mask replay: explored=%d tasks=%d failed=%d, want 1/1/0", rrep.Explored, rrep.Tasks, rrep.Failed)
	}

	// A mask with bits outside the point's window is rejected up front.
	replayCfg.Points.Mask = "0xffff"
	if _, err := Explore(context.Background(), replayCfg); err == nil || !strings.Contains(err.Error(), "outside") {
		t.Fatalf("oversized mask accepted: %v", err)
	}
}

// panicRuntime wraps a real runtime and panics on its nth Run call.
type panicRuntime struct {
	txn.Runtime
	mu    sync.Mutex
	calls int
	at    int
}

func (p *panicRuntime) Run(core int, c txn.Clock, tr *txn.Transaction) txn.ExecResult {
	p.mu.Lock()
	p.calls++
	n := p.calls
	p.mu.Unlock()
	if n == p.at {
		panic("seeded crashtest panic")
	}
	return p.Runtime.Run(core, c, tr)
}

// TestPanicHardening seeds a runtime that panics partway through every
// crash-point re-run (the counting pass runs the real design, so the event
// space is healthy) and checks the sweep survives: no process crash, every
// poisoned point reported as failed with its panic and mask, and a normal
// exploration still runs cleanly afterwards — the shared snapshot was not
// corrupted.
func TestPanicHardening(t *testing.T) {
	var mu sync.Mutex
	runs := 0
	cfg := Config{
		Design: "ATOM", Workload: "queue", Cores: 2, TxPerCore: 2, OpsPerTx: 4,
		Adversary: AdversaryConfig{Window: 1, Mode: "exhaustive"},
		Points:    Selection{Mode: "stride", Samples: 6},
		Factory: func(env *txn.Env) (txn.Runtime, error) {
			rt := baselines.NewATOM(env)
			mu.Lock()
			runs++
			first := runs == 1
			mu.Unlock()
			if first {
				return rt, nil // counting pass
			}
			return &panicRuntime{Runtime: rt, at: 3}, nil
		},
	}
	rep, err := Explore(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed == 0 {
		t.Fatal("panicking re-runs reported no failures")
	}
	sawMask := false
	for _, f := range rep.Failures {
		if !strings.HasPrefix(f.Err, "panic: seeded crashtest panic") {
			t.Fatalf("point %d failed for the wrong reason: %s", f.Point, f.Err)
		}
		if f.Mask != "" {
			sawMask = true
		}
	}
	if !sawMask {
		t.Error("no failure carried its adversary mask")
	}
	if !strings.Contains(rep.Repro, "-mask") || !strings.Contains(rep.Repro, "-window 1") {
		t.Errorf("repro command lacks the adversary state: %s", rep.Repro)
	}

	// The shared post-setup snapshot must be intact: the same configuration
	// without the poisoned factory explores cleanly.
	clean := cfg
	clean.Factory = nil
	crep, err := Explore(context.Background(), clean)
	if err != nil {
		t.Fatal(err)
	}
	if crep.Failed != 0 {
		t.Fatalf("sweep after panics failed %d images: %+v", crep.Failed, crep.FirstFailure)
	}
}

// TestDifferentialCatchesStaleUndo is the oracle's teeth test: the
// StaleUndoATOM fixture reuses stale undo pre-images, which every
// self-referential oracle accepts — the recovered image is a structurally
// valid former state (Verify passes) and recovery faithfully applies the
// poisoned records it was given (the prefix oracle agrees, idempotency
// holds). The differential oracle's serial re-execution of the committed
// transactions catches it. Seed 6 deterministically produces the triggering
// schedule (one core re-logging a line another commit updated in between).
func TestDifferentialCatchesStaleUndo(t *testing.T) {
	cfg := Config{
		Design: "StaleUndoATOM", Workload: "hash", Cores: 4, TxPerCore: 4, OpsPerTx: 8,
		Seed:         6,
		Differential: true,
		Factory: func(env *txn.Env) (txn.Runtime, error) {
			return baselines.NewStaleUndoATOM(env), nil
		},
	}
	rep, err := Explore(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed == 0 {
		t.Fatal("differential oracle missed the stale-undo fixture")
	}
	for _, f := range rep.Failures {
		if !strings.HasPrefix(f.Err, "differential oracle:") {
			t.Fatalf("point %d caught by %q — the fixture is supposed to fool every non-differential oracle", f.Point, f.Err)
		}
	}
	if !strings.Contains(rep.Repro, "-differential") {
		t.Errorf("repro command misses -differential: %s", rep.Repro)
	}

	// Without the differential oracle the same broken design sails through:
	// that blindness is exactly what the oracle exists to fix.
	blind := cfg
	blind.Differential = false
	brep, err := Explore(context.Background(), blind)
	if err != nil {
		t.Fatal(err)
	}
	if brep.Failed != 0 {
		t.Fatalf("non-differential sweep unexpectedly failed %d points: %+v", brep.Failed, brep.FirstFailure)
	}
}

// TestCrossCheck covers the report-level differential comparison.
func TestCrossCheck(t *testing.T) {
	mk := func(design, digest string) *Report {
		return &Report{
			Design: design, Workload: "hash", Cores: 2, TxPerCore: 2, RunSeed: 99,
			Differential:  true,
			CommitDigests: map[string]string{"0:1,1:1": digest},
		}
	}
	if err := CrossCheck([]*Report{mk("DHTM", "aa"), mk("ATOM", "aa")}); err != nil {
		t.Fatalf("agreeing designs flagged: %v", err)
	}
	err := CrossCheck([]*Report{mk("DHTM", "aa"), mk("ATOM", "bb")})
	if err == nil || !strings.Contains(err.Error(), "disagree") {
		t.Fatalf("disagreeing designs not flagged: %v", err)
	}
	// Different run seeds are different experiments, never compared.
	other := mk("ATOM", "bb")
	other.RunSeed = 100
	if err := CrossCheck([]*Report{mk("DHTM", "aa"), other}); err != nil {
		t.Fatalf("distinct run seeds compared: %v", err)
	}
	// Non-differential reports are ignored.
	plain := mk("ATOM", "bb")
	plain.Differential = false
	if err := CrossCheck([]*Report{mk("DHTM", "aa"), plain}); err != nil {
		t.Fatalf("non-differential report compared: %v", err)
	}
}

// TestDifferentialSweepAgrees runs the differential oracle over two real
// designs on the same (design-independent) seed and checks both sweeps pass
// and CrossCheck accepts them — recovered heaps agree wherever the designs
// observed the same committed sequence.
func TestDifferentialSweepAgrees(t *testing.T) {
	var reports []*Report
	for _, d := range []string{"DHTM", "LogTM-ATOM"} {
		cfg := Config{
			Design: d, Workload: "hash", Cores: 2, TxPerCore: 2, OpsPerTx: 4,
			Adversary:    AdversaryConfig{Window: 2, Mode: "exhaustive"},
			Differential: true,
		}
		rep, err := Explore(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Failed != 0 {
			t.Fatalf("%s: %d failures; first: %+v", d, rep.Failed, rep.FirstFailure)
		}
		if len(rep.CommitDigests) == 0 {
			t.Fatalf("%s: differential sweep recorded no digests", d)
		}
		reports = append(reports, rep)
	}
	if reports[0].RunSeed != reports[1].RunSeed {
		t.Fatalf("differential run seeds diverged: %d vs %d", reports[0].RunSeed, reports[1].RunSeed)
	}
	if err := CrossCheck(reports); err != nil {
		t.Fatal(err)
	}
}
