package crashtest

import (
	"context"
	"strings"
	"testing"
)

// TestPickPoints covers the selection modes over a small space.
func TestPickPoints(t *testing.T) {
	all, err := pickPoints(5, Selection{Mode: "all"}, 1)
	if err != nil || len(all) != 5 || all[0] != 0 || all[4] != 4 {
		t.Fatalf("all: %v %v", all, err)
	}
	strided, err := pickPoints(10, Selection{Mode: "stride", Stride: 4}, 1)
	if err != nil || len(strided) != 3 || strided[2] != 8 {
		t.Fatalf("stride: %v %v", strided, err)
	}
	derived, err := pickPoints(100, Selection{Mode: "stride", Samples: 10}, 1)
	if err != nil || len(derived) != 10 {
		t.Fatalf("stride via samples: %v %v", derived, err)
	}
	rnd, err := pickPoints(100, Selection{Mode: "random", Samples: 7}, 42)
	if err != nil || len(rnd) != 7 {
		t.Fatalf("random: %v %v", rnd, err)
	}
	for i := 1; i < len(rnd); i++ {
		if rnd[i] <= rnd[i-1] {
			t.Fatalf("random points not sorted/unique: %v", rnd)
		}
	}
	rnd2, _ := pickPoints(100, Selection{Mode: "random", Samples: 7}, 42)
	for i := range rnd {
		if rnd[i] != rnd2[i] {
			t.Fatalf("random selection not seed-deterministic: %v vs %v", rnd, rnd2)
		}
	}
	single, err := pickPoints(10, Selection{Mode: "point", Point: 3}, 1)
	if err != nil || len(single) != 1 || single[0] != 3 {
		t.Fatalf("point: %v %v", single, err)
	}
	if _, err := pickPoints(10, Selection{Mode: "point", Point: 10}, 1); err == nil {
		t.Fatalf("out-of-range point accepted")
	}
	if _, err := pickPoints(10, Selection{Mode: "bogus"}, 1); err == nil {
		t.Fatalf("unknown mode accepted")
	}
	if _, err := pickPoints(0, Selection{Mode: "all"}, 1); err == nil {
		t.Fatalf("empty event space accepted")
	}
}

// TestUnsupportedDesign checks the explorer refuses designs whose durability
// recovery cannot replay (SO's software log truncates before data persists).
func TestUnsupportedDesign(t *testing.T) {
	_, err := Explore(context.Background(), Config{Design: "SO", Workload: "queue"})
	if err == nil || !strings.Contains(err.Error(), "not supported") {
		t.Fatalf("SO accepted: %v", err)
	}
}

// TestExploreSmall runs a tiny exhaustive exploration end to end and checks
// the report's bookkeeping is coherent.
func TestExploreSmall(t *testing.T) {
	rep, err := Explore(context.Background(), Config{
		Design: "DHTM", Workload: "queue", Cores: 2, TxPerCore: 1, OpsPerTx: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 {
		t.Fatalf("oracle failures on a tiny sweep: %+v", rep.Failures)
	}
	if rep.Explored != rep.TotalPoints {
		t.Fatalf("exhaustive mode explored %d of %d points", rep.Explored, rep.TotalPoints)
	}
	classTotal := 0
	for _, n := range rep.EventsByClass {
		classTotal += n
	}
	if classTotal != rep.TotalPoints {
		t.Fatalf("class histogram sums to %d, want %d", classTotal, rep.TotalPoints)
	}
	histTotal := 0
	for _, n := range rep.ReplayHist {
		histTotal += n
	}
	if histTotal != rep.Explored {
		t.Fatalf("replay histogram sums to %d, want %d", histTotal, rep.Explored)
	}
	if rep.RunSeed == 0 || rep.RunSeed == rep.BaseSeed {
		t.Fatalf("run seed not derived: base=%d run=%d", rep.BaseSeed, rep.RunSeed)
	}
}

// TestReproCommand checks a failure's repro command round-trips the
// configuration.
func TestReproCommand(t *testing.T) {
	cfg := Config{Design: "ATOM", Workload: "hash", Cores: 4, TxPerCore: 2, OpsPerTx: 8, Seed: 7, Torn: true}
	got := cfg.reproCommand(PointResult{Point: 123})
	want := "dhtm-crashtest -design ATOM -workload hash -cores 4 -tx 2 -ops 8 -seed 7 -torn -point 123"
	if got != want {
		t.Fatalf("repro command:\ngot  %s\nwant %s", got, want)
	}
	cfg.Adversary = AdversaryConfig{Window: 3}
	cfg.Differential = true
	got = cfg.reproCommand(PointResult{Point: 123, Window: 2, Mask: "0x2"})
	want += " -window 3 -mask 0x2"
	want = strings.Replace(want, " -point", " -differential -point", 1)
	if got != want {
		t.Fatalf("adversary repro command:\ngot  %s\nwant %s", got, want)
	}
}
