package hier

import (
	"dhtm/internal/cache"
	"dhtm/internal/memdev"
)

// FlushLine models a clwb issued by core for the line containing addr: the
// most up-to-date copy (L1, then LLC) is written back to persistent memory
// and left in the caches in a clean state. The returned cycle is when the
// data is durable; if no dirty copy exists the flush completes immediately.
func (h *Hierarchy) FlushLine(core int, addr uint64, at uint64) uint64 {
	la := h.Align(addr)
	if l := h.l1s[core].Peek(la); l != nil && l.Dirty {
		done := h.ctl.WriteLine(la, l.Data, at, memdev.TrafficData)
		l.Dirty = false
		if ll := h.llc.Peek(la); ll != nil {
			ll.Data = l.Data
			ll.Dirty = false
		}
		return done
	}
	if ll := h.llc.Peek(la); ll != nil && ll.Dirty {
		done := h.ctl.WriteLine(la, ll.Data, at, memdev.TrafficData)
		ll.Dirty = false
		return done
	}
	return at
}

// WriteBackL1Line writes core's L1 copy of the line containing addr back in
// place to persistent memory (and refreshes the inclusive LLC copy), clearing
// the transactional write bit and the dirty bit but keeping the line cached.
// This is the per-line step of DHTM's commit-completion phase. It reports
// whether the line was present.
func (h *Hierarchy) WriteBackL1Line(core int, addr uint64, at uint64) (uint64, bool) {
	la := h.Align(addr)
	l := h.l1s[core].Peek(la)
	if l == nil || !l.Valid() {
		return at, false
	}
	done := h.ctl.WriteLine(la, l.Data, at, memdev.TrafficData)
	l.W = false
	l.Dirty = false
	if ll := h.llc.Peek(la); ll != nil {
		ll.Data = l.Data
		ll.Dirty = false
	}
	return done, true
}

// WriteBackLLCLine writes the LLC copy of the line containing addr back in
// place to persistent memory, transitioning it to a clean, unowned state —
// the overflow-list processing step of DHTM's commit completion. It reports
// whether an LLC copy existed.
func (h *Hierarchy) WriteBackLLCLine(addr uint64, at uint64) (uint64, bool) {
	la := h.Align(addr)
	ll := h.llc.Peek(la)
	if ll == nil || !ll.Valid() {
		return at, false
	}
	done := at
	if ll.Dirty {
		done = h.ctl.WriteLine(la, ll.Data, at, memdev.TrafficData)
	}
	ll.Dirty = false
	ll.Sticky = false
	ll.Owner = cache.NoOwner
	ll.Sharers = 0
	ll.State = cache.Shared
	return done, true
}

// CompleteL1Line applies the functional effect of a commit-completion
// write-back whose timing was already reserved at commit: core's L1 copy of
// the line is written to persistent memory and to the inclusive LLC copy, and
// its transactional/dirty bits are cleared. No bandwidth is charged. It
// reports whether the line was present.
func (h *Hierarchy) CompleteL1Line(core int, addr uint64) bool {
	la := h.Align(addr)
	l := h.l1s[core].Peek(la)
	if l == nil || !l.Valid() {
		return false
	}
	h.ctl.PersistLine(la, l.Data, memdev.TrafficData)
	l.W = false
	l.Dirty = false
	if ll := h.llc.Peek(la); ll != nil {
		ll.Data = l.Data
		ll.Dirty = false
	}
	return true
}

// CompleteLLCLine applies the functional effect of completing an overflowed
// write-set line: the LLC copy is written to persistent memory and released
// to a clean, unowned state. No bandwidth is charged. It reports whether the
// line was present.
func (h *Hierarchy) CompleteLLCLine(addr uint64) bool {
	la := h.Align(addr)
	ll := h.llc.Peek(la)
	if ll == nil || !ll.Valid() {
		return false
	}
	h.ctl.PersistLine(la, ll.Data, memdev.TrafficData)
	ll.Dirty = false
	ll.Sticky = false
	ll.Owner = cache.NoOwner
	ll.Sharers = 0
	ll.State = cache.Shared
	return true
}

// InvalidateLLCLine drops the LLC copy of the line containing addr (the
// overflow-list processing step of DHTM's abort completion). The durable
// pre-transaction value remains in persistent memory.
func (h *Hierarchy) InvalidateLLCLine(addr uint64) {
	la := h.Align(addr)
	if ll := h.llc.Peek(la); ll != nil {
		ll.Reset()
	}
}

// InvalidateL1Line drops core's L1 copy of the line containing addr.
func (h *Hierarchy) InvalidateL1Line(core int, addr uint64) {
	h.l1s[core].Invalidate(h.Align(addr))
}

// ReleaseOwnership clears any stale directory ownership core holds on the
// line containing addr without touching the data. Designs use it when
// cleaning up after aborts so later accesses are not forwarded to an L1 that
// no longer has the line.
func (h *Hierarchy) ReleaseOwnership(core int, addr uint64) {
	la := h.Align(addr)
	if ll := h.llc.Peek(la); ll != nil && ll.Owner == core {
		ll.Owner = cache.NoOwner
		ll.Sticky = false
		if ll.State == cache.Modified {
			ll.State = cache.Shared
		}
	}
}

// LineSnapshot returns the most current value of the line containing addr,
// looking first at core's L1, then the LLC, then persistent memory. It is an
// untimed helper used by designs when composing log records.
func (h *Hierarchy) LineSnapshot(core int, addr uint64) memdev.Line {
	la := h.Align(addr)
	if l := h.l1s[core].Peek(la); l != nil && l.Valid() {
		return l.Data
	}
	if ll := h.llc.Peek(la); ll != nil && ll.Valid() {
		return ll.Data
	}
	return h.ctl.Store().ReadLine(la)
}

// PersistLineInPlace writes the given line value directly to persistent
// memory, charging bandwidth. Designs use it for completion work that is not
// tied to a cached copy (e.g. finishing a committed line that has been handed
// to another core).
func (h *Hierarchy) PersistLineInPlace(addr uint64, data memdev.Line, at uint64) uint64 {
	return h.ctl.WriteLine(h.Align(addr), data, at, memdev.TrafficData)
}
