// Package hier models the on-chip memory hierarchy of the simulated machine:
// per-core private L1 data caches and a shared, inclusive last-level cache
// (LLC) that holds the MESI directory (coherence state, owner and sharer
// vector per line), backed by the persistent-memory controller.
//
// Transactional behaviour is not hard-wired here. The hierarchy exposes the
// exact hook points the paper uses — a forwarded request arriving at an
// owning L1, a write-set line being evicted from the L1, an LLC victim that
// still belongs to somebody's transaction, a re-read of a line the core
// stickily owns — through the Arbiter interface, which each HTM design
// implements. Lock-based designs plug in NopArbiter and get a plain MESI
// hierarchy.
package hier

import (
	"fmt"
	"sync"

	"dhtm/internal/cache"
	"dhtm/internal/config"
	"dhtm/internal/memdev"
	"dhtm/internal/stats"
)

// Arbiter is implemented by transactional designs to resolve the events the
// coherence protocol exposes. All callbacks run on the simulation goroutine
// that currently holds the scheduling token.
type Arbiter interface {
	// InTx reports whether core currently has a hardware transaction whose
	// speculative state must be protected (Active or committed-but-not-yet-
	// complete).
	InTx(core int) bool

	// SignatureContains reports whether core's read-set overflow signature
	// may contain addr (false positives allowed, false negatives not).
	SignatureContains(core int, addr uint64) bool

	// OnConflict is invoked when requester's access to addr (write=true for a
	// store/ownership request) conflicts with owner's transaction. The
	// arbiter applies the conflict-resolution policy: it may abort owner's
	// transaction (and return true so the access proceeds), decide there is
	// no real conflict — e.g. owner is committed and merely completing, in
	// which case DHTM writes sentinel records — and return true, or return
	// false meaning the requester must abort its own transaction.
	OnConflict(requester, owner int, addr uint64, write, requesterTx bool, at uint64) bool

	// OnWriteSetEviction is invoked when a line with the transactional write
	// bit set must leave core's L1. Returning true lets the line overflow to
	// the LLC in sticky state (DHTM); returning false means the transaction
	// was aborted instead (RTM-like designs).
	OnWriteSetEviction(core int, addr uint64, at uint64) bool

	// OnReadSetEviction is invoked when a line with the read bit set silently
	// leaves core's L1; the design adds it to the read-set signature.
	OnReadSetEviction(core int, addr uint64, at uint64)

	// OnLLCTxEviction is invoked when an LLC victim still belongs to core's
	// transaction (sticky overflowed write-set line, or a back-invalidation
	// of a transactional L1 line). The design aborts the transaction — this
	// is DHTM's LLC capacity limit.
	OnLLCTxEviction(core int, addr uint64, at uint64)

	// OnOwnerReread is invoked when core re-reads a line that it stickily
	// owns in the LLC (a write-set line that overflowed earlier). DHTM sets
	// the write bit on the freshly installed L1 line so an abort invalidates
	// it (§III-C "reread" corner case).
	OnOwnerReread(core int, addr uint64, line *cache.Line, at uint64)
}

// NopArbiter is the Arbiter for non-transactional (lock-based) designs.
type NopArbiter struct{}

// InTx always reports false.
func (NopArbiter) InTx(int) bool { return false }

// SignatureContains always reports false.
func (NopArbiter) SignatureContains(int, uint64) bool { return false }

// OnConflict always lets the access proceed.
func (NopArbiter) OnConflict(int, int, uint64, bool, bool, uint64) bool { return true }

// OnWriteSetEviction always allows the eviction.
func (NopArbiter) OnWriteSetEviction(int, uint64, uint64) bool { return true }

// OnReadSetEviction does nothing.
func (NopArbiter) OnReadSetEviction(int, uint64, uint64) {}

// OnLLCTxEviction does nothing.
func (NopArbiter) OnLLCTxEviction(int, uint64, uint64) {}

// OnOwnerReread does nothing.
func (NopArbiter) OnOwnerReread(int, uint64, *cache.Line, uint64) {}

// Result describes the outcome of one timed hierarchy operation.
type Result struct {
	// Done is the cycle at which the operation completes (data available for
	// loads, globally ordered for stores, durable for flushes/write-backs).
	Done uint64
	// Aborted is set when the requester lost a conflict and must abort its
	// transaction instead of completing the access.
	Aborted bool
	// ConflictWith is the owning core that won the conflict when Aborted.
	ConflictWith int
	// Level records where the access was satisfied: 1 = L1, 2 = LLC, 3 = NVM.
	Level int
}

// Hierarchy is the two-level cache system shared by all designs.
type Hierarchy struct {
	cfg config.Config
	arb Arbiter
	st  *stats.Stats

	l1s []*cache.Cache
	llc *cache.Cache
	ctl *memdev.Controller
}

// cacheGeom keys the recycling pools: caches are interchangeable exactly when
// their geometry matches.
type cacheGeom struct{ size, ways, line int }

// cachePools recycles cache arrays across cells. An 8 MB LLC is a ~14 MB Line
// slab whose allocation and zeroing dominated cell construction; with O(1)
// generation-based Clear, a pooled array is indistinguishable from a fresh
// one, so sweeps reuse arrays instead of re-allocating per cell. The map is
// cacheGeom → *sync.Pool.
var cachePools sync.Map

// newPooledCache returns a cleared cache of the given geometry, recycled when
// one is available.
func newPooledCache(size, ways, line int) *cache.Cache {
	pv, _ := cachePools.LoadOrStore(cacheGeom{size, ways, line}, &sync.Pool{})
	if c, ok := pv.(*sync.Pool).Get().(*cache.Cache); ok {
		c.Clear()
		return c
	}
	return cache.New(size, ways, line)
}

// recycleCache returns a cache array to its geometry's pool.
func recycleCache(c *cache.Cache) {
	g := cacheGeom{size: c.Lines() * c.LineSize(), ways: c.Ways(), line: c.LineSize()}
	if pv, ok := cachePools.Load(g); ok {
		pv.(*sync.Pool).Put(c)
	}
}

// New builds the hierarchy described by cfg on top of the given memory
// controller. The arbiter defaults to NopArbiter until SetArbiter is called.
// Cache arrays are drawn from per-geometry recycling pools; call Release when
// the hierarchy is done to return them.
func New(cfg config.Config, ctl *memdev.Controller, st *stats.Stats) *Hierarchy {
	h := &Hierarchy{
		cfg: cfg,
		arb: NopArbiter{},
		st:  st,
		llc: newPooledCache(cfg.LLCSize, cfg.LLCWays, cfg.LineSize),
		ctl: ctl,
	}
	for i := 0; i < cfg.NumCores; i++ {
		h.l1s = append(h.l1s, newPooledCache(cfg.L1Size, cfg.L1Ways, cfg.LineSize))
	}
	return h
}

// Release returns the hierarchy's cache arrays to the recycling pools. The
// hierarchy must not be used afterwards.
func (h *Hierarchy) Release() {
	if h.llc == nil {
		return
	}
	recycleCache(h.llc)
	for _, l1 := range h.l1s {
		recycleCache(l1)
	}
	h.llc, h.l1s = nil, nil
}

// SetArbiter installs the transactional design's conflict arbiter.
func (h *Hierarchy) SetArbiter(a Arbiter) {
	if a == nil {
		a = NopArbiter{}
	}
	h.arb = a
}

// Config returns the system configuration.
func (h *Hierarchy) Config() config.Config { return h.cfg }

// Controller returns the persistent-memory controller.
func (h *Hierarchy) Controller() *memdev.Controller { return h.ctl }

// L1 returns core's private L1 cache (designs iterate it during commit and
// abort processing, exactly as the L1 cache controller does in hardware).
func (h *Hierarchy) L1(core int) *cache.Cache { return h.l1s[core] }

// LLC returns the shared last-level cache.
func (h *Hierarchy) LLC() *cache.Cache { return h.llc }

// Align returns the line-aligned address for addr.
func (h *Hierarchy) Align(addr uint64) uint64 { return h.cfg.LineAddr(addr) }

// Crash discards all volatile state (every cache) while leaving persistent
// memory untouched. It is the failure model used by the recovery tests.
func (h *Hierarchy) Crash() {
	for _, l1 := range h.l1s {
		l1.Clear()
	}
	h.llc.Clear()
}

// DrainClean writes every dirty line in the hierarchy back to persistent
// memory without invalidating it. It is used by non-crashing shutdowns and by
// verification helpers that want the durable image to reflect all committed
// work.
func (h *Hierarchy) DrainClean() {
	// L1 dirty lines propagate to the LLC first, then the LLC flushes.
	for core, l1 := range h.l1s {
		_ = core
		l1.ForEach(func(l *cache.Line) {
			if l.Dirty {
				h.copyToLLC(l)
				l.Dirty = false
			}
		})
	}
	h.llc.ForEach(func(l *cache.Line) {
		if l.Dirty {
			h.ctl.PersistLine(l.Addr, l.Data, memdev.TrafficData)
			l.Dirty = false
		}
	})
}

// copyToLLC merges an L1 line's data into the LLC copy, creating it if the
// inclusive copy was somehow dropped.
func (h *Hierarchy) copyToLLC(l *cache.Line) *cache.Line {
	ll := h.llc.Peek(l.Addr)
	if ll == nil {
		// Re-establish inclusion without timing (only used on untimed paths).
		victim := h.llc.Victim(l.Addr)
		if victim.Valid() && victim.Dirty {
			h.ctl.PersistLine(victim.Addr, victim.Data, memdev.TrafficData)
		}
		ll = h.llc.PlaceAt(victim, l.Addr, cache.Shared, l.Data)
	}
	ll.Data = l.Data
	ll.Dirty = true
	return ll
}

// String summarises occupancy, for debugging.
func (h *Hierarchy) String() string {
	dirty := h.llc.CountIf(func(l *cache.Line) bool { return l.Dirty })
	return fmt.Sprintf("hier{cores=%d llcLines=%d dirty=%d}", len(h.l1s), h.llc.CountIf(func(*cache.Line) bool { return true }), dirty)
}
