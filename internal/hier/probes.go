package hier

import (
	"dhtm/internal/probe"
	"dhtm/internal/stats"
)

// RegisterProbes contributes the cache-hierarchy signals to a cell
// recorder: cumulative L1 and LLC hit/miss counters summed over cores, from
// which viewers derive time-resolved miss rates per probe interval.
func (h *Hierarchy) RegisterProbes(rec *probe.Recorder) {
	if h.st == nil {
		return
	}
	sum := func(f func(*stats.CoreStats) uint64) probe.SampleFunc {
		return func(uint64) float64 {
			var t uint64
			for i := range h.st.Cores {
				t += f(&h.st.Cores[i])
			}
			return float64(t)
		}
	}
	rec.Counter("cache/l1_hits", "accesses", "internal/hier", sum(func(c *stats.CoreStats) uint64 { return c.L1Hits }))
	rec.Counter("cache/l1_misses", "accesses", "internal/hier", sum(func(c *stats.CoreStats) uint64 { return c.L1Misses }))
	rec.Counter("cache/llc_hits", "accesses", "internal/hier", sum(func(c *stats.CoreStats) uint64 { return c.LLCHits }))
	rec.Counter("cache/llc_misses", "accesses", "internal/hier", sum(func(c *stats.CoreStats) uint64 { return c.LLCMisses }))
}
