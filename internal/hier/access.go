package hier

import (
	"dhtm/internal/cache"
	"dhtm/internal/memdev"
)

// Load performs a timed read of the 8-byte word at addr by core. tx marks the
// access as transactional: on a hit the line's read bit is set and conflicts
// are resolved through the arbiter. A Result with Aborted=true means the
// requester lost a conflict and must abort its transaction; the word value is
// then meaningless.
func (h *Hierarchy) Load(core int, addr uint64, at uint64, tx bool) (uint64, Result) {
	la := h.Align(addr)
	l1 := h.l1s[core]
	cs := h.st.Core(core)

	if line := l1.Lookup(la); line != nil {
		cs.L1Hits++
		if tx {
			line.R = true
		}
		return line.Data[h.wordIdx(addr)], Result{Done: at + h.cfg.L1Latency, Level: 1}
	}
	cs.L1Misses++

	line, res := h.fill(core, la, at+h.cfg.L1Latency, false, tx)
	if res.Aborted {
		return 0, res
	}
	if tx {
		line.R = true
	}
	return line.Data[h.wordIdx(addr)], res
}

// Store performs a timed write of the 8-byte word at addr by core. tx marks
// the access as transactional: the write bit is set on the L1 line and
// conflicts are resolved through the arbiter.
func (h *Hierarchy) Store(core int, addr uint64, val uint64, at uint64, tx bool) Result {
	la := h.Align(addr)
	l1 := h.l1s[core]
	cs := h.st.Core(core)

	if line := l1.Lookup(la); line != nil {
		if line.State == cache.Modified {
			cs.L1Hits++
			if tx && !line.W && line.Dirty {
				// First transactional store to a line holding pre-transaction
				// dirty data: write that data back to the LLC first so an
				// abort (which invalidates the speculative L1 copy) cannot
				// lose it. Commercial HTMs perform the same eager write-back.
				h.copyToLLC(line)
			}
			line.Data[h.wordIdx(addr)] = val
			line.Dirty = true
			if tx {
				line.W = true
			}
			return Result{Done: at + h.cfg.L1Latency, Level: 1}
		}
		// Upgrade: Shared in L1, need exclusive ownership from the directory.
		cs.L1Hits++
		done := at + h.cfg.L1Latency + h.cfg.LLCLatency
		ll := h.llc.Lookup(la)
		if ll == nil {
			// Inclusion was broken only if a back-invalidation raced us, which
			// the sequential simulation prevents; treat defensively as a miss.
			l1.Invalidate(la)
			return h.storeMiss(core, addr, val, at, tx)
		}
		ok, invDone := h.invalidateSharers(core, la, ll, tx, done)
		if !ok {
			return Result{Done: invDone, Aborted: true, ConflictWith: ll.Owner, Level: 2}
		}
		ll.Owner = core
		ll.State = cache.Modified
		ll.Sharers = 0
		ll.AddSharer(core)
		line.State = cache.Modified
		line.Data[h.wordIdx(addr)] = val
		line.Dirty = true
		if tx {
			line.W = true
		}
		return Result{Done: invDone, Level: 2}
	}
	cs.L1Misses++
	return h.storeMiss(core, addr, val, at, tx)
}

// storeMiss handles a store whose line is absent from the requester's L1.
func (h *Hierarchy) storeMiss(core int, addr uint64, val uint64, at uint64, tx bool) Result {
	la := h.Align(addr)
	line, res := h.fill(core, la, at+h.cfg.L1Latency, true, tx)
	if res.Aborted {
		return res
	}
	line.State = cache.Modified
	line.Data[h.wordIdx(addr)] = val
	line.Dirty = true
	if tx {
		line.W = true
	}
	return res
}

// fill obtains the line at la for core (exclusive if forWrite), resolving
// directory state, forwarding, conflicts and L1/LLC victim handling, and
// installs it in the requester's L1. The returned *cache.Line is the L1 copy.
func (h *Hierarchy) fill(core int, la uint64, at uint64, forWrite, tx bool) (*cache.Line, Result) {
	cs := h.st.Core(core)
	done := at + h.cfg.LLCLatency
	level := 2

	ll := h.llc.Lookup(la)
	if ll == nil {
		cs.LLCMisses++
		var data memdev.Line
		var ready uint64
		data, ready = h.ctl.ReadLine(la, done)
		var abortRes Result
		ll, abortRes = h.llcAllocate(core, la, data, ready)
		if abortRes.Aborted {
			return nil, abortRes
		}
		done = ready
		level = 3
	} else {
		cs.LLCHits++
	}

	// Resolve current ownership.
	owner := ll.Owner
	rereadOwn := false
	switch {
	case owner == core:
		// Either a line this core stickily owns (overflowed write-set line)
		// or stale ownership left behind by a past transaction or silent
		// logic; the data in the LLC is authoritative.
		rereadOwn = true
	case owner >= 0:
		var res Result
		var ok bool
		ok, res = h.forwardFromOwner(core, owner, la, ll, forWrite, tx, done)
		if !ok {
			return nil, res
		}
		done = res.Done
		// Re-look the LLC line up: the owner's abort may have invalidated a
		// sticky copy, in which case the pre-transactional data must be
		// re-fetched from persistent memory.
		if ll = h.llc.Peek(la); ll == nil || !ll.Valid() {
			data, ready := h.ctl.ReadLine(la, done)
			var abortRes Result
			ll, abortRes = h.llcAllocate(core, la, data, ready)
			if abortRes.Aborted {
				return nil, abortRes
			}
			done = ready
			level = 3
		}
	}

	if forWrite {
		ok, invDone := h.invalidateSharers(core, la, ll, tx, done)
		if !ok {
			return nil, Result{Done: invDone, Aborted: true, ConflictWith: ll.Owner, Level: level}
		}
		done = invDone
		ll.Owner = core
		ll.State = cache.Modified
		ll.Sharers = 0
		ll.AddSharer(core)
		ll.Sticky = false
	} else {
		if ll.Owner == core {
			// Keep ownership: the line stays part of this core's write set.
		} else {
			ll.Owner = cache.NoOwner
			if ll.State == cache.Modified {
				ll.State = cache.Shared
			}
		}
		ll.AddSharer(core)
	}

	// Install into the requester's L1, handling the L1 victim.
	l1 := h.l1s[core]
	newState := cache.Shared
	if forWrite || rereadOwn && ll.Owner == core {
		newState = cache.Modified
	}
	way := l1.Victim(la)
	if way.Valid() {
		h.evictL1Victim(core, way, done)
	}
	line := l1.PlaceAt(way, la, newState, ll.Data)

	if rereadOwn && tx && h.arb.InTx(core) {
		h.arb.OnOwnerReread(core, la, line, done)
	}
	return line, Result{Done: done, Level: level}
}

// forwardFromOwner models a Fwd-GetS / Fwd-GetM arriving at the owning core's
// L1. It performs conflict detection (including the "line not present in the
// owner's L1 implies it overflowed" inference) and, when the access proceeds,
// transfers data and downgrades or invalidates the owner's copy.
// It returns ok=false when the *requester* must abort.
func (h *Hierarchy) forwardFromOwner(requester, owner int, la uint64, ll *cache.Line, forWrite, tx bool, at uint64) (bool, Result) {
	done := at + h.cfg.LLCLatency // extra hop to the owner and back
	ownerLine := h.l1s[owner].Peek(la)

	conflict := false
	if h.arb.InTx(owner) {
		switch {
		case ownerLine == nil:
			// Sticky state: the write-set line overflowed to the LLC.
			conflict = true
		case ownerLine.W:
			conflict = true
		case forWrite && ownerLine.R:
			conflict = true
		}
	}
	if conflict {
		if !h.arb.OnConflict(requester, owner, la, forWrite, tx, done) {
			return false, Result{Done: done, Aborted: true, ConflictWith: owner, Level: 2}
		}
		// The owner either aborted or is merely completing a committed
		// transaction; its L1 state may have changed.
		ownerLine = h.l1s[owner].Peek(la)
	}

	if ownerLine != nil && ownerLine.Valid() {
		if ownerLine.Dirty || ownerLine.W {
			ll.Data = ownerLine.Data
			ll.Dirty = true
		}
		if forWrite {
			ownerLine.Reset()
			ll.RemoveSharer(owner)
		} else {
			ownerLine.State = cache.Shared
			ownerLine.W = false
			ll.AddSharer(owner)
		}
	} else {
		ll.RemoveSharer(owner)
	}
	if ll.Owner == owner {
		ll.Owner = cache.NoOwner
		if ll.State == cache.Modified {
			ll.State = cache.Shared
		}
	}
	ll.Sticky = false
	return true, Result{Done: done, Level: 2}
}

// invalidateSharers removes every other sharer of la before granting core
// exclusive ownership, detecting conflicts against read sets (L1 read bits or
// the read-set overflow signature) and against the owner when the directory
// still points at one. It returns ok=false when the requester must abort.
func (h *Hierarchy) invalidateSharers(core int, la uint64, ll *cache.Line, tx bool, at uint64) (bool, uint64) {
	done := at
	sent := false
	for t := 0; t < len(h.l1s); t++ {
		if t == core {
			continue
		}
		holds := ll.HasSharer(t) || ll.Owner == t
		if !holds && !(h.arb.InTx(t) && h.arb.SignatureContains(t, la)) {
			continue
		}
		tl := h.l1s[t].Peek(la)
		conflict := false
		if h.arb.InTx(t) {
			switch {
			case tl != nil && (tl.R || tl.W):
				conflict = true
			case tl == nil && ll.Owner == t:
				// Sticky overflowed write-set line.
				conflict = true
			case tl == nil && h.arb.SignatureContains(t, la):
				conflict = true
			}
		}
		if conflict {
			if !h.arb.OnConflict(core, t, la, true, tx, done) {
				return false, done + h.cfg.LLCLatency
			}
			tl = h.l1s[t].Peek(la)
		}
		if tl != nil && tl.Valid() {
			if tl.Dirty || tl.W {
				ll.Data = tl.Data
				ll.Dirty = true
			}
			tl.Reset()
		}
		ll.RemoveSharer(t)
		if ll.Owner == t {
			ll.Owner = cache.NoOwner
		}
		sent = true
	}
	if sent {
		done += h.cfg.LLCLatency
	}
	return true, done
}

// llcAllocate installs a line fetched from memory into the LLC, handling the
// LLC victim: back-invalidating L1 copies, aborting transactions whose state
// the victim still carries (the LLC capacity limit), and writing dirty
// victims back to persistent memory. It returns an aborted Result only if the
// *requesting core's own* transaction had to be aborted to make room.
func (h *Hierarchy) llcAllocate(core int, la uint64, data memdev.Line, at uint64) (*cache.Line, Result) {
	victim := h.llc.Victim(la)
	requesterAborted := false
	if victim.Valid() {
		vAddr := victim.Addr
		// Back-invalidate every L1 copy to preserve inclusion.
		for t := 0; t < len(h.l1s); t++ {
			tl := h.l1s[t].Peek(vAddr)
			inTxLine := tl != nil && (tl.R || tl.W)
			stickyOwner := tl == nil && victim.Sticky && victim.Owner == t
			if h.arb.InTx(t) && (inTxLine || stickyOwner) {
				h.arb.OnLLCTxEviction(t, vAddr, at)
				if t == core {
					requesterAborted = true
				}
				tl = h.l1s[t].Peek(vAddr)
			}
			if tl != nil && tl.Valid() {
				if tl.Dirty {
					victim.Data = tl.Data
					victim.Dirty = true
				}
				tl.Reset()
			}
		}
		// The abort handlers above may have invalidated the victim already
		// (DHTM invalidates overflowed lines during abort-complete).
		if victim.Valid() && victim.Dirty {
			h.ctl.WriteLine(victim.Addr, victim.Data, at, memdev.TrafficData)
		}
	}
	line := h.llc.PlaceAt(victim, la, cache.Shared, data)
	line.Owner = cache.NoOwner
	if requesterAborted {
		return line, Result{Done: at, Aborted: true, ConflictWith: core, Level: 3}
	}
	return line, Result{}
}

// evictL1Victim handles the replacement of an L1 line: transactional write-set
// lines go through the arbiter (abort or overflow to the LLC in sticky
// state), read-set lines are added to the overflow signature, and ordinary
// dirty lines are written back to the inclusive LLC copy.
func (h *Hierarchy) evictL1Victim(core int, victim *cache.Line, at uint64) {
	vAddr := victim.Addr
	switch {
	case victim.W && h.arb.InTx(core):
		if h.arb.OnWriteSetEviction(core, vAddr, at) {
			// Overflow: data moves to the LLC, directory state is left
			// pointing at this core (sticky), so conflicts still forward here.
			h.st.OverflowedLines++
			ll := h.llc.Peek(vAddr)
			if ll == nil {
				// Inclusion should hold; recreate the copy defensively.
				w := h.llc.Victim(vAddr)
				if w.Valid() && w.Dirty {
					h.ctl.PersistLine(w.Addr, w.Data, memdev.TrafficData)
				}
				ll = h.llc.PlaceAt(w, vAddr, cache.Modified, victim.Data)
			}
			ll.Data = victim.Data
			ll.Dirty = true
			ll.Sticky = true
			ll.Owner = core
			ll.State = cache.Modified
		}
		// On abort the design already invalidated its write set; either way
		// the way is about to be reused by PlaceAt.
	case victim.R && h.arb.InTx(core):
		h.arb.OnReadSetEviction(core, vAddr, at)
		// The directory keeps this core as a sharer so invalidations still
		// reach it and are checked against the signature.
	case victim.Dirty:
		ll := h.llc.Peek(vAddr)
		if ll == nil {
			h.ctl.PersistLine(vAddr, victim.Data, memdev.TrafficData)
			return
		}
		ll.Data = victim.Data
		ll.Dirty = true
		if ll.Owner == core {
			ll.Owner = cache.NoOwner
		}
	default:
		// Clean, non-transactional line: silent eviction (the sharer bit is
		// conservatively left set; a spurious invalidation later is harmless).
	}
}

// wordIdx returns the word offset of addr within its line.
func (h *Hierarchy) wordIdx(addr uint64) int {
	return int(addr%uint64(h.cfg.LineSize)) / 8
}
