package hier

import (
	"testing"

	"dhtm/internal/cache"
	"dhtm/internal/config"
	"dhtm/internal/memdev"
	"dhtm/internal/stats"
)

func newHier(cores int) (*Hierarchy, *memdev.Store) {
	cfg := config.Default()
	cfg.NumCores = cores
	st := stats.New(cores)
	store := memdev.NewStore()
	ctl := memdev.NewController(cfg, store, st)
	return New(cfg, ctl, st), store
}

// TestLoadStoreRoundtrip checks basic functional correctness through the
// caches, including write-back on eviction pressure via DrainClean.
func TestLoadStoreRoundtrip(t *testing.T) {
	h, store := newHier(2)
	store.WriteWord(0x10000, 5)

	v, r := h.Load(0, 0x10000, 0, false)
	if v != 5 || r.Aborted {
		t.Fatalf("initial load got %d (aborted=%v), want 5", v, r.Aborted)
	}
	if r.Level != 3 {
		t.Fatalf("first load level = %d, want 3 (memory)", r.Level)
	}
	sr := h.Store(0, 0x10000, 9, r.Done, false)
	if sr.Aborted {
		t.Fatalf("store aborted unexpectedly")
	}
	v2, r2 := h.Load(0, 0x10000, sr.Done, false)
	if v2 != 9 || r2.Level != 1 {
		t.Fatalf("reload got %d at level %d, want 9 at L1", v2, r2.Level)
	}
	// The durable image still has the old value until a write-back.
	if store.ReadWord(0x10000) != 5 {
		t.Fatalf("store reached NVM without a write-back")
	}
	h.DrainClean()
	if store.ReadWord(0x10000) != 9 {
		t.Fatalf("DrainClean did not write dirty data back")
	}
}

// TestCoherenceTransfersData checks that a value written by one core is read
// by another through forwarding, and that latencies grow with distance.
func TestCoherenceTransfersData(t *testing.T) {
	h, _ := newHier(2)
	sr := h.Store(0, 0x20000, 77, 0, false)
	v, r := h.Load(1, 0x20000, sr.Done, false)
	if v != 77 {
		t.Fatalf("core 1 read %d, want 77 written by core 0", v)
	}
	if r.Done-sr.Done < h.cfg.LLCLatency {
		t.Fatalf("cross-core transfer completed too quickly (%d cycles)", r.Done-sr.Done)
	}
	// After the transfer both cores can hit locally.
	_, r0 := h.Load(0, 0x20000, r.Done, false)
	_, r1 := h.Load(1, 0x20000, r.Done, false)
	if r0.Level != 1 || r1.Level != 1 {
		t.Fatalf("post-transfer loads not L1 hits (levels %d, %d)", r0.Level, r1.Level)
	}
}

// recordingArbiter counts the hook invocations the hierarchy makes.
type recordingArbiter struct {
	NopArbiter
	inTx       map[int]bool
	conflicts  int
	lastOwner  int
	proceed    bool
	wsEvict    int
	rsEvict    int
	llcEvicted int
}

func (a *recordingArbiter) InTx(core int) bool { return a.inTx[core] }
func (a *recordingArbiter) OnConflict(req, owner int, addr uint64, write, reqTx bool, at uint64) bool {
	a.conflicts++
	a.lastOwner = owner
	return a.proceed
}
func (a *recordingArbiter) OnWriteSetEviction(core int, addr uint64, at uint64) bool {
	a.wsEvict++
	return true
}
func (a *recordingArbiter) OnReadSetEviction(core int, addr uint64, at uint64) { a.rsEvict++ }
func (a *recordingArbiter) OnLLCTxEviction(core int, addr uint64, at uint64)   { a.llcEvicted++ }

// TestConflictDetectionOnWriteSet checks that a remote access to a
// transactional dirty line is routed through the arbiter and that a losing
// requester gets an Aborted result.
func TestConflictDetectionOnWriteSet(t *testing.T) {
	h, _ := newHier(2)
	arb := &recordingArbiter{inTx: map[int]bool{0: true}, proceed: false}
	h.SetArbiter(arb)

	sr := h.Store(0, 0x30000, 1, 0, true)
	if sr.Aborted {
		t.Fatalf("transactional store aborted with no conflict present")
	}
	if l := h.L1(0).Peek(0x30000); l == nil || !l.W {
		t.Fatalf("write bit not set on the transactional line")
	}
	_, lr := h.Load(1, 0x30000, sr.Done, true)
	if arb.conflicts != 1 || arb.lastOwner != 0 {
		t.Fatalf("conflict hook not invoked for the owning core (%d calls)", arb.conflicts)
	}
	if !lr.Aborted || lr.ConflictWith != 0 {
		t.Fatalf("losing requester not told to abort: %+v", lr)
	}

	// With the arbiter now letting accesses proceed (owner aborted), the
	// requester sees the pre-transactional value from memory.
	arb.proceed = true
	arb.inTx[0] = false
	h.L1(0).Invalidate(0x30000) // what the owner's abort would have done
	v, lr2 := h.Load(1, 0x30000, lr.Done, true)
	if lr2.Aborted || v != 0 {
		t.Fatalf("post-abort load got %d (aborted=%v), want pre-transactional 0", v, lr2.Aborted)
	}
}

// TestReadSetEvictionGoesToSignature checks that evicting a read-set line
// notifies the arbiter (which maintains the overflow signature).
func TestReadSetEvictionGoesToSignature(t *testing.T) {
	cfg := config.Default()
	cfg.NumCores = 1
	cfg.L1Size = 4 * 64 * 2 // 2 sets, 4 ways: tiny L1 to force evictions
	st := stats.New(1)
	ctl := memdev.NewController(cfg, memdev.NewStore(), st)
	h := New(cfg, ctl, st)
	arb := &recordingArbiter{inTx: map[int]bool{0: true}, proceed: true}
	h.SetArbiter(arb)

	at := uint64(0)
	for i := 0; i < 12; i++ {
		_, r := h.Load(0, uint64(i)*128, at, true)
		at = r.Done
	}
	if arb.rsEvict == 0 {
		t.Fatalf("no read-set evictions reported despite overflowing a tiny L1")
	}
}

// TestWriteSetOverflowKeepsStickyState checks the DHTM-enabling behaviour:
// when the arbiter allows a write-set eviction, the line moves to the LLC
// dirty and sticky with the directory still pointing at the owner.
func TestWriteSetOverflowKeepsStickyState(t *testing.T) {
	cfg := config.Default()
	cfg.NumCores = 1
	cfg.L1Size = 4 * 64 * 2
	st := stats.New(1)
	ctl := memdev.NewController(cfg, memdev.NewStore(), st)
	h := New(cfg, ctl, st)
	arb := &recordingArbiter{inTx: map[int]bool{0: true}, proceed: true}
	h.SetArbiter(arb)

	at := uint64(0)
	for i := 0; i < 12; i++ {
		r := h.Store(0, uint64(i)*128, uint64(i), at, true)
		at = r.Done
	}
	if arb.wsEvict == 0 {
		t.Fatalf("no write-set evictions reported")
	}
	sticky := h.LLC().CountIf(func(l *cache.Line) bool { return l.Sticky && l.Owner == 0 && l.Dirty })
	if sticky == 0 {
		t.Fatalf("no sticky overflowed lines present in the LLC")
	}
}

// TestCrashDiscardsCaches checks the failure model.
func TestCrashDiscardsCaches(t *testing.T) {
	h, store := newHier(1)
	h.Store(0, 0x50000, 123, 0, false)
	h.Crash()
	if h.L1(0).Peek(0x50000) != nil || h.LLC().Peek(0x50000) != nil {
		t.Fatalf("caches survived the crash")
	}
	if store.ReadWord(0x50000) != 0 {
		t.Fatalf("unwritten-back data survived the crash in NVM")
	}
}

// TestFlushAndWriteBackHelpers checks the persistence primitives designs use.
func TestFlushAndWriteBackHelpers(t *testing.T) {
	h, store := newHier(1)
	sr := h.Store(0, 0x60000, 11, 0, false)
	done := h.FlushLine(0, 0x60000, sr.Done)
	if store.ReadWord(0x60000) != 11 {
		t.Fatalf("FlushLine did not persist the line")
	}
	if done <= sr.Done {
		t.Fatalf("FlushLine reported no latency")
	}
	h.Store(0, 0x60000, 12, done, true)
	if d, ok := h.WriteBackL1Line(0, 0x60000, done); !ok || store.ReadWord(0x60000) != 12 || d <= done {
		t.Fatalf("WriteBackL1Line did not persist the new value")
	}
	if l := h.L1(0).Peek(0x60000); l == nil || l.W || l.Dirty {
		t.Fatalf("WriteBackL1Line did not clean the cached line")
	}
	if !h.CompleteL1Line(0, 0x60000) {
		t.Fatalf("CompleteL1Line did not find the line")
	}
}
