// Package htm provides the RTM-like hardware-transactional-memory machinery
// shared by every HTM-based design in the evaluation (NP, sdTM, LogTM-ATOM
// and DHTM): per-core transaction contexts with read/write-set bookkeeping,
// the read-set overflow Bloom signature kept next to the L1, and the
// conflict-resolution policies (first-writer-wins and requester-wins).
package htm

import (
	"fmt"

	"dhtm/internal/config"
	"dhtm/internal/stats"
)

// State is the lifecycle state of a hardware transaction (Figure 3 of the
// paper). Committed and Aborted are the windows between the commit/abort
// point and the corresponding completion point; designs without a completion
// phase go straight back to Idle.
type State int

const (
	// Idle means no transaction is in flight on the core.
	Idle State = iota
	// Active means the transaction is executing.
	Active
	// Committed means the commit point was reached (log records durable) but
	// write-back completion is still pending.
	Committed
	// Aborted means the abort point was reached but overflow-invalidation
	// completion is still pending.
	Aborted
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Idle:
		return "idle"
	case Active:
		return "active"
	case Committed:
		return "committed"
	case Aborted:
		return "aborted"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Signature is the read-set overflow signature: a Bloom filter over line
// addresses of read-set lines that were evicted from the L1. False positives
// are allowed (they cause spurious conflicts, as in real hardware); false
// negatives are not.
type Signature struct {
	bits  []uint64
	nbits uint64
	count int
}

// NewSignature builds a signature with the given number of bits (a power of
// two, per config validation).
func NewSignature(nbits int) *Signature {
	return &Signature{bits: make([]uint64, (nbits+63)/64), nbits: uint64(nbits)}
}

// hashes derives two independent bit positions from a line address.
func (s *Signature) hashes(lineAddr uint64) (uint64, uint64) {
	x := lineAddr >> 6
	// 64-bit mix (splitmix64 finaliser) for the first hash.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	h1 := x % s.nbits
	h2 := (x >> 32) % s.nbits
	return h1, h2
}

// Add inserts a line address.
func (s *Signature) Add(lineAddr uint64) {
	h1, h2 := s.hashes(lineAddr)
	s.bits[h1/64] |= 1 << (h1 % 64)
	s.bits[h2/64] |= 1 << (h2 % 64)
	s.count++
}

// Contains reports whether the line address may have been added.
func (s *Signature) Contains(lineAddr uint64) bool {
	if s.count == 0 {
		return false
	}
	h1, h2 := s.hashes(lineAddr)
	return s.bits[h1/64]&(1<<(h1%64)) != 0 && s.bits[h2/64]&(1<<(h2%64)) != 0
}

// Empty reports whether nothing has been added since the last Clear.
func (s *Signature) Empty() bool { return s.count == 0 }

// Clear resets the signature (flash clear at commit/abort).
func (s *Signature) Clear() {
	for i := range s.bits {
		s.bits[i] = 0
	}
	s.count = 0
}

// LineSet is a reusable set of cache-line addresses: open-addressing lookup
// with an insertion-ordered key slice for deterministic iteration. Clearing
// keeps the backing storage, so per-transaction read/write-set tracking costs
// no allocation in steady state (the map-based predecessor re-bucketed on
// every transaction). The zero value is not ready for use; call NewLineSet.
type LineSet struct {
	table []uint64 // open addressing; 0 = empty slot, else lineAddr+1
	keys  []uint64 // insertion order
	mask  uint64
}

// NewLineSet builds a set pre-sized for about hint lines (minimum 16).
func NewLineSet(hint int) *LineSet {
	n := 16
	for n < hint*2 {
		n <<= 1
	}
	return &LineSet{table: make([]uint64, n), mask: uint64(n - 1)}
}

// slotHash spreads a line address over the table (splitmix64 finaliser on the
// line number).
func slotHash(lineAddr uint64) uint64 {
	x := lineAddr >> 6
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Len returns the number of distinct line addresses in the set.
func (s *LineSet) Len() int { return len(s.keys) }

// Contains reports whether lineAddr is in the set.
func (s *LineSet) Contains(lineAddr uint64) bool {
	for i := slotHash(lineAddr) & s.mask; ; i = (i + 1) & s.mask {
		switch s.table[i] {
		case 0:
			return false
		case lineAddr + 1:
			return true
		}
	}
}

// Add inserts lineAddr, reporting whether it was newly added.
func (s *LineSet) Add(lineAddr uint64) bool {
	for i := slotHash(lineAddr) & s.mask; ; i = (i + 1) & s.mask {
		switch s.table[i] {
		case 0:
			s.table[i] = lineAddr + 1
			s.keys = append(s.keys, lineAddr)
			if uint64(len(s.keys))*4 >= uint64(len(s.table))*3 {
				s.grow()
			}
			return true
		case lineAddr + 1:
			return false
		}
	}
}

// grow doubles the table and re-inserts every key.
func (s *LineSet) grow() {
	n := len(s.table) * 2
	s.table = make([]uint64, n)
	s.mask = uint64(n - 1)
	for _, k := range s.keys {
		i := slotHash(k) & s.mask
		for s.table[i] != 0 {
			i = (i + 1) & s.mask
		}
		s.table[i] = k + 1
	}
}

// Keys returns the line addresses in insertion order. The slice aliases the
// set's storage and is valid only until the next Add or Clear.
func (s *LineSet) Keys() []uint64 { return s.keys }

// Clear empties the set, keeping the backing storage for reuse.
func (s *LineSet) Clear() {
	if len(s.keys) == 0 {
		return
	}
	clear(s.table)
	s.keys = s.keys[:0]
}

// Ctx is the per-core transactional context.
type Ctx struct {
	State  State
	TxID   uint64
	Sig    *Signature
	Doomed bool
	Reason stats.AbortReason

	// WriteLines and ReadLines track the distinct cache lines touched by the
	// current transaction. The hardware equivalents are the W/R bits plus the
	// overflow structures; the runtime keeps these mirrors for commit/abort
	// processing and for the write-set-size characterisation (Table IV).
	WriteLines *LineSet
	ReadLines  *LineSet

	// CompletionAt is the cycle at which the previous transaction's
	// completion phase (write-backs or overflow invalidations) finishes; a
	// new transaction may not begin before it.
	CompletionAt uint64
}

// NewCtx builds an idle context with a signature of the configured size.
func NewCtx(cfg config.Config) *Ctx {
	return &Ctx{
		Sig:        NewSignature(cfg.ReadSignatureBits),
		WriteLines: NewLineSet(64),
		ReadLines:  NewLineSet(64),
	}
}

// BeginReset prepares the context for a new transaction attempt.
func (c *Ctx) BeginReset() {
	c.State = Active
	c.Doomed = false
	c.Sig.Clear()
	c.WriteLines.Clear()
	c.ReadLines.Clear()
}

// Doom marks the transaction as having lost a conflict (or otherwise being
// forced to abort) so the owning core unwinds at its next transactional
// access.
func (c *Ctx) Doom(reason stats.AbortReason) {
	if c.State == Active && !c.Doomed {
		c.Doomed = true
		c.Reason = reason
	}
}

// OwnerShouldAbort applies a conflict-resolution policy: it reports whether
// the transaction currently holding the line (the "owner", i.e. the first
// writer) must abort so the requester can proceed. A non-transactional
// requester always wins, preserving strong isolation.
func OwnerShouldAbort(policy config.ConflictPolicy, requesterTx bool) bool {
	if !requesterTx {
		return true
	}
	return policy == config.RequesterWins
}
