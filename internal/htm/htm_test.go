package htm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dhtm/internal/config"
	"dhtm/internal/stats"
)

// TestSignatureNoFalseNegatives is the property the HTM depends on: an added
// address is always reported as (possibly) present.
func TestSignatureNoFalseNegatives(t *testing.T) {
	f := func(addrs []uint32) bool {
		s := NewSignature(2048)
		for _, a := range addrs {
			s.Add(uint64(a) * 64)
		}
		for _, a := range addrs {
			if !s.Contains(uint64(a) * 64) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

// TestSignatureClearAndEmpty checks the flash-clear used at commit/abort.
func TestSignatureClearAndEmpty(t *testing.T) {
	s := NewSignature(1024)
	if !s.Empty() {
		t.Fatalf("fresh signature not empty")
	}
	s.Add(0x40)
	if s.Empty() || !s.Contains(0x40) {
		t.Fatalf("signature lost an added address")
	}
	s.Clear()
	if !s.Empty() || s.Contains(0x40) {
		t.Fatalf("signature not cleared")
	}
}

// TestSignatureFalsePositiveRateIsBounded loosely checks that the Bloom
// filter is selective for read sets in the range the workloads produce.
func TestSignatureFalsePositiveRateIsBounded(t *testing.T) {
	s := NewSignature(2048)
	for i := 0; i < 128; i++ {
		s.Add(uint64(i) * 64)
	}
	falsePositives := 0
	const probes = 4096
	for i := 0; i < probes; i++ {
		if s.Contains(uint64(100000+i) * 64) {
			falsePositives++
		}
	}
	if rate := float64(falsePositives) / probes; rate > 0.20 {
		t.Fatalf("false positive rate %.2f too high for a 2048-bit signature with 128 entries", rate)
	}
}

// TestCtxLifecycle checks Doom/BeginReset interactions.
func TestCtxLifecycle(t *testing.T) {
	cfg := config.Default()
	c := NewCtx(cfg)
	c.BeginReset()
	if c.State != Active || c.Doomed {
		t.Fatalf("BeginReset did not produce a clean active context")
	}
	c.WriteLines.Add(0x40)
	c.Doom(stats.AbortConflict)
	if !c.Doomed || c.Reason != stats.AbortConflict {
		t.Fatalf("Doom did not record the conflict")
	}
	// Dooming a non-active transaction must not overwrite the reason.
	c.State = Committed
	c.Doom(stats.AbortLLCCapacity)
	if c.Reason != stats.AbortConflict {
		t.Fatalf("Doom on a committed transaction overwrote the abort reason")
	}
	c.BeginReset()
	if c.WriteLines.Len() != 0 || c.Doomed {
		t.Fatalf("BeginReset did not clear per-transaction state")
	}
}

// TestOwnerShouldAbort checks both conflict-resolution policies and strong
// isolation against non-transactional requesters.
func TestOwnerShouldAbort(t *testing.T) {
	cases := []struct {
		policy      config.ConflictPolicy
		requesterTx bool
		want        bool
	}{
		{config.FirstWriterWins, true, false},
		{config.FirstWriterWins, false, true},
		{config.RequesterWins, true, true},
		{config.RequesterWins, false, true},
	}
	for _, c := range cases {
		if got := OwnerShouldAbort(c.policy, c.requesterTx); got != c.want {
			t.Errorf("OwnerShouldAbort(%v, requesterTx=%v) = %v, want %v", c.policy, c.requesterTx, got, c.want)
		}
	}
}

// TestLineSetBasics checks insertion-order iteration, membership, growth and
// storage-reusing Clear of the open-addressing line set.
func TestLineSetBasics(t *testing.T) {
	s := NewLineSet(4)
	var want []uint64
	for i := 0; i < 300; i++ {
		la := uint64(0x1000_0000 + i*64)
		if !s.Add(la) {
			t.Fatalf("Add(%#x) reported duplicate on first insert", la)
		}
		if s.Add(la) {
			t.Fatalf("Add(%#x) reported new on second insert", la)
		}
		want = append(want, la)
	}
	if s.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(want))
	}
	for i, la := range s.Keys() {
		if la != want[i] {
			t.Fatalf("Keys()[%d] = %#x, want %#x (insertion order broken)", i, la, want[i])
		}
	}
	if !s.Contains(want[137]) || s.Contains(0x40) {
		t.Fatalf("Contains gave a wrong answer")
	}
	s.Clear()
	if s.Len() != 0 || s.Contains(want[0]) {
		t.Fatalf("Clear left members behind")
	}
	if !s.Add(want[0]) {
		t.Fatalf("Add after Clear reported duplicate")
	}
}
