package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dhtm/internal/crashtest"
	"dhtm/internal/fleet"
	"dhtm/internal/obs"
	"dhtm/internal/resultstore"
)

// newFleetServer stands up a coordinator-mode server plus n real workers
// pulling from it over HTTP, all sharing one listener.
func newFleetServer(t *testing.T, n int) (*Server, *httptest.Server) {
	t.Helper()
	store, err := resultstore.Open("", resultstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	coord, err := fleet.NewCoordinator(fleet.CoordinatorConfig{
		Store: store, BatchSize: 2, Registry: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Store: store, Workers: 2, Fleet: coord})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		w, err := fleet.NewWorker(fleet.WorkerConfig{
			Coordinator: ts.URL, Parallel: 2,
			Poll: 5 * time.Millisecond, Registry: obs.NewRegistry(),
		})
		if err != nil {
			t.Fatal(err)
		}
		go func() {
			defer func() { done <- struct{}{} }()
			if err := w.Run(ctx); err != nil {
				t.Errorf("worker: %v", err)
			}
		}()
	}
	t.Cleanup(func() {
		cancel()
		for i := 0; i < n; i++ {
			<-done
		}
		ts.Close()
		srv.Close()
		coord.Close()
	})
	return srv, ts
}

func fetchTables(t *testing.T, ts *httptest.Server, id string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + id + "/tables")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tables: status %d: %s", resp.StatusCode, b)
	}
	return b
}

// TestFleetServeEndToEnd submits the same sweep to a single-node server and
// to a coordinator with two real workers; the rendered tables must be
// byte-identical, and the fleet status must show the workers did the cells.
func TestFleetServeEndToEnd(t *testing.T) {
	// Single-node reference.
	_, localTS := newTestServer(t, t.TempDir(), 2)
	localSt := await(t, localTS, submit(t, localTS, quickSweep()).ID)
	if localSt.State != StateDone {
		t.Fatalf("local job: %s (%s)", localSt.State, localSt.Error)
	}
	want := fetchTables(t, localTS, localSt.ID)

	// Fleet run of the identical spec.
	_, fleetTS := newFleetServer(t, 2)
	fleetSt := await(t, fleetTS, submit(t, fleetTS, quickSweep()).ID)
	if fleetSt.State != StateDone {
		t.Fatalf("fleet job: %s (%s)", fleetSt.State, fleetSt.Error)
	}
	got := fetchTables(t, fleetTS, fleetSt.ID)
	if !bytes.Equal(got, want) {
		t.Fatalf("fleet tables differ from single-node:\n--- fleet ---\n%s--- local ---\n%s", got, want)
	}

	// The coordinator's fleet status is served on the same listener.
	resp, err := http.Get(fleetTS.URL + fleet.PathStatus)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st fleet.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if len(st.Workers) != 2 {
		t.Fatalf("fleet status workers = %d, want 2", len(st.Workers))
	}
	if st.TasksDone != 2 {
		t.Fatalf("fleet status tasks done = %d, want 2", st.TasksDone)
	}

	// Warm resubmission answers from the coordinator's store: all cached.
	warm := await(t, fleetTS, submit(t, fleetTS, quickSweep()).ID)
	if warm.Cells.Cached != warm.Cells.Total {
		t.Fatalf("warm fleet rerun cached %d of %d", warm.Cells.Cached, warm.Cells.Total)
	}

	// The catalog advertises fleet mode.
	cresp, err := http.Get(fleetTS.URL + "/api/v1/catalog")
	if err != nil {
		t.Fatal(err)
	}
	defer cresp.Body.Close()
	var catalog map[string]any
	if err := json.NewDecoder(cresp.Body).Decode(&catalog); err != nil {
		t.Fatal(err)
	}
	if catalog["fleet"] != true {
		t.Fatalf("catalog fleet = %v, want true", catalog["fleet"])
	}
}

// TestCrashtestThroughFleetServe runs a tiny crash-test exploration through
// the fleet dispatch path and checks it matches a local server's report.
func TestCrashtestThroughFleetServe(t *testing.T) {
	spec := JobSpec{Kind: KindCrashtest, Crashtests: []crashtest.Config{{
		Design: "DHTM", Workload: "queue", Cores: 2, TxPerCore: 1, OpsPerTx: 4,
	}}}

	_, localTS := newTestServer(t, t.TempDir(), 1)
	localSt := await(t, localTS, submit(t, localTS, spec).ID)
	if localSt.State != StateDone {
		t.Fatalf("local crashtest: %s (%s)", localSt.State, localSt.Error)
	}

	_, fleetTS := newFleetServer(t, 1)
	fleetSt := await(t, fleetTS, submit(t, fleetTS, spec).ID)
	if fleetSt.State != StateDone {
		t.Fatalf("fleet crashtest: %s (%s)", fleetSt.State, fleetSt.Error)
	}
	if len(fleetSt.Crashtests) != 1 || len(localSt.Crashtests) != 1 {
		t.Fatalf("reports: fleet %d local %d", len(fleetSt.Crashtests), len(localSt.Crashtests))
	}
	fr, lr := fleetSt.Crashtests[0], localSt.Crashtests[0]
	if fr.Explored != lr.Explored || fr.TotalPoints != lr.TotalPoints || fr.Failed != lr.Failed {
		t.Fatalf("fleet report %+v diverges from local %+v", fr, lr)
	}
}

// TestDrainRejectsNewJobs: a draining server refuses submissions with 503
// while finishing what it already accepted.
func TestDrainRejectsNewJobs(t *testing.T) {
	srv, ts := newTestServer(t, "", 1)

	st := submit(t, ts, quickSweep())
	srv.Drain() // blocks until the accepted job ran to completion

	body, _ := json.Marshal(quickSweep())
	resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: status %d: %s", resp.StatusCode, b)
	}
	if !strings.Contains(string(b), "draining") {
		t.Fatalf("drain rejection body: %s", b)
	}

	// The job accepted before the drain still finished.
	if got := getStatus(t, ts, st.ID); got.State != StateDone {
		t.Fatalf("pre-drain job state = %s (%s)", got.State, got.Error)
	}
}
