package serve

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"dhtm/internal/crashtest"
	"dhtm/internal/harness"
	"dhtm/internal/obs"
	"dhtm/internal/probe"
	"dhtm/internal/registry"
	"dhtm/internal/runner"
	"dhtm/internal/scenario"
)

// JobKind selects what a submitted campaign runs.
type JobKind string

const (
	// KindExperiment runs one or more of the paper's named experiments
	// (harness.Experiments) and renders their tables.
	KindExperiment JobKind = "experiment"
	// KindSweep runs a caller-supplied runner.Plan of cells.
	KindSweep JobKind = "sweep"
	// KindCrashtest runs a crash-point exploration.
	KindCrashtest JobKind = "crashtest"
)

// JobSpec is the JSON body of POST /api/v1/jobs.
type JobSpec struct {
	Kind JobKind `json:"kind"`

	// Experiment jobs: the experiment IDs to run (empty or ["all"] = every
	// experiment), plus the harness scaling knobs.
	Experiments []string `json:"experiments,omitempty"`
	Quick       bool     `json:"quick,omitempty"`
	TxPerCore   int      `json:"tx_per_core,omitempty"`
	Cores       int      `json:"cores,omitempty"`

	// Sweep jobs: the literal cell grid to run.
	Plan *runner.Plan `json:"plan,omitempty"`

	// Crashtest jobs: the exploration configuration. Crashtest carries a
	// single exploration; Crashtests a grid of them (what a crashtest-mode
	// scenario compiles to). Exactly one of the two may be set.
	Crashtest  *crashtest.Config  `json:"crashtest,omitempty"`
	Crashtests []crashtest.Config `json:"crashtests,omitempty"`

	// Shared knobs. Parallel is clamped to the server's per-job cap.
	Seed     int64 `json:"seed,omitempty"`
	Parallel int   `json:"parallel,omitempty"`
}

// specFromScenario lowers a compiled scenario document onto a job spec.
// The mapping is mechanical — scenario compilation already validated names
// and expanded grids — so a scenario POSTed to the service runs exactly the
// work the same file runs under a -scenario CLI flag.
func specFromScenario(c *scenario.Compiled) JobSpec {
	spec := JobSpec{Seed: c.Seed}
	switch c.Doc.Mode {
	case scenario.ModeExperiment:
		spec.Kind = KindExperiment
		for _, e := range c.Experiments {
			spec.Experiments = append(spec.Experiments, e.ID)
		}
		spec.Quick = c.Options.Quick
		spec.TxPerCore = c.Options.TxPerCore
		spec.Cores = c.Options.Cores
	case scenario.ModeSweep:
		spec.Kind = KindSweep
		plan := c.Plan
		spec.Plan = &plan
	case scenario.ModeCrashtest:
		spec.Kind = KindCrashtest
		spec.Crashtests = c.Crashtests
	}
	return spec
}

// crashtestConfigs normalizes the single and plural crashtest fields.
func (s *JobSpec) crashtestConfigs() []crashtest.Config {
	if s.Crashtest != nil {
		return []crashtest.Config{*s.Crashtest}
	}
	return s.Crashtests
}

// validate rejects malformed specs at submit time, so a queued job can only
// fail by simulating, never by parsing.
func (s *JobSpec) validate() error {
	switch s.Kind {
	case KindExperiment:
		ids := s.experimentIDs()
		for _, id := range ids {
			if _, ok := harness.Find(id); !ok {
				return fmt.Errorf("unknown experiment %q (valid: all, %s)", id, strings.Join(harness.ExperimentIDs(), ", "))
			}
		}
	case KindSweep:
		if s.Plan == nil || len(s.Plan.Cells) == 0 {
			return fmt.Errorf("sweep jobs need a non-empty plan")
		}
		if err := s.Plan.Validate(); err != nil {
			return err
		}
		for _, c := range s.Plan.Cells {
			if err := registry.CheckDesign(c.Design); err != nil {
				return fmt.Errorf("cell %q: %v", c.ID, err)
			}
			if err := registry.CheckWorkload(c.Workload); err != nil {
				return fmt.Errorf("cell %q: %v", c.ID, err)
			}
		}
	case KindCrashtest:
		if s.Crashtest != nil && len(s.Crashtests) > 0 {
			return fmt.Errorf("crashtest jobs take either \"crashtest\" or \"crashtests\", not both")
		}
		cfgs := s.crashtestConfigs()
		if len(cfgs) == 0 {
			return fmt.Errorf("crashtest jobs need a crashtest configuration")
		}
		for _, cfg := range cfgs {
			d, ok := registry.LookupDesign(cfg.Design)
			if !ok || !d.CrashSafe {
				return fmt.Errorf("design %q is not supported by the crash-point explorer (supported: %s)",
					cfg.Design, strings.Join(crashtest.Supported(), ", "))
			}
			if err := registry.CheckWorkload(cfg.Workload); err != nil {
				return err
			}
			if err := cfg.Points.Validate(); err != nil {
				return err
			}
			if err := cfg.Adversary.Validate(); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("unknown job kind %q (valid: %s, %s, %s)", s.Kind, KindExperiment, KindSweep, KindCrashtest)
	}
	return nil
}

// experimentIDs resolves the experiment selection ("all" and empty both mean
// everything).
func (s *JobSpec) experimentIDs() []string {
	if len(s.Experiments) == 0 {
		return harness.ExperimentIDs()
	}
	var ids []string
	for _, id := range s.Experiments {
		id = strings.TrimSpace(id)
		switch id {
		case "":
		case "all":
			return harness.ExperimentIDs()
		default:
			ids = append(ids, id)
		}
	}
	if len(ids) == 0 {
		return harness.ExperimentIDs()
	}
	return ids
}

// JobState is a job's lifecycle phase.
type JobState string

const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StateDone      JobState = "done"
	StateFailed    JobState = "failed"
	StateCancelled JobState = "cancelled"
)

// terminal reports whether the state is final.
func (s JobState) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// CellProgress counts a job's cells.
type CellProgress struct {
	Total int `json:"total"`
	Done  int `json:"done"`
	// Cached cells were answered by the result store without simulating;
	// Failed cells returned an error (cancellation included).
	Cached int `json:"cached"`
	Failed int `json:"failed"`
}

// Event is one progress notification, delivered over SSE and retained (up
// to maxEventHistory) for replay to later subscribers. Seq is dense per
// job, so a client that spots a gap — it drained too slowly and missed live
// deliveries, or old history was trimmed — knows to reconnect to /events
// for a fresh replay of everything still retained.
type Event struct {
	Seq  int       `json:"seq"`
	Type string    `json:"type"` // "state", "cell", "point", "done"
	Job  string    `json:"job"`
	Time time.Time `json:"time"`

	// State events.
	State JobState `json:"state,omitempty"`
	Error string   `json:"error,omitempty"`

	// Cell events (experiment and sweep jobs).
	Experiment string        `json:"experiment,omitempty"`
	Cell       string        `json:"cell,omitempty"`
	Cached     bool          `json:"cached,omitempty"`
	CellError  string        `json:"cell_error,omitempty"`
	Elapsed    time.Duration `json:"elapsed_ns,omitempty"`

	// Shared progress counters (cells for cell events, crash points for
	// point events).
	Done  int `json:"done,omitempty"`
	Total int `json:"total,omitempty"`
}

// ExperimentOutcome is one experiment's result within an experiment job.
type ExperimentOutcome struct {
	ID    string         `json:"id"`
	Title string         `json:"title"`
	Table *harness.Table `json:"table,omitempty"`
	Error string         `json:"error,omitempty"`
}

// CellOutcome is one cell's result within a sweep job — the shared shape
// (and table renderer) lives in the scenario package so the serve API and
// the CLIs cannot drift apart.
type CellOutcome = scenario.SweepOutcome

// Job is one submitted campaign. All mutable state is guarded by mu; the
// HTTP layer reads through snapshot methods.
type Job struct {
	ID   string  `json:"id"`
	Kind JobKind `json:"kind"`

	spec    JobSpec
	ctx     context.Context
	cancel  context.CancelFunc
	metrics *serveMetrics // nil for jobs built outside a server (tests)

	mu        sync.Mutex
	state     JobState
	err       string
	submitted time.Time
	started   time.Time
	finished  time.Time
	cells     CellProgress
	phases    obs.CellTrace // summed over the job's simulated cells
	events    []Event
	nextSeq   int
	subs      map[chan Event]struct{}

	experiments []ExperimentOutcome
	sweep       []CellOutcome
	crashtests  []*crashtest.Report

	// traces holds the cycle-domain probe recordings of the job's simulated
	// cells (present only when the server runs with tracing on; cache hits
	// carry none), capped at maxJobTraces per job.
	traces map[string]*probe.Timeline
}

// Status is the polling view of a job (GET /api/v1/jobs/{id}). The JSON
// shape is pinned by the golden test in status_golden_test.go.
type Status struct {
	ID    string   `json:"id"`
	Kind  JobKind  `json:"kind"`
	State JobState `json:"state"`
	Error string   `json:"error,omitempty"`
	// QueuedAt is when the job was accepted; StartedAt/FinishedAt bound its
	// execution and are omitted until reached (RFC 3339 like every
	// encoding/json time).
	QueuedAt   time.Time    `json:"queued_at"`
	StartedAt  time.Time    `json:"started_at,omitzero"`
	FinishedAt time.Time    `json:"finished_at,omitzero"`
	Cells      CellProgress `json:"cells"`
	// PhaseNS is the wall-clock phase breakdown summed over the job's
	// actually-simulated cells, keyed by obs phase name (clone, setup, run,
	// verify, store_write), in nanoseconds. Cached cells contribute nothing.
	PhaseNS map[string]int64 `json:"phase_ns,omitempty"`
	Events  int              `json:"events"`

	// Spec and the result payloads below are included by the single-job
	// endpoint and omitted from listings.
	Spec *JobSpec `json:"spec,omitempty"`

	Experiments []ExperimentOutcome `json:"experiments,omitempty"`
	Sweep       []CellOutcome       `json:"sweep,omitempty"`
	Crashtests  []*crashtest.Report `json:"crashtests,omitempty"`

	// Traces lists the cell keys with a recorded probe timeline, each served
	// by GET /api/v1/jobs/{id}/cells/{key}/trace. Empty when the server runs
	// without tracing or every cell was a cache hit.
	Traces []string `json:"traces,omitempty"`
}

// status snapshots the job under its lock, results included.
func (j *Job) status() Status {
	st := j.summary()
	j.mu.Lock()
	defer j.mu.Unlock()
	spec := j.spec
	st.Spec = &spec
	st.Experiments = append([]ExperimentOutcome(nil), j.experiments...)
	st.Sweep = append([]CellOutcome(nil), j.sweep...)
	st.Crashtests = append([]*crashtest.Report(nil), j.crashtests...)
	if len(j.traces) > 0 {
		st.Traces = make([]string, 0, len(j.traces))
		for key := range j.traces {
			st.Traces = append(st.Traces, key)
		}
		sort.Strings(st.Traces)
	}
	return st
}

// trace returns the probe timeline recorded for one cell, or nil.
func (j *Job) trace(key string) *probe.Timeline {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.traces[key]
}

// maxJobTraces caps the probe timelines retained per job: a full-suite
// campaign has hundreds of cells and each timeline is tens of kilobytes, so
// the job keeps the first arrivals and the status lists exactly which.
const maxJobTraces = 64

// summary is the listing view: lifecycle and counters only, no result
// payloads — a job list stays constant-size per job no matter how many
// tables and cells each job produced.
func (j *Job) summary() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID: j.ID, Kind: j.Kind, State: j.state, Error: j.err,
		QueuedAt: j.submitted, StartedAt: j.started, FinishedAt: j.finished,
		Cells: j.cells, Events: j.nextSeq,
	}
	j.phases.Each(func(p obs.Phase, d time.Duration) {
		if st.PhaseNS == nil {
			st.PhaseNS = make(map[string]int64, obs.NumPhases)
		}
		st.PhaseNS[p.String()] = int64(d)
	})
	return st
}

// maxEventHistory caps a job's retained event history. History exists only
// to replay progress to late SSE subscribers, so when a job outgrows the
// cap (an exhaustive crashtest has tens of thousands of points) the oldest
// half is dropped — late subscribers see a Seq gap, not a memory leak.
const maxEventHistory = 4096

// publish appends an event to the job's history and fans it out to SSE
// subscribers. A subscriber too slow to drain its buffer misses the live
// delivery; the Seq gap tells it to reconnect for a replay.
func (j *Job) publish(ev Event) {
	j.mu.Lock()
	ev.Seq = j.nextSeq
	j.nextSeq++
	ev.Job = j.ID
	ev.Time = time.Now()
	if len(j.events) >= maxEventHistory {
		j.events = append(j.events[:0], j.events[maxEventHistory/2:]...)
	}
	j.events = append(j.events, ev)
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
	j.mu.Unlock()
}

// subscribe returns the event history so far and a channel carrying every
// later event. When the job is already terminal the channel arrives closed.
func (j *Job) subscribe() ([]Event, chan Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	history := append([]Event(nil), j.events...)
	ch := make(chan Event, 256)
	if j.state.terminal() {
		close(ch)
		return history, ch
	}
	j.subs[ch] = struct{}{}
	return history, ch
}

// unsubscribe detaches an SSE client.
func (j *Job) unsubscribe(ch chan Event) {
	j.mu.Lock()
	if _, ok := j.subs[ch]; ok {
		delete(j.subs, ch)
		close(ch)
	}
	j.mu.Unlock()
}

// setState transitions the job and publishes a state event.
func (j *Job) setState(state JobState, errMsg string) {
	j.mu.Lock()
	prev := j.state
	j.state = state
	j.err = errMsg
	switch state {
	case StateRunning:
		j.started = time.Now()
	case StateDone, StateFailed, StateCancelled:
		j.finished = time.Now()
	}
	submitted := j.submitted
	j.mu.Unlock()
	j.metrics.jobTransition(prev, state, submitted)
	j.publish(Event{Type: "state", State: state, Error: errMsg})
	if state.terminal() {
		j.mu.Lock()
		subs := j.subs
		j.subs = map[chan Event]struct{}{}
		j.mu.Unlock()
		for ch := range subs {
			close(ch)
		}
	}
}

// cellDone folds one completed cell into the job's counters and publishes
// its event.
func (j *Job) cellDone(experiment string, ev runner.ProgressEvent) {
	j.mu.Lock()
	j.cells.Done++
	if ev.Result.Cached {
		j.cells.Cached++
	}
	if ev.Result.Err != nil {
		j.cells.Failed++
	}
	ev.Result.Run.Phases.Each(func(p obs.Phase, d time.Duration) { j.phases.Add(p, d) })
	if tl := ev.Result.Run.Timeline; tl != nil && len(j.traces) < maxJobTraces {
		if j.traces == nil {
			j.traces = make(map[string]*probe.Timeline)
		}
		j.traces[ev.Result.Cell.ID] = tl
	}
	done, total := j.cells.Done, j.cells.Total
	j.mu.Unlock()
	cellErr := ""
	if ev.Result.Err != nil {
		cellErr = ev.Result.Err.Error()
	}
	j.publish(Event{
		Type: "cell", Experiment: experiment, Cell: ev.Result.Cell.ID,
		Cached: ev.Result.Cached, CellError: cellErr, Elapsed: ev.Result.Elapsed,
		Done: done, Total: total,
	})
}
