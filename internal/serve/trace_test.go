package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dhtm/internal/resultstore"
)

// newTracedServer is newTestServer with cycle-domain probe tracing enabled.
func newTracedServer(t *testing.T, dir string, interval uint64) (*Server, *httptest.Server) {
	t.Helper()
	store, err := resultstore.Open(dir, resultstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Store: store, Workers: 1, TraceInterval: interval})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// getBody fetches a URL and returns status code and body.
func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// TestTraceEndpoint drives a traced sweep end to end: the finished job lists
// its traced cells, serves each one as a Chrome trace-event document (with a
// slash-bearing cell key addressed as one escaped path segment) and as the
// compact timeline, and stamps every sampled row on a nondecreasing cycle
// grid.
func TestTraceEndpoint(t *testing.T) {
	_, ts := newTracedServer(t, t.TempDir(), 256)

	st := submit(t, ts, quickSweep())
	final := await(t, ts, st.ID)
	if final.State != StateDone {
		t.Fatalf("job finished %s (%s)", final.State, final.Error)
	}
	if len(final.Traces) != 2 {
		t.Fatalf("traces = %v, want both cells", final.Traces)
	}
	if final.Traces[0] != "ATOM/queue" || final.Traces[1] != "DHTM/hash" {
		t.Fatalf("traces not sorted: %v", final.Traces)
	}

	// Cell keys contain a slash; they travel as one escaped segment.
	base := ts.URL + "/api/v1/jobs/" + st.ID + "/cells/DHTM%2Fhash/trace"

	code, body := getBody(t, base)
	if code != http.StatusOK {
		t.Fatalf("chrome trace: status %d: %s", code, body)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   uint64         `json:"ts"`
			PID  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" || len(doc.TraceEvents) == 0 {
		t.Fatalf("chrome trace shape: unit=%q events=%d", doc.DisplayTimeUnit, len(doc.TraceEvents))
	}
	if ev := doc.TraceEvents[0]; ev.Ph != "M" || ev.Name != "process_name" {
		t.Fatalf("first event should name the process, got %+v", ev)
	}
	lastTS := map[string]uint64{}
	counters := 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "C" {
			continue
		}
		counters++
		if prev, ok := lastTS[ev.Name]; ok && ev.TS < prev {
			t.Fatalf("counter %s went backwards: %d after %d", ev.Name, ev.TS, prev)
		}
		lastTS[ev.Name] = ev.TS
	}
	if counters == 0 {
		t.Fatal("chrome trace carries no counter samples")
	}

	code, body = getBody(t, base+"?format=timeline")
	if code != http.StatusOK {
		t.Fatalf("timeline: status %d: %s", code, body)
	}
	var tl struct {
		FormatVersion int      `json:"format_version"`
		Cell          string   `json:"cell"`
		Interval      uint64   `json:"interval"`
		Cycles        []uint64 `json:"cycles"`
		Signals       []struct {
			Name   string    `json:"name"`
			Values []float64 `json:"values"`
		} `json:"signals"`
	}
	if err := json.Unmarshal([]byte(body), &tl); err != nil {
		t.Fatalf("timeline is not valid JSON: %v", err)
	}
	if tl.FormatVersion != 1 || tl.Cell != "DHTM/hash" || tl.Interval != 256 {
		t.Fatalf("timeline header: %+v", tl)
	}
	for i := 1; i < len(tl.Cycles); i++ {
		if tl.Cycles[i] < tl.Cycles[i-1] {
			t.Fatalf("cycle stamps went backwards at %d: %v", i, tl.Cycles)
		}
	}
	want := map[string]bool{
		"wal/occupancy_max": false, "mem/persist_queue_depth": false,
		"htm/abort_rate": false, "mem/log_bytes": false,
	}
	for _, sig := range tl.Signals {
		if len(sig.Values) != len(tl.Cycles) {
			t.Fatalf("signal %s has %d values for %d stamps", sig.Name, len(sig.Values), len(tl.Cycles))
		}
		if _, ok := want[sig.Name]; ok {
			want[sig.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Fatalf("timeline missing signal %s (have %d signals)", name, len(tl.Signals))
		}
	}
}

// TestTraceCacheHitAndDisabled pins the graceful degradation: a job whose
// cells were all answered from the result store records no trace, as does a
// server running with tracing off — both answer 404 with a message saying
// why, and neither lists traced cells in its status.
func TestTraceCacheHitAndDisabled(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTracedServer(t, dir, 256)

	first := await(t, ts, submit(t, ts, quickSweep()).ID)
	if len(first.Traces) != 2 {
		t.Fatalf("warm-up job traces = %v", first.Traces)
	}

	// Same campaign again: every cell is a store hit, so no simulation ran
	// and no trace exists.
	second := await(t, ts, submit(t, ts, quickSweep()).ID)
	if second.Cells.Cached != 2 {
		t.Fatalf("resubmit should be a full cache hit, got %+v", second.Cells)
	}
	if len(second.Traces) != 0 {
		t.Fatalf("cache-hit job should record no traces, got %v", second.Traces)
	}
	code, body := getBody(t, ts.URL+"/api/v1/jobs/"+second.ID+"/cells/DHTM%2Fhash/trace")
	if code != http.StatusNotFound || !strings.Contains(body, "no trace recorded") {
		t.Fatalf("cache-hit trace fetch: status %d body %q", code, body)
	}

	// Tracing off entirely: same 404.
	_, off := newTestServer(t, t.TempDir(), 1)
	done := await(t, off, submit(t, off, quickSweep()).ID)
	if len(done.Traces) != 0 {
		t.Fatalf("untraced server recorded traces: %v", done.Traces)
	}
	code, body = getBody(t, off.URL+"/api/v1/jobs/"+done.ID+"/cells/DHTM%2Fhash/trace")
	if code != http.StatusNotFound || !strings.Contains(body, "no trace recorded") {
		t.Fatalf("untraced trace fetch: status %d body %q", code, body)
	}
}
