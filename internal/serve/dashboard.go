package serve

import "net/http"

// handleDashboard serves the single-file live dashboard at GET /. It is
// plain HTML + vanilla JS over the existing JSON API (jobs, store) and the
// SSE stream — no assets, no build step, nothing the API does not already
// expose.
func (s *Server) handleDashboard(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write([]byte(dashboardHTML))
}

const dashboardHTML = `<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>dhtm-serve</title>
<style>
  body { font: 14px/1.5 ui-monospace, SFMono-Regular, Menlo, Consolas, monospace;
         margin: 2rem auto; max-width: 72rem; padding: 0 1rem; color: #222; background: #fdfdfd; }
  h1 { font-size: 1.2rem; } h1 small { color: #888; font-weight: normal; }
  table { border-collapse: collapse; width: 100%; margin: .75rem 0 1.5rem; }
  th, td { text-align: left; padding: .25rem .6rem; border-bottom: 1px solid #e4e4e4; white-space: nowrap; }
  th { color: #666; font-weight: 600; border-bottom: 2px solid #ccc; }
  td.num, th.num { text-align: right; }
  .stats { display: flex; flex-wrap: wrap; gap: .5rem 2rem; margin: .75rem 0; }
  .stats div b { display: block; font-size: 1.15rem; }
  .state-queued { color: #a60; } .state-running { color: #06c; }
  .state-done { color: #181; } .state-failed { color: #c22; } .state-cancelled { color: #888; }
  .bar { display: inline-block; width: 9rem; height: .6rem; background: #eee; border-radius: 3px; vertical-align: middle; }
  .bar i { display: block; height: 100%; background: #06c; border-radius: 3px; }
  .muted { color: #888; }
  a { color: #06c; }
</style>
</head>
<body>
<h1>dhtm-serve <small>· live campaign dashboard · <a href="/metrics">/metrics</a> · <a href="/api/v1/catalog">catalog</a></small></h1>

<div class="stats" id="stats"></div>

<div id="fleet"></div>

<h2 style="font-size:1rem">Jobs</h2>
<table>
  <thead><tr>
    <th>id</th><th>kind</th><th>state</th><th>progress</th>
    <th class="num">cells</th><th class="num">cached</th><th class="num">failed</th>
    <th>queued</th><th>started</th><th>finished</th><th>phases</th>
  </tr></thead>
  <tbody id="jobs"><tr><td colspan="11" class="muted">loading…</td></tr></tbody>
</table>

<div id="detail"></div>

<script>
"use strict";
const streams = new Map(); // job id -> EventSource
const live = new Map();    // job id -> {done, total} from SSE, fresher than polls

function fmtTime(t) {
  if (!t) return "";
  return new Date(t).toLocaleTimeString();
}
function fmtPhases(ph) {
  if (!ph) return "";
  return Object.entries(ph)
    .map(([k, ns]) => k + " " + (ns / 1e9).toFixed(2) + "s")
    .join(" · ");
}
function ratio(hits, total) {
  return total ? (100 * hits / total).toFixed(1) + "%" : "–";
}

function watch(job) {
  if (streams.has(job.id)) return;
  const es = new EventSource("/api/v1/jobs/" + job.id + "/events");
  streams.set(job.id, es);
  es.addEventListener("cell", e => {
    const ev = JSON.parse(e.data);
    live.set(job.id, {done: ev.done, total: ev.total});
    render();
  });
  es.addEventListener("point", e => {
    const ev = JSON.parse(e.data);
    live.set(job.id, {done: ev.done, total: ev.total});
    render();
  });
  es.addEventListener("done", () => { es.close(); streams.delete(job.id); refresh(); });
  es.onerror = () => { es.close(); streams.delete(job.id); };
}

let jobs = [], store = null, fleet = null;
// renderFleet fills the fleet panel; only coordinators (-fleet) serve
// /api/v1/fleet/status, so the panel stays absent on single-node servers.
function renderFleet() {
  const el = document.getElementById("fleet");
  if (!fleet) { el.innerHTML = ""; return; }
  const ws = fleet.workers || [];
  let html = '<h2 style="font-size:1rem">Fleet</h2><div class="stats">' +
    "<div><b>" + ws.length + "</b>workers</div>" +
    "<div><b>" + fleet.queue_depth + "</b>queued tasks</div>" +
    "<div><b>" + fleet.leases + "</b>leased batches</div>" +
    "<div><b>" + fleet.tasks_done + "</b>tasks done</div>" +
    "<div><b>" + fleet.tasks_failed + "</b>tasks failed</div>" +
    "<div><b>" + fleet.requeues + "</b>requeues/steals</div></div>";
  if (ws.length) {
    html += "<table><thead><tr><th>worker</th><th>name</th>" +
      '<th class="num">parallel</th><th class="num">cells</th>' +
      '<th class="num">batches</th><th class="num">last seen</th></tr></thead><tbody>' +
      ws.map(w => "<tr><td>" + w.id + "</td><td>" + w.name + "</td>" +
        '<td class="num">' + w.parallel + '</td><td class="num">' + w.cells + "</td>" +
        '<td class="num">' + w.batches + '</td><td class="num">' + (w.last_seen_ms / 1000).toFixed(1) + "s ago</td></tr>").join("") +
      "</tbody></table>";
  } else {
    html += '<p class="muted">no workers registered — start some with: dhtm-serve -worker -coordinator ' +
      location.origin + "</p>";
  }
  el.innerHTML = html;
}

function render() {
  const tbody = document.getElementById("jobs");
  if (!jobs.length) {
    tbody.innerHTML = '<tr><td colspan="11" class="muted">no jobs yet — POST a JobSpec or scenario to /api/v1/jobs</td></tr>';
  } else {
    tbody.innerHTML = jobs.slice().reverse().map(j => {
      const p = live.get(j.id) || {done: j.cells.done, total: j.cells.total};
      const pct = p.total ? Math.round(100 * p.done / p.total) : 0;
      const prog = p.total
        ? '<span class="bar"><i style="width:' + pct + '%"></i></span> ' + p.done + "/" + p.total
        : '<span class="muted">–</span>';
      return "<tr>" +
        '<td><a href="/api/v1/jobs/' + j.id + '">' + j.id + "</a>" +
          (j.state === "done" ? ' <a href="/api/v1/jobs/' + j.id + '/tables?meta=1">tables</a>' +
            ' <a href="#detail" onclick="showTraces(\'' + j.id + '\')">traces</a>' : "") + "</td>" +
        "<td>" + j.kind + "</td>" +
        '<td class="state-' + j.state + '">' + j.state +
          (j.error ? ' <span class="muted" title="' + j.error.replaceAll('"', "&quot;") + '">⚠</span>' : "") + "</td>" +
        "<td>" + prog + "</td>" +
        '<td class="num">' + j.cells.done + "</td>" +
        '<td class="num">' + j.cells.cached + "</td>" +
        '<td class="num">' + j.cells.failed + "</td>" +
        "<td>" + fmtTime(j.queued_at) + "</td>" +
        "<td>" + fmtTime(j.started_at) + "</td>" +
        "<td>" + fmtTime(j.finished_at) + "</td>" +
        '<td class="muted">' + fmtPhases(j.phase_ns) + "</td>" +
        "</tr>";
    }).join("");
  }

  const el = document.getElementById("stats");
  if (store) {
    const m = store.metrics, sn = store.snapshots;
    const hits = m.mem_hits + m.disk_hits;
    const lookups = hits + m.misses;
    const states = {};
    for (const j of jobs) states[j.state] = (states[j.state] || 0) + 1;
    el.innerHTML =
      "<div><b>" + (states.running || 0) + "</b>running</div>" +
      "<div><b>" + (states.queued || 0) + "</b>queued</div>" +
      "<div><b>" + jobs.length + "</b>jobs retained</div>" +
      "<div><b>" + ratio(hits, lookups) + "</b>store hit ratio (" + hits + "/" + lookups + ")</div>" +
      "<div><b>" + m.computes + "</b>simulated</div>" +
      "<div><b>" + ratio(sn.hits, sn.hits + sn.misses) + "</b>snapshot hit ratio</div>" +
      "<div><b>" + sn.clones + "</b>COW clones</div>" +
      (store.dir ? "<div><b>" + store.dir + "</b>store dir</div>" : "<div><b>memory</b>store</div>");
  }
}

// spark renders one signal as an inline SVG sparkline, x-scaled by cycle
// stamp so decimated (doubled-stride) tails keep their true spacing.
function spark(cycles, values) {
  const W = 220, H = 24;
  if (!values.length) return "";
  let max = Math.max(...values), min = Math.min(...values);
  if (max === min) max = min + 1;
  const cmax = cycles[cycles.length - 1] || 1;
  const pts = values.map((v, i) =>
    (W * cycles[i] / cmax).toFixed(1) + "," +
    (H - 1 - (H - 2) * (v - min) / (max - min)).toFixed(1)).join(" ");
  return '<svg width="' + W + '" height="' + H + '" style="vertical-align:middle">' +
    '<polyline fill="none" stroke="#06c" stroke-width="1" points="' + pts + '"/></svg>';
}

// showTraces renders the per-signal sparklines of a job's traced cells, or
// a clear "no trace recorded" state when the job has none (tracing off, or
// every cell answered from the result store).
async function showTraces(id) {
  const el = document.getElementById("detail");
  const head = '<h2 style="font-size:1rem">Cell traces · ' + id + '</h2>';
  el.innerHTML = head + '<p class="muted">loading…</p>';
  let st;
  try {
    st = await (await fetch("/api/v1/jobs/" + id)).json();
  } catch (e) {
    el.innerHTML = head + '<p class="muted">failed to load job</p>';
    return;
  }
  const keys = st.traces || [];
  if (!keys.length) {
    el.innerHTML = head + '<p class="muted">no trace recorded — the server runs without ' +
      "-trace-interval, or every cell of this job was a result-store cache hit.</p>";
    return;
  }
  let html = head;
  for (const key of keys.slice(0, 8)) {
    const url = "/api/v1/jobs/" + id + "/cells/" + encodeURIComponent(key) + "/trace";
    let tl;
    try {
      tl = await (await fetch(url + "?format=timeline")).json();
    } catch (e) { continue; }
    html += '<h3 style="font-size:.95rem">' + key +
      ' <small class="muted">stride ' + tl.stride + ' cycles · <a href="' + url + '">perfetto json</a>' +
      ' · <a href="' + url + '?format=timeline">timeline</a></small></h3>';
    html += "<table><tbody>" + tl.signals.map(s =>
      "<tr><td>" + s.name + '</td><td class="muted">' + s.unit + "</td>" +
      "<td>" + spark(tl.cycles, s.values) + "</td>" +
      '<td class="num">' + s.values[s.values.length - 1] + "</td></tr>").join("") +
      "</tbody></table>";
  }
  if (keys.length > 8) {
    html += '<p class="muted">' + (keys.length - 8) + " more traced cells in /api/v1/jobs/" + id + " → traces</p>";
  }
  el.innerHTML = html;
}

async function refresh() {
  try {
    const [jr, sr, fr] = await Promise.all([
      fetch("/api/v1/jobs"), fetch("/api/v1/store"), fetch("/api/v1/fleet/status")]);
    jobs = await jr.json() || [];
    store = await sr.json();
    fleet = fr.ok ? await fr.json() : null;
  } catch (e) { /* server restarting; keep the last view */ }
  for (const j of jobs) if (j.state === "running" || j.state === "queued") watch(j);
  renderFleet();
  render();
}
refresh();
setInterval(refresh, 2000);
</script>
</body>
</html>
`
