// Package serve is the campaign service of the reproduction: an HTTP API
// that accepts experiment, sweep and crash-test campaigns as JSON jobs,
// executes them on a bounded worker pool through the existing runner, and
// streams per-cell progress to any number of clients. Wired to a
// resultstore.Store, it is the serving layer the ROADMAP's production
// north-star asks for: a cell is simulated at most once ever — concurrent
// submits share in-flight computes (singleflight), later submits are
// answered from memory or disk without simulating, and interrupted
// campaigns resume from what already persisted.
//
// API (all under /api/v1):
//
//	POST   /jobs             submit a JobSpec               -> Status (202)
//	GET    /jobs             list jobs                      -> []Status
//	GET    /jobs/{id}        poll one job                   -> Status
//	DELETE /jobs/{id}        cancel a queued or running job -> Status
//	GET    /jobs/{id}/events Server-Sent Events progress stream
//	GET    /jobs/{id}/tables rendered harness tables (text/plain)
//	GET    /store            result-store and snapshot-cache metrics
//	GET    /catalog          experiments, designs, workloads the service runs
//	GET    /healthz          liveness (also at top level /healthz)
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dhtm/internal/crashtest"
	"dhtm/internal/fleet"
	"dhtm/internal/harness"
	"dhtm/internal/obs"
	"dhtm/internal/probe"
	"dhtm/internal/registry"
	"dhtm/internal/resultstore"
	"dhtm/internal/runner"
	"dhtm/internal/scenario"
	"dhtm/internal/snapshot"
)

// Config assembles a server.
type Config struct {
	// Store answers repeated cells without simulating. Required; use a
	// memory-only store (resultstore.Open("", ...)) to serve without
	// persistence.
	Store *resultstore.Store
	// Workers bounds how many jobs execute concurrently (<= 0 means 2).
	// Queued jobs wait their turn in submission order.
	Workers int
	// CellParallel caps each job's cell worker pool (<= 0 means GOMAXPROCS).
	// A job asking for more is clamped, so one greedy campaign cannot
	// oversubscribe the host.
	CellParallel int
	// MaxJobs bounds the retained job history (<= 0 means 1024). Submits
	// beyond it are rejected with 503 until old terminal jobs are evicted.
	MaxJobs int
	// Registry receives the server's dhtm_serve_* metric families and backs
	// GET /metrics. Nil means obs.Default — the process-wide plane that the
	// runner, crashtest and snapshot layers already report into.
	Registry *obs.Registry
	// Logger receives structured request and job lifecycle logs. Nil disables
	// logging.
	Logger *slog.Logger
	// Pprof mounts net/http/pprof under /debug/pprof/ when true. Off by
	// default: profiling endpoints expose heap contents and should be
	// opted into on trusted listeners only.
	Pprof bool
	// TraceInterval, when > 0, records cycle-domain probes for every cell
	// the server actually simulates, sampling every TraceInterval simulated
	// cycles. Traces are served per cell from
	// GET /api/v1/jobs/{id}/cells/{key}/trace; cache hits carry none.
	TraceInterval uint64
	// Fleet, when non-nil, turns the server into a campaign coordinator:
	// jobs dispatch their cell grids and crashtest configs across registered
	// fleet workers instead of the local runner pool, and the fleet protocol
	// mounts under /api/v1/fleet. The coordinator must share this server's
	// Store. Cycle tracing does not cross the wire, so TraceInterval is
	// ignored for fleet-dispatched cells.
	Fleet *fleet.Coordinator
}

// serveMetrics bundles the server's registry handles. All methods are
// nil-receiver-safe so Jobs built outside a server (tests) need no wiring.
type serveMetrics struct {
	queueDepth *obs.Gauge
	sseSubs    *obs.Gauge
	jobSeconds *obs.Histogram
	jobsTotal  map[JobState]*obs.Counter
	jobsGauge  map[JobState]*obs.Gauge
	reg        *obs.Registry
}

func newServeMetrics(reg *obs.Registry) *serveMetrics {
	m := &serveMetrics{
		reg: reg,
		queueDepth: reg.Gauge("dhtm_serve_queue_depth",
			"Jobs accepted but still waiting for a worker slot."),
		sseSubs: reg.Gauge("dhtm_serve_sse_subscribers",
			"Currently connected SSE progress streams."),
		jobSeconds: reg.Histogram("dhtm_serve_job_seconds",
			"Job wall-clock time from submission to a terminal state.", obs.DurationBuckets),
		jobsTotal: make(map[JobState]*obs.Counter),
		jobsGauge: make(map[JobState]*obs.Gauge),
	}
	for _, st := range []JobState{StateQueued, StateRunning, StateDone, StateFailed, StateCancelled} {
		m.jobsTotal[st] = reg.Counter("dhtm_serve_jobs_total",
			"Job state transitions entered, by state.", obs.L("state", string(st)))
		m.jobsGauge[st] = reg.Gauge("dhtm_serve_jobs",
			"Retained jobs currently in each state.", obs.L("state", string(st)))
	}
	return m
}

// jobAccepted records a freshly submitted job (its first state is queued,
// entered without a setState transition).
func (m *serveMetrics) jobAccepted() {
	if m == nil {
		return
	}
	m.jobsTotal[StateQueued].Inc()
	m.jobsGauge[StateQueued].Inc()
	m.queueDepth.Inc()
}

// jobTransition records a state change; on a terminal state it also observes
// the job's submit-to-finish latency.
func (m *serveMetrics) jobTransition(from, to JobState, submitted time.Time) {
	if m == nil || from == to {
		return
	}
	m.jobsTotal[to].Inc()
	if g, ok := m.jobsGauge[from]; ok {
		g.Dec()
	}
	m.jobsGauge[to].Inc()
	if to.terminal() {
		m.jobSeconds.ObserveSince(submitted)
	}
}

// jobEvicted drops an evicted job from the composition gauge.
func (m *serveMetrics) jobEvicted(state JobState) {
	if m == nil {
		return
	}
	if g, ok := m.jobsGauge[state]; ok {
		g.Dec()
	}
}

// Server executes campaigns. Create with New, expose with Handler.
type Server struct {
	cfg     Config
	metrics *serveMetrics
	log     *slog.Logger
	nextReq atomic.Uint64 // request-ID counter

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string // submission order, for listing and eviction
	nextID int

	sem      chan struct{} // job worker-pool slots
	wg       sync.WaitGroup
	baseCtx  context.Context
	stop     context.CancelFunc
	draining atomic.Bool
}

// New returns a ready server. Call Close to cancel running jobs on
// shutdown.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("serve: Config.Store is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.CellParallel <= 0 {
		// Without a cap a client could ask for arbitrary per-job parallelism;
		// GOMAXPROCS keeps "one greedy campaign cannot oversubscribe the
		// host" true by default.
		cfg.CellParallel = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 1024
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.Default
	}
	log := cfg.Logger
	if log == nil {
		log = slog.New(slog.DiscardHandler)
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		cfg:     cfg,
		metrics: newServeMetrics(cfg.Registry),
		log:     log,
		jobs:    make(map[string]*Job),
		sem:     make(chan struct{}, cfg.Workers),
		baseCtx: ctx,
		stop:    cancel,
	}, nil
}

// Close cancels every job and waits for the running ones to wind down.
func (s *Server) Close() {
	s.stop()
	s.wg.Wait()
}

// Drain is the graceful half of shutdown: new submissions are rejected with
// 503, queued and running jobs run to completion, and only then does the
// server close. A caller that cannot wait (a second SIGTERM) should call
// Close, which cancels the remaining jobs outright.
func (s *Server) Drain() {
	s.draining.Store(true)
	s.wg.Wait()
	s.Close()
}

// Store exposes the server's result store (the CLI reports its metrics on
// shutdown).
func (s *Server) Store() *resultstore.Store { return s.cfg.Store }

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /{$}", s.handleDashboard)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.Handle("GET /metrics", s.cfg.Registry.Handler())
	mux.HandleFunc("GET /api/v1/store", s.handleStore)
	mux.HandleFunc("GET /api/v1/catalog", s.handleCatalog)
	mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/jobs", s.handleList)
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /api/v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /api/v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /api/v1/jobs/{id}/tables", s.handleTables)
	mux.HandleFunc("GET /api/v1/jobs/{id}/cells/{key}/trace", s.handleTrace)
	if s.cfg.Fleet != nil {
		mux.Handle(fleet.APIBase+"/", s.cfg.Fleet.Handler())
	}
	if s.cfg.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s.instrument(mux)
}

// statusWriter captures the response code for request metrics and logs. It
// forwards Flush so SSE streaming keeps working through the wrapper.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps the API with per-handler request metrics and structured
// request logging. Handlers are labelled by their route pattern, never the
// raw URL, so the label space stays bounded.
func (s *Server) instrument(mux *http.ServeMux) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reqID := fmt.Sprintf("req-%06d", s.nextReq.Add(1))
		w.Header().Set("X-Request-Id", reqID)
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		mux.ServeHTTP(sw, r)
		elapsed := time.Since(start)

		pattern := r.Pattern
		if pattern == "" {
			pattern = "unmatched"
		}
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		s.cfg.Registry.Counter("dhtm_serve_requests_total",
			"HTTP requests served, by route pattern.", obs.L("handler", pattern)).Inc()
		s.cfg.Registry.Histogram("dhtm_serve_request_seconds",
			"HTTP request latency, by route pattern.", obs.DurationBuckets, obs.L("handler", pattern)).Observe(elapsed.Seconds())
		s.log.Info("request",
			"req_id", reqID,
			"method", r.Method,
			"path", r.URL.Path,
			"handler", pattern,
			"status", sw.status,
			"elapsed", elapsed,
		)
	})
}

// writeJSON writes v with status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// apiError is the JSON error body.
type apiError struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	n := len(s.order)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "jobs": n})
}

func (s *Server) handleStore(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"dir":       s.cfg.Store.Dir(),
		"metrics":   s.cfg.Store.Metrics(),
		"snapshots": snapshot.Default.Metrics(),
	})
}

func (s *Server) handleCatalog(w http.ResponseWriter, r *http.Request) {
	type experiment struct {
		ID    string `json:"id"`
		Title string `json:"title"`
	}
	var exps []experiment
	for _, e := range harness.Experiments() {
		exps = append(exps, experiment{ID: e.ID, Title: e.Title})
	}
	// The design and workload sections are the registry entries verbatim —
	// names, descriptions, tags and crash-safety — so the catalog is always
	// exactly what submissions validate against.
	writeJSON(w, http.StatusOK, map[string]any{
		"experiments":             exps,
		"designs":                 registry.Designs(),
		"workloads":               registry.Workloads(),
		"crashtest_designs":       crashtest.Supported(),
		"job_kinds":               []JobKind{KindExperiment, KindSweep, KindCrashtest},
		"scenario_format_version": scenario.FormatVersion,
		"workers":                 s.cfg.Workers,
		"cell_parallel_cap":       s.cfg.CellParallel,
		"result_store_dir":        s.cfg.Store.Dir(),
		"fleet":                   s.cfg.Fleet != nil,
	})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 16<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading job body: %v", err)
		return
	}
	var spec JobSpec
	if scenario.Sniff(body) {
		// A scenario document (it carries a format_version) — the exact file
		// the CLIs run with -scenario. Compile it to a job spec, so one
		// campaign spec runs identically on a laptop and against the service.
		doc, err := scenario.Parse(body)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		compiled, err := doc.Compile()
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		spec = specFromScenario(compiled)
	} else {
		dec := json.NewDecoder(bytes.NewReader(body))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			writeError(w, http.StatusBadRequest, "decoding job spec: %v", err)
			return
		}
	}
	if err := spec.validate(); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	job, err := s.submit(spec)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	w.Header().Set("Location", "/api/v1/jobs/"+job.ID)
	writeJSON(w, http.StatusAccepted, job.status())
}

// submit registers the job and hands it to the worker pool.
func (s *Server) submit(spec JobSpec) (*Job, error) {
	if s.draining.Load() {
		return nil, fmt.Errorf("server is draining; not accepting new jobs")
	}
	s.mu.Lock()
	if len(s.order) >= s.cfg.MaxJobs && !s.evictOneLocked() {
		s.mu.Unlock()
		return nil, fmt.Errorf("job table full (%d jobs, none terminal)", s.cfg.MaxJobs)
	}
	s.nextID++
	ctx, cancel := context.WithCancel(s.baseCtx)
	job := &Job{
		ID:        fmt.Sprintf("job-%06d", s.nextID),
		Kind:      spec.Kind,
		spec:      spec,
		ctx:       ctx,
		cancel:    cancel,
		metrics:   s.metrics,
		state:     StateQueued,
		submitted: time.Now(),
		subs:      map[chan Event]struct{}{},
	}
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	s.mu.Unlock()
	s.metrics.jobAccepted()
	s.log.Info("job accepted", "job", job.ID, "kind", job.Kind)

	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer cancel()
		// Take a worker slot; a cancel while queued must not wedge the slot.
		select {
		case s.sem <- struct{}{}:
			s.metrics.queueDepth.Dec()
			defer func() { <-s.sem }()
		case <-ctx.Done():
			s.metrics.queueDepth.Dec()
			job.setState(StateCancelled, "cancelled while queued")
			return
		}
		s.run(job)
	}()
	return job, nil
}

// evictOneLocked drops the oldest terminal job to make room. Reports false
// when every retained job is still live.
func (s *Server) evictOneLocked() bool {
	for i, id := range s.order {
		j := s.jobs[id]
		j.mu.Lock()
		state := j.state
		j.mu.Unlock()
		if state.terminal() {
			delete(s.jobs, id)
			s.order = append(s.order[:i], s.order[i+1:]...)
			s.metrics.jobEvicted(state)
			return true
		}
	}
	return false
}

// run executes one job to a terminal state.
func (s *Server) run(job *Job) {
	if err := job.ctx.Err(); err != nil {
		job.setState(StateCancelled, "cancelled while queued")
		return
	}
	job.setState(StateRunning, "")

	var err error
	switch job.Kind {
	case KindExperiment:
		err = s.runExperiments(job)
	case KindSweep:
		err = s.runSweep(job)
	case KindCrashtest:
		err = s.runCrashtest(job)
	}

	switch {
	case err == nil:
		// A cancel that raced a successful completion does not un-complete
		// the job: every result computed and persisted, so report done.
		job.setState(StateDone, "")
	case errors.Is(err, context.Canceled) || job.ctx.Err() != nil:
		job.setState(StateCancelled, "cancelled")
	default:
		job.setState(StateFailed, err.Error())
	}
	st := job.summary()
	s.log.Info("job finished",
		"job", job.ID, "kind", job.Kind, "state", st.State, "error", st.Error,
		"cells", st.Cells.Done, "cached", st.Cells.Cached, "failed", st.Cells.Failed,
		"elapsed", st.FinishedAt.Sub(st.QueuedAt),
	)
}

// parallel clamps a job's requested cell parallelism to the server cap.
func (s *Server) parallel(requested int) int {
	p := requested
	if s.cfg.CellParallel > 0 && (p <= 0 || p > s.cfg.CellParallel) {
		p = s.cfg.CellParallel
	}
	return p
}

// traceConfig is the per-cell probe config the server's jobs run with;
// disabled unless Config.TraceInterval asked for tracing.
func (s *Server) traceConfig() probe.Config {
	return probe.Config{Interval: s.cfg.TraceInterval}
}

// runExperiments executes the selected harness experiments sequentially
// (their cells fan out in parallel) so tables stream out as they finish.
func (s *Server) runExperiments(job *Job) error {
	ids := job.spec.experimentIDs()
	opts := harness.Options{
		Quick: job.spec.Quick, TxPerCore: job.spec.TxPerCore, Cores: job.spec.Cores,
		Seed: job.spec.Seed, Parallel: s.parallel(job.spec.Parallel),
		Store: s.cfg.Store, Trace: s.traceConfig(),
	}
	if s.cfg.Fleet != nil {
		opts.Dispatch = s.cfg.Fleet.RunPlan
	}

	// Pre-size the cell counter so progress fractions are stable from the
	// first event.
	total := 0
	for _, id := range ids {
		e, _ := harness.Find(id)
		total += len(e.Plan(opts).Cells)
	}
	job.mu.Lock()
	job.cells.Total = total
	job.mu.Unlock()

	var failures []string
	for _, id := range ids {
		if job.ctx.Err() != nil {
			return context.Canceled
		}
		e, _ := harness.Find(id)
		expOpts := opts
		expOpts.Progress = func(ev runner.ProgressEvent) { job.cellDone(id, ev) }
		outcome := ExperimentOutcome{ID: e.ID, Title: e.Title}
		rs, err := e.RunGrid(job.ctx, expOpts)
		if err == nil {
			if err = rs.Err(); err == nil {
				outcome.Table, err = e.Reduce(expOpts, rs)
			}
		}
		if err != nil {
			if errors.Is(err, context.Canceled) {
				return context.Canceled
			}
			outcome.Error = err.Error()
			failures = append(failures, fmt.Sprintf("%s: %v", e.ID, err))
		}
		job.mu.Lock()
		job.experiments = append(job.experiments, outcome)
		job.mu.Unlock()
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d of %d experiments failed: %s", len(failures), len(ids), strings.Join(failures, "; "))
	}
	return nil
}

// runSweep executes a literal cell plan through the store — locally, or
// sharded across the fleet when the server coordinates one.
func (s *Server) runSweep(job *Job) error {
	plan := *job.spec.Plan
	job.mu.Lock()
	job.cells.Total = len(plan.Cells)
	job.mu.Unlock()

	opts := runner.Options{
		Parallel: s.parallel(job.spec.Parallel),
		Seed:     job.spec.Seed,
		Progress: func(ev runner.ProgressEvent) { job.cellDone(plan.Name, ev) },
	}
	var (
		rs  *runner.ResultSet
		err error
	)
	if s.cfg.Fleet != nil {
		rs, err = s.cfg.Fleet.RunPlan(job.ctx, plan, opts)
	} else {
		plan.Store = s.cfg.Store
		rs, err = runner.Run(job.ctx, plan, harness.ExecuteWith(s.traceConfig()), opts)
	}
	if err != nil {
		return err
	}
	outcomes := scenario.SweepOutcomes(rs)
	job.mu.Lock()
	job.sweep = outcomes
	job.mu.Unlock()
	return rs.Err()
}

// runCrashtest executes the job's crash-point explorations sequentially
// (each exploration fans its points out in parallel), mapping point
// progress onto job events.
func (s *Server) runCrashtest(job *Job) error {
	var failures []string
	for _, cfg := range job.spec.crashtestConfigs() {
		if err := job.ctx.Err(); err != nil {
			return context.Canceled
		}
		cfg.Parallel = s.parallel(job.spec.Parallel)
		if cfg.Seed == 0 {
			cfg.Seed = job.spec.Seed
		}
		// One event per explored point would swamp the history and the SSE
		// streams on exhaustive explorations; batch like the CLI's progress
		// log.
		name := cfg.Design + "/" + cfg.Workload
		var rep *crashtest.Report
		var err error
		if s.cfg.Fleet != nil {
			// Point-level progress stays on the worker; the job still gets
			// one event per settled exploration.
			rep, err = s.cfg.Fleet.Explore(job.ctx, cfg)
			if rep != nil {
				job.publish(Event{Type: "point", Experiment: name, Done: rep.Explored, Total: rep.TotalPoints})
			}
		} else {
			cfg.Progress = func(done, total int) {
				if done%64 == 0 || done == total {
					job.publish(Event{Type: "point", Experiment: name, Done: done, Total: total})
				}
			}
			rep, err = crashtest.Explore(job.ctx, cfg)
		}
		if err != nil {
			return err
		}
		job.mu.Lock()
		job.crashtests = append(job.crashtests, rep)
		job.mu.Unlock()
		if rep.Failed > 0 {
			failures = append(failures, fmt.Sprintf("%s: %d of %d crash points failed; reproduce: %s",
				name, rep.Failed, rep.Explored, rep.Repro))
		}
	}
	// The fleet-level half of the differential oracle: every design in the
	// grid that explored the same committed sequences must have recovered
	// the same heap.
	job.mu.Lock()
	reports := append([]*crashtest.Report(nil), job.crashtests...)
	job.mu.Unlock()
	if err := crashtest.CrossCheck(reports); err != nil {
		failures = append(failures, err.Error())
	}
	if len(failures) > 0 {
		return fmt.Errorf("%s", strings.Join(failures, "; "))
	}
	return nil
}

// lookup resolves {id}, writing the 404 itself on a miss.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *Job {
	id := r.PathValue("id")
	s.mu.Lock()
	job := s.jobs[id]
	s.mu.Unlock()
	if job == nil {
		writeError(w, http.StatusNotFound, "no job %q", id)
	}
	return job
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*Job, len(ids))
	for i, id := range ids {
		jobs[i] = s.jobs[id]
	}
	s.mu.Unlock()
	statuses := make([]Status, len(jobs))
	for i, j := range jobs {
		statuses[i] = j.summary()
	}
	writeJSON(w, http.StatusOK, statuses)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if job := s.lookup(w, r); job != nil {
		writeJSON(w, http.StatusOK, job.status())
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job := s.lookup(w, r)
	if job == nil {
		return
	}
	job.cancel()
	writeJSON(w, http.StatusAccepted, job.status())
}

// handleEvents streams the job's progress as Server-Sent Events: the full
// history first, then live events until the job reaches a terminal state or
// the client goes away.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	job := s.lookup(w, r)
	if job == nil {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "response writer cannot stream")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	history, live := job.subscribe()
	s.metrics.sseSubs.Inc()
	defer s.metrics.sseSubs.Dec()
	defer job.unsubscribe(live)
	for _, ev := range history {
		if err := writeSSE(w, ev); err != nil {
			return
		}
	}
	flusher.Flush()
	for {
		select {
		case ev, ok := <-live:
			if !ok {
				// Terminal: tell the client explicitly so curl loops can stop.
				fmt.Fprintf(w, "event: done\ndata: {}\n\n")
				flusher.Flush()
				return
			}
			if err := writeSSE(w, ev); err != nil {
				return
			}
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// writeSSE renders one event in SSE framing.
func writeSSE(w http.ResponseWriter, ev Event) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\nid: %d\ndata: %s\n\n", ev.Type, ev.Seq, data)
	return err
}

// handleTables renders a job's results as the same aligned plain text the
// CLIs print: harness tables for experiment jobs, a synthesized grid table
// for sweep jobs, a summary for crash tests. The default output is
// byte-identical to the CLI rendering (CI diffs the two); ?meta=1 appends a
// job-lifecycle footer with timestamps and the phase breakdown.
func (s *Server) handleTables(w http.ResponseWriter, r *http.Request) {
	job := s.lookup(w, r)
	if job == nil {
		return
	}
	st := job.status()
	if !st.State.terminal() {
		writeError(w, http.StatusConflict, "job %s is %s; tables render once it finishes", st.ID, st.State)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	switch job.Kind {
	case KindExperiment:
		for _, o := range st.Experiments {
			if o.Error != "" {
				harness.RenderFailure(w, o.ID, o.Error)
				continue
			}
			o.Table.Render(w)
		}
	case KindSweep:
		name := ""
		if st.Spec != nil && st.Spec.Plan != nil {
			name = st.Spec.Plan.Name
		}
		scenario.SweepTable(name, st.Sweep).Render(w)
	case KindCrashtest:
		if len(st.Crashtests) == 0 {
			fmt.Fprintf(w, "crashtest produced no report: %s\n", st.Error)
			return
		}
		for _, rep := range st.Crashtests {
			fmt.Fprintf(w, "%s/%s: %d persist events, explored %d, %d failed\n",
				rep.Design, rep.Workload, rep.TotalPoints, rep.Explored, rep.Failed)
			classes := make([]string, 0, len(rep.EventsByClass))
			for c := range rep.EventsByClass {
				classes = append(classes, c)
			}
			sort.Strings(classes)
			for _, c := range classes {
				fmt.Fprintf(w, "  %s=%d\n", c, rep.EventsByClass[c])
			}
			if rep.FirstFailure != nil {
				fmt.Fprintf(w, "  first failure at point %d (%s): %s\n  reproduce: %s\n",
					rep.FirstFailure.Point, rep.FirstFailure.Class, rep.FirstFailure.Err, rep.Repro)
			}
		}
	}
	if r.URL.Query().Get("meta") != "" {
		writeTablesMeta(w, st)
	}
}

// handleTrace serves one cell's cycle-domain probe recording. The default
// body is Chrome trace-event / Perfetto JSON (load it at
// https://ui.perfetto.dev); ?format=timeline returns the compact versioned
// timeline instead. Cell keys containing "/" are addressed with %2F (the
// route's {key} matches a single path segment). A 404 names the reasons a
// trace can be missing — the dashboard shows that state verbatim.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	job := s.lookup(w, r)
	if job == nil {
		return
	}
	key := r.PathValue("key")
	tl := job.trace(key)
	if tl == nil {
		writeError(w, http.StatusNotFound,
			"no trace recorded for cell %q of job %s (tracing disabled, cell answered from the result store, or trace evicted)",
			key, job.ID)
		return
	}
	if r.URL.Query().Get("format") == "timeline" {
		writeJSON(w, http.StatusOK, tl)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	probe.WriteChromeTrace(w, []*probe.Timeline{tl})
}

// writeTablesMeta renders the ?meta=1 footer of /tables: job lifecycle
// timestamps and the per-phase time breakdown.
func writeTablesMeta(w io.Writer, st Status) {
	fmt.Fprintf(w, "# job %s (%s) %s\n", st.ID, st.Kind, st.State)
	fmt.Fprintf(w, "# queued_at   %s\n", st.QueuedAt.Format(time.RFC3339))
	if !st.StartedAt.IsZero() {
		fmt.Fprintf(w, "# started_at  %s\n", st.StartedAt.Format(time.RFC3339))
	}
	if !st.FinishedAt.IsZero() {
		fmt.Fprintf(w, "# finished_at %s\n", st.FinishedAt.Format(time.RFC3339))
	}
	for _, name := range obs.PhaseNames() {
		if ns, ok := st.PhaseNS[name]; ok {
			fmt.Fprintf(w, "# phase %-11s %s\n", name, time.Duration(ns))
		}
	}
}
