package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dhtm/internal/crashtest"
	"dhtm/internal/resultstore"
	"dhtm/internal/runner"
)

// newTestServer spins up a server over an httptest listener.
func newTestServer(t *testing.T, dir string, workers int) (*Server, *httptest.Server) {
	t.Helper()
	store, err := resultstore.Open(dir, resultstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Store: store, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// submit posts a job spec and decodes the accepted status.
func submit(t *testing.T, ts *httptest.Server, spec any) Status {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	return st
}

// getStatus polls one job.
func getStatus(t *testing.T, ts *httptest.Server, id string) Status {
	t.Helper()
	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// await polls until the job is terminal.
func await(t *testing.T, ts *httptest.Server, id string) Status {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatus(t, ts, id)
		if st.State.terminal() {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish in time", id)
	return Status{}
}

// quickSweep is a fast two-cell campaign used across the tests.
func quickSweep() JobSpec {
	return JobSpec{
		Kind: KindSweep,
		Plan: &runner.Plan{
			Name: "smoke",
			Cells: []runner.Cell{
				{ID: "DHTM/hash", Design: "DHTM", Workload: "hash", Cores: 2, TxPerCore: 2},
				{ID: "ATOM/queue", Design: "ATOM", Workload: "queue", Cores: 2, TxPerCore: 2},
			},
		},
		Seed: 7,
	}
}

// TestSweepJobLifecycle drives a sweep campaign end to end over HTTP: submit,
// poll to done, check per-cell outcomes and the rendered table.
func TestSweepJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir(), 2)

	st := submit(t, ts, quickSweep())
	if st.State != StateQueued && st.State != StateRunning {
		t.Fatalf("fresh job state = %s", st.State)
	}
	final := await(t, ts, st.ID)
	if final.State != StateDone {
		t.Fatalf("job finished %s (%s)", final.State, final.Error)
	}
	if final.Cells.Total != 2 || final.Cells.Done != 2 || final.Cells.Failed != 0 {
		t.Fatalf("cell progress = %+v", final.Cells)
	}
	if len(final.Sweep) != 2 {
		t.Fatalf("sweep outcomes = %d, want 2", len(final.Sweep))
	}
	for _, o := range final.Sweep {
		if o.Committed == 0 || o.Cycles == 0 {
			t.Fatalf("cell %s reported empty result: %+v", o.Cell.ID, o)
		}
		if o.Cell.Seed == 0 {
			t.Fatalf("cell %s lost its derived seed", o.Cell.ID)
		}
	}

	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + st.ID + "/tables")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	for _, want := range []string{"DHTM/hash", "ATOM/queue", "tx/Mcycle"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("tables output missing %q:\n%s", want, buf.String())
		}
	}
}

// TestWarmResubmitIsFullCacheHit is the acceptance criterion: the second
// submit of the same campaign answers every cell from the store, simulating
// nothing, and produces identical results.
func TestWarmResubmitIsFullCacheHit(t *testing.T) {
	srv, ts := newTestServer(t, t.TempDir(), 2)

	cold := await(t, ts, submit(t, ts, quickSweep()).ID)
	if cold.State != StateDone || cold.Cells.Cached != 0 {
		t.Fatalf("cold run: %+v", cold.Cells)
	}
	computed := srv.Store().Metrics().Computes

	warm := await(t, ts, submit(t, ts, quickSweep()).ID)
	if warm.State != StateDone {
		t.Fatalf("warm run finished %s (%s)", warm.State, warm.Error)
	}
	if warm.Cells.Cached != warm.Cells.Total {
		t.Fatalf("warm run cached %d of %d cells, want all", warm.Cells.Cached, warm.Cells.Total)
	}
	if got := srv.Store().Metrics().Computes; got != computed {
		t.Fatalf("warm run simulated %d extra cells, want 0", got-computed)
	}
	for i := range cold.Sweep {
		c, w := cold.Sweep[i], warm.Sweep[i]
		if c.Committed != w.Committed || c.Cycles != w.Cycles || c.Cell.Seed != w.Cell.Seed {
			t.Fatalf("cell %s: warm result differs: cold %+v warm %+v", c.Cell.ID, c, w)
		}
	}
}

// TestConcurrentSubmitsSimulateEachCellOnce is the other acceptance
// criterion: two concurrent submits of the same campaign share the
// singleflight, so each cell simulates exactly once across both jobs.
func TestConcurrentSubmitsSimulateEachCellOnce(t *testing.T) {
	srv, ts := newTestServer(t, t.TempDir(), 2)

	var wg sync.WaitGroup
	ids := make([]string, 2)
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ids[i] = submit(t, ts, quickSweep()).ID
		}(i)
	}
	wg.Wait()
	a, b := await(t, ts, ids[0]), await(t, ts, ids[1])
	if a.State != StateDone || b.State != StateDone {
		t.Fatalf("jobs finished %s/%s", a.State, b.State)
	}
	if got := srv.Store().Metrics().Computes; got != 2 {
		t.Fatalf("two concurrent submits simulated %d cells, want exactly 2 (one per distinct cell)", got)
	}
	for i := range a.Sweep {
		if a.Sweep[i].Committed != b.Sweep[i].Committed {
			t.Fatalf("concurrent jobs disagree on cell %s", a.Sweep[i].Cell.ID)
		}
	}
}

// TestExperimentJob runs a real (quick, tiny) harness experiment through
// the service and fetches its rendered table.
func TestExperimentJob(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir(), 1)
	st := submit(t, ts, JobSpec{
		Kind: KindExperiment, Experiments: []string{"table4"},
		Quick: true, TxPerCore: 1, Cores: 2, Seed: 7,
	})
	final := await(t, ts, st.ID)
	if final.State != StateDone {
		t.Fatalf("experiment job finished %s (%s)", final.State, final.Error)
	}
	if len(final.Experiments) != 1 || final.Experiments[0].Table == nil {
		t.Fatalf("experiment outcome missing table: %+v", final.Experiments)
	}
	if final.Cells.Total == 0 || final.Cells.Done != final.Cells.Total {
		t.Fatalf("cell progress = %+v", final.Cells)
	}

	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + st.ID + "/tables")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if !strings.Contains(buf.String(), "Table IV") {
		t.Fatalf("tables output missing the Table IV header:\n%s", buf.String())
	}
}

// TestSSEStreamsProgress subscribes to a job's event stream and checks the
// full event sequence arrives: states, one event per cell, and the final
// done frame.
func TestSSEStreamsProgress(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir(), 1)
	st := submit(t, ts, quickSweep())

	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	var cellEvents, stateEvents int
	sawDone := false
	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		line := scanner.Text()
		switch {
		case line == "event: cell":
			cellEvents++
		case line == "event: state":
			stateEvents++
		case line == "event: done":
			sawDone = true
		}
		if sawDone {
			break
		}
	}
	if cellEvents != 2 {
		t.Fatalf("saw %d cell events, want 2", cellEvents)
	}
	if stateEvents < 2 {
		t.Fatalf("saw %d state events, want at least running+terminal", stateEvents)
	}
	if !sawDone {
		t.Fatalf("stream ended without a done frame")
	}
}

// TestCancelJob cancels a running crashtest campaign and checks it lands in
// cancelled, not failed.
func TestCancelJob(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir(), 1)
	// An exhaustive crashtest is comfortably slow enough to catch mid-run.
	st := submit(t, ts, JobSpec{
		Kind:      KindCrashtest,
		Crashtest: &crashtest.Config{Design: "DHTM", Workload: "hash", Cores: 4, TxPerCore: 4},
	})
	// Wait until it actually runs, then cancel.
	deadline := time.Now().Add(30 * time.Second)
	for getStatus(t, ts, st.ID).State == StateQueued && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/api/v1/jobs/"+st.ID, nil)
	if _, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	final := await(t, ts, st.ID)
	if final.State != StateCancelled && final.State != StateDone {
		t.Fatalf("cancelled job finished %s (%s)", final.State, final.Error)
	}
}

// TestScenarioSubmit posts a raw scenario document — the same bytes a CLI
// runs with -scenario — to the jobs endpoint and checks it compiles into a
// sweep job whose cells carry the scenario's grid IDs.
func TestScenarioSubmit(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir(), 1)
	body := `{
		"format_version": 1,
		"name": "scenario-smoke",
		"mode": "sweep",
		"designs": ["DHTM"],
		"workloads": ["hash", "queue"],
		"axes": {"cores": [2], "tx_per_core": [2]}
	}`
	resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("scenario submit: status %d (%s)", resp.StatusCode, st.Error)
	}
	if st.Kind != KindSweep {
		t.Fatalf("scenario compiled to kind %q, want sweep", st.Kind)
	}
	final := await(t, ts, st.ID)
	if final.State != StateDone {
		t.Fatalf("scenario job finished %s (%s)", final.State, final.Error)
	}
	// The workload set resolves into registry (Table IV) order: queue
	// precedes hash.
	wantIDs := []string{"DHTM/queue/cores=2/tx=2", "DHTM/hash/cores=2/tx=2"}
	if len(final.Sweep) != len(wantIDs) {
		t.Fatalf("sweep outcomes = %d, want %d", len(final.Sweep), len(wantIDs))
	}
	for i, want := range wantIDs {
		if final.Sweep[i].Cell.ID != want {
			t.Fatalf("cell %d = %q, want %q", i, final.Sweep[i].Cell.ID, want)
		}
		if final.Sweep[i].Committed == 0 {
			t.Fatalf("cell %q reported no commits", want)
		}
	}

	// Invalid scenario documents die at the door like invalid job specs.
	for name, tc := range map[string]struct{ body, want string }{
		"version skew":   {`{"format_version":99,"mode":"sweep"}`, "format_version 99"},
		"unknown design": {`{"format_version":1,"mode":"sweep","designs":["NOPE"],"workloads":["hash"]}`, "unknown design"},
		"empty grid":     {`{"format_version":1,"mode":"sweep"}`, "empty grid"},
	} {
		t.Run(name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", resp.StatusCode)
			}
			var apiErr apiError
			if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(apiErr.Error, tc.want) {
				t.Fatalf("error %q does not mention %q", apiErr.Error, tc.want)
			}
		})
	}
}

// TestCrashtestGridJob submits a multi-configuration crashtest job (what a
// crashtest-mode scenario compiles to) and checks every exploration reports.
func TestCrashtestGridJob(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir(), 1)
	st := submit(t, ts, JobSpec{
		Kind: KindCrashtest,
		Crashtests: []crashtest.Config{
			{Design: "DHTM", Workload: "hash", Cores: 2, TxPerCore: 1, Points: crashtest.Selection{Mode: "point", Point: 0}},
			{Design: "ATOM", Workload: "hash", Cores: 2, TxPerCore: 1, Points: crashtest.Selection{Mode: "point", Point: 0}},
		},
	})
	final := await(t, ts, st.ID)
	if final.State != StateDone {
		t.Fatalf("crashtest grid finished %s (%s)", final.State, final.Error)
	}
	if len(final.Crashtests) != 2 {
		t.Fatalf("crashtest reports = %d, want 2", len(final.Crashtests))
	}
	for _, rep := range final.Crashtests {
		if rep.Explored != 1 || rep.Failed != 0 {
			t.Fatalf("%s/%s explored %d failed %d, want 1 explored 0 failed",
				rep.Design, rep.Workload, rep.Explored, rep.Failed)
		}
	}
}

// TestCrashtestDifferentialJob runs a reordering-adversary grid with the
// differential oracle over two designs and checks the job passes the
// fleet-level cross-check (recovered heaps agree across designs).
func TestCrashtestDifferentialJob(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir(), 1)
	adv := crashtest.AdversaryConfig{Window: 1, Mode: "exhaustive"}
	sel := crashtest.Selection{Mode: "stride", Samples: 4}
	st := submit(t, ts, JobSpec{
		Kind: KindCrashtest,
		Crashtests: []crashtest.Config{
			{Design: "DHTM", Workload: "queue", Cores: 2, TxPerCore: 1, OpsPerTx: 4,
				Adversary: adv, Differential: true, Points: sel},
			{Design: "LogTM-ATOM", Workload: "queue", Cores: 2, TxPerCore: 1, OpsPerTx: 4,
				Adversary: adv, Differential: true, Points: sel},
		},
	})
	final := await(t, ts, st.ID)
	if final.State != StateDone {
		t.Fatalf("differential grid finished %s (%s)", final.State, final.Error)
	}
	if len(final.Crashtests) != 2 {
		t.Fatalf("crashtest reports = %d, want 2", len(final.Crashtests))
	}
	for _, rep := range final.Crashtests {
		if !rep.Differential || rep.Failed != 0 {
			t.Fatalf("%s/%s differential=%v failed=%d", rep.Design, rep.Workload, rep.Differential, rep.Failed)
		}
		if len(rep.CommitDigests) == 0 {
			t.Fatalf("%s/%s recorded no commit digests", rep.Design, rep.Workload)
		}
	}
	if final.Crashtests[0].RunSeed != final.Crashtests[1].RunSeed {
		t.Fatalf("differential run seeds diverged: %d vs %d",
			final.Crashtests[0].RunSeed, final.Crashtests[1].RunSeed)
	}
}

// TestSubmitValidation checks malformed specs die at the door with 400s
// that name the valid values.
func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir(), 1)
	cases := []struct {
		name string
		body string
		want string
	}{
		{"unknown kind", `{"kind":"nope"}`, "unknown job kind"},
		{"unknown experiment", `{"kind":"experiment","experiments":["fig99"]}`, "unknown experiment"},
		{"empty sweep", `{"kind":"sweep"}`, "non-empty plan"},
		{"bad design", `{"kind":"sweep","plan":{"name":"x","cells":[{"id":"a","design":"NOPE","workload":"hash"}]}}`, "unknown design"},
		{"bad workload", `{"kind":"sweep","plan":{"name":"x","cells":[{"id":"a","design":"DHTM","workload":"nope"}]}}`, "unknown workload"},
		{"crashtest without config", `{"kind":"crashtest"}`, "crashtest configuration"},
		{"unsupported crashtest design", `{"kind":"crashtest","crashtest":{"design":"NP","workload":"hash"}}`, "not supported"},
		{"bad crashtest point selection", `{"kind":"crashtest","crashtest":{"design":"DHTM","workload":"hash","points":{"mode":"bogus"}}}`, "unknown selection mode"},
		{"both crashtest fields", `{"kind":"crashtest","crashtest":{"design":"DHTM","workload":"hash"},"crashtests":[{"design":"DHTM","workload":"hash"}]}`, "not both"},
		{"oversized reorder window", `{"kind":"crashtest","crashtest":{"design":"DHTM","workload":"hash","adversary":{"reorder_window":17}}}`, "reorder window"},
		{"bad adversary mode", `{"kind":"crashtest","crashtest":{"design":"DHTM","workload":"hash","adversary":{"reorder_window":2,"mode":"chaos"}}}`, "adversary mode"},
		{"bad replay mask", `{"kind":"crashtest","crashtest":{"design":"DHTM","workload":"hash","points":{"mode":"point","point":3,"mask":"xyz"}}}`, "mask"},
		{"unknown field", `{"kind":"sweep","plam":{}}`, "unknown field"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", resp.StatusCode)
			}
			var apiErr apiError
			if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(apiErr.Error, tc.want) {
				t.Fatalf("error %q does not mention %q", apiErr.Error, tc.want)
			}
		})
	}

	// Unknown job id paths 404.
	for _, path := range []string{"/api/v1/jobs/job-999999", "/api/v1/jobs/job-999999/events", "/api/v1/jobs/job-999999/tables"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s: status %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestHealthAndStoreEndpoints sanity-checks the operational endpoints.
func TestHealthAndStoreEndpoints(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir(), 1)
	for _, path := range []string{"/healthz", "/api/v1/store", "/api/v1/catalog", "/api/v1/jobs"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
	}
}
