package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dhtm/internal/obs"
	"dhtm/internal/resultstore"
)

// newObsTestServer is newTestServer with a private metrics registry, so the
// telemetry assertions below see exactly this server's counters.
func newObsTestServer(t *testing.T, workers int) (*obs.Registry, *httptest.Server) {
	t.Helper()
	reg := obs.NewRegistry()
	store, err := resultstore.Open(t.TempDir(), resultstore.Options{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Store: store, Workers: workers, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return reg, ts
}

// TestStoreEndpointShape is the back-compat test for GET /api/v1/store: the
// JSON shape predates the obs registry and clients (the CI smoke, jq users)
// depend on these exact keys.
func TestStoreEndpointShape(t *testing.T) {
	_, ts := newObsTestServer(t, 1)
	st := submit(t, ts, quickSweep())
	await(t, ts, st.ID)

	resp, err := http.Get(ts.URL + "/api/v1/store")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Dir     string `json:"dir"`
		Metrics struct {
			MemHits     *uint64 `json:"mem_hits"`
			DiskHits    *uint64 `json:"disk_hits"`
			Misses      *uint64 `json:"misses"`
			Corrupt     *uint64 `json:"corrupt"`
			Computes    *uint64 `json:"computes"`
			Shared      *uint64 `json:"shared"`
			Writes      *uint64 `json:"writes"`
			WriteErrors *uint64 `json:"write_errors"`
		} `json:"metrics"`
		Snapshots struct {
			Hits    *uint64 `json:"hits"`
			Misses  *uint64 `json:"misses"`
			Clones  *uint64 `json:"clones"`
			Entries *int    `json:"entries"`
		} `json:"snapshots"`
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("store document no longer parses: %v\n%s", err, raw)
	}
	for name, p := range map[string]*uint64{
		"metrics.mem_hits": doc.Metrics.MemHits, "metrics.disk_hits": doc.Metrics.DiskHits,
		"metrics.misses": doc.Metrics.Misses, "metrics.corrupt": doc.Metrics.Corrupt,
		"metrics.computes": doc.Metrics.Computes, "metrics.shared": doc.Metrics.Shared,
		"metrics.writes": doc.Metrics.Writes, "metrics.write_errors": doc.Metrics.WriteErrors,
		"snapshots.hits": doc.Snapshots.Hits, "snapshots.misses": doc.Snapshots.Misses,
		"snapshots.clones": doc.Snapshots.Clones,
	} {
		if p == nil {
			t.Errorf("store document lost key %s:\n%s", name, raw)
		}
	}
	if doc.Snapshots.Entries == nil {
		t.Errorf("store document lost key snapshots.entries:\n%s", raw)
	}
	if *doc.Metrics.Computes != 2 || *doc.Metrics.Writes != 2 {
		t.Errorf("computes=%d writes=%d, want 2 and 2", *doc.Metrics.Computes, *doc.Metrics.Writes)
	}
}

// TestMetricsEndpoint runs a sweep twice (cold, then warm from the store)
// and checks that GET /metrics exposes the serve and resultstore families
// with the expected values — the same assertions the CI smoke greps for.
func TestMetricsEndpoint(t *testing.T) {
	reg, ts := newObsTestServer(t, 1)
	await(t, ts, submit(t, ts, quickSweep()).ID)
	await(t, ts, submit(t, ts, quickSweep()).ID)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		"# TYPE dhtm_serve_jobs_total counter",
		`dhtm_serve_jobs_total{state="queued"} 2`,
		`dhtm_serve_jobs_total{state="done"} 2`,
		`dhtm_serve_jobs{state="done"} 2`,
		"dhtm_serve_queue_depth 0",
		`dhtm_resultstore_hits_total{tier="mem"} 2`,
		"dhtm_resultstore_computes_total 2",
		`dhtm_serve_requests_total{handler="POST /api/v1/jobs"} 2`,
		"# TYPE dhtm_serve_job_seconds histogram",
		"# TYPE dhtm_serve_request_seconds histogram",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if got := reg.Counter("dhtm_serve_jobs_total", "", obs.L("state", "done")).Value(); got != 2 {
		t.Errorf("done jobs counter = %d, want 2", got)
	}
	if reg.Histogram("dhtm_serve_job_seconds", "", obs.DurationBuckets).Count() != 2 {
		t.Errorf("job latency histogram did not observe both jobs")
	}
}

// TestStatusTimestampsAndPhases checks the new Status lifecycle fields: a
// finished job carries queued_at <= started_at <= finished_at and a phase
// breakdown covering the simulated (non-cached) cells.
func TestStatusTimestampsAndPhases(t *testing.T) {
	_, ts := newObsTestServer(t, 1)
	final := await(t, ts, submit(t, ts, quickSweep()).ID)
	if final.QueuedAt.IsZero() || final.StartedAt.IsZero() || final.FinishedAt.IsZero() {
		t.Fatalf("missing lifecycle timestamps: %+v", final)
	}
	if final.StartedAt.Before(final.QueuedAt) || final.FinishedAt.Before(final.StartedAt) {
		t.Fatalf("timestamps out of order: queued=%v started=%v finished=%v",
			final.QueuedAt, final.StartedAt, final.FinishedAt)
	}
	if final.PhaseNS["run"] <= 0 {
		t.Fatalf("phase breakdown missing the run phase: %v", final.PhaseNS)
	}

	// A warm resubmit answers every cell from the store: no new simulation,
	// so no phase breakdown.
	warm := await(t, ts, submit(t, ts, quickSweep()).ID)
	if warm.Cells.Cached != 2 {
		t.Fatalf("warm resubmit cached %d of 2 cells", warm.Cells.Cached)
	}
	if len(warm.PhaseNS) != 0 {
		t.Fatalf("cached job carries a phase breakdown: %v", warm.PhaseNS)
	}
}

// TestTablesMetaFooter checks that /tables stays byte-stable by default and
// gains the lifecycle footer under ?meta=1.
func TestTablesMetaFooter(t *testing.T) {
	_, ts := newObsTestServer(t, 1)
	st := await(t, ts, submit(t, ts, quickSweep()).ID)

	get := func(q string) string {
		resp, err := http.Get(ts.URL + "/api/v1/jobs/" + st.ID + "/tables" + q)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}
	plain, meta := get(""), get("?meta=1")
	if strings.Contains(plain, "# job") {
		t.Fatalf("plain tables output grew a meta footer:\n%s", plain)
	}
	if !strings.HasPrefix(meta, plain) {
		t.Fatalf("?meta=1 output does not extend the plain output")
	}
	footer := strings.TrimPrefix(meta, plain)
	for _, want := range []string{"# job " + st.ID, "# queued_at", "# started_at", "# finished_at", "# phase run"} {
		if !strings.Contains(footer, want) {
			t.Errorf("meta footer missing %q:\n%s", want, footer)
		}
	}
}

// TestDashboardAndRequestID checks the dashboard route and the request-ID
// header the instrumentation middleware stamps on every response.
func TestDashboardAndRequestID(t *testing.T) {
	_, ts := newObsTestServer(t, 1)
	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dashboard status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("dashboard content type %q", ct)
	}
	if rid := resp.Header.Get("X-Request-Id"); !strings.HasPrefix(rid, "req-") {
		t.Fatalf("missing request ID header, got %q", rid)
	}
	body, _ := io.ReadAll(resp.Body)
	for _, want := range []string{"dhtm-serve", "/api/v1/jobs", "EventSource"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("dashboard HTML missing %q", want)
		}
	}

	// Pprof stays off unless opted in.
	pp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	pp.Body.Close()
	if pp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof served without opt-in: status %d", pp.StatusCode)
	}
}

// TestStatusGolden pins the Status JSON shape (the satellite's golden):
// field names and time encoding are client-visible API surface.
func TestStatusGolden(t *testing.T) {
	q := time.Date(2026, 8, 8, 10, 0, 0, 0, time.UTC)
	j := &Job{
		ID:        "job-000042",
		Kind:      KindSweep,
		state:     StateDone,
		submitted: q,
		started:   q.Add(1 * time.Second),
		finished:  q.Add(5 * time.Second),
		cells:     CellProgress{Total: 2, Done: 2, Cached: 1},
		nextSeq:   7,
	}
	j.phases.Add(obs.PhaseRun, 1500*time.Millisecond)
	j.phases.Add(obs.PhaseSetup, 250*time.Millisecond)
	got, err := json.MarshalIndent(j.summary(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	want := `{
  "id": "job-000042",
  "kind": "sweep",
  "state": "done",
  "queued_at": "2026-08-08T10:00:00Z",
  "started_at": "2026-08-08T10:00:01Z",
  "finished_at": "2026-08-08T10:00:05Z",
  "cells": {
    "total": 2,
    "done": 2,
    "cached": 1,
    "failed": 0
  },
  "phase_ns": {
    "run": 1500000000,
    "setup": 250000000
  },
  "events": 7
}`
	if string(got) != want {
		t.Fatalf("Status JSON drifted:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// A queued job omits the unreached timestamps entirely.
	fresh := &Job{ID: "job-000001", Kind: KindSweep, state: StateQueued, submitted: q}
	got, err = json.Marshal(fresh.summary())
	if err != nil {
		t.Fatal(err)
	}
	for _, absent := range []string{"started_at", "finished_at", "phase_ns"} {
		if strings.Contains(string(got), absent) {
			t.Errorf("queued Status should omit %s: %s", absent, got)
		}
	}
}
