// Package stats collects the counters reported by the evaluation: committed
// and aborted transactions, cycles, memory traffic broken down by cause, and
// cache hit rates. Each simulated system owns its own Stats value; within a
// system it is written only from the simulation goroutine that currently
// holds the scheduling token, so it needs no internal locking. Independent
// systems (for example the cells of a parallel experiment sweep) each carry
// their own Stats; Snapshot decouples a result from its system and Merge
// folds several systems' counters into an aggregate.
package stats

import (
	"fmt"
	"sort"
	"strings"
)

// AbortReason classifies why a transaction aborted.
type AbortReason int

const (
	// AbortConflict is a data conflict detected through coherence.
	AbortConflict AbortReason = iota
	// AbortWriteCapacity is a write-set overflow from the L1 on a design that
	// cannot tolerate it (RTM-like baselines).
	AbortWriteCapacity
	// AbortLLCCapacity is a write-set overflow from the LLC (DHTM's limit).
	AbortLLCCapacity
	// AbortLogOverflow means the durable transaction log ran out of space.
	AbortLogOverflow
	// AbortExplicit is a programmatic abort requested by the transaction body.
	AbortExplicit
	// AbortFallback counts transactions that gave up on the hardware path and
	// were executed under the software fallback.
	AbortFallback
	numAbortReasons
)

// String implements fmt.Stringer.
func (r AbortReason) String() string {
	switch r {
	case AbortConflict:
		return "conflict"
	case AbortWriteCapacity:
		return "l1-capacity"
	case AbortLLCCapacity:
		return "llc-capacity"
	case AbortLogOverflow:
		return "log-overflow"
	case AbortExplicit:
		return "explicit"
	case AbortFallback:
		return "fallback"
	default:
		return fmt.Sprintf("AbortReason(%d)", int(r))
	}
}

// CoreStats are the per-core counters. The json tags fix the on-disk record
// format of the result store; renaming a field without bumping
// resultstore.FormatVersion makes old records decode with that counter
// silently zeroed — served as valid cache hits with wrong numbers, not
// recomputed. Bump the version (and regenerate the golden file) instead.
type CoreStats struct {
	Commits        uint64                  `json:"commits"`
	Aborts         uint64                  `json:"aborts"`
	AbortsByReason [numAbortReasons]uint64 `json:"aborts_by_reason"`
	Fallbacks      uint64                  `json:"fallbacks"`

	TxCycles      uint64 `json:"tx_cycles"`       // cycles spent inside transactions (begin to commit point)
	StallCycles   uint64 `json:"stall_cycles"`    // cycles spent waiting to begin (completion, lock waits, backoff)
	FinalCycle    uint64 `json:"final_cycle"`     // core-local clock at the end of the run
	WriteSetLines uint64 `json:"write_set_lines"` // sum of distinct dirty lines over committed transactions
	ReadSetLines  uint64 `json:"read_set_lines"`

	L1Hits    uint64 `json:"l1_hits"`
	L1Misses  uint64 `json:"l1_misses"`
	LLCHits   uint64 `json:"llc_hits"`
	LLCMisses uint64 `json:"llc_misses"`
}

// Stats aggregates counters for a simulated system.
type Stats struct {
	Cores []CoreStats `json:"cores"`

	// Memory traffic in bytes, by cause.
	LogBytes        uint64 `json:"log_bytes"`        // redo/undo/commit/abort records and overflow-list entries
	DataWriteBytes  uint64 `json:"data_write_bytes"` // in-place data writes to NVM
	DataReadBytes   uint64 `json:"data_read_bytes"`  // line fills from NVM
	LogRecords      uint64 `json:"log_records"`
	SentinelRecords uint64 `json:"sentinel_records"`
	OverflowedLines uint64 `json:"overflowed_lines"` // write-set lines that overflowed L1 -> LLC
}

// New returns a Stats sized for n cores.
func New(n int) *Stats {
	return &Stats{Cores: make([]CoreStats, n)}
}

// Core returns the per-core counters for core i.
func (s *Stats) Core(i int) *CoreStats { return &s.Cores[i] }

// Snapshot returns a deep copy of the counters. The copy shares no memory
// with s, so it stays valid after the simulated system that produced s is
// discarded and can be read while another run reuses the original.
func (s *Stats) Snapshot() *Stats {
	c := *s
	c.Cores = append([]CoreStats(nil), s.Cores...)
	return &c
}

// Merge folds other's counters into s, summing every additive counter
// element-wise per core (growing s.Cores if other has more cores) and taking
// the maximum of the per-core final clocks, so a merged Stats reads as one
// system whose cores ran the union of the work concurrently. Merge is
// commutative and associative up to core-slice length, which keeps parallel
// sweep aggregation order-independent.
func (s *Stats) Merge(other *Stats) {
	if other == nil {
		return
	}
	for len(s.Cores) < len(other.Cores) {
		s.Cores = append(s.Cores, CoreStats{})
	}
	for i := range other.Cores {
		a, b := &s.Cores[i], &other.Cores[i]
		a.Commits += b.Commits
		a.Aborts += b.Aborts
		for r := range a.AbortsByReason {
			a.AbortsByReason[r] += b.AbortsByReason[r]
		}
		a.Fallbacks += b.Fallbacks
		a.TxCycles += b.TxCycles
		a.StallCycles += b.StallCycles
		if b.FinalCycle > a.FinalCycle {
			a.FinalCycle = b.FinalCycle
		}
		a.WriteSetLines += b.WriteSetLines
		a.ReadSetLines += b.ReadSetLines
		a.L1Hits += b.L1Hits
		a.L1Misses += b.L1Misses
		a.LLCHits += b.LLCHits
		a.LLCMisses += b.LLCMisses
	}
	s.LogBytes += other.LogBytes
	s.DataWriteBytes += other.DataWriteBytes
	s.DataReadBytes += other.DataReadBytes
	s.LogRecords += other.LogRecords
	s.SentinelRecords += other.SentinelRecords
	s.OverflowedLines += other.OverflowedLines
}

// TotalCommits sums committed transactions across cores.
func (s *Stats) TotalCommits() uint64 {
	var t uint64
	for i := range s.Cores {
		t += s.Cores[i].Commits
	}
	return t
}

// TotalAborts sums aborted transaction attempts across cores.
func (s *Stats) TotalAborts() uint64 {
	var t uint64
	for i := range s.Cores {
		t += s.Cores[i].Aborts
	}
	return t
}

// AbortsFor sums aborts with the given reason across cores.
func (s *Stats) AbortsFor(r AbortReason) uint64 {
	var t uint64
	for i := range s.Cores {
		t += s.Cores[i].AbortsByReason[r]
	}
	return t
}

// AbortRate returns aborted attempts as a fraction of all attempts
// (aborts / (commits + aborts)), the metric of Table V.
func (s *Stats) AbortRate() float64 {
	c, a := float64(s.TotalCommits()), float64(s.TotalAborts())
	if c+a == 0 {
		return 0
	}
	return a / (c + a)
}

// TotalCycles returns the maximum core-local final clock, i.e. the makespan.
func (s *Stats) TotalCycles() uint64 {
	var m uint64
	for i := range s.Cores {
		if s.Cores[i].FinalCycle > m {
			m = s.Cores[i].FinalCycle
		}
	}
	return m
}

// Throughput returns committed transactions per million cycles.
func (s *Stats) Throughput() float64 {
	cyc := s.TotalCycles()
	if cyc == 0 {
		return 0
	}
	return float64(s.TotalCommits()) / float64(cyc) * 1e6
}

// MeanWriteSetLines returns the average number of distinct dirty cache lines
// per committed transaction (Table IV's metric).
func (s *Stats) MeanWriteSetLines() float64 {
	var lines, commits uint64
	for i := range s.Cores {
		lines += s.Cores[i].WriteSetLines
		commits += s.Cores[i].Commits
	}
	if commits == 0 {
		return 0
	}
	return float64(lines) / float64(commits)
}

// MeanReadSetLines returns the average number of distinct read lines per
// committed transaction.
func (s *Stats) MeanReadSetLines() float64 {
	var lines, commits uint64
	for i := range s.Cores {
		lines += s.Cores[i].ReadSetLines
		commits += s.Cores[i].Commits
	}
	if commits == 0 {
		return 0
	}
	return float64(lines) / float64(commits)
}

// L1HitRate returns the aggregate L1 hit rate across cores.
func (s *Stats) L1HitRate() float64 {
	var h, m uint64
	for i := range s.Cores {
		h += s.Cores[i].L1Hits
		m += s.Cores[i].L1Misses
	}
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// NVMWriteBytes returns all bytes written to persistent memory (log + data).
func (s *Stats) NVMWriteBytes() uint64 { return s.LogBytes + s.DataWriteBytes }

// Summary renders a short human-readable report.
func (s *Stats) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "commits=%d aborts=%d (rate %.1f%%) cycles=%d throughput=%.3f tx/Mcycle\n",
		s.TotalCommits(), s.TotalAborts(), s.AbortRate()*100, s.TotalCycles(), s.Throughput())
	fmt.Fprintf(&b, "write-set %.1f lines/tx, read-set %.1f lines/tx, L1 hit %.1f%%\n",
		s.MeanWriteSetLines(), s.MeanReadSetLines(), s.L1HitRate()*100)
	fmt.Fprintf(&b, "NVM traffic: log %d B, data-write %d B, data-read %d B, log records %d, overflowed lines %d\n",
		s.LogBytes, s.DataWriteBytes, s.DataReadBytes, s.LogRecords, s.OverflowedLines)
	reasons := make([]string, 0, int(numAbortReasons))
	for r := AbortReason(0); r < numAbortReasons; r++ {
		if n := s.AbortsFor(r); n > 0 {
			reasons = append(reasons, fmt.Sprintf("%s=%d", r, n))
		}
	}
	sort.Strings(reasons)
	if len(reasons) > 0 {
		fmt.Fprintf(&b, "aborts by reason: %s\n", strings.Join(reasons, " "))
	}
	return b.String()
}
