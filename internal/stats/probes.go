package stats

import "dhtm/internal/probe"

// RegisterProbes contributes the transaction-outcome signals to a cell
// recorder: cumulative commit/abort/fallback totals, read/write-set line
// totals, and the running abort rate (aborts over attempts) as a gauge.
func (s *Stats) RegisterProbes(rec *probe.Recorder) {
	sum := func(f func(*CoreStats) uint64) probe.SampleFunc {
		return func(uint64) float64 {
			var t uint64
			for i := range s.Cores {
				t += f(&s.Cores[i])
			}
			return float64(t)
		}
	}
	rec.Counter("htm/commits", "transactions", "internal/stats", sum(func(c *CoreStats) uint64 { return c.Commits }))
	rec.Counter("htm/aborts", "transactions", "internal/stats", sum(func(c *CoreStats) uint64 { return c.Aborts }))
	rec.Counter("htm/fallbacks", "transactions", "internal/stats", sum(func(c *CoreStats) uint64 { return c.Fallbacks }))
	rec.Counter("htm/write_set_lines", "lines", "internal/stats", sum(func(c *CoreStats) uint64 { return c.WriteSetLines }))
	rec.Counter("htm/read_set_lines", "lines", "internal/stats", sum(func(c *CoreStats) uint64 { return c.ReadSetLines }))
	rec.Gauge("htm/abort_rate", "fraction", "internal/stats", func(uint64) float64 { return s.AbortRate() })
}
