package stats

import (
	"reflect"
	"strings"
	"testing"
)

// TestAggregation checks the cross-core aggregations used by the harness.
func TestAggregation(t *testing.T) {
	s := New(2)
	s.Core(0).Commits = 10
	s.Core(0).Aborts = 2
	s.Core(0).AbortsByReason[AbortConflict] = 2
	s.Core(0).FinalCycle = 1000
	s.Core(0).WriteSetLines = 50
	s.Core(1).Commits = 30
	s.Core(1).FinalCycle = 2000
	s.Core(1).WriteSetLines = 150

	if s.TotalCommits() != 40 || s.TotalAborts() != 2 {
		t.Fatalf("totals wrong: %d commits, %d aborts", s.TotalCommits(), s.TotalAborts())
	}
	if s.TotalCycles() != 2000 {
		t.Fatalf("makespan = %d, want the max core clock 2000", s.TotalCycles())
	}
	if got := s.AbortRate(); got <= 0.047 || got >= 0.048 {
		t.Fatalf("abort rate = %f, want 2/42", got)
	}
	if got := s.MeanWriteSetLines(); got != 5 {
		t.Fatalf("mean write-set lines = %f, want 5", got)
	}
	if s.Throughput() != 40.0/2000.0*1e6 {
		t.Fatalf("throughput wrong: %f", s.Throughput())
	}
	if s.AbortsFor(AbortConflict) != 2 || s.AbortsFor(AbortLogOverflow) != 0 {
		t.Fatalf("per-reason aborts wrong")
	}
}

// TestSummaryMentionsKeyCounters keeps the human-readable report useful.
func TestSummaryMentionsKeyCounters(t *testing.T) {
	s := New(1)
	s.Core(0).Commits = 5
	s.Core(0).Aborts = 1
	s.Core(0).AbortsByReason[AbortLLCCapacity] = 1
	s.LogBytes = 640
	out := s.Summary()
	for _, want := range []string{"commits=5", "llc-capacity=1", "log 640 B"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

// sample builds a fully populated Stats for the snapshot/merge tests.
func sample(scale uint64) *Stats {
	s := New(2)
	for i := range s.Cores {
		c := s.Core(i)
		c.Commits = (10 + uint64(i)) * scale
		c.Aborts = (2 + uint64(i)) * scale
		c.AbortsByReason[AbortConflict] = scale
		c.AbortsByReason[AbortLogOverflow] = scale + uint64(i)
		c.Fallbacks = scale
		c.TxCycles = 100 * scale
		c.StallCycles = 40 * scale
		c.FinalCycle = 1000 * scale
		c.WriteSetLines = 7 * scale
		c.ReadSetLines = 9 * scale
		c.L1Hits = 500 * scale
		c.L1Misses = 50 * scale
		c.LLCHits = 30 * scale
		c.LLCMisses = 20 * scale
	}
	s.LogBytes = 640 * scale
	s.DataWriteBytes = 1280 * scale
	s.DataReadBytes = 2560 * scale
	s.LogRecords = 11 * scale
	s.SentinelRecords = 3 * scale
	s.OverflowedLines = 5 * scale
	return s
}

// TestSnapshotMergeRoundTrip checks that merging a snapshot into a fresh
// Stats reproduces the original exactly, and that the snapshot is fully
// decoupled from its source.
func TestSnapshotMergeRoundTrip(t *testing.T) {
	orig := sample(1)
	snap := orig.Snapshot()
	if !reflect.DeepEqual(orig, snap) {
		t.Fatalf("snapshot differs from original:\n%+v\nvs\n%+v", orig, snap)
	}
	// The snapshot must not alias the original's core slice.
	orig.Core(0).Commits += 99
	orig.LogBytes += 99
	if snap.Core(0).Commits != sample(1).Core(0).Commits || snap.LogBytes != sample(1).LogBytes {
		t.Fatalf("snapshot aliases its source")
	}

	rt := New(0)
	rt.Merge(snap)
	if !reflect.DeepEqual(rt, snap) {
		t.Fatalf("merge into empty Stats is not an identity:\n%+v\nvs\n%+v", rt, snap)
	}
}

// TestMergeAggregates checks the additive-counters / max-clock semantics and
// that merge order does not change the result.
func TestMergeAggregates(t *testing.T) {
	a, b := sample(1), sample(3)

	ab := a.Snapshot()
	ab.Merge(b)
	ba := b.Snapshot()
	ba.Merge(a)
	if !reflect.DeepEqual(ab, ba) {
		t.Fatalf("merge is order-dependent:\n%+v\nvs\n%+v", ab, ba)
	}

	if got, want := ab.TotalCommits(), a.TotalCommits()+b.TotalCommits(); got != want {
		t.Errorf("merged commits = %d, want %d", got, want)
	}
	if got, want := ab.AbortsFor(AbortLogOverflow), a.AbortsFor(AbortLogOverflow)+b.AbortsFor(AbortLogOverflow); got != want {
		t.Errorf("merged per-reason aborts = %d, want %d", got, want)
	}
	if got, want := ab.LogBytes, a.LogBytes+b.LogBytes; got != want {
		t.Errorf("merged log bytes = %d, want %d", got, want)
	}
	// Final clocks merge as a max: the merged system ran the union of the
	// work concurrently, so its makespan is the slower system's.
	if got, want := ab.TotalCycles(), b.TotalCycles(); got != want {
		t.Errorf("merged makespan = %d, want %d", got, want)
	}

	// Merging a narrower Stats grows the core slice instead of dropping cores.
	wide := New(1)
	wide.Core(0).Commits = 1
	wide.Merge(sample(1))
	if len(wide.Cores) != 2 || wide.Core(1).Commits != sample(1).Core(1).Commits {
		t.Errorf("merge did not grow the core slice: %+v", wide.Cores)
	}
	if wide.Core(0).Commits != 1+sample(1).Core(0).Commits {
		t.Errorf("merge overwrote instead of adding: %d", wide.Core(0).Commits)
	}
}

// TestEmptyStatsAreSafe checks the zero cases used before any work ran.
func TestEmptyStatsAreSafe(t *testing.T) {
	s := New(1)
	if s.AbortRate() != 0 || s.Throughput() != 0 || s.MeanWriteSetLines() != 0 || s.L1HitRate() != 0 {
		t.Fatalf("empty stats produced non-zero rates")
	}
}
