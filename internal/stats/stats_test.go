package stats

import (
	"strings"
	"testing"
)

// TestAggregation checks the cross-core aggregations used by the harness.
func TestAggregation(t *testing.T) {
	s := New(2)
	s.Core(0).Commits = 10
	s.Core(0).Aborts = 2
	s.Core(0).AbortsByReason[AbortConflict] = 2
	s.Core(0).FinalCycle = 1000
	s.Core(0).WriteSetLines = 50
	s.Core(1).Commits = 30
	s.Core(1).FinalCycle = 2000
	s.Core(1).WriteSetLines = 150

	if s.TotalCommits() != 40 || s.TotalAborts() != 2 {
		t.Fatalf("totals wrong: %d commits, %d aborts", s.TotalCommits(), s.TotalAborts())
	}
	if s.TotalCycles() != 2000 {
		t.Fatalf("makespan = %d, want the max core clock 2000", s.TotalCycles())
	}
	if got := s.AbortRate(); got <= 0.047 || got >= 0.048 {
		t.Fatalf("abort rate = %f, want 2/42", got)
	}
	if got := s.MeanWriteSetLines(); got != 5 {
		t.Fatalf("mean write-set lines = %f, want 5", got)
	}
	if s.Throughput() != 40.0/2000.0*1e6 {
		t.Fatalf("throughput wrong: %f", s.Throughput())
	}
	if s.AbortsFor(AbortConflict) != 2 || s.AbortsFor(AbortLogOverflow) != 0 {
		t.Fatalf("per-reason aborts wrong")
	}
}

// TestSummaryMentionsKeyCounters keeps the human-readable report useful.
func TestSummaryMentionsKeyCounters(t *testing.T) {
	s := New(1)
	s.Core(0).Commits = 5
	s.Core(0).Aborts = 1
	s.Core(0).AbortsByReason[AbortLLCCapacity] = 1
	s.LogBytes = 640
	out := s.Summary()
	for _, want := range []string{"commits=5", "llc-capacity=1", "log 640 B"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

// TestEmptyStatsAreSafe checks the zero cases used before any work ran.
func TestEmptyStatsAreSafe(t *testing.T) {
	s := New(1)
	if s.AbortRate() != 0 || s.Throughput() != 0 || s.MeanWriteSetLines() != 0 || s.L1HitRate() != 0 {
		t.Fatalf("empty stats produced non-zero rates")
	}
}
