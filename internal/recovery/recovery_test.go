package recovery

import (
	"strings"
	"testing"

	"dhtm/internal/config"
	"dhtm/internal/memdev"
	"dhtm/internal/stats"
	"dhtm/internal/wal"
)

// buildImage constructs a persistent-memory image with two thread logs and
// lets the test author append raw records.
func buildImage(t *testing.T) (*memdev.Store, *wal.Registry) {
	t.Helper()
	cfg := config.Default()
	store := memdev.NewStore()
	ctl := memdev.NewController(cfg, store, stats.New(cfg.NumCores))
	reg := wal.NewRegistry(ctl, 2, 64*1024, 256)
	return store, reg
}

func appendAll(t *testing.T, log *wal.ThreadLog, recs ...*wal.Record) {
	t.Helper()
	for _, r := range recs {
		if _, err := log.Append(r, 0); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
}

// TestReplayCommittedIncomplete checks the core recovery rule: a transaction
// with a commit record but no complete record is replayed in place.
func TestReplayCommittedIncomplete(t *testing.T) {
	store, reg := buildImage(t)
	store.WriteLine(0x10000, memdev.Line{1, 1, 1})
	log := reg.Log(0)
	txid := log.BeginTx()
	appendAll(t, log,
		&wal.Record{Type: wal.RecRedo, TxID: txid, LineAddr: 0x10000, Data: memdev.Line{9, 9, 9}},
		&wal.Record{Type: wal.RecCommit, TxID: txid},
	)
	rep, err := Recover(store)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if len(rep.Replayed) != 1 {
		t.Fatalf("replayed %d transactions, want 1", len(rep.Replayed))
	}
	if got := store.ReadLine(0x10000); got[0] != 9 {
		t.Fatalf("line not replayed: %v", got)
	}
}

// TestSkipUncommittedAndAborted checks that redo records without a commit, or
// with an abort record, are never applied.
func TestSkipUncommittedAndAborted(t *testing.T) {
	store, reg := buildImage(t)
	store.WriteLine(0x20000, memdev.Line{5})
	log := reg.Log(0)

	active := log.BeginTx()
	appendAll(t, log, &wal.Record{Type: wal.RecRedo, TxID: active, LineAddr: 0x20000, Data: memdev.Line{77}})
	aborted := log.BeginTx()
	appendAll(t, log,
		&wal.Record{Type: wal.RecRedo, TxID: aborted, LineAddr: 0x20000, Data: memdev.Line{88}},
		&wal.Record{Type: wal.RecAbort, TxID: aborted},
	)
	rep, err := Recover(store)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if got := store.ReadLine(0x20000); got[0] != 5 {
		t.Fatalf("uncommitted/aborted data reached memory: %v", got)
	}
	if rep.SkippedActive != 1 || rep.SkippedAborted != 1 {
		t.Fatalf("classification wrong: %+v", rep)
	}
}

// TestSkipComplete checks completed transactions are not replayed.
func TestSkipComplete(t *testing.T) {
	store, reg := buildImage(t)
	store.WriteLine(0x30000, memdev.Line{123})
	log := reg.Log(1)
	txid := log.BeginTx()
	appendAll(t, log,
		&wal.Record{Type: wal.RecRedo, TxID: txid, LineAddr: 0x30000, Data: memdev.Line{1}},
		&wal.Record{Type: wal.RecCommit, TxID: txid},
		&wal.Record{Type: wal.RecComplete, TxID: txid},
	)
	rep, err := Recover(store)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if rep.SkippedComplete != 1 || len(rep.Replayed) != 0 {
		t.Fatalf("classification wrong: %+v", rep)
	}
	if got := store.ReadLine(0x30000); got[0] != 123 {
		t.Fatalf("complete transaction was replayed: %v", got)
	}
}

// TestUndoRollback checks the ATOM-style path: an undo-logged transaction
// without a commit record has its old values restored.
func TestUndoRollback(t *testing.T) {
	store, reg := buildImage(t)
	// The transaction already wrote 42 in place before the crash.
	store.WriteLine(0x40000, memdev.Line{42})
	log := reg.Log(0)
	txid := log.BeginTx()
	appendAll(t, log, &wal.Record{Type: wal.RecUndo, TxID: txid, LineAddr: 0x40000, Data: memdev.Line{7}})
	rep, err := Recover(store)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if len(rep.RolledBack) != 1 {
		t.Fatalf("rolled back %d transactions, want 1", len(rep.RolledBack))
	}
	if got := store.ReadLine(0x40000); got[0] != 7 {
		t.Fatalf("old value not restored: %v", got)
	}
}

// TestSentinelOrdering checks that a dependent transaction is replayed after
// the transaction it consumed data from, so its newer value wins.
func TestSentinelOrdering(t *testing.T) {
	store, reg := buildImage(t)
	logA, logB := reg.Log(0), reg.Log(1)
	txA := logA.BeginTx()
	appendAll(t, logA,
		&wal.Record{Type: wal.RecRedo, TxID: txA, LineAddr: 0x50000, Data: memdev.Line{100}},
		&wal.Record{Type: wal.RecCommit, TxID: txA},
	)
	txB := logB.BeginTx()
	appendAll(t, logB,
		&wal.Record{Type: wal.RecSentinel, TxID: txB, DepThread: 0, DepTxID: txA},
		&wal.Record{Type: wal.RecRedo, TxID: txB, LineAddr: 0x50000, Data: memdev.Line{200}},
		&wal.Record{Type: wal.RecCommit, TxID: txB},
	)
	if _, err := Recover(store); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if got := store.ReadLine(0x50000); got[0] != 200 {
		t.Fatalf("dependent transaction's value lost: got %d, want 200", got[0])
	}
}

// TestReplayWordGranular checks replay of the no-log-buffer ablation's
// word-granular redo records: an unaligned LineAddr carries a single word in
// Data[0], and replay must patch exactly that word, leaving the rest of the
// line untouched.
func TestReplayWordGranular(t *testing.T) {
	store, reg := buildImage(t)
	store.WriteLine(0x70000, memdev.Line{10, 11, 12, 13, 14, 15, 16, 17})
	log := reg.Log(0)
	txid := log.BeginTx()
	appendAll(t, log,
		// Words 3 and 5 of the line, logged store-by-store.
		&wal.Record{Type: wal.RecRedo, TxID: txid, LineAddr: 0x70018, Data: memdev.Line{333}},
		&wal.Record{Type: wal.RecRedo, TxID: txid, LineAddr: 0x70028, Data: memdev.Line{555}},
		&wal.Record{Type: wal.RecCommit, TxID: txid},
	)
	rep, err := Recover(store)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if len(rep.Replayed) != 1 || rep.LinesRestored != 2 {
		t.Fatalf("replay bookkeeping wrong: %+v", rep)
	}
	if got, want := store.ReadLine(0x70000), (memdev.Line{10, 11, 12, 333, 14, 555, 16, 17}); got != want {
		t.Fatalf("word-granular replay produced %v, want %v", got, want)
	}
}

// TestUndoRollbackWordGranular checks the same dispatch on the undo path: an
// unaligned undo record restores one word only.
func TestUndoRollbackWordGranular(t *testing.T) {
	store, reg := buildImage(t)
	store.WriteLine(0x78000, memdev.Line{1, 2, 3, 4})
	log := reg.Log(1)
	txid := log.BeginTx()
	appendAll(t, log, &wal.Record{Type: wal.RecUndo, TxID: txid, LineAddr: 0x78008, Data: memdev.Line{99}})
	if _, err := Recover(store); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if got, want := store.ReadLine(0x78000), (memdev.Line{1, 99, 3, 4}); got != want {
		t.Fatalf("word-granular rollback produced %v, want %v", got, want)
	}
}

// TestSentinelCycleError checks the error return for a sentinel dependency
// cycle between replay candidates: recovery must refuse (with a descriptive
// error) rather than replay in an arbitrary order, because such a log can
// only come from corruption — the conflict-window protocol orders
// dependencies by commit time, which cannot cycle.
func TestSentinelCycleError(t *testing.T) {
	store, reg := buildImage(t)
	logA, logB := reg.Log(0), reg.Log(1)
	txA := logA.BeginTx()
	txB := logB.BeginTx()
	appendAll(t, logA,
		&wal.Record{Type: wal.RecSentinel, TxID: txA, DepThread: 1, DepTxID: txB},
		&wal.Record{Type: wal.RecRedo, TxID: txA, LineAddr: 0x80000, Data: memdev.Line{1}},
		&wal.Record{Type: wal.RecCommit, TxID: txA},
	)
	appendAll(t, logB,
		&wal.Record{Type: wal.RecSentinel, TxID: txB, DepThread: 0, DepTxID: txA},
		&wal.Record{Type: wal.RecRedo, TxID: txB, LineAddr: 0x80040, Data: memdev.Line{2}},
		&wal.Record{Type: wal.RecCommit, TxID: txB},
	)
	_, err := Recover(store)
	if err == nil {
		t.Fatalf("expected a dependency-cycle error")
	}
	if !strings.Contains(err.Error(), "dependency cycle") {
		t.Fatalf("unexpected error for a sentinel cycle: %v", err)
	}
}

// TestRecoveryTruncatesLogs checks a second recovery finds nothing to do.
func TestRecoveryTruncatesLogs(t *testing.T) {
	store, reg := buildImage(t)
	log := reg.Log(0)
	txid := log.BeginTx()
	appendAll(t, log,
		&wal.Record{Type: wal.RecRedo, TxID: txid, LineAddr: 0x60000, Data: memdev.Line{4}},
		&wal.Record{Type: wal.RecCommit, TxID: txid},
	)
	if _, err := Recover(store); err != nil {
		t.Fatalf("first Recover: %v", err)
	}
	rep, err := Recover(store)
	if err != nil {
		t.Fatalf("second Recover: %v", err)
	}
	if rep.Transactions != 0 || len(rep.Replayed) != 0 {
		t.Fatalf("second recovery still found work: %+v", rep)
	}
}

// TestRecoverWithoutRegistry checks the error path for images that carry no
// log registry.
func TestRecoverWithoutRegistry(t *testing.T) {
	if _, err := Recover(memdev.NewStore()); err == nil {
		t.Fatalf("expected an error for an image without a registry")
	}
}
