// Package recovery implements the OS recovery manager that runs after a
// crash: it loads the log registry from the persistent-memory image, scans
// every registered thread log, replays the redo records of transactions that
// committed but had not completed their in-place write-backs (ordering
// dependent transactions by their sentinel records), rolls back undo-logged
// transactions that never committed, and leaves everything else untouched.
//
// Recovery sees whatever subset of in-flight persists actually reached the
// memory image before the crash. The persistency model that bounds that
// subset — which writes may still be in flight, which classes drain the
// queue — is documented on memdev.PersistQueue, and internal/crashtest
// exercises recovery against every crash image the model admits (including
// reordered ones, via the subset adversary).
package recovery

import (
	"fmt"
	"sort"
	"strings"

	"dhtm/internal/memdev"
	"dhtm/internal/wal"
)

// TxKey identifies a transaction across all thread logs.
type TxKey struct {
	Thread int    `json:"thread"`
	TxID   uint64 `json:"txid"`
}

// String implements fmt.Stringer.
func (k TxKey) String() string { return fmt.Sprintf("t%d/tx%d", k.Thread, k.TxID) }

// TxImage is everything recovery learned about one logged transaction.
type TxImage struct {
	Key       TxKey
	Redo      []wal.Record
	Undo      []wal.Record
	Committed bool
	Complete  bool
	Aborted   bool
	// DependsOn lists committed transactions whose updates this transaction
	// consumed (from sentinel records); they must be replayed first.
	DependsOn []TxKey
}

// Report summarises one recovery run. The JSON field names are part of the
// tooling contract (dhtm-recover -json feeds scripts and crashtest repros).
type Report struct {
	LogsScanned     int     `json:"logs_scanned"`
	Transactions    int     `json:"transactions"`
	Replayed        []TxKey `json:"replayed"`
	RolledBack      []TxKey `json:"rolled_back"`
	SkippedActive   int     `json:"skipped_active"`
	SkippedAborted  int     `json:"skipped_aborted"`
	SkippedComplete int     `json:"skipped_complete"`
	LinesRestored   int     `json:"lines_restored"`
}

// String renders a human-readable summary.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "recovery: scanned %d logs, %d logged transactions\n", r.LogsScanned, r.Transactions)
	fmt.Fprintf(&b, "  replayed %d committed-but-incomplete transactions (%d lines restored)\n", len(r.Replayed), r.LinesRestored)
	fmt.Fprintf(&b, "  rolled back %d, skipped: %d active, %d aborted, %d complete\n",
		len(r.RolledBack), r.SkippedActive, r.SkippedAborted, r.SkippedComplete)
	return b.String()
}

// Recover runs the recovery manager against a persistent-memory image,
// mutating it in place so that it reflects every committed transaction and no
// uncommitted one. It is idempotent: running it twice yields the same image.
func Recover(store *memdev.Store) (*Report, error) {
	reg, err := wal.LoadRegistry(store)
	if err != nil {
		return nil, err
	}
	rep := &Report{}
	images := make(map[TxKey]*TxImage)
	var order []TxKey // stable ordering of discovery (log order within thread)

	for t := 0; t < reg.Threads(); t++ {
		log := reg.Log(t)
		recs, err := log.Scan(store)
		if err != nil {
			return rep, fmt.Errorf("recovery: scanning thread %d log: %w", t, err)
		}
		rep.LogsScanned++
		for _, rec := range recs {
			key := TxKey{Thread: t, TxID: rec.TxID}
			img, ok := images[key]
			if !ok {
				img = &TxImage{Key: key}
				images[key] = img
				order = append(order, key)
			}
			switch rec.Type {
			case wal.RecRedo:
				img.Redo = append(img.Redo, rec)
			case wal.RecUndo:
				img.Undo = append(img.Undo, rec)
			case wal.RecCommit:
				img.Committed = true
			case wal.RecComplete:
				img.Complete = true
			case wal.RecAbort:
				img.Aborted = true
			case wal.RecSentinel:
				if rec.DepTxID != 0 {
					img.DependsOn = append(img.DependsOn, TxKey{Thread: rec.DepThread, TxID: rec.DepTxID})
				}
			}
		}
	}
	rep.Transactions = len(images)

	// Classify.
	var candidates []TxKey
	for _, key := range order {
		img := images[key]
		switch {
		case img.Committed && !img.Complete:
			candidates = append(candidates, key)
		case img.Committed:
			rep.SkippedComplete++
		case img.Aborted:
			rep.SkippedAborted++
		case len(img.Undo) > 0:
			// Undo-logged (ATOM-style) transaction that never committed: roll
			// its in-place updates back, newest record first.
			rep.RolledBack = append(rep.RolledBack, key)
			for i := len(img.Undo) - 1; i >= 0; i-- {
				applyRecord(store, img.Undo[i])
				rep.LinesRestored++
			}
		default:
			rep.SkippedActive++
		}
	}

	// Replay committed-but-incomplete transactions in dependency order.
	ordered, err := topoOrder(candidates, images)
	if err != nil {
		return rep, err
	}
	for _, key := range ordered {
		img := images[key]
		for _, rec := range img.Redo {
			applyRecord(store, rec)
			rep.LinesRestored++
		}
		rep.Replayed = append(rep.Replayed, key)
	}

	// Truncate every log: all live work has been resolved. This mirrors the
	// recovery manager writing complete records and releasing log space.
	for t := 0; t < reg.Threads(); t++ {
		log := reg.Log(t)
		store.WriteWord(log.MetaAddr, 0)
		store.WriteWord(log.MetaAddr+8, 0)
		store.WriteWord(reg.Overflow(t).CountAddr, 0)
	}
	return rep, nil
}

// applyRecord writes a redo/undo record's payload in place. Line-granular
// records carry a full line; word-granular records (the no-log-buffer
// ablation) carry a single word at an unaligned line offset.
func applyRecord(store *memdev.Store, rec wal.Record) {
	if rec.LineAddr%memdev.LineBytes == 0 {
		store.WriteLine(rec.LineAddr, rec.Data)
		return
	}
	store.WriteWord(rec.LineAddr, rec.Data[0])
}

// topoOrder orders the replay candidates so that every transaction is
// replayed after all transactions it depends on. Dependencies on transactions
// that are not replay candidates (already complete, or aborted) are ignored.
func topoOrder(candidates []TxKey, images map[TxKey]*TxImage) ([]TxKey, error) {
	candidateSet := make(map[TxKey]bool, len(candidates))
	for _, k := range candidates {
		candidateSet[k] = true
	}
	indegree := make(map[TxKey]int, len(candidates))
	dependents := make(map[TxKey][]TxKey)
	for _, k := range candidates {
		indegree[k] = 0
	}
	for _, k := range candidates {
		for _, dep := range images[k].DependsOn {
			if !candidateSet[dep] || dep == k {
				continue
			}
			dependents[dep] = append(dependents[dep], k)
			indegree[k]++
		}
	}
	ready := make([]TxKey, 0, len(candidates))
	for _, k := range candidates {
		if indegree[k] == 0 {
			ready = append(ready, k)
		}
	}
	sortKeys(ready)
	var out []TxKey
	for len(ready) > 0 {
		k := ready[0]
		ready = ready[1:]
		out = append(out, k)
		next := dependents[k]
		sortKeys(next)
		for _, dep := range next {
			indegree[dep]--
			if indegree[dep] == 0 {
				ready = append(ready, dep)
			}
		}
	}
	if len(out) != len(candidates) {
		return out, fmt.Errorf("recovery: sentinel dependency cycle among %d transactions", len(candidates)-len(out))
	}
	return out, nil
}

// sortKeys orders keys deterministically (thread, then txid).
func sortKeys(keys []TxKey) {
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Thread != keys[j].Thread {
			return keys[i].Thread < keys[j].Thread
		}
		return keys[i].TxID < keys[j].TxID
	})
}
