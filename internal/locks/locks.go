// Package locks implements the lock table used by the lock-based designs of
// the evaluation (SO and ATOM): a fixed array of spin locks in persistent
// memory, one per cache line to avoid false sharing, acquired through the
// simulated cache hierarchy so that lock transfers pay real coherence costs.
// Deadlock freedom comes from acquiring every transaction's pre-declared lock
// set in sorted order (two-phase locking with ordered acquisition).
package locks

import (
	"sort"

	"dhtm/internal/config"
	"dhtm/internal/hier"
	"dhtm/internal/memdev"
	"dhtm/internal/txn"
)

// Table is a fixed-size lock table. Abstract lock IDs (partition numbers for
// the micro-benchmarks, record identifiers for OLTP) hash onto slots.
type Table struct {
	cfg   config.Config
	base  uint64
	slots int
}

// NewTable reserves slots lock words (one cache line apart) starting at base.
// The base address is typically obtained from palloc.
func NewTable(cfg config.Config, base uint64, slots int) *Table {
	if slots <= 0 {
		slots = 1
	}
	return &Table{cfg: cfg, base: base, slots: slots}
}

// Slots returns the number of physical lock slots.
func (t *Table) Slots() int { return t.slots }

// Addr maps an abstract lock ID to its lock word address.
func (t *Table) Addr(id uint64) uint64 {
	return t.base + (id%uint64(t.slots))*uint64(memdev.LineBytes)
}

// SortedAddrs resolves and deduplicates a transaction's lock IDs into the
// ordered list of lock word addresses to acquire.
func (t *Table) SortedAddrs(ids []uint64) []uint64 {
	seen := make(map[uint64]struct{}, len(ids))
	out := make([]uint64, 0, len(ids))
	for _, id := range ids {
		a := t.Addr(id)
		if _, dup := seen[a]; dup {
			continue
		}
		seen[a] = struct{}{}
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Acquire spins until the lock word at addr is obtained by core. The
// test-and-set is performed without yielding between the read and the write,
// which models an atomic exchange; waiting advances the core's clock so other
// cores make progress.
func (t *Table) Acquire(h *hier.Hierarchy, core int, c txn.Clock, addr uint64) {
	for {
		v, r := h.Load(core, addr, c.Now(), false)
		if v == 0 {
			sr := h.Store(core, addr, uint64(core)+1, r.Done, false)
			c.AdvanceTo(sr.Done + t.cfg.LockAccessLatency)
			return
		}
		// Lock held: back off and retry. The owner keeps making progress
		// because the simulation always runs the core with the smallest clock.
		c.AdvanceTo(r.Done + t.cfg.LockAccessLatency + t.cfg.BackoffBase)
	}
}

// AcquireAll acquires every address in order.
func (t *Table) AcquireAll(h *hier.Hierarchy, core int, c txn.Clock, addrs []uint64) {
	for _, a := range addrs {
		t.Acquire(h, core, c, a)
	}
}

// Release releases a single lock.
func (t *Table) Release(h *hier.Hierarchy, core int, c txn.Clock, addr uint64) {
	r := h.Store(core, addr, 0, c.Now(), false)
	c.AdvanceTo(r.Done + t.cfg.LockAccessLatency)
}

// ReleaseAll releases every lock in reverse acquisition order.
func (t *Table) ReleaseAll(h *hier.Hierarchy, core int, c txn.Clock, addrs []uint64) {
	for i := len(addrs) - 1; i >= 0; i-- {
		t.Release(h, core, c, addrs[i])
	}
}
