package locks

import (
	"testing"

	"dhtm/internal/config"
	"dhtm/internal/engine"
	"dhtm/internal/hier"
	"dhtm/internal/memdev"
	"dhtm/internal/stats"
)

func newTestHier(cores int) (*hier.Hierarchy, config.Config) {
	cfg := config.Default()
	cfg.NumCores = cores
	st := stats.New(cores)
	ctl := memdev.NewController(cfg, memdev.NewStore(), st)
	return hier.New(cfg, ctl, st), cfg
}

// TestSortedAddrsDeduplicates checks lock-set resolution.
func TestSortedAddrsDeduplicates(t *testing.T) {
	cfg := config.Default()
	tbl := NewTable(cfg, 0x1000, 8)
	addrs := tbl.SortedAddrs([]uint64{3, 11, 3, 5}) // 3 and 11 alias (11%8=3)
	if len(addrs) != 2 {
		t.Fatalf("got %d addresses, want 2 (deduplicated)", len(addrs))
	}
	if addrs[0] >= addrs[1] {
		t.Fatalf("addresses not sorted: %v", addrs)
	}
}

// TestMutualExclusion runs two cores incrementing a shared counter under the
// same lock and checks no increment is lost.
func TestMutualExclusion(t *testing.T) {
	h, cfg := newTestHier(2)
	tbl := NewTable(cfg, 0x1000, 4)
	const counterAddr = 0x8000
	const perCore = 40

	eng := engine.New(2)
	eng.Run(func(core int, c *engine.Clock) {
		for i := 0; i < perCore; i++ {
			addrs := tbl.SortedAddrs([]uint64{1})
			tbl.AcquireAll(h, core, c, addrs)
			v, r := h.Load(core, counterAddr, c.Now(), false)
			c.AdvanceTo(r.Done)
			sr := h.Store(core, counterAddr, v+1, c.Now(), false)
			c.AdvanceTo(sr.Done)
			tbl.ReleaseAll(h, core, c, addrs)
			c.Advance(17) // skew the cores so interleavings vary
		}
	})
	h.DrainClean()
	if got := h.Controller().Store().ReadWord(counterAddr); got != 2*perCore {
		t.Fatalf("counter = %d, want %d (lost updates under the lock)", got, 2*perCore)
	}
}
