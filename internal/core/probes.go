package core

import (
	"fmt"

	"dhtm/internal/probe"
)

// RegisterProbes contributes DHTM's design-specific signals to a cell
// recorder: the coalescing log-buffer occupancy (whose coalescing window is
// exactly what Figure 6 sweeps) system-wide and per core, and the write-set
// lines currently overflowed to sticky LLC state.
func (d *DHTM) RegisterProbes(rec *probe.Recorder) {
	rec.Gauge("dhtm/logbuf_entries", "entries", "internal/core", func(uint64) float64 {
		t := 0
		for _, cs := range d.cores {
			t += cs.buf.Len()
		}
		return float64(t)
	})
	rec.Gauge("dhtm/overflowed_lines", "lines", "internal/core", func(uint64) float64 {
		t := 0
		for _, cs := range d.cores {
			t += cs.overflowed.Len()
		}
		return float64(t)
	})
	for i := range d.cores {
		cs := d.cores[i]
		rec.Gauge(fmt.Sprintf("dhtm/logbuf_entries/c%d", i), "entries", "internal/core",
			func(uint64) float64 { return float64(cs.buf.Len()) })
	}
}
