package core

import (
	"testing"

	"dhtm/internal/config"
	"dhtm/internal/engine"
	"dhtm/internal/htm"
	"dhtm/internal/recovery"
	"dhtm/internal/txn"
	"dhtm/internal/wal"
)

// newDHTM builds a small machine running DHTM.
func newDHTM(t *testing.T, cores int, opt Options) (*txn.Env, *DHTM) {
	t.Helper()
	cfg := config.Default()
	cfg.NumCores = cores
	env, err := txn.NewEnv(cfg)
	if err != nil {
		t.Fatalf("NewEnv: %v", err)
	}
	return env, New(env, opt)
}

// runOn executes body transactions on core 0 under the engine.
func runOn(d *DHTM, body ...func(tx txn.Tx) error) []txn.ExecResult {
	var results []txn.ExecResult
	eng := engine.New(d.cfg.NumCores)
	eng.Run(func(core int, c *engine.Clock) {
		if core != 0 {
			return
		}
		for _, b := range body {
			results = append(results, d.Run(0, c, &txn.Transaction{Body: b, LockIDs: []uint64{0}}))
		}
		d.Finish(0, c)
	})
	return results
}

// TestCommitWritesRedoAndCommitRecords checks the durable log contents of a
// committed transaction before its completion phase.
func TestCommitWritesRedoAndCommitRecords(t *testing.T) {
	env, d := newDHTM(t, 1, Options{})
	addr := wal.HeapBase
	eng := engine.New(1)
	eng.Run(func(core int, c *engine.Clock) {
		d.Run(0, c, &txn.Transaction{Body: func(tx txn.Tx) error {
			tx.Write(addr, 7)
			tx.Write(addr+64, 8)
			return nil
		}})
		// No Finish: the transaction is committed but not complete.
	})
	recs, err := env.Registry.Log(0).Scan(env.Store())
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	var redo, commit, complete int
	for _, r := range recs {
		switch r.Type {
		case wal.RecRedo:
			redo++
		case wal.RecCommit:
			commit++
		case wal.RecComplete:
			complete++
		}
	}
	if redo != 2 || commit != 1 || complete != 0 {
		t.Fatalf("log has redo=%d commit=%d complete=%d, want 2/1/0", redo, commit, complete)
	}
	if got := env.Store().ReadWord(addr); got != 0 {
		t.Fatalf("in-place data written before completion: %d", got)
	}
	// Crash now and recover: the committed values must be restored.
	env.Hier.Crash()
	if _, err := recovery.Recover(env.Store()); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if env.Store().ReadWord(addr) != 7 || env.Store().ReadWord(addr+64) != 8 {
		t.Fatalf("committed values not recovered")
	}
}

// TestCompletionWritesDataInPlace checks that after Finish the data is
// durable in place and the log is truncated (a complete record was written).
func TestCompletionWritesDataInPlace(t *testing.T) {
	env, d := newDHTM(t, 1, Options{})
	addr := wal.HeapBase
	runOn(d, func(tx txn.Tx) error {
		tx.Write(addr, 99)
		return nil
	})
	if got := env.Store().ReadWord(addr); got != 99 {
		t.Fatalf("completion did not write data in place: %d", got)
	}
	recs, err := env.Registry.Log(0).Scan(env.Store())
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if len(recs) != 0 {
		t.Fatalf("log not truncated after completion: %d records live", len(recs))
	}
}

// TestAbortLeavesNoTrace checks that an explicitly aborted transaction leaves
// neither durable data nor a committed log image, and that retries are not
// attempted for explicit aborts beyond the retry budget.
func TestAbortDiscardsSpeculativeState(t *testing.T) {
	env, d := newDHTM(t, 1, Options{})
	addr := wal.HeapBase
	env.Store().WriteWord(addr, 5)

	eng := engine.New(1)
	eng.Run(func(core int, c *engine.Clock) {
		// Run a transaction that is doomed by a log overflow: shrink the log
		// first so the first redo record cannot fit.
		env.Registry.Log(0).SizeWords = 4
		res := d.Run(0, c, &txn.Transaction{Body: func(tx txn.Tx) error {
			tx.Write(addr, 123)
			return nil
		}})
		if !res.Committed {
			t.Errorf("transaction did not eventually commit (fallback should guarantee progress)")
		}
		d.Finish(0, c)
	})
	env.Hier.DrainClean()
	if got := env.Store().ReadWord(addr); got != 123 {
		t.Fatalf("fallback path lost the write: %d", got)
	}
	if env.Stats.Core(0).AbortsByReason[3] == 0 { // stats.AbortLogOverflow
		t.Fatalf("expected log-overflow aborts to be recorded")
	}
}

// TestWriteSetOverflowToLLC forces the write set past the L1 and checks the
// transaction still commits on the hardware path, with overflowed lines
// recorded in the durable overflow list and written back at completion.
func TestWriteSetOverflowToLLC(t *testing.T) {
	cfg := config.Default()
	cfg.NumCores = 1
	cfg.L1Size = 2 * 1024 // 32 lines: tiny L1 so the write set overflows
	env, err := txn.NewEnv(cfg)
	if err != nil {
		t.Fatalf("NewEnv: %v", err)
	}
	d := New(env, Options{})
	const lines = 128
	eng := engine.New(1)
	eng.Run(func(core int, c *engine.Clock) {
		res := d.Run(0, c, &txn.Transaction{Body: func(tx txn.Tx) error {
			for i := 0; i < lines; i++ {
				tx.Write(wal.HeapBase+uint64(i)*64, uint64(i)+1)
			}
			return nil
		}})
		if !res.Committed || res.Aborts != 0 {
			t.Errorf("overflowing transaction did not commit cleanly: %+v", res)
		}
		d.Finish(0, c)
	})
	if env.Stats.OverflowedLines == 0 {
		t.Fatalf("no lines overflowed despite a write set 4x the L1")
	}
	if env.Stats.Core(0).Fallbacks != 0 {
		t.Fatalf("transaction fell back to software instead of using LLC overflow")
	}
	for i := 0; i < lines; i++ {
		if got := env.Store().ReadWord(wal.HeapBase + uint64(i)*64); got != uint64(i)+1 {
			t.Fatalf("line %d not durable after completion: %d", i, got)
		}
	}
}

// TestDisableOverflowAborts checks the L1-limited ablation falls back to the
// software path for L1-exceeding write sets (instead of overflowing).
func TestDisableOverflowFallsBack(t *testing.T) {
	cfg := config.Default()
	cfg.NumCores = 1
	cfg.L1Size = 2 * 1024
	cfg.MaxRetries = 3
	env, err := txn.NewEnv(cfg)
	if err != nil {
		t.Fatalf("NewEnv: %v", err)
	}
	d := New(env, Options{DisableOverflow: true})
	eng := engine.New(1)
	eng.Run(func(core int, c *engine.Clock) {
		res := d.Run(0, c, &txn.Transaction{Body: func(tx txn.Tx) error {
			for i := 0; i < 128; i++ {
				tx.Write(wal.HeapBase+uint64(i)*64, 1)
			}
			return nil
		}})
		if !res.Committed {
			t.Errorf("fallback did not guarantee progress")
		}
		d.Finish(0, c)
	})
	if env.Stats.Core(0).Fallbacks != 1 {
		t.Fatalf("expected exactly one software fallback, got %d", env.Stats.Core(0).Fallbacks)
	}
}

// TestLogBufferCoalescingReducesRecords compares the default coalescing
// configuration against word-granular logging on the same access pattern.
func TestLogBufferCoalescingReducesRecords(t *testing.T) {
	run := func(opt Options) uint64 {
		env, d := newDHTM(t, 1, opt)
		runOn(d, func(tx txn.Tx) error {
			// Eight stores per line over eight lines: coalescing should emit
			// one record per line, word-granular logging one per store.
			for i := 0; i < 8; i++ {
				for w := 0; w < 8; w++ {
					tx.Write(wal.HeapBase+uint64(i)*64+uint64(w)*8, uint64(i*w))
				}
			}
			return nil
		})
		return env.Stats.LogRecords
	}
	coalesced := run(Options{})
	wordGranular := run(Options{DisableLogBuffer: true})
	if coalesced >= wordGranular {
		t.Fatalf("coalescing (%d records) did not reduce log records vs word-granular (%d)", coalesced, wordGranular)
	}
}

// TestStateMachine checks the externally observable lifecycle: Active during
// the body, Committed after commit, Idle after completion.
func TestStateMachine(t *testing.T) {
	_, d := newDHTM(t, 1, Options{})
	eng := engine.New(1)
	eng.Run(func(core int, c *engine.Clock) {
		d.Run(0, c, &txn.Transaction{Body: func(tx txn.Tx) error {
			tx.Write(wal.HeapBase, 1)
			if d.cores[0].ctx.State != htm.Active {
				t.Errorf("state during body = %v, want Active", d.cores[0].ctx.State)
			}
			return nil
		}})
		if d.cores[0].ctx.State != htm.Committed {
			t.Errorf("state after Run = %v, want Committed (completion pending)", d.cores[0].ctx.State)
		}
		d.Finish(0, c)
		if d.cores[0].ctx.State != htm.Idle {
			t.Errorf("state after Finish = %v, want Idle", d.cores[0].ctx.State)
		}
	})
}
