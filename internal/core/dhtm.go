// Package core implements DHTM — Durable Hardware Transactional Memory — the
// paper's primary contribution. DHTM layers hardware redo logging on top of
// an RTM-like HTM: atomic visibility comes from the HTM's read/write bits and
// eager, coherence-based conflict detection; atomic durability comes from
// redo-log records that the L1 cache controller streams to a per-thread log
// in persistent memory, coalesced through a small log buffer. The same
// logging infrastructure lets the write set overflow from the L1 into the LLC
// ("sticky" directory state plus a durable overflow list), extending the
// supported transaction size from L1-limited to LLC-limited with no
// structural changes to the LLC.
package core

import (
	"dhtm/internal/cache"
	"dhtm/internal/config"
	"dhtm/internal/hier"
	"dhtm/internal/htm"
	"dhtm/internal/logbuf"
	"dhtm/internal/memdev"
	"dhtm/internal/stats"
	"dhtm/internal/txn"
	"dhtm/internal/wal"
)

// Options selects DHTM variants used by the ablation studies.
type Options struct {
	// DisableOverflow makes write-set eviction from the L1 abort the
	// transaction, i.e. an L1-limited DHTM (the PTM-like configuration).
	DisableOverflow bool
	// DisableLogBuffer bypasses the coalescing log buffer and emits one
	// word-granular redo record per store (Figure 2b's strawman).
	DisableLogBuffer bool
	// InstantPersist makes log and data writes take zero time while keeping
	// them functionally correct; used for the §VI.D idealised-DHTM ablation.
	InstantPersist bool
	// LogBufferEntries overrides the configured log-buffer size when > 0
	// (Figure 6's sweep).
	LogBufferEntries int
}

// fallbackLockAddr is the persistent word used as the single global lock of
// the software fallback path. Hardware transactions read it at begin so that
// a fallback acquisition aborts them (standard SGL fallback).
const fallbackLockAddr = wal.RegistryTableAddr + 0x800

// DHTM is the durable hardware transactional memory runtime. It implements
// both txn.Runtime (transaction execution) and hier.Arbiter (conflict
// resolution and overflow handling hooks invoked by the coherence protocol).
type DHTM struct {
	env *txn.Env
	cfg config.Config
	h   *hier.Hierarchy
	opt Options

	cores []*coreState
}

// coreState is the per-core hardware state DHTM adds (Table II): the log
// buffer, the transaction-state register, and the log/overflow-list
// registers, plus runtime bookkeeping.
type coreState struct {
	ctx *htm.Ctx
	buf *logbuf.Buffer
	log *wal.ThreadLog
	ov  *wal.OverflowList

	txid         uint64
	logPersistAt uint64       // latest durability time of issued log records
	overflowed   *htm.LineSet // write-set lines currently overflowed to the LLC
	pendingWB    []uint64     // lines awaiting in-place write-back (commit completion)
	retries      int

	// deps are the committed-but-incomplete transactions whose data this
	// transaction consumed (sentinel dependencies). The log of a dependent
	// transaction may not be truncated before its dependencies have
	// completed, otherwise a crash could replay the dependency's older value
	// over the dependent's already-completed newer one.
	deps []txDep
	// deferredTrunc holds completed transactions whose log truncation is
	// waiting for their dependencies to complete.
	deferredTrunc []deferredTruncation
}

// txDep identifies a transaction on another core.
type txDep struct {
	thread int
	txid   uint64
}

// deferredTruncation is a completed transaction whose durable log records are
// kept until every dependency has completed.
type deferredTruncation struct {
	txid uint64
	deps []txDep
}

// New builds a DHTM runtime over the environment and installs its arbiter
// into the cache hierarchy.
func New(env *txn.Env, opt Options) *DHTM {
	d := &DHTM{env: env, cfg: env.Cfg, h: env.Hier, opt: opt}
	bufEntries := env.Cfg.LogBufferEntries
	if opt.LogBufferEntries > 0 {
		bufEntries = opt.LogBufferEntries
	}
	for i := 0; i < env.Cfg.NumCores; i++ {
		d.cores = append(d.cores, &coreState{
			ctx:        htm.NewCtx(env.Cfg),
			buf:        logbuf.New(bufEntries),
			log:        env.Registry.Log(i),
			ov:         env.Registry.Overflow(i),
			overflowed: htm.NewLineSet(32),
		})
	}
	env.Hier.SetArbiter(d)
	return d
}

// Name implements txn.Runtime.
func (d *DHTM) Name() string {
	switch {
	case d.opt.InstantPersist:
		return "DHTM-instant"
	case d.opt.DisableOverflow:
		return "DHTM-L1"
	default:
		return "DHTM"
	}
}

// Env returns the simulated machine this runtime drives.
func (d *DHTM) Env() *txn.Env { return d.env }

// ---------------------------------------------------------------------------
// txn.Runtime implementation
// ---------------------------------------------------------------------------

// dtx adapts a core's transactional accesses to the txn.Tx interface.
type dtx struct {
	d     *DHTM
	core  int
	clock txn.Clock
}

// Read implements txn.Tx.
func (t dtx) Read(addr uint64) uint64 { return t.d.txRead(t.core, t.clock, addr) }

// Write implements txn.Tx.
func (t dtx) Write(addr uint64, val uint64) { t.d.txWrite(t.core, t.clock, addr, val) }

// Run implements txn.Runtime.
func (d *DHTM) Run(core int, c txn.Clock, t *txn.Transaction) txn.ExecResult {
	cs := d.cores[core]
	res := txn.ExecResult{Start: c.Now()}
	for attempt := 0; ; attempt++ {
		if attempt >= d.cfg.MaxRetries {
			d.runFallback(core, c, t)
			d.env.Stats.Core(core).Fallbacks++
			d.env.Stats.Core(core).AbortsByReason[stats.AbortFallback]++
			res.Committed = true
			break
		}
		d.begin(core, c)
		err, ok, reason := txn.Attempt(t.Body, dtx{d: d, core: core, clock: c})
		switch {
		case ok && err == nil && !cs.ctx.Doomed && cs.ctx.State == htm.Active:
			if d.commit(core, c) {
				res.Committed = true
			} else {
				reason = stats.AbortLogOverflow
			}
		case ok && err == nil:
			// The body ran to completion but the transaction was doomed by a
			// remote conflict before it could commit.
			reason = cs.ctx.Reason
			ok = false
		case ok && err != nil:
			reason = stats.AbortExplicit
			ok = false
		}
		if res.Committed {
			break
		}
		// The transaction aborted. Cleanup has already happened (either in
		// the access that detected the loss or remotely by the winner);
		// ensure it for the explicit-abort path.
		d.abortCleanup(core, reason, c.Now())
		res.Aborts++
		d.env.Stats.Core(core).Aborts++
		d.env.Stats.Core(core).AbortsByReason[reason]++
		if reason == stats.AbortLogOverflow {
			d.env.Registry.GrowLog(core, 2)
		}
		c.Advance(d.cfg.AbortPenalty + txn.Backoff(d.cfg, attempt))
		c.AdvanceTo(cs.ctx.CompletionAt)
	}
	cst := d.env.Stats.Core(core)
	cst.Commits++
	cst.WriteSetLines += uint64(cs.ctx.WriteLines.Len())
	cst.ReadSetLines += uint64(cs.ctx.ReadLines.Len())
	cst.TxCycles += c.Now() - res.Start
	res.End = c.Now()
	return res
}

// Finish implements txn.Runtime: it drains the last transaction's completion
// phase into the core's clock and records the final cycle.
func (d *DHTM) Finish(core int, c txn.Clock) {
	d.completePrevious(core, c)
	c.AdvanceTo(d.cores[core].ctx.CompletionAt)
	d.env.Stats.Core(core).FinalCycle = c.Now()
}

// begin waits for the previous transaction's completion phase, checks the
// fallback lock, and resets the per-core transactional state.
func (d *DHTM) begin(core int, c txn.Clock) {
	cs := d.cores[core]
	for {
		d.completePrevious(core, c)
		c.AdvanceTo(cs.ctx.CompletionAt)

		cs.ctx.BeginReset()
		cs.txid = cs.log.BeginTx()
		cs.logPersistAt = 0
		cs.buf.Clear()
		cs.overflowed.Clear()
		cs.pendingWB = cs.pendingWB[:0]
		cs.deps = cs.deps[:0]
		d.truncateSatisfied(core, c.Now())

		// Single-global-lock fallback interlock: subscribe to the fallback
		// lock so that a software-fallback writer aborts this hardware
		// transaction.
		v, r := d.h.Load(core, fallbackLockAddr, c.Now(), true)
		c.AdvanceTo(r.Done)
		if r.Aborted || cs.ctx.Doomed {
			d.abortCleanup(core, stats.AbortConflict, c.Now())
			c.Advance(d.cfg.BackoffBase)
			continue
		}
		if v != 0 {
			// A software-fallback transaction holds the global lock; step
			// back to idle and retry once it is likely to have drained.
			d.abortCleanup(core, stats.AbortConflict, c.Now())
			c.Advance(txn.Backoff(d.cfg, 2))
			continue
		}
		return
	}
}

// txRead performs a transactional load.
func (d *DHTM) txRead(core int, c txn.Clock, addr uint64) uint64 {
	cs := d.cores[core]
	if cs.ctx.Doomed || cs.ctx.State != htm.Active {
		txn.AbortNow(cs.ctx.Reason)
	}
	v, r := d.h.Load(core, addr, c.Now(), true)
	c.AdvanceTo(r.Done)
	if r.Aborted {
		d.abortCleanup(core, stats.AbortConflict, c.Now())
		txn.AbortNow(stats.AbortConflict)
	}
	cs.ctx.ReadLines.Add(d.h.Align(addr))
	return v
}

// txWrite performs a transactional store, updating the log buffer and
// emitting redo records for coalesced lines as they are evicted from it.
func (d *DHTM) txWrite(core int, c txn.Clock, addr uint64, val uint64) {
	cs := d.cores[core]
	if cs.ctx.Doomed || cs.ctx.State != htm.Active {
		txn.AbortNow(cs.ctx.Reason)
	}
	r := d.h.Store(core, addr, val, c.Now(), true)
	c.AdvanceTo(r.Done)
	if r.Aborted {
		d.abortCleanup(core, stats.AbortConflict, c.Now())
		txn.AbortNow(stats.AbortConflict)
	}
	if cs.ctx.Doomed || cs.ctx.State != htm.Active {
		// An LLC-capacity eviction triggered by our own fill aborted us.
		txn.AbortNow(cs.ctx.Reason)
	}
	la := d.h.Align(addr)
	cs.ctx.WriteLines.Add(la)

	if d.opt.DisableLogBuffer {
		// Word-granular logging: one (address, value) record per store.
		if err := d.appendLog(core, &wal.Record{Type: wal.RecRedo, TxID: cs.txid, LineAddr: addr,
			Data: memdev.Line{val}}, c.Now()); err != nil {
			d.abortCleanup(core, stats.AbortLogOverflow, c.Now())
			txn.AbortNow(stats.AbortLogOverflow)
		}
		return
	}
	if evicted, has := cs.buf.Touch(la); has {
		if err := d.emitRedo(core, evicted, c.Now()); err != nil {
			d.abortCleanup(core, stats.AbortLogOverflow, c.Now())
			txn.AbortNow(stats.AbortLogOverflow)
		}
	}
}

// emitRedo writes the redo-log record for one cache line, composing the
// address with the line's current contents from the cache hierarchy. The
// record write happens off the critical path: only bandwidth is consumed and
// the durability time is folded into logPersistAt, which commit waits for.
func (d *DHTM) emitRedo(core int, lineAddr uint64, at uint64) error {
	cs := d.cores[core]
	rec := &wal.Record{Type: wal.RecRedo, TxID: cs.txid, LineAddr: lineAddr, Data: d.h.LineSnapshot(core, lineAddr)}
	return d.appendLog(core, rec, at)
}

// appendLog appends a record to the core's durable log, tracking its
// durability time. A wal.ErrLogFull error is returned to the caller, which
// translates it into a log-overflow abort.
func (d *DHTM) appendLog(core int, rec *wal.Record, at uint64) error {
	cs := d.cores[core]
	done, err := cs.log.Append(rec, at)
	if err != nil {
		return err
	}
	d.env.Stats.LogRecords++
	if !d.opt.InstantPersist && done > cs.logPersistAt {
		cs.logPersistAt = done
	}
	return nil
}

// commit reaches the transaction's commit point: all remaining redo records
// are emitted, the commit record is written once every log record is durable,
// read-set tracking is cleared and the transaction enters the Committed
// state. In-place write-backs are deferred to the completion phase. It
// reports false when the durable log overflowed, in which case the
// transaction has been aborted instead.
func (d *DHTM) commit(core int, c txn.Clock) bool {
	cs := d.cores[core]
	at := c.Now()
	for _, la := range cs.buf.Drain() {
		if err := d.emitRedo(core, la, at); err != nil {
			d.abortCleanup(core, stats.AbortLogOverflow, at)
			return false
		}
	}
	ready := at
	if cs.logPersistAt > ready {
		ready = cs.logPersistAt
	}
	if err := d.appendLog(core, &wal.Record{Type: wal.RecCommit, TxID: cs.txid}, ready); err != nil {
		d.abortCleanup(core, stats.AbortLogOverflow, ready)
		return false
	}
	commitAt := ready
	if !d.opt.InstantPersist && cs.logPersistAt > commitAt {
		commitAt = cs.logPersistAt
	}

	// Flash-clear the read bits and the read-set overflow signature; write
	// bits are cleared lazily as the completion phase writes lines back.
	d.h.L1(core).ForEach(func(l *cache.Line) { l.R = false })
	cs.ctx.Sig.Clear()
	cs.ctx.State = htm.Committed

	// Record which lines the completion phase must write back in place and
	// reserve their memory-channel time now: the hardware starts issuing the
	// write-backs at the commit point, in the background, so they overlap with
	// the non-transactional code that follows the transaction. The functional
	// effect is applied when the completion phase ends (completePrevious).
	cs.pendingWB = cs.pendingWB[:0]
	d.h.L1(core).ForEach(func(l *cache.Line) {
		if l.W {
			cs.pendingWB = append(cs.pendingWB, l.Addr)
		}
	})
	cs.pendingWB = append(cs.pendingWB, cs.overflowed.Keys()...)
	completionAt := commitAt
	if !d.opt.InstantPersist {
		for range cs.pendingWB {
			if done := d.env.Ctl.ReserveWrite(d.cfg.LineSize, commitAt, memdev.TrafficData); done > completionAt {
				completionAt = done
			}
		}
		if n := cs.overflowed.Len(); n > 0 {
			// The memory controller reads the overflow list back to find the
			// overflowed lines before writing them in place.
			if _, rdone := d.env.Ctl.ReadWords(cs.ov.Base, n, commitAt); rdone > completionAt {
				completionAt = rdone
			}
		}
	}
	if completionAt > cs.ctx.CompletionAt {
		cs.ctx.CompletionAt = completionAt
	}
	c.AdvanceTo(commitAt)
	return true
}

// completePrevious performs the completion phase of the previous transaction
// if one is still outstanding: committed transactions write their write set
// back in place (L1 lines and overflowed LLC lines) and log a complete
// record; aborted transactions have already had their overflow invalidations
// performed during cleanup. Either way the durable log is truncated.
func (d *DHTM) completePrevious(core int, c txn.Clock) {
	cs := d.cores[core]
	switch cs.ctx.State {
	case htm.Committed:
		// The write-backs' timing was reserved at the commit point; here the
		// completion phase finishes, so apply the functional effect: every
		// write-set line still owned by this core is written in place and
		// released.
		for _, la := range cs.pendingWB {
			if d.h.CompleteL1Line(core, la) {
				continue
			}
			if ll := d.h.LLC().Peek(la); ll != nil && ll.Valid() && ll.Owner == core {
				d.h.CompleteLLCLine(la)
				continue
			}
			// The line was handed to another core during the conflict window;
			// its committed value was persisted at hand-over.
		}
		done := cs.ctx.CompletionAt
		if done < c.Now() {
			done = c.Now()
		}
		// The complete record (and the log truncation it allows) must wait
		// until every transaction this one depends on (sentinels) has itself
		// completed; otherwise a crash would skip this transaction's replay
		// while still replaying the dependency, regressing the lines that
		// were handed over during the conflict window.
		if d.depsCompleted(cs.deps) {
			cdone, err := cs.log.Append(&wal.Record{Type: wal.RecComplete, TxID: cs.txid}, done)
			if err == nil && !d.opt.InstantPersist && cdone > done {
				done = cdone
			}
			cs.log.EndTx(cs.txid)
		} else {
			cs.deferredTrunc = append(cs.deferredTrunc, deferredTruncation{txid: cs.txid, deps: append([]txDep(nil), cs.deps...)})
		}
		cs.deps = cs.deps[:0]
		cs.ov.Clear()
		cs.overflowed.Clear()
		cs.pendingWB = cs.pendingWB[:0]
		cs.ctx.State = htm.Idle
		if done > cs.ctx.CompletionAt {
			cs.ctx.CompletionAt = done
		}
	case htm.Aborted:
		cs.ctx.State = htm.Idle
	}
}

// forceComplete performs the functional part of a committed transaction's
// completion immediately (its write set is persisted in place, the complete
// record is written unless dependencies defer it, and its log space is
// released). It is used when another core consumes the transaction's data
// during the conflict window; the completion *timing* reserved at commit is
// left untouched, so the owning core still waits for CompletionAt before its
// next transaction.
func (d *DHTM) forceComplete(core int, at uint64) {
	cs := d.cores[core]
	if cs.ctx.State != htm.Committed {
		return
	}
	for _, la := range cs.pendingWB {
		if d.h.CompleteL1Line(core, la) {
			continue
		}
		if ll := d.h.LLC().Peek(la); ll != nil && ll.Valid() && ll.Owner == core {
			d.h.CompleteLLCLine(la)
		}
	}
	if d.depsCompleted(cs.deps) {
		if _, err := cs.log.Append(&wal.Record{Type: wal.RecComplete, TxID: cs.txid}, at); err == nil {
			d.env.Stats.LogRecords++
		}
		cs.log.EndTx(cs.txid)
	} else {
		cs.deferredTrunc = append(cs.deferredTrunc, deferredTruncation{txid: cs.txid, deps: append([]txDep(nil), cs.deps...)})
	}
	cs.deps = cs.deps[:0]
	cs.ov.Clear()
	cs.overflowed.Clear()
	cs.pendingWB = cs.pendingWB[:0]
	cs.ctx.State = htm.Idle
}

// depsCompleted reports whether every listed dependency has finished its
// completion phase (its thread has either moved on to a later transaction or
// is idle).
func (d *DHTM) depsCompleted(deps []txDep) bool {
	for _, dep := range deps {
		ocs := d.cores[dep.thread]
		switch {
		case ocs.txid > dep.txid:
			// The owner began a later transaction, so dep completed.
		case ocs.txid == dep.txid && ocs.ctx.State == htm.Idle:
			// The owner completed it and has not begun a new one yet.
		default:
			return false
		}
	}
	return true
}

// truncateSatisfied retires deferred completions whose dependencies have
// since completed: their complete records are written and their log space is
// released.
func (d *DHTM) truncateSatisfied(core int, at uint64) {
	cs := d.cores[core]
	remaining := cs.deferredTrunc[:0]
	for _, dt := range cs.deferredTrunc {
		if d.depsCompleted(dt.deps) {
			if _, err := cs.log.Append(&wal.Record{Type: wal.RecComplete, TxID: dt.txid}, at); err == nil {
				d.env.Stats.LogRecords++
			}
			cs.log.EndTx(dt.txid)
			continue
		}
		remaining = append(remaining, dt)
	}
	cs.deferredTrunc = remaining
}

// abortCleanup takes an Active transaction to its abort point and performs
// the completion work that involves volatile state: speculative L1 lines are
// invalidated, overflowed LLC lines are invalidated, the abort record is
// written and the log is truncated. It is idempotent: only an Active
// transaction is cleaned.
func (d *DHTM) abortCleanup(core int, reason stats.AbortReason, at uint64) {
	cs := d.cores[core]
	if cs.ctx.State != htm.Active {
		return
	}
	cs.ctx.Doom(reason)
	cs.ctx.State = htm.Aborted

	// Abort record (logically clears the transaction's redo records). If the
	// log is full the record is skipped: recovery treats a commit-less
	// transaction exactly like an aborted one.
	if _, err := cs.log.Append(&wal.Record{Type: wal.RecAbort, TxID: cs.txid}, at); err == nil {
		d.env.Stats.LogRecords++
	}

	// Invalidate the speculative write set in the L1 and clear read bits.
	d.h.L1(core).ForEach(func(l *cache.Line) {
		if l.W {
			addr := l.Addr
			l.Reset()
			d.h.ReleaseOwnership(core, addr)
			return
		}
		l.R = false
	})

	// Abort completion: invalidate overflowed lines in the LLC. The timing is
	// background work (reading the overflow list plus an invalidation per
	// line); the next transaction on this core waits for it.
	done := at
	if n := cs.overflowed.Len(); n > 0 {
		_, rdone := d.env.Ctl.ReadWords(cs.ov.Base, n, at)
		done = rdone + uint64(n)*d.cfg.LLCLatency
		for _, la := range cs.overflowed.Keys() {
			d.h.InvalidateLLCLine(la)
		}
		cs.overflowed.Clear()
	}
	cs.ov.Clear()
	cs.buf.Clear()
	cs.ctx.Sig.Clear()
	cs.log.EndTx(cs.txid)
	cs.logPersistAt = 0
	if done > cs.ctx.CompletionAt {
		cs.ctx.CompletionAt = done
	}
}

// ---------------------------------------------------------------------------
// hier.Arbiter implementation
// ---------------------------------------------------------------------------

// InTx implements hier.Arbiter: Active and Committed transactions both hold
// speculative or not-yet-completed state that the coherence protocol must
// route through the arbiter.
func (d *DHTM) InTx(core int) bool {
	s := d.cores[core].ctx.State
	return s == htm.Active || s == htm.Committed
}

// SignatureContains implements hier.Arbiter.
func (d *DHTM) SignatureContains(core int, addr uint64) bool {
	cs := d.cores[core]
	if cs.ctx.State != htm.Active {
		return false
	}
	return cs.ctx.Sig.Contains(d.h.Align(addr))
}

// OnConflict implements hier.Arbiter. It distinguishes the conflict window of
// a committed-but-incomplete transaction (no conflict; sentinel records are
// written and the line's committed value is persisted in place before it is
// handed over) from a true conflict between two active transactions, which is
// resolved by the configured policy.
func (d *DHTM) OnConflict(requester, owner int, addr uint64, write, requesterTx bool, at uint64) bool {
	ocs := d.cores[owner]
	switch ocs.ctx.State {
	case htm.Committed:
		// The requester is consuming data from a committed transaction that
		// has not finished its completion phase. This is not a conflict
		// (§III-B): sentinel records capture the dependency and the owner's
		// write set is forced to complete functionally before the line is
		// handed over, so no later transaction can ever observe (and persist)
		// state that a crash would roll back behind it. The owner's timing
		// (CompletionAt) was already accounted at its commit.
		d.writeSentinels(requester, owner, requesterTx, at)
		d.forceComplete(owner, at)
		return true
	case htm.Active:
		if htm.OwnerShouldAbort(d.cfg.ConflictPolicy, requesterTx) {
			d.abortCleanup(owner, stats.AbortConflict, at)
			return true
		}
		return false
	default:
		// Stale directory state from a finished transaction: no conflict.
		return true
	}
}

// writeSentinels records the replay dependency between a transaction that
// consumed data from a committed-but-incomplete transaction and that
// transaction, in both logs (§III-B).
func (d *DHTM) writeSentinels(requester, owner int, requesterTx bool, at uint64) {
	ocs := d.cores[owner]
	if requesterTx && d.cores[requester].ctx.State == htm.Active {
		rcs := d.cores[requester]
		dep := &wal.Record{Type: wal.RecSentinel, TxID: rcs.txid, DepThread: owner, DepTxID: ocs.txid}
		if _, err := rcs.log.Append(dep, at); err == nil {
			d.env.Stats.SentinelRecords++
		}
		rcs.deps = append(rcs.deps, txDep{thread: owner, txid: ocs.txid})
	}
	own := &wal.Record{Type: wal.RecSentinel, TxID: ocs.txid, DepThread: requester, DepTxID: 0}
	if _, err := ocs.log.Append(own, at); err == nil {
		d.env.Stats.SentinelRecords++
	}
}

// OnWriteSetEviction implements hier.Arbiter: an L1 write-set line is being
// replaced. For an active transaction the line's pending log record is forced
// out, the address is appended to the durable overflow list and the line is
// allowed to overflow to the LLC in sticky state. For a committed transaction
// the eviction simply completes that line early. With overflow disabled
// (ablation) the transaction aborts, as in a plain RTM.
func (d *DHTM) OnWriteSetEviction(core int, addr uint64, at uint64) bool {
	cs := d.cores[core]
	la := d.h.Align(addr)
	if cs.ctx.State == htm.Committed {
		data := d.h.LineSnapshot(core, la)
		if d.opt.InstantPersist {
			d.env.Ctl.PersistLine(la, data, memdev.TrafficData)
		} else {
			d.h.PersistLineInPlace(la, data, at)
		}
		return true
	}
	if d.opt.DisableOverflow {
		d.abortCleanup(core, stats.AbortWriteCapacity, at)
		return false
	}
	if cs.buf.Remove(la) {
		if err := d.emitRedo(core, la, at); err != nil {
			d.abortCleanup(core, stats.AbortLogOverflow, at)
			return false
		}
	}
	done, err := cs.ov.Append(la, at)
	if err != nil {
		d.abortCleanup(core, stats.AbortLLCCapacity, at)
		return false
	}
	if !d.opt.InstantPersist && done > cs.logPersistAt {
		cs.logPersistAt = done
	}
	cs.overflowed.Add(la)
	return true
}

// OnReadSetEviction implements hier.Arbiter: evicted read-set lines move into
// the read-set overflow signature.
func (d *DHTM) OnReadSetEviction(core int, addr uint64, _ uint64) {
	cs := d.cores[core]
	if cs.ctx.State == htm.Active {
		cs.ctx.Sig.Add(d.h.Align(addr))
	}
}

// OnLLCTxEviction implements hier.Arbiter: losing an LLC line that still
// carries transactional state aborts an active transaction (the LLC is
// DHTM's capacity limit); for a committed transaction the line is simply
// persisted in place, completing it early.
func (d *DHTM) OnLLCTxEviction(core int, addr uint64, at uint64) {
	cs := d.cores[core]
	la := d.h.Align(addr)
	if cs.ctx.State == htm.Committed {
		data := d.h.LineSnapshot(core, la)
		if d.opt.InstantPersist {
			d.env.Ctl.PersistLine(la, data, memdev.TrafficData)
		} else {
			d.h.PersistLineInPlace(la, data, at)
		}
		return
	}
	if cs.ctx.State == htm.Active {
		d.abortCleanup(core, stats.AbortLLCCapacity, at)
	}
}

// OnOwnerReread implements hier.Arbiter: a line this core stickily owns in
// the LLC (an overflowed write-set line) is being re-read into the L1; mark
// it as part of the write set again so an abort invalidates it.
func (d *DHTM) OnOwnerReread(core int, addr uint64, line *cache.Line, _ uint64) {
	cs := d.cores[core]
	la := d.h.Align(addr)
	if cs.ctx.State != htm.Active {
		return
	}
	if cs.overflowed.Contains(la) {
		line.W = true
	}
}

// ---------------------------------------------------------------------------
// Software fallback path
// ---------------------------------------------------------------------------

// fallbackTx runs body accesses non-transactionally under the global fallback
// lock while building a Mnemosyne-style software redo log (the paper's
// fallback provides visibility via the lock and durability via software
// logging).
type fallbackTx struct {
	d     *DHTM
	core  int
	clock txn.Clock
	dirty *htm.LineSet
}

// Read implements txn.Tx.
func (t *fallbackTx) Read(addr uint64) uint64 {
	v, r := t.d.h.Load(t.core, addr, t.clock.Now(), false)
	t.clock.AdvanceTo(r.Done)
	return v
}

// Write implements txn.Tx.
func (t *fallbackTx) Write(addr uint64, val uint64) {
	r := t.d.h.Store(t.core, addr, val, t.clock.Now(), false)
	t.clock.AdvanceTo(r.Done)
	t.dirty.Add(t.d.h.Align(addr))
	// Software log write: issue cost now, record content at line granularity.
	t.clock.Advance(t.d.cfg.FlushIssueLatency)
}

// runFallback executes t under the single global lock with software logging
// and durability, guaranteeing forward progress for transactions that cannot
// succeed on the hardware path.
func (d *DHTM) runFallback(core int, c txn.Clock, t *txn.Transaction) {
	cs := d.cores[core]
	// Acquire the global fallback lock. The non-transactional store conflicts
	// with every hardware transaction's read set, aborting them.
	for {
		v, r := d.h.Load(core, fallbackLockAddr, c.Now(), false)
		if v == 0 {
			sr := d.h.Store(core, fallbackLockAddr, 1, r.Done, false)
			c.AdvanceTo(sr.Done)
			break
		}
		c.AdvanceTo(r.Done + txn.Backoff(d.cfg, 1))
	}

	cs.txid = cs.log.BeginTx()
	ftx := &fallbackTx{d: d, core: core, clock: c, dirty: htm.NewLineSet(16)}
	// The fallback path may not fail: explicit aborts are surfaced as a
	// committed no-op only if the body mutated nothing.
	_, _, _ = txn.Attempt(t.Body, ftx)

	// Durability: log every dirty line, fence, commit record, then flush data
	// in place so the log can be truncated immediately.
	at := c.Now()
	persist := at
	for _, la := range ftx.dirty.Keys() {
		rec := &wal.Record{Type: wal.RecRedo, TxID: cs.txid, LineAddr: la, Data: d.h.LineSnapshot(core, la)}
		if done, err := cs.log.Append(rec, at); err == nil && done > persist {
			persist = done
		}
		c.Advance(d.cfg.FlushIssueLatency)
	}
	c.AdvanceTo(persist)
	c.Advance(d.cfg.FenceLatency)
	if done, err := cs.log.Append(&wal.Record{Type: wal.RecCommit, TxID: cs.txid}, c.Now()); err == nil {
		c.AdvanceTo(done)
	}
	flushed := c.Now()
	for _, la := range ftx.dirty.Keys() {
		if done := d.h.FlushLine(core, la, c.Now()); done > flushed {
			flushed = done
		}
		c.Advance(d.cfg.FlushIssueLatency)
	}
	c.AdvanceTo(flushed)
	if done, err := cs.log.Append(&wal.Record{Type: wal.RecComplete, TxID: cs.txid}, c.Now()); err == nil {
		c.AdvanceTo(done)
	}
	cs.log.EndTx(cs.txid)

	// Release the lock.
	sr := d.h.Store(core, fallbackLockAddr, 0, c.Now(), false)
	c.AdvanceTo(sr.Done)

	cst := d.env.Stats.Core(core)
	cst.WriteSetLines += uint64(ftx.dirty.Len())
}
