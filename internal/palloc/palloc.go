// Package palloc is the persistent-heap allocator the workloads use to lay
// out their data structures in the simulated persistent address space. It is
// a simple bump allocator: the simulated OS hands each workload a region
// above wal.HeapBase, far away from the durable log region.
//
// Setup-time initialisation writes directly to the backing store (untimed),
// mirroring how the paper's benchmarks populate their data sets before the
// measured region starts.
package palloc

import (
	"fmt"

	"dhtm/internal/memdev"
	"dhtm/internal/wal"
)

// Heap is a bump allocator over the persistent address space.
type Heap struct {
	store *memdev.Store
	next  uint64
	limit uint64
}

// New creates a heap starting at wal.HeapBase.
func New(store *memdev.Store) *Heap {
	return &Heap{store: store, next: wal.HeapBase, limit: wal.HeapBase + (1 << 34)}
}

// Store returns the backing persistent-memory image.
func (h *Heap) Store() *memdev.Store { return h.store }

// Alloc reserves size bytes aligned to align (a power of two) and returns the
// base address. It panics if the heap region is exhausted, which indicates a
// workload configuration error rather than a runtime condition.
func (h *Heap) Alloc(size, align uint64) uint64 {
	if align == 0 {
		align = 8
	}
	if align&(align-1) != 0 {
		panic(fmt.Sprintf("palloc: alignment %d is not a power of two", align))
	}
	base := (h.next + align - 1) &^ (align - 1)
	if base+size > h.limit {
		panic(fmt.Sprintf("palloc: heap exhausted allocating %d bytes", size))
	}
	h.next = base + size
	return base
}

// AllocWords reserves n 8-byte words (8-byte aligned).
func (h *Heap) AllocWords(n int) uint64 { return h.Alloc(uint64(n)*8, 8) }

// AllocLines reserves n cache lines (line aligned), the natural unit for
// structures whose write-set footprint is being measured.
func (h *Heap) AllocLines(n int) uint64 {
	return h.Alloc(uint64(n)*memdev.LineBytes, memdev.LineBytes)
}

// Used reports the number of bytes allocated so far.
func (h *Heap) Used() uint64 { return h.next - wal.HeapBase }

// WriteWord initialises a word directly in persistent memory (untimed setup).
func (h *Heap) WriteWord(addr, val uint64) { h.store.WriteWord(addr, val) }

// ReadWord reads a word directly from persistent memory (untimed setup and
// verification).
func (h *Heap) ReadWord(addr uint64) uint64 { return h.store.ReadWord(addr) }
