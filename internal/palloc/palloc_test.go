package palloc

import (
	"testing"

	"dhtm/internal/memdev"
	"dhtm/internal/wal"
)

// TestAllocAlignmentAndDisjointness checks allocations are aligned, above the
// heap base, and never overlap.
func TestAllocAlignmentAndDisjointness(t *testing.T) {
	h := New(memdev.NewStore())
	type region struct{ base, size uint64 }
	var regions []region
	sizes := []uint64{8, 64, 100, 4096, 24}
	aligns := []uint64{8, 64, 8, 64, 8}
	for i, size := range sizes {
		base := h.Alloc(size, aligns[i])
		if base < wal.HeapBase {
			t.Fatalf("allocation %d below the heap base: %#x", i, base)
		}
		if base%aligns[i] != 0 {
			t.Fatalf("allocation %d not aligned to %d: %#x", i, aligns[i], base)
		}
		for _, r := range regions {
			if base < r.base+r.size && r.base < base+size {
				t.Fatalf("allocation %d overlaps an earlier region", i)
			}
		}
		regions = append(regions, region{base, size})
	}
	if h.Used() == 0 {
		t.Fatalf("Used() reports nothing allocated")
	}
}

// TestLineAndWordHelpers checks the convenience allocators and direct access.
func TestLineAndWordHelpers(t *testing.T) {
	h := New(memdev.NewStore())
	lines := h.AllocLines(3)
	if lines%uint64(memdev.LineBytes) != 0 {
		t.Fatalf("AllocLines not line aligned: %#x", lines)
	}
	words := h.AllocWords(5)
	if words%8 != 0 {
		t.Fatalf("AllocWords not word aligned: %#x", words)
	}
	h.WriteWord(words, 99)
	if h.ReadWord(words) != 99 {
		t.Fatalf("direct setup write not visible")
	}
}
