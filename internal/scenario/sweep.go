package scenario

import (
	"fmt"

	"dhtm/internal/harness"
	"dhtm/internal/runner"
)

// SweepOutcome is one cell's result in a sweep campaign — the shared
// machine-readable shape the serve API stores per cell and the CLIs emit,
// and the row source of SweepTable. Keeping one type (and one renderer)
// here is what makes a sweep scenario's table byte-identical whether it
// came from dhtm-bench -scenario or from dhtm-serve's /tables endpoint.
type SweepOutcome struct {
	Cell       runner.Cell `json:"cell"`
	Cached     bool        `json:"cached,omitempty"`
	Committed  uint64      `json:"committed"`
	Cycles     uint64      `json:"cycles"`
	Throughput float64     `json:"throughput_tx_per_mcycle"`
	Error      string      `json:"error,omitempty"`
}

// SweepOutcomes flattens a completed result set into outcomes, in plan
// order.
func SweepOutcomes(rs *runner.ResultSet) []SweepOutcome {
	out := make([]SweepOutcome, len(rs.Results))
	for i, r := range rs.Results {
		o := SweepOutcome{Cell: r.Cell, Cached: r.Cached}
		if r.Err != nil {
			o.Error = r.Err.Error()
		} else {
			o.Committed = r.Run.Committed
			o.Cycles = r.Run.Cycles
			o.Throughput = r.Run.Throughput()
		}
		out[i] = o
	}
	return out
}

// SweepTable renders sweep outcomes in the harness table format. Every
// surface that shows a sweep (serve's /tables, the CLIs' scenario mode)
// goes through this one function.
func SweepTable(name string, outcomes []SweepOutcome) *harness.Table {
	if name == "" {
		name = "sweep"
	}
	t := &harness.Table{
		ID:      name,
		Title:   "sweep results",
		Columns: []string{"cell", "design", "workload", "seed", "committed", "cycles", "tx/Mcycle", "cached", "error"},
	}
	for _, o := range outcomes {
		cached := ""
		if o.Cached {
			cached = "yes"
		}
		t.Rows = append(t.Rows, []string{
			o.Cell.ID, o.Cell.Design, o.Cell.Workload,
			fmt.Sprintf("%d", o.Cell.Seed),
			fmt.Sprintf("%d", o.Committed),
			fmt.Sprintf("%d", o.Cycles),
			fmt.Sprintf("%.3f", o.Throughput),
			cached, o.Error,
		})
	}
	return t
}
