// Package scenario defines the declarative campaign document of the
// reproduction: one versioned JSON format that describes *what to run* —
// an experiment selection, a design × workload × machine-knob sweep grid,
// or a crash-point exploration — independently of *where it runs*. The
// same file compiles to the same work whether it is handed to a CLI
// (dhtm-bench/dhtm-sim/dhtm-crashtest -scenario) or POSTed to dhtm-serve's
// /api/v1/jobs, so a campaign authored on a laptop runs identically against
// the campaign service, cell seeds and rendered tables included.
//
// Every name in a document (designs, workloads, tags, experiments) is
// validated against internal/registry and internal/harness at compile time,
// so a queued scenario can only fail by simulating, never by parsing. The
// format is pinned by FormatVersion exactly like the result store's record
// format: a reader never guesses at a document written by a different
// schema.
package scenario

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"dhtm/internal/crashtest"
)

// FormatVersion identifies the scenario document schema. Parse rejects any
// other version, so version skew surfaces as a clear error instead of a
// silently misread campaign. Bump it whenever a field changes meaning or
// shape, and regenerate the golden file in testdata/.
const FormatVersion = 1

// Mode selects what a scenario runs.
type Mode string

const (
	// ModeExperiment runs one or more of the paper's named experiments
	// (harness.Experiments) and renders their tables.
	ModeExperiment Mode = "experiment"
	// ModeSweep expands a design × workload × axes grid into a runner.Plan.
	ModeSweep Mode = "sweep"
	// ModeCrashtest expands a grid of crash-point explorations.
	ModeCrashtest Mode = "crashtest"
)

// Axes are the sweep dimensions of a scenario grid. Each listed value
// becomes one grid point; an absent axis contributes a single implicit
// "default" point. Which axes are legal depends on the mode — see Compile.
type Axes struct {
	// Cores sweeps the simulated core count.
	Cores []int `json:"cores,omitempty"`
	// TxPerCore sweeps the number of transactions each core issues.
	TxPerCore []int `json:"tx_per_core,omitempty"`
	// OpsPerTx sweeps the per-transaction operation count (the write-set
	// footprint knob of Table IV).
	OpsPerTx []int `json:"ops_per_tx,omitempty"`
	// Seed sweeps explicit workload seeds. Without it, cell seeds derive
	// from the document's base seed and each cell's identity, exactly as
	// experiment grids derive theirs.
	Seed []int64 `json:"seed,omitempty"`
	// LogBufferEntries sweeps DHTM's coalescing log-buffer size (the
	// Figure 6 axis).
	LogBufferEntries []int `json:"log_buffer_entries,omitempty"`
	// BandwidthScale sweeps the memory-bandwidth multiplier (the Table VII
	// axis).
	BandwidthScale []float64 `json:"bandwidth_scale,omitempty"`
	// ConflictPolicy sweeps the conflict-resolution policy
	// ("first-writer-wins" or "requester-wins", the ablation axis).
	ConflictPolicy []string `json:"conflict_policy,omitempty"`
	// ReorderWindow sweeps the persist-queue reordering window of the crash
	// adversary (crashtest mode only). 0 is a legal value: it is the
	// strictly-ordered baseline point of a robustness sweep.
	ReorderWindow []int `json:"reorder_window,omitempty"`
}

// Document is one declarative campaign. The zero value is not runnable;
// documents come from Parse (which enforces the format version) and turn
// into executable work through Compile.
type Document struct {
	// FormatVersion pins the schema; Parse rejects any value other than
	// FormatVersion.
	FormatVersion int `json:"format_version"`
	// Name identifies the campaign in plans, tables and progress reports.
	Name string `json:"name,omitempty"`
	// Description is free-form documentation carried with the file.
	Description string `json:"description,omitempty"`
	// Mode selects experiment, sweep or crashtest.
	Mode Mode `json:"mode"`

	// Experiments selects the paper experiments to run (experiment mode;
	// empty or ["all"] means every experiment, in paper order).
	Experiments []string `json:"experiments,omitempty"`
	// Quick shrinks experiment transaction counts (experiment mode).
	Quick bool `json:"quick,omitempty"`

	// Designs and DesignTags select the design set (sweep and crashtest
	// modes): explicit names plus every design carrying one of the tags,
	// deduplicated into paper order.
	Designs    []string `json:"designs,omitempty"`
	DesignTags []string `json:"design_tags,omitempty"`
	// Workloads and WorkloadTags select the workload set the same way.
	Workloads    []string `json:"workloads,omitempty"`
	WorkloadTags []string `json:"workload_tags,omitempty"`

	// Axes sweeps the machine and workload knobs across the grid.
	Axes Axes `json:"axes,omitempty"`

	// Torn and Points configure crashtest mode (crashtest.Config).
	Torn   bool                 `json:"torn,omitempty"`
	Points *crashtest.Selection `json:"points,omitempty"`
	// MaskMode and MaskSamples configure the reordering adversary's subset
	// enumeration (crashtest mode with a reorder_window axis): "auto"/"",
	// "exhaustive" or "sample", and the per-point sample budget.
	MaskMode    string `json:"mask_mode,omitempty"`
	MaskSamples int    `json:"mask_samples,omitempty"`
	// Differential enables the cross-design differential oracle (crashtest
	// mode): every recovered image must match a serial re-execution of its
	// committed transactions, run seeds derive design-independently, and the
	// runner cross-checks recovered-heap digests across the design set.
	Differential bool `json:"differential,omitempty"`

	// Seed is the base seed that derived cell and run seeds mix from
	// (0 = the runner default, 42).
	Seed int64 `json:"seed,omitempty"`
	// Store names a result-store directory for CLI runs; the campaign
	// service always uses its own store and ignores this field.
	Store string `json:"store,omitempty"`
}

// Parse decodes one scenario document strictly: unknown fields, trailing
// data and any format version other than FormatVersion are errors, never
// silently ignored — a typo'd axis name must not quietly shrink a grid.
func Parse(data []byte) (*Document, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var d Document
	if err := dec.Decode(&d); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if err := dec.Decode(new(json.RawMessage)); !errors.Is(err, io.EOF) {
		return nil, fmt.Errorf("scenario: trailing data after the document")
	}
	if d.FormatVersion != FormatVersion {
		return nil, fmt.Errorf("scenario: format_version %d is not supported (this build reads version %d)",
			d.FormatVersion, FormatVersion)
	}
	return &d, nil
}

// Load reads and parses a scenario file.
func Load(path string) (*Document, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	d, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return d, nil
}

// FlagConflict returns the first of the named command-line flags that was
// explicitly set (per flag.Visit over the default flag set), or "". The
// CLIs use it to reject flags a scenario file pins — one shared
// implementation, so a flag can be silently ignored on no surface.
func FlagConflict(names ...string) string {
	set := make(map[string]bool, len(names))
	for _, n := range names {
		set[n] = true
	}
	conflict := ""
	flag.Visit(func(f *flag.Flag) {
		if set[f.Name] && conflict == "" {
			conflict = f.Name
		}
	})
	return conflict
}

// Sniff reports whether a JSON body looks like a scenario document — it has
// a top-level format_version field. The serve API uses it to tell scenario
// submissions apart from raw job specs on the same endpoint.
func Sniff(data []byte) bool {
	var probe struct {
		FormatVersion *int `json:"format_version"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return false
	}
	return probe.FormatVersion != nil
}
