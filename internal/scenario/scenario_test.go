package scenario

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"dhtm/internal/config"
	"dhtm/internal/crashtest"
	"dhtm/internal/harness"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenDocument populates every field of the schema with a distinct value,
// so a silent rename, drop or re-typing of any field changes the golden
// bytes.
func goldenDocument() Document {
	return Document{
		FormatVersion: FormatVersion,
		Name:          "golden",
		Description:   "pins the scenario schema; regenerate with -update after a deliberate format change",
		Mode:          ModeSweep,
		Designs:       []string{"DHTM"},
		DesignTags:    []string{"baseline"},
		Workloads:     []string{"hash"},
		WorkloadTags:  []string{"micro"},
		Axes: Axes{
			Cores:            []int{2, 4},
			TxPerCore:        []int{4},
			OpsPerTx:         []int{2},
			Seed:             []int64{7},
			LogBufferEntries: []int{16, 64},
			BandwidthScale:   []float64{1, 2},
			ConflictPolicy:   []string{"requester-wins"},
			ReorderWindow:    []int{0, 3},
		},
		Torn:         true,
		Points:       &crashtest.Selection{Mode: "stride", Samples: 64, Mask: "0x5"},
		MaskMode:     "sample",
		MaskSamples:  32,
		Differential: true,
		Seed:         42,
		Store:        "results",
	}
}

// TestScenarioGoldenRoundTrip pins the on-disk scenario format: the golden
// file must parse back to exactly the document that wrote it, and re-encode
// to exactly its own bytes. If this fails because the format intentionally
// changed, bump FormatVersion and regenerate with
// `go test -run Golden -update ./internal/scenario`.
func TestScenarioGoldenRoundTrip(t *testing.T) {
	path := filepath.Join("testdata", "scenario.golden.json")
	want, err := json.MarshalIndent(goldenDocument(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	want = append(want, '\n')

	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, want, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(data, want) {
		t.Fatalf("golden file does not match the current encoding\ngolden:\n%s\ncurrent:\n%s", data, want)
	}

	doc, err := Parse(data)
	if err != nil {
		t.Fatalf("parsing golden file: %v", err)
	}
	if src := goldenDocument(); !reflect.DeepEqual(*doc, src) {
		t.Fatalf("round trip changed the document:\ngot  %+v\nwant %+v", *doc, src)
	}
	got, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if got = append(got, '\n'); !bytes.Equal(got, data) {
		t.Fatalf("re-encoding the parsed document changed the bytes:\n%s", got)
	}
}

// TestParseRejections checks the strict-parse guarantees: unknown fields,
// version skew and trailing data all fail loudly.
func TestParseRejections(t *testing.T) {
	cases := []struct {
		name, body, want string
	}{
		{"unknown field", `{"format_version":1,"mode":"sweep","designz":["DHTM"]}`, "unknown field"},
		{"unknown axis", `{"format_version":1,"mode":"sweep","axes":{"corez":[2]}}`, "unknown field"},
		{"missing version", `{"mode":"sweep"}`, "format_version 0 is not supported"},
		{"future version", `{"format_version":99,"mode":"sweep"}`, "format_version 99 is not supported"},
		{"trailing data", `{"format_version":1,"mode":"sweep"} {"x":1}`, "trailing data"},
		{"not json", `nope`, "invalid character"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.body))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Parse error = %v, want it to mention %q", err, tc.want)
			}
		})
	}
}

// compileErr compiles a document from JSON and returns the compile error.
func compileErr(t *testing.T, body string) error {
	t.Helper()
	doc, err := Parse([]byte(body))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	_, err = doc.Compile()
	return err
}

// TestCompileRejections checks that every invalid document dies at compile
// time with an error naming the problem — a queued scenario can only fail by
// simulating.
func TestCompileRejections(t *testing.T) {
	cases := []struct {
		name, body, want string
	}{
		{"missing mode", `{"format_version":1}`, "mode is required"},
		{"unknown mode", `{"format_version":1,"mode":"nope"}`, "unknown mode"},
		{"empty sweep grid", `{"format_version":1,"mode":"sweep"}`, "selects no designs (empty grid)"},
		{"no workloads", `{"format_version":1,"mode":"sweep","designs":["DHTM"]}`, "selects no workloads (empty grid)"},
		{"unknown design", `{"format_version":1,"mode":"sweep","designs":["NOPE"],"workloads":["hash"]}`, "unknown design"},
		{"unknown workload", `{"format_version":1,"mode":"sweep","designs":["DHTM"],"workloads":["nope"]}`, "unknown workload"},
		{"unknown design tag", `{"format_version":1,"mode":"sweep","design_tags":["nope"],"workloads":["hash"]}`, `design tag "nope" matches nothing`},
		{"unknown workload tag", `{"format_version":1,"mode":"sweep","designs":["DHTM"],"workload_tags":["nope"]}`, `workload tag "nope" matches nothing`},
		{"unknown experiment", `{"format_version":1,"mode":"experiment","experiments":["fig99"]}`, "unknown experiment"},
		{"typo beside all", `{"format_version":1,"mode":"experiment","experiments":["all","tabel4"]}`, "unknown experiment"},
		{"bad policy", `{"format_version":1,"mode":"sweep","designs":["DHTM"],"workloads":["hash"],"axes":{"conflict_policy":["chaos"]}}`, "unknown conflict policy"},
		{"zero cores", `{"format_version":1,"mode":"sweep","designs":["DHTM"],"workloads":["hash"],"axes":{"cores":[0]}}`, "must be positive"},
		{"zero seed", `{"format_version":1,"mode":"sweep","designs":["DHTM"],"workloads":["hash"],"axes":{"seed":[0]}}`, "reserved for derived seeding"},
		{"quick in sweep", `{"format_version":1,"mode":"sweep","quick":true,"designs":["DHTM"],"workloads":["hash"]}`, `"quick" is not valid in mode "sweep"`},
		{"designs in experiment", `{"format_version":1,"mode":"experiment","designs":["DHTM"]}`, `"designs" is not valid in mode "experiment"`},
		{"torn in experiment", `{"format_version":1,"mode":"experiment","torn":true}`, `"torn" is not valid`},
		{"cores sweep in experiment", `{"format_version":1,"mode":"experiment","axes":{"cores":[2,4]}}`, `axis "cores" cannot sweep in mode "experiment"`},
		{"logbuf axis in experiment", `{"format_version":1,"mode":"experiment","axes":{"log_buffer_entries":[16]}}`, `"axes.log_buffer_entries" is not valid`},
		{"unsupported crashtest design", `{"format_version":1,"mode":"crashtest","designs":["NP"],"workloads":["hash"]}`, "not supported by the crash-point explorer"},
		{"bad point selection", `{"format_version":1,"mode":"crashtest","designs":["DHTM"],"workloads":["hash"],"points":{"mode":"bogus"}}`, "unknown selection mode"},
		{"random without samples", `{"format_version":1,"mode":"crashtest","designs":["DHTM"],"workloads":["hash"],"points":{"mode":"random"}}`, "needs Samples"},
		{"negative cores in experiment", `{"format_version":1,"mode":"experiment","axes":{"cores":[-4]}}`, "must be positive"},
		{"logbuf axis in crashtest", `{"format_version":1,"mode":"crashtest","designs":["DHTM"],"workloads":["hash"],"axes":{"log_buffer_entries":[16]}}`, `"axes.log_buffer_entries" is not valid`},
		{"experiments in sweep", `{"format_version":1,"mode":"sweep","experiments":["table4"],"designs":["DHTM"],"workloads":["hash"]}`, `"experiments" is not valid in mode "sweep"`},
		{"reorder window in sweep", `{"format_version":1,"mode":"sweep","designs":["DHTM"],"workloads":["hash"],"axes":{"reorder_window":[2]}}`, `"axes.reorder_window" is not valid in mode "sweep"`},
		{"reorder window in experiment", `{"format_version":1,"mode":"experiment","axes":{"reorder_window":[2]}}`, `"axes.reorder_window" is not valid`},
		{"mask mode in sweep", `{"format_version":1,"mode":"sweep","designs":["DHTM"],"workloads":["hash"],"mask_mode":"sample"}`, `"mask_mode" is not valid in mode "sweep"`},
		{"mask samples in experiment", `{"format_version":1,"mode":"experiment","mask_samples":16}`, `"mask_mode" is not valid`},
		{"differential in sweep", `{"format_version":1,"mode":"sweep","designs":["DHTM"],"workloads":["hash"],"differential":true}`, `"differential" is not valid in mode "sweep"`},
		{"negative reorder window", `{"format_version":1,"mode":"crashtest","designs":["DHTM"],"workloads":["hash"],"axes":{"reorder_window":[-1]}}`, "reorder_window"},
		{"oversized reorder window", `{"format_version":1,"mode":"crashtest","designs":["DHTM"],"workloads":["hash"],"axes":{"reorder_window":[17]}}`, "reorder_window"},
		{"bad mask mode", `{"format_version":1,"mode":"crashtest","designs":["DHTM"],"workloads":["hash"],"mask_mode":"chaos"}`, "adversary mode"},
		{"exhaustive window too wide", `{"format_version":1,"mode":"crashtest","designs":["DHTM"],"workloads":["hash"],"mask_mode":"exhaustive","axes":{"reorder_window":[13]}}`, "exhaustive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := compileErr(t, tc.body)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Compile error = %v, want it to mention %q", err, tc.want)
			}
		})
	}
}

// TestCompileSweepExpansion checks grid expansion: cross-product size, the
// deterministic nesting order, self-describing cell IDs, and the mapping of
// axes onto cell fields and overrides.
func TestCompileSweepExpansion(t *testing.T) {
	doc, err := Parse([]byte(`{
		"format_version": 1,
		"name": "grid",
		"mode": "sweep",
		"designs": ["DHTM", "SO"],
		"workloads": ["hash"],
		"seed": 9,
		"axes": {
			"cores": [2, 4],
			"ops_per_tx": [3],
			"log_buffer_entries": [16],
			"conflict_policy": ["requester-wins"]
		}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	compiled, err := doc.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if compiled.Seed != 9 {
		t.Fatalf("base seed = %d, want 9", compiled.Seed)
	}
	plan := compiled.Plan
	if plan.Name != "grid" {
		t.Fatalf("plan name = %q", plan.Name)
	}
	// Designs resolve into registry (paper) order: SO before DHTM.
	wantIDs := []string{
		"SO/hash/cores=2/ops=3/logbuf=16/policy=requester-wins",
		"SO/hash/cores=4/ops=3/logbuf=16/policy=requester-wins",
		"DHTM/hash/cores=2/ops=3/logbuf=16/policy=requester-wins",
		"DHTM/hash/cores=4/ops=3/logbuf=16/policy=requester-wins",
	}
	if len(plan.Cells) != len(wantIDs) {
		t.Fatalf("grid has %d cells, want %d", len(plan.Cells), len(wantIDs))
	}
	for i, want := range wantIDs {
		c := plan.Cells[i]
		if c.ID != want {
			t.Errorf("cell %d ID = %q, want %q", i, c.ID, want)
		}
		if c.OpsPerTx != 3 || c.Overrides.LogBufferEntries != 16 {
			t.Errorf("cell %q did not inherit the axes: %+v", c.ID, c)
		}
		if !c.Overrides.SetConflictPolicy || c.Overrides.ConflictPolicy != config.RequesterWins {
			t.Errorf("cell %q did not inherit the conflict policy", c.ID)
		}
	}

	// An explicit seed axis pins Cell.Seed instead of leaving derivation to
	// the runner.
	seeded, err := Parse([]byte(`{"format_version":1,"mode":"sweep","designs":["DHTM"],"workloads":["hash"],"axes":{"seed":[7,8]}}`))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := seeded.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Plan.Cells) != 2 || sc.Plan.Cells[0].Seed != 7 || sc.Plan.Cells[1].Seed != 8 {
		t.Fatalf("seed axis not applied: %+v", sc.Plan.Cells)
	}

	// Compilation is deterministic: the same document expands identically.
	again, err := doc.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again.Plan, plan) {
		t.Fatal("recompiling the same document produced a different plan")
	}
}

// TestCompileExperiment checks experiment-mode resolution and option
// mapping.
func TestCompileExperiment(t *testing.T) {
	doc, err := Parse([]byte(`{
		"format_version": 1,
		"mode": "experiment",
		"experiments": ["table4", "fig5"],
		"quick": true,
		"seed": 5,
		"axes": {"cores": [2], "tx_per_core": [1]}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	compiled, err := doc.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if len(compiled.Experiments) != 2 || compiled.Experiments[0].ID != "table4" || compiled.Experiments[1].ID != "fig5" {
		t.Fatalf("experiments = %+v", compiled.Experiments)
	}
	o := compiled.Options
	if !o.Quick || o.Cores != 2 || o.TxPerCore != 1 || o.Seed != 5 {
		t.Fatalf("options = %+v", o)
	}

	all, err := Parse([]byte(`{"format_version":1,"mode":"experiment","experiments":["all"]}`))
	if err != nil {
		t.Fatal(err)
	}
	ca, err := all.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if len(ca.Experiments) != len(harness.Experiments()) {
		t.Fatalf("\"all\" selected %d experiments, want %d", len(ca.Experiments), len(harness.Experiments()))
	}
}

// TestCompileCrashtest checks crashtest-mode expansion and knob
// propagation.
func TestCompileCrashtest(t *testing.T) {
	doc, err := Parse([]byte(`{
		"format_version": 1,
		"mode": "crashtest",
		"designs": ["DHTM", "ATOM"],
		"workloads": ["hash"],
		"torn": true,
		"seed": 11,
		"axes": {"cores": [4], "tx_per_core": [2], "ops_per_tx": [8]},
		"points": {"mode": "stride", "samples": 64}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	compiled, err := doc.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if len(compiled.Crashtests) != 2 {
		t.Fatalf("crashtests = %d, want 2", len(compiled.Crashtests))
	}
	// Registry order puts ATOM before DHTM.
	if compiled.Crashtests[0].Design != "ATOM" || compiled.Crashtests[1].Design != "DHTM" {
		t.Fatalf("design order = %s, %s", compiled.Crashtests[0].Design, compiled.Crashtests[1].Design)
	}
	for _, cfg := range compiled.Crashtests {
		if cfg.Workload != "hash" || cfg.Cores != 4 || cfg.TxPerCore != 2 || cfg.OpsPerTx != 8 {
			t.Errorf("config did not inherit the axes: %+v", cfg)
		}
		if !cfg.Torn || cfg.Seed != 11 {
			t.Errorf("config did not inherit torn/seed: %+v", cfg)
		}
		if cfg.Points.Mode != "stride" || cfg.Points.Samples != 64 {
			t.Errorf("config did not inherit the point selection: %+v", cfg)
		}
		if cfg.Adversary.Window != 0 || cfg.Differential {
			t.Errorf("adversary knobs leaked into a plain document: %+v", cfg)
		}
	}

	// The reorder_window axis fans each grid point out per window value —
	// including the legal 0 baseline — and carries the adversary knobs and
	// the differential switch onto every config.
	adv, err := Parse([]byte(`{
		"format_version": 1,
		"mode": "crashtest",
		"designs": ["DHTM"],
		"workloads": ["hash"],
		"mask_mode": "sample",
		"mask_samples": 8,
		"differential": true,
		"axes": {"reorder_window": [0, 2, 4]}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	ca, err := adv.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if len(ca.Crashtests) != 3 {
		t.Fatalf("crashtests = %d, want 3 (one per window)", len(ca.Crashtests))
	}
	for i, want := range []int{0, 2, 4} {
		cfg := ca.Crashtests[i]
		if cfg.Adversary.Window != want || cfg.Adversary.Mode != "sample" || cfg.Adversary.Samples != 8 {
			t.Errorf("config %d adversary = %+v, want window %d mode sample samples 8", i, cfg.Adversary, want)
		}
		if !cfg.Differential {
			t.Errorf("config %d lost the differential switch", i)
		}
	}
}

// TestSniff checks the scenario-vs-jobspec discriminator the serve API
// uses.
func TestSniff(t *testing.T) {
	if !Sniff([]byte(`{"format_version":1,"mode":"sweep"}`)) {
		t.Fatal("scenario document not sniffed")
	}
	if Sniff([]byte(`{"kind":"experiment","experiments":["table4"]}`)) {
		t.Fatal("job spec sniffed as a scenario")
	}
	if Sniff([]byte(`garbage`)) {
		t.Fatal("garbage sniffed as a scenario")
	}
}

// TestExampleScenariosCompile keeps the shipped example files honest: every
// scenario under examples/scenarios must parse and compile against the
// current registry and experiment catalog.
func TestExampleScenariosCompile(t *testing.T) {
	dir := filepath.Join("..", "..", "examples", "scenarios")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading %s: %v", dir, err)
	}
	n := 0
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".json" {
			continue
		}
		n++
		t.Run(e.Name(), func(t *testing.T) {
			doc, err := Load(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := doc.Compile(); err != nil {
				t.Fatal(err)
			}
		})
	}
	if n == 0 {
		t.Fatal("no example scenarios found")
	}
}
