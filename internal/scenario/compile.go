package scenario

import (
	"fmt"
	"strings"

	"dhtm/internal/config"
	"dhtm/internal/crashtest"
	"dhtm/internal/harness"
	"dhtm/internal/registry"
	"dhtm/internal/runner"
)

// Compiled is the executable form of a document: exactly one of the three
// mode sections is populated. Compilation is pure and deterministic — the
// same document always expands to the same experiments, the same plan cells
// in the same order, or the same crashtest configurations — which is what
// makes a scenario file produce byte-identical tables on a CLI and on the
// campaign service.
type Compiled struct {
	// Doc is the source document.
	Doc *Document

	// Experiment mode: the selected experiments in paper order, plus the
	// harness options (Quick, Cores, TxPerCore, Seed) the document pins.
	// Execution knobs (Out, Parallel, Progress, Store) are the runner's
	// business and stay unset.
	Experiments []harness.Experiment
	Options     harness.Options

	// Sweep mode: the expanded cell grid.
	Plan runner.Plan

	// Crashtest mode: one exploration per grid point.
	Crashtests []crashtest.Config

	// Seed is the document's base seed (0 = runner default).
	Seed int64
}

// Compile validates the document against the registry and the experiment
// catalog and expands it into executable work. Every error names the field
// at fault and, for unknown names, the valid values.
func (d *Document) Compile() (*Compiled, error) {
	c := &Compiled{Doc: d, Seed: d.Seed}
	switch d.Mode {
	case ModeExperiment:
		return c, d.compileExperiment(c)
	case ModeSweep:
		return c, d.compileSweep(c)
	case ModeCrashtest:
		return c, d.compileCrashtest(c)
	case "":
		return nil, fmt.Errorf("scenario: mode is required (valid: %s, %s, %s)", ModeExperiment, ModeSweep, ModeCrashtest)
	default:
		return nil, fmt.Errorf("scenario: unknown mode %q (valid: %s, %s, %s)", d.Mode, ModeExperiment, ModeSweep, ModeCrashtest)
	}
}

// reject returns an error naming a field that is meaningless in the
// document's mode — silently ignoring it would run a different campaign
// than the author wrote.
func (d *Document) reject(field string) error {
	return fmt.Errorf("scenario: %q is not valid in mode %q", field, d.Mode)
}

// single enforces that an axis carries at most one value in modes that
// cannot sweep it, returning the value or the axis' zero default.
func single[T any](d *Document, field string, vals []T) (T, error) {
	var zero T
	switch len(vals) {
	case 0:
		return zero, nil
	case 1:
		return vals[0], nil
	default:
		return zero, fmt.Errorf("scenario: axis %q cannot sweep in mode %q (got %d values)", field, d.Mode, len(vals))
	}
}

// compileExperiment resolves the experiment selection.
func (d *Document) compileExperiment(c *Compiled) error {
	switch {
	case len(d.Designs) > 0 || len(d.DesignTags) > 0:
		return d.reject("designs")
	case len(d.Workloads) > 0 || len(d.WorkloadTags) > 0:
		return d.reject("workloads")
	case d.Torn:
		return d.reject("torn")
	case d.Points != nil:
		return d.reject("points")
	case len(d.Axes.OpsPerTx) > 0:
		return d.reject("axes.ops_per_tx")
	case len(d.Axes.Seed) > 0:
		return d.reject("axes.seed")
	case len(d.Axes.LogBufferEntries) > 0:
		return d.reject("axes.log_buffer_entries")
	case len(d.Axes.BandwidthScale) > 0:
		return d.reject("axes.bandwidth_scale")
	case len(d.Axes.ConflictPolicy) > 0:
		return d.reject("axes.conflict_policy")
	case len(d.Axes.ReorderWindow) > 0:
		return d.reject("axes.reorder_window")
	case d.MaskMode != "" || d.MaskSamples != 0:
		return d.reject("mask_mode")
	case d.Differential:
		return d.reject("differential")
	}
	if err := d.Axes.validatePositive(); err != nil {
		return err
	}
	cores, err := single(d, "cores", d.Axes.Cores)
	if err != nil {
		return err
	}
	tx, err := single(d, "tx_per_core", d.Axes.TxPerCore)
	if err != nil {
		return err
	}
	// Every listed name is validated even when "all" also appears, so a
	// typo can never hide behind a broader selection.
	all := len(d.Experiments) == 0
	var selected []harness.Experiment
	for _, id := range d.Experiments {
		if id == "all" {
			all = true
			continue
		}
		e, ok := harness.Find(id)
		if !ok {
			return fmt.Errorf("scenario: unknown experiment %q (valid: all, %s)", id, strings.Join(harness.ExperimentIDs(), ", "))
		}
		selected = append(selected, e)
	}
	if all {
		selected = harness.Experiments()
	}
	c.Experiments = selected
	c.Options = harness.Options{Quick: d.Quick, Cores: cores, TxPerCore: tx, Seed: d.Seed}
	return nil
}

// compileSweep expands the design × workload × axes cross product into a
// plan. Axis loops nest in a fixed order (design, workload, cores, tx, ops,
// seed, logbuf, bandwidth, policy), so cell order — and therefore result
// order — is a pure function of the document.
func (d *Document) compileSweep(c *Compiled) error {
	switch {
	case len(d.Experiments) > 0:
		return d.reject("experiments")
	case d.Quick:
		return d.reject("quick")
	case d.Torn:
		return d.reject("torn")
	case d.Points != nil:
		return d.reject("points")
	case len(d.Axes.ReorderWindow) > 0:
		return d.reject("axes.reorder_window")
	case d.MaskMode != "" || d.MaskSamples != 0:
		return d.reject("mask_mode")
	case d.Differential:
		return d.reject("differential")
	}
	designs, err := d.designSet()
	if err != nil {
		return err
	}
	wls, err := d.workloadSet()
	if err != nil {
		return err
	}
	policies, err := parsePolicies(d.Axes.ConflictPolicy)
	if err != nil {
		return err
	}
	if err := d.Axes.validatePositive(); err != nil {
		return err
	}

	plan := runner.Plan{Name: d.planName()}
	for _, design := range designs {
		for _, wl := range wls {
			for _, cores := range orDefault(d.Axes.Cores) {
				for _, tx := range orDefault(d.Axes.TxPerCore) {
					for _, ops := range orDefault(d.Axes.OpsPerTx) {
						for _, seed := range orDefault(d.Axes.Seed) {
							for _, logbuf := range orDefault(d.Axes.LogBufferEntries) {
								for _, bw := range orDefault(d.Axes.BandwidthScale) {
									for _, policy := range orDefaultPolicy(policies) {
										cell := runner.Cell{
											Design: design, Workload: wl,
											Cores: cores, TxPerCore: tx, OpsPerTx: ops, Seed: seed,
											Overrides: runner.Overrides{
												LogBufferEntries: logbuf,
												BandwidthScale:   bw,
											},
										}
										var parts []string
										addPart := func(set bool, format string, v any) {
											if set {
												parts = append(parts, fmt.Sprintf(format, v))
											}
										}
										addPart(len(d.Axes.Cores) > 0, "cores=%d", cores)
										addPart(len(d.Axes.TxPerCore) > 0, "tx=%d", tx)
										addPart(len(d.Axes.OpsPerTx) > 0, "ops=%d", ops)
										addPart(len(d.Axes.Seed) > 0, "seed=%d", seed)
										addPart(len(d.Axes.LogBufferEntries) > 0, "logbuf=%d", logbuf)
										addPart(len(d.Axes.BandwidthScale) > 0, "bw=%g", bw)
										if policy.set {
											cell.Overrides.ConflictPolicy = policy.value
											cell.Overrides.SetConflictPolicy = true
											parts = append(parts, "policy="+policy.value.String())
										}
										cell.ID = design + "/" + wl
										if len(parts) > 0 {
											cell.ID += "/" + strings.Join(parts, "/")
										}
										plan.Add(cell)
									}
								}
							}
						}
					}
				}
			}
		}
	}
	if err := plan.Validate(); err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	c.Plan = plan
	return nil
}

// compileCrashtest expands one exploration per (design, workload, cores,
// tx, ops, seed, reorder_window) grid point.
func (d *Document) compileCrashtest(c *Compiled) error {
	switch {
	case len(d.Experiments) > 0:
		return d.reject("experiments")
	case d.Quick:
		return d.reject("quick")
	case len(d.Axes.LogBufferEntries) > 0:
		return d.reject("axes.log_buffer_entries")
	case len(d.Axes.BandwidthScale) > 0:
		return d.reject("axes.bandwidth_scale")
	case len(d.Axes.ConflictPolicy) > 0:
		return d.reject("axes.conflict_policy")
	}
	designs, err := d.designSet()
	if err != nil {
		return err
	}
	for _, design := range designs {
		if !crashSafe(design) {
			return fmt.Errorf("scenario: design %q is not supported by the crash-point explorer (supported: %s)",
				design, strings.Join(crashtest.Supported(), ", "))
		}
	}
	wls, err := d.workloadSet()
	if err != nil {
		return err
	}
	if err := d.Axes.validatePositive(); err != nil {
		return err
	}
	points := crashtest.Selection{}
	if d.Points != nil {
		points = *d.Points
	}
	if err := points.Validate(); err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	// The reorder_window axis is the one axis where 0 is meaningful (the
	// strictly-ordered baseline), so it validates here instead of through
	// validatePositive. Mode and budget apply to every window point alike.
	for _, w := range d.Axes.ReorderWindow {
		if err := (crashtest.AdversaryConfig{Window: w, Mode: d.MaskMode, Samples: d.MaskSamples}).Validate(); err != nil {
			return fmt.Errorf("scenario: axis \"reorder_window\": %w", err)
		}
	}
	if len(d.Axes.ReorderWindow) == 0 {
		if err := (crashtest.AdversaryConfig{Mode: d.MaskMode, Samples: d.MaskSamples}).Validate(); err != nil {
			return fmt.Errorf("scenario: %w", err)
		}
	}
	for _, design := range designs {
		for _, wl := range wls {
			for _, cores := range orDefault(d.Axes.Cores) {
				for _, tx := range orDefault(d.Axes.TxPerCore) {
					for _, ops := range orDefault(d.Axes.OpsPerTx) {
						for _, seed := range orDefault(d.Axes.Seed) {
							for _, window := range orDefault(d.Axes.ReorderWindow) {
								base := seed
								if base == 0 {
									base = d.Seed
								}
								c.Crashtests = append(c.Crashtests, crashtest.Config{
									Design: design, Workload: wl,
									Cores: cores, TxPerCore: tx, OpsPerTx: ops,
									Seed: base, Torn: d.Torn, Points: points,
									Adversary: crashtest.AdversaryConfig{
										Window: window, Mode: d.MaskMode, Samples: d.MaskSamples,
									},
									Differential: d.Differential,
								})
							}
						}
					}
				}
			}
		}
	}
	return nil
}

// planName labels the compiled plan.
func (d *Document) planName() string {
	if d.Name != "" {
		return d.Name
	}
	return "scenario"
}

// designSet resolves explicit names plus tag selections into a
// deduplicated design list in registry (paper) order. An empty resolution
// is an error: a scenario that selects nothing is a typo, not a no-op.
func (d *Document) designSet() ([]string, error) {
	return resolveSet("design", d.Designs, d.DesignTags,
		registry.CheckDesign, registry.DesignNamesByTag, registry.DesignNames())
}

// workloadSet resolves the workload selection the same way.
func (d *Document) workloadSet() ([]string, error) {
	return resolveSet("workload", d.Workloads, d.WorkloadTags,
		registry.CheckWorkload, registry.WorkloadNamesByTag, registry.WorkloadNames())
}

// resolveSet validates names, expands tags, and returns the union ordered
// by the registry's canonical order.
func resolveSet(kind string, names, tags []string, check func(string) error,
	byTag func(string) []string, ordered []string) ([]string, error) {
	selected := make(map[string]bool)
	for _, n := range names {
		if err := check(n); err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		selected[n] = true
	}
	for _, tag := range tags {
		matches := byTag(tag)
		if len(matches) == 0 {
			return nil, fmt.Errorf("scenario: %s tag %q matches nothing", kind, tag)
		}
		for _, n := range matches {
			selected[n] = true
		}
	}
	if len(selected) == 0 {
		return nil, fmt.Errorf("scenario: the document selects no %ss (empty grid)", kind)
	}
	var out []string
	for _, n := range ordered {
		if selected[n] {
			out = append(out, n)
		}
	}
	return out, nil
}

// orDefault returns the axis values, or a single zero value when the axis
// is absent (zero means "use the configured default" everywhere a cell or
// crashtest config is consumed).
func orDefault[T any](vals []T) []T {
	if len(vals) == 0 {
		return make([]T, 1)
	}
	return vals
}

// validatePositive rejects axis values that cannot mean anything: zero or
// negative counts, non-positive bandwidth, and a zero explicit seed (which
// would silently fall back to derivation).
func (a Axes) validatePositive() error {
	checkInts := func(field string, vals []int) error {
		for _, v := range vals {
			if v <= 0 {
				return fmt.Errorf("scenario: axis %q value %d must be positive", field, v)
			}
		}
		return nil
	}
	if err := checkInts("cores", a.Cores); err != nil {
		return err
	}
	if err := checkInts("tx_per_core", a.TxPerCore); err != nil {
		return err
	}
	if err := checkInts("ops_per_tx", a.OpsPerTx); err != nil {
		return err
	}
	if err := checkInts("log_buffer_entries", a.LogBufferEntries); err != nil {
		return err
	}
	for _, v := range a.BandwidthScale {
		if v <= 0 {
			return fmt.Errorf("scenario: axis \"bandwidth_scale\" value %g must be positive", v)
		}
	}
	for _, v := range a.Seed {
		if v == 0 {
			return fmt.Errorf("scenario: axis \"seed\" value 0 is reserved for derived seeding; omit the axis instead")
		}
	}
	return nil
}

// policyChoice is one conflict-policy grid point; unset means "keep the
// machine default and contribute nothing to the cell identity".
type policyChoice struct {
	set   bool
	value config.ConflictPolicy
}

// parsePolicies maps the document's policy names onto config values.
func parsePolicies(names []string) ([]policyChoice, error) {
	var out []policyChoice
	for _, n := range names {
		switch n {
		case config.FirstWriterWins.String():
			out = append(out, policyChoice{set: true, value: config.FirstWriterWins})
		case config.RequesterWins.String():
			out = append(out, policyChoice{set: true, value: config.RequesterWins})
		default:
			return nil, fmt.Errorf("scenario: unknown conflict policy %q (valid: %s, %s)",
				n, config.FirstWriterWins, config.RequesterWins)
		}
	}
	return out, nil
}

// orDefaultPolicy mirrors orDefault for the policy axis.
func orDefaultPolicy(vals []policyChoice) []policyChoice {
	if len(vals) == 0 {
		return []policyChoice{{}}
	}
	return vals
}

// crashSafe reports whether the registry marks the design crash-safe.
func crashSafe(name string) bool {
	d, ok := registry.LookupDesign(name)
	return ok && d.CrashSafe
}
