// Package workloads implements the benchmarks of the paper's evaluation
// (Table IV): the TATP and TPC-C online-transaction-processing workloads and
// six micro-benchmarks (queue, hash, sdg, sps, btree, rbtree) that perform
// atomic operations on persistent data structures. Each workload lays its
// data out in the simulated persistent heap, generates transactions as
// closures over the txn.Tx interface, declares the lock sets that the
// lock-based designs acquire, and can verify its structural invariants
// directly against a persistent-memory image (used by the crash-recovery
// tests).
package workloads

import (
	"math/rand"

	"dhtm/internal/memdev"
	"dhtm/internal/palloc"
	"dhtm/internal/txn"
)

// Params configures a workload instance.
type Params struct {
	// Cores is the number of simulated cores issuing transactions.
	Cores int
	// OpsPerTx is the number of data-structure operations batched into one
	// ACID transaction; it is the knob that controls the write-set footprint
	// and defaults to a per-workload value chosen to land in the same regime
	// as Table IV.
	OpsPerTx int
	// Partitions is the number of coarse-grained lock partitions used by the
	// lock-based designs on the micro-benchmarks (§V).
	Partitions int
	// Scale sizes the OLTP data sets (subscribers for TATP, rows per district
	// for TPC-C); the micro-benchmark structures are sized so that one
	// transaction operates on ~3 KB of data, as in the paper.
	Scale int
	// ThinkCycles is the non-transactional work (operand generation, request
	// parsing) each core performs between transactions. DHTM's completion
	// phase overlaps with it; designs that persist data inside the commit
	// critical path cannot hide their write-backs behind it.
	ThinkCycles uint64
	// Seed makes transaction generation deterministic.
	Seed int64
}

// Defaults fills unset fields with the workload-independent defaults.
func (p Params) Defaults() Params {
	if p.Cores <= 0 {
		p.Cores = 8
	}
	if p.Partitions <= 0 {
		p.Partitions = 16
	}
	if p.Scale <= 0 {
		p.Scale = 1
	}
	if p.ThinkCycles == 0 {
		p.ThinkCycles = 10000
	}
	if p.Seed == 0 {
		p.Seed = 42
	}
	return p
}

// Workload is one benchmark.
type Workload interface {
	// Name is the identifier used in reports ("queue", "tpcc", ...).
	Name() string
	// Setup allocates and initialises the workload's data structures in the
	// persistent heap (untimed, before the measured window).
	Setup(heap *palloc.Heap, p Params) error
	// Next generates the next transaction for the given core using the
	// supplied per-core random stream.
	Next(core int, rng *rand.Rand) *txn.Transaction
	// Verify checks the workload's structural invariants against a durable
	// memory image (after DrainClean or crash recovery).
	Verify(store *memdev.Store) error
}

// The exported constructors below are the only way to build a workload.
// Name-based lookup deliberately lives elsewhere: internal/registry is the
// single catalog mapping names (and descriptions and tags) to these
// constructors, so this package cannot drift from the listings the CLIs and
// the serve API print.

// NewQueue builds the concurrent persistent queue micro-benchmark.
func NewQueue() Workload { return newQueue() }

// NewHash builds the persistent hash-table micro-benchmark.
func NewHash() Workload { return newHash() }

// NewSDG builds the graph-update micro-benchmark.
func NewSDG() Workload { return newSDG() }

// NewSPS builds the random-swaps micro-benchmark.
func NewSPS() Workload { return newSPS() }

// NewBTree builds the B-tree micro-benchmark.
func NewBTree() Workload { return newBTree() }

// NewRBTree builds the red-black-tree micro-benchmark.
func NewRBTree() Workload { return newRBTree() }

// NewTATP builds the TATP OLTP workload.
func NewTATP() Workload { return newTATP() }

// NewTPCC builds the TPC-C OLTP workload.
func NewTPCC() Workload { return newTPCC() }

// word returns the address of the i-th 8-byte word after base.
func word(base uint64, i int) uint64 { return base + uint64(i)*8 }

// line returns the address of the i-th cache line after base.
func line(base uint64, i int) uint64 { return base + uint64(i)*uint64(memdev.LineBytes) }
