package workloads

import "testing"

// TestKeyInWindowFastPathMatchesPredicate proves the contiguous-range accept
// test used by keyInWindow's fast path is equivalent to the general
// partition+window predicate for every key in the key space, across aligned
// geometries. Equivalence of the per-draw accept decision is what guarantees
// the rng draw sequence — and therefore every golden table — is unchanged.
func TestKeyInWindowFastPathMatchesPredicate(t *testing.T) {
	for _, partitions := range []int{1, 2, 4, 8, 16, 32} {
		h := &hashWL{
			numBuckets: 16384,
			bucketMask: 16383,
			partitions: partitions,
			keySpace:   uint64(16384 * hashSlotsPerBucket * 2),
		}
		bucketsPerPart := uint64(h.numBuckets / h.partitions)
		if uint64(h.numBuckets) != bucketsPerPart*uint64(h.partitions) || bucketsPerPart%hashWindowsPerPartition != 0 {
			t.Fatalf("partitions=%d: geometry unexpectedly unaligned", partitions)
		}
		span := bucketsPerPart / hashWindowsPerPartition
		for key := uint64(1); key <= h.keySpace; key++ {
			idx := (key * 0x9e3779b97f4a7c15) & h.bucketMask
			part := h.partitionOf(key)
			window := h.windowOf(key)
			lo := part*bucketsPerPart + window*span
			// The fast path accepts key for (part, window) iff idx-lo < span;
			// the general predicate accepts iff partitionOf/windowOf match.
			// Check both directions: the key is accepted for its own
			// (part, window) and for no adjacent window.
			if idx-lo >= span {
				t.Fatalf("partitions=%d key=%d: fast path rejects its own window (idx=%d lo=%d span=%d)",
					partitions, key, idx, lo, span)
			}
			otherW := (window + 1) % hashWindowsPerPartition
			otherLo := part*bucketsPerPart + otherW*span
			if otherW != window && idx-otherLo < span {
				t.Fatalf("partitions=%d key=%d: fast path accepts window %d, belongs to %d",
					partitions, key, otherW, window)
			}
		}
	}
}
