package workloads

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"dhtm/internal/stats"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenResult builds a fully populated RunResult: every field of the
// on-disk record format carries a distinct non-zero value, so a silent
// rename or drop of any field changes the golden bytes.
func goldenResult() RunResult {
	st := stats.New(2)
	for i := range st.Cores {
		c := st.Core(i)
		base := uint64(i + 1)
		c.Commits = 100 * base
		c.Aborts = 7 * base
		c.AbortsByReason[stats.AbortConflict] = 3 * base
		c.AbortsByReason[stats.AbortLogOverflow] = base
		c.Fallbacks = 2 * base
		c.TxCycles = 5000 * base
		c.StallCycles = 400 * base
		c.FinalCycle = 90000 * base
		c.WriteSetLines = 640 * base
		c.ReadSetLines = 900 * base
		c.L1Hits = 8000 * base
		c.L1Misses = 200 * base
		c.LLCHits = 150 * base
		c.LLCMisses = 50 * base
	}
	st.LogBytes = 64128
	st.DataWriteBytes = 128256
	st.DataReadBytes = 256512
	st.LogRecords = 1002
	st.SentinelRecords = 33
	st.OverflowedLines = 17
	return RunResult{
		Design:    "DHTM",
		Workload:  "hash",
		Stats:     st,
		Committed: 300,
		Cycles:    180000,
	}
}

// TestRunResultGoldenJSON pins the JSON encoding of RunResult (including the
// embedded stats.Stats snapshot) — the record format the result store
// persists. If this test fails because the format intentionally changed,
// bump resultstore.FormatVersion and regenerate with `go test -run Golden
// -update ./internal/workloads`.
func TestRunResultGoldenJSON(t *testing.T) {
	path := filepath.Join("testdata", "runresult.golden.json")
	got, err := json.MarshalIndent(goldenResult(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("RunResult JSON drifted from the golden on-disk format.\nIf intentional, bump resultstore.FormatVersion and rerun with -update.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestRunResultJSONRoundTrip proves decode(encode(r)) is the identity for a
// fully populated result — uint64 counters survive exactly (encoding/json
// parses integer literals, it does not round through float64) — and that the
// golden file itself decodes back to the original value.
func TestRunResultJSONRoundTrip(t *testing.T) {
	orig := goldenResult()
	// A counter above 2^53 would corrupt if the decoder went through float64.
	orig.Stats.Core(0).FinalCycle = 1<<63 + 12345
	orig.Cycles = 1<<63 + 12345

	enc, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back RunResult
	if err := json.Unmarshal(enc, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, back) {
		t.Fatalf("round trip not identity:\n%+v\nvs\n%+v", orig, back)
	}

	golden, err := os.ReadFile(filepath.Join("testdata", "runresult.golden.json"))
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	var fromDisk RunResult
	if err := json.Unmarshal(golden, &fromDisk); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(goldenResult(), fromDisk) {
		t.Fatalf("golden file decodes to a different value:\n%+v", fromDisk)
	}
}
