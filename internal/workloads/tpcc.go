package workloads

import (
	"fmt"
	"math/rand"

	"dhtm/internal/memdev"
	"dhtm/internal/palloc"
	"dhtm/internal/txn"
)

// tpccWL is the TPC-C online-transaction-processing workload, scaled to one
// warehouse with ten districts and implemented directly over the persistent
// heap (REWIND-style in-memory tables). Each ACID transaction batches a
// standard TPC-C mix (New-Order 45%, Payment 43%, Delivery 4%, Order-Status
// 4%, Stock-Level 4%) so the write-set footprint lands in the same regime as
// Table IV (~590 cache lines, ~37 KB > L1).
//
// Layout (rows padded to whole cache lines):
//
//	warehouse:  2 lines  [ytd, tax, ...]
//	district d: 2 lines  [next_o_id, ytd, tax, delivered_o_id, ...]
//	customer:   2 lines  [balance, ytd_payment, payment_cnt, delivery_cnt, ...]
//	item:       1 line   [price, ...]
//	stock:      2 lines  [quantity, ytd, order_cnt, remote_cnt, ...]
//	order slot: 1 line   [o_id, c_id, ol_cnt, carrier_id, total, valid]
//	order line: 1 line   [item, qty, amount, delivered]
type tpccWL struct {
	meta      uint64
	warehouse uint64
	districts uint64
	customers uint64
	items     uint64
	stocks    uint64
	orders    uint64
	olines    uint64

	numDistricts int
	custPerDist  int
	numItems     int
	orderSlots   int // ring-buffer capacity per district
	maxOLPerOrd  int
	opsPerTx     int
}

func newTPCC() *tpccWL { return &tpccWL{} }

// Name implements Workload.
func (w *tpccWL) Name() string { return "tpcc" }

// Lock-ID name spaces.
const (
	tpccLockWarehouse = uint64(10_000_000)
	tpccLockDistrict  = uint64(11_000_000)
	tpccLockCustomer  = uint64(12_000_000)
	tpccLockStock     = uint64(13_000_000)
)

// Setup implements Workload.
func (w *tpccWL) Setup(heap *palloc.Heap, p Params) error {
	p = p.Defaults()
	w.numDistricts = 10
	w.custPerDist = 96 * p.Scale
	w.numItems = 256 * p.Scale
	w.orderSlots = 512
	w.maxOLPerOrd = 15
	w.opsPerTx = p.OpsPerTx
	if w.opsPerTx <= 0 {
		w.opsPerTx = 40
	}

	w.meta = heap.AllocLines(1)
	w.warehouse = heap.AllocLines(2)
	w.districts = heap.AllocLines(w.numDistricts * 2)
	w.customers = heap.AllocLines(w.numDistricts * w.custPerDist * 2)
	w.items = heap.AllocLines(w.numItems)
	w.stocks = heap.AllocLines(w.numItems * 2)
	w.orders = heap.AllocLines(w.numDistricts * w.orderSlots)
	w.olines = heap.AllocLines(w.numDistricts * w.orderSlots * w.maxOLPerOrd)

	rng := rand.New(rand.NewSource(p.Seed + 6))
	heap.WriteWord(word(w.warehouse, 0), 0)                    // ytd
	heap.WriteWord(word(w.warehouse, 1), uint64(rng.Intn(20))) // tax
	for d := 0; d < w.numDistricts; d++ {
		dd := w.districtAddr(d)
		heap.WriteWord(word(dd, 0), 1)                    // next_o_id
		heap.WriteWord(word(dd, 1), 0)                    // ytd
		heap.WriteWord(word(dd, 2), uint64(rng.Intn(20))) // tax
		heap.WriteWord(word(dd, 3), 1)                    // delivered_o_id (next to deliver)
		for c := 0; c < w.custPerDist; c++ {
			cc := w.customerAddr(d, c)
			heap.WriteWord(word(cc, 0), 1000) // balance
			heap.WriteWord(word(cc, 1), 0)    // ytd_payment
			heap.WriteWord(word(cc, 2), 0)    // payment_cnt
			heap.WriteWord(word(cc, 3), 0)    // delivery_cnt
		}
	}
	for i := 0; i < w.numItems; i++ {
		heap.WriteWord(word(w.itemAddr(i), 0), uint64(rng.Intn(9900)+100)) // price
		ss := w.stockAddr(i)
		heap.WriteWord(word(ss, 0), uint64(rng.Intn(90)+10)) // quantity
		heap.WriteWord(word(ss, 1), 0)                       // ytd
		heap.WriteWord(word(ss, 2), 0)                       // order_cnt
	}
	heap.WriteWord(word(w.meta, 0), uint64(w.numDistricts))
	heap.WriteWord(word(w.meta, 1), uint64(w.orderSlots))
	return nil
}

func (w *tpccWL) districtAddr(d int) uint64 {
	return w.districts + uint64(d)*2*uint64(memdev.LineBytes)
}

func (w *tpccWL) customerAddr(d, c int) uint64 {
	return w.customers + uint64(d*w.custPerDist+c)*2*uint64(memdev.LineBytes)
}

func (w *tpccWL) itemAddr(i int) uint64 { return line(w.items, i) }

func (w *tpccWL) stockAddr(i int) uint64 { return w.stocks + uint64(i)*2*uint64(memdev.LineBytes) }

func (w *tpccWL) orderAddr(d int, slot int) uint64 {
	return line(w.orders, d*w.orderSlots+slot)
}

func (w *tpccWL) olineAddr(d int, slot int, ol int) uint64 {
	return line(w.olines, (d*w.orderSlots+slot)*w.maxOLPerOrd+ol)
}

// tpccOp is one TPC-C operation within a batch.
type tpccOp struct {
	kind     int // 0 new-order, 1 payment, 2 delivery, 3 order-status, 4 stock-level
	district int
	customer int
	amount   uint64
	items    []int
	qtys     []uint64
}

// Next implements Workload.
func (w *tpccWL) Next(core int, rng *rand.Rand) *txn.Transaction {
	ops := make([]tpccOp, w.opsPerTx)
	lockSet := make(map[uint64]struct{})
	for i := range ops {
		r := rng.Intn(100)
		op := tpccOp{
			district: rng.Intn(w.numDistricts),
			customer: rng.Intn(w.custPerDist),
			amount:   uint64(rng.Intn(5000) + 1),
		}
		switch {
		case r < 45:
			op.kind = 0
			n := rng.Intn(11) + 5
			op.items = make([]int, n)
			op.qtys = make([]uint64, n)
			for j := range op.items {
				op.items[j] = rng.Intn(w.numItems)
				op.qtys[j] = uint64(rng.Intn(10) + 1)
				lockSet[tpccLockStock+uint64(op.items[j])] = struct{}{}
			}
			lockSet[tpccLockDistrict+uint64(op.district)] = struct{}{}
			lockSet[tpccLockCustomer+uint64(op.district*w.custPerDist+op.customer)] = struct{}{}
		case r < 88:
			op.kind = 1
			lockSet[tpccLockWarehouse] = struct{}{}
			lockSet[tpccLockDistrict+uint64(op.district)] = struct{}{}
			lockSet[tpccLockCustomer+uint64(op.district*w.custPerDist+op.customer)] = struct{}{}
		case r < 92:
			op.kind = 2
			lockSet[tpccLockDistrict+uint64(op.district)] = struct{}{}
			// Delivery credits the customer of the delivered order, which is
			// only known at execution time; the coarse district lock covers it
			// for the lock-based designs by also locking the district's
			// customers partition.
			lockSet[tpccLockCustomer+uint64(op.district*w.custPerDist)] = struct{}{}
		case r < 96:
			op.kind = 3
			lockSet[tpccLockCustomer+uint64(op.district*w.custPerDist+op.customer)] = struct{}{}
		default:
			op.kind = 4
			lockSet[tpccLockDistrict+uint64(op.district)] = struct{}{}
		}
		ops[i] = op
	}
	lockIDs := make([]uint64, 0, len(lockSet))
	for id := range lockSet {
		lockIDs = append(lockIDs, id)
	}
	return &txn.Transaction{
		Label:   "tpcc-batch",
		LockIDs: lockIDs,
		Body: func(tx txn.Tx) error {
			for _, op := range ops {
				switch op.kind {
				case 0:
					if err := w.newOrder(tx, op); err != nil {
						return err
					}
				case 1:
					w.payment(tx, op)
				case 2:
					w.delivery(tx, op)
				case 3:
					w.orderStatus(tx, op)
				case 4:
					w.stockLevel(tx, op)
				}
			}
			return nil
		},
	}
}

// newOrder implements the New-Order transaction for one (district, customer).
func (w *tpccWL) newOrder(tx txn.Tx, op tpccOp) error {
	dd := w.districtAddr(op.district)
	oID := tx.Read(word(dd, 0))
	tx.Write(word(dd, 0), oID+1)
	_ = tx.Read(word(w.warehouse, 1)) // warehouse tax
	_ = tx.Read(word(dd, 2))          // district tax
	cc := w.customerAddr(op.district, op.customer)
	_ = tx.Read(word(cc, 0)) // customer balance/discount

	slot := int(oID % uint64(w.orderSlots))
	var total uint64
	for j, it := range op.items {
		price := tx.Read(word(w.itemAddr(it), 0))
		ss := w.stockAddr(it)
		qty := tx.Read(word(ss, 0))
		if qty >= op.qtys[j]+10 {
			qty -= op.qtys[j]
		} else {
			qty = qty + 91 - op.qtys[j]
		}
		tx.Write(word(ss, 0), qty)
		tx.Write(word(ss, 1), tx.Read(word(ss, 1))+op.qtys[j])
		tx.Write(word(ss, 2), tx.Read(word(ss, 2))+1)
		// The stock row's second line carries the per-district information
		// string TPC-C rewrites alongside the counters.
		tx.Write(word(ss, 8), tx.Read(word(ss, 8))+1)
		amount := price * op.qtys[j]
		ol := w.olineAddr(op.district, slot, j)
		tx.Write(word(ol, 0), uint64(it)+1)
		tx.Write(word(ol, 1), op.qtys[j])
		tx.Write(word(ol, 2), amount)
		tx.Write(word(ol, 3), 0)
		total += amount
	}
	oo := w.orderAddr(op.district, slot)
	tx.Write(word(oo, 0), oID)
	tx.Write(word(oo, 1), uint64(op.customer)+1)
	tx.Write(word(oo, 2), uint64(len(op.items)))
	tx.Write(word(oo, 3), 0) // carrier (undelivered)
	tx.Write(word(oo, 4), total)
	tx.Write(word(oo, 5), 1) // valid
	return nil
}

// payment implements the Payment transaction.
func (w *tpccWL) payment(tx txn.Tx, op tpccOp) {
	tx.Write(word(w.warehouse, 0), tx.Read(word(w.warehouse, 0))+op.amount)
	dd := w.districtAddr(op.district)
	tx.Write(word(dd, 1), tx.Read(word(dd, 1))+op.amount)
	cc := w.customerAddr(op.district, op.customer)
	tx.Write(word(cc, 0), tx.Read(word(cc, 0))-op.amount)
	tx.Write(word(cc, 1), tx.Read(word(cc, 1))+op.amount)
	tx.Write(word(cc, 2), tx.Read(word(cc, 2))+1)
}

// delivery implements (a single-district slice of) the Delivery transaction:
// the oldest undelivered order of the district is marked delivered and its
// total is credited to the ordering customer.
func (w *tpccWL) delivery(tx txn.Tx, op tpccOp) {
	dd := w.districtAddr(op.district)
	next := tx.Read(word(dd, 0))
	toDeliver := tx.Read(word(dd, 3))
	if toDeliver >= next {
		return // nothing undelivered
	}
	slot := int(toDeliver % uint64(w.orderSlots))
	oo := w.orderAddr(op.district, slot)
	if tx.Read(word(oo, 5)) != 1 || tx.Read(word(oo, 0)) != toDeliver {
		// The slot was recycled by a newer order; skip past it.
		tx.Write(word(dd, 3), toDeliver+1)
		return
	}
	tx.Write(word(oo, 3), 7) // carrier id
	olCnt := int(tx.Read(word(oo, 2)))
	var total uint64
	for j := 0; j < olCnt && j < w.maxOLPerOrd; j++ {
		ol := w.olineAddr(op.district, slot, j)
		tx.Write(word(ol, 3), 1)
		total += tx.Read(word(ol, 2))
	}
	cID := int(tx.Read(word(oo, 1))) - 1
	if cID >= 0 && cID < w.custPerDist {
		cc := w.customerAddr(op.district, cID)
		tx.Write(word(cc, 0), tx.Read(word(cc, 0))+total)
		tx.Write(word(cc, 3), tx.Read(word(cc, 3))+1)
	}
	tx.Write(word(dd, 3), toDeliver+1)
}

// orderStatus implements the read-only Order-Status transaction.
func (w *tpccWL) orderStatus(tx txn.Tx, op tpccOp) {
	cc := w.customerAddr(op.district, op.customer)
	_ = tx.Read(word(cc, 0))
	_ = tx.Read(word(cc, 2))
	dd := w.districtAddr(op.district)
	next := tx.Read(word(dd, 0))
	if next <= 1 {
		return
	}
	slot := int((next - 1) % uint64(w.orderSlots))
	oo := w.orderAddr(op.district, slot)
	_ = tx.Read(word(oo, 0))
	_ = tx.Read(word(oo, 4))
}

// stockLevel implements the read-only Stock-Level transaction: it scans the
// stock of the items referenced by the district's most recent orders.
func (w *tpccWL) stockLevel(tx txn.Tx, op tpccOp) {
	dd := w.districtAddr(op.district)
	next := tx.Read(word(dd, 0))
	for back := uint64(1); back <= 5 && back < next; back++ {
		slot := int((next - back) % uint64(w.orderSlots))
		oo := w.orderAddr(op.district, slot)
		if tx.Read(word(oo, 5)) != 1 {
			continue
		}
		olCnt := int(tx.Read(word(oo, 2)))
		for j := 0; j < olCnt && j < w.maxOLPerOrd; j++ {
			it := tx.Read(word(w.olineAddr(op.district, slot, j), 0))
			if it == 0 {
				continue
			}
			_ = tx.Read(word(w.stockAddr(int(it-1)), 0))
		}
	}
}

// Verify implements Workload: the warehouse year-to-date total must equal the
// sum of the district year-to-date totals (payments update both atomically),
// order slots must be internally consistent with their order lines, and
// district delivery cursors must not run ahead of order allocation.
func (w *tpccWL) Verify(store *memdev.Store) error {
	var districtYTD uint64
	for d := 0; d < w.numDistricts; d++ {
		dd := w.districtAddr(d)
		districtYTD += store.ReadWord(word(dd, 1))
		next := store.ReadWord(word(dd, 0))
		delivered := store.ReadWord(word(dd, 3))
		if next < 1 {
			return fmt.Errorf("tpcc: district %d next_o_id underflow", d)
		}
		if delivered > next {
			return fmt.Errorf("tpcc: district %d delivered %d beyond next order %d", d, delivered, next)
		}
		// Orders still resident in the ring must be fully formed.
		lo := uint64(1)
		if next > uint64(w.orderSlots) {
			lo = next - uint64(w.orderSlots)
		}
		for o := lo; o < next; o++ {
			slot := int(o % uint64(w.orderSlots))
			oo := w.orderAddr(d, slot)
			if store.ReadWord(word(oo, 5)) != 1 {
				return fmt.Errorf("tpcc: district %d order %d missing from its slot", d, o)
			}
			if store.ReadWord(word(oo, 0)) != o {
				return fmt.Errorf("tpcc: district %d slot %d holds order %d, want %d",
					d, slot, store.ReadWord(word(oo, 0)), o)
			}
			olCnt := store.ReadWord(word(oo, 2))
			if olCnt < 5 || olCnt > uint64(w.maxOLPerOrd) {
				return fmt.Errorf("tpcc: district %d order %d has invalid line count %d", d, o, olCnt)
			}
			var total uint64
			for j := 0; j < int(olCnt); j++ {
				ol := w.olineAddr(d, slot, j)
				if store.ReadWord(word(ol, 0)) == 0 {
					return fmt.Errorf("tpcc: district %d order %d line %d empty", d, o, j)
				}
				total += store.ReadWord(word(ol, 2))
			}
			if total != store.ReadWord(word(oo, 4)) {
				return fmt.Errorf("tpcc: district %d order %d total %d != sum of lines %d",
					d, o, store.ReadWord(word(oo, 4)), total)
			}
		}
	}
	if wytd := store.ReadWord(word(w.warehouse, 0)); wytd != districtYTD {
		return fmt.Errorf("tpcc: warehouse YTD %d != sum of district YTDs %d", wytd, districtYTD)
	}
	return nil
}
