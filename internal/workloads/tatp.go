package workloads

import (
	"fmt"
	"math/rand"

	"dhtm/internal/memdev"
	"dhtm/internal/palloc"
	"dhtm/internal/txn"
)

// tatpWL is the TATP (Telecom Application Transaction Processing) workload:
// an in-memory mobile-carrier database with Subscriber, SpecialFacility and
// CallForwarding tables. Each ACID transaction is a batch of TATP operations
// dominated by the write transaction types (UPDATE_LOCATION,
// UPDATE_SUBSCRIBER_DATA, INSERT/DELETE_CALL_FORWARDING), sized so the
// write-set footprint lands in the same regime as the paper's Table IV
// (~167 cache lines, ~10 KB).
//
// Layout:
//
//	meta line:        [subscribers, 0...]                       (static)
//	subscriber s:     two lines: [s_id, bit1, vlr_location, msc_location,
//	                  cfCount, ... | derived location fields in line 2]
//	specialfacility:  4 per subscriber, one line: [valid, is_active, data_a, data_b]
//	callforwarding:   3 per (subscriber, sf_type), one line: [valid, start, end, number]
//
// The call-forwarding row count is kept per subscriber (word 4 of the
// subscriber row) rather than globally, mirroring how the TATP schema scopes
// CALL_FORWARDING to its subscriber and avoiding a global hot line.
type tatpWL struct {
	meta        uint64
	subscribers uint64
	facilities  uint64
	forwards    uint64
	numSubs     int
	opsPerTx    int
}

func newTATP() *tatpWL { return &tatpWL{} }

// Name implements Workload.
func (t *tatpWL) Name() string { return "tatp" }

const (
	tatpSubLines = 2
	tatpSFPerSub = 4
	tatpCFPerSF  = 3
)

// Lock-ID name spaces so different tables never alias.
const (
	tatpLockSub = uint64(1_000_000)
	tatpLockSF  = uint64(2_000_000)
)

// Setup implements Workload.
func (t *tatpWL) Setup(heap *palloc.Heap, p Params) error {
	p = p.Defaults()
	t.numSubs = 1000 * p.Scale
	t.opsPerTx = p.OpsPerTx
	if t.opsPerTx <= 0 {
		t.opsPerTx = 110
	}
	t.meta = heap.AllocLines(1)
	t.subscribers = heap.AllocLines(t.numSubs * tatpSubLines)
	t.facilities = heap.AllocLines(t.numSubs * tatpSFPerSub)
	t.forwards = heap.AllocLines(t.numSubs * tatpSFPerSub * tatpCFPerSF)

	rng := rand.New(rand.NewSource(p.Seed + 5))
	for s := 0; s < t.numSubs; s++ {
		var cfCount uint64
		sub := t.subAddr(s)
		heap.WriteWord(word(sub, 0), uint64(s)+1)
		heap.WriteWord(word(sub, 1), uint64(rng.Intn(2)))
		heap.WriteWord(word(sub, 2), rng.Uint64()%1_000_000)
		heap.WriteWord(word(sub, 3), rng.Uint64()%1_000_000)
		for f := 0; f < tatpSFPerSub; f++ {
			sf := t.sfAddr(s, f)
			valid := uint64(0)
			if rng.Intn(100) < 75 {
				valid = 1
			}
			heap.WriteWord(word(sf, 0), valid)
			heap.WriteWord(word(sf, 1), uint64(rng.Intn(2)))
			heap.WriteWord(word(sf, 2), rng.Uint64()%256)
			heap.WriteWord(word(sf, 3), rng.Uint64()%256)
			if valid == 0 {
				continue
			}
			for c := 0; c < tatpCFPerSF; c++ {
				if rng.Intn(100) >= 25 {
					continue
				}
				cf := t.cfAddr(s, f, c)
				heap.WriteWord(word(cf, 0), 1)
				heap.WriteWord(word(cf, 1), uint64(c*8))
				heap.WriteWord(word(cf, 2), uint64(c*8+rng.Intn(8)+1))
				heap.WriteWord(word(cf, 3), rng.Uint64()%1_000_000)
				cfCount++
			}
		}
		heap.WriteWord(word(sub, 4), cfCount)
	}
	heap.WriteWord(word(t.meta, 0), uint64(t.numSubs))
	return nil
}

func (t *tatpWL) subAddr(s int) uint64 {
	return t.subscribers + uint64(s)*tatpSubLines*uint64(memdev.LineBytes)
}

func (t *tatpWL) sfAddr(s, f int) uint64 {
	return line(t.facilities, s*tatpSFPerSub+f)
}

func (t *tatpWL) cfAddr(s, f, c int) uint64 {
	return line(t.forwards, (s*tatpSFPerSub+f)*tatpCFPerSF+c)
}

// tatpOp is one TATP operation within a batch.
type tatpOp struct {
	kind int // 0 update_location, 1 update_subscriber, 2 insert_cf, 3 delete_cf, 4 get_subscriber
	sub  int
	sf   int
	slot int
	val  uint64
}

// Next implements Workload.
func (t *tatpWL) Next(core int, rng *rand.Rand) *txn.Transaction {
	ops := make([]tatpOp, t.opsPerTx)
	lockSet := make(map[uint64]struct{})
	for i := range ops {
		r := rng.Intn(100)
		kind := 0
		switch {
		case r < 70:
			kind = 0 // UPDATE_LOCATION
		case r < 80:
			kind = 1 // UPDATE_SUBSCRIBER_DATA
		case r < 87:
			kind = 2 // INSERT_CALL_FORWARDING
		case r < 94:
			kind = 3 // DELETE_CALL_FORWARDING
		default:
			kind = 4 // GET_SUBSCRIBER_DATA
		}
		op := tatpOp{
			kind: kind,
			sub:  rng.Intn(t.numSubs),
			sf:   rng.Intn(tatpSFPerSub),
			slot: rng.Intn(tatpCFPerSF),
			val:  rng.Uint64()%1_000_000 + 1,
		}
		ops[i] = op
		lockSet[tatpLockSub+uint64(op.sub)] = struct{}{}
		if kind == 1 || kind == 2 || kind == 3 {
			lockSet[tatpLockSF+uint64(op.sub*tatpSFPerSub+op.sf)] = struct{}{}
		}
	}
	lockIDs := make([]uint64, 0, len(lockSet))
	for id := range lockSet {
		lockIDs = append(lockIDs, id)
	}
	return &txn.Transaction{
		Label:   "tatp-batch",
		LockIDs: lockIDs,
		Body: func(tx txn.Tx) error {
			for _, op := range ops {
				sub := t.subAddr(op.sub)
				switch op.kind {
				case 0: // UPDATE_LOCATION: rewrite the subscriber's location fields.
					tx.Write(word(sub, 2), op.val)
					tx.Write(word(sub, 3), op.val/2)
					// The second line of the row carries derived fields kept
					// in sync with the location.
					tx.Write(word(sub, 8), op.val%4096)
					tx.Write(word(sub, 9), op.val%251)
				case 1: // UPDATE_SUBSCRIBER_DATA: flip the bit and SF data.
					tx.Write(word(sub, 1), op.val%2)
					sf := t.sfAddr(op.sub, op.sf)
					if tx.Read(word(sf, 0)) == 1 {
						tx.Write(word(sf, 2), op.val%256)
					}
				case 2: // INSERT_CALL_FORWARDING
					sf := t.sfAddr(op.sub, op.sf)
					if tx.Read(word(sf, 0)) != 1 {
						continue
					}
					cf := t.cfAddr(op.sub, op.sf, op.slot)
					if tx.Read(word(cf, 0)) == 1 {
						continue
					}
					tx.Write(word(cf, 0), 1)
					tx.Write(word(cf, 1), uint64(op.slot*8))
					tx.Write(word(cf, 2), uint64(op.slot*8)+op.val%8+1)
					tx.Write(word(cf, 3), op.val)
					tx.Write(word(sub, 4), tx.Read(word(sub, 4))+1)
				case 3: // DELETE_CALL_FORWARDING
					cf := t.cfAddr(op.sub, op.sf, op.slot)
					if tx.Read(word(cf, 0)) != 1 {
						continue
					}
					tx.Write(word(cf, 0), 0)
					tx.Write(word(sub, 4), tx.Read(word(sub, 4))-1)
				case 4: // GET_SUBSCRIBER_DATA (read only)
					_ = tx.Read(word(sub, 0))
					_ = tx.Read(word(sub, 1))
					_ = tx.Read(word(sub, 2))
					_ = tx.Read(word(sub, 8))
				}
			}
			return nil
		},
	}
}

// Verify implements Workload.
func (t *tatpWL) Verify(store *memdev.Store) error {
	if got := store.ReadWord(word(t.meta, 0)); got != uint64(t.numSubs) {
		return fmt.Errorf("tatp: subscriber count corrupted: %d != %d", got, t.numSubs)
	}
	for s := 0; s < t.numSubs; s++ {
		sub := t.subAddr(s)
		if store.ReadWord(word(sub, 0)) != uint64(s)+1 {
			return fmt.Errorf("tatp: subscriber %d id corrupted", s)
		}
		// Derived location fields must be consistent with the location value
		// written by the same UPDATE_LOCATION operation.
		loc := store.ReadWord(word(sub, 2))
		if loc != 0 && store.ReadWord(word(sub, 3)) != 0 {
			if store.ReadWord(word(sub, 8)) != 0 && store.ReadWord(word(sub, 8)) != loc%4096 {
				return fmt.Errorf("tatp: subscriber %d torn location update", s)
			}
		}
		var cf uint64
		for f := 0; f < tatpSFPerSub; f++ {
			sfValid := store.ReadWord(word(t.sfAddr(s, f), 0)) == 1
			for c := 0; c < tatpCFPerSF; c++ {
				cfAddr := t.cfAddr(s, f, c)
				if store.ReadWord(word(cfAddr, 0)) != 1 {
					continue
				}
				cf++
				if !sfValid {
					return fmt.Errorf("tatp: call forwarding row for invalid facility %d/%d", s, f)
				}
				if store.ReadWord(word(cfAddr, 2)) <= store.ReadWord(word(cfAddr, 1)) {
					return fmt.Errorf("tatp: call forwarding row %d/%d/%d has empty time range", s, f, c)
				}
			}
		}
		if got := store.ReadWord(word(sub, 4)); got != cf {
			return fmt.Errorf("tatp: subscriber %d call-forwarding count %d != recorded %d", s, cf, got)
		}
	}
	return nil
}
