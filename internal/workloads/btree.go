package workloads

import (
	"fmt"
	"math/rand"

	"dhtm/internal/memdev"
	"dhtm/internal/palloc"
	"dhtm/internal/txn"
)

// btreeWL is the "BTree" micro-benchmark: atomic batches of insert/delete
// operations on a two-level persistent B-tree (a root index node over sorted
// leaf nodes), ~3 KB of data. Leaves split on overflow and are recycled
// through a free list when they drain, so the structure keeps a stable
// footprint over long runs.
//
// Layout (each node is two cache lines = 16 words):
//
//	meta line: [keyCount, keySum, rootChildren, freeHead, nodesUsed, capacity]
//	root node: word 0 = count, words 1..15 = separators, words 16..31 = children
//	leaf node: word 0 = count, words 1..15 = keys, words 17..31 = values
//	           (word 16 = next-free link while the leaf is on the free list)
type btreeWL struct {
	meta     uint64
	root     uint64
	nodes    uint64
	capacity int
	opsPerTx int
	parts    int
	keySpace uint64
}

func newBTree() *btreeWL { return &btreeWL{} }

// Name implements Workload.
func (b *btreeWL) Name() string { return "btree" }

const (
	btreeNodeLines = 4
	btreeMaxKeys   = 15
	btreeMaxKids   = 16
	// Word offsets within a node: keys occupy words 1..btreeMaxKeys, the
	// child pointers (root) or the free-list link (leaf) start at
	// btreeChildOff, and the per-key values start at btreeValOff.
	btreeChildOff = btreeMaxKeys + 1
	btreeValOff   = btreeMaxKeys + 2
)

// Setup implements Workload.
func (b *btreeWL) Setup(heap *palloc.Heap, p Params) error {
	p = p.Defaults()
	b.capacity = 14 // 14 leaves x 256 B + root + meta; one transaction touches ~3 KB
	b.opsPerTx = p.OpsPerTx
	if b.opsPerTx <= 0 {
		b.opsPerTx = 32
	}
	b.parts = p.Partitions
	b.keySpace = 640
	b.meta = heap.AllocLines(1)
	b.root = heap.AllocLines(btreeNodeLines)
	b.nodes = heap.AllocLines(b.capacity * btreeNodeLines)

	// Pre-split the key space across several leaves and fill them halfway.
	leaves := 10
	rng := rand.New(rand.NewSource(p.Seed + 3))
	var count, sum uint64
	for i := 0; i < leaves; i++ {
		leaf := b.nodeAddr(i + 1)
		lo := uint64(i) * b.keySpace / uint64(leaves)
		hi := uint64(i+1) * b.keySpace / uint64(leaves)
		n := 0
		for k := lo; k < hi && n < btreeMaxKeys/2+2; k++ {
			if rng.Intn(4) != 0 {
				continue
			}
			heap.WriteWord(word(leaf, 1+n), k+1)
			heap.WriteWord(word(leaf, btreeValOff+n), (k+1)*3)
			n++
			count++
			sum += k + 1
		}
		heap.WriteWord(word(leaf, 0), uint64(n))
		// Root: child i covers keys < separator i.
		heap.WriteWord(word(b.root, btreeChildOff+i), uint64(i+1))
		if i < leaves-1 {
			heap.WriteWord(word(b.root, 1+i), hi+1)
		}
	}
	heap.WriteWord(word(b.root, 0), uint64(leaves-1))
	// Free list links the unused nodes.
	freeHead := uint64(0)
	for i := b.capacity; i > leaves; i-- {
		heap.WriteWord(word(b.nodeAddr(i), btreeChildOff), freeHead)
		freeHead = uint64(i)
	}
	heap.WriteWord(word(b.meta, 0), count)
	heap.WriteWord(word(b.meta, 1), sum)
	heap.WriteWord(word(b.meta, 2), uint64(leaves))
	heap.WriteWord(word(b.meta, 3), freeHead)
	heap.WriteWord(word(b.meta, 4), uint64(leaves))
	heap.WriteWord(word(b.meta, 5), uint64(b.capacity))
	return nil
}

// nodeAddr returns the base address of node id (1-based; 0 means nil).
func (b *btreeWL) nodeAddr(id int) uint64 {
	return b.nodes + uint64(id-1)*btreeNodeLines*uint64(memdev.LineBytes)
}

// Next implements Workload.
func (b *btreeWL) Next(core int, rng *rand.Rand) *txn.Transaction {
	keys := make([]uint64, b.opsPerTx)
	inserts := make([]bool, b.opsPerTx)
	for i := range keys {
		keys[i] = rng.Uint64()%b.keySpace + 1
		inserts[i] = rng.Intn(2) == 0
	}
	return &txn.Transaction{
		Label: "btree-batch",
		// The tree is protected by a single coarse lock partition plus one
		// per root child span; the root child index of each key decides it.
		LockIDs: b.lockIDs(keys),
		Body: func(tx txn.Tx) error {
			for i, key := range keys {
				var err error
				if inserts[i] {
					_, err = b.insert(tx, key)
				} else {
					_, err = b.remove(tx, key)
				}
				if err != nil {
					return err
				}
			}
			return nil
		},
	}
}

// lockIDs derives the coarse lock partitions a batch touches from the key
// ranges of the root's children.
func (b *btreeWL) lockIDs(keys []uint64) []uint64 {
	set := make(map[uint64]struct{})
	// Splits and frees touch the root and the free list, so partition 0 is
	// always taken (conservative coarse locking, as in the paper's setup).
	set[0] = struct{}{}
	for _, k := range keys {
		set[1+(k*uint64(b.parts))/(b.keySpace+2)] = struct{}{}
	}
	out := make([]uint64, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	return out
}

// findLeaf walks the root to the leaf covering key, returning the leaf node
// id and its child slot in the root.
func (b *btreeWL) findLeaf(tx txn.Tx, key uint64) (leafID int, slot int) {
	seps := int(tx.Read(word(b.root, 0)))
	slot = seps
	for i := 0; i < seps; i++ {
		if key < tx.Read(word(b.root, 1+i)) {
			slot = i
			break
		}
	}
	return int(tx.Read(word(b.root, btreeChildOff+slot))), slot
}

// insert adds key to the tree; it returns +1 if the key count grew, 0 if the
// key already existed or no space was available.
func (b *btreeWL) insert(tx txn.Tx, key uint64) (int, error) {
	leafID, slot := b.findLeaf(tx, key)
	if leafID == 0 {
		return 0, fmt.Errorf("btree: root slot %d has no leaf", slot)
	}
	leaf := b.nodeAddr(leafID)
	n := int(tx.Read(word(leaf, 0)))
	pos := 0
	for pos < n {
		k := tx.Read(word(leaf, 1+pos))
		if k == key {
			return 0, nil
		}
		if k > key {
			break
		}
		pos++
	}
	if n < btreeMaxKeys {
		for i := n; i > pos; i-- {
			tx.Write(word(leaf, 1+i), tx.Read(word(leaf, i)))
			tx.Write(word(leaf, btreeValOff+i), tx.Read(word(leaf, btreeValOff+i-1)))
		}
		tx.Write(word(leaf, 1+pos), key)
		tx.Write(word(leaf, btreeValOff+pos), key*3)
		tx.Write(word(leaf, 0), uint64(n+1))
		return 1, nil
	}
	// Leaf is full: split it if the root and the free list allow.
	rootSeps := int(tx.Read(word(b.root, 0)))
	freeHead := tx.Read(word(b.meta, 3))
	if rootSeps >= btreeMaxKeys || freeHead == 0 {
		return 0, nil
	}
	newID := int(freeHead)
	newLeaf := b.nodeAddr(newID)
	tx.Write(word(b.meta, 3), tx.Read(word(newLeaf, btreeChildOff)))
	// Move the upper half of the keys to the new leaf.
	half := (n + 1) / 2
	moved := 0
	for i := half; i < n; i++ {
		tx.Write(word(newLeaf, 1+moved), tx.Read(word(leaf, 1+i)))
		tx.Write(word(newLeaf, btreeValOff+moved), tx.Read(word(leaf, btreeValOff+i)))
		tx.Write(word(leaf, 1+i), 0)
		tx.Write(word(leaf, btreeValOff+i), 0)
		moved++
	}
	tx.Write(word(newLeaf, 0), uint64(moved))
	tx.Write(word(newLeaf, btreeChildOff), 0)
	tx.Write(word(leaf, 0), uint64(half))
	separator := tx.Read(word(newLeaf, 1))
	// Shift root separators/children right of slot and link the new leaf.
	for i := rootSeps; i > slot; i-- {
		tx.Write(word(b.root, 1+i), tx.Read(word(b.root, i)))
	}
	for i := rootSeps + 1; i > slot+1; i-- {
		tx.Write(word(b.root, btreeChildOff+i), tx.Read(word(b.root, btreeChildOff+i-1)))
	}
	tx.Write(word(b.root, 1+slot), separator)
	tx.Write(word(b.root, btreeChildOff+slot+1), uint64(newID))
	tx.Write(word(b.root, 0), uint64(rootSeps+1))
	tx.Write(word(b.meta, 2), tx.Read(word(b.meta, 2))+1)
	// Retry the insertion into whichever half now covers the key.
	return b.insert(tx, key)
}

// remove deletes key from its leaf; it returns -1 if a key was removed.
// A leaf that drains completely is unlinked from the root and recycled
// through the free list (unless it is the last remaining leaf).
func (b *btreeWL) remove(tx txn.Tx, key uint64) (int, error) {
	leafID, slot := b.findLeaf(tx, key)
	if leafID == 0 {
		return 0, fmt.Errorf("btree: root slot %d has no leaf", slot)
	}
	leaf := b.nodeAddr(leafID)
	n := int(tx.Read(word(leaf, 0)))
	pos := -1
	for i := 0; i < n; i++ {
		if tx.Read(word(leaf, 1+i)) == key {
			pos = i
			break
		}
	}
	if pos < 0 {
		return 0, nil
	}
	for i := pos; i < n-1; i++ {
		tx.Write(word(leaf, 1+i), tx.Read(word(leaf, 2+i)))
		tx.Write(word(leaf, btreeValOff+i), tx.Read(word(leaf, btreeValOff+i+1)))
	}
	tx.Write(word(leaf, n), 0)
	tx.Write(word(leaf, btreeValOff+n-1), 0)
	tx.Write(word(leaf, 0), uint64(n-1))

	rootSeps := int(tx.Read(word(b.root, 0)))
	if n-1 > 0 || rootSeps == 0 {
		return -1, nil
	}
	// The leaf drained: unlink it from the root and recycle it.
	for i := slot; i < rootSeps; i++ {
		tx.Write(word(b.root, btreeChildOff+i), tx.Read(word(b.root, btreeChildOff+i+1)))
	}
	// Remove the separator adjacent to the dropped child.
	sepToDrop := slot
	if sepToDrop >= rootSeps {
		sepToDrop = rootSeps - 1
	}
	for i := sepToDrop; i < rootSeps-1; i++ {
		tx.Write(word(b.root, 1+i), tx.Read(word(b.root, 2+i)))
	}
	tx.Write(word(b.root, rootSeps), 0)
	tx.Write(word(b.root, btreeChildOff+rootSeps), 0)
	tx.Write(word(b.root, 0), uint64(rootSeps-1))
	tx.Write(word(leaf, btreeChildOff), tx.Read(word(b.meta, 3)))
	tx.Write(word(b.meta, 3), uint64(leafID))
	tx.Write(word(b.meta, 2), tx.Read(word(b.meta, 2))-1)
	return -1, nil
}

// Verify implements Workload. The key count and sum are not maintained inside
// transactions (a single hot meta line would artificially serialise the HTM
// designs); the atomicity invariants are structural: sorted leaves, keys
// within their separator ranges, counts within bounds, no partially applied
// splits or unlinks (which would leave the root/leaf counts inconsistent),
// and a consistent root-children count.
func (b *btreeWL) Verify(store *memdev.Store) error {
	children := store.ReadWord(word(b.meta, 2))
	seps := store.ReadWord(word(b.root, 0))
	if children != seps+1 {
		return fmt.Errorf("btree: root has %d separators but %d children recorded", seps, children)
	}
	var gotCount, gotSum uint64
	for slot := uint64(0); slot <= seps; slot++ {
		leafID := store.ReadWord(word(b.root, btreeChildOff+int(slot)))
		if leafID == 0 || leafID > uint64(b.capacity) {
			return fmt.Errorf("btree: root slot %d holds invalid leaf id %d", slot, leafID)
		}
		var lo uint64
		if slot > 0 {
			lo = store.ReadWord(word(b.root, int(slot)))
		}
		hi := ^uint64(0)
		if slot < seps {
			hi = store.ReadWord(word(b.root, 1+int(slot)))
		}
		leaf := b.nodeAddr(int(leafID))
		n := store.ReadWord(word(leaf, 0))
		if n > btreeMaxKeys {
			return fmt.Errorf("btree: leaf %d key count %d exceeds capacity", leafID, n)
		}
		var prev uint64
		for i := 0; i < int(n); i++ {
			k := store.ReadWord(word(leaf, 1+i))
			if k == 0 {
				return fmt.Errorf("btree: leaf %d slot %d empty within count", leafID, i)
			}
			if k <= prev {
				return fmt.Errorf("btree: leaf %d keys not strictly sorted", leafID)
			}
			if k < lo || k >= hi {
				return fmt.Errorf("btree: leaf %d key %d outside separator range [%d,%d)", leafID, k, lo, hi)
			}
			if v := store.ReadWord(word(leaf, btreeValOff+i)); v != k*3 {
				return fmt.Errorf("btree: leaf %d key %d has torn value %d", leafID, k, v)
			}
			prev = k
			gotCount++
			gotSum += k
		}
	}
	_ = gotCount
	_ = gotSum
	return nil
}
