package workloads

import (
	"fmt"
	"math/rand"

	"dhtm/internal/memdev"
	"dhtm/internal/palloc"
	"dhtm/internal/txn"
)

// hashWL is the "Hash" micro-benchmark: atomic batches of insert/delete
// operations on a bucketised persistent hash table. One transaction inserts
// or deletes ~3 KB worth of entries (the paper's per-transaction data-set
// size); the table itself is much larger so that independent transactions
// mostly touch disjoint buckets.
//
// Layout:
//
//	meta line:  [buckets, 0...]            (static, never written by transactions)
//	bucket i:   one cache line: word 0 = count | keySum<<16,
//	            words 1..7 = keys (0 = empty)
//
// Keeping the count and checksum per bucket (rather than in a global meta
// word) avoids a single hot line that every transaction would write, which
// would serialise the HTM designs artificially; the per-bucket checksum still
// catches torn inserts and deletes after a crash.
type hashWL struct {
	meta       uint64
	buckets    uint64
	numBuckets int
	bucketMask uint64 // numBuckets-1; the table size is a power of two
	opsPerTx   int
	partitions int
	keySpace   uint64
}

func newHash() *hashWL { return &hashWL{} }

// Name implements Workload.
func (h *hashWL) Name() string { return "hash" }

const hashSlotsPerBucket = 7

// Setup implements Workload.
func (h *hashWL) Setup(heap *palloc.Heap, p Params) error {
	p = p.Defaults()
	h.numBuckets = 16384 // 1 MB table; one transaction touches ~3 KB of it
	h.bucketMask = uint64(h.numBuckets - 1)
	h.opsPerTx = p.OpsPerTx
	if h.opsPerTx <= 0 {
		h.opsPerTx = 64
	}
	h.partitions = p.Partitions
	h.keySpace = uint64(h.numBuckets * hashSlotsPerBucket * 2)
	h.meta = heap.AllocLines(1)
	h.buckets = heap.AllocLines(h.numBuckets)

	rng := rand.New(rand.NewSource(p.Seed + 1))
	var total uint64
	// Bitset over the (small, dense) key space; a map here dominated setup
	// cost. Keys are 1-based, hence the +1 sizing.
	inserted := make([]uint64, (h.keySpace+1+63)/64)
	for total < uint64(h.numBuckets*hashSlotsPerBucket/2) {
		key := rng.Uint64()%h.keySpace + 1
		if inserted[key/64]&(1<<(key%64)) != 0 {
			continue
		}
		b := h.bucketOf(key)
		cnt, sum := unpackBucketHeader(heap.ReadWord(word(b, 0)))
		if cnt >= hashSlotsPerBucket {
			continue
		}
		heap.WriteWord(word(b, 1+int(cnt)), key)
		heap.WriteWord(word(b, 0), packBucketHeader(cnt+1, sum+key))
		inserted[key/64] |= 1 << (key % 64)
		total++
	}
	heap.WriteWord(word(h.meta, 0), uint64(h.numBuckets))
	return nil
}

// packBucketHeader packs a bucket's element count and key checksum into one
// word so a single store keeps them consistent.
func packBucketHeader(count, sum uint64) uint64 { return count | sum<<16 }

// unpackBucketHeader is the inverse of packBucketHeader.
func unpackBucketHeader(h uint64) (count, sum uint64) { return h & 0xffff, h >> 16 }

// bucketOf maps a key to its bucket's line address.
func (h *hashWL) bucketOf(key uint64) uint64 {
	x := key * 0x9e3779b97f4a7c15
	return line(h.buckets, int(x&h.bucketMask))
}

// partitionOf maps a key to the coarse lock partition its bucket belongs to.
func (h *hashWL) partitionOf(key uint64) uint64 {
	x := key * 0x9e3779b97f4a7c15
	idx := int(x & h.bucketMask)
	return uint64(idx * h.partitions / h.numBuckets)
}

// hashWindowsPerPartition subdivides every lock partition into windows; a
// transaction's keys all fall into one window.
const hashWindowsPerPartition = 8

// windowOf maps a key to its window index within its partition.
func (h *hashWL) windowOf(key uint64) uint64 {
	x := key * 0x9e3779b97f4a7c15
	idx := x & h.bucketMask
	bucketsPerPart := uint64(h.numBuckets / h.partitions)
	return (idx % bucketsPerPart) * hashWindowsPerPartition / bucketsPerPart
}

// keyInWindow draws a key whose bucket falls inside the given partition and
// window. Rejection sampling here dominates transaction generation (~1/128
// of draws are accepted at the default geometry), so the accept test matters:
// when the partition and window grids align — partitions divides numBuckets
// and hashWindowsPerPartition divides the partition size, true for every
// power-of-two configuration — the accepted bucket indices form one
// contiguous range and each draw needs a single subtract-and-compare instead
// of four divisions. The draw and accept sequence is provably identical to
// the general predicate, so golden tables do not move.
func (h *hashWL) keyInWindow(rng *rand.Rand, part, window uint64) uint64 {
	bucketsPerPart := uint64(h.numBuckets / h.partitions)
	if uint64(h.numBuckets) == bucketsPerPart*uint64(h.partitions) && bucketsPerPart%hashWindowsPerPartition == 0 {
		span := bucketsPerPart / hashWindowsPerPartition
		lo := part*bucketsPerPart + window*span
		for {
			key := rng.Uint64()%h.keySpace + 1
			if (key*0x9e3779b97f4a7c15)&h.bucketMask-lo < span {
				return key
			}
		}
	}
	for {
		key := rng.Uint64()%h.keySpace + 1
		if h.partitionOf(key) == part && h.windowOf(key) == window {
			return key
		}
	}
}

// Next implements Workload.
func (h *hashWL) Next(core int, rng *rand.Rand) *txn.Transaction {
	// A transaction operates on one small window of the table (the paper's
	// ~3 KB per-transaction data set). The lock-based designs lock the whole
	// coarse-grained partition containing the window, whereas the HTM designs
	// detect conflicts at cache-line granularity, so they only conflict when
	// two cores pick overlapping windows — the concurrency gap the paper
	// attributes to coarse-grained locking (§VI-A).
	part := uint64(rng.Intn(h.partitions))
	window := rng.Uint64() % hashWindowsPerPartition
	// One backing slice per transaction: the keys, then a bitmask of which
	// ops are inserts. Transaction generation runs once per simulated
	// transaction, so the saved allocation is visible in every benchmark.
	maskWords := (h.opsPerTx + 63) / 64
	buf := make([]uint64, h.opsPerTx+maskWords)
	keys, insertMask := buf[:h.opsPerTx], buf[h.opsPerTx:]
	for i := range keys {
		keys[i] = h.keyInWindow(rng, part, window)
		if rng.Intn(2) == 0 {
			insertMask[i/64] |= 1 << (i % 64)
		}
	}
	return &txn.Transaction{
		Label:   "hash-batch",
		LockIDs: []uint64{part},
		Body: func(tx txn.Tx) error {
			for i, key := range keys {
				b := h.bucketOf(key)
				cnt, sum := unpackBucketHeader(tx.Read(word(b, 0)))
				// Locate the key in the bucket.
				found := -1
				for s := 0; s < int(cnt); s++ {
					if tx.Read(word(b, 1+s)) == key {
						found = s
						break
					}
				}
				if insertMask[i/64]&(1<<(i%64)) != 0 {
					if found >= 0 || cnt >= hashSlotsPerBucket {
						continue
					}
					tx.Write(word(b, 1+int(cnt)), key)
					tx.Write(word(b, 0), packBucketHeader(cnt+1, sum+key))
				} else {
					if found < 0 {
						continue
					}
					last := tx.Read(word(b, int(cnt)))
					tx.Write(word(b, 1+found), last)
					tx.Write(word(b, int(cnt)), 0)
					tx.Write(word(b, 0), packBucketHeader(cnt-1, sum-key))
				}
			}
			return nil
		},
	}
}

// Verify implements Workload.
func (h *hashWL) Verify(store *memdev.Store) error {
	if got := store.ReadWord(word(h.meta, 0)); got != uint64(h.numBuckets) {
		return fmt.Errorf("hash: bucket count corrupted: %d != %d", got, h.numBuckets)
	}
	for i := 0; i < h.numBuckets; i++ {
		b := line(h.buckets, i)
		cnt, sum := unpackBucketHeader(store.ReadWord(word(b, 0)))
		if cnt > hashSlotsPerBucket {
			return fmt.Errorf("hash: bucket %d count %d exceeds capacity", i, cnt)
		}
		var gotSum uint64
		for s := 0; s < int(cnt); s++ {
			key := store.ReadWord(word(b, 1+s))
			if key == 0 {
				return fmt.Errorf("hash: bucket %d slot %d empty but within count %d", i, s, cnt)
			}
			if h.bucketOf(key) != b {
				return fmt.Errorf("hash: key %d stored in wrong bucket %d", key, i)
			}
			gotSum += key
		}
		if gotSum != sum {
			return fmt.Errorf("hash: bucket %d checksum %d != recorded %d", i, gotSum, sum)
		}
		for s := int(cnt); s < hashSlotsPerBucket; s++ {
			if store.ReadWord(word(b, 1+s)) != 0 {
				return fmt.Errorf("hash: bucket %d slot %d beyond count is not empty", i, s)
			}
		}
	}
	return nil
}
