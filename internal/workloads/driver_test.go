package workloads_test

import (
	"testing"

	"dhtm/internal/config"
	"dhtm/internal/registry"
	"dhtm/internal/txn"
	"dhtm/internal/workloads"
)

// smallConfig returns a configuration scaled down for fast tests: fewer
// cores and a smaller per-thread log, but the same cache geometry as the
// paper so overflow and conflict behaviour is still exercised.
func smallConfig(cores int) config.Config {
	cfg := config.Default()
	cfg.NumCores = cores
	cfg.LogBytesPerThread = 256 * 1024
	cfg.OverflowEntriesPerThread = 8 * 1024
	return cfg
}

// newRuntime builds the named design on a fresh environment, resolving the
// name through the registry like every other layer.
func newRuntime(t *testing.T, name string, cfg config.Config) (*txn.Env, txn.Runtime) {
	t.Helper()
	env, err := txn.NewEnv(cfg)
	if err != nil {
		t.Fatalf("NewEnv: %v", err)
	}
	rt, err := registry.NewRuntime(env, name)
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	return env, rt
}

// TestAllDesignsAllMicrobenchmarks runs every design on every micro-benchmark
// with a small transaction count and checks that all transactions commit and
// that the workload's structural invariants hold in the durable image after
// the caches are drained.
func TestAllDesignsAllMicrobenchmarks(t *testing.T) {
	designs := []string{"DHTM", "NP", "SO", "sdTM", "ATOM", "LogTM-ATOM"}
	for _, design := range designs {
		for _, wname := range registry.MicroWorkloadNames() {
			design, wname := design, wname
			t.Run(design+"/"+wname, func(t *testing.T) {
				t.Parallel()
				cfg := smallConfig(4)
				env, rt := newRuntime(t, design, cfg)
				w, err := registry.NewWorkload(wname)
				if err != nil {
					t.Fatalf("New(%q): %v", wname, err)
				}
				const perCore = 6
				res, err := workloads.Run(env, rt, w, workloads.Params{Cores: cfg.NumCores}, perCore, true)
				if err != nil {
					t.Fatalf("Run: %v", err)
				}
				want := uint64(cfg.NumCores * perCore)
				if res.Committed != want {
					t.Fatalf("committed %d transactions, want %d", res.Committed, want)
				}
				if res.Cycles == 0 {
					t.Fatalf("run reported zero cycles")
				}
				env.Hier.DrainClean()
				if err := w.Verify(env.Store()); err != nil {
					t.Fatalf("post-run verification failed: %v", err)
				}
			})
		}
	}
}

// TestOLTPWorkloadsOnKeyDesigns runs TATP and TPC-C on the three designs the
// paper's Table VI compares (SO, ATOM, DHTM).
func TestOLTPWorkloadsOnKeyDesigns(t *testing.T) {
	for _, design := range []string{"SO", "ATOM", "DHTM"} {
		for _, wname := range []string{"tatp", "tpcc"} {
			design, wname := design, wname
			t.Run(design+"/"+wname, func(t *testing.T) {
				t.Parallel()
				cfg := smallConfig(4)
				env, rt := newRuntime(t, design, cfg)
				w, err := registry.NewWorkload(wname)
				if err != nil {
					t.Fatalf("New(%q): %v", wname, err)
				}
				const perCore = 2
				res, err := workloads.Run(env, rt, w, workloads.Params{Cores: cfg.NumCores}, perCore, true)
				if err != nil {
					t.Fatalf("Run: %v", err)
				}
				if res.Committed != uint64(cfg.NumCores*perCore) {
					t.Fatalf("committed %d transactions, want %d", res.Committed, cfg.NumCores*perCore)
				}
				env.Hier.DrainClean()
				if err := w.Verify(env.Store()); err != nil {
					t.Fatalf("post-run verification failed: %v", err)
				}
			})
		}
	}
}

// TestWriteSetFootprints checks that the measured write-set sizes of the
// workloads land in the regime the paper reports in Table IV: micro-benchmark
// write sets of a few tens of lines, TATP around a hundred lines and TPC-C by
// far the largest (hundreds of lines, exceeding the L1).
func TestWriteSetFootprints(t *testing.T) {
	measure := func(wname string) float64 {
		cfg := smallConfig(2)
		env, rt := newRuntime(t, "NP", cfg)
		w, err := registry.NewWorkload(wname)
		if err != nil {
			t.Fatalf("New(%q): %v", wname, err)
		}
		if _, err := workloads.Run(env, rt, w, workloads.Params{Cores: cfg.NumCores}, 3, true); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return env.Stats.MeanWriteSetLines()
	}
	micro := map[string]float64{}
	for _, name := range registry.MicroWorkloadNames() {
		micro[name] = measure(name)
		if micro[name] < 10 || micro[name] > 120 {
			t.Errorf("%s write set %.1f lines outside the expected micro-benchmark regime", name, micro[name])
		}
	}
	tatp := measure("tatp")
	if tatp < 60 || tatp > 400 {
		t.Errorf("tatp write set %.1f lines outside the expected regime (~167)", tatp)
	}
	tpcc := measure("tpcc")
	if tpcc < 300 {
		t.Errorf("tpcc write set %.1f lines should be the largest (paper: ~590)", tpcc)
	}
	if tpcc <= tatp {
		t.Errorf("tpcc write set (%.1f) should exceed tatp (%.1f)", tpcc, tatp)
	}
	t.Logf("write-set lines: micro=%v tatp=%.1f tpcc=%.1f", micro, tatp, tpcc)
}
