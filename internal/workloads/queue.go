package workloads

import (
	"fmt"
	"math/rand"

	"dhtm/internal/memdev"
	"dhtm/internal/palloc"
	"dhtm/internal/txn"
)

// queueWL is the "Queue" micro-benchmark: atomic batches of enqueue/dequeue
// operations on a fixed-capacity circular queue of 128-byte entries laid out
// in persistent memory (NVHeaps-style, ~3 KB data set).
//
// Layout:
//
//	meta line:   [head, tail, count, sum, capacity, 0, 0, 0]
//	entry i:     two cache lines; word 0 = value, word 1 = valid flag,
//	             words 2..15 = payload derived from the value.
type queueWL struct {
	meta     uint64
	entries  uint64
	capacity int
	opsPerTx int
}

func newQueue() *queueWL { return &queueWL{} }

// Name implements Workload.
func (q *queueWL) Name() string { return "queue" }

const queueEntryLines = 2

// Setup implements Workload.
func (q *queueWL) Setup(heap *palloc.Heap, p Params) error {
	p = p.Defaults()
	q.capacity = 24 // 24 entries x 128 B ~= 3 KB
	q.opsPerTx = p.OpsPerTx
	if q.opsPerTx <= 0 {
		q.opsPerTx = 36
	}
	q.meta = heap.AllocLines(1)
	q.entries = heap.AllocLines(q.capacity * queueEntryLines)

	// Start half full so both operations are immediately possible.
	rng := rand.New(rand.NewSource(p.Seed))
	var sum uint64
	initial := q.capacity / 2
	for i := 0; i < initial; i++ {
		v := rng.Uint64()%1000 + 1
		base := q.entryAddr(i)
		heap.WriteWord(base, v)
		heap.WriteWord(base+8, 1)
		for w := 2; w < 16; w++ {
			heap.WriteWord(base+uint64(w)*8, v+uint64(w))
		}
		sum += v
	}
	heap.WriteWord(word(q.meta, 0), 0)                  // head
	heap.WriteWord(word(q.meta, 1), uint64(initial))    // tail
	heap.WriteWord(word(q.meta, 2), uint64(initial))    // count
	heap.WriteWord(word(q.meta, 3), sum)                // sum of live values
	heap.WriteWord(word(q.meta, 4), uint64(q.capacity)) // capacity
	return nil
}

// entryAddr returns the base address of entry i.
func (q *queueWL) entryAddr(i int) uint64 {
	return q.entries + uint64(i)*queueEntryLines*uint64(memdev.LineBytes)
}

// Next implements Workload.
func (q *queueWL) Next(core int, rng *rand.Rand) *txn.Transaction {
	ops := make([]uint64, q.opsPerTx)
	for i := range ops {
		ops[i] = rng.Uint64()%1000 + 1
	}
	enqueueFirst := rng.Intn(2) == 0
	return &txn.Transaction{
		Label: "queue-batch",
		// The queue is a single coarse-grained partition: every transaction
		// takes the same lock under the lock-based designs.
		LockIDs: []uint64{0},
		Body: func(tx txn.Tx) error {
			head := tx.Read(word(q.meta, 0))
			tail := tx.Read(word(q.meta, 1))
			count := tx.Read(word(q.meta, 2))
			sum := tx.Read(word(q.meta, 3))
			cap64 := uint64(q.capacity)
			for i, v := range ops {
				enq := (i%2 == 0) == enqueueFirst
				if enq && count == cap64 {
					enq = false
				}
				if !enq && count == 0 {
					enq = true
				}
				if enq {
					base := q.entryAddr(int(tail))
					tx.Write(base, v)
					tx.Write(base+8, 1)
					for w := 2; w < 16; w++ {
						tx.Write(base+uint64(w)*8, v+uint64(w))
					}
					tail = (tail + 1) % cap64
					count++
					sum += v
				} else {
					base := q.entryAddr(int(head))
					val := tx.Read(base)
					tx.Write(base+8, 0)
					head = (head + 1) % cap64
					count--
					sum -= val
				}
			}
			tx.Write(word(q.meta, 0), head)
			tx.Write(word(q.meta, 1), tail)
			tx.Write(word(q.meta, 2), count)
			tx.Write(word(q.meta, 3), sum)
			return nil
		},
	}
}

// Verify implements Workload.
func (q *queueWL) Verify(store *memdev.Store) error {
	head := store.ReadWord(word(q.meta, 0))
	tail := store.ReadWord(word(q.meta, 1))
	count := store.ReadWord(word(q.meta, 2))
	sum := store.ReadWord(word(q.meta, 3))
	cap64 := store.ReadWord(word(q.meta, 4))
	if cap64 != uint64(q.capacity) {
		return fmt.Errorf("queue: capacity corrupted: %d != %d", cap64, q.capacity)
	}
	if head >= cap64 || tail >= cap64 || count > cap64 {
		return fmt.Errorf("queue: pointers out of range head=%d tail=%d count=%d", head, tail, count)
	}
	if (head+count)%cap64 != tail {
		return fmt.Errorf("queue: head=%d + count=%d inconsistent with tail=%d", head, count, tail)
	}
	var liveSum uint64
	for i := uint64(0); i < count; i++ {
		idx := int((head + i) % cap64)
		base := q.entryAddr(idx)
		if store.ReadWord(base+8) != 1 {
			return fmt.Errorf("queue: live entry %d not marked valid", idx)
		}
		liveSum += store.ReadWord(base)
	}
	if liveSum != sum {
		return fmt.Errorf("queue: live sum %d != recorded sum %d", liveSum, sum)
	}
	return nil
}
