package workloads

import (
	"fmt"
	"math/rand"

	"dhtm/internal/memdev"
	"dhtm/internal/palloc"
	"dhtm/internal/txn"
)

// spsWL is the "SPS" micro-benchmark: atomic batches of random swaps between
// entries of a large persistent array (one transaction touches ~3 KB of it,
// the paper's per-transaction data-set size). The invariant is that swaps permute
// the array, so its element sum and sum of squares never change.
//
// Layout:
//
//	meta line: [elements, sum, sumSquares, 0...]
//	array:     elements consecutive 8-byte words
type spsWL struct {
	meta       uint64
	array      uint64
	elements   int
	opsPerTx   int
	partitions int
}

func newSPS() *spsWL { return &spsWL{} }

// Name implements Workload.
func (s *spsWL) Name() string { return "sps" }

// Setup implements Workload.
func (s *spsWL) Setup(heap *palloc.Heap, p Params) error {
	p = p.Defaults()
	s.elements = 131072 // 1 MB array; one transaction swaps ~3 KB of it
	s.opsPerTx = p.OpsPerTx
	if s.opsPerTx <= 0 {
		s.opsPerTx = 24
	}
	s.partitions = p.Partitions
	s.meta = heap.AllocLines(1)
	s.array = heap.AllocWords(s.elements)

	rng := rand.New(rand.NewSource(p.Seed + 2))
	var sum, sumSq uint64
	for i := 0; i < s.elements; i++ {
		v := rng.Uint64()%512 + 1
		heap.WriteWord(word(s.array, i), v)
		sum += v
		sumSq += v * v
	}
	heap.WriteWord(word(s.meta, 0), uint64(s.elements))
	heap.WriteWord(word(s.meta, 1), sum)
	heap.WriteWord(word(s.meta, 2), sumSq)
	return nil
}

// partitionOf maps an element index to its lock partition.
func (s *spsWL) partitionOf(idx int) uint64 {
	return uint64(idx * s.partitions / s.elements)
}

// Next implements Workload.
func (s *spsWL) Next(core int, rng *rand.Rand) *txn.Transaction {
	// All swaps of a transaction stay within one small window of the array
	// (the paper's ~3 KB per-transaction data set). Lock-based designs lock
	// the whole coarse partition containing the window; HTM designs detect
	// conflicts at line granularity, so two transactions in the same
	// partition but different windows proceed concurrently.
	type swap struct{ i, j int }
	const windows = 8
	part := rng.Intn(s.partitions)
	span := s.elements / s.partitions
	winSpan := span / windows
	base := part*span + rng.Intn(windows)*winSpan
	swaps := make([]swap, s.opsPerTx)
	for k := range swaps {
		swaps[k] = swap{i: base + rng.Intn(winSpan), j: base + rng.Intn(winSpan)}
	}
	return &txn.Transaction{
		Label:   "sps-batch",
		LockIDs: []uint64{uint64(part)},
		Body: func(tx txn.Tx) error {
			for _, sw := range swaps {
				ai, aj := word(s.array, sw.i), word(s.array, sw.j)
				vi := tx.Read(ai)
				vj := tx.Read(aj)
				tx.Write(ai, vj)
				tx.Write(aj, vi)
			}
			return nil
		},
	}
}

// Verify implements Workload.
func (s *spsWL) Verify(store *memdev.Store) error {
	wantSum := store.ReadWord(word(s.meta, 1))
	wantSq := store.ReadWord(word(s.meta, 2))
	var sum, sumSq uint64
	for i := 0; i < s.elements; i++ {
		v := store.ReadWord(word(s.array, i))
		if v == 0 {
			return fmt.Errorf("sps: element %d is zero (lost by a torn swap)", i)
		}
		sum += v
		sumSq += v * v
	}
	if sum != wantSum {
		return fmt.Errorf("sps: element sum %d != initial sum %d", sum, wantSum)
	}
	if sumSq != wantSq {
		return fmt.Errorf("sps: element sum of squares %d != initial %d", sumSq, wantSq)
	}
	return nil
}
