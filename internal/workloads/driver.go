package workloads

import (
	"fmt"
	"math/rand"

	"dhtm/internal/engine"
	"dhtm/internal/obs"
	"dhtm/internal/palloc"
	"dhtm/internal/probe"
	"dhtm/internal/stats"
	"dhtm/internal/txn"
)

// RunResult is the outcome of driving one (design, workload) pair. The json
// tags fix the on-disk record format of the result store; renaming a field
// without bumping resultstore.FormatVersion makes old records decode with
// that field silently zeroed — served as valid cache hits with wrong
// numbers, not recomputed. Bump the version (and regenerate the golden
// file) instead.
type RunResult struct {
	Design   string       `json:"design"`
	Workload string       `json:"workload"`
	Stats    *stats.Stats `json:"stats,omitempty"`
	// Committed is the number of transactions that reached their commit
	// point; with the default driver it equals Cores*TxPerCore.
	Committed uint64 `json:"committed"`
	// Cycles is the makespan of the run.
	Cycles uint64 `json:"cycles"`
	// Phases is the wall-clock phase breakdown of the execution that produced
	// this result (clone/setup/run/verify/store_write). It describes one
	// concrete execution, not the result's semantics, so it is excluded from
	// the on-disk record format and never set on cache hits.
	Phases *obs.CellTrace `json:"-"`
	// Timeline is the cycle-domain probe recording of the run, present only
	// when the cell executed with tracing enabled. Like Phases it describes
	// one concrete execution, so it is excluded from the on-disk record
	// format and never set on cache hits.
	Timeline *probe.Timeline `json:"-"`
}

// Throughput returns committed transactions per million cycles.
func (r RunResult) Throughput() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Committed) / float64(r.Cycles) * 1e6
}

// Run sets the workload up on the environment's persistent heap and drives
// txPerCore transactions per core through the runtime under the deterministic
// multi-core engine, then drains per-core completion work. The returned
// result references the environment's Stats.
//
// When finish is false the run stops at the last transaction's commit point
// without draining completion work or write-backs — the state crash-recovery
// tests want to exercise.
func Run(env *txn.Env, rt txn.Runtime, w Workload, p Params, txPerCore int, finish bool) (RunResult, error) {
	return RunInstrumented(env, rt, w, p, txPerCore, finish, nil, nil)
}

// RunInstrumented is Run with instrumentation hooks: arm runs after workload
// setup and before the measured run begins (the crash-point explorer installs
// its persist observer there, so setup writes are not numbered), and stop is
// polled before each transaction so an instrument that has captured what it
// needs can end the run early. Either may be nil. Sharing this drive loop
// with Run is what guarantees instrumented runs replay the exact event
// sequence of plain runs at equal seeds.
func RunInstrumented(env *txn.Env, rt txn.Runtime, w Workload, p Params, txPerCore int, finish bool, arm func(), stop func() bool) (RunResult, error) {
	p = p.Defaults()
	if p.Cores != env.Cfg.NumCores {
		p.Cores = env.Cfg.NumCores
	}
	heap := palloc.New(env.Store())
	if err := w.Setup(heap, p); err != nil {
		return RunResult{}, fmt.Errorf("workloads: setting up %s: %w", w.Name(), err)
	}
	return RunPrepared(env, rt, w, p, txPerCore, finish, arm, stop)
}

// RunPrepared is RunInstrumented for an environment whose store already
// contains the workload's post-Setup image (a copy-on-write clone of a
// cached setup snapshot): it skips Setup and goes straight to the measured
// run. w must be the workload object that performed that Setup — workloads
// are read-only after Setup, so a snapshot-cache entry shares one object
// across cells. p must carry the same values the image was set up with;
// RunPrepared re-defaults it, so passing the pre-default parameter set of an
// equal key is fine.
func RunPrepared(env *txn.Env, rt txn.Runtime, w Workload, p Params, txPerCore int, finish bool, arm func(), stop func() bool) (RunResult, error) {
	p = p.Defaults()
	if p.Cores != env.Cfg.NumCores {
		p.Cores = env.Cfg.NumCores
	}
	if arm != nil {
		arm()
	}

	eng := engine.New(env.Cfg.NumCores)
	if rec := env.Probe; rec != nil {
		// Arm the cycle-domain probe plane: record the cycle-0 row now and
		// let the engine fire the schedule. Sampling is pure observation — it
		// never advances clocks or touches simulator state — so traced and
		// untraced runs of the same seed are bit-identical.
		rec.Start()
		eng.SetSampler(rec.NextDue(), rec.Sample)
	}
	eng.Run(func(core int, c *engine.Clock) {
		rng := rand.New(rand.NewSource(p.Seed + int64(core)*7919))
		for i := 0; i < txPerCore; i++ {
			if stop != nil && stop() {
				break
			}
			t := w.Next(core, rng)
			rt.Run(core, c, t)
			// Non-transactional work between transactions (building the next
			// request); background completion phases overlap with it.
			c.Advance(p.ThinkCycles)
		}
		if finish {
			rt.Finish(core, c)
		} else {
			env.Stats.Core(core).FinalCycle = c.Now()
		}
	})

	res := RunResult{
		Design:    rt.Name(),
		Workload:  w.Name(),
		Stats:     env.Stats,
		Committed: env.Stats.TotalCommits(),
		Cycles:    env.Stats.TotalCycles(),
	}
	if rec := env.Probe; rec != nil {
		rec.Finish(res.Cycles)
		res.Timeline = rec.Timeline()
	}
	return res, nil
}
