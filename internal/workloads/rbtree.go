package workloads

import (
	"fmt"
	"math/rand"

	"dhtm/internal/memdev"
	"dhtm/internal/palloc"
	"dhtm/internal/txn"
)

// rbtreeWL is the "RBTree" micro-benchmark: atomic batches of insert/delete
// operations on a persistent red-black tree (one transaction touches ~3 KB
// of nodes; the tree itself holds ~1k nodes). Inserts perform
// the full red-black fix-up (recolouring and rotations) through the
// transactional interface; deletes tombstone the node's value so the tree's
// balance invariants are preserved structurally and can be verified exactly.
//
// Layout (one cache line per node; node ids are 1-based, 0 is nil):
//
//	meta line: [liveCount, liveSum, rootID, nodesUsed, capacity, 0...]
//	node:      [key, live, colour(1=red), left, right, parent, 0, 0]
type rbtreeWL struct {
	meta     uint64
	nodes    uint64
	capacity int
	opsPerTx int
	parts    int
	keySpace uint64
}

func newRBTree() *rbtreeWL { return &rbtreeWL{} }

// Name implements Workload.
func (r *rbtreeWL) Name() string { return "rbtree" }

// Field offsets within a node line (in words).
const (
	rbKey = iota
	rbLive
	rbColour
	rbLeft
	rbRight
	rbParent
)

const rbRed, rbBlack = uint64(1), uint64(0)

// Setup implements Workload.
func (r *rbtreeWL) Setup(heap *palloc.Heap, p Params) error {
	p = p.Defaults()
	r.capacity = 16384 // 1 MB of nodes; one transaction touches ~3 KB of them
	r.opsPerTx = p.OpsPerTx
	if r.opsPerTx <= 0 {
		r.opsPerTx = 36
	}
	r.parts = p.Partitions
	r.keySpace = uint64(r.capacity + r.capacity/2)
	r.meta = heap.AllocLines(1)
	r.nodes = heap.AllocLines(r.capacity)
	heap.WriteWord(word(r.meta, 4), uint64(r.capacity))

	// Populate half the key space through the same insertion code the
	// transactions use, via an untimed direct view of the store.
	dtx := txn.DirectTx{Store: heap.Store()}
	rng := rand.New(rand.NewSource(p.Seed + 4))
	inserted := 0
	for inserted < r.capacity/2 {
		key := rng.Uint64()%r.keySpace + 1
		delta, err := r.insert(dtx, key)
		if err != nil {
			return err
		}
		if delta > 0 {
			inserted++
			heap.WriteWord(word(r.meta, 0), heap.ReadWord(word(r.meta, 0))+1)
			heap.WriteWord(word(r.meta, 1), heap.ReadWord(word(r.meta, 1))+key)
		}
	}
	return nil
}

// nodeAddr returns the line address of node id (1-based).
func (r *rbtreeWL) nodeAddr(id uint64) uint64 {
	return line(r.nodes, int(id-1))
}

// field helpers --------------------------------------------------------------

func (r *rbtreeWL) get(tx txn.Tx, id uint64, f int) uint64 {
	return tx.Read(word(r.nodeAddr(id), f))
}

func (r *rbtreeWL) set(tx txn.Tx, id uint64, f int, v uint64) {
	tx.Write(word(r.nodeAddr(id), f), v)
}

func (r *rbtreeWL) colourOf(tx txn.Tx, id uint64) uint64 {
	if id == 0 {
		return rbBlack
	}
	return r.get(tx, id, rbColour)
}

// rotateLeft / rotateRight are the standard red-black rotations expressed
// over the transactional node fields.
func (r *rbtreeWL) rotateLeft(tx txn.Tx, x uint64) {
	y := r.get(tx, x, rbRight)
	yl := r.get(tx, y, rbLeft)
	r.set(tx, x, rbRight, yl)
	if yl != 0 {
		r.set(tx, yl, rbParent, x)
	}
	xp := r.get(tx, x, rbParent)
	r.set(tx, y, rbParent, xp)
	if xp == 0 {
		tx.Write(word(r.meta, 2), y)
	} else if r.get(tx, xp, rbLeft) == x {
		r.set(tx, xp, rbLeft, y)
	} else {
		r.set(tx, xp, rbRight, y)
	}
	r.set(tx, y, rbLeft, x)
	r.set(tx, x, rbParent, y)
}

func (r *rbtreeWL) rotateRight(tx txn.Tx, x uint64) {
	y := r.get(tx, x, rbLeft)
	yr := r.get(tx, y, rbRight)
	r.set(tx, x, rbLeft, yr)
	if yr != 0 {
		r.set(tx, yr, rbParent, x)
	}
	xp := r.get(tx, x, rbParent)
	r.set(tx, y, rbParent, xp)
	if xp == 0 {
		tx.Write(word(r.meta, 2), y)
	} else if r.get(tx, xp, rbRight) == x {
		r.set(tx, xp, rbRight, y)
	} else {
		r.set(tx, xp, rbLeft, y)
	}
	r.set(tx, y, rbRight, x)
	r.set(tx, x, rbParent, y)
}

// insert adds key (or revives a tombstoned node). It returns +1 when the live
// count grew, 0 when the key was already live or no node was available.
func (r *rbtreeWL) insert(tx txn.Tx, key uint64) (int, error) {
	root := tx.Read(word(r.meta, 2))
	var parent uint64
	cur := root
	left := false
	for cur != 0 {
		k := r.get(tx, cur, rbKey)
		switch {
		case key == k:
			if r.get(tx, cur, rbLive) == 1 {
				return 0, nil
			}
			r.set(tx, cur, rbLive, 1)
			return 1, nil
		case key < k:
			parent, cur, left = cur, r.get(tx, cur, rbLeft), true
		default:
			parent, cur, left = cur, r.get(tx, cur, rbRight), false
		}
	}
	used := tx.Read(word(r.meta, 3))
	capacity := tx.Read(word(r.meta, 4))
	if used >= capacity {
		return 0, nil
	}
	id := used + 1
	tx.Write(word(r.meta, 3), id)
	r.set(tx, id, rbKey, key)
	r.set(tx, id, rbLive, 1)
	r.set(tx, id, rbColour, rbRed)
	r.set(tx, id, rbLeft, 0)
	r.set(tx, id, rbRight, 0)
	r.set(tx, id, rbParent, parent)
	if parent == 0 {
		tx.Write(word(r.meta, 2), id)
	} else if left {
		r.set(tx, parent, rbLeft, id)
	} else {
		r.set(tx, parent, rbRight, id)
	}
	r.fixInsert(tx, id)
	return 1, nil
}

// fixInsert restores the red-black properties after inserting node z as red.
func (r *rbtreeWL) fixInsert(tx txn.Tx, z uint64) {
	for {
		zp := r.get(tx, z, rbParent)
		if zp == 0 || r.colourOf(tx, zp) == rbBlack {
			break
		}
		zpp := r.get(tx, zp, rbParent)
		if zpp == 0 {
			break
		}
		if r.get(tx, zpp, rbLeft) == zp {
			uncle := r.get(tx, zpp, rbRight)
			if r.colourOf(tx, uncle) == rbRed {
				r.set(tx, zp, rbColour, rbBlack)
				r.set(tx, uncle, rbColour, rbBlack)
				r.set(tx, zpp, rbColour, rbRed)
				z = zpp
				continue
			}
			if r.get(tx, zp, rbRight) == z {
				z = zp
				r.rotateLeft(tx, z)
				zp = r.get(tx, z, rbParent)
				zpp = r.get(tx, zp, rbParent)
			}
			r.set(tx, zp, rbColour, rbBlack)
			r.set(tx, zpp, rbColour, rbRed)
			r.rotateRight(tx, zpp)
		} else {
			uncle := r.get(tx, zpp, rbLeft)
			if r.colourOf(tx, uncle) == rbRed {
				r.set(tx, zp, rbColour, rbBlack)
				r.set(tx, uncle, rbColour, rbBlack)
				r.set(tx, zpp, rbColour, rbRed)
				z = zpp
				continue
			}
			if r.get(tx, zp, rbLeft) == z {
				z = zp
				r.rotateRight(tx, z)
				zp = r.get(tx, z, rbParent)
				zpp = r.get(tx, zp, rbParent)
			}
			r.set(tx, zp, rbColour, rbBlack)
			r.set(tx, zpp, rbColour, rbRed)
			r.rotateLeft(tx, zpp)
		}
	}
	root := tx.Read(word(r.meta, 2))
	if root != 0 {
		r.set(tx, root, rbColour, rbBlack)
	}
}

// remove tombstones the node holding key; it returns -1 when a live key was
// removed.
func (r *rbtreeWL) remove(tx txn.Tx, key uint64) int {
	cur := tx.Read(word(r.meta, 2))
	for cur != 0 {
		k := r.get(tx, cur, rbKey)
		switch {
		case key == k:
			if r.get(tx, cur, rbLive) == 0 {
				return 0
			}
			r.set(tx, cur, rbLive, 0)
			return -1
		case key < k:
			cur = r.get(tx, cur, rbLeft)
		default:
			cur = r.get(tx, cur, rbRight)
		}
	}
	return 0
}

// Next implements Workload.
func (r *rbtreeWL) Next(core int, rng *rand.Rand) *txn.Transaction {
	// The batch operates on one small key window inside one coarse key-range
	// partition (the paper's ~3 KB per-transaction data set). The lock-based
	// designs lock the whole partition (plus partition 0, which covers the
	// tree-wide root pointer and node allocator); the HTM designs conflict
	// only on the tree paths the windows actually share.
	const windows = 8
	keys := make([]uint64, r.opsPerTx)
	inserts := make([]bool, r.opsPerTx)
	part := uint64(rng.Intn(r.parts))
	span := r.keySpace / uint64(r.parts)
	winSpan := span / windows
	if winSpan == 0 {
		winSpan = 1
	}
	base := part*span + uint64(rng.Intn(windows))*winSpan
	for i := range keys {
		keys[i] = base + rng.Uint64()%winSpan + 1
		inserts[i] = rng.Intn(2) == 0
	}
	lockIDs := []uint64{0, 1 + part}
	return &txn.Transaction{
		Label:   "rbtree-batch",
		LockIDs: lockIDs,
		Body: func(tx txn.Tx) error {
			for i, key := range keys {
				if inserts[i] {
					if _, err := r.insert(tx, key); err != nil {
						return err
					}
				} else {
					r.remove(tx, key)
				}
			}
			return nil
		},
	}
}

// Verify implements Workload: binary-search-tree ordering and the red-black
// colouring rules (root black, no red node with a red child, equal black
// height on every root-to-nil path). A torn insertion — a node linked in but
// the fix-up rotations or recolouring only partially applied — violates one
// of these structural properties and is detected here. The global live
// count/sum is deliberately not maintained inside transactions to avoid an
// artificial hot line.
func (r *rbtreeWL) Verify(store *memdev.Store) error {
	dtx := txn.DirectTx{Store: store}
	root := store.ReadWord(word(r.meta, 2))
	if root == 0 {
		return nil
	}
	if r.colourOf(dtx, root) != rbBlack {
		return fmt.Errorf("rbtree: root %d is red", root)
	}
	var liveCount, liveSum uint64
	var walk func(id uint64, lo, hi uint64) (int, error)
	walk = func(id uint64, lo, hi uint64) (int, error) {
		if id == 0 {
			return 1, nil
		}
		if id > store.ReadWord(word(r.meta, 3)) {
			return 0, fmt.Errorf("rbtree: node id %d beyond allocated nodes", id)
		}
		key := r.get(dtx, id, rbKey)
		if key <= lo || (hi != 0 && key >= hi) {
			return 0, fmt.Errorf("rbtree: node %d key %d violates BST range (%d,%d)", id, key, lo, hi)
		}
		colour := r.colourOf(dtx, id)
		left, right := r.get(dtx, id, rbLeft), r.get(dtx, id, rbRight)
		if colour == rbRed {
			if r.colourOf(dtx, left) == rbRed || r.colourOf(dtx, right) == rbRed {
				return 0, fmt.Errorf("rbtree: red node %d has a red child", id)
			}
		}
		if r.get(dtx, id, rbLive) == 1 {
			liveCount++
			liveSum += key
		}
		lh, err := walk(left, lo, key)
		if err != nil {
			return 0, err
		}
		rh, err := walk(right, key, hi)
		if err != nil {
			return 0, err
		}
		if lh != rh {
			return 0, fmt.Errorf("rbtree: node %d has unequal black heights %d/%d", id, lh, rh)
		}
		if colour == rbBlack {
			lh++
		}
		return lh, nil
	}
	if _, err := walk(root, 0, 0); err != nil {
		return err
	}
	_ = liveCount
	_ = liveSum
	return nil
}
