package workloads

import (
	"fmt"
	"math/rand"

	"dhtm/internal/memdev"
	"dhtm/internal/palloc"
	"dhtm/internal/txn"
)

// sdgWL is the "SDG" micro-benchmark: atomic batches of edge insertions and
// deletions in a scalable (bounded-degree) undirected graph held in
// persistent memory; one transaction updates ~3 KB worth of adjacency lists. Its invariants are symmetry of the adjacency
// lists and consistency of the global edge count with the vertex degrees.
//
// Layout:
//
//	meta line:  [edgeCount, vertices, 0...]
//	vertex v:   one cache line: word 0 = degree, words 1..7 = neighbour+1
type sdgWL struct {
	meta       uint64
	vertices   uint64
	numVerts   int
	opsPerTx   int
	partitions int
}

func newSDG() *sdgWL { return &sdgWL{} }

// Name implements Workload.
func (g *sdgWL) Name() string { return "sdg" }

const sdgMaxDegree = 7

// Setup implements Workload.
func (g *sdgWL) Setup(heap *palloc.Heap, p Params) error {
	p = p.Defaults()
	g.numVerts = 16384 // 1 MB adjacency store; one transaction touches ~3 KB
	g.opsPerTx = p.OpsPerTx
	if g.opsPerTx <= 0 {
		g.opsPerTx = 44
	}
	g.partitions = p.Partitions
	g.meta = heap.AllocLines(1)
	g.vertices = heap.AllocLines(g.numVerts)

	// Seed a sparse ring so deletions find edges immediately.
	var edges uint64
	for v := 0; v < g.numVerts; v++ {
		u := (v + 1) % g.numVerts
		if g.setupHasEdge(heap, v, u) {
			continue
		}
		g.setupAddHalfEdge(heap, v, u)
		g.setupAddHalfEdge(heap, u, v)
		edges++
	}
	heap.WriteWord(word(g.meta, 0), edges)
	heap.WriteWord(word(g.meta, 1), uint64(g.numVerts))
	return nil
}

func (g *sdgWL) vertexAddr(v int) uint64 { return line(g.vertices, v) }

func (g *sdgWL) setupHasEdge(heap *palloc.Heap, v, u int) bool {
	base := g.vertexAddr(v)
	deg := heap.ReadWord(word(base, 0))
	for s := 0; s < int(deg); s++ {
		if heap.ReadWord(word(base, 1+s)) == uint64(u)+1 {
			return true
		}
	}
	return false
}

func (g *sdgWL) setupAddHalfEdge(heap *palloc.Heap, v, u int) {
	base := g.vertexAddr(v)
	deg := heap.ReadWord(word(base, 0))
	heap.WriteWord(word(base, 1+int(deg)), uint64(u)+1)
	heap.WriteWord(word(base, 0), deg+1)
}

// partitionOf maps a vertex to its lock partition.
func (g *sdgWL) partitionOf(v int) uint64 {
	return uint64(v * g.partitions / g.numVerts)
}

// Next implements Workload.
func (g *sdgWL) Next(core int, rng *rand.Rand) *txn.Transaction {
	// Every edge of the batch connects vertices of one small window of one
	// coarse partition (the paper's ~3 KB per-transaction data set). The
	// lock-based designs lock the whole partition; the HTM designs only
	// conflict when two cores pick overlapping windows.
	type op struct {
		u, v   int
		insert bool
	}
	const windows = 8
	part := rng.Intn(g.partitions)
	span := g.numVerts / g.partitions
	winSpan := span / windows
	base := part*span + rng.Intn(windows)*winSpan
	ops := make([]op, g.opsPerTx)
	for i := range ops {
		u := base + rng.Intn(winSpan)
		v := base + rng.Intn(winSpan)
		for v == u {
			v = base + rng.Intn(winSpan)
		}
		ops[i] = op{u: u, v: v, insert: rng.Intn(2) == 0}
	}
	lockIDs := []uint64{uint64(part)}

	findNeighbour := func(tx txn.Tx, base uint64, deg uint64, target uint64) int {
		for s := 0; s < int(deg); s++ {
			if tx.Read(word(base, 1+s)) == target {
				return s
			}
		}
		return -1
	}
	removeNeighbour := func(tx txn.Tx, base uint64, deg uint64, slot int) {
		last := tx.Read(word(base, int(deg)))
		tx.Write(word(base, 1+slot), last)
		tx.Write(word(base, int(deg)), 0)
		tx.Write(word(base, 0), deg-1)
	}

	return &txn.Transaction{
		Label:   "sdg-batch",
		LockIDs: lockIDs,
		Body: func(tx txn.Tx) error {
			for _, o := range ops {
				ub, vb := g.vertexAddr(o.u), g.vertexAddr(o.v)
				udeg := tx.Read(word(ub, 0))
				vdeg := tx.Read(word(vb, 0))
				uslot := findNeighbour(tx, ub, udeg, uint64(o.v)+1)
				if o.insert {
					if uslot >= 0 || udeg >= sdgMaxDegree || vdeg >= sdgMaxDegree {
						continue
					}
					tx.Write(word(ub, 1+int(udeg)), uint64(o.v)+1)
					tx.Write(word(ub, 0), udeg+1)
					tx.Write(word(vb, 1+int(vdeg)), uint64(o.u)+1)
					tx.Write(word(vb, 0), vdeg+1)
				} else {
					if uslot < 0 {
						continue
					}
					vslot := findNeighbour(tx, vb, vdeg, uint64(o.u)+1)
					if vslot < 0 {
						return fmt.Errorf("sdg: asymmetric edge %d-%d observed", o.u, o.v)
					}
					removeNeighbour(tx, ub, udeg, uslot)
					removeNeighbour(tx, vb, vdeg, vslot)
				}
			}
			return nil
		},
	}
}

// Verify implements Workload. The global edge count is intentionally not
// maintained inside transactions (it would be an artificial hot line that
// serialises every transaction); symmetry of the adjacency lists is the
// atomicity invariant — a torn edge insertion or deletion leaves one
// half-edge behind and is detected here.
func (g *sdgWL) Verify(store *memdev.Store) error {
	var degreeSum uint64
	for v := 0; v < g.numVerts; v++ {
		base := g.vertexAddr(v)
		deg := store.ReadWord(word(base, 0))
		if deg > sdgMaxDegree {
			return fmt.Errorf("sdg: vertex %d degree %d exceeds maximum", v, deg)
		}
		degreeSum += deg
		for s := 0; s < int(deg); s++ {
			nb := store.ReadWord(word(base, 1+s))
			if nb == 0 || nb > uint64(g.numVerts) {
				return fmt.Errorf("sdg: vertex %d has invalid neighbour slot %d", v, s)
			}
			u := int(nb - 1)
			// Symmetry: u must also list v.
			ub := g.vertexAddr(u)
			udeg := store.ReadWord(word(ub, 0))
			found := false
			for t := 0; t < int(udeg); t++ {
				if store.ReadWord(word(ub, 1+t)) == uint64(v)+1 {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("sdg: edge %d-%d not symmetric", v, u)
			}
		}
	}
	if degreeSum%2 != 0 {
		return fmt.Errorf("sdg: odd degree sum %d implies a dangling half-edge", degreeSum)
	}
	return nil
}
