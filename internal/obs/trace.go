package obs

import "time"

// Phase indexes one stage of a simulation cell's execution. The phases map
// the README's data flow: clone the post-setup snapshot, (on a cache miss)
// run workload Setup, drive the measured run, verify invariants (crash
// tests), and persist the result record.
type Phase uint8

const (
	// PhaseClone is copy-on-write cloning of the post-setup snapshot image
	// plus environment construction on the clone.
	PhaseClone Phase = iota
	// PhaseSetup is snapshot-cache resolution — effectively zero on a hit,
	// the workload's full Setup on a miss.
	PhaseSetup
	// PhaseRun is the measured simulation itself.
	PhaseRun
	// PhaseVerify is workload invariant verification (crash-test oracles).
	PhaseVerify
	// PhaseStoreWrite is persisting the result record to the result store.
	PhaseStoreWrite

	// NumPhases bounds the phase index space.
	NumPhases
)

var phaseNames = [NumPhases]string{"clone", "setup", "run", "verify", "store_write"}

func (p Phase) String() string {
	if p < NumPhases {
		return phaseNames[p]
	}
	return "unknown"
}

// PhaseNames lists every phase name in execution order (the label values of
// the dhtm_cell_phase_seconds histogram family).
func PhaseNames() []string { return phaseNames[:] }

// CellTrace accumulates one cell's per-phase wall-clock breakdown. It is a
// fixed array — building one is a single small allocation and recording a
// phase is one add — and is written by the one goroutine executing the cell,
// then read after completion (the runner's progress callback and serve's
// per-job aggregation), so it needs no internal locking.
type CellTrace struct {
	ns [NumPhases]int64
}

// Add accumulates d into phase p.
func (t *CellTrace) Add(p Phase, d time.Duration) {
	if t == nil || p >= NumPhases {
		return
	}
	t.ns[p] += int64(d)
}

// Get returns the accumulated duration of phase p.
func (t *CellTrace) Get(p Phase) time.Duration {
	if t == nil || p >= NumPhases {
		return 0
	}
	return time.Duration(t.ns[p])
}

// Each calls f for every phase with a non-zero duration, in execution order.
func (t *CellTrace) Each(f func(Phase, time.Duration)) {
	if t == nil {
		return
	}
	for p := Phase(0); p < NumPhases; p++ {
		if t.ns[p] != 0 {
			f(p, time.Duration(t.ns[p]))
		}
	}
}

// PhaseHistograms is a pre-resolved handle set for the per-cell phase
// histogram family, so observing a completed trace is label-lookup-free.
type PhaseHistograms struct {
	h [NumPhases]*Histogram
}

// CellPhaseHistograms resolves the dhtm_cell_phase_seconds family in r.
func CellPhaseHistograms(r *Registry) *PhaseHistograms {
	ph := &PhaseHistograms{}
	for p := Phase(0); p < NumPhases; p++ {
		ph.h[p] = r.Histogram("dhtm_cell_phase_seconds",
			"Per-cell execution phase durations in seconds (clone, setup, run, verify, store_write).",
			DurationBuckets, L("phase", p.String()))
	}
	return ph
}

// Observe records a phase duration directly.
func (ph *PhaseHistograms) Observe(p Phase, d time.Duration) {
	if p < NumPhases {
		ph.h[p].Observe(d.Seconds())
	}
}

// ObserveTrace folds a completed cell trace into the histograms.
func (ph *PhaseHistograms) ObserveTrace(t *CellTrace) {
	t.Each(func(p Phase, d time.Duration) { ph.h[p].Observe(d.Seconds()) })
}
