// Package obs is the repo's telemetry plane: a dependency-free metrics
// registry (counters, gauges, histograms with fixed exponential buckets)
// that renders the Prometheus text exposition format, plus a lightweight
// per-cell phase tracer (trace.go).
//
// Design constraints, in order:
//
//  1. The increment path is hot — runner cells, store lookups and snapshot
//     clones fire it thousands of times per campaign — so Counter.Add,
//     Gauge.Set/Add and Histogram.Observe are lock-free atomics with zero
//     allocations (pinned by TestZeroAllocHotPath and the benchmarks).
//  2. Registration is idempotent: asking a registry for an already-registered
//     (name, labels) pair returns the existing handle, so any package can
//     resolve its handles at init without coordinating ownership. Conflicting
//     re-registration (same name, different kind or buckets) panics — that is
//     a programming error, not a runtime condition.
//  3. Exposition is deterministic: families sort by name, series by label
//     signature, so /metrics output is diffable and golden-testable.
//
// The process-wide Default registry is what dhtm-serve exposes at /metrics
// and the CLIs dump with -metrics; subsystems that need isolated counters
// (per-store, per-cache, tests) create their own Registry.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Default is the process-wide registry. Package-level instrumentation
// (runner cells, crashtest points, the snapshot Default cache) registers
// here; dhtm-serve renders it at GET /metrics.
var Default = NewRegistry()

// Label is one name="value" pair on a metric series.
type Label struct {
	Key, Value string
}

// L is shorthand for building a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// kind discriminates the metric families.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// series is one registered metric instance (a family member with a concrete
// label set).
type series struct {
	labels  []Label
	sig     string // rendered label signature, the dedup + sort key
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// family groups every series registered under one metric name.
type family struct {
	name    string
	help    string
	kind    kind
	buckets []float64 // histogram families only
	series  []*series
}

// Registry holds metric families and renders them. Safe for concurrent use;
// the handles it returns are independent of the registry lock.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter returns the counter registered under name with exactly these
// labels, registering it on first use. A counter is a monotone uint64.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.register(name, help, kindCounter, nil, labels)
	return s.counter
}

// Gauge returns the gauge registered under name with exactly these labels,
// registering it on first use. A gauge is a float64 that may go up and down.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.register(name, help, kindGauge, nil, labels)
	return s.gauge
}

// Histogram returns the histogram registered under name with exactly these
// labels, registering it on first use. buckets are the ascending upper
// bounds (exclusive of +Inf, which is implicit); every series of a family
// shares the family's buckets — the buckets of the first registration win,
// and a later registration with different buckets panics.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	s := r.register(name, help, kindHistogram, buckets, labels)
	return s.hist
}

// register resolves or creates the (name, labels) series.
func (r *Registry) register(name, help string, k kind, buckets []float64, labels []Label) *series {
	if name == "" {
		panic("obs: metric name must not be empty")
	}
	sig := labelSignature(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		if k == kindHistogram {
			buckets = checkBuckets(name, buckets)
		}
		f = &family{name: name, help: help, kind: k, buckets: buckets}
		r.families[name] = f
	}
	if f.kind != k {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s, was %s", name, k, f.kind))
	}
	if k == kindHistogram && buckets != nil && !sameBuckets(f.buckets, buckets) {
		panic(fmt.Sprintf("obs: histogram %q re-registered with different buckets", name))
	}
	for _, s := range f.series {
		if s.sig == sig {
			return s
		}
	}
	s := &series{labels: append([]Label(nil), labels...), sig: sig}
	switch k {
	case kindCounter:
		s.counter = &Counter{}
	case kindGauge:
		s.gauge = &Gauge{}
	case kindHistogram:
		s.hist = newHistogram(f.buckets)
	}
	f.series = append(f.series, s)
	return s
}

// checkBuckets validates histogram bounds at registration time so Observe
// never has to.
func checkBuckets(name string, buckets []float64) []float64 {
	if len(buckets) == 0 {
		panic(fmt.Sprintf("obs: histogram %q needs at least one bucket bound", name))
	}
	for i, b := range buckets {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic(fmt.Sprintf("obs: histogram %q bucket %d is not finite", name, i))
		}
		if i > 0 && b <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %q buckets not strictly ascending at %d", name, i))
		}
	}
	return append([]float64(nil), buckets...)
}

func sameBuckets(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// labelSignature renders labels in key-sorted order — the series identity
// within a family and its exposition order.
func labelSignature(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// Counter is a monotone counter. The zero value is usable but callers should
// obtain counters from a Registry so they render.
type Counter struct {
	n atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.n.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n.Load() }

// Gauge is a float64 that can move both ways, stored as atomic bits.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Inc adds one; Dec subtracts one.
func (g *Gauge) Inc() { g.Add(1) }
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets and tracks their sum.
// Observe is lock-free and allocation-free; the per-bucket counts are
// non-cumulative internally and rendered cumulatively (le-style) at
// exposition.
type Histogram struct {
	upper  []float64 // ascending upper bounds; the final +Inf bucket is counts[len(upper)]
	counts []atomic.Uint64
	sum    Gauge // float64 bits, CAS-added
}

func newHistogram(upper []float64) *Histogram {
	return &Histogram{upper: upper, counts: make([]atomic.Uint64, len(upper)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
}

// ObserveSince records the seconds elapsed since start — the idiomatic call
// for duration histograms.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// Quantile returns an estimate of the q-quantile (0 <= q <= 1) from the
// bucket counts, using the bucket upper bound as the estimate — the same
// resolution a Prometheus histogram_quantile has. It exists for in-process
// summaries (CLI exit lines, the dashboard's p99); exposition carries the
// raw buckets.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.Count()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i := range h.counts {
		seen += h.counts[i].Load()
		if seen >= rank {
			if i < len(h.upper) {
				return h.upper[i]
			}
			return math.Inf(1)
		}
	}
	return math.Inf(1)
}

// ExpBuckets returns n strictly ascending bucket bounds starting at start
// and growing by factor: start, start*factor, ..., start*factor^(n-1).
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DurationBuckets covers 100µs to ~52s doubling per bucket — the range of a
// simulation cell, a job, or an HTTP request.
var DurationBuckets = ExpBuckets(100e-6, 2, 20)

// IOBuckets covers 2µs to ~32s in ×4 steps — the range of a single store
// read or write, from page-cache hit to sick disk.
var IOBuckets = ExpBuckets(2e-6, 4, 13)
