package obs

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestExpositionGolden pins the Prometheus text exposition format: family
// ordering, label rendering, cumulative histogram buckets and float
// formatting. Regenerate with -update after an intentional format change.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("dhtm_test_requests_total", "Requests served.", L("handler", "jobs"), L("code", "200")).Add(3)
	r.Counter("dhtm_test_requests_total", "Requests served.", L("handler", "jobs"), L("code", "404")).Inc()
	r.Counter("dhtm_test_cells_total", "Cells executed.").Add(7)
	r.Gauge("dhtm_test_queue_depth", "Jobs waiting.").Set(2)
	r.Gauge("dhtm_test_ratio", "A fractional gauge.").Set(0.375)
	h := r.Histogram("dhtm_test_latency_seconds", "Request latency.", []float64{0.001, 0.01, 0.1, 1})
	for _, v := range []float64{0.0005, 0.002, 0.002, 0.05, 5} {
		h.Observe(v)
	}
	r.Histogram("dhtm_test_latency_seconds", "Request latency.", []float64{0.001, 0.01, 0.1, 1}, L("phase", "run")).Observe(0.02)

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "expo.golden.txt")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestHistogramBucketBoundaries is the bucket-boundary table test: values on
// and around each exponential bound must land in the right bucket, with the
// Prometheus "le" convention (bounds are inclusive upper limits).
func TestHistogramBucketBoundaries(t *testing.T) {
	bounds := ExpBuckets(1e-4, 2, 4) // 0.0001 0.0002 0.0004 0.0008
	cases := []struct {
		v      float64
		bucket int // index into counts; len(bounds) = +Inf
	}{
		{0, 0},
		{5e-5, 0},
		{1e-4, 0},      // exactly on the first bound: inclusive
		{1.0001e-4, 1}, // just past it
		{2e-4, 1},      // on the second bound
		{3e-4, 2},      // between bounds
		{4e-4, 2},      // on the third bound
		{8e-4, 3},      // on the last finite bound
		{8.0001e-4, 4}, // past every bound: +Inf
		{math.Inf(1), 4},
	}
	for _, tc := range cases {
		h := newHistogram(bounds)
		h.Observe(tc.v)
		for i := range h.counts {
			want := uint64(0)
			if i == tc.bucket {
				want = 1
			}
			if got := h.counts[i].Load(); got != want {
				t.Errorf("Observe(%g): bucket %d = %d, want %d", tc.v, i, got, want)
			}
		}
	}
}

// TestExpBuckets checks the generator itself against a hand-computed table.
func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(100e-6, 2, 5)
	want := []float64{100e-6, 200e-6, 400e-6, 800e-6, 1600e-6}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("bucket %d = %g, want %g", i, got[i], want[i])
		}
	}
}

// TestConcurrentIncrements hammers one counter, gauge and histogram from
// many goroutines and checks nothing is lost. CI runs this package under
// -race, which is the point: the hot path must be provably data-race-free.
func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "c")
	g := r.Gauge("g", "g")
	h := r.Histogram("h_seconds", "h", DurationBuckets)
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%10) * 1e-3)
				// Concurrent registration of an existing series must return
				// the same handle, not a fresh one.
				if r.Counter("c_total", "c") != c {
					panic("duplicate counter handle")
				}
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != workers*perWorker {
		t.Fatalf("gauge = %g, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

// TestZeroAllocHotPath enforces the package's core contract in a test (the
// benchmarks report the same numbers but do not fail the build).
func TestZeroAllocHotPath(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "c")
	g := r.Gauge("g", "g")
	h := r.Histogram("h_seconds", "h", DurationBuckets)
	tr := &CellTrace{}
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Errorf("Counter.Inc allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Add(2.5) }); n != 0 {
		t.Errorf("Gauge.Add allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(0.0042) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { tr.Add(PhaseRun, time.Millisecond) }); n != 0 {
		t.Errorf("CellTrace.Add allocates %v/op, want 0", n)
	}
}

// TestRegistryConflictsPanic pins the fail-fast behavior on programming
// errors: kind and bucket conflicts panic instead of silently aliasing.
func TestRegistryConflictsPanic(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	r := NewRegistry()
	r.Counter("x_total", "x")
	expectPanic("kind conflict", func() { r.Gauge("x_total", "x") })
	r.Histogram("h_seconds", "h", []float64{1, 2})
	expectPanic("bucket conflict", func() { r.Histogram("h_seconds", "h", []float64{1, 2, 3}) })
	expectPanic("empty name", func() { r.Counter("", "x") })
	expectPanic("bad buckets", func() { r.Histogram("h2_seconds", "h", []float64{2, 1}) })
}

// TestQuantile sanity-checks the in-process quantile estimate.
func TestQuantile(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4, 8})
	for i := 0; i < 99; i++ {
		h.Observe(1.5) // bucket le=2
	}
	h.Observe(6) // bucket le=8
	if got := h.Quantile(0.5); got != 2 {
		t.Fatalf("p50 = %g, want 2", got)
	}
	if got := h.Quantile(0.999); got != 8 {
		t.Fatalf("p99.9 = %g, want 8", got)
	}
	if got := (&Histogram{}).Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %g, want 0", got)
	}
}
