package obs

import (
	"bufio"
	"io"
	"net/http"
	"sort"
	"strconv"
)

// WriteText renders the registry in the Prometheus text exposition format
// (version 0.0.4): families sorted by name, series sorted by label
// signature, histogram buckets cumulative with the conventional _bucket/
// _sum/_count triplet. The output is deterministic for a fixed registry
// state, so it is diffable and golden-testable.
func (r *Registry) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.snapshot() {
		bw.WriteString("# HELP ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.help)
		bw.WriteString("\n# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.kind.String())
		bw.WriteByte('\n')
		for _, s := range f.series {
			switch f.kind {
			case kindCounter:
				writeSample(bw, f.name, "", s.sig, "", formatUint(s.counter.Value()))
			case kindGauge:
				writeSample(bw, f.name, "", s.sig, "", formatFloat(s.gauge.Value()))
			case kindHistogram:
				h := s.hist
				var cum uint64
				for i, ub := range h.upper {
					cum += h.counts[i].Load()
					writeSample(bw, f.name, "_bucket", s.sig, `le="`+formatFloat(ub)+`"`, formatUint(cum))
				}
				cum += h.counts[len(h.upper)].Load()
				writeSample(bw, f.name, "_bucket", s.sig, `le="+Inf"`, formatUint(cum))
				writeSample(bw, f.name, "_sum", s.sig, "", formatFloat(h.Sum()))
				writeSample(bw, f.name, "_count", s.sig, "", formatUint(cum))
			}
		}
	}
	return bw.Flush()
}

// snapshot copies the family table under the lock so rendering happens
// outside it. Series values are read live (atomics), which is the usual
// Prometheus consistency model: a scrape is not a transaction.
func (r *Registry) snapshot() []*family {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		ff := &family{name: f.name, help: f.help, kind: f.kind, buckets: f.buckets}
		ff.series = append(ff.series, f.series...)
		fams = append(fams, ff)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		sort.Slice(f.series, func(i, j int) bool { return f.series[i].sig < f.series[j].sig })
	}
	return fams
}

// writeSample writes one exposition line: name[suffix]{labels[,extra]} value.
func writeSample(bw *bufio.Writer, name, suffix, sig, extra, value string) {
	bw.WriteString(name)
	bw.WriteString(suffix)
	if sig != "" || extra != "" {
		bw.WriteByte('{')
		bw.WriteString(sig)
		if sig != "" && extra != "" {
			bw.WriteByte(',')
		}
		bw.WriteString(extra)
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(value)
	bw.WriteByte('\n')
}

func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }

// formatFloat renders floats the way Prometheus clients do: shortest
// round-trip representation, integers without a decimal point.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns an http.Handler serving the registry as a Prometheus
// scrape endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteText(w)
	})
}
