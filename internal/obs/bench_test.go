package obs

import (
	"testing"
	"time"
)

// The benchmarks below pin the tentpole claim: the hot increment path is
// zero-alloc. Run with: go test -bench . -benchmem ./internal/obs

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_counter_total", "bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncParallel(b *testing.B) {
	c := NewRegistry().Counter("bench_counter_total", "bench")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkGaugeAdd(b *testing.B) {
	g := NewRegistry().Gauge("bench_gauge", "bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Add(1.5)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "bench", DurationBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) * 1e-4)
	}
}

func BenchmarkCellTraceAdd(b *testing.B) {
	tr := &CellTrace{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Add(PhaseRun, time.Microsecond)
	}
}
