// Package cache implements the set-associative cache arrays used for both the
// private L1 data caches and the shared last-level cache (LLC). L1 lines carry
// the transactional read/write bits of an RTM-like HTM; LLC lines additionally
// carry the directory state (owner, sharer vector, dirty bit) and the
// "sticky" marker DHTM uses for write-set lines that overflowed from an L1.
package cache

import (
	"fmt"

	"dhtm/internal/memdev"
)

// State is the MESI-style coherence state recorded for a line. The simulator
// collapses E into M (an E line that is written becomes M silently, exactly as
// in MESI), so only three states are needed.
type State uint8

const (
	// Invalid marks an unused way.
	Invalid State = iota
	// Shared means one or more cores may hold a read-only copy.
	Shared
	// Modified means a single core owns the line with write permission.
	Modified
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Modified:
		return "M"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// NoOwner is the directory owner value meaning "no owning core".
const NoOwner = -1

// Line is one cache way.
type Line struct {
	Addr  uint64 // line-aligned address (the full address doubles as the tag)
	State State
	Dirty bool

	// Transactional metadata (meaningful in L1s).
	R bool // read inside the current transaction
	W bool // written inside the current transaction

	// gen is the cache generation the line was installed in. A line whose gen
	// trails the cache's current generation is stale — logically invalid —
	// which lets Clear be O(1) (bump the generation) instead of sweeping
	// every way. The field packs into existing padding, so Line does not grow.
	gen uint32

	// Directory metadata (meaningful in the LLC).
	Owner   int    // core owning the line in Modified state, or NoOwner
	Sharers uint64 // bitmask of cores holding a Shared copy
	Sticky  bool   // DHTM: data overflowed from the owner's L1; dir state kept stale

	Data memdev.Line

	lru uint64
}

// Valid reports whether the way holds a line.
func (l *Line) Valid() bool { return l.State != Invalid }

// Reset clears the way back to Invalid.
func (l *Line) Reset() {
	*l = Line{Owner: NoOwner}
}

// HasSharer reports whether core is in the sharer vector.
func (l *Line) HasSharer(core int) bool { return l.Sharers&(1<<uint(core)) != 0 }

// AddSharer adds core to the sharer vector.
func (l *Line) AddSharer(core int) { l.Sharers |= 1 << uint(core) }

// RemoveSharer removes core from the sharer vector.
func (l *Line) RemoveSharer(core int) { l.Sharers &^= 1 << uint(core) }

// Cache is a set-associative array of Lines with LRU replacement.
type Cache struct {
	sets     [][]Line
	numSets  int
	ways     int
	lineSize uint64
	tick     uint64
	// gen is the current generation; lines with an older gen are stale (see
	// Line.gen). Stale ways are lazily reset the next time Victim considers
	// them, so no caller ever observes pre-Clear contents.
	gen uint32
}

// New builds a cache of sizeBytes capacity with the given associativity and
// line size. sizeBytes must be an exact multiple of ways*lineSize.
func New(sizeBytes, ways, lineSize int) *Cache {
	if sizeBytes <= 0 || ways <= 0 || lineSize <= 0 || sizeBytes%(ways*lineSize) != 0 {
		panic(fmt.Sprintf("cache: invalid geometry size=%d ways=%d line=%d", sizeBytes, ways, lineSize))
	}
	numSets := sizeBytes / (ways * lineSize)
	c := &Cache{
		sets:     make([][]Line, numSets),
		numSets:  numSets,
		ways:     ways,
		lineSize: uint64(lineSize),
	}
	// All ways live in one contiguous slab; each set is a sub-slice. This
	// keeps construction at two allocations regardless of geometry.
	slab := make([]Line, numSets*ways)
	for i := range slab {
		slab[i].Owner = NoOwner
	}
	for i := range c.sets {
		c.sets[i] = slab[i*ways : (i+1)*ways : (i+1)*ways]
	}
	return c
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.numSets }

// LineSize returns the line size in bytes.
func (c *Cache) LineSize() int { return int(c.lineSize) }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// Lines returns the total capacity in lines.
func (c *Cache) Lines() int { return c.numSets * c.ways }

// setIndex maps a line address to its set.
func (c *Cache) setIndex(lineAddr uint64) int {
	return int((lineAddr / c.lineSize) % uint64(c.numSets))
}

// Align returns the line-aligned address containing addr.
func (c *Cache) Align(addr uint64) uint64 { return addr &^ (c.lineSize - 1) }

// Lookup returns the line holding addr, bumping its LRU age, or nil on a miss.
func (c *Cache) Lookup(addr uint64) *Line {
	l := c.Peek(addr)
	if l != nil {
		c.tick++
		l.lru = c.tick
	}
	return l
}

// live reports whether the way holds a current-generation line: valid and
// not invalidated by an O(1) Clear.
func (c *Cache) live(l *Line) bool {
	return l.State != Invalid && l.gen == c.gen
}

// Peek returns the line holding addr without disturbing LRU state.
func (c *Cache) Peek(addr uint64) *Line {
	la := c.Align(addr)
	set := c.sets[c.setIndex(la)]
	for i := range set {
		if c.live(&set[i]) && set[i].Addr == la {
			return &set[i]
		}
	}
	return nil
}

// Victim returns the way that an insertion of addr would evict: an invalid
// way if one exists, otherwise the LRU way of the set. It never returns nil.
// The returned pointer aliases cache storage; callers handle the old contents
// (write-back, overflow, abort) and may then reuse the way via PlaceAt.
func (c *Cache) Victim(addr uint64) *Line {
	la := c.Align(addr)
	set := c.sets[c.setIndex(la)]
	var victim *Line
	for i := range set {
		if !c.live(&set[i]) {
			// An unused or stale way. Reset stale contents here so callers
			// inspecting the victim (write-back decisions) see an invalid
			// way, exactly as after a sweeping Clear.
			set[i].Reset()
			return &set[i]
		}
		if victim == nil || set[i].lru < victim.lru {
			victim = &set[i]
		}
	}
	return victim
}

// PlaceAt installs a new line for addr in the given way (obtained from
// Victim), resetting all metadata and marking it most recently used.
func (c *Cache) PlaceAt(way *Line, addr uint64, state State, data memdev.Line) *Line {
	way.Reset()
	way.Addr = c.Align(addr)
	way.State = state
	way.Data = data
	way.gen = c.gen
	c.tick++
	way.lru = c.tick
	return way
}

// Invalidate drops the line containing addr if present.
func (c *Cache) Invalidate(addr uint64) {
	if l := c.Peek(addr); l != nil {
		l.Reset()
	}
}

// ForEach visits every valid line. The callback may mutate the line but must
// not invalidate other lines.
func (c *Cache) ForEach(f func(*Line)) {
	for s := range c.sets {
		for w := range c.sets[s] {
			if c.live(&c.sets[s][w]) {
				f(&c.sets[s][w])
			}
		}
	}
}

// CountIf returns the number of valid lines satisfying pred.
func (c *Cache) CountIf(pred func(*Line) bool) int {
	n := 0
	c.ForEach(func(l *Line) {
		if pred(l) {
			n++
		}
	})
	return n
}

// Clear invalidates every line (used to model a crash: caches are volatile,
// and pooled caches are cleared before reuse). It is O(1): the generation
// counter is bumped and stale ways are lazily reset as Victim reuses them.
func (c *Cache) Clear() {
	c.gen++
	if c.gen == 0 {
		// Generation counter wrapped (after 2^32 clears): sweep so ancient
		// gen-0 lines cannot alias the fresh generation, then restart at 1.
		for s := range c.sets {
			for w := range c.sets[s] {
				c.sets[s][w].Reset()
			}
		}
		c.gen = 1
	}
}

// ReadWord returns the word at addr from a line already present; it panics if
// the line is absent, which indicates a simulator bug rather than a program
// error.
func (c *Cache) ReadWord(addr uint64) uint64 {
	l := c.Peek(addr)
	if l == nil {
		panic(fmt.Sprintf("cache: ReadWord on absent line %#x", addr))
	}
	return l.Data[int(addr%c.lineSize)/8]
}

// WriteWord updates the word at addr in a line already present; it panics if
// the line is absent.
func (c *Cache) WriteWord(addr uint64, val uint64) {
	l := c.Peek(addr)
	if l == nil {
		panic(fmt.Sprintf("cache: WriteWord on absent line %#x", addr))
	}
	l.Data[int(addr%c.lineSize)/8] = val
}
