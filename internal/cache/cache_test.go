package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dhtm/internal/memdev"
)

func newSmall() *Cache { return New(4*1024, 4, 64) } // 16 sets, 4 ways

// TestInsertLookup checks the basic place/lookup cycle.
func TestInsertLookup(t *testing.T) {
	c := newSmall()
	way := c.Victim(0x1000)
	if way.Valid() {
		t.Fatalf("victim in an empty cache is valid")
	}
	line := c.PlaceAt(way, 0x1010, Shared, memdev.Line{1, 2, 3})
	if line.Addr != 0x1000 {
		t.Fatalf("placed line address %#x, want line-aligned 0x1000", line.Addr)
	}
	got := c.Lookup(0x1038)
	if got == nil || got.Data[0] != 1 {
		t.Fatalf("lookup of another word in the same line failed")
	}
	if c.Lookup(0x2000) != nil {
		t.Fatalf("lookup of an absent line hit")
	}
}

// TestVictimPrefersInvalidThenLRU checks replacement policy.
func TestVictimPrefersInvalidThenLRU(t *testing.T) {
	c := New(4*64, 4, 64) // a single set with 4 ways
	addrs := []uint64{0x0, 0x1000, 0x2000, 0x3000}
	for _, a := range addrs {
		c.PlaceAt(c.Victim(a), a, Modified, memdev.Line{})
	}
	// Touch everything except 0x1000 so it becomes LRU.
	c.Lookup(0x0)
	c.Lookup(0x2000)
	c.Lookup(0x3000)
	v := c.Victim(0x4000)
	if !v.Valid() || v.Addr != 0x1000 {
		t.Fatalf("victim is %#x, want the LRU line 0x1000", v.Addr)
	}
}

// TestInvalidateAndClear checks invalidation paths.
func TestInvalidateAndClear(t *testing.T) {
	c := newSmall()
	c.PlaceAt(c.Victim(0x40), 0x40, Modified, memdev.Line{9})
	c.Invalidate(0x40)
	if c.Lookup(0x40) != nil {
		t.Fatalf("line still present after Invalidate")
	}
	c.PlaceAt(c.Victim(0x80), 0x80, Shared, memdev.Line{})
	c.Clear()
	if n := c.CountIf(func(*Line) bool { return true }); n != 0 {
		t.Fatalf("%d lines survive Clear", n)
	}
}

// TestWordAccessors checks ReadWord/WriteWord on present lines.
func TestWordAccessors(t *testing.T) {
	c := newSmall()
	c.PlaceAt(c.Victim(0x100), 0x100, Modified, memdev.Line{})
	c.WriteWord(0x118, 77)
	if got := c.ReadWord(0x118); got != 77 {
		t.Fatalf("ReadWord = %d, want 77", got)
	}
}

// TestSharerVector checks the directory bitmap helpers.
func TestSharerVector(t *testing.T) {
	var l Line
	l.AddSharer(3)
	l.AddSharer(5)
	if !l.HasSharer(3) || !l.HasSharer(5) || l.HasSharer(4) {
		t.Fatalf("sharer vector wrong: %b", l.Sharers)
	}
	l.RemoveSharer(3)
	if l.HasSharer(3) {
		t.Fatalf("sharer 3 still present after removal")
	}
}

// TestPropertyCapacityRespected: no matter the insertion sequence, the number
// of valid lines never exceeds the capacity, and a just-inserted line is
// always found until something else in its set evicts it.
func TestPropertyCapacityRespected(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := New(2*1024, 2, 64) // 16 sets, 2 ways
		for _, a := range addrs {
			addr := uint64(a) * 64
			way := c.Victim(addr)
			c.PlaceAt(way, addr, Shared, memdev.Line{uint64(a)})
			if c.Peek(addr) == nil {
				return false
			}
			if c.CountIf(func(*Line) bool { return true }) > c.Lines() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Fatal(err)
	}
}

// TestGenerationClear checks the O(1) Clear invariants: stale lines are
// unobservable through every read path, Victim hands back stale ways as
// invalid (so write-back decisions see a post-crash cache), and lines placed
// after a Clear behave exactly as in a freshly built cache — including when
// the pre-Clear contents aliased the same addresses.
func TestGenerationClear(t *testing.T) {
	c := New(4*64, 4, 64) // a single set with 4 ways
	addrs := []uint64{0x0, 0x1000, 0x2000, 0x3000}
	for i, a := range addrs {
		l := c.PlaceAt(c.Victim(a), a, Modified, memdev.Line{uint64(i) + 1})
		l.Dirty = true
	}
	c.Clear()

	if c.Peek(0x1000) != nil || c.Lookup(0x2000) != nil {
		t.Fatalf("stale line visible after Clear")
	}
	if n := c.CountIf(func(*Line) bool { return true }); n != 0 {
		t.Fatalf("%d stale lines counted after Clear", n)
	}
	c.ForEach(func(l *Line) { t.Fatalf("ForEach visited stale line %#x", l.Addr) })

	// Victim must treat every stale way as invalid and return it reset, so a
	// caller checking Valid()/Dirty performs no bogus write-back.
	v := c.Victim(0x0)
	if v.Valid() || v.Dirty {
		t.Fatalf("victim after Clear is %+v, want a reset invalid way", v)
	}

	// Refill the same set, re-using addresses from before the Clear: old data
	// must never resurface and capacity must be fully available.
	for i, a := range addrs {
		c.PlaceAt(c.Victim(a), a, Shared, memdev.Line{uint64(i) + 100})
	}
	for i, a := range addrs {
		l := c.Lookup(a)
		if l == nil || l.Data[0] != uint64(i)+100 || l.Dirty {
			t.Fatalf("line %#x after refill = %+v, want fresh contents", a, l)
		}
	}

	// Many clear/refill rounds stay consistent (the generation just climbs).
	for round := 0; round < 1000; round++ {
		c.Clear()
		if c.Peek(0x1000) != nil {
			t.Fatalf("round %d: stale hit", round)
		}
		c.PlaceAt(c.Victim(0x1000), 0x1000, Modified, memdev.Line{uint64(round)})
		if got := c.ReadWord(0x1000); got != uint64(round) {
			t.Fatalf("round %d: read %d", round, got)
		}
	}
}
