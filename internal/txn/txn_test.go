package txn

import (
	"errors"
	"testing"

	"dhtm/internal/config"
	"dhtm/internal/memdev"
	"dhtm/internal/stats"
)

// newTestStore returns a fresh persistent-memory image for DirectTx tests.
func newTestStore() *memdev.Store { return memdev.NewStore() }

// TestAttemptNormalCompletion checks bodies that finish (with and without an
// application error).
func TestAttemptNormalCompletion(t *testing.T) {
	d := DirectTx{Store: newTestStore()}
	err, ok, _ := Attempt(func(tx Tx) error {
		tx.Write(0x100, 7)
		if tx.Read(0x100) != 7 {
			t.Errorf("DirectTx did not read back its write")
		}
		return nil
	}, d)
	if err != nil || !ok {
		t.Fatalf("Attempt of a clean body: err=%v ok=%v", err, ok)
	}
	wantErr := errors.New("application abort")
	err, ok, _ = Attempt(func(Tx) error { return wantErr }, d)
	if !ok || !errors.Is(err, wantErr) {
		t.Fatalf("application error not propagated: err=%v ok=%v", err, ok)
	}
}

// TestAttemptCatchesHardwareAborts checks AbortNow unwinds into a reason.
func TestAttemptCatchesHardwareAborts(t *testing.T) {
	d := DirectTx{Store: newTestStore()}
	err, ok, reason := Attempt(func(Tx) error {
		AbortNow(stats.AbortLLCCapacity)
		return nil
	}, d)
	if ok || err != nil || reason != stats.AbortLLCCapacity {
		t.Fatalf("hardware abort not captured: ok=%v err=%v reason=%v", ok, err, reason)
	}
}

// TestAttemptDoesNotSwallowRealPanics keeps genuine bugs visible.
func TestAttemptDoesNotSwallowRealPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("a non-abort panic was swallowed")
		}
	}()
	_, _, _ = Attempt(func(Tx) error { panic("simulator bug") }, DirectTx{Store: newTestStore()})
}

// TestBackoffGrowsAndCaps checks the retry backoff schedule.
func TestBackoffGrowsAndCaps(t *testing.T) {
	cfg := config.Default()
	if Backoff(cfg, 1) <= Backoff(cfg, 0) {
		t.Fatalf("backoff does not grow")
	}
	if Backoff(cfg, 50) != Backoff(cfg, 6) {
		t.Fatalf("backoff not capped")
	}
}

// TestNewEnvValidates checks environment construction validates the config.
func TestNewEnvValidates(t *testing.T) {
	bad := config.Default()
	bad.NumCores = 0
	if _, err := NewEnv(bad); err == nil {
		t.Fatalf("invalid configuration accepted")
	}
	good := config.Default()
	good.NumCores = 2
	env, err := NewEnv(good)
	if err != nil {
		t.Fatalf("NewEnv: %v", err)
	}
	if env.Registry.Threads() != 2 || env.Stats == nil || env.Hier == nil {
		t.Fatalf("environment incompletely wired")
	}
}
