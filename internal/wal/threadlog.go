package wal

import (
	"errors"
	"fmt"

	"dhtm/internal/memdev"
)

// ErrLogFull is returned when a record does not fit in the live region of a
// thread log. Designs translate it into a log-overflow abort; the OS then
// grows the log and the transaction retries (§III-A of the paper).
var ErrLogFull = errors.New("wal: thread log full")

// ThreadLog is one thread's durable transaction log: a circular buffer of
// 8-byte words in persistent memory, with its head and tail offsets persisted
// in a small metadata block so the recovery manager can locate the live
// records after a crash.
//
// The hardware keeps the equivalent of the head pointer in a register
// (Table II); persisting it alongside each append stands in for the record
// validity detection (checksums / epoch bits) a real implementation would use
// and costs one extra word of metadata per append, which is charged to the
// bandwidth model.
type ThreadLog struct {
	Thread    int
	Base      uint64 // first data word address
	SizeWords int
	// MaxWords is the size of the reserved region; Grow may raise SizeWords
	// up to this limit when the OS responds to a log-overflow abort.
	MaxWords int
	MetaAddr uint64 // two persisted words: head offset, tail offset

	ctl *memdev.Controller

	head, tail int // word offsets into the data area (in-memory mirrors)

	nextTx uint64
	// live tracks the start offset of every transaction whose records may
	// still be needed (active, committing, or committed-but-incomplete), in
	// begin order, so the tail can advance when the oldest one finishes.
	// Finished prefixes are compacted in place (the backing array is reused)
	// rather than re-sliced away, so steady-state operation never allocates.
	live []liveTx

	// scratch is the reused encode buffer for Append; it grows to the largest
	// record ever appended (11 words) and is never reallocated afterwards.
	scratch []uint64
}

type liveTx struct {
	txid  uint64
	start int
}

// newThreadLog wires a log onto an already-reserved persistent region of
// maxWords capacity, of which sizeWords are initially usable.
func newThreadLog(ctl *memdev.Controller, thread int, base uint64, sizeWords, maxWords int, metaAddr uint64) *ThreadLog {
	l := &ThreadLog{
		Thread:    thread,
		Base:      base,
		SizeWords: sizeWords,
		MaxWords:  maxWords,
		MetaAddr:  metaAddr,
		ctl:       ctl,
		nextTx:    1,
	}
	l.persistMeta()
	return l
}

// attachThreadLog reconstructs a ThreadLog handle from persisted metadata
// (used by the recovery manager, which has no in-memory state).
func attachThreadLog(store *memdev.Store, thread int, base uint64, sizeWords int, metaAddr uint64) *ThreadLog {
	return &ThreadLog{
		Thread:    thread,
		Base:      base,
		SizeWords: sizeWords,
		MaxWords:  sizeWords,
		MetaAddr:  metaAddr,
		head:      int(store.ReadWord(metaAddr)),
		tail:      int(store.ReadWord(metaAddr + 8)),
		nextTx:    1,
	}
}

// persistMeta writes the head/tail offsets to persistent memory (functional
// only; the append that triggered it already paid for the bandwidth). Each
// word is a durable write — a log truncation the recovery manager will see —
// so both go through the controller's persist-observer path.
func (l *ThreadLog) persistMeta() {
	if l.ctl == nil {
		return
	}
	l.ctl.PersistWord(l.MetaAddr, uint64(l.head), memdev.TrafficLogMeta)
	l.ctl.PersistWord(l.MetaAddr+8, uint64(l.tail), memdev.TrafficLogMeta)
}

// BeginTx allocates a new transaction ID and remembers where its records
// start so the log can be truncated once the transaction finishes.
func (l *ThreadLog) BeginTx() uint64 {
	id := l.nextTx
	l.nextTx++
	l.live = append(l.live, liveTx{txid: id, start: l.head})
	return id
}

// EndTx marks a transaction's records as no longer needed (it reached
// commit-complete or abort-complete) and advances the persisted tail past any
// prefix of finished transactions.
func (l *ThreadLog) EndTx(txid uint64) {
	for i := range l.live {
		if l.live[i].txid == txid {
			l.live[i].txid = 0 // finished marker
			break
		}
	}
	finished := 0
	for finished < len(l.live) && l.live[finished].txid == 0 {
		finished++
	}
	if finished > 0 {
		copy(l.live, l.live[finished:])
		l.live = l.live[:len(l.live)-finished]
	}
	if len(l.live) == 0 {
		l.tail = l.head
	} else {
		l.tail = l.live[0].start
	}
	l.persistMeta()
}

// used returns the number of live words in the circular buffer.
func (l *ThreadLog) used() int {
	if l.head >= l.tail {
		return l.head - l.tail
	}
	return l.SizeWords - l.tail + l.head
}

// Free returns the number of words that can still be appended.
func (l *ThreadLog) Free() int { return l.SizeWords - 1 - l.used() }

// Append serialises rec into the log's reused scratch buffer, writes it to
// persistent memory at the log head and returns the cycle at which the record
// is durable. The write is charged to the memory-channel bandwidth model,
// plus one metadata word for persisting the head pointer.
//
// Metadata accounting: each append changes exactly one metadata word — the
// head offset — and that word's persist is charged to the bandwidth model
// alongside the record. The tail offset does not change during an append
// (only EndTx/Reset/Grow move it), so no tail write is issued or charged
// here; EndTx persists the new tail functionally only, standing in for the
// tail register the hardware keeps on-chip (Table II) whose lazy persistence
// is off every transaction's critical path.
func (l *ThreadLog) Append(rec *Record, at uint64) (uint64, error) {
	rec.Thread = l.Thread
	l.scratch = rec.EncodeTo(l.scratch[:0])
	words := l.scratch
	if len(words) > l.Free() {
		return at, ErrLogFull
	}
	done := at
	// The record may wrap around the end of the circular buffer; issue up to
	// two contiguous writes.
	remaining := words
	off := l.head
	for len(remaining) > 0 {
		chunk := remaining
		if off+len(chunk) > l.SizeWords {
			chunk = remaining[:l.SizeWords-off]
		}
		d := l.ctl.WriteWords(l.Base+uint64(off*8), chunk, at, rec.Type.TrafficClass())
		if d > done {
			done = d
		}
		off = (off + len(chunk)) % l.SizeWords
		remaining = remaining[len(chunk):]
	}
	l.head = off
	// One extra metadata word accounts for persisting the head pointer.
	d := l.ctl.WriteWord(l.MetaAddr, uint64(l.head), at, memdev.TrafficLogMeta)
	if d > done {
		done = d
	}
	return done, nil
}

// readWord reads the i-th live word (relative to the data base, absolute
// offset) from a store image.
func (l *ThreadLog) readWord(store *memdev.Store, off int) uint64 {
	return store.ReadWord(l.Base + uint64(off*8))
}

// Scan decodes every live record (tail to head) from the given persistent
// memory image. It is used by the recovery manager and by tests.
func (l *ThreadLog) Scan(store *memdev.Store) ([]Record, error) {
	head := int(store.ReadWord(l.MetaAddr))
	tail := int(store.ReadWord(l.MetaAddr + 8))
	if head < 0 || head >= l.SizeWords || tail < 0 || tail >= l.SizeWords {
		return nil, fmt.Errorf("wal: thread %d log has corrupt head/tail %d/%d", l.Thread, head, tail)
	}
	liveWords := head - tail
	if liveWords < 0 {
		liveWords += l.SizeWords
	}
	// Copy the live region into a flat slice so records that wrap decode
	// contiguously.
	flat := make([]uint64, liveWords)
	for i := 0; i < liveWords; i++ {
		flat[i] = l.readWord(store, (tail+i)%l.SizeWords)
	}
	var recs []Record
	for idx := 0; idx < len(flat); {
		rec, n, err := decode(flat, idx)
		if err != nil {
			return recs, err
		}
		if rec.Type == RecInvalid {
			// Zeroed space; nothing further is live.
			break
		}
		recs = append(recs, rec)
		idx += n
	}
	return recs, nil
}

// Reset empties the log (used after recovery has replayed it, and by the
// OS-grows-the-log path after a log-overflow abort).
func (l *ThreadLog) Reset() {
	l.head, l.tail = 0, 0
	l.live = nil
	l.persistMeta()
}

// Grow enlarges the log capacity (the OS response to a log-overflow abort).
// The paper allocates a fresh, larger log; here the region was reserved with
// headroom so growth raises the usable size up to that reservation and
// reports whether any growth was possible. Growing empties the log, which is
// safe because it only happens after the offending transaction has reached
// abort-complete and no other transaction of this thread is live.
func (l *ThreadLog) Grow(factor int) bool {
	if factor <= 1 || l.SizeWords >= l.MaxWords || len(l.live) > 0 {
		return false
	}
	l.SizeWords *= factor
	if l.SizeWords > l.MaxWords {
		l.SizeWords = l.MaxWords
	}
	l.Reset()
	return true
}
