package wal

import (
	"testing"

	"dhtm/internal/config"
	"dhtm/internal/memdev"
)

// BenchmarkLogAppend measures the durable-append hot path — encode into the
// log's scratch buffer, two bounded device writes, head-pointer persist —
// which must not allocate per record.
func BenchmarkLogAppend(b *testing.B) {
	b.ReportAllocs()
	cfg := config.Default()
	store := memdev.NewStore()
	ctl := memdev.NewController(cfg, store, nil)
	reg := NewRegistry(ctl, 1, cfg.LogBytesPerThread, cfg.OverflowEntriesPerThread)
	log := reg.Log(0)
	rec := &Record{Type: RecRedo, LineAddr: 0x1000_0040, Data: memdev.Line{1, 2, 3, 4, 5, 6, 7, 8}}
	b.ResetTimer()
	at := uint64(0)
	txid := log.BeginTx()
	for i := 0; i < b.N; i++ {
		rec.TxID = txid
		done, err := log.Append(rec, at)
		if err != nil {
			// Recycle the log space like a completing transaction does.
			log.EndTx(txid)
			txid = log.BeginTx()
			continue
		}
		at = done
	}
}
