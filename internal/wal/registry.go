package wal

import (
	"errors"
	"fmt"

	"dhtm/internal/memdev"
)

// Persistent-memory layout constants. The registry table lives at a
// well-known address so the recovery manager can rebuild every log handle
// from nothing but a memory image; the log region follows it; workload data
// is laid out by palloc above HeapBase.
const (
	// RegistryTableAddr is the fixed location of the OS log-registry table.
	RegistryTableAddr uint64 = 0x1000
	// LogRegionBase is where per-thread log and overflow areas are reserved.
	LogRegionBase uint64 = 0x0010_0000
	// HeapBase is where workload data structures are allocated (see palloc).
	HeapBase uint64 = 0x1000_0000

	registryMagic uint64 = 0xD47A_D47A_0001_0001
	// logGrowthHeadroom is how much larger the reserved region is than the
	// initially usable log, so the OS can grow a log after an overflow abort.
	logGrowthHeadroom = 4
	// entry layout in the registry table (in words).
	registryHeaderWords = 2
	registryEntryWords  = 6
)

// ErrOverflowListFull is returned when a transaction has overflowed more
// lines than the reserved overflow list can describe.
var ErrOverflowListFull = errors.New("wal: overflow list full")

// OverflowList records the addresses of write-set lines that overflowed from
// the owner's L1 into the LLC. On commit the memory controller walks the list
// to write those lines back in place; on abort it walks the list to
// invalidate them (§III-C of the paper).
type OverflowList struct {
	Thread    int
	Base      uint64 // first entry address
	Capacity  int    // maximum number of entries
	CountAddr uint64 // persisted entry count

	ctl   *memdev.Controller
	count int
}

// Count returns the number of live entries.
func (o *OverflowList) Count() int { return o.count }

// Append records one overflowed line address and returns when it is durable.
func (o *OverflowList) Append(lineAddr uint64, at uint64) (uint64, error) {
	if o.count >= o.Capacity {
		return at, ErrOverflowListFull
	}
	done := o.ctl.WriteWord(o.Base+uint64(o.count*8), lineAddr, at, memdev.TrafficLogOverflow)
	o.count++
	// Persist the count (one metadata word).
	d := o.ctl.WriteWord(o.CountAddr, uint64(o.count), at, memdev.TrafficLogMeta)
	if d > done {
		done = d
	}
	return done, nil
}

// Entries reads the live entries back from a persistent-memory image.
func (o *OverflowList) Entries(store *memdev.Store) []uint64 {
	n := int(store.ReadWord(o.CountAddr))
	if n > o.Capacity {
		n = o.Capacity
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = store.ReadWord(o.Base + uint64(i*8))
	}
	return out
}

// Clear empties the list (after commit-complete or abort-complete). The count
// reset is a durable write, so it goes through the persist-observer path.
func (o *OverflowList) Clear() {
	o.count = 0
	o.ctl.PersistWord(o.CountAddr, 0, memdev.TrafficLogMeta)
}

// Registry is the OS bookkeeping of every thread's durable log and overflow
// list. It persists itself into the memory image so that recovery can run
// from the image alone.
type Registry struct {
	ctl   *memdev.Controller
	logs  []*ThreadLog
	lists []*OverflowList
}

// NewRegistry lays out and registers logs for n threads, each with
// logBytes of initially usable log space and room for ovEntries overflow
// entries.
func NewRegistry(ctl *memdev.Controller, n int, logBytes, ovEntries int) *Registry {
	r := &Registry{ctl: ctl}
	store := ctl.Store()
	next := LogRegionBase
	alignUp := func(a uint64) uint64 { return (a + uint64(memdev.LineBytes-1)) &^ uint64(memdev.LineBytes-1) }

	store.WriteWord(RegistryTableAddr, registryMagic)
	store.WriteWord(RegistryTableAddr+8, uint64(n))

	for t := 0; t < n; t++ {
		sizeWords := logBytes / 8
		maxWords := sizeWords * logGrowthHeadroom

		metaAddr := next
		next = alignUp(next + 2*8)
		logBase := next
		next = alignUp(next + uint64(maxWords*8))
		ovCountAddr := next
		next = alignUp(next + 8)
		ovBase := next
		next = alignUp(next + uint64(ovEntries*8))

		log := newThreadLog(ctl, t, logBase, sizeWords, maxWords, metaAddr)
		list := &OverflowList{Thread: t, Base: ovBase, Capacity: ovEntries, CountAddr: ovCountAddr, ctl: ctl}
		r.logs = append(r.logs, log)
		r.lists = append(r.lists, list)

		entry := RegistryTableAddr + uint64((registryHeaderWords+t*registryEntryWords)*8)
		store.WriteWord(entry+0*8, logBase)
		store.WriteWord(entry+1*8, uint64(sizeWords))
		store.WriteWord(entry+2*8, metaAddr)
		store.WriteWord(entry+3*8, ovBase)
		store.WriteWord(entry+4*8, uint64(ovEntries))
		store.WriteWord(entry+5*8, ovCountAddr)
	}
	return r
}

// LoadRegistry reconstructs registry handles from a persistent-memory image
// (the recovery manager's entry point after a crash).
func LoadRegistry(store *memdev.Store) (*Registry, error) {
	if store.ReadWord(RegistryTableAddr) != registryMagic {
		return nil, fmt.Errorf("wal: no log registry found at %#x", RegistryTableAddr)
	}
	n := int(store.ReadWord(RegistryTableAddr + 8))
	if n <= 0 || n > 256 {
		return nil, fmt.Errorf("wal: implausible registered thread count %d", n)
	}
	r := &Registry{}
	for t := 0; t < n; t++ {
		entry := RegistryTableAddr + uint64((registryHeaderWords+t*registryEntryWords)*8)
		logBase := store.ReadWord(entry + 0*8)
		sizeWords := int(store.ReadWord(entry + 1*8))
		metaAddr := store.ReadWord(entry + 2*8)
		ovBase := store.ReadWord(entry + 3*8)
		ovCap := int(store.ReadWord(entry + 4*8))
		ovCountAddr := store.ReadWord(entry + 5*8)
		r.logs = append(r.logs, attachThreadLog(store, t, logBase, sizeWords, metaAddr))
		r.lists = append(r.lists, &OverflowList{
			Thread: t, Base: ovBase, Capacity: ovCap, CountAddr: ovCountAddr,
			count: int(store.ReadWord(ovCountAddr)),
		})
	}
	return r, nil
}

// Threads returns the number of registered threads.
func (r *Registry) Threads() int { return len(r.logs) }

// Log returns thread t's durable log.
func (r *Registry) Log(t int) *ThreadLog { return r.logs[t] }

// Overflow returns thread t's overflow list.
func (r *Registry) Overflow(t int) *OverflowList { return r.lists[t] }

// GrowLog grows thread t's log after a log-overflow abort and keeps the
// persisted registry entry in sync so recovery sees the new geometry.
func (r *Registry) GrowLog(t, factor int) bool {
	if !r.logs[t].Grow(factor) {
		return false
	}
	entry := RegistryTableAddr + uint64((registryHeaderWords+t*registryEntryWords)*8)
	r.ctl.PersistWord(entry+1*8, uint64(r.logs[t].SizeWords), memdev.TrafficLogMeta)
	return true
}
