// Package wal implements the durable transaction logs that DHTM and the
// baseline designs write to persistent memory: the per-thread circular log
// holding redo/undo records and transaction markers, the per-thread overflow
// list that records write-set lines which escaped the L1, and the registry
// the OS keeps so the recovery manager can find every log after a crash.
//
// Log contents are stored functionally in the memdev.Store (so recovery and
// the crash tests operate on real bytes) and every append is charged to the
// memory controller's bandwidth model.
package wal

import (
	"errors"
	"fmt"

	"dhtm/internal/memdev"
)

// RecordType identifies a log record.
type RecordType uint8

const (
	// RecInvalid marks unused log space.
	RecInvalid RecordType = iota
	// RecRedo carries the new value of one cache line (DHTM, SO, sdTM).
	RecRedo
	// RecUndo carries the old value of one cache line (ATOM, LogTM-ATOM).
	RecUndo
	// RecCommit marks the transaction as committed (durable).
	RecCommit
	// RecComplete marks all in-place data of a committed transaction durable.
	RecComplete
	// RecAbort logically clears the records of an aborted transaction.
	RecAbort
	// RecSentinel records that this transaction depends on (read data from)
	// another committed-but-incomplete transaction and must be replayed after
	// it. Payload: dependee thread ID and transaction ID.
	RecSentinel
)

// String implements fmt.Stringer.
func (t RecordType) String() string {
	switch t {
	case RecInvalid:
		return "invalid"
	case RecRedo:
		return "redo"
	case RecUndo:
		return "undo"
	case RecCommit:
		return "commit"
	case RecComplete:
		return "complete"
	case RecAbort:
		return "abort"
	case RecSentinel:
		return "sentinel"
	default:
		return fmt.Sprintf("RecordType(%d)", uint8(t))
	}
}

// Record is the in-memory form of a log record.
type Record struct {
	Type   RecordType
	Thread int
	TxID   uint64

	// Redo/undo payload.
	LineAddr uint64
	Data     memdev.Line

	// Sentinel payload.
	DepThread int
	DepTxID   uint64
}

// Header packing: [ 8 bits type | 8 bits thread | 48 bits txid ].
const (
	typeShift   = 56
	threadShift = 48
	txidMask    = (uint64(1) << 48) - 1
)

func packHeader(t RecordType, thread int, txid uint64) uint64 {
	return uint64(t)<<typeShift | uint64(uint8(thread))<<threadShift | (txid & txidMask)
}

func unpackHeader(h uint64) (RecordType, int, uint64) {
	return RecordType(h >> typeShift), int((h >> threadShift) & 0xff), h & txidMask
}

// payloadWords returns the number of payload words following the header for
// each record type.
func payloadWords(t RecordType) int {
	switch t {
	case RecRedo, RecUndo:
		return 1 + memdev.WordsPerLine // line address + data
	case RecSentinel:
		return 2
	default:
		return 0
	}
}

// EncodeTo appends the record's serialised words (header first) to dst and
// returns the extended slice. Appending into a reused scratch buffer keeps
// the per-record hot path (ThreadLog.Append) allocation-free.
func (r *Record) EncodeTo(dst []uint64) []uint64 {
	dst = append(dst, packHeader(r.Type, r.Thread, r.TxID))
	switch r.Type {
	case RecRedo, RecUndo:
		dst = append(dst, r.LineAddr)
		dst = append(dst, r.Data[:]...)
	case RecSentinel:
		dst = append(dst, uint64(r.DepThread), r.DepTxID)
	}
	return dst
}

// Encode serialises the record into a fresh word slice (header first).
func (r *Record) Encode() []uint64 {
	return r.EncodeTo(make([]uint64, 0, 1+payloadWords(r.Type)))
}

// SizeWords returns the encoded size of the record in 8-byte words.
func (r *Record) SizeWords() int { return 1 + payloadWords(r.Type) }

// TrafficClass returns the memory-traffic class a record of type t is charged
// (and observed) under, so the persist observer can tell a redo append from a
// commit marker from a sentinel.
func (t RecordType) TrafficClass() memdev.TrafficClass {
	switch t {
	case RecRedo:
		return memdev.TrafficLogRedo
	case RecUndo:
		return memdev.TrafficLogUndo
	case RecCommit:
		return memdev.TrafficLogCommit
	case RecComplete:
		return memdev.TrafficLogComplete
	case RecAbort:
		return memdev.TrafficLogAbort
	case RecSentinel:
		return memdev.TrafficLogSentinel
	default:
		return memdev.TrafficLog
	}
}

// IsRecordClass reports whether a persist-event traffic class carries encoded
// log-record words (the classes RecordType.TrafficClass emits). Log-analysis
// tooling uses it to reassemble the record stream from persist events.
func IsRecordClass(c memdev.TrafficClass) bool {
	switch c {
	case memdev.TrafficLogRedo, memdev.TrafficLogUndo, memdev.TrafficLogCommit,
		memdev.TrafficLogComplete, memdev.TrafficLogAbort, memdev.TrafficLogSentinel:
		return true
	default:
		return false
	}
}

// HeaderInfo unpacks a record header word into its type, thread and
// transaction ID (exported for log-analysis tooling such as the crash-point
// explorer, which decodes records from observed persist events).
func HeaderInfo(h uint64) (RecordType, int, uint64) { return unpackHeader(h) }

// DecodeRecord decodes one record starting at word idx of a raw word slice,
// returning the record and the number of words consumed (HeaderInfo plus
// SizeWords tell a caller whether enough words have accumulated).
func DecodeRecord(words []uint64, idx int) (Record, int, error) { return decode(words, idx) }

// decode reads one record starting at the given word index within a raw word
// slice, returning the record and the number of words consumed. A zero header
// decodes as RecInvalid with one word consumed.
func decode(words []uint64, idx int) (Record, int, error) {
	if idx >= len(words) {
		return Record{}, 0, errors.New("wal: decode past end of buffer")
	}
	t, thread, txid := unpackHeader(words[idx])
	r := Record{Type: t, Thread: thread, TxID: txid}
	need := payloadWords(t)
	if idx+1+need > len(words) {
		return Record{}, 0, fmt.Errorf("wal: truncated %s record at word %d", t, idx)
	}
	p := words[idx+1 : idx+1+need]
	switch t {
	case RecRedo, RecUndo:
		r.LineAddr = p[0]
		copy(r.Data[:], p[1:])
	case RecSentinel:
		r.DepThread = int(p[0])
		r.DepTxID = p[1]
	}
	return r, 1 + need, nil
}
