package wal

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"dhtm/internal/config"
	"dhtm/internal/memdev"
	"dhtm/internal/stats"
)

func newTestController() *memdev.Controller {
	cfg := config.Default()
	return memdev.NewController(cfg, memdev.NewStore(), stats.New(cfg.NumCores))
}

// TestRecordEncodeDecodeRoundtrip checks every record type survives encoding.
func TestRecordEncodeDecodeRoundtrip(t *testing.T) {
	recs := []Record{
		{Type: RecRedo, Thread: 3, TxID: 42, LineAddr: 0x1000, Data: memdev.Line{1, 2, 3, 4, 5, 6, 7, 8}},
		{Type: RecUndo, Thread: 1, TxID: 7, LineAddr: 0x2040, Data: memdev.Line{9}},
		{Type: RecCommit, Thread: 0, TxID: 9},
		{Type: RecComplete, Thread: 5, TxID: 9},
		{Type: RecAbort, Thread: 2, TxID: 11},
		{Type: RecSentinel, Thread: 2, TxID: 11, DepThread: 6, DepTxID: 4},
	}
	for _, want := range recs {
		words := want.Encode()
		got, n, err := decode(words, 0)
		if err != nil {
			t.Fatalf("%s: decode: %v", want.Type, err)
		}
		if n != len(words) {
			t.Fatalf("%s: consumed %d words, want %d", want.Type, n, len(words))
		}
		if got != want {
			t.Fatalf("%s: roundtrip mismatch: got %+v want %+v", want.Type, got, want)
		}
	}
}

// TestThreadLogAppendScan checks that appended records are durably visible to
// a scan of the memory image.
func TestThreadLogAppendScan(t *testing.T) {
	ctl := newTestController()
	reg := NewRegistry(ctl, 2, 64*1024, 256)
	log := reg.Log(1)
	txid := log.BeginTx()
	want := []Record{
		{Type: RecRedo, TxID: txid, LineAddr: 0x40, Data: memdev.Line{1}},
		{Type: RecRedo, TxID: txid, LineAddr: 0x80, Data: memdev.Line{2}},
		{Type: RecCommit, TxID: txid},
	}
	for i := range want {
		if _, err := log.Append(&want[i], uint64(i*10)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	got, err := log.Scan(ctl.Store())
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("scanned %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Type != want[i].Type || got[i].TxID != want[i].TxID || got[i].LineAddr != want[i].LineAddr {
			t.Fatalf("record %d mismatch: got %+v want %+v", i, got[i], want[i])
		}
		if got[i].Thread != 1 {
			t.Fatalf("record %d thread = %d, want 1", i, got[i].Thread)
		}
	}
}

// TestThreadLogTruncation checks that EndTx releases space and hides records
// from recovery scans.
func TestThreadLogTruncation(t *testing.T) {
	ctl := newTestController()
	reg := NewRegistry(ctl, 1, 16*1024, 64)
	log := reg.Log(0)
	tx1 := log.BeginTx()
	_, _ = log.Append(&Record{Type: RecRedo, TxID: tx1, LineAddr: 0x40}, 0)
	_, _ = log.Append(&Record{Type: RecCommit, TxID: tx1}, 0)
	tx2 := log.BeginTx()
	_, _ = log.Append(&Record{Type: RecRedo, TxID: tx2, LineAddr: 0x80}, 0)
	log.EndTx(tx1)
	recs, err := log.Scan(ctl.Store())
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	for _, r := range recs {
		if r.TxID == tx1 {
			t.Fatalf("truncated transaction %d still visible to scans", tx1)
		}
	}
	if len(recs) == 0 {
		t.Fatalf("live transaction's records disappeared with the truncation")
	}
}

// TestThreadLogWrapAround fills and truncates repeatedly so the circular
// buffer wraps, checking scans stay consistent.
func TestThreadLogWrapAround(t *testing.T) {
	ctl := newTestController()
	reg := NewRegistry(ctl, 1, 4*1024, 64) // 512 words of log
	log := reg.Log(0)
	for round := 0; round < 50; round++ {
		txid := log.BeginTx()
		for i := 0; i < 4; i++ {
			rec := &Record{Type: RecRedo, TxID: txid, LineAddr: uint64(round*64 + i)}
			if _, err := log.Append(rec, 0); err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
		}
		if _, err := log.Append(&Record{Type: RecCommit, TxID: txid}, 0); err != nil {
			t.Fatalf("round %d commit: %v", round, err)
		}
		recs, err := log.Scan(ctl.Store())
		if err != nil {
			t.Fatalf("round %d scan: %v", round, err)
		}
		if len(recs) != 5 {
			t.Fatalf("round %d: scanned %d records, want 5", round, len(recs))
		}
		log.EndTx(txid)
	}
}

// TestThreadLogFullAndGrow checks the log-overflow path and OS growth.
func TestThreadLogFullAndGrow(t *testing.T) {
	ctl := newTestController()
	reg := NewRegistry(ctl, 1, 512, 64) // 64 words usable
	log := reg.Log(0)
	txid := log.BeginTx()
	var sawFull bool
	for i := 0; i < 20; i++ {
		if _, err := log.Append(&Record{Type: RecRedo, TxID: txid, LineAddr: uint64(i)}, 0); err != nil {
			if !errors.Is(err, ErrLogFull) {
				t.Fatalf("unexpected error: %v", err)
			}
			sawFull = true
			break
		}
	}
	if !sawFull {
		t.Fatalf("log never filled")
	}
	log.EndTx(txid)
	if !reg.GrowLog(0, 2) {
		t.Fatalf("GrowLog failed")
	}
	txid = log.BeginTx()
	for i := 0; i < 12; i++ {
		if _, err := log.Append(&Record{Type: RecRedo, TxID: txid, LineAddr: uint64(i)}, 0); err != nil {
			t.Fatalf("append after growth failed at %d: %v", i, err)
		}
	}
}

// TestRegistryReload checks that LoadRegistry reconstructs the same geometry
// from the persistent image alone.
func TestRegistryReload(t *testing.T) {
	ctl := newTestController()
	reg := NewRegistry(ctl, 3, 32*1024, 128)
	log := reg.Log(2)
	txid := log.BeginTx()
	_, _ = log.Append(&Record{Type: RecRedo, TxID: txid, LineAddr: 0x1234 &^ 63, Data: memdev.Line{5}}, 0)
	_, _ = log.Append(&Record{Type: RecCommit, TxID: txid}, 0)

	loaded, err := LoadRegistry(ctl.Store())
	if err != nil {
		t.Fatalf("LoadRegistry: %v", err)
	}
	if loaded.Threads() != 3 {
		t.Fatalf("reloaded %d threads, want 3", loaded.Threads())
	}
	recs, err := loaded.Log(2).Scan(ctl.Store())
	if err != nil {
		t.Fatalf("Scan on reloaded log: %v", err)
	}
	if len(recs) != 2 || recs[1].Type != RecCommit {
		t.Fatalf("reloaded log contents wrong: %+v", recs)
	}
}

// TestOverflowList checks append/read-back/clear of the overflow list.
func TestOverflowList(t *testing.T) {
	ctl := newTestController()
	reg := NewRegistry(ctl, 1, 4*1024, 4)
	ov := reg.Overflow(0)
	for i := 0; i < 4; i++ {
		if _, err := ov.Append(uint64(i)*64, 0); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if _, err := ov.Append(999, 0); !errors.Is(err, ErrOverflowListFull) {
		t.Fatalf("expected ErrOverflowListFull, got %v", err)
	}
	entries := ov.Entries(ctl.Store())
	if len(entries) != 4 || entries[2] != 128 {
		t.Fatalf("entries wrong: %v", entries)
	}
	ov.Clear()
	if got := ov.Entries(ctl.Store()); len(got) != 0 {
		t.Fatalf("entries survive Clear: %v", got)
	}
}

// TestPropertyLogScanMatchesAppends: whatever sequence of records is appended
// (within capacity), a scan returns exactly that sequence in order.
func TestPropertyLogScanMatchesAppends(t *testing.T) {
	f := func(lineAddrs []uint16) bool {
		if len(lineAddrs) > 100 {
			lineAddrs = lineAddrs[:100]
		}
		ctl := newTestController()
		reg := NewRegistry(ctl, 1, 128*1024, 64)
		log := reg.Log(0)
		txid := log.BeginTx()
		for _, a := range lineAddrs {
			rec := &Record{Type: RecRedo, TxID: txid, LineAddr: uint64(a) * 64, Data: memdev.Line{uint64(a)}}
			if _, err := log.Append(rec, 0); err != nil {
				return false
			}
		}
		recs, err := log.Scan(ctl.Store())
		if err != nil || len(recs) != len(lineAddrs) {
			return false
		}
		for i, a := range lineAddrs {
			if recs[i].LineAddr != uint64(a)*64 || recs[i].Data[0] != uint64(a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Fatal(err)
	}
}
