package wal

import "dhtm/internal/probe"

// RegisterProbes contributes the durable-log signals to a cell recorder:
// the live window of the per-thread circular logs (the quantity DHTM's
// eager truncation keeps small and LogTM-ATOM lets grow) and the overflow
// side lists. All three are gauges sampled on the probe grid.
func (r *Registry) RegisterProbes(rec *probe.Recorder) {
	rec.Gauge("wal/live_words", "words", "internal/wal", func(uint64) float64 {
		total := 0
		for _, l := range r.logs {
			total += l.used()
		}
		return float64(total)
	})
	rec.Gauge("wal/occupancy_max", "fraction", "internal/wal", func(uint64) float64 {
		worst := 0.0
		for _, l := range r.logs {
			if l.SizeWords <= 1 {
				continue
			}
			// A circular log keeps one word free, so the usable capacity is
			// SizeWords-1.
			f := float64(l.used()) / float64(l.SizeWords-1)
			if f > worst {
				worst = f
			}
		}
		return worst
	})
	rec.Gauge("wal/overflow_entries", "entries", "internal/wal", func(uint64) float64 {
		total := 0
		for _, ol := range r.lists {
			total += ol.Count()
		}
		return float64(total)
	})
}
