package engine

import (
	"fmt"
	"sync"
)

// This file preserves the previous engine implementation — one goroutine per
// core with direct token handoff over channels — verbatim (modulo renames) as
// the reference scheduler for the parity tests. The event-loop engine must
// reproduce its interleaving bit for bit; any intentional change to the
// scheduling policy has to be made to both and justified against the golden
// tables.

// tokenClock is the reference engine's per-core clock.
type tokenClock struct {
	core int
	now  uint64
	e    *tokenEngine

	minOtherClock uint64
	minOtherCore  int
}

func (c *tokenClock) Core() int   { return c.core }
func (c *tokenClock) Now() uint64 { return c.now }

func (c *tokenClock) ahead() bool {
	return c.minOtherCore < 0 || c.now < c.minOtherClock ||
		(c.now == c.minOtherClock && c.core < c.minOtherCore)
}

func (c *tokenClock) Advance(delta uint64) {
	c.now += delta
	if c.ahead() {
		return
	}
	c.e.handoff(c)
}

func (c *tokenClock) AdvanceTo(cycle uint64) {
	if cycle > c.now {
		c.now = cycle
	}
	if c.ahead() {
		return
	}
	c.e.handoff(c)
}

func (c *tokenClock) Yield() {
	if c.ahead() {
		return
	}
	c.e.handoff(c)
}

func (c *tokenClock) refreshMinOther() {
	e := c.e
	best := -1
	var bestClock uint64
	for i := range e.clocks {
		if i == c.core || e.done[i] {
			continue
		}
		if best < 0 || e.clocks[i] < bestClock {
			best, bestClock = i, e.clocks[i]
		}
	}
	c.minOtherCore = best
	c.minOtherClock = bestClock
}

// tokenEngine runs one goroutine per core under min-clock-first scheduling
// with a single directly-handed-off token.
type tokenEngine struct {
	mu      sync.Mutex
	clocks  []uint64
	done    []bool
	parked  []chan struct{}
	started bool
}

func newTokenEngine(n int) *tokenEngine {
	if n <= 0 {
		panic(fmt.Sprintf("engine: non-positive core count %d", n))
	}
	e := &tokenEngine{
		clocks: make([]uint64, n),
		done:   make([]bool, n),
		parked: make([]chan struct{}, n),
	}
	for i := range e.parked {
		e.parked[i] = make(chan struct{}, 1)
	}
	return e
}

func (e *tokenEngine) Run(body func(core int, c *tokenClock)) []uint64 {
	e.mu.Lock()
	if e.started {
		e.mu.Unlock()
		panic("engine: Run called twice")
	}
	e.started = true
	e.mu.Unlock()

	n := len(e.clocks)
	var wg sync.WaitGroup
	wg.Add(n)
	panics := make(chan interface{}, n)

	for i := 0; i < n; i++ {
		go func(core int) {
			defer wg.Done()
			c := &tokenClock{core: core, e: e, minOtherCore: -1}
			defer func() {
				if r := recover(); r != nil {
					panics <- r
				}
				e.finish(core)
			}()
			<-e.parked[core]
			c.refreshMinOther()
			body(core, c)
			e.clocks[core] = c.now
		}(i)
	}

	e.parked[0] <- struct{}{}

	wg.Wait()
	close(panics)
	if r, ok := <-panics; ok {
		panic(r)
	}
	out := make([]uint64, n)
	copy(out, e.clocks)
	return out
}

func (e *tokenEngine) handoff(c *tokenClock) {
	e.clocks[c.core] = c.now
	e.parked[c.minOtherCore] <- struct{}{}
	<-e.parked[c.core]
	c.refreshMinOther()
}

func (e *tokenEngine) finish(core int) {
	e.done[core] = true
	best := -1
	for i := range e.clocks {
		if e.done[i] {
			continue
		}
		if best < 0 || e.clocks[i] < e.clocks[best] || (e.clocks[i] == e.clocks[best] && i < best) {
			best = i
		}
	}
	if best >= 0 {
		e.parked[best] <- struct{}{}
	}
}
