package engine

import "testing"

// TestSamplerStampsMonotone runs unevenly advancing cores and checks the
// sampler fires exactly on its scheduled grid, in nondecreasing order, and
// never after being disarmed.
func TestSamplerStampsMonotone(t *testing.T) {
	e := New(3)
	const interval = 10
	var stamps []uint64
	e.SetSampler(interval, func(cycle uint64) uint64 {
		stamps = append(stamps, cycle)
		if cycle >= 100 {
			return 0 // disarm mid-run
		}
		return cycle + interval
	})
	e.Run(func(core int, c *Clock) {
		for i := 0; i < 40; i++ {
			c.Advance(uint64(1 + (core+i)%7))
		}
	})
	if len(stamps) == 0 {
		t.Fatal("sampler never fired")
	}
	for i, s := range stamps {
		if s != uint64(interval*(i+1)) {
			t.Fatalf("stamp %d = %d, want the scheduled grid value %d", i, s, interval*(i+1))
		}
	}
	if last := stamps[len(stamps)-1]; last < 100 || last >= 110 {
		t.Fatalf("sampler disarmed at %d, want first stamp >= 100", last)
	}
}

// TestSamplerObservesGlobalMinimum checks a sample does not fire while some
// other core's clock is still before the scheduled stamp: the stamp fires at
// most once, when the global minimum crosses it.
func TestSamplerObservesGlobalMinimum(t *testing.T) {
	e := New(2)
	fired := 0
	e.SetSampler(50, func(cycle uint64) uint64 {
		fired++
		// Both cores advance in steps of 30 (core 0) and 40 (core 1); the
		// global minimum crosses 50 when the slower walker passes it.
		return 0
	})
	e.Run(func(core int, c *Clock) {
		step := uint64(30 + 10*core)
		for i := 0; i < 4; i++ {
			c.Advance(step)
		}
	})
	if fired != 1 {
		t.Fatalf("sampler fired %d times, want exactly 1", fired)
	}
}

// TestNoSamplerUnchanged pins that an engine without a sampler produces the
// same final clocks as before the probe hook existed.
func TestNoSamplerUnchanged(t *testing.T) {
	run := func(e *Engine) []uint64 {
		return e.Run(func(core int, c *Clock) {
			for i := 0; i < 16; i++ {
				c.Advance(uint64(1 + core))
			}
		})
	}
	plain := run(New(4))
	sampled := New(4)
	sampled.SetSampler(5, func(cycle uint64) uint64 { return cycle + 5 })
	withProbe := run(sampled)
	for i := range plain {
		if plain[i] != withProbe[i] {
			t.Fatalf("core %d: clocks diverge with sampler installed: %d vs %d", i, plain[i], withProbe[i])
		}
	}
}
