package engine

import "testing"

// BenchmarkEngineYield measures the cost of the scheduling hot path: cores
// advancing in lockstep so most yields hand the token off, interleaved with
// stretches where one core stays ahead and the fast path (no channel op, no
// scan) applies.
func BenchmarkEngineYield(b *testing.B) {
	b.ReportAllocs()
	const cores = 8
	e := New(cores)
	per := b.N/cores + 1
	b.ResetTimer()
	e.Run(func(core int, c *Clock) {
		for i := 0; i < per; i++ {
			// Varying deltas exercise both the stay-ahead fast path and the
			// handoff slow path, like real memory-system timing does.
			c.Advance(uint64(1 + (core+i)%5))
		}
	})
}

// BenchmarkEngineScheduler measures the event-loop scheduler under the
// worst case for the old token engine: cores advancing in lockstep by a
// constant delta, so every Advance is a real switch to the next coroutine.
func BenchmarkEngineScheduler(b *testing.B) {
	b.ReportAllocs()
	const cores = 8
	e := New(cores)
	per := b.N/cores + 1
	b.ResetTimer()
	e.Run(func(core int, c *Clock) {
		for i := 0; i < per; i++ {
			c.Advance(3)
		}
	})
}

// BenchmarkEngineSchedulerFastPath measures the no-handoff fast path of the
// event loop with other cores present: one core is far behind the rest and
// advances in small steps, so every Advance is the add-and-compare path with
// no coroutine switch. It must stay at 0 allocs/op.
func BenchmarkEngineSchedulerFastPath(b *testing.B) {
	b.ReportAllocs()
	const cores = 4
	e := New(cores)
	b.ResetTimer()
	e.Run(func(core int, c *Clock) {
		if core > 0 {
			// Park the other cores far in the future in one step each.
			c.Advance(uint64(b.N) + 10)
			return
		}
		for i := 0; i < b.N; i++ {
			c.Advance(0)
			c.Yield()
		}
		c.Advance(uint64(b.N) + 20)
	})
}

// BenchmarkEngineYieldFastPath measures the pure fast path: a single core has
// no other unfinished cores to hand off to, so Advance must stay a plain
// add-and-compare.
func BenchmarkEngineYieldFastPath(b *testing.B) {
	b.ReportAllocs()
	e := New(1)
	b.ResetTimer()
	e.Run(func(core int, c *Clock) {
		for i := 0; i < b.N; i++ {
			c.Advance(1)
		}
	})
}
