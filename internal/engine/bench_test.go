package engine

import "testing"

// BenchmarkEngineYield measures the cost of the scheduling hot path: cores
// advancing in lockstep so most yields hand the token off, interleaved with
// stretches where one core stays ahead and the fast path (no channel op, no
// scan) applies.
func BenchmarkEngineYield(b *testing.B) {
	b.ReportAllocs()
	const cores = 8
	e := New(cores)
	per := b.N/cores + 1
	b.ResetTimer()
	e.Run(func(core int, c *Clock) {
		for i := 0; i < per; i++ {
			// Varying deltas exercise both the stay-ahead fast path and the
			// handoff slow path, like real memory-system timing does.
			c.Advance(uint64(1 + (core+i)%5))
		}
	})
}

// BenchmarkEngineYieldFastPath measures the pure fast path: a single core has
// no other unfinished cores to hand off to, so Advance must stay a plain
// add-and-compare.
func BenchmarkEngineYieldFastPath(b *testing.B) {
	b.ReportAllocs()
	e := New(1)
	b.ResetTimer()
	e.Run(func(core int, c *Clock) {
		for i := 0; i < b.N; i++ {
			c.Advance(1)
		}
	})
}
