package engine

import (
	"math/rand"
	"testing"
)

// traceOp records one shared-state touchpoint of a core body: which core
// observed which cycle at which step. Equality of two traces means the two
// schedulers interleaved the bodies identically — the property all simulator
// state relies on.
type traceOp struct {
	core int
	step int
	at   uint64
}

// clockOps is the op subset shared by Clock and tokenClock.
type clockOps interface {
	Core() int
	Now() uint64
	Advance(uint64)
	AdvanceTo(uint64)
	Yield()
}

// program is a deterministic per-core schedule of mixed clock operations,
// derived from a seed. Running it under either engine produces a trace.
type program struct {
	cores int
	steps int
	seed  int64
}

// run drives the program through the given clock, appending to trace. The
// operation mix covers Advance with varying deltas (fast path and handoff),
// AdvanceTo into both the future and the past, and same-cycle Yield spins.
func (p program) run(core int, c clockOps, trace *[]traceOp) {
	rng := rand.New(rand.NewSource(p.seed + int64(core)*104729))
	for i := 0; i < p.steps; i++ {
		*trace = append(*trace, traceOp{core: core, step: i, at: c.Now()})
		switch rng.Intn(6) {
		case 0, 1:
			c.Advance(uint64(rng.Intn(7)))
		case 2:
			c.Advance(uint64(50 + rng.Intn(200)))
		case 3:
			c.AdvanceTo(c.Now() + uint64(rng.Intn(40)))
		case 4:
			// Mostly the past (a no-op besides yielding).
			c.AdvanceTo(c.Now() - uint64(rng.Intn(int(c.Now())+1)))
		default:
			c.Yield()
		}
	}
}

// TestEventLoopMatchesTokenEngine is the old-vs-new parity check: the
// event-loop scheduler must reproduce the token engine's exact interleaving
// trace on randomized mixed Advance/AdvanceTo/Yield sequences, across core
// counts and uneven per-core work.
func TestEventLoopMatchesTokenEngine(t *testing.T) {
	for _, cores := range []int{1, 2, 3, 8, 13} {
		for seed := int64(1); seed <= 20; seed++ {
			p := program{cores: cores, steps: 120 + int(seed)%60, seed: seed}

			var ref []traceOp
			refEng := newTokenEngine(cores)
			refFinal := refEng.Run(func(core int, c *tokenClock) {
				// Uneven finish: higher cores run extra steps.
				q := p
				q.steps += core * 17
				q.run(core, c, &ref)
			})

			var got []traceOp
			eng := New(cores)
			gotFinal := eng.Run(func(core int, c *Clock) {
				q := p
				q.steps += core * 17
				q.run(core, c, &got)
			})

			if len(got) != len(ref) {
				t.Fatalf("cores=%d seed=%d: %d events, reference %d", cores, seed, len(got), len(ref))
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("cores=%d seed=%d: event %d = %+v, reference %+v", cores, seed, i, got[i], ref[i])
				}
			}
			for i := range refFinal {
				if gotFinal[i] != refFinal[i] {
					t.Fatalf("cores=%d seed=%d: final clock %d = %d, reference %d", cores, seed, i, gotFinal[i], refFinal[i])
				}
			}
		}
	}
}

// TestPanicPropagates checks that a body panic surfaces out of Run and that
// the remaining suspended coroutines are torn down instead of leaking.
func TestPanicPropagates(t *testing.T) {
	e := New(4)
	defer func() {
		r := recover()
		if r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	e.Run(func(core int, c *Clock) {
		for i := 0; i < 100; i++ {
			if core == 2 && c.Now() > 40 {
				panic("boom")
			}
			c.Advance(uint64(1 + core))
		}
	})
	t.Fatal("Run returned after a body panic")
}

// TestRunTwicePanics preserves the old engine's double-Run guard.
func TestRunTwicePanics(t *testing.T) {
	e := New(2)
	e.Run(func(core int, c *Clock) { c.Advance(1) })
	defer func() {
		if recover() == nil {
			t.Fatal("second Run did not panic")
		}
	}()
	e.Run(func(core int, c *Clock) {})
}
