// Package engine provides the deterministic multi-core scheduling substrate
// for the architectural simulator. A whole cell executes as a single-threaded
// discrete-event loop: each simulated core is a run-to-yield coroutine
// (iter.Pull over the core body), and a plain scheduler loop always resumes
// the core with the minimum (clock, core) among the unfinished ones. Only the
// resumed core ever touches shared simulator state, so the interleaving of
// memory-system operations is fully determined by the timing model, never by
// the Go runtime scheduler — and because the whole cell stays on one OS
// thread, a core switch is a direct coroutine switch with no goroutine
// parking, channel handoff, or mutex.
//
// The hot path is allocation- and switch-free: every Clock caches the
// lexicographic minimum (clock, core) of the *other* unfinished cores, which
// cannot change while this core is running (suspended cores do not move
// their clocks, and only the running core can finish). An Advance that keeps
// the caller in front is therefore a single add-and-compare with no coroutine
// switch or O(cores) scan; the scan happens once per actual switch, when the
// resumed core refreshes its cache.
//
// The scheduling order is bit-for-bit identical to the previous
// one-goroutine-per-core token engine (kept as the reference implementation
// in the parity tests): a core yields exactly when it is no longer the
// minimum, control passes exactly to the core its cache named, and a
// finishing core hands over to the minimum of the remaining ones.
package engine

import (
	"fmt"
	"iter"
)

// Clock is a simulated core's private cycle counter plus its handle on the
// event loop. All simulator-facing operations of a core must be performed
// between resumes (implicit in the engine callbacks) and the next
// Advance/AdvanceTo call.
type Clock struct {
	core int
	now  uint64
	e    *Engine

	// minOtherClock/minOtherCore cache the lexicographic minimum
	// (clock, core) among the other unfinished cores. The cache is refreshed
	// every time this core is resumed and stays valid while it runs:
	// suspended cores cannot advance, and cores only finish while running
	// themselves. minOtherCore is -1 when no other core remains.
	minOtherClock uint64
	minOtherCore  int

	// yield suspends this core's coroutine back into the scheduler loop. It
	// reports false when the engine is tearing down (another core panicked),
	// in which case the body is unwound via a poison panic.
	yield func(struct{}) bool
}

// Core returns the core index this clock belongs to.
func (c *Clock) Core() int { return c.core }

// Now returns the core's current cycle.
func (c *Clock) Now() uint64 { return c.now }

// ahead reports whether this core is still the scheduling minimum, i.e.
// (now, core) <= (minOtherClock, minOtherCore) lexicographically.
func (c *Clock) ahead() bool {
	return c.minOtherCore < 0 || c.now < c.minOtherClock ||
		(c.now == c.minOtherClock && c.core < c.minOtherCore)
}

// Advance moves the core's clock forward by delta cycles and yields to the
// event loop so that any core now lagging behind can catch up before this
// core performs its next shared-state operation. When the caller remains the
// minimum-clock core the yield is a no-op compare and no switch happens.
func (c *Clock) Advance(delta uint64) {
	c.now += delta
	if c.e.sampleAt != 0 {
		c.e.maybeSample(c)
	}
	if c.ahead() {
		return
	}
	c.e.handoff(c)
}

// AdvanceTo moves the core's clock to cycle (if it is in the future) and
// yields. Advancing to the past is a no-op besides yielding.
func (c *Clock) AdvanceTo(cycle uint64) {
	if cycle > c.now {
		c.now = cycle
	}
	if c.e.sampleAt != 0 {
		c.e.maybeSample(c)
	}
	if c.ahead() {
		return
	}
	c.e.handoff(c)
}

// Yield hands control back without changing the clock. Useful inside spin
// loops that poll shared state at the same cycle.
func (c *Clock) Yield() {
	if c.ahead() {
		return
	}
	c.e.handoff(c)
}

// refreshMinOther rescans the other unfinished cores' clocks. Called only
// while this core is the one running, so every other core's clock is at its
// published value.
func (c *Clock) refreshMinOther() {
	e := c.e
	best := -1
	var bestClock uint64
	for i := range e.clocks {
		if i == c.core || e.done[i] {
			continue
		}
		if best < 0 || e.clocks[i] < bestClock {
			best, bestClock = i, e.clocks[i]
		}
	}
	c.minOtherCore = best
	c.minOtherClock = bestClock
}

// poison unwinds a core body whose engine is tearing down (stop was called on
// its suspended coroutine after another core panicked). It is recovered
// inside the coroutine, never observed by callers.
type poison struct{}

// Engine runs every core as a run-to-yield coroutine under a single-threaded
// min-(clock,core)-first event loop.
type Engine struct {
	clocks  []uint64 // last published clock per core (written at handoff)
	done    []bool   // set by the scheduler when a core's body returns
	resume  []func() (struct{}, bool)
	stop    []func()
	next    int // core the yielding coroutine handed control to
	started bool

	// sampleAt is the next simulated cycle at which sampler fires; 0 means no
	// sampler is installed, which keeps the disabled cost of the probe plane
	// to exactly one scalar compare per Advance/AdvanceTo.
	sampleAt uint64
	sampler  func(cycle uint64) uint64
}

// SetSampler installs a cycle-domain sampling callback: once global
// simulated time reaches firstDue, fn is invoked with the scheduled cycle
// and must return the next due cycle (strictly greater, or 0 to stop).
// Samples fire on the running core's coroutine, after its clock update and
// before any coroutine switch, so fn observes a machine whose global minimum
// time has just crossed the scheduled stamp — the stamps it is handed are
// monotonically nondecreasing regardless of per-event granularity. Passing
// fn == nil (or firstDue == 0) removes the sampler.
func (e *Engine) SetSampler(firstDue uint64, fn func(cycle uint64) uint64) {
	if fn == nil {
		firstDue = 0
	}
	e.sampleAt = firstDue
	e.sampler = fn
}

// maybeSample fires the sampler for every scheduled stamp that global
// simulated time — min(running core's clock, cached minimum of the others) —
// has reached. Global time never decreases, so stamps are emitted in order;
// the strictly-increasing return contract bounds the catch-up loop.
func (e *Engine) maybeSample(c *Clock) {
	gmin := c.now
	if c.minOtherCore >= 0 && c.minOtherClock < gmin {
		gmin = c.minOtherClock
	}
	for e.sampleAt != 0 && gmin >= e.sampleAt {
		e.sampleAt = e.sampler(e.sampleAt)
	}
}

// New creates an engine for n cores.
func New(n int) *Engine {
	if n <= 0 {
		panic(fmt.Sprintf("engine: non-positive core count %d", n))
	}
	return &Engine{
		clocks: make([]uint64, n),
		done:   make([]bool, n),
		resume: make([]func() (struct{}, bool), n),
		stop:   make([]func(), n),
	}
}

// Cores returns the number of cores managed by the engine.
func (e *Engine) Cores() int { return len(e.clocks) }

// Run executes body(core, clock) once per core, interleaved so that the core
// with the smallest clock always runs first. It returns when every body has
// returned, and reports the final per-core clocks.
//
// A body that panics propagates the panic out of Run after the other cores'
// coroutines are torn down, so test failures surface instead of leaking
// suspended state.
func (e *Engine) Run(body func(core int, c *Clock)) []uint64 {
	if e.started {
		panic("engine: Run called twice")
	}
	e.started = true

	n := len(e.clocks)
	for i := 0; i < n; i++ {
		core := i
		c := &Clock{core: core, e: e, minOtherCore: -1}
		e.resume[core], e.stop[core] = iter.Pull(func(yield func(struct{}) bool) {
			defer func() {
				if r := recover(); r != nil {
					if _, torn := r.(poison); !torn {
						panic(r)
					}
				}
			}()
			c.yield = yield
			// The first resume reaches a core whose clock equals the
			// scheduling minimum, exactly like the token arriving in the old
			// engine; refresh the cache before the body's first operation.
			c.refreshMinOther()
			body(core, c)
			e.clocks[core] = c.now
		})
	}
	// On any exit — normal or panicking — unwind every coroutine that is
	// still suspended so no core body outlives Run.
	defer func() {
		for i := range e.stop {
			e.stop[i]()
		}
	}()

	// The event loop. All clocks start at 0 and ties break towards the
	// lowest index, so core 0 runs first; thereafter control passes to the
	// core the yielding clock cached as the minimum, or, when a core
	// finishes, to the minimum of the remaining ones.
	live := n
	cur := 0
	for {
		_, suspended := e.resume[cur]()
		if suspended {
			// The core parked inside handoff after naming its successor.
			cur = e.next
			continue
		}
		e.done[cur] = true
		live--
		if live == 0 {
			break
		}
		best := -1
		for i := range e.clocks {
			if e.done[i] {
				continue
			}
			if best < 0 || e.clocks[i] < e.clocks[best] || (e.clocks[i] == e.clocks[best] && i < best) {
				best = i
			}
		}
		cur = best
	}

	out := make([]uint64, n)
	copy(out, e.clocks)
	return out
}

// handoff publishes the caller's clock, names the cached minimum core as the
// next to run and suspends this coroutine until the event loop resumes it,
// then refreshes the caller's view of the other cores.
func (e *Engine) handoff(c *Clock) {
	e.clocks[c.core] = c.now
	e.next = c.minOtherCore
	if !c.yield(struct{}{}) {
		// The engine is tearing down (stop was called while suspended):
		// unwind the body without running any more simulated work.
		panic(poison{})
	}
	c.refreshMinOther()
}
