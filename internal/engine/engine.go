// Package engine provides the deterministic multi-core scheduling substrate
// for the architectural simulator. Each simulated core runs as its own
// goroutine with a private cycle clock, but only the core holding the single
// scheduling token is ever allowed to touch shared simulator state. The token
// moves by direct handoff: when the advancing core is no longer the minimum
// (clock, core) among unfinished cores it passes the token straight to the
// core that is, so the interleaving of memory-system operations is fully
// determined by the timing model, never by the Go runtime scheduler.
//
// The hot path is allocation- and lock-free: every Clock caches the
// lexicographic minimum (clock, core) of the *other* unfinished cores, which
// cannot change while this core holds the token (parked cores do not move
// their clocks, and only the token holder can finish). An Advance that keeps
// the caller in front is therefore a single add-and-compare with no mutex,
// channel operation, or O(cores) scan; the scan happens once per actual
// handoff, when the resumed core refreshes its cache.
package engine

import (
	"fmt"
	"sync"
)

// Clock is a simulated core's private cycle counter plus its handle on the
// scheduling token. All simulator-facing operations of a core must be
// performed between Acquire (implicit in the engine callbacks) and the next
// Advance/AdvanceTo call.
type Clock struct {
	core int
	now  uint64
	e    *Engine

	// minOtherClock/minOtherCore cache the lexicographic minimum
	// (clock, core) among the other unfinished cores. The cache is refreshed
	// every time this core receives the token and stays valid while it holds
	// it: parked cores cannot advance, and cores only finish while holding
	// the token themselves. minOtherCore is -1 when no other core remains.
	minOtherClock uint64
	minOtherCore  int
}

// Core returns the core index this clock belongs to.
func (c *Clock) Core() int { return c.core }

// Now returns the core's current cycle.
func (c *Clock) Now() uint64 { return c.now }

// ahead reports whether this core is still the scheduling minimum, i.e.
// (now, core) <= (minOtherClock, minOtherCore) lexicographically.
func (c *Clock) ahead() bool {
	return c.minOtherCore < 0 || c.now < c.minOtherClock ||
		(c.now == c.minOtherClock && c.core < c.minOtherCore)
}

// Advance moves the core's clock forward by delta cycles and yields the
// scheduling token so that any core now lagging behind can catch up before
// this core performs its next shared-state operation. When the caller remains
// the minimum-clock core the yield is a no-op compare and no handoff happens.
func (c *Clock) Advance(delta uint64) {
	c.now += delta
	if c.ahead() {
		return
	}
	c.e.handoff(c)
}

// AdvanceTo moves the core's clock to cycle (if it is in the future) and
// yields. Advancing to the past is a no-op besides yielding.
func (c *Clock) AdvanceTo(cycle uint64) {
	if cycle > c.now {
		c.now = cycle
	}
	if c.ahead() {
		return
	}
	c.e.handoff(c)
}

// Yield hands the token back without changing the clock. Useful inside spin
// loops that poll shared state at the same cycle.
func (c *Clock) Yield() {
	if c.ahead() {
		return
	}
	c.e.handoff(c)
}

// refreshMinOther rescans the other unfinished cores' clocks. Called only
// while holding the token, whose channel transfer ordered every prior write
// to e.clocks and e.done before this read.
func (c *Clock) refreshMinOther() {
	e := c.e
	best := -1
	var bestClock uint64
	for i := range e.clocks {
		if i == c.core || e.done[i] {
			continue
		}
		if best < 0 || e.clocks[i] < bestClock {
			best, bestClock = i, e.clocks[i]
		}
	}
	c.minOtherCore = best
	c.minOtherClock = bestClock
}

// Engine runs one goroutine per core under min-clock-first scheduling with a
// single directly-handed-off token.
type Engine struct {
	mu      sync.Mutex // guards started only; the token orders everything else
	clocks  []uint64   // last published clock per core (written at handoff)
	done    []bool     // set by a finishing core while it holds the token
	parked  []chan struct{}
	started bool
}

// New creates an engine for n cores.
func New(n int) *Engine {
	if n <= 0 {
		panic(fmt.Sprintf("engine: non-positive core count %d", n))
	}
	e := &Engine{
		clocks: make([]uint64, n),
		done:   make([]bool, n),
		parked: make([]chan struct{}, n),
	}
	for i := range e.parked {
		e.parked[i] = make(chan struct{}, 1)
	}
	return e
}

// Cores returns the number of cores managed by the engine.
func (e *Engine) Cores() int { return len(e.clocks) }

// Run executes body(core, clock) once per core, interleaved so that the core
// with the smallest clock always runs first. It returns when every body has
// returned, and reports the final per-core clocks.
//
// A body that panics propagates the panic out of Run after the other cores
// are released, so test failures surface instead of deadlocking.
func (e *Engine) Run(body func(core int, c *Clock)) []uint64 {
	e.mu.Lock()
	if e.started {
		e.mu.Unlock()
		panic("engine: Run called twice")
	}
	e.started = true
	e.mu.Unlock()

	n := len(e.clocks)
	var wg sync.WaitGroup
	wg.Add(n)
	panics := make(chan interface{}, n)

	for i := 0; i < n; i++ {
		go func(core int) {
			defer wg.Done()
			c := &Clock{core: core, e: e, minOtherCore: -1}
			defer func() {
				if r := recover(); r != nil {
					panics <- r
				}
				e.finish(core)
			}()
			// Wait for the token before touching shared state; every core
			// starts at clock 0, so the injected token reaches core 0 first
			// and flows upward in index order, exactly as min-clock-first
			// with index tie-breaking demands.
			<-e.parked[core]
			c.refreshMinOther()
			body(core, c)
			e.clocks[core] = c.now
		}(i)
	}

	// Inject the single scheduling token: all clocks are 0, ties break
	// towards the lowest index, so core 0 runs first.
	e.parked[0] <- struct{}{}

	wg.Wait()
	close(panics)
	if r, ok := <-panics; ok {
		panic(r)
	}
	out := make([]uint64, n)
	copy(out, e.clocks)
	return out
}

// handoff publishes the caller's clock, passes the token to the cached
// minimum core and blocks until the token comes back, then refreshes the
// caller's view of the other cores.
func (e *Engine) handoff(c *Clock) {
	e.clocks[c.core] = c.now
	e.parked[c.minOtherCore] <- struct{}{}
	<-e.parked[c.core]
	c.refreshMinOther()
}

// finish marks a core as completed and hands the token to whichever core
// should run next. The finishing core holds the token (its body just
// returned, or panicked, while running), so the writes below are ordered
// before the receiver's resume.
func (e *Engine) finish(core int) {
	e.done[core] = true
	best := -1
	for i := range e.clocks {
		if e.done[i] {
			continue
		}
		if best < 0 || e.clocks[i] < e.clocks[best] || (e.clocks[i] == e.clocks[best] && i < best) {
			best = i
		}
	}
	if best >= 0 {
		e.parked[best] <- struct{}{}
	}
}
