// Package engine provides the deterministic multi-core scheduling substrate
// for the architectural simulator. Each simulated core runs as its own
// goroutine with a private cycle clock, but only the core with the globally
// minimum clock is ever allowed to touch shared simulator state. Cores hand
// the "token" back to the engine every time they advance their clock, so the
// interleaving of memory-system operations is fully determined by the timing
// model, never by the Go runtime scheduler.
package engine

import (
	"fmt"
	"sync"
)

// Clock is a simulated core's private cycle counter plus its handle on the
// scheduling token. All simulator-facing operations of a core must be
// performed between Acquire (implicit in the engine callbacks) and the next
// Advance/AdvanceTo call.
type Clock struct {
	core int
	now  uint64
	e    *Engine
}

// Core returns the core index this clock belongs to.
func (c *Clock) Core() int { return c.core }

// Now returns the core's current cycle.
func (c *Clock) Now() uint64 { return c.now }

// Advance moves the core's clock forward by delta cycles and yields the
// scheduling token so that any core now lagging behind can catch up before
// this core performs its next shared-state operation.
func (c *Clock) Advance(delta uint64) {
	c.now += delta
	c.e.yield(c.core, c.now)
}

// AdvanceTo moves the core's clock to cycle (if it is in the future) and
// yields. Advancing to the past is a no-op besides yielding.
func (c *Clock) AdvanceTo(cycle uint64) {
	if cycle > c.now {
		c.now = cycle
	}
	c.e.yield(c.core, c.now)
}

// Yield hands the token back without changing the clock. Useful inside spin
// loops that poll shared state at the same cycle.
func (c *Clock) Yield() {
	c.e.yield(c.core, c.now)
}

// Engine runs one goroutine per core under min-clock-first scheduling.
type Engine struct {
	mu      sync.Mutex
	clocks  []uint64
	done    []bool
	parked  []chan struct{}
	started bool
}

// New creates an engine for n cores.
func New(n int) *Engine {
	if n <= 0 {
		panic(fmt.Sprintf("engine: non-positive core count %d", n))
	}
	e := &Engine{
		clocks: make([]uint64, n),
		done:   make([]bool, n),
		parked: make([]chan struct{}, n),
	}
	for i := range e.parked {
		e.parked[i] = make(chan struct{}, 1)
	}
	return e
}

// Cores returns the number of cores managed by the engine.
func (e *Engine) Cores() int { return len(e.clocks) }

// Run executes body(core, clock) once per core, interleaved so that the core
// with the smallest clock always runs first. It returns when every body has
// returned, and reports the final per-core clocks.
//
// A body that panics propagates the panic out of Run after the other cores
// are released, so test failures surface instead of deadlocking.
func (e *Engine) Run(body func(core int, c *Clock)) []uint64 {
	e.mu.Lock()
	if e.started {
		e.mu.Unlock()
		panic("engine: Run called twice")
	}
	e.started = true
	e.mu.Unlock()

	n := len(e.clocks)
	var wg sync.WaitGroup
	wg.Add(n)
	panics := make(chan interface{}, n)

	for i := 0; i < n; i++ {
		go func(core int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics <- r
				}
				e.finish(core)
			}()
			c := &Clock{core: core, e: e}
			// Wait for our first turn before touching shared state.
			e.yield(core, 0)
			body(core, c)
			c.e.mu.Lock()
			c.e.clocks[core] = c.now
			c.e.mu.Unlock()
		}(i)
	}

	wg.Wait()
	close(panics)
	if r, ok := <-panics; ok {
		panic(r)
	}
	out := make([]uint64, n)
	e.mu.Lock()
	copy(out, e.clocks)
	e.mu.Unlock()
	return out
}

// yield records the caller's clock and blocks until the caller is the active
// core with the minimum clock among non-finished cores (ties broken by core
// index). Wake-ups are re-validated against the current minimum so a stale
// token buffered in the core's channel can never let it run out of order.
func (e *Engine) yield(core int, now uint64) {
	e.mu.Lock()
	e.clocks[core] = now
	for {
		next := e.minCoreLocked()
		if next == core || next < 0 {
			e.mu.Unlock()
			return
		}
		// Wake the lagging core, then wait for our own turn.
		e.wakeLocked(next)
		e.mu.Unlock()
		<-e.parked[core]
		e.mu.Lock()
	}
}

// finish marks a core as completed and wakes whichever core should run next.
func (e *Engine) finish(core int) {
	e.mu.Lock()
	e.done[core] = true
	if next := e.minCoreLocked(); next >= 0 {
		e.wakeLocked(next)
	}
	e.mu.Unlock()
}

// minCoreLocked returns the unfinished core with the smallest clock, or -1.
func (e *Engine) minCoreLocked() int {
	best := -1
	for i := range e.clocks {
		if e.done[i] {
			continue
		}
		if best < 0 || e.clocks[i] < e.clocks[best] {
			best = i
		}
	}
	return best
}

// wakeLocked makes core runnable without blocking if it is already runnable.
func (e *Engine) wakeLocked(core int) {
	select {
	case e.parked[core] <- struct{}{}:
	default:
	}
}
