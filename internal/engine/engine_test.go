package engine

import (
	"sync/atomic"
	"testing"
)

// TestMinClockOrdering checks that operations are globally ordered by core
// clock: a shared trace built under the scheduler must have non-decreasing
// timestamps.
func TestMinClockOrdering(t *testing.T) {
	const cores = 4
	e := New(cores)
	type event struct {
		core int
		at   uint64
	}
	var trace []event
	e.Run(func(core int, c *Clock) {
		for i := 0; i < 50; i++ {
			trace = append(trace, event{core: core, at: c.Now()})
			c.Advance(uint64(1 + (core+i)%7))
		}
	})
	if len(trace) != cores*50 {
		t.Fatalf("trace has %d events, want %d", len(trace), cores*50)
	}
	for i := 1; i < len(trace); i++ {
		if trace[i].at < trace[i-1].at {
			t.Fatalf("event %d at cycle %d recorded after event %d at cycle %d",
				i, trace[i].at, i-1, trace[i-1].at)
		}
	}
}

// TestRunReturnsFinalClocks checks the per-core clocks reported by Run.
func TestRunReturnsFinalClocks(t *testing.T) {
	e := New(3)
	final := e.Run(func(core int, c *Clock) {
		c.Advance(uint64(100 * (core + 1)))
	})
	for core, want := range []uint64{100, 200, 300} {
		if final[core] != want {
			t.Errorf("core %d final clock = %d, want %d", core, final[core], want)
		}
	}
}

// TestExclusiveExecution checks that only one core's body runs at a time
// (the property all shared simulator state relies on).
func TestExclusiveExecution(t *testing.T) {
	e := New(8)
	var inside int32
	e.Run(func(core int, c *Clock) {
		for i := 0; i < 200; i++ {
			if atomic.AddInt32(&inside, 1) != 1 {
				t.Errorf("two cores ran concurrently")
			}
			atomic.AddInt32(&inside, -1)
			c.Advance(1)
		}
	})
}

// TestAdvanceToBackwardsIsNoop ensures clocks never run backwards.
func TestAdvanceToBackwardsIsNoop(t *testing.T) {
	e := New(1)
	e.Run(func(core int, c *Clock) {
		c.Advance(50)
		c.AdvanceTo(10)
		if c.Now() != 50 {
			t.Errorf("AdvanceTo moved the clock backwards to %d", c.Now())
		}
		c.AdvanceTo(80)
		if c.Now() != 80 {
			t.Errorf("AdvanceTo(80) left the clock at %d", c.Now())
		}
	})
}

// TestUnevenFinish checks that the engine drains correctly when cores finish
// at very different times.
func TestUnevenFinish(t *testing.T) {
	e := New(4)
	counts := make([]int, 4)
	e.Run(func(core int, c *Clock) {
		for i := 0; i < (core+1)*25; i++ {
			counts[core]++
			c.Advance(3)
		}
	})
	for core, n := range counts {
		if n != (core+1)*25 {
			t.Errorf("core %d executed %d steps, want %d", core, n, (core+1)*25)
		}
	}
}
