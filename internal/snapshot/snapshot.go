// Package snapshot caches post-setup persistent-memory images so that sweeps
// do not re-run workload Setup for every cell. A prepared entry is built once
// per (hardware configuration, workload, parameters): an empty store gets the
// durable-log registry layout and the workload's Setup writes, then the image
// is frozen. Every cell that matches the key clones the frozen image
// copy-on-write — a page-table copy up front, one 32 KB slab copy per page
// the cell actually dirties — and shares the workload object itself, which is
// read-only once Setup has run.
//
// Lifecycle: an image is taken immediately after Setup (before any runtime or
// engine work), keyed by the full defaulted parameter set (Setup draws from
// the seed, so the seed is part of the key), cloned per cell, and dropped in
// insertion order once the cache exceeds its entry bound. Frozen images are
// immutable — a write to one panics — which is what makes concurrent clones
// from parallel sweep workers race-free.
package snapshot

import (
	"fmt"
	"sync"
	"time"

	"dhtm/internal/config"
	"dhtm/internal/memdev"
	"dhtm/internal/obs"
	"dhtm/internal/palloc"
	"dhtm/internal/registry"
	"dhtm/internal/stats"
	"dhtm/internal/wal"
	"dhtm/internal/workloads"
)

// Key identifies one prepared setup image. Every field that influences the
// post-setup store contents participates: the hardware configuration fixes
// the log-registry layout, and the workload name plus the fully defaulted
// parameters fix the heap contents Setup produces.
type Key struct {
	Cfg      config.Config
	Workload string
	Params   workloads.Params
}

// Prepared is a cached post-setup machine image.
type Prepared struct {
	// Workload is the set-up workload object. Workloads are read-only after
	// Setup (Next and Verify never mutate the receiver), so one object is
	// shared by every cell and goroutine using this entry.
	Workload workloads.Workload
	// Params is the fully defaulted parameter set the image was set up with.
	Params workloads.Params

	image *memdev.Store // frozen post-setup store image
	cache *Cache
}

// NewStore returns a fresh copy-on-write clone of the prepared image, ready
// to back one cell's environment.
func (p *Prepared) NewStore() *memdev.Store {
	if p.cache == nil {
		return p.image.Clone()
	}
	start := time.Now()
	s := p.image.Clone()
	p.cache.clones.Inc()
	p.cache.cloneSeconds.ObserveSince(start)
	return s
}

// Metrics is a point-in-time snapshot of the cache counters.
type Metrics struct {
	// Hits counts Prepare calls answered from a cached image.
	Hits uint64 `json:"hits"`
	// Misses counts Prepare calls that had to run workload Setup.
	Misses uint64 `json:"misses"`
	// Clones counts copy-on-write store clones handed to cells.
	Clones uint64 `json:"clones"`
	// Entries is the current number of cached images.
	Entries int `json:"entries"`
}

// Cache is a bounded, concurrency-safe cache of prepared setup images.
type Cache struct {
	maxEntries int

	mu      sync.Mutex
	entries map[Key]*entry
	order   []Key // insertion order, for eviction

	// Counters live in an obs registry (private for NewCache, obs.Default for
	// the package Default), so Metrics() and /metrics read the same series
	// Prepare and NewStore increment.
	hits         *obs.Counter
	misses       *obs.Counter
	clones       *obs.Counter
	evictions    *obs.Counter
	entriesGauge *obs.Gauge
	cloneSeconds *obs.Histogram
}

// entry lets concurrent Prepare calls for the same key build the image once:
// the first caller runs Setup inside once, the rest block on it.
type entry struct {
	once sync.Once
	prep *Prepared
	err  error
}

// NewCache returns a cache bounded to maxEntries images (<= 0 means the
// default bound of 32) with a private metrics registry — independent caches
// (and tests asserting exact counts) never share counters.
func NewCache(maxEntries int) *Cache {
	return NewCacheIn(obs.NewRegistry(), maxEntries)
}

// NewCacheIn is NewCache with the registry that receives the cache's
// dhtm_snapshot_* metric families.
func NewCacheIn(reg *obs.Registry, maxEntries int) *Cache {
	if maxEntries <= 0 {
		maxEntries = 32
	}
	return &Cache{
		maxEntries: maxEntries,
		entries:    make(map[Key]*entry),
		hits: reg.Counter("dhtm_snapshot_hits_total",
			"Prepare calls answered from a cached post-setup image."),
		misses: reg.Counter("dhtm_snapshot_misses_total",
			"Prepare calls that had to run workload Setup."),
		clones: reg.Counter("dhtm_snapshot_clones_total",
			"Copy-on-write store clones handed to cells."),
		evictions: reg.Counter("dhtm_snapshot_evictions_total",
			"Cached images dropped by the entry bound (insertion order)."),
		entriesGauge: reg.Gauge("dhtm_snapshot_entries",
			"Cached post-setup images currently resident."),
		cloneSeconds: reg.Histogram("dhtm_snapshot_clone_seconds",
			"Latency of one copy-on-write clone of a prepared image.", obs.IOBuckets),
	}
}

// Default is the process-wide cache shared by the harness, the crash-point
// explorer and the benchmarks, so repeated identical cells across experiment
// grids amortize their setup cost. Its counters land in obs.Default — the
// registry dhtm-serve exposes at /metrics and the CLIs dump with -metrics.
var Default = NewCacheIn(obs.Default, 0)

// Prepare returns the prepared image for (cfg, workload, p), running the
// workload's Setup at most once per key. The parameters are defaulted and
// core-matched to cfg exactly as the run driver does, so a run on the clone
// replays the byte-identical event sequence of a run on a freshly set-up
// machine.
func (c *Cache) Prepare(cfg config.Config, workload string, p workloads.Params) (*Prepared, error) {
	p = p.Defaults()
	if p.Cores != cfg.NumCores {
		p.Cores = cfg.NumCores
	}
	k := Key{Cfg: cfg, Workload: workload, Params: p}

	c.mu.Lock()
	e, ok := c.entries[k]
	if ok {
		c.hits.Inc()
	} else {
		c.misses.Inc()
		e = &entry{}
		c.entries[k] = e
		c.order = append(c.order, k)
		for len(c.order) > c.maxEntries {
			delete(c.entries, c.order[0])
			c.order = c.order[1:]
			c.evictions.Inc()
		}
		c.entriesGauge.Set(float64(len(c.entries)))
	}
	c.mu.Unlock()

	e.once.Do(func() { e.prep, e.err = c.build(k) })
	return e.prep, e.err
}

// build constructs the post-setup image for k: registry layout first, then
// workload Setup on the persistent heap — the same write order txn.NewEnv
// plus the run driver produce — and freezes the result.
func (c *Cache) build(k Key) (*Prepared, error) {
	store := memdev.NewStore()
	// The controller and stats here are construction-time throwaways: registry
	// layout writes are uncharged, and the real environment re-creates both on
	// the clone.
	ctl := memdev.NewController(k.Cfg, store, stats.New(k.Cfg.NumCores))
	wal.NewRegistry(ctl, k.Cfg.NumCores, k.Cfg.LogBytesPerThread, k.Cfg.OverflowEntriesPerThread)

	w, err := registry.NewWorkload(k.Workload)
	if err != nil {
		return nil, err
	}
	heap := palloc.New(store)
	if err := w.Setup(heap, k.Params); err != nil {
		return nil, fmt.Errorf("snapshot: setting up %s: %w", k.Workload, err)
	}
	store.Freeze()
	return &Prepared{Workload: w, Params: k.Params, image: store, cache: c}, nil
}

// Metrics returns the cache's counters, read from the same registry series
// the hot path increments.
func (c *Cache) Metrics() Metrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Metrics{
		Hits:    c.hits.Value(),
		Misses:  c.misses.Value(),
		Clones:  c.clones.Value(),
		Entries: len(c.entries),
	}
}
