package snapshot_test

import (
	"reflect"
	"testing"

	"dhtm/internal/config"
	"dhtm/internal/registry"
	"dhtm/internal/snapshot"
	"dhtm/internal/txn"
	"dhtm/internal/workloads"
)

func testConfig() config.Config {
	cfg := config.Default()
	cfg.NumCores = 2
	return cfg
}

// TestPrepareCachesAndCounts checks the cache contract: one Setup per key,
// shared Prepared entries, independent clones, and accurate counters.
func TestPrepareCachesAndCounts(t *testing.T) {
	c := snapshot.NewCache(4)
	cfg := testConfig()
	p := workloads.Params{Seed: 7}

	p1, err := c.Prepare(cfg, "hash", p)
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	p2, err := c.Prepare(cfg, "hash", p)
	if err != nil {
		t.Fatalf("Prepare (hit): %v", err)
	}
	if p1 != p2 {
		t.Fatalf("same key produced distinct prepared entries")
	}
	if p1.Workload.Name() != "hash" {
		t.Fatalf("prepared workload is %q", p1.Workload.Name())
	}

	s1, s2 := p1.NewStore(), p1.NewStore()
	if !s1.Equal(s2) {
		t.Fatalf("two clones of one image differ")
	}
	// Dirty one clone heavily: its sibling and any future clone stay clean.
	for i := uint64(0); i < 4096; i++ {
		s1.WriteWord(0x1000_0000+i*8, ^i)
	}
	s3 := p1.NewStore()
	if !s2.Equal(s3) {
		t.Fatalf("writes to one clone leaked into a later clone")
	}

	// A different seed is a different image.
	p3, err := c.Prepare(cfg, "hash", workloads.Params{Seed: 8})
	if err != nil {
		t.Fatalf("Prepare (new seed): %v", err)
	}
	if p3 == p1 || p3.NewStore().Equal(s2) {
		t.Fatalf("distinct seeds shared a setup image")
	}

	m := c.Metrics()
	if m.Hits != 1 || m.Misses != 2 || m.Clones != 4 || m.Entries != 2 {
		t.Fatalf("metrics = %+v, want hits=1 misses=2 clones=4 entries=2", m)
	}
}

// runFresh runs a cell the pre-snapshot way: fresh store, Setup inside the
// driver.
func runFresh(t *testing.T, cfg config.Config, design string, p workloads.Params, txPerCore int) (workloads.RunResult, *txn.Env) {
	t.Helper()
	env, err := txn.NewEnv(cfg)
	if err != nil {
		t.Fatalf("NewEnv: %v", err)
	}
	rt, err := registry.NewRuntime(env, design)
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	w, err := registry.NewWorkload("hash")
	if err != nil {
		t.Fatalf("NewWorkload: %v", err)
	}
	res, err := workloads.Run(env, rt, w, p, txPerCore, true)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res, env
}

// runSnapshotted runs the same cell from a snapshot clone.
func runSnapshotted(t *testing.T, c *snapshot.Cache, cfg config.Config, design string, p workloads.Params, txPerCore int) (workloads.RunResult, *txn.Env) {
	t.Helper()
	prep, err := c.Prepare(cfg, "hash", p)
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	env, err := txn.NewEnvOn(cfg, prep.NewStore())
	if err != nil {
		t.Fatalf("NewEnvOn: %v", err)
	}
	rt, err := registry.NewRuntime(env, design)
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	res, err := workloads.RunPrepared(env, rt, prep.Workload, p, txPerCore, true, nil, nil)
	if err != nil {
		t.Fatalf("RunPrepared: %v", err)
	}
	return res, env
}

// TestSnapshotRunMatchesFreshSetup is the equivalence gate for the snapshot
// path: a run from a copy-on-write clone of the cached post-setup image must
// reproduce a fresh-setup run exactly — same statistics to the last counter
// and the same final durable image — both on the cache-miss pass and on
// later cache-hit passes (which also proves one run leaks no state into the
// shared entry).
func TestSnapshotRunMatchesFreshSetup(t *testing.T) {
	cfg := testConfig()
	p := workloads.Params{Seed: 11}
	const txPerCore = 3

	for _, design := range []string{"DHTM", "SO"} {
		refRes, refEnv := runFresh(t, cfg, design, p, txPerCore)
		cache := snapshot.NewCache(4)
		for pass := 0; pass < 3; pass++ {
			res, env := runSnapshotted(t, cache, cfg, design, p, txPerCore)
			if !reflect.DeepEqual(refRes.Stats, res.Stats) {
				t.Fatalf("%s pass %d: stats diverge from fresh setup:\nfresh: %+v\nsnap:  %+v",
					design, pass, refRes.Stats, res.Stats)
			}
			if refRes.Committed != res.Committed || refRes.Cycles != res.Cycles {
				t.Fatalf("%s pass %d: result diverges: fresh %d/%d, snapshot %d/%d",
					design, pass, refRes.Committed, refRes.Cycles, res.Committed, res.Cycles)
			}
			if !refEnv.Store().Equal(env.Store()) {
				t.Fatalf("%s pass %d: final durable images differ", design, pass)
			}
			env.Release()
		}
	}
}

// TestCacheEviction checks the entry bound holds.
func TestCacheEviction(t *testing.T) {
	c := snapshot.NewCache(2)
	cfg := testConfig()
	for seed := int64(1); seed <= 3; seed++ {
		if _, err := c.Prepare(cfg, "queue", workloads.Params{Seed: seed}); err != nil {
			t.Fatalf("Prepare seed %d: %v", seed, err)
		}
	}
	m := c.Metrics()
	if m.Entries != 2 || m.Misses != 3 {
		t.Fatalf("metrics after eviction = %+v, want entries=2 misses=3", m)
	}
	// An evicted key is rebuilt, not resurrected.
	if _, err := c.Prepare(cfg, "queue", workloads.Params{Seed: 1}); err != nil {
		t.Fatalf("re-Prepare evicted key: %v", err)
	}
	if m = c.Metrics(); m.Misses != 4 {
		t.Fatalf("evicted key was served as a hit: %+v", m)
	}
}
