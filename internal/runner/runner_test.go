package runner

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"dhtm/internal/config"
	"dhtm/internal/stats"
	"dhtm/internal/workloads"
)

// fakeExec returns an ExecFunc whose result encodes the cell's identity and
// seed, so tests can check ordering and seeding without running a simulator.
func fakeExec(calls *atomic.Int64) ExecFunc {
	return func(c Cell) (workloads.RunResult, error) {
		calls.Add(1)
		st := stats.New(1)
		st.Core(0).Commits = uint64(c.Seed % 1000)
		st.Core(0).FinalCycle = 100
		return workloads.RunResult{
			Design:    c.Design,
			Workload:  c.Workload,
			Stats:     st,
			Committed: uint64(c.Seed % 1000),
			Cycles:    100,
		}, nil
	}
}

// grid builds an n-cell plan with distinct designs.
func grid(n int) Plan {
	p := Plan{Name: "test"}
	for i := 0; i < n; i++ {
		p.Add(Cell{ID: fmt.Sprintf("d%d/w", i), Design: fmt.Sprintf("d%d", i), Workload: "w", TxPerCore: 4})
	}
	return p
}

// TestRunExecutesEveryCellInPlanOrder checks that results land in plan
// order at any parallelism, with every cell executed exactly once.
func TestRunExecutesEveryCellInPlanOrder(t *testing.T) {
	for _, par := range []int{1, 4, 16} {
		var calls atomic.Int64
		rs, err := Run(grid(9), fakeExec(&calls), Options{Parallel: par})
		if err != nil {
			t.Fatalf("parallel=%d: %v", par, err)
		}
		if calls.Load() != 9 {
			t.Fatalf("parallel=%d: executed %d cells, want 9", par, calls.Load())
		}
		for i, r := range rs.Results {
			if want := fmt.Sprintf("d%d/w", i); r.Cell.ID != want {
				t.Fatalf("parallel=%d: result %d is cell %q, want %q", par, i, r.Cell.ID, want)
			}
			if r.Err != nil {
				t.Fatalf("parallel=%d: cell %d failed: %v", par, i, r.Err)
			}
		}
	}
}

// TestDerivedSeedsAreContentAddressed checks that per-cell seeds depend only
// on the cell's semantic fields and the base seed — never on plan position
// or parallelism — so parallel sweeps reproduce serial ones.
func TestDerivedSeedsAreContentAddressed(t *testing.T) {
	c := Cell{ID: "a", Design: "DHTM", Workload: "hash", TxPerCore: 8}
	if DeriveSeed(1, c) != DeriveSeed(1, c) {
		t.Fatalf("seed derivation is not deterministic")
	}
	if DeriveSeed(1, c) == DeriveSeed(2, c) {
		t.Fatalf("base seed does not influence derived seeds")
	}
	other := c
	other.Workload = "queue"
	if DeriveSeed(1, c) == DeriveSeed(1, other) {
		t.Fatalf("distinct cells derived the same seed")
	}
	// The ID is addressing, not identity: renaming a cell keeps its seed.
	renamed := c
	renamed.ID = "b"
	if DeriveSeed(1, c) != DeriveSeed(1, renamed) {
		t.Fatalf("cell ID leaked into seed derivation")
	}
	// Spelling out a default override hashes like leaving it unset.
	spelled := c
	spelled.Overrides = Overrides{BandwidthScale: 1.0, LogBufferEntries: config.Default().LogBufferEntries}
	if DeriveSeed(1, c) != DeriveSeed(1, spelled) {
		t.Fatalf("default-valued override changed the derived seed")
	}
	buf := c
	buf.Overrides = Overrides{LogBufferEntries: 4}
	if DeriveSeed(1, c) == DeriveSeed(1, buf) {
		t.Fatalf("log-buffer override did not change the derived seed")
	}
	set := c
	set.Overrides = Overrides{SetConflictPolicy: true, ConflictPolicy: config.RequesterWins}
	if DeriveSeed(1, c) == DeriveSeed(1, set) {
		t.Fatalf("conflict-policy override did not change the derived seed")
	}

	// The same cell run at different parallelism gets the same seed.
	for _, par := range []int{1, 8} {
		var calls atomic.Int64
		rs, err := Run(Plan{Name: "p", Cells: []Cell{c}}, fakeExec(&calls), Options{Parallel: par, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		if got, want := rs.Results[0].Cell.Seed, DeriveSeed(7, c); got != want {
			t.Fatalf("parallel=%d: seed %d, want %d", par, got, want)
		}
	}
}

// TestExplicitSeedIsRespected checks that a cell pinning its own seed wins
// over derivation.
func TestExplicitSeedIsRespected(t *testing.T) {
	var calls atomic.Int64
	p := Plan{Name: "p", Cells: []Cell{{ID: "a", Design: "d", Workload: "w", Seed: 123}}}
	rs, err := Run(p, fakeExec(&calls), Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Results[0].Cell.Seed != 123 {
		t.Fatalf("explicit seed overwritten: got %d", rs.Results[0].Cell.Seed)
	}
}

// TestErrorsAreCollectedNotFailFast checks that one failing cell neither
// aborts the sweep nor hides sibling results.
func TestErrorsAreCollectedNotFailFast(t *testing.T) {
	boom := errors.New("boom")
	exec := func(c Cell) (workloads.RunResult, error) {
		if c.ID == "d1/w" {
			return workloads.RunResult{}, boom
		}
		return workloads.RunResult{Committed: 1, Cycles: 1}, nil
	}
	rs, err := Run(grid(3), exec, Options{Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Results[1].Err == nil || !errors.Is(rs.Results[1].Err, boom) {
		t.Fatalf("failing cell's error lost: %v", rs.Results[1].Err)
	}
	for _, i := range []int{0, 2} {
		if rs.Results[i].Err != nil {
			t.Fatalf("sibling cell %d failed: %v", i, rs.Results[i].Err)
		}
	}
	if rs.Err() == nil || !errors.Is(rs.Err(), boom) {
		t.Fatalf("ResultSet.Err did not surface the failure: %v", rs.Err())
	}
	if _, err := rs.Run("d1/w"); err == nil {
		t.Fatalf("Run on a failed cell returned no error")
	}
	if _, err := rs.Run("nope"); err == nil {
		t.Fatalf("Run on a missing cell returned no error")
	}
	if _, err := rs.Run("d0/w"); err != nil {
		t.Fatalf("Run on a good cell failed: %v", err)
	}
}

// TestProgressReportsEveryCell checks the progress callback fires once per
// cell with a monotonically increasing done count.
func TestProgressReportsEveryCell(t *testing.T) {
	var calls atomic.Int64
	var events int
	last := 0
	_, err := Run(grid(7), fakeExec(&calls), Options{Parallel: 4, Progress: func(ev ProgressEvent) {
		events++
		if ev.Done != last+1 || ev.Total != 7 {
			t.Errorf("progress event out of order: done=%d total=%d after %d", ev.Done, ev.Total, last)
		}
		last = ev.Done
	}})
	if err != nil {
		t.Fatal(err)
	}
	if events != 7 {
		t.Fatalf("progress fired %d times, want 7", events)
	}
}

// TestPlanValidation rejects ambiguous plans.
func TestPlanValidation(t *testing.T) {
	dup := Plan{Name: "dup", Cells: []Cell{{ID: "a", Design: "d", Workload: "w"}, {ID: "a", Design: "e", Workload: "w"}}}
	if _, err := Run(dup, fakeExec(new(atomic.Int64)), Options{}); err == nil {
		t.Fatalf("duplicate cell IDs accepted")
	}
	anon := Plan{Name: "anon", Cells: []Cell{{Design: "d", Workload: "w"}}}
	if _, err := Run(anon, fakeExec(new(atomic.Int64)), Options{}); err == nil {
		t.Fatalf("empty cell ID accepted")
	}
}

// TestResultStatsAreSnapshotted checks that a result's Stats share nothing
// with what the exec function returned.
func TestResultStatsAreSnapshotted(t *testing.T) {
	src := stats.New(1)
	src.Core(0).Commits = 5
	exec := func(Cell) (workloads.RunResult, error) {
		return workloads.RunResult{Stats: src}, nil
	}
	rs, err := Run(grid(1), exec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	src.Core(0).Commits = 99
	if rs.Results[0].Run.Stats.Core(0).Commits != 5 {
		t.Fatalf("result stats alias the exec function's Stats")
	}
}

// TestMergedStats checks sweep-wide aggregation skips failed cells.
func TestMergedStats(t *testing.T) {
	exec := func(c Cell) (workloads.RunResult, error) {
		if c.ID == "d0/w" {
			return workloads.RunResult{}, errors.New("down")
		}
		st := stats.New(1)
		st.Core(0).Commits = 4
		return workloads.RunResult{Stats: st}, nil
	}
	rs, err := Run(grid(3), exec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := rs.MergedStats().TotalCommits(); got != 8 {
		t.Fatalf("merged commits = %d, want 8 (two successful cells)", got)
	}
}

// TestForEachCoversEveryIndexConcurrently checks the raw fan-out primitive:
// every index runs exactly once, at any worker-pool size (including larger
// than n and the GOMAXPROCS default), and an empty range is a no-op.
func TestForEachCoversEveryIndexConcurrently(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		var hits [37]int32
		ForEach(len(hits), workers, func(i int) {
			atomic.AddInt32(&hits[i], 1)
		})
		for i, n := range hits {
			if n != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, n)
			}
		}
	}
	ForEach(0, 4, func(int) { t.Fatalf("fn called for an empty range") })
}
