package runner

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dhtm/internal/config"
	"dhtm/internal/resultstore"
	"dhtm/internal/stats"
	"dhtm/internal/workloads"
)

// fakeExec returns an ExecFunc whose result encodes the cell's identity and
// seed, so tests can check ordering and seeding without running a simulator.
func fakeExec(calls *atomic.Int64) ExecFunc {
	return func(c Cell) (workloads.RunResult, error) {
		calls.Add(1)
		st := stats.New(1)
		st.Core(0).Commits = uint64(c.Seed % 1000)
		st.Core(0).FinalCycle = 100
		return workloads.RunResult{
			Design:    c.Design,
			Workload:  c.Workload,
			Stats:     st,
			Committed: uint64(c.Seed % 1000),
			Cycles:    100,
		}, nil
	}
}

// grid builds an n-cell plan with distinct designs.
func grid(n int) Plan {
	p := Plan{Name: "test"}
	for i := 0; i < n; i++ {
		p.Add(Cell{ID: fmt.Sprintf("d%d/w", i), Design: fmt.Sprintf("d%d", i), Workload: "w", TxPerCore: 4})
	}
	return p
}

// TestRunExecutesEveryCellInPlanOrder checks that results land in plan
// order at any parallelism, with every cell executed exactly once.
func TestRunExecutesEveryCellInPlanOrder(t *testing.T) {
	for _, par := range []int{1, 4, 16} {
		var calls atomic.Int64
		rs, err := Run(context.Background(), grid(9), fakeExec(&calls), Options{Parallel: par})
		if err != nil {
			t.Fatalf("parallel=%d: %v", par, err)
		}
		if calls.Load() != 9 {
			t.Fatalf("parallel=%d: executed %d cells, want 9", par, calls.Load())
		}
		for i, r := range rs.Results {
			if want := fmt.Sprintf("d%d/w", i); r.Cell.ID != want {
				t.Fatalf("parallel=%d: result %d is cell %q, want %q", par, i, r.Cell.ID, want)
			}
			if r.Err != nil {
				t.Fatalf("parallel=%d: cell %d failed: %v", par, i, r.Err)
			}
		}
	}
}

// TestDerivedSeedsAreContentAddressed checks that per-cell seeds depend only
// on the cell's semantic fields and the base seed — never on plan position
// or parallelism — so parallel sweeps reproduce serial ones.
func TestDerivedSeedsAreContentAddressed(t *testing.T) {
	c := Cell{ID: "a", Design: "DHTM", Workload: "hash", TxPerCore: 8}
	if DeriveSeed(1, c) != DeriveSeed(1, c) {
		t.Fatalf("seed derivation is not deterministic")
	}
	if DeriveSeed(1, c) == DeriveSeed(2, c) {
		t.Fatalf("base seed does not influence derived seeds")
	}
	other := c
	other.Workload = "queue"
	if DeriveSeed(1, c) == DeriveSeed(1, other) {
		t.Fatalf("distinct cells derived the same seed")
	}
	// The ID is addressing, not identity: renaming a cell keeps its seed.
	renamed := c
	renamed.ID = "b"
	if DeriveSeed(1, c) != DeriveSeed(1, renamed) {
		t.Fatalf("cell ID leaked into seed derivation")
	}
	// Spelling out a default override hashes like leaving it unset.
	spelled := c
	spelled.Overrides = Overrides{BandwidthScale: 1.0, LogBufferEntries: config.Default().LogBufferEntries}
	if DeriveSeed(1, c) != DeriveSeed(1, spelled) {
		t.Fatalf("default-valued override changed the derived seed")
	}
	buf := c
	buf.Overrides = Overrides{LogBufferEntries: 4}
	if DeriveSeed(1, c) == DeriveSeed(1, buf) {
		t.Fatalf("log-buffer override did not change the derived seed")
	}
	set := c
	set.Overrides = Overrides{SetConflictPolicy: true, ConflictPolicy: config.RequesterWins}
	if DeriveSeed(1, c) == DeriveSeed(1, set) {
		t.Fatalf("conflict-policy override did not change the derived seed")
	}

	// The same cell run at different parallelism gets the same seed.
	for _, par := range []int{1, 8} {
		var calls atomic.Int64
		rs, err := Run(context.Background(), Plan{Name: "p", Cells: []Cell{c}}, fakeExec(&calls), Options{Parallel: par, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		if got, want := rs.Results[0].Cell.Seed, DeriveSeed(7, c); got != want {
			t.Fatalf("parallel=%d: seed %d, want %d", par, got, want)
		}
	}
}

// TestExplicitSeedIsRespected checks that a cell pinning its own seed wins
// over derivation.
func TestExplicitSeedIsRespected(t *testing.T) {
	var calls atomic.Int64
	p := Plan{Name: "p", Cells: []Cell{{ID: "a", Design: "d", Workload: "w", Seed: 123}}}
	rs, err := Run(context.Background(), p, fakeExec(&calls), Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Results[0].Cell.Seed != 123 {
		t.Fatalf("explicit seed overwritten: got %d", rs.Results[0].Cell.Seed)
	}
}

// TestErrorsAreCollectedNotFailFast checks that one failing cell neither
// aborts the sweep nor hides sibling results.
func TestErrorsAreCollectedNotFailFast(t *testing.T) {
	boom := errors.New("boom")
	exec := func(c Cell) (workloads.RunResult, error) {
		if c.ID == "d1/w" {
			return workloads.RunResult{}, boom
		}
		return workloads.RunResult{Committed: 1, Cycles: 1}, nil
	}
	rs, err := Run(context.Background(), grid(3), exec, Options{Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Results[1].Err == nil || !errors.Is(rs.Results[1].Err, boom) {
		t.Fatalf("failing cell's error lost: %v", rs.Results[1].Err)
	}
	for _, i := range []int{0, 2} {
		if rs.Results[i].Err != nil {
			t.Fatalf("sibling cell %d failed: %v", i, rs.Results[i].Err)
		}
	}
	if rs.Err() == nil || !errors.Is(rs.Err(), boom) {
		t.Fatalf("ResultSet.Err did not surface the failure: %v", rs.Err())
	}
	if _, err := rs.Run("d1/w"); err == nil {
		t.Fatalf("Run on a failed cell returned no error")
	}
	if _, err := rs.Run("nope"); err == nil {
		t.Fatalf("Run on a missing cell returned no error")
	}
	if _, err := rs.Run("d0/w"); err != nil {
		t.Fatalf("Run on a good cell failed: %v", err)
	}
}

// TestProgressReportsEveryCell checks the progress callback fires once per
// cell with a monotonically increasing done count.
func TestProgressReportsEveryCell(t *testing.T) {
	var calls atomic.Int64
	var events int
	last := 0
	_, err := Run(context.Background(), grid(7), fakeExec(&calls), Options{Parallel: 4, Progress: func(ev ProgressEvent) {
		events++
		if ev.Done != last+1 || ev.Total != 7 {
			t.Errorf("progress event out of order: done=%d total=%d after %d", ev.Done, ev.Total, last)
		}
		last = ev.Done
	}})
	if err != nil {
		t.Fatal(err)
	}
	if events != 7 {
		t.Fatalf("progress fired %d times, want 7", events)
	}
}

// TestPlanValidation rejects ambiguous plans.
func TestPlanValidation(t *testing.T) {
	dup := Plan{Name: "dup", Cells: []Cell{{ID: "a", Design: "d", Workload: "w"}, {ID: "a", Design: "e", Workload: "w"}}}
	if _, err := Run(context.Background(), dup, fakeExec(new(atomic.Int64)), Options{}); err == nil {
		t.Fatalf("duplicate cell IDs accepted")
	}
	anon := Plan{Name: "anon", Cells: []Cell{{Design: "d", Workload: "w"}}}
	if _, err := Run(context.Background(), anon, fakeExec(new(atomic.Int64)), Options{}); err == nil {
		t.Fatalf("empty cell ID accepted")
	}
}

// TestResultStatsAreSnapshotted checks that a result's Stats share nothing
// with what the exec function returned.
func TestResultStatsAreSnapshotted(t *testing.T) {
	src := stats.New(1)
	src.Core(0).Commits = 5
	exec := func(Cell) (workloads.RunResult, error) {
		return workloads.RunResult{Stats: src}, nil
	}
	rs, err := Run(context.Background(), grid(1), exec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	src.Core(0).Commits = 99
	if rs.Results[0].Run.Stats.Core(0).Commits != 5 {
		t.Fatalf("result stats alias the exec function's Stats")
	}
}

// TestMergedStats checks sweep-wide aggregation skips failed cells.
func TestMergedStats(t *testing.T) {
	exec := func(c Cell) (workloads.RunResult, error) {
		if c.ID == "d0/w" {
			return workloads.RunResult{}, errors.New("down")
		}
		st := stats.New(1)
		st.Core(0).Commits = 4
		return workloads.RunResult{Stats: st}, nil
	}
	rs, err := Run(context.Background(), grid(3), exec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := rs.MergedStats().TotalCommits(); got != 8 {
		t.Fatalf("merged commits = %d, want 8 (two successful cells)", got)
	}
}

// TestForEachCoversEveryIndexConcurrently checks the raw fan-out primitive:
// every index runs exactly once, at any worker-pool size (including larger
// than n and the GOMAXPROCS default), and an empty range is a no-op.
func TestForEachCoversEveryIndexConcurrently(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		var hits [37]int32
		ForEach(context.Background(), len(hits), workers, func(i int) {
			atomic.AddInt32(&hits[i], 1)
		})
		for i, n := range hits {
			if n != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, n)
			}
		}
	}
	ForEach(context.Background(), 0, 4, func(int) { t.Fatalf("fn called for an empty range") })
}

// TestRunCancellation checks clean cancellation: in-flight cells finish and
// report normally, never-started cells carry ErrCancelled (with their
// derived seed filled in, for resumption), and the result set still covers
// the whole plan.
func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	exec := func(c Cell) (workloads.RunResult, error) {
		if c.ID == "d0/w" {
			close(started)
			cancel()
		}
		return workloads.RunResult{Design: c.Design}, nil
	}
	// One worker: cell 0 cancels mid-flight, cells 1 and 2 must be skipped.
	rs, err := Run(ctx, grid(3), exec, Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	first := rs.Results[0]
	if first.Err != nil || first.Run.Design != "d0" {
		t.Fatalf("in-flight cell did not finish cleanly: %+v", first)
	}
	for i := 1; i < 3; i++ {
		r := rs.Results[i]
		if !errors.Is(r.Err, ErrCancelled) || !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("cell %d: err = %v, want ErrCancelled wrapping context.Canceled", i, r.Err)
		}
		if r.Cell.Seed == 0 {
			t.Fatalf("cancelled cell %d lost its derived seed", i)
		}
	}
	if rs.Err() == nil {
		t.Fatalf("cancelled sweep reports no error")
	}
}

// TestForEachStopsDispatchOnCancel checks the primitive's contract directly.
func TestForEachStopsDispatchOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	dispatched := ForEach(ctx, 1000, 1, func(i int) {
		if ran.Add(1) == 3 {
			cancel()
		}
	})
	if got := ran.Load(); got >= 1000 {
		t.Fatalf("cancellation did not stop dispatch (%d ran)", got)
	}
	if int(ran.Load()) != dispatched {
		t.Fatalf("dispatched %d but ran %d", dispatched, ran.Load())
	}
}

// storePlan builds a plan of n distinct cells wired to a store.
func storePlan(t *testing.T, n int, dir string) Plan {
	t.Helper()
	st, err := resultstore.Open(dir, resultstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := grid(n)
	p.Store = st
	return p
}

// TestRunReadsThroughStore checks the read-through/write-through layer: a
// cold sweep simulates and persists every cell, a warm sweep (same plan,
// fresh store instance over the same directory) answers every cell from the
// store with byte-identical results and zero simulations.
func TestRunReadsThroughStore(t *testing.T) {
	dir := t.TempDir()

	var cold atomic.Int64
	p1 := storePlan(t, 4, dir)
	rs1, err := Run(context.Background(), p1, fakeExec(&cold), Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Load() != 4 {
		t.Fatalf("cold sweep simulated %d cells, want 4", cold.Load())
	}
	for _, r := range rs1.Results {
		if r.Cached {
			t.Fatalf("cold sweep reported a cache hit: %+v", r.Cell)
		}
	}

	var warm atomic.Int64
	p2 := storePlan(t, 4, dir)
	rs2, err := Run(context.Background(), p2, fakeExec(&warm), Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Load() != 0 {
		t.Fatalf("warm sweep simulated %d cells, want 0", warm.Load())
	}
	m := p2.Store.Metrics()
	if m.Hits() != 4 || m.Computes != 0 {
		t.Fatalf("warm metrics = %+v, want 4 hits, 0 computes", m)
	}
	for i := range rs2.Results {
		if !rs2.Results[i].Cached {
			t.Fatalf("warm cell %d not marked cached", i)
		}
		if !reflect.DeepEqual(rs1.Results[i].Run, rs2.Results[i].Run) {
			t.Fatalf("warm cell %d differs from cold run:\n%+v\nvs\n%+v",
				i, rs1.Results[i].Run, rs2.Results[i].Run)
		}
	}

	// A different base seed addresses different results: simulate again.
	var reseeded atomic.Int64
	p3 := storePlan(t, 4, dir)
	if _, err := Run(context.Background(), p3, fakeExec(&reseeded), Options{Seed: 8}); err != nil {
		t.Fatal(err)
	}
	if reseeded.Load() != 4 {
		t.Fatalf("different seed reused cached results (%d simulated)", reseeded.Load())
	}
}

// TestConcurrentSweepsSimulateOnce checks the acceptance property: two
// concurrent runs of the same plan against one shared store simulate each
// cell exactly once between them.
func TestConcurrentSweepsSimulateOnce(t *testing.T) {
	st, err := resultstore.Open(t.TempDir(), resultstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var sims atomic.Int64
	slow := func(c Cell) (workloads.RunResult, error) {
		sims.Add(1)
		time.Sleep(5 * time.Millisecond) // widen the race window
		return workloads.RunResult{Design: c.Design, Committed: uint64(c.Seed)}, nil
	}
	const n = 6
	var wg sync.WaitGroup
	sets := make([]*ResultSet, 2)
	for s := range sets {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			p := grid(n)
			p.Store = st
			rs, err := Run(context.Background(), p, slow, Options{Seed: 7, Parallel: 3})
			if err != nil {
				t.Error(err)
				return
			}
			sets[s] = rs
		}(s)
	}
	wg.Wait()
	if sims.Load() != n {
		t.Fatalf("concurrent sweeps simulated %d cells, want exactly %d", sims.Load(), n)
	}
	for i := 0; i < n; i++ {
		if !reflect.DeepEqual(sets[0].Results[i].Run, sets[1].Results[i].Run) {
			t.Fatalf("cell %d: the two sweeps disagree", i)
		}
	}
}
