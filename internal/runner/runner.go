// Package runner executes declarative experiment grids. An experiment is a
// Plan — a flat list of Cells, each naming one independent simulation
// (design × workload × core count × sweep overrides) — and the runner fans
// the cells out across a pool of workers. Every cell builds its own fully
// isolated simulated system, so the sweep is embarrassingly parallel: results
// land in plan order regardless of completion order, per-cell seeds are
// derived from the cell's content rather than its schedule, and errors are
// collected per cell instead of aborting the sweep. Together these make a
// parallel run byte-identical to a serial one.
package runner

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"dhtm/internal/config"
	"dhtm/internal/obs"
	"dhtm/internal/resultstore"
	"dhtm/internal/stats"
	"dhtm/internal/workloads"
)

// Sweep metrics land in obs.Default: every sweep in the process (CLI runs,
// serve jobs, crash-test counting passes) rolls into one telemetry plane.
// Counters are monotone totals, so per-plan numbers stay in ResultSet.
var (
	metricCellsStarted = obs.Default.Counter("dhtm_runner_cells_started_total",
		"Sweep cells handed to a worker for execution.")
	metricCellsOK = obs.Default.Counter("dhtm_runner_cells_completed_total",
		"Sweep cells completed, by outcome.", obs.L("status", "ok"))
	metricCellsCached = obs.Default.Counter("dhtm_runner_cells_completed_total",
		"Sweep cells completed, by outcome.", obs.L("status", "cached"))
	metricCellsFailed = obs.Default.Counter("dhtm_runner_cells_completed_total",
		"Sweep cells completed, by outcome.", obs.L("status", "failed"))
	metricCellSeconds = obs.Default.Histogram("dhtm_runner_cell_seconds",
		"Wall-clock duration of actually-simulated (non-cached) cells.", obs.DurationBuckets)
	metricPhases = obs.CellPhaseHistograms(obs.Default)
)

// ErrCancelled marks cells whose sweep was cancelled before they could run.
// It wraps context.Canceled, so both errors.Is(err, ErrCancelled) and
// errors.Is(err, context.Canceled) hold.
var ErrCancelled = fmt.Errorf("runner: cell cancelled: %w", context.Canceled)

// DefaultSeed is the base seed used when Options.Seed is zero. It matches the
// historical workloads.Params default so unscripted runs stay comparable.
const DefaultSeed = 42

// Overrides are the per-cell deviations from the Table III base machine. The
// zero value means "no override"; only non-zero (or explicitly set) fields
// are applied, and only set fields contribute to the cell's identity key.
type Overrides struct {
	// LogBufferEntries overrides the DHTM coalescing log-buffer size when > 0
	// (the Figure 6 sweep axis).
	LogBufferEntries int `json:"log_buffer_entries,omitempty"`
	// BandwidthScale multiplies the memory bandwidth when > 0 (the Table VII
	// sweep axis).
	BandwidthScale float64 `json:"bandwidth_scale,omitempty"`
	// ConflictPolicy replaces the conflict-resolution policy when
	// SetConflictPolicy is true (the ablation axis).
	ConflictPolicy    config.ConflictPolicy `json:"conflict_policy,omitempty"`
	SetConflictPolicy bool                  `json:"set_conflict_policy,omitempty"`
}

// Apply rewrites cfg with the set overrides.
func (ov Overrides) Apply(cfg config.Config) config.Config {
	if ov.LogBufferEntries > 0 {
		cfg.LogBufferEntries = ov.LogBufferEntries
	}
	if ov.BandwidthScale > 0 {
		cfg.BandwidthScale = ov.BandwidthScale
	}
	if ov.SetConflictPolicy {
		cfg.ConflictPolicy = ov.ConflictPolicy
	}
	return cfg
}

// key renders only the overrides that deviate from config.Default(), so a
// cell that spells out a default explicitly hashes identically to one that
// leaves it unset.
func (ov Overrides) key() string {
	def := config.Default()
	var parts []string
	if ov.LogBufferEntries > 0 && ov.LogBufferEntries != def.LogBufferEntries {
		parts = append(parts, fmt.Sprintf("logbuf=%d", ov.LogBufferEntries))
	}
	if ov.BandwidthScale > 0 && ov.BandwidthScale != def.BandwidthScale {
		parts = append(parts, fmt.Sprintf("bw=%g", ov.BandwidthScale))
	}
	if ov.SetConflictPolicy && ov.ConflictPolicy != def.ConflictPolicy {
		parts = append(parts, fmt.Sprintf("policy=%s", ov.ConflictPolicy))
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// Cell is one independent simulation in a sweep grid.
type Cell struct {
	// ID addresses the cell's result within its plan (reducers look results
	// up by ID). IDs must be unique within a plan.
	ID string `json:"id"`
	// Design is the transactional design to instantiate (harness.Designs).
	Design string `json:"design"`
	// Workload names the benchmark to drive.
	Workload string `json:"workload"`
	// Cores overrides the simulated core count when > 0.
	Cores int `json:"cores,omitempty"`
	// TxPerCore is the number of transactions each core issues (0 = 16).
	TxPerCore int `json:"tx_per_core,omitempty"`
	// OpsPerTx overrides the workload's per-transaction operation count when
	// > 0 — the footprint axis of the scenario API. Zero keeps the
	// workload's own default, and contributes nothing to the cell's identity
	// key, so pre-existing cells keep their derived seeds.
	OpsPerTx int `json:"ops_per_tx,omitempty"`
	// Seed is the workload generation seed. Zero means "derive": the runner
	// fills it from the sweep's base seed and the cell's identity key.
	Seed int64 `json:"seed,omitempty"`
	// Overrides deviates from the base machine configuration.
	Overrides Overrides `json:"overrides,omitempty"`
}

// Key is the cell's semantic identity: every field that changes what is
// simulated, and nothing that depends on where the cell sits in a plan. Two
// cells with equal keys receive equal derived seeds and therefore produce
// identical results, even across different experiments.
func (c Cell) Key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s|%s|cores=%d|tx=%d", c.Design, c.Workload, c.Cores, c.TxPerCore)
	if c.OpsPerTx > 0 {
		fmt.Fprintf(&b, "|ops=%d", c.OpsPerTx)
	}
	if ov := c.Overrides.key(); ov != "" {
		b.WriteByte('|')
		b.WriteString(ov)
	}
	return b.String()
}

// DeriveSeed mixes the sweep's base seed with the cell's identity key. The
// derivation is pure, so any cell can be re-run individually (dhtm-sim with
// the same -seed and parameters) and reproduce its in-sweep numbers exactly.
func DeriveSeed(base int64, c Cell) int64 {
	if base == 0 {
		base = DefaultSeed
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|", base)
	h.Write([]byte(c.Key()))
	// The splitmix64 finalizer spreads the FNV bits; keep the seed positive
	// so it never collides with the zero "derive me" sentinel.
	z := Mix64(h.Sum64())
	s := int64(z &^ (1 << 63))
	if s == 0 {
		s = DefaultSeed
	}
	return s
}

// Mix64 is the splitmix64 finalizer: a cheap, high-quality bit mixer for
// deterministic, content-derived pseudo-randomness (seed derivation here,
// point sampling and torn-prefix lengths in the crash-point explorer).
func Mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Plan is a declarative experiment: a named grid of independent cells.
type Plan struct {
	// Name identifies the sweep in progress reports and result documents.
	Name string `json:"name"`
	// Cells are the grid points. Order fixes result order, nothing else.
	Cells []Cell `json:"cells"`
	// Store, when non-nil, turns execution into a read-through/write-through
	// layer over the content-addressed result store: a cell whose
	// (Key(), seed) is already stored is answered without simulating, a
	// computed cell is persisted, and concurrent requests for the same cell
	// (within or across plans sharing the store) simulate it exactly once.
	Store *resultstore.Store `json:"-"`
}

// Add appends a cell and returns its ID, for fluent plan construction.
func (p *Plan) Add(c Cell) string {
	p.Cells = append(p.Cells, c)
	return c.ID
}

// Validate rejects plans with duplicate or empty cell IDs, which would make
// result lookup ambiguous.
func (p Plan) Validate() error {
	seen := make(map[string]int, len(p.Cells))
	for i, c := range p.Cells {
		if c.ID == "" {
			return fmt.Errorf("runner: plan %q: cell %d has an empty ID", p.Name, i)
		}
		if j, dup := seen[c.ID]; dup {
			return fmt.Errorf("runner: plan %q: duplicate cell ID %q (cells %d and %d)", p.Name, c.ID, j, i)
		}
		seen[c.ID] = i
	}
	return nil
}

// ExecFunc runs one cell to completion on a fresh, fully isolated simulated
// system and returns its result. The harness provides the canonical
// implementation (harness.Execute); tests substitute their own.
type ExecFunc func(Cell) (workloads.RunResult, error)

// Result is the outcome of one cell.
type Result struct {
	// Cell echoes the executed cell with its derived seed filled in.
	Cell Cell `json:"cell"`
	// Run holds the simulation outcome; its Stats are a private snapshot.
	Run workloads.RunResult `json:"-"`
	// Err is the cell's failure, nil on success. Failures never abort the
	// sweep; sibling cells still run and report. Cells skipped because the
	// sweep's context was cancelled carry ErrCancelled.
	Err error `json:"-"`
	// Cached reports that the result came from the plan's store — a memory
	// or disk hit, or a concurrent sweep's in-flight compute — rather than
	// a simulation this sweep ran itself.
	Cached bool `json:"cached,omitempty"`
	// Elapsed is host wall-clock time spent simulating the cell.
	Elapsed time.Duration `json:"elapsed_ns"`
}

// ProgressEvent reports one completed cell to a progress callback.
type ProgressEvent struct {
	// Done cells so far (including this one) out of Total.
	Done, Total int
	// Result is the completed cell's outcome.
	Result Result
}

// Options configures a sweep execution.
type Options struct {
	// Parallel is the worker-pool size; <= 0 means GOMAXPROCS.
	Parallel int
	// Seed is the base seed that per-cell seeds are derived from; zero means
	// DefaultSeed.
	Seed int64
	// Progress, when non-nil, is invoked once per completed cell. Calls are
	// serialized (never concurrent) but arrive in completion order, which
	// under parallelism is not plan order.
	Progress func(ProgressEvent)
}

// ResultSet holds a sweep's outcomes in plan order.
type ResultSet struct {
	Plan    Plan
	Results []Result
	byID    map[string]int
}

// Get returns the result of the cell with the given ID.
func (rs *ResultSet) Get(id string) (Result, bool) {
	i, ok := rs.byID[id]
	if !ok {
		return Result{}, false
	}
	return rs.Results[i], true
}

// Run returns the RunResult for a cell ID, with a descriptive error when the
// cell is missing or failed — the lookup reducers want.
func (rs *ResultSet) Run(id string) (workloads.RunResult, error) {
	r, ok := rs.Get(id)
	if !ok {
		return workloads.RunResult{}, fmt.Errorf("runner: plan %q has no cell %q", rs.Plan.Name, id)
	}
	if r.Err != nil {
		return workloads.RunResult{}, fmt.Errorf("runner: cell %q: %w", id, r.Err)
	}
	return r.Run, nil
}

// Err joins every cell failure (nil when the whole sweep succeeded).
func (rs *ResultSet) Err() error {
	var errs []error
	for _, r := range rs.Results {
		if r.Err != nil {
			errs = append(errs, fmt.Errorf("cell %q: %w", r.Cell.ID, r.Err))
		}
	}
	return errors.Join(errs...)
}

// MergedStats aggregates the counters of every successful cell into one
// Stats, in plan order (Merge is order-independent, so parallel and serial
// sweeps agree).
func (rs *ResultSet) MergedStats() *stats.Stats {
	agg := stats.New(0)
	for _, r := range rs.Results {
		if r.Err == nil && r.Run.Stats != nil {
			agg.Merge(r.Run.Stats)
		}
	}
	return agg
}

// Elapsed sums host time across cells (total simulation work, which under
// parallelism exceeds wall-clock time).
func (rs *ResultSet) Elapsed() time.Duration {
	var d time.Duration
	for _, r := range rs.Results {
		d += r.Elapsed
	}
	return d
}

// ForEach runs fn(i) for every i in [0, n) on a pool of workers goroutines
// (<= 0 means GOMAXPROCS) and returns when all calls have finished. It is the
// raw fan-out primitive under Run; other sweep-shaped subsystems (the
// crash-point explorer) reuse it to scale across host cores. fn must be safe
// to call concurrently for distinct indices.
//
// Cancelling ctx stops the dispatch of further indices; calls already in
// flight run to completion (a simulation cell cannot be interrupted
// mid-run), so ForEach still returns only when every started call has
// finished. It reports the number of indices dispatched — n unless the
// context was cancelled.
func ForEach(ctx context.Context, n, workers int, fn func(i int)) int {
	if n <= 0 {
		return 0
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	dispatched := 0
feed:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
			dispatched++
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	return dispatched
}

// Run executes every cell of the plan through exec on a pool of
// opts.Parallel workers and returns the results in plan order. Each result's
// Stats are snapshotted, so they stay valid and independent after the cell's
// simulated system is garbage. A cell failure is recorded in its Result and
// the sweep continues.
//
// When plan.Store is set, execution reads through it: stored cells are
// answered without simulating (Result.Cached), computed cells are persisted,
// and concurrent requests for the same cell simulate it once.
//
// Cancelling ctx stops the sweep cleanly: in-flight cells finish and report
// normally, never-started cells report ErrCancelled, and Run still returns
// the full plan-ordered ResultSet so partial progress is not lost.
func Run(ctx context.Context, plan Plan, exec ExecFunc, opts Options) (*ResultSet, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	rs := &ResultSet{
		Plan:    plan,
		Results: make([]Result, len(plan.Cells)),
		byID:    make(map[string]int, len(plan.Cells)),
	}
	for i, c := range plan.Cells {
		rs.byID[c.ID] = i
	}

	var (
		mu   sync.Mutex // serializes Progress and the done counter
		done int
	)
	dispatched := ForEach(ctx, len(plan.Cells), opts.Parallel, func(i int) {
		cell := seeded(plan.Cells[i], opts.Seed)
		start := time.Now()
		var res Result
		if err := ctx.Err(); err != nil {
			// Dispatched before the cancellation won the race: skip the
			// simulation but keep the per-cell error reporting uniform.
			res = Result{Cell: cell, Err: ErrCancelled}
		} else {
			metricCellsStarted.Inc()
			run, cached, err := execute(cell, plan.Store, exec)
			res = Result{Cell: cell, Run: run, Err: err, Cached: cached, Elapsed: time.Since(start)}
			switch {
			case err != nil:
				metricCellsFailed.Inc()
			case cached:
				metricCellsCached.Inc()
			default:
				metricCellsOK.Inc()
				metricCellSeconds.Observe(res.Elapsed.Seconds())
			}
			metricPhases.ObserveTrace(run.Phases)
		}
		rs.Results[i] = res
		if opts.Progress != nil {
			mu.Lock()
			done++
			opts.Progress(ProgressEvent{Done: done, Total: len(plan.Cells), Result: res})
			mu.Unlock()
		}
	})
	// Dispatch is sequential, so the cells a cancelled dispatcher never
	// handed out are exactly the suffix [dispatched:]. They still get a full
	// Result (with their derived seed, for later resumption) and a distinct
	// error, so reducers and reports see every cell exactly once.
	for i := dispatched; i < len(rs.Results); i++ {
		rs.Results[i] = Result{Cell: seeded(plan.Cells[i], opts.Seed), Err: ErrCancelled}
	}
	return rs, nil
}

// seeded fills a cell's derived seed.
func seeded(c Cell, base int64) Cell {
	if c.Seed == 0 {
		c.Seed = DeriveSeed(base, c)
	}
	return c
}

// Seeded returns the cell with its derived seed filled in, exactly as Run
// would fill it. Distributed dispatchers (internal/fleet) seed cells before
// sending them over the wire so every worker agrees on each cell's identity
// without knowing the sweep's base seed.
func Seeded(c Cell, base int64) Cell { return seeded(c, base) }

// NewResultSet assembles a ResultSet from results already in plan order —
// the merge step of a distributed sweep, where cells were executed elsewhere
// and the dispatcher re-collates them. len(results) must equal
// len(plan.Cells); results[i] is taken to be the outcome of plan.Cells[i].
func NewResultSet(plan Plan, results []Result) (*ResultSet, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if len(results) != len(plan.Cells) {
		return nil, fmt.Errorf("runner: plan %q has %d cells but %d results", plan.Name, len(plan.Cells), len(results))
	}
	rs := &ResultSet{
		Plan:    plan,
		Results: results,
		byID:    make(map[string]int, len(plan.Cells)),
	}
	for i, c := range plan.Cells {
		rs.byID[c.ID] = i
	}
	return rs, nil
}

// execute runs one seeded cell, through the store when one is configured.
// The result's Stats are always a private snapshot.
func execute(cell Cell, store *resultstore.Store, exec ExecFunc) (workloads.RunResult, bool, error) {
	if store == nil {
		run, err := exec(cell)
		if err == nil && run.Stats != nil {
			run.Stats = run.Stats.Snapshot()
		}
		return run, false, err
	}
	return store.GetOrCompute(resultstore.Key{Cell: cell.Key(), Seed: cell.Seed},
		func() (workloads.RunResult, error) { return exec(cell) })
}
