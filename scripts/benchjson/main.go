// Command benchjson converts `go test -bench` output into a small JSON
// document so CI can archive benchmark runs as machine-readable artifacts
// (BENCH_<n>.json) and future PRs can chart the performance trajectory.
//
// With -baseline it additionally compares the run against a committed
// BENCH_<n>.json and exits non-zero on regression: allocs/op and B/op are
// deterministic and compared on every host, ns/op only when the baseline was
// recorded on the same CPU (wall-clock across different machines is noise,
// not signal). The tolerance is 15%, except a zero-alloc baseline, which
// must stay at exactly zero.
//
// Usage: benchjson [-baseline BENCH_n.json] [bench-output-file]
//
//	(reads stdin when no bench-output-file is given)
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"
)

// result is one parsed benchmark line.
type result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// document is the emitted JSON payload.
type document struct {
	GeneratedAt string   `json:"generated_at"`
	Goos        string   `json:"goos,omitempty"`
	Goarch      string   `json:"goarch,omitempty"`
	CPU         string   `json:"cpu,omitempty"`
	Results     []result `json:"results"`
}

func main() {
	baseline := flag.String("baseline", "", "committed BENCH_<n>.json to compare against; exits 1 on >15% regression")
	flag.Parse()

	in := os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}

	doc, err := parse(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading input: %v\n", err)
		os.Exit(1)
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}

	if *baseline != "" {
		base, err := load(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		if failures := compare(base, doc); len(failures) > 0 {
			for _, f := range failures {
				fmt.Fprintf(os.Stderr, "benchjson: REGRESSION %s\n", f)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: no regression against %s\n", *baseline)
	}
}

// parse scans `go test -bench` output into a document.
func parse(in io.Reader) (document, error) {
	doc := document{GeneratedAt: time.Now().UTC().Format(time.RFC3339)}
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBench(line); ok {
				doc.Results = append(doc.Results, r)
			}
		}
	}
	return doc, sc.Err()
}

// load reads a previously emitted document.
func load(path string) (document, error) {
	f, err := os.Open(path)
	if err != nil {
		return document{}, err
	}
	defer f.Close()
	var doc document
	if err := json.NewDecoder(f).Decode(&doc); err != nil {
		return document{}, fmt.Errorf("%s: %w", path, err)
	}
	return doc, nil
}

// regressionTolerance is how much worse a metric may get before the compare
// fails. Benchmarks with a zero-alloc baseline are exempt from the slack:
// they must stay at exactly zero.
const regressionTolerance = 1.15

// baseName strips the trailing -GOMAXPROCS suffix so runs on machines with
// different core counts still pair up.
func baseName(name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// compare pairs benchmarks by name and reports every metric that regressed
// beyond the tolerance. Benchmarks present on only one side are skipped —
// the baseline pins the benchmarks it records, nothing more.
func compare(base, cur document) []string {
	current := make(map[string]result, len(cur.Results))
	for _, r := range cur.Results {
		current[baseName(r.Name)] = r
	}
	sameCPU := base.CPU != "" && base.CPU == cur.CPU
	if !sameCPU {
		fmt.Fprintf(os.Stderr, "benchjson: baseline CPU %q != current %q; comparing allocs/op and B/op only\n", base.CPU, cur.CPU)
	}
	var failures []string
	for _, b := range base.Results {
		c, ok := current[baseName(b.Name)]
		if !ok {
			continue
		}
		name := baseName(b.Name)
		if b.AllocsPerOp != nil && c.AllocsPerOp != nil {
			switch {
			case *b.AllocsPerOp == 0 && *c.AllocsPerOp != 0:
				failures = append(failures, fmt.Sprintf("%s: allocs/op %.0f, baseline is allocation-free", name, *c.AllocsPerOp))
			case *c.AllocsPerOp > *b.AllocsPerOp*regressionTolerance:
				failures = append(failures, fmt.Sprintf("%s: allocs/op %.0f vs baseline %.0f (>15%%)", name, *c.AllocsPerOp, *b.AllocsPerOp))
			}
		}
		if b.BytesPerOp != nil && c.BytesPerOp != nil && *c.BytesPerOp > *b.BytesPerOp*regressionTolerance {
			failures = append(failures, fmt.Sprintf("%s: B/op %.0f vs baseline %.0f (>15%%)", name, *c.BytesPerOp, *b.BytesPerOp))
		}
		if sameCPU && c.NsPerOp > b.NsPerOp*regressionTolerance {
			failures = append(failures, fmt.Sprintf("%s: ns/op %.0f vs baseline %.0f (>15%%)", name, c.NsPerOp, b.NsPerOp))
		}
	}
	return failures
}

// parseBench parses one benchmark result line of the form
//
//	BenchmarkName-8  10  123 ns/op  45 B/op  6 allocs/op  7.0 custom-unit
func parseBench(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: fields[0], Iterations: iters}
	// The rest alternate value, unit.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		val := v
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = val
		case "B/op":
			r.BytesPerOp = &val
		case "allocs/op":
			r.AllocsPerOp = &val
		default:
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[unit] = val
		}
	}
	return r, true
}
