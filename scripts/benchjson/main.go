// Command benchjson converts `go test -bench` output into a small JSON
// document so CI can archive benchmark runs as machine-readable artifacts
// (BENCH_<n>.json) and future PRs can chart the performance trajectory.
//
// Usage: benchjson [bench-output-file]   (reads stdin when no file is given)
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// result is one parsed benchmark line.
type result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// document is the emitted JSON payload.
type document struct {
	GeneratedAt string   `json:"generated_at"`
	Goos        string   `json:"goos,omitempty"`
	Goarch      string   `json:"goarch,omitempty"`
	CPU         string   `json:"cpu,omitempty"`
	Results     []result `json:"results"`
}

func main() {
	in := os.Stdin
	if len(os.Args) > 1 {
		f, err := os.Open(os.Args[1])
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}

	doc := document{GeneratedAt: time.Now().UTC().Format(time.RFC3339)}
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBench(line); ok {
				doc.Results = append(doc.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading input: %v\n", err)
		os.Exit(1)
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parseBench parses one benchmark result line of the form
//
//	BenchmarkName-8  10  123 ns/op  45 B/op  6 allocs/op  7.0 custom-unit
func parseBench(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: fields[0], Iterations: iters}
	// The rest alternate value, unit.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		val := v
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = val
		case "B/op":
			r.BytesPerOp = &val
		case "allocs/op":
			r.AllocsPerOp = &val
		default:
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[unit] = val
		}
	}
	return r, true
}
