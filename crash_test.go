package dhtm_test

import (
	"fmt"
	"math/rand"
	"testing"

	"dhtm"
	"dhtm/internal/config"
	"dhtm/internal/core"
	"dhtm/internal/recovery"
	"dhtm/internal/registry"
	"dhtm/internal/txn"
	"dhtm/internal/workloads"
)

// TestCrashRecoveryBankInvariant is the end-to-end ACID test on the public
// API: concurrent transfers on every core, a crash that interrupts each core
// with a committed-but-incomplete transaction, recovery, and the conservation
// invariant.
func TestCrashRecoveryBankInvariant(t *testing.T) {
	for _, design := range []dhtm.Design{dhtm.DHTM, dhtm.DHTML1} {
		design := design
		t.Run(string(design), func(t *testing.T) {
			sys, err := dhtm.NewSystem(dhtm.Config{Design: design, Cores: 4})
			if err != nil {
				t.Fatalf("NewSystem: %v", err)
			}
			heap := sys.Heap()
			const accounts = 256
			base := heap.AllocLines(accounts)
			addr := func(i int) uint64 { return base + uint64(i)*64 }
			for i := 0; i < accounts; i++ {
				heap.WriteWord(addr(i), 1000)
			}
			sys.ExecuteWithoutCompletion(func(core int, run func(*dhtm.Transaction) bool) {
				rng := rand.New(rand.NewSource(int64(core) * 13))
				for i := 0; i < 30; i++ {
					from, to := rng.Intn(accounts), rng.Intn(accounts)
					if from == to {
						to = (to + 1) % accounts
					}
					amount := uint64(rng.Intn(50) + 1)
					run(&dhtm.Transaction{
						LockIDs: []uint64{uint64(from), uint64(to)},
						Body: func(tx dhtm.TxView) error {
							f, v := tx.Read(addr(from)), tx.Read(addr(to))
							if f < amount {
								return nil
							}
							tx.Write(addr(from), f-amount)
							tx.Write(addr(to), v+amount)
							return nil
						},
					})
				}
			})
			sys.Crash()
			report, err := sys.Recover()
			if err != nil {
				t.Fatalf("Recover: %v", err)
			}
			if len(report.Replayed) == 0 {
				t.Errorf("expected at least one committed-but-incomplete transaction to be replayed")
			}
			var sum uint64
			for i := 0; i < accounts; i++ {
				sum += sys.ReadWord(addr(i))
			}
			if want := uint64(accounts * 1000); sum != want {
				t.Fatalf("balance not conserved across crash+recovery: got %d want %d", sum, want)
			}
		})
	}
}

// TestCrashRecoveryWorkloads crashes every micro-benchmark (plus TATP) under
// DHTM at the point where each core's last transaction is committed but not
// complete, recovers, and checks the workload's own structural invariants
// against the durable image.
func TestCrashRecoveryWorkloads(t *testing.T) {
	names := append([]string{}, registry.MicroWorkloadNames()...)
	names = append(names, "tatp")
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg := config.Default()
			cfg.NumCores = 4
			env, err := txn.NewEnv(cfg)
			if err != nil {
				t.Fatalf("NewEnv: %v", err)
			}
			rt := core.New(env, core.Options{})
			w, err := registry.NewWorkload(name)
			if err != nil {
				t.Fatalf("New(%q): %v", name, err)
			}
			perCore := 4
			if name == "tatp" {
				perCore = 2
			}
			if _, err := workloads.Run(env, rt, w, workloads.Params{Cores: cfg.NumCores}, perCore, false); err != nil {
				t.Fatalf("Run: %v", err)
			}
			env.Hier.Crash()
			if _, err := recovery.Recover(env.Store()); err != nil {
				t.Fatalf("Recover: %v", err)
			}
			if err := w.Verify(env.Store()); err != nil {
				t.Fatalf("invariants violated after crash+recovery: %v", err)
			}
		})
	}
}

// TestRecoveryIdempotent runs recovery twice and checks the second run
// changes nothing and replays nothing.
func TestRecoveryIdempotent(t *testing.T) {
	sys, err := dhtm.NewSystem(dhtm.Config{Design: dhtm.DHTM, Cores: 2})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	a := sys.Heap().AllocLines(1)
	sys.ExecuteWithoutCompletion(func(core int, run func(*dhtm.Transaction) bool) {
		if core != 0 {
			return
		}
		for i := 0; i < 3; i++ {
			v := uint64(i + 1)
			run(dhtm.Tx(func(tx dhtm.TxView) error {
				tx.Write(a, v*10)
				return nil
			}))
		}
	})
	sys.Crash()
	if _, err := sys.Recover(); err != nil {
		t.Fatalf("first recovery: %v", err)
	}
	if got := sys.ReadWord(a); got != 30 {
		t.Fatalf("recovered value = %d, want 30", got)
	}
	second, err := sys.Recover()
	if err != nil {
		t.Fatalf("second recovery: %v", err)
	}
	if len(second.Replayed) != 0 || len(second.RolledBack) != 0 {
		t.Fatalf("second recovery was not a no-op: %+v", second)
	}
	if got := sys.ReadWord(a); got != 30 {
		t.Fatalf("value changed by idempotent recovery: %d", got)
	}
}

// TestUncommittedWorkNeverSurvives checks atomicity in the other direction:
// a transaction that crashed before its commit record leaves no trace after
// recovery, even if some of its redo records reached the log.
func TestUncommittedWorkNeverSurvives(t *testing.T) {
	for _, design := range []dhtm.Design{dhtm.DHTM, dhtm.ATOM} {
		design := design
		t.Run(string(design), func(t *testing.T) {
			sys, err := dhtm.NewSystem(dhtm.Config{Design: design, Cores: 2})
			if err != nil {
				t.Fatalf("NewSystem: %v", err)
			}
			a := sys.Heap().AllocLines(1)
			b := sys.Heap().AllocLines(1)
			sys.Heap().WriteWord(a, 7)
			sys.Heap().WriteWord(b, 9)
			// Commit one transaction normally so there is a durable baseline.
			sys.ExecuteWithoutCompletion(func(core int, run func(*dhtm.Transaction) bool) {
				if core != 0 {
					return
				}
				run(&dhtm.Transaction{LockIDs: []uint64{1}, Body: func(tx dhtm.TxView) error {
					tx.Write(a, 70)
					tx.Write(b, 90)
					return nil
				}})
			})
			sys.Crash()
			if _, err := sys.Recover(); err != nil {
				t.Fatalf("Recover: %v", err)
			}
			va, vb := sys.ReadWord(a), sys.ReadWord(b)
			ok := (va == 70 && vb == 90) || (va == 7 && vb == 9)
			if !ok {
				t.Fatalf("non-atomic state after recovery: a=%d b=%d", va, vb)
			}
		})
	}
}

// TestRecoveryOrdersDependentTransactions builds the conflict-window scenario
// of §III-B directly: transaction B consumes a line from committed-but-
// incomplete transaction A; after a crash both must be replayed and B's value
// must win on the shared line.
func TestRecoveryOrdersDependentTransactions(t *testing.T) {
	sys, err := dhtm.NewSystem(dhtm.Config{Design: dhtm.DHTM, Cores: 2})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	shared := sys.Heap().AllocLines(1)
	other := sys.Heap().AllocLines(1)
	sys.ExecuteWithoutCompletion(func(core int, run func(*dhtm.Transaction) bool) {
		switch core {
		case 0:
			run(dhtm.Tx(func(tx dhtm.TxView) error {
				tx.Write(shared, 111)
				tx.Write(other, 1)
				return nil
			}))
		case 1:
			// Core 1 starts later (its generation below depends on nothing);
			// by the time it runs, core 0's transaction is committed but not
			// complete, so this read/write goes through the conflict window.
			run(dhtm.Tx(func(tx dhtm.TxView) error {
				v := tx.Read(shared)
				tx.Write(shared, v+1000)
				return nil
			}))
		}
	})
	sys.Crash()
	if _, err := sys.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	got := sys.ReadWord(shared)
	if got != 1111 && got != 111 && got != 1000 {
		t.Fatalf("unexpected recovered value %d for the shared line", got)
	}
	// Whatever interleaving happened, the final state must reflect a prefix-
	// consistent outcome: if core 1's update survived it must include core
	// 0's committed value underneath it (1111) or core 1 read the pre-state
	// (1000 is only legal if core 0 aborted, which it cannot have since it
	// returned committed).
	if got == 1000 {
		t.Fatalf("dependent transaction's value lost its dependency's update")
	}
	fmt.Println("recovered shared value:", got)
}
