package dhtm_test

import (
	"testing"

	"dhtm"
	"dhtm/internal/harness"
	"dhtm/internal/registry"
)

// TestDesignSetCannotDrift is the regression test for the design-set drift
// the registry refactor fixed (the public package used to miss DHTM-nobuf
// while the harness listed it). The public dhtm package, the harness and
// the registry must expose exactly the same design set — trivially true now
// that all three read the registry, which is precisely the property this
// test pins.
func TestDesignSetCannotDrift(t *testing.T) {
	reg := registry.DesignNames()
	pub := dhtm.Designs()
	har := harness.Designs()
	if len(pub) != len(reg) || len(har) != len(reg) {
		t.Fatalf("set sizes differ: public %d, harness %d, registry %d", len(pub), len(har), len(reg))
	}
	for i, name := range reg {
		if string(pub[i]) != name {
			t.Errorf("public design %d = %q, registry has %q", i, pub[i], name)
		}
		if har[i] != name {
			t.Errorf("harness design %d = %q, registry has %q", i, har[i], name)
		}
	}

	// Every exported constant is a registered design — including DHTM-nobuf,
	// the one the public switch used to silently lack.
	for _, c := range []dhtm.Design{
		dhtm.DHTM, dhtm.DHTMInstant, dhtm.DHTML1, dhtm.DHTMNoBuf,
		dhtm.SO, dhtm.SdTM, dhtm.ATOM, dhtm.LogTMATOM, dhtm.NP,
	} {
		if _, ok := registry.LookupDesign(string(c)); !ok {
			t.Errorf("exported constant %q is not in the registry", c)
		}
	}
	if len(pub) != 9 {
		t.Errorf("public design set has %d entries, want 9 (did a constant go unexported?)", len(pub))
	}

	// The catalog carries a description for everything the public API lists.
	for _, entry := range dhtm.Catalog() {
		if entry.Description == "" {
			t.Errorf("design %q has no description", entry.Name)
		}
	}
}

// TestNewSystemAcceptsEveryDesign builds a system for every design the
// public API lists — NewSystem resolves through the registry, so a listed
// design that fails to construct would be a catalog bug.
func TestNewSystemAcceptsEveryDesign(t *testing.T) {
	for _, d := range dhtm.Designs() {
		sys, err := dhtm.NewSystem(dhtm.Config{Design: d, Cores: 2})
		if err != nil {
			t.Fatalf("NewSystem(%q): %v", d, err)
		}
		if sys.Design() != d {
			t.Fatalf("system reports design %q, want %q", sys.Design(), d)
		}
	}
	if _, err := dhtm.NewSystem(dhtm.Config{Design: "NOPE"}); err == nil {
		t.Fatal("NewSystem accepted an unknown design")
	}
}
