// The bank example runs concurrent transfers between accounts on all eight
// simulated cores, crashes the machine mid-flight, recovers, and checks the
// classic invariant: no money is created or destroyed, even though the crash
// interrupted transactions in every lifecycle state (active, committed but
// not yet written back in place, and complete).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dhtm"
)

const (
	accounts       = 1024
	initialBalance = 1000
	transfersPer   = 50
)

func main() {
	sys, err := dhtm.NewSystem(dhtm.Config{Design: dhtm.DHTM})
	if err != nil {
		log.Fatalf("building system: %v", err)
	}

	heap := sys.Heap()
	base := heap.AllocLines(accounts) // one account per cache line
	addr := func(i int) uint64 { return base + uint64(i)*64 }
	for i := 0; i < accounts; i++ {
		heap.WriteWord(addr(i), initialBalance)
	}
	total := uint64(accounts * initialBalance)

	// Run transfers concurrently on every core, stopping at the last
	// transaction's commit point so that the crash below interrupts every
	// core with a committed-but-not-yet-completed transaction. Each transfer
	// atomically debits one account and credits another.
	sys.ExecuteWithoutCompletion(func(core int, run func(*dhtm.Transaction) bool) {
		rng := rand.New(rand.NewSource(int64(core) + 1))
		for i := 0; i < transfersPer; i++ {
			from, to := rng.Intn(accounts), rng.Intn(accounts)
			if from == to {
				to = (to + 1) % accounts
			}
			amount := uint64(rng.Intn(100) + 1)
			run(&dhtm.Transaction{
				LockIDs: []uint64{uint64(from), uint64(to)},
				Body: func(tx dhtm.TxView) error {
					f := tx.Read(addr(from))
					t := tx.Read(addr(to))
					if f < amount {
						return nil // insufficient funds: read-only transaction
					}
					tx.Write(addr(from), f-amount)
					tx.Write(addr(to), t+amount)
					return nil
				},
			})
		}
	})

	// Crash without an orderly shutdown, then recover.
	sys.Crash()
	report, err := sys.Recover()
	if err != nil {
		log.Fatalf("recovery: %v", err)
	}
	fmt.Print(report)

	var sum uint64
	for i := 0; i < accounts; i++ {
		sum += sys.ReadWord(addr(i))
	}
	fmt.Printf("total balance after crash+recovery: %d (expected %d)\n", sum, total)
	if sum != total {
		log.Fatalf("money was created or destroyed!")
	}
	st := sys.Stats()
	fmt.Printf("committed %d transfers across %d cores with %d aborts (%.1f%% abort rate)\n",
		st.TotalCommits(), sys.Cores(), st.TotalAborts(), st.AbortRate()*100)
}
