// The quickstart example shows the core promise of DHTM: transactions are
// atomic both for visibility and for durability. It runs a few transactions
// against persistent memory, crashes the machine at a point where the last
// transaction has committed but its data has not yet been written back in
// place, runs recovery, and shows that the committed values survived while
// nothing partial ever becomes visible.
package main

import (
	"fmt"
	"log"

	"dhtm"
)

func main() {
	sys, err := dhtm.NewSystem(dhtm.Config{Design: dhtm.DHTM})
	if err != nil {
		log.Fatalf("building system: %v", err)
	}

	// Lay out two persistent counters on different cache lines.
	heap := sys.Heap()
	a := heap.AllocLines(1)
	b := heap.AllocLines(1)
	heap.WriteWord(a, 100)
	heap.WriteWord(b, 200)

	// Atomically move 30 from a to b, three times, on core 0. The run stops
	// at the last transaction's commit point: it is durable in the redo log
	// but its data has not yet been written back in place.
	sys.ExecuteWithoutCompletion(func(core int, run func(*dhtm.Transaction) bool) {
		if core != 0 {
			return
		}
		for i := 0; i < 3; i++ {
			ok := run(dhtm.Tx(func(tx dhtm.TxView) error {
				va := tx.Read(a)
				vb := tx.Read(b)
				tx.Write(a, va-30)
				tx.Write(b, vb+30)
				return nil
			}))
			fmt.Printf("transfer %d committed=%v\n", i+1, ok)
		}
	})

	// Crash the machine: caches are lost, persistent memory (including the
	// durable redo log) survives.
	sys.Crash()
	fmt.Printf("after crash, before recovery: a=%d b=%d (in-place data may be stale)\n",
		sys.ReadWord(a), sys.ReadWord(b))

	report, err := sys.Recover()
	if err != nil {
		log.Fatalf("recovery: %v", err)
	}
	fmt.Print(report)

	va, vb := sys.ReadWord(a), sys.ReadWord(b)
	fmt.Printf("after recovery: a=%d b=%d (sum=%d)\n", va, vb, va+vb)
	if va+vb != 300 || va != 10 || vb != 290 {
		log.Fatalf("recovered state is wrong: want a=10 b=290")
	}
	fmt.Println("all committed transfers are durable; no partial transfer is visible")

	st := sys.Stats()
	fmt.Printf("stats: %d commits, %d redo/commit records, %d log bytes written\n",
		st.TotalCommits(), st.LogRecords, st.LogBytes)
}
