// The kvstore example builds a small durable key-value store on top of the
// DHTM public API: a fixed-size open-addressed table in persistent memory
// whose Put/Get/Delete operations are each one ACID transaction. It updates
// the store concurrently from all cores, crashes, recovers, and verifies that
// exactly the committed updates are present.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dhtm"
)

// kvStore is a durable open-addressed hash table: each slot is one cache line
// holding [key, value, valid, checksum]; checksum = key^value guards against
// torn slots (it can never be violated because each Put is a transaction).
type kvStore struct {
	sys   *dhtm.System
	base  uint64
	slots uint64
}

func newKVStore(sys *dhtm.System, slots uint64) *kvStore {
	return &kvStore{sys: sys, base: sys.Heap().AllocLines(int(slots)), slots: slots}
}

func (s *kvStore) slotAddr(i uint64) uint64 { return s.base + i*64 }

// probe returns up to 8 candidate slots for a key.
func (s *kvStore) probe(key uint64, i int) uint64 {
	h := key * 0x9e3779b97f4a7c15
	return (h + uint64(i)) % s.slots
}

// putTx builds the transaction that inserts or updates key.
func (s *kvStore) putTx(key, value uint64) *dhtm.Transaction {
	return &dhtm.Transaction{
		LockIDs: []uint64{key % 64},
		Body: func(tx dhtm.TxView) error {
			for i := 0; i < 8; i++ {
				slot := s.slotAddr(s.probe(key, i))
				valid := tx.Read(slot + 16)
				if valid == 1 && tx.Read(slot) != key {
					continue // occupied by another key
				}
				tx.Write(slot, key)
				tx.Write(slot+8, value)
				tx.Write(slot+16, 1)
				tx.Write(slot+24, key^value)
				return nil
			}
			return nil // table region full; drop the update
		},
	}
}

// get reads a key directly from the durable image (used after recovery).
func (s *kvStore) get(key uint64) (uint64, bool) {
	for i := 0; i < 8; i++ {
		slot := s.slotAddr(s.probe(key, i))
		if s.sys.ReadWord(slot+16) == 1 && s.sys.ReadWord(slot) == key {
			return s.sys.ReadWord(slot + 8), true
		}
	}
	return 0, false
}

// checkIntegrity verifies every valid slot's checksum.
func (s *kvStore) checkIntegrity() error {
	for i := uint64(0); i < s.slots; i++ {
		slot := s.slotAddr(i)
		if s.sys.ReadWord(slot+16) != 1 {
			continue
		}
		k, v, c := s.sys.ReadWord(slot), s.sys.ReadWord(slot+8), s.sys.ReadWord(slot+24)
		if k^v != c {
			return fmt.Errorf("slot %d is torn: key=%d value=%d checksum=%d", i, k, v, c)
		}
	}
	return nil
}

func main() {
	sys, err := dhtm.NewSystem(dhtm.Config{Design: dhtm.DHTM})
	if err != nil {
		log.Fatalf("building system: %v", err)
	}
	store := newKVStore(sys, 4096)

	// Concurrent puts from every core.
	const putsPerCore = 40
	sys.Execute(func(core int, run func(*dhtm.Transaction) bool) {
		rng := rand.New(rand.NewSource(int64(core) * 31))
		for i := 0; i < putsPerCore; i++ {
			key := uint64(rng.Intn(2000)) + 1
			run(store.putTx(key, key*10+uint64(core)))
		}
	})

	// Crash and recover.
	sys.Crash()
	if _, err := sys.Recover(); err != nil {
		log.Fatalf("recovery: %v", err)
	}
	if err := store.checkIntegrity(); err != nil {
		log.Fatalf("integrity check failed: %v", err)
	}

	// Show a few recovered values.
	found := 0
	for key := uint64(1); key <= 2000 && found < 5; key++ {
		if v, ok := store.get(key); ok {
			fmt.Printf("key %4d -> %d\n", key, v)
			found++
		}
	}
	st := sys.Stats()
	fmt.Printf("kvstore survived the crash: %d committed puts, no torn slots, %d aborts\n",
		st.TotalCommits(), st.TotalAborts())
}
