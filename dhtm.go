// Package dhtm is the public API of the DHTM reproduction: a library for
// building a simulated multicore machine with byte-addressable persistent
// memory, running ACID transactions on it under one of the evaluated designs
// (DHTM and the paper's baselines), injecting crashes, and recovering.
//
// The typical flow is:
//
//	sys, _ := dhtm.NewSystem(dhtm.Config{})          // 8-core machine, DHTM design
//	heap := sys.Heap()                                // allocate persistent data
//	addr := heap.AllocLines(1)
//	sys.RunSingle(0, dhtm.Tx(func(tx dhtm.TxView) error {
//	    tx.Write(addr, 42)
//	    return nil
//	}))
//	sys.Crash()                                       // drop all volatile state
//	report, _ := sys.Recover()                        // replay the durable log
//
// For multi-core workloads, Execute runs a fixed number of transactions per
// core under the deterministic scheduler; the workloads and experiments of
// the paper's evaluation are exposed through internal/harness and the
// dhtm-bench command.
package dhtm

import (
	"fmt"

	"dhtm/internal/config"
	"dhtm/internal/engine"
	"dhtm/internal/memdev"
	"dhtm/internal/palloc"
	"dhtm/internal/recovery"
	"dhtm/internal/registry"
	"dhtm/internal/stats"
	"dhtm/internal/txn"
)

// Design selects the transactional-memory design a System runs.
type Design string

// The evaluated designs (§V of the paper). The names are re-exported from
// internal/registry — the one catalog NewSystem, the harness, the CLIs and
// dhtm-serve all resolve against — so the public set cannot drift from what
// the rest of the tree runs.
const (
	DHTM        Design = registry.DesignDHTM
	DHTMInstant Design = registry.DesignDHTMInstant
	DHTML1      Design = registry.DesignDHTML1
	DHTMNoBuf   Design = registry.DesignDHTMNoBuf
	SO          Design = registry.DesignSO
	SdTM        Design = registry.DesignSdTM
	ATOM        Design = registry.DesignATOM
	LogTMATOM   Design = registry.DesignLogTMATOM
	NP          Design = registry.DesignNP
)

// Designs lists every design NewSystem accepts, in the order of the paper.
func Designs() []Design {
	names := registry.DesignNames()
	out := make([]Design, len(names))
	for i, n := range names {
		out[i] = Design(n)
	}
	return out
}

// DesignCatalog describes one runnable design: its name, a one-line
// description, classification tags and whether the crash-point explorer
// supports it. It mirrors what dhtm-serve's /api/v1/catalog returns.
type DesignCatalog struct {
	Name        Design
	Description string
	Tags        []string
	CrashSafe   bool
}

// Catalog returns the self-describing design catalog.
func Catalog() []DesignCatalog {
	ds := registry.Designs()
	out := make([]DesignCatalog, len(ds))
	for i, d := range ds {
		out[i] = DesignCatalog{
			Name:        Design(d.Name),
			Description: d.Description,
			Tags:        d.Tags,
			CrashSafe:   d.CrashSafe,
		}
	}
	return out
}

// Config selects the machine and design parameters. The zero value gives the
// paper's Table III machine running the DHTM design.
type Config struct {
	// Design is the transactional design to instantiate (default DHTM).
	Design Design
	// Cores overrides the number of simulated cores (default 8).
	Cores int
	// LogBufferEntries overrides DHTM's coalescing log-buffer size (default 64).
	LogBufferEntries int
	// BandwidthScale scales the 5.3 GB/s memory bandwidth (default 1.0).
	BandwidthScale float64
	// ConflictPolicy selects first-writer-wins (default) or requester-wins.
	RequesterWins bool
	// Hardware exposes the full architectural configuration for fine-grained
	// control; when non-nil it overrides all of the above except Design.
	Hardware *config.Config
}

// TxView is the interface transaction bodies use to read and write persistent
// memory (8-byte words at 8-byte-aligned addresses).
type TxView = txn.Tx

// Body is a transaction body. Returning a non-nil error requests an abort.
type Body = func(tx TxView) error

// Tx wraps a body into a Transaction with no lock annotations (sufficient for
// the HTM designs; lock-based designs serialise such transactions on a single
// global lock ID).
func Tx(body Body) *txn.Transaction {
	return &txn.Transaction{Body: body, LockIDs: []uint64{0}}
}

// Transaction re-exports the full transaction type for callers that want to
// declare lock sets for the lock-based designs.
type Transaction = txn.Transaction

// Stats re-exports the statistics type.
type Stats = stats.Stats

// RecoveryReport re-exports the recovery manager's report.
type RecoveryReport = recovery.Report

// System is one simulated machine plus the selected design's runtime.
type System struct {
	env     *txn.Env
	runtime txn.Runtime
	design  Design
	heap    *palloc.Heap
}

// NewSystem builds a simulated machine according to cfg.
func NewSystem(cfg Config) (*System, error) {
	hw := config.Default()
	if cfg.Hardware != nil {
		hw = *cfg.Hardware
	} else {
		if cfg.Cores > 0 {
			hw.NumCores = cfg.Cores
		}
		if cfg.LogBufferEntries > 0 {
			hw.LogBufferEntries = cfg.LogBufferEntries
		}
		if cfg.BandwidthScale > 0 {
			hw.BandwidthScale = cfg.BandwidthScale
		}
		if cfg.RequesterWins {
			hw.ConflictPolicy = config.RequesterWins
		}
	}
	env, err := txn.NewEnv(hw)
	if err != nil {
		return nil, err
	}
	design := cfg.Design
	if design == "" {
		design = DHTM
	}
	rt, err := registry.NewRuntime(env, string(design))
	if err != nil {
		return nil, fmt.Errorf("dhtm: %w", err)
	}
	return &System{env: env, runtime: rt, design: design, heap: palloc.New(env.Store())}, nil
}

// Design returns the design the system runs.
func (s *System) Design() Design { return s.design }

// Cores returns the number of simulated cores.
func (s *System) Cores() int { return s.env.Cfg.NumCores }

// Heap returns the persistent-heap allocator for laying out application data.
func (s *System) Heap() *palloc.Heap { return s.heap }

// Stats returns the system's accumulated statistics.
func (s *System) Stats() *Stats { return s.env.Stats }

// Store returns the durable persistent-memory image (reads of it see exactly
// what would survive a crash right now).
func (s *System) Store() *memdev.Store { return s.env.Ctl.Store() }

// Env exposes the underlying environment for advanced integrations (the
// harness and the examples use it to drive workloads directly).
func (s *System) Env() *txn.Env { return s.env }

// Runtime exposes the underlying design runtime.
func (s *System) Runtime() txn.Runtime { return s.runtime }

// Execute runs one workload function per core under the deterministic
// scheduler. Each function receives its core index and a Run helper that
// executes transactions on that core; transactions on different cores
// interleave according to the timing model.
func (s *System) Execute(perCore func(core int, run func(*Transaction) bool)) {
	eng := engine.New(s.env.Cfg.NumCores)
	eng.Run(func(c int, clk *engine.Clock) {
		perCore(c, func(t *Transaction) bool {
			return s.runtime.Run(c, clk, t).Committed
		})
		s.runtime.Finish(c, clk)
	})
}

// ExecuteWithoutCompletion is Execute without the final per-core completion
// drain: when it returns, the last transaction of each core has reached its
// commit point (it is durable in the redo log) but its in-place write-backs
// may still be pending — exactly the window in which a crash forces the
// recovery manager to replay the log. Crash-recovery tests and the examples
// use it to exercise that path.
func (s *System) ExecuteWithoutCompletion(perCore func(core int, run func(*Transaction) bool)) {
	eng := engine.New(s.env.Cfg.NumCores)
	eng.Run(func(c int, clk *engine.Clock) {
		perCore(c, func(t *Transaction) bool {
			return s.runtime.Run(c, clk, t).Committed
		})
		s.env.Stats.Core(c).FinalCycle = clk.Now()
	})
}

// RunSingle executes one transaction on the given core (convenience for
// examples and tests that do not need concurrency). It reports whether the
// transaction committed.
func (s *System) RunSingle(core int, t *Transaction) bool {
	committed := false
	eng := engine.New(s.env.Cfg.NumCores)
	eng.Run(func(c int, clk *engine.Clock) {
		if c != core {
			return
		}
		committed = s.runtime.Run(c, clk, t).Committed
		s.runtime.Finish(c, clk)
	})
	return committed
}

// Drain writes all dirty cached data back to persistent memory (an orderly
// shutdown, as opposed to Crash).
func (s *System) Drain() { s.env.Hier.DrainClean() }

// Crash discards every piece of volatile state — private caches, the LLC and
// any in-flight buffering — leaving only what had already reached persistent
// memory (including the durable transaction logs).
func (s *System) Crash() { s.env.Hier.Crash() }

// Recover runs the OS recovery manager over the persistent-memory image:
// committed-but-incomplete transactions are replayed from their redo logs,
// uncommitted undo-logged transactions are rolled back, and the logs are
// truncated. It is what a restart after Crash performs.
func (s *System) Recover() (*RecoveryReport, error) {
	return recovery.Recover(s.env.Ctl.Store())
}

// ReadWord reads a word from the durable image (post-crash or post-drain
// inspection helper).
func (s *System) ReadWord(addr uint64) uint64 { return s.env.Ctl.Store().ReadWord(addr) }
