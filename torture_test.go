package dhtm_test

import (
	"context"
	"reflect"
	"testing"

	"dhtm/internal/crashtest"
)

// TestTortureExhaustive is the crash-point sweep: for DHTM and ATOM on the
// hash and queue micro-benchmarks (4 cores), every durable write of the run is
// a crash point; the explorer crashes, recovers and judges each one against
// the three oracles (workload invariants, trace-derived prefix consistency,
// recovery idempotency). In -short mode a strided sample stands in for the
// full space.
func TestTortureExhaustive(t *testing.T) {
	sel := crashtest.Selection{Mode: "all"}
	if testing.Short() {
		sel = crashtest.Selection{Mode: "stride", Samples: 64}
	}
	for _, design := range []string{"DHTM", "ATOM"} {
		for _, workload := range []string{"hash", "queue"} {
			design, workload := design, workload
			t.Run(design+"/"+workload, func(t *testing.T) {
				t.Parallel()
				rep, err := crashtest.Torture(context.Background(), crashtest.Config{
					Design: design, Workload: workload,
					Cores: 4, TxPerCore: 2, OpsPerTx: 8,
					Points: sel,
				})
				if err != nil {
					t.Fatal(err)
				}
				if rep.TotalPoints == 0 || rep.Explored == 0 {
					t.Fatalf("empty exploration: %d points, %d explored", rep.TotalPoints, rep.Explored)
				}
				// The space must include points where recovery has real work:
				// a crash between a commit record and completion forces replay.
				replayed := 0
				for r, n := range rep.ReplayHist {
					if r > 0 {
						replayed += n
					}
				}
				if replayed == 0 {
					t.Errorf("no crash point required replay; the event space misses the commit window")
				}
				if design == "ATOM" {
					rolled := 0
					for r, n := range rep.RollbackHist {
						if r > 0 {
							rolled += n
						}
					}
					if rolled == 0 {
						t.Errorf("no ATOM crash point required rollback; the event space misses mid-transaction windows")
					}
				}
			})
		}
	}
}

// TestTortureTorn spot-checks torn-line mode: at sampled points a seed-derived
// prefix of the in-flight write reaches memory, and recovery must still
// satisfy every oracle (multi-word log records are protected by the
// head-pointer persist that follows them; torn data lines are repaired by redo
// replay or undo rollback).
func TestTortureTorn(t *testing.T) {
	for _, design := range []string{"DHTM", "ATOM"} {
		design := design
		t.Run(design, func(t *testing.T) {
			t.Parallel()
			if _, err := crashtest.Torture(context.Background(), crashtest.Config{
				Design: design, Workload: "queue",
				Cores: 4, TxPerCore: 2, OpsPerTx: 8, Torn: true,
				Points: crashtest.Selection{Mode: "stride", Samples: 96},
			}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestTortureReordered is the relaxed-persistency sweep: the persist-queue
// adversary fans each crash point of DHTM and LogTM-ATOM (one redo design,
// one undo design) out into every subset of a 2-write reordering window, and
// every resulting crash image must still satisfy all oracles — including the
// differential one, which re-executes the committed transactions serially and
// demands the recovered heap match. In -short mode a strided sample of points
// stands in for the full space; the subset fan-out per point stays exhaustive.
func TestTortureReordered(t *testing.T) {
	sel := crashtest.Selection{Mode: "all"}
	if testing.Short() {
		sel = crashtest.Selection{Mode: "stride", Samples: 48}
	}
	for _, design := range []string{"DHTM", "LogTM-ATOM"} {
		for _, workload := range []string{"hash", "queue"} {
			design, workload := design, workload
			t.Run(design+"/"+workload, func(t *testing.T) {
				t.Parallel()
				rep, err := crashtest.Torture(context.Background(), crashtest.Config{
					Design: design, Workload: workload,
					Cores: 2, TxPerCore: 2, OpsPerTx: 4,
					Adversary:    crashtest.AdversaryConfig{Window: 2, Mode: "exhaustive"},
					Differential: true,
					Points:       sel,
				})
				if err != nil {
					t.Fatal(err)
				}
				if rep.Tasks <= rep.Explored {
					t.Errorf("adversary never engaged: %d points expanded to %d crash images",
						rep.Explored, rep.Tasks)
				}
				if len(rep.CommitDigests) == 0 {
					t.Error("differential sweep recorded no commit digests")
				}
			})
		}
	}
}

// TestTortureReproducesPoint checks the repro contract behind the reported
// commands: exploring one point twice — as dhtm-crashtest -point does — must
// yield identical results, including the recovery report counts and the torn
// prefix length.
func TestTortureReproducesPoint(t *testing.T) {
	cfg := crashtest.Config{
		Design: "DHTM", Workload: "queue",
		Cores: 4, TxPerCore: 2, OpsPerTx: 8, Torn: true,
	}
	probe, err := crashtest.Explore(context.Background(), withPoints(cfg, crashtest.Selection{Mode: "stride", Samples: 1}))
	if err != nil {
		t.Fatal(err)
	}
	point := probe.TotalPoints / 2
	var runs []*crashtest.Report
	for i := 0; i < 2; i++ {
		rep, err := crashtest.Explore(context.Background(), withPoints(cfg, crashtest.Selection{Mode: "point", Point: point}))
		if err != nil {
			t.Fatal(err)
		}
		if rep.Explored != 1 {
			t.Fatalf("explored %d points, want exactly 1", rep.Explored)
		}
		runs = append(runs, rep)
	}
	if !reflect.DeepEqual(runs[0].ReplayHist, runs[1].ReplayHist) ||
		!reflect.DeepEqual(runs[0].RollbackHist, runs[1].RollbackHist) ||
		runs[0].Failed != runs[1].Failed {
		t.Fatalf("point %d is not reproducible:\nfirst:  %+v\nsecond: %+v", point, runs[0], runs[1])
	}
	if runs[0].RunSeed != runs[1].RunSeed || runs[0].RunSeed == 0 {
		t.Fatalf("run seeds differ or are zero: %d vs %d", runs[0].RunSeed, runs[1].RunSeed)
	}
}

// withPoints returns cfg with the given point selection.
func withPoints(cfg crashtest.Config, sel crashtest.Selection) crashtest.Config {
	cfg.Points = sel
	return cfg
}
