// Benchmarks that regenerate every table and figure of the paper's evaluation
// (§VI). Each benchmark runs the corresponding experiment from
// internal/harness at a reduced scale (the Quick option) so that
// `go test -bench=. -benchmem` finishes in a few minutes, and reports the
// headline numbers as benchmark metrics. cmd/dhtm-bench runs the same
// experiments at full scale and prints the complete tables.
package dhtm_test

import (
	"context"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"dhtm/internal/harness"
	"dhtm/internal/memdev"
	"dhtm/internal/palloc"
	"dhtm/internal/registry"
	"dhtm/internal/runner"
	"dhtm/internal/workloads"
)

// benchOptions returns the experiment options used by the benchmarks.
// Set DHTM_BENCH_FULL=1 to run at the full default scale.
func benchOptions() harness.Options {
	o := harness.Options{Quick: true}
	if v, _ := strconv.ParseBool(os.Getenv("DHTM_BENCH_FULL")); v {
		o.Quick = false
	}
	return o
}

// runExperiment executes one experiment per benchmark iteration and prints
// its table once so the benchmark log doubles as the reproduction record.
func runExperiment(b *testing.B, id string) *harness.Table {
	b.Helper()
	exp, ok := harness.Find(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	var table *harness.Table
	for i := 0; i < b.N; i++ {
		t, err := exp.Run(context.Background(), benchOptions())
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		table = t
	}
	if table != nil {
		b.Log("\n")
		table.Render(testWriter{b})
	}
	return table
}

// testWriter adapts the benchmark logger to io.Writer for table rendering.
type testWriter struct{ b *testing.B }

func (w testWriter) Write(p []byte) (int, error) {
	w.b.Log(string(p))
	return len(p), nil
}

// BenchmarkTable4WriteSets regenerates Table IV (workload write-set sizes).
func BenchmarkTable4WriteSets(b *testing.B) { runExperiment(b, "table4") }

// BenchmarkFigure5Microbenchmarks regenerates Figure 5 (micro-benchmark
// throughput of every design normalized to SO).
func BenchmarkFigure5Microbenchmarks(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkTable5AbortRates regenerates Table V (abort rates of sdTM and DHTM).
func BenchmarkTable5AbortRates(b *testing.B) { runExperiment(b, "table5") }

// BenchmarkFigure6LogBufferSweep regenerates Figure 6 (DHTM throughput on
// hash as a function of the log-buffer size).
func BenchmarkFigure6LogBufferSweep(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkTable6OLTP regenerates Table VI (TPC-C and TATP throughput of SO,
// ATOM and DHTM).
func BenchmarkTable6OLTP(b *testing.B) { runExperiment(b, "table6") }

// BenchmarkTable7Bandwidth regenerates Table VII (NP and DHTM vs memory
// bandwidth on hash).
func BenchmarkTable7Bandwidth(b *testing.B) { runExperiment(b, "table7") }

// BenchmarkDurabilityCost regenerates the §VI.D analysis (cost of atomic
// durability: NP and idealised DHTM vs DHTM).
func BenchmarkDurabilityCost(b *testing.B) { runExperiment(b, "durability") }

// BenchmarkAblations runs the DHTM design-choice ablations called out in
// DESIGN.md (overflow support, log-buffer coalescing, conflict policy).
func BenchmarkAblations(b *testing.B) { runExperiment(b, "ablation") }

// BenchmarkDHTMSimulation measures raw simulator throughput (simulated
// transactions per second of host time) for DHTM on the hash workload — a
// sanity check that the architectural model stays fast enough to sweep.
func BenchmarkDHTMSimulation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := harness.Execute(runner.Cell{
			Design: harness.DesignDHTM, Workload: "hash", TxPerCore: 8,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Committed), "simulated-tx/op")
	}
}

// BenchmarkAllDesignsOnHash compares the host cost of simulating each design
// on the same workload.
func BenchmarkAllDesignsOnHash(b *testing.B) {
	for _, d := range []string{harness.DesignSO, harness.DesignSdTM, harness.DesignATOM,
		harness.DesignLogTMATOM, harness.DesignNP, harness.DesignDHTM} {
		d := d
		b.Run(d, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := harness.Execute(runner.Cell{
					Design: d, Workload: "hash", TxPerCore: 6,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWorkloadGeneration measures transaction generation alone (setup
// plus Next), confirming it is negligible next to the simulation itself.
func BenchmarkWorkloadGeneration(b *testing.B) {
	for _, name := range registry.MicroWorkloadNames() {
		name := name
		b.Run(name, func(b *testing.B) {
			w, err := registry.NewWorkload(name)
			if err != nil {
				b.Fatal(err)
			}
			heap := palloc.New(memdev.NewStore())
			if err := w.Setup(heap, workloads.Params{}.Defaults()); err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(1))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if w.Next(0, rng) == nil {
					b.Fatal("nil transaction")
				}
			}
		})
	}
}
