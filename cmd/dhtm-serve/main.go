// Command dhtm-serve runs the campaign service: an HTTP API that accepts
// experiment, sweep and crash-test campaigns as JSON jobs, executes them on
// a bounded worker pool, streams per-cell progress, and serves every
// previously computed cell from the content-addressed result store without
// simulating it again.
//
// Usage:
//
//	dhtm-serve -addr :8080 -store results/
//
// Submit a campaign, watch it, fetch its tables:
//
//	curl -s localhost:8080/api/v1/jobs -d '{"kind":"experiment","experiments":["table4"],"quick":true}'
//	curl -s localhost:8080/api/v1/jobs -d @examples/scenarios/table4-quick.json   # same endpoint, scenario file
//	curl -s localhost:8080/api/v1/jobs/job-000001            # poll
//	curl -N localhost:8080/api/v1/jobs/job-000001/events     # SSE stream
//	curl -s localhost:8080/api/v1/jobs/job-000001/tables     # rendered tables
//	curl -s localhost:8080/api/v1/store                      # cache hit counters
//	curl -s localhost:8080/metrics                           # Prometheus exposition
//
// GET / serves a live HTML dashboard (jobs, progress bars, phase breakdowns,
// store hit ratios) over the same API. -pprof mounts net/http/pprof under
// /debug/pprof/ for profiling a running service.
//
// Re-submitting the same campaign answers every cell from the store — zero
// cells simulated (watch "cached" climb in /api/v1/jobs/{id} and the store
// hit counters in /api/v1/store).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dhtm/internal/obs"
	"dhtm/internal/resultstore"
	"dhtm/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	storeDir := flag.String("store", "", "result-store directory (empty = in-memory only; results do not survive a restart)")
	workers := flag.Int("workers", 2, "jobs executing concurrently; queued jobs wait in submission order")
	parallel := flag.Int("parallel", 0, "per-job cell worker-pool cap (0 = GOMAXPROCS)")
	memEntries := flag.Int("mem", 0, "in-memory LRU capacity in results (0 = default 4096, negative = disabled)")
	logJSON := flag.Bool("log-json", false, "emit structured logs as JSON lines instead of logfmt-style text")
	withPprof := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (exposes heap contents; trusted listeners only)")
	traceInterval := flag.Uint64("trace-interval", 0, "record cycle-domain probes for every simulated cell, sampling every N simulated cycles (0 = tracing off); traces are served from /api/v1/jobs/{id}/cells/{key}/trace")
	flag.Parse()

	var handler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	}
	logger := slog.New(handler)

	// Everything reports into the process-wide obs.Default plane — the store
	// opened here, the runner/snapshot/crashtest layers at package init, and
	// the server's own families — so GET /metrics is one coherent view.
	store, err := resultstore.Open(*storeDir, resultstore.Options{MemEntries: *memEntries, Registry: obs.Default})
	if err != nil {
		fail("%v", err)
	}
	srv, err := serve.New(serve.Config{
		Store: store, Workers: *workers, CellParallel: *parallel,
		Registry: obs.Default, Logger: logger, Pprof: *withPprof,
		TraceInterval: *traceInterval,
	})
	if err != nil {
		fail("%v", err)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()

	where := *storeDir
	if where == "" {
		where = "(memory only)"
	}
	fmt.Fprintf(os.Stderr, "dhtm-serve: listening on %s, store %s, %d job workers; dashboard at /, metrics at /metrics\n",
		*addr, where, *workers)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fail("%v", err)
		}
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "dhtm-serve: shutting down")
		// Cancel jobs first: that terminates them, which closes their SSE
		// streams (with a done frame), which lets Shutdown actually drain
		// the handlers instead of stalling its full timeout on them.
		srv.Close()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		httpSrv.Shutdown(shutdownCtx)
		m := store.Metrics()
		fmt.Fprintf(os.Stderr, "dhtm-serve: store served %d hits (%d mem, %d disk), simulated %d cells, shared %d in-flight\n",
			m.Hits(), m.MemHits, m.DiskHits, m.Computes, m.Shared)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dhtm-serve: "+format+"\n", args...)
	os.Exit(1)
}
