// Command dhtm-serve runs the campaign service: an HTTP API that accepts
// experiment, sweep and crash-test campaigns as JSON jobs, executes them on
// a bounded worker pool, streams per-cell progress, and serves every
// previously computed cell from the content-addressed result store without
// simulating it again.
//
// Usage:
//
//	dhtm-serve -addr :8080 -store results/
//
// Submit a campaign, watch it, fetch its tables:
//
//	curl -s localhost:8080/api/v1/jobs -d '{"kind":"experiment","experiments":["table4"],"quick":true}'
//	curl -s localhost:8080/api/v1/jobs -d @examples/scenarios/table4-quick.json   # same endpoint, scenario file
//	curl -s localhost:8080/api/v1/jobs/job-000001            # poll
//	curl -N localhost:8080/api/v1/jobs/job-000001/events     # SSE stream
//	curl -s localhost:8080/api/v1/jobs/job-000001/tables     # rendered tables
//	curl -s localhost:8080/api/v1/store                      # cache hit counters
//	curl -s localhost:8080/metrics                           # Prometheus exposition
//
// GET / serves a live HTML dashboard (jobs, progress bars, phase breakdowns,
// store hit ratios) over the same API. -pprof mounts net/http/pprof under
// /debug/pprof/ for profiling a running service.
//
// Re-submitting the same campaign answers every cell from the store — zero
// cells simulated (watch "cached" climb in /api/v1/jobs/{id} and the store
// hit counters in /api/v1/store).
//
// # Distributed campaigns
//
// One campaign can shard across many machines (see the README's
// "Distributed campaigns" section):
//
//	dhtm-serve -fleet -addr :8080 -store results/     # coordinator
//	dhtm-serve -worker -coordinator http://host:8080  # as many workers as you like
//
// A -fleet coordinator accepts the same jobs on the same API, but dispatches
// their cells in batches to registered workers instead of simulating
// locally; workers read and write cell results through the coordinator's
// store, so re-dispatched batches never re-simulate. SIGTERM drains both
// sides gracefully: a worker finishes its in-flight cells, returns the rest
// and deregisters; the coordinator stops accepting jobs and lets the running
// ones finish (a second signal forces immediate shutdown).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dhtm/internal/fleet"
	"dhtm/internal/obs"
	"dhtm/internal/resultstore"
	"dhtm/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	storeDir := flag.String("store", "", "result-store directory (empty = in-memory only; results do not survive a restart)")
	workers := flag.Int("workers", 2, "jobs executing concurrently; queued jobs wait in submission order")
	parallel := flag.Int("parallel", 0, "per-job cell worker-pool cap (0 = GOMAXPROCS); in -worker mode, the batch cell pool size")
	memEntries := flag.Int("mem", 0, "in-memory LRU capacity in results (0 = default 4096, negative = disabled)")
	logJSON := flag.Bool("log-json", false, "emit structured logs as JSON lines instead of logfmt-style text")
	withPprof := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (exposes heap contents; trusted listeners only)")
	traceInterval := flag.Uint64("trace-interval", 0, "record cycle-domain probes for every simulated cell, sampling every N simulated cycles (0 = tracing off); traces are served from /api/v1/jobs/{id}/cells/{key}/trace")

	fleetMode := flag.Bool("fleet", false, "coordinate a worker fleet: dispatch job cells to -worker processes instead of simulating locally")
	workerMode := flag.Bool("worker", false, "join a fleet as a worker: pull cell batches from -coordinator and simulate them")
	coordinator := flag.String("coordinator", "", "coordinator base URL for -worker mode (e.g. http://host:8080)")
	name := flag.String("name", "", "worker name shown in fleet status and per-worker metrics (default: the assigned worker ID)")
	batch := flag.Int("batch", 8, "cells per dispatched batch in -fleet mode")
	leaseTTL := flag.Duration("lease-ttl", 60*time.Second, "batch deadline in -fleet mode; incomplete batches are re-dispatched after it")
	heartbeat := flag.Duration("heartbeat", 5*time.Second, "worker heartbeat interval in -fleet mode; a worker silent for three intervals is declared dead")
	poll := flag.Duration("poll", 500*time.Millisecond, "idle poll interval between leases in -worker mode")
	flag.Parse()

	var handler slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	}
	logger := slog.New(handler)

	if *workerMode {
		if *fleetMode {
			fail("-worker and -fleet are mutually exclusive")
		}
		if *coordinator == "" {
			fail("-worker needs -coordinator URL")
		}
		runWorker(logger, *coordinator, *name, *parallel, *memEntries, *poll)
		return
	}

	// Everything reports into the process-wide obs.Default plane — the store
	// opened here, the runner/snapshot/crashtest layers at package init, and
	// the server's own families — so GET /metrics is one coherent view.
	store, err := resultstore.Open(*storeDir, resultstore.Options{MemEntries: *memEntries, Registry: obs.Default})
	if err != nil {
		fail("%v", err)
	}
	var coord *fleet.Coordinator
	if *fleetMode {
		coord, err = fleet.NewCoordinator(fleet.CoordinatorConfig{
			Store: store, BatchSize: *batch, LeaseTTL: *leaseTTL, Heartbeat: *heartbeat,
			Registry: obs.Default, Logger: logger,
		})
		if err != nil {
			fail("%v", err)
		}
		defer coord.Close()
	}
	srv, err := serve.New(serve.Config{
		Store: store, Workers: *workers, CellParallel: *parallel,
		Registry: obs.Default, Logger: logger, Pprof: *withPprof,
		TraceInterval: *traceInterval, Fleet: coord,
	})
	if err != nil {
		fail("%v", err)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()

	where := *storeDir
	if where == "" {
		where = "(memory only)"
	}
	mode := ""
	if *fleetMode {
		mode = ", coordinating a fleet"
	}
	fmt.Fprintf(os.Stderr, "dhtm-serve: listening on %s, store %s, %d job workers%s; dashboard at /, metrics at /metrics\n",
		*addr, where, *workers, mode)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fail("%v", err)
		}
	case <-ctx.Done():
		stop() // restore default handling so a third signal kills outright
		fmt.Fprintln(os.Stderr, "dhtm-serve: draining (finishing running jobs; signal again to force)")
		// Graceful half: reject new jobs, let the running ones finish. A
		// second signal falls through to the forced path, which cancels
		// them. Either way the jobs terminate, which closes their SSE
		// streams (with a done frame), which lets Shutdown actually drain
		// the handlers instead of stalling its full timeout on them.
		drained := make(chan struct{})
		go func() { srv.Drain(); close(drained) }()
		force, forceStop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		select {
		case <-drained:
		case <-force.Done():
			fmt.Fprintln(os.Stderr, "dhtm-serve: forcing shutdown")
			srv.Close()
			<-drained
		}
		forceStop()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		httpSrv.Shutdown(shutdownCtx)
		m := store.Metrics()
		fmt.Fprintf(os.Stderr, "dhtm-serve: store served %d hits (%d mem, %d disk), simulated %d cells, shared %d in-flight\n",
			m.Hits(), m.MemHits, m.DiskHits, m.Computes, m.Shared)
	}
}

// runWorker is -worker mode: one process pulling batches from a coordinator
// until SIGTERM, which finishes in-flight cells, returns the rest of the
// batch, and deregisters before exiting.
func runWorker(logger *slog.Logger, coordinator, name string, parallel, memEntries int, poll time.Duration) {
	w, err := fleet.NewWorker(fleet.WorkerConfig{
		Coordinator: coordinator, Name: name, Parallel: parallel,
		MemEntries: memEntries, Poll: poll,
		Registry: obs.Default, Logger: logger,
	})
	if err != nil {
		fail("%v", err)
	}
	fmt.Fprintf(os.Stderr, "dhtm-serve: worker pulling from %s\n", coordinator)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := w.Run(ctx); err != nil {
		fail("%v", err)
	}
	m := w.Store().Metrics()
	fmt.Fprintf(os.Stderr, "dhtm-serve: worker done; simulated %d cells, %d remote hits\n", m.Computes, m.DiskHits)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dhtm-serve: "+format+"\n", args...)
	os.Exit(1)
}
