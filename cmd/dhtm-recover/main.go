// Command dhtm-recover runs the OS recovery manager over a persistent-memory
// image produced by `dhtm-sim -crash -image <file>`: it scans every
// registered per-thread log, replays committed-but-incomplete transactions in
// sentinel dependency order, rolls back uncommitted undo-logged transactions,
// and writes the recovered image back (or to a new file).
//
// Examples:
//
//	dhtm-sim -design DHTM -workload queue -crash -image crash.img
//	dhtm-recover -image crash.img -out recovered.img
//	dhtm-recover -image crash.img -dump        # hex dump of the recovered image
//	dhtm-recover -image crash.img -dry-run -json   # machine-readable report
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"dhtm/internal/memdev"
	"dhtm/internal/recovery"
)

func main() {
	image := flag.String("image", "", "persistent-memory image to recover (required)")
	out := flag.String("out", "", "write the recovered image here (default: overwrite the input)")
	dump := flag.Bool("dump", false, "print a hex dump of the recovered image's populated lines")
	dryRun := flag.Bool("dry-run", false, "report what recovery would do without writing the image back")
	jsonOut := flag.Bool("json", false, "emit the recovery report as JSON on stdout (mirrors dhtm-bench -json)")
	flag.Parse()

	if *image == "" {
		fmt.Fprintln(os.Stderr, "dhtm-recover: -image is required")
		flag.Usage()
		os.Exit(2)
	}

	store := memdev.NewStore()
	f, err := os.Open(*image)
	if err != nil {
		fail("opening image: %v", err)
	}
	if err := store.Load(f); err != nil {
		fail("loading image: %v", err)
	}
	_ = f.Close()

	report, err := recovery.Recover(store)
	if err != nil {
		fail("recovery: %v", err)
	}
	// In -json mode stdout carries only the JSON report; human-oriented
	// output (hex dump, status notes) moves to stderr.
	aside := os.Stdout
	if *jsonOut {
		aside = os.Stderr
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fail("encoding report: %v", err)
		}
	} else {
		fmt.Print(report)
	}

	if *dump {
		store.Dump(aside)
	}
	if *dryRun {
		return
	}
	target := *out
	if target == "" {
		target = *image
	}
	w, err := os.Create(target)
	if err != nil {
		fail("creating output image: %v", err)
	}
	if err := store.Save(w); err != nil {
		fail("writing output image: %v", err)
	}
	if err := w.Close(); err != nil {
		fail("closing output image: %v", err)
	}
	fmt.Fprintf(aside, "recovered image written to %s\n", target)
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "dhtm-recover: "+format+"\n", args...)
	os.Exit(1)
}
