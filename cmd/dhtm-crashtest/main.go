// Command dhtm-crashtest runs the crash-point exploration subsystem: it
// measures a workload run's persist-event space (every durable write is a
// numbered crash point), re-runs the workload with a crash injected at each
// selected point, recovers the resulting image and checks the durability
// oracles (workload invariants, prefix consistency, recovery idempotency,
// and — with -differential — agreement with a serial re-execution of the
// committed transactions). With -window W the persist-queue reordering
// adversary additionally fans each point out into one crash image per subset
// of the in-flight write window. Exploration fans out across a worker pool
// and is fully deterministic, so any reported failure reproduces from its
// point index (plus -window/-mask when the adversary was in play).
//
// Examples:
//
//	dhtm-crashtest -design DHTM -workload hash                  # exhaustive
//	dhtm-crashtest -design DHTM,ATOM -workload hash,queue -mode stride -samples 64
//	dhtm-crashtest -design DHTM -workload queue -torn -mode random -samples 128
//	dhtm-crashtest -design DHTM -workload hash -window 3        # reordering adversary
//	dhtm-crashtest -design DHTM,LogTM-ATOM -workload hash -window 2 -differential
//	dhtm-crashtest -design DHTM -workload hash -point 1234      # one point
//	dhtm-crashtest -design DHTM -workload hash -point 1234 -window 3 -mask 0x5
//	dhtm-crashtest -scenario examples/scenarios/crashtest-quick.json
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"dhtm/internal/crashtest"
	"dhtm/internal/obs"
	"dhtm/internal/registry"
	"dhtm/internal/scenario"
)

func main() {
	design := flag.String("design", "DHTM", "design(s) to torture, comma separated (supported: "+strings.Join(crashtest.Supported(), ", ")+")")
	workload := flag.String("workload", "hash", "workload(s) to drive, comma separated")
	cores := flag.Int("cores", 4, "number of simulated cores")
	tx := flag.Int("tx", 4, "transactions per core")
	ops := flag.Int("ops", 0, "operations per transaction (0 = workload default)")
	seed := flag.Int64("seed", 0, "base seed; run seeds derive deterministically from it and the configuration")
	mode := flag.String("mode", "all", "crash-point selection: all, stride, random")
	stride := flag.Int("stride", 0, "explore every N-th point (stride mode; 0 = derive from -samples)")
	samples := flag.Int("samples", 0, "target point count (stride and random modes)")
	point := flag.Int("point", -1, "explore exactly this crash point (repro mode; overrides -mode)")
	torn := flag.Bool("torn", false, "tear the in-flight write at each point (a seed-derived word prefix reaches memory)")
	window := flag.Int("window", 0, "persist-queue reordering window W: any subset of the last W non-drain writes may be lost at a crash (0 = strictly ordered)")
	masks := flag.String("masks", "auto", "adversary subset enumeration per point: auto, exhaustive, sample")
	maskSamples := flag.Int("mask-samples", 0, "subsets per point in sample mode (0 = 16)")
	mask := flag.String("mask", "", "replay exactly this adversary mask (hex or decimal; requires -point and -window)")
	differential := flag.Bool("differential", false, "enable the differential oracle: recovered images must match serial re-execution of the committed transactions, and designs are cross-checked against each other")
	parallel := flag.Int("parallel", 0, "points to explore concurrently (0 = GOMAXPROCS)")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON reports on stdout")
	progress := flag.Bool("progress", false, "log per-point completion to stderr")
	scenarioPath := flag.String("scenario", "", "run a crashtest-mode scenario file instead of -design/-workload (see examples/scenarios)")
	metricsOut := flag.String("metrics", "", "write the run's metrics registry in Prometheus text format to this file at exit")
	flag.Parse()

	var configs []crashtest.Config
	if *scenarioPath != "" {
		// The scenario file owns the semantic knobs; flags that would
		// silently fight it are rejected rather than ignored.
		if conflict := scenario.FlagConflict("design", "workload", "cores", "tx", "ops",
			"seed", "mode", "stride", "samples", "point", "torn",
			"window", "masks", "mask-samples", "mask", "differential"); conflict != "" {
			misuse("-%s cannot be combined with -scenario (the scenario file pins it)", conflict)
		}
		doc, err := scenario.Load(*scenarioPath)
		if err != nil {
			misuse("%v", err)
		}
		if doc.Mode != scenario.ModeCrashtest {
			misuse("%s: mode %q: dhtm-crashtest runs crashtest scenarios (experiment mode runs under dhtm-bench -scenario, sweep mode under dhtm-sim -scenario)", *scenarioPath, doc.Mode)
		}
		compiled, err := doc.Compile()
		if err != nil {
			misuse("%v", err)
		}
		configs = compiled.Crashtests
	} else {
		designs := splitList(*design)
		wls := splitList(*workload)
		if len(designs) == 0 || len(wls) == 0 {
			misuse("-design and -workload must each name at least one entry")
		}
		// Validate every combo up front so a typo in a later list entry cannot
		// discard the reports of sweeps that already ran (repo convention:
		// successes still render before a non-zero exit).
		for _, d := range designs {
			if err := registry.CheckDesign(d); err != nil {
				misuse("%v", err)
			}
			if !supported(d) {
				misuse("design %q is not supported by the crash-point explorer (supported: %s)", d, strings.Join(crashtest.Supported(), ", "))
			}
		}
		for _, w := range wls {
			if err := registry.CheckWorkload(w); err != nil {
				misuse("%v", err)
			}
		}
		if *mode == "point" {
			misuse("select a single crash point with -point N, not -mode point")
		}
		sel := crashtest.Selection{Mode: *mode, Stride: *stride, Samples: *samples}
		if *point >= 0 {
			if len(designs) > 1 || len(wls) > 1 {
				misuse("-point repro mode requires a single design and workload")
			}
			sel = crashtest.Selection{Mode: "point", Point: *point, Mask: *mask}
		} else if *mask != "" {
			misuse("-mask replays one adversary choice and requires -point")
		}
		maskMode := *masks
		if maskMode == "auto" {
			maskMode = "" // the explorer's default
		}
		adv := crashtest.AdversaryConfig{Window: *window, Mode: maskMode, Samples: *maskSamples}
		if err := adv.Validate(); err != nil {
			misuse("%v", err)
		}
		if *mask != "" && *window == 0 {
			misuse("-mask describes in-flight writes and requires -window > 0")
		}
		for _, d := range designs {
			for _, w := range wls {
				configs = append(configs, crashtest.Config{
					Design: d, Workload: w, Cores: *cores, TxPerCore: *tx, OpsPerTx: *ops,
					Seed: *seed, Torn: *torn, Adversary: adv, Differential: *differential,
					Points: sel,
				})
			}
		}
	}

	// Ctrl-C cancels the exploration after the in-flight points finish.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var reports []*crashtest.Report
	failed := false
	for _, cfg := range configs {
		cfg.Parallel = *parallel
		name := cfg.Design + "/" + cfg.Workload
		if *progress {
			cfg.Progress = func(done, total int) {
				if done%64 == 0 || done == total {
					fmt.Fprintf(os.Stderr, "%s: %d/%d points\n", name, done, total)
				}
			}
		}
		rep, err := crashtest.Explore(ctx, cfg)
		if errors.Is(err, context.Canceled) {
			fail("%s: interrupted", name)
		}
		if err != nil {
			fail("%s: %v", name, err)
		}
		reports = append(reports, rep)
		if rep.Failed > 0 {
			failed = true
		}
		if !*jsonOut {
			render(rep)
		}
	}

	// The fleet-level half of the differential oracle: designs that explored
	// the same committed sequences must agree on the recovered heap.
	if err := crashtest.CrossCheck(reports); err != nil {
		failed = true
		fmt.Fprintf(os.Stderr, "dhtm-crashtest: %v\n", err)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			fail("encoding JSON: %v", err)
		}
	}
	// Written before the exit-status check so a failing exploration still
	// leaves its dhtm_crashtest_* counters (points, crash images, per-oracle
	// failures) on disk for post-mortem.
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err == nil {
			err = obs.Default.WriteText(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fail("writing metrics: %v", err)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// render prints one report in a compact human-readable form.
func render(r *crashtest.Report) {
	extras := ""
	if r.Torn {
		extras += " torn"
	}
	if r.Adversary.Window > 0 {
		extras += fmt.Sprintf(" window=%d", r.Adversary.Window)
	}
	if r.Differential {
		extras += " differential"
	}
	images := ""
	if r.Tasks > 0 {
		images = fmt.Sprintf(" (%d crash images)", r.Tasks)
	}
	fmt.Printf("%s/%s (cores=%d tx=%d seed=%d%s): %d persist events, explored %d%s, %d failed  [%v]\n",
		r.Design, r.Workload, r.Cores, r.TxPerCore, r.BaseSeed, extras,
		r.TotalPoints, r.Explored, images, r.Failed, time.Duration(r.ElapsedNS).Round(time.Millisecond))
	keys := make([]string, 0, len(r.EventsByClass))
	for k := range r.EventsByClass {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%d", k, r.EventsByClass[k]))
	}
	fmt.Printf("  events: %s\n", strings.Join(parts, " "))
	fmt.Printf("  replays/point: %s   rollbacks/point: %s\n", intHistLine(r.ReplayHist), intHistLine(r.RollbackHist))
	if r.FirstFailure != nil {
		where := fmt.Sprintf("point %d (%s)", r.FirstFailure.Point, r.FirstFailure.Class)
		if r.FirstFailure.Mask != "" {
			where += fmt.Sprintf(" mask %s of %d in flight", r.FirstFailure.Mask, r.FirstFailure.Window)
		}
		fmt.Printf("  FIRST FAILURE at %s: %s\n  reproduce: %s\n",
			where, r.FirstFailure.Err, r.Repro)
	}
}

// intHistLine renders an int-keyed histogram in ascending key order.
func intHistLine(h map[int]int) string {
	max := -1
	for k := range h {
		if k > max {
			max = k
		}
	}
	var parts []string
	for k := 0; k <= max; k++ {
		if n, ok := h[k]; ok {
			parts = append(parts, fmt.Sprintf("%d:%d", k, n))
		}
	}
	if len(parts) == 0 {
		return "-"
	}
	return strings.Join(parts, " ")
}

// supported reports whether the explorer accepts the design.
func supported(design string) bool {
	for _, d := range crashtest.Supported() {
		if d == design {
			return true
		}
	}
	return false
}

// splitList parses a comma-separated flag value.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// misuse reports a flag-usage error with exit code 2 (the repo convention:
// 2 = misuse, 1 = a crash point failed an oracle or the run itself failed).
func misuse(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "dhtm-crashtest: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "dhtm-crashtest: "+format+"\n", args...)
	os.Exit(1)
}
