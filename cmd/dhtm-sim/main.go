// Command dhtm-sim runs (design, workload) pairs on the simulated machine
// and prints detailed statistics. With a single pair it supports crash
// injection: -crash stops the run at the last transaction's commit point,
// simulates a power failure and writes the persistent-memory image to a file
// that cmd/dhtm-recover can replay. With comma-separated designs or
// workloads it becomes a sweep driver: the grid of cells fans out across
// -parallel workers and a compact result line (or -json document) is emitted
// per cell.
//
// Examples:
//
//	dhtm-sim -design DHTM -workload hash -tx 24
//	dhtm-sim -design DHTM -workload queue -crash -image crash.img
//	dhtm-sim -design ATOM -workload tpcc -cores 4 -tx 4
//	dhtm-sim -design SO,ATOM,DHTM -workload hash,queue -parallel 4 -json
//	dhtm-sim -design DHTM -workload hash -trace trace.json -trace-interval 128
//	dhtm-sim -scenario examples/scenarios/micro-quick.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime/pprof"
	"strings"
	"syscall"

	"dhtm/internal/config"
	"dhtm/internal/harness"
	"dhtm/internal/obs"
	"dhtm/internal/probe"
	"dhtm/internal/recovery"
	"dhtm/internal/registry"
	"dhtm/internal/resultstore"
	"dhtm/internal/runner"
	"dhtm/internal/scenario"
	"dhtm/internal/txn"
	"dhtm/internal/workloads"
)

// cellReport is one cell's entry in the -json output.
type cellReport struct {
	Cell       runner.Cell `json:"cell"`
	Committed  uint64      `json:"committed"`
	Cycles     uint64      `json:"cycles"`
	Throughput float64     `json:"throughput_tx_per_mcycle"`
	AbortRate  float64     `json:"abort_rate"`
	LogBytes   uint64      `json:"log_bytes"`
	DataWrites uint64      `json:"data_write_bytes"`
	Error      string      `json:"error,omitempty"`
}

func main() {
	design := flag.String("design", registry.DesignDHTM, "design(s) to run, comma separated ("+strings.Join(registry.DesignNames(), ", ")+")")
	workload := flag.String("workload", "hash", "workload(s) to run, comma separated ("+strings.Join(registry.WorkloadNames(), ", ")+")")
	tx := flag.Int("tx", 16, "transactions per core")
	cores := flag.Int("cores", 0, "number of cores (0 = 8)")
	logBuf := flag.Int("logbuf", 0, "DHTM log-buffer entries (0 = configured default of 64)")
	bw := flag.Float64("bw", 1.0, "memory bandwidth scale factor")
	seed := flag.Int64("seed", 0, "workload generation seed (0 = derive deterministically per cell)")
	parallel := flag.Int("parallel", 0, "cells to simulate concurrently in sweep mode (0 = GOMAXPROCS)")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON results on stdout")
	crash := flag.Bool("crash", false, "crash at the last commit point instead of finishing cleanly")
	image := flag.String("image", "", "write the persistent-memory image to this file (with -crash)")
	recoverFlag := flag.Bool("recover", false, "run the recovery manager in-process after a crash and verify the workload")
	scenarioPath := flag.String("scenario", "", "run a sweep-mode scenario file instead of -design/-workload (see examples/scenarios)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	tracePath := flag.String("trace", "", "record cycle-domain probes and write a Chrome trace-event / Perfetto JSON file (load it at https://ui.perfetto.dev or chrome://tracing)")
	traceInterval := flag.Uint64("trace-interval", 0, "probe sampling interval in simulated cycles (0 = default "+fmt.Sprint(probe.DefaultInterval)+"; needs -trace)")
	metricsOut := flag.String("metrics", "", "write the run's metrics registry in Prometheus text format to this file at exit")
	flag.Parse()

	if *metricsOut != "" {
		defer func() {
			if err := dumpMetrics(*metricsOut); err != nil {
				fmt.Fprintf(os.Stderr, "dhtm-sim: writing metrics: %v\n", err)
			}
		}()
	}
	tc := traceConfig(*tracePath, *traceInterval)

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fail("creating CPU profile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail("starting CPU profile: %v", err)
		}
		done := false
		stopProfile = func() {
			if done {
				return
			}
			done = true
			pprof.StopCPUProfile()
			f.Close()
		}
		defer stopProfile()
	}

	if *scenarioPath != "" {
		// The scenario file owns the semantic knobs; flags that would
		// silently fight it are rejected rather than ignored.
		if conflict := scenario.FlagConflict("design", "workload", "tx", "cores",
			"logbuf", "bw", "crash", "image", "recover"); conflict != "" {
			fail("-%s cannot be combined with -scenario (the scenario file pins it)", conflict)
		}
		runScenario(*scenarioPath, *seed, *parallel, *jsonOut, tc, *tracePath)
		return
	}

	designs := splitList(*design)
	wls := splitList(*workload)
	if len(designs) == 0 {
		fail("-design names no designs")
	}
	if len(wls) == 0 {
		fail("-workload names no workloads")
	}
	// Validate every name up front against the registry, so a typo dies with
	// the full listing instead of surfacing later as a per-cell failure.
	for _, d := range designs {
		if err := registry.CheckDesign(d); err != nil {
			fail("%v", err)
		}
	}
	for _, w := range wls {
		if err := registry.CheckWorkload(w); err != nil {
			fail("%v", err)
		}
	}
	if *bw <= 0 {
		fail("bandwidth scale must be positive, got %g", *bw)
	}
	ov := runner.Overrides{LogBufferEntries: *logBuf}
	if *bw != 1.0 {
		ov.BandwidthScale = *bw
	}

	if len(designs) == 1 && len(wls) == 1 && !*jsonOut {
		runSingle(designs[0], wls[0], *tx, *cores, *seed, ov, *crash, *image, *recoverFlag, tc, *tracePath)
		return
	}
	if *crash || *image != "" || *recoverFlag {
		fail("crash injection requires a single design and workload (and no -json)")
	}

	plan := runner.Plan{Name: "dhtm-sim"}
	for _, d := range designs {
		for _, w := range wls {
			plan.Add(runner.Cell{
				ID: d + "/" + w, Design: d, Workload: w,
				Cores: *cores, TxPerCore: *tx, Seed: *seed, Overrides: ov,
			})
		}
	}
	if !runSweep(plan, *seed, *parallel, *jsonOut, tc, *tracePath) {
		stopProfile()
		os.Exit(1)
	}
}

// traceConfig folds the -trace/-trace-interval flags into a probe config:
// tracing is on exactly when a trace file was named.
func traceConfig(path string, interval uint64) probe.Config {
	if path == "" {
		return probe.Config{}
	}
	if interval == 0 {
		interval = probe.DefaultInterval
	}
	return probe.Config{Interval: interval}
}

// writeTrace writes the collected timelines as one Chrome trace-event file.
func writeTrace(path string, timelines []*probe.Timeline) {
	f, err := os.Create(path)
	if err != nil {
		fail("creating trace file: %v", err)
	}
	if err := probe.WriteChromeTrace(f, timelines); err != nil {
		f.Close()
		fail("writing trace: %v", err)
	}
	if err := f.Close(); err != nil {
		fail("closing trace: %v", err)
	}
	n := 0
	for _, tl := range timelines {
		if tl != nil {
			n++
		}
	}
	fmt.Fprintf(os.Stderr, "dhtm-sim: trace for %d cell(s) written to %s (open in https://ui.perfetto.dev or chrome://tracing)\n", n, path)
}

// dumpMetrics writes the process-wide obs registry in Prometheus text
// exposition format, mirroring dhtm-bench and dhtm-crashtest.
func dumpMetrics(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.Default.WriteText(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runScenario compiles a sweep-mode scenario document and runs its plan
// exactly as an inline -design/-workload sweep would, honouring the
// document's result-store setting so interrupted campaigns stay resumable.
func runScenario(path string, seed int64, parallel int, jsonOut bool, tc probe.Config, tracePath string) {
	doc, err := scenario.Load(path)
	if err != nil {
		fail("%v", err)
	}
	if doc.Mode != scenario.ModeSweep {
		fail("%s: mode %q: dhtm-sim runs sweep scenarios (experiment mode runs under dhtm-bench -scenario, crashtest mode under dhtm-crashtest -scenario)", path, doc.Mode)
	}
	compiled, err := doc.Compile()
	if err != nil {
		fail("%v", err)
	}
	if seed == 0 {
		seed = compiled.Seed
	}
	plan := compiled.Plan
	var store *resultstore.Store
	if doc.Store != "" {
		if store, err = resultstore.Open(doc.Store, resultstore.Options{}); err != nil {
			fail("%v", err)
		}
		plan.Store = store
	}
	ok := runSweep(plan, seed, parallel, jsonOut, tc, tracePath)
	if store != nil {
		m := store.Metrics()
		fmt.Fprintf(os.Stderr, "dhtm-sim: store %s: %d hits (%d mem, %d disk), %d misses, %d simulated, %d written\n",
			store.Dir(), m.Hits(), m.MemHits, m.DiskHits, m.Misses, m.Computes, m.Writes)
	}
	if !ok {
		stopProfile()
		os.Exit(1)
	}
}

// runSweep executes a cell plan and reports per-cell results (the shared
// tail of the comma-separated sweep mode and -scenario mode). It reports
// whether every cell succeeded.
func runSweep(plan runner.Plan, seed int64, parallel int, jsonOut bool, tc probe.Config, tracePath string) bool {
	// Ctrl-C cancels the sweep; cells not yet started report ErrCancelled.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rs, err := runner.Run(ctx, plan, harness.ExecuteWith(tc), runner.Options{Parallel: parallel, Seed: seed})
	if err != nil {
		fail("%v", err)
	}
	if tracePath != "" {
		// Plan order keeps the trace's process layout deterministic; cache
		// hits carry no timeline and are skipped.
		var timelines []*probe.Timeline
		for _, r := range rs.Results {
			if r.Run.Timeline != nil {
				timelines = append(timelines, r.Run.Timeline)
			}
		}
		writeTrace(tracePath, timelines)
	}

	if jsonOut {
		reports := make([]cellReport, len(rs.Results))
		for i, r := range rs.Results {
			reports[i] = cellReport{Cell: r.Cell}
			if r.Err != nil {
				reports[i].Error = r.Err.Error()
				continue
			}
			reports[i].Committed = r.Run.Committed
			reports[i].Cycles = r.Run.Cycles
			reports[i].Throughput = r.Run.Throughput()
			reports[i].AbortRate = r.Run.Stats.AbortRate()
			reports[i].LogBytes = r.Run.Stats.LogBytes
			reports[i].DataWrites = r.Run.Stats.DataWriteBytes
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			fail("encoding JSON: %v", err)
		}
	} else {
		for _, r := range rs.Results {
			if r.Err != nil {
				fmt.Printf("%-24s ERROR: %v\n", r.Cell.ID, r.Err)
				continue
			}
			fmt.Printf("%-24s %6d tx in %12d cycles (%.3f tx/Mcycle, abort rate %.1f%%)\n",
				r.Cell.ID, r.Run.Committed, r.Run.Cycles, r.Run.Throughput(),
				r.Run.Stats.AbortRate()*100)
		}
	}
	return rs.Err() == nil
}

// runSingle preserves the original detailed single-run path, including crash
// injection, image capture, recovery and workload verification.
func runSingle(design, workload string, tx, cores int, seed int64, ov runner.Overrides, crash bool, image string, recoverAfter bool, tc probe.Config, tracePath string) {
	cfg := config.Default()
	if cores > 0 {
		cfg.NumCores = cores
	}
	cfg = ov.Apply(cfg)

	env, err := txn.NewEnv(cfg)
	if err != nil {
		fail("building environment: %v", err)
	}
	rt, err := registry.NewRuntime(env, design)
	if err != nil {
		fail("%v", err)
	}
	w, err := registry.NewWorkload(workload)
	if err != nil {
		fail("%v", err)
	}
	if tc.Enabled() {
		cell := runner.Cell{
			ID: design + "/" + workload, Design: design, Workload: workload,
			Cores: cfg.NumCores, TxPerCore: tx, Seed: seed,
		}
		env.Probe = harness.TraceRecorder(tc, env, rt, cell)
	}

	res, err := workloads.Run(env, rt, w, workloads.Params{Cores: cfg.NumCores, Seed: seed}, tx, !crash)
	if err != nil {
		fail("running workload: %v", err)
	}
	fmt.Printf("%s on %s: %d transactions committed in %d cycles (%.3f tx/Mcycle)\n",
		rt.Name(), w.Name(), res.Committed, res.Cycles, res.Throughput())
	fmt.Print(env.Stats.Summary())
	if tracePath != "" {
		writeTrace(tracePath, []*probe.Timeline{res.Timeline})
	}

	if crash {
		env.Hier.Crash()
		fmt.Println("crash injected: volatile state discarded, durable logs retained")
		if image != "" {
			f, err := os.Create(image)
			if err != nil {
				fail("creating image file: %v", err)
			}
			if err := env.Store().Save(f); err != nil {
				fail("writing image: %v", err)
			}
			if err := f.Close(); err != nil {
				fail("closing image: %v", err)
			}
			fmt.Printf("persistent-memory image written to %s (replay it with dhtm-recover)\n", image)
		}
		if recoverAfter {
			report, err := recovery.Recover(env.Store())
			if err != nil {
				fail("recovery: %v", err)
			}
			fmt.Print(report)
			if err := w.Verify(env.Store()); err != nil {
				fail("workload verification after recovery FAILED: %v", err)
			}
			fmt.Println("workload invariants verified after recovery")
		}
		return
	}

	env.Hier.DrainClean()
	if err := w.Verify(env.Store()); err != nil {
		fail("workload verification FAILED: %v", err)
	}
	fmt.Println("workload invariants verified")
}

// splitList parses a comma-separated flag value.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// stopProfile flushes an active -cpuprofile; every exit path must call it so
// the profile file gets its trailer even when the run fails.
var stopProfile = func() {}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "dhtm-sim: "+format+"\n", args...)
	stopProfile()
	os.Exit(1)
}
