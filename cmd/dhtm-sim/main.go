// Command dhtm-sim runs a single (design, workload) pair on the simulated
// machine and prints detailed statistics. With -crash it stops the run at the
// last transaction's commit point, simulates a power failure and writes the
// persistent-memory image to a file that cmd/dhtm-recover can replay.
//
// Examples:
//
//	dhtm-sim -design DHTM -workload hash -tx 24
//	dhtm-sim -design DHTM -workload queue -crash -image crash.img
//	dhtm-sim -design ATOM -workload tpcc -cores 4 -tx 4
package main

import (
	"flag"
	"fmt"
	"os"

	"dhtm/internal/config"
	"dhtm/internal/harness"
	"dhtm/internal/recovery"
	"dhtm/internal/txn"
	"dhtm/internal/workloads"
)

func main() {
	design := flag.String("design", harness.DesignDHTM, "design to run (SO, sdTM, ATOM, LogTM-ATOM, NP, DHTM, DHTM-instant, DHTM-L1, DHTM-nobuf)")
	workload := flag.String("workload", "hash", "workload to run (queue, hash, sdg, sps, btree, rbtree, tatp, tpcc)")
	tx := flag.Int("tx", 16, "transactions per core")
	cores := flag.Int("cores", 0, "number of cores (0 = 8)")
	logBuf := flag.Int("logbuf", 0, "DHTM log-buffer entries (0 = configured default of 64)")
	bw := flag.Float64("bw", 1.0, "memory bandwidth scale factor")
	crash := flag.Bool("crash", false, "crash at the last commit point instead of finishing cleanly")
	image := flag.String("image", "", "write the persistent-memory image to this file (with -crash)")
	recover := flag.Bool("recover", false, "run the recovery manager in-process after a crash and verify the workload")
	flag.Parse()

	cfg := config.Default()
	if *cores > 0 {
		cfg.NumCores = *cores
	}
	if *logBuf > 0 {
		cfg.LogBufferEntries = *logBuf
	}
	cfg.BandwidthScale = *bw

	env, err := txn.NewEnv(cfg)
	if err != nil {
		fail("building environment: %v", err)
	}
	rt, err := harness.NewRuntime(env, *design)
	if err != nil {
		fail("%v", err)
	}
	w, err := workloads.New(*workload)
	if err != nil {
		fail("%v", err)
	}

	res, err := workloads.Run(env, rt, w, workloads.Params{Cores: cfg.NumCores}, *tx, !*crash)
	if err != nil {
		fail("running workload: %v", err)
	}
	fmt.Printf("%s on %s: %d transactions committed in %d cycles (%.3f tx/Mcycle)\n",
		rt.Name(), w.Name(), res.Committed, res.Cycles, res.Throughput())
	fmt.Print(env.Stats.Summary())

	if *crash {
		env.Hier.Crash()
		fmt.Println("crash injected: volatile state discarded, durable logs retained")
		if *image != "" {
			f, err := os.Create(*image)
			if err != nil {
				fail("creating image file: %v", err)
			}
			if err := env.Store().Save(f); err != nil {
				fail("writing image: %v", err)
			}
			if err := f.Close(); err != nil {
				fail("closing image: %v", err)
			}
			fmt.Printf("persistent-memory image written to %s (replay it with dhtm-recover)\n", *image)
		}
		if *recover {
			report, err := recovery.Recover(env.Store())
			if err != nil {
				fail("recovery: %v", err)
			}
			fmt.Print(report)
			if err := w.Verify(env.Store()); err != nil {
				fail("workload verification after recovery FAILED: %v", err)
			}
			fmt.Println("workload invariants verified after recovery")
		}
		return
	}

	env.Hier.DrainClean()
	if err := w.Verify(env.Store()); err != nil {
		fail("workload verification FAILED: %v", err)
	}
	fmt.Println("workload invariants verified")
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "dhtm-sim: "+format+"\n", args...)
	os.Exit(1)
}
